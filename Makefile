# OpenDesc build and benchmark targets.

GO ?= go

.PHONY: all tier1 build vet test race bench bench-baseline perf-gate alloc-gate clean

all: tier1

tier1: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate every experiment table (slow; see EXPERIMENTS.md).
bench:
	$(GO) run ./cmd/descbench

# Re-measure the committed BENCH_*.json baselines in place. Run on a quiet
# machine, inspect the diff, and commit only deliberate movements.
bench-baseline:
	$(GO) run ./cmd/descbench baseline -out .

# The CI perf ratchet, locally: alloc gate, fresh baseline run, compare.
perf-gate: alloc-gate
	rm -rf /tmp/opendesc-perf && mkdir -p /tmp/opendesc-perf
	$(GO) run ./cmd/descbench baseline -out /tmp/opendesc-perf
	@fail=0; for old in BENCH_*.json; do \
		echo "== $$old =="; \
		$(GO) run ./cmd/descbench compare "$$old" "/tmp/opendesc-perf/$$old" || fail=1; \
	done; exit $$fail

alloc-gate:
	$(GO) test -run TestDeliverPathAllocGate -v .

clean:
	rm -rf /tmp/opendesc-perf
