package opendesc

import (
	"opendesc/internal/core"
	"opendesc/internal/evolve"
	"opendesc/internal/nic"
	"opendesc/internal/tenant"
)

// Multi-tenant serving plane (S24): N applications share one NIC through a
// single jointly-compiled metadata interface. See internal/tenant for the
// mechanics; this file re-exports the plane as public API.
type (
	// TenantSpec declares one tenant of a serving plane: a name, a
	// metadata intent, an optional Eq. 1 traffic weight, and the UDP
	// destination port that classifies the tenant's traffic.
	TenantSpec = tenant.Spec
	// TenantOptions tunes a serving plane (NIC model, core/queue count,
	// steering key, renegotiation policy).
	TenantOptions = tenant.Options
	// ServingPlane is an open multi-tenant plane: Rx classifies and
	// RSS-steers packets, PollCore runs a per-core delivery loop with work
	// stealing, Renegotiate hot-swaps one tenant's intent without
	// disturbing its neighbors.
	ServingPlane = tenant.Plane
	// TenantDelivery is one packet handed to a tenant inside PollCore.
	TenantDelivery = tenant.Delivery
	// TenantStats is one tenant's delivery snapshot.
	TenantStats = tenant.TenantStats
	// PlaneStats is a point-in-time snapshot of a serving plane.
	PlaneStats = tenant.Stats
	// TenantIntent is one tenant's entry in a joint compilation.
	TenantIntent = core.TenantIntent
	// JointResult is a joint Eq. 1 compilation over several tenants: one
	// selected device configuration plus a per-tenant accessor/shim split.
	JointResult = core.JointResult
	// JointPolicy schedules measured-mix renegotiation for a plane.
	JointPolicy = evolve.JointPolicy
)

// OpenTenants opens a multi-tenant serving plane: it solves the joint
// Eq. 1 optimization across every tenant's intent for one shared device
// configuration, programs one RSS-sharded queue per core, and builds each
// tenant its own accessor/shim split.
//
//	p, err := opendesc.OpenTenants(opendesc.TenantOptions{Cores: 4},
//	    opendesc.TenantSpec{Name: "lb", Semantics: []string{"rss", "pkt_len"}},
//	    opendesc.TenantSpec{Name: "fw", Semantics: []string{"ip_checksum"}},
//	)
//	...
//	p.Rx(packet)                     // classify + steer (the simulated wire)
//	p.PollCore(0, func(d opendesc.TenantDelivery) {
//	    hash, _ := d.Get("rss")
//	    ...
//	})
func OpenTenants(opts TenantOptions, specs ...TenantSpec) (*ServingPlane, error) {
	return tenant.Open(opts, specs...)
}

// CompileJoint solves the joint Eq. 1 optimization over several tenants'
// intents against a bundled NIC model, without opening a device: one
// configuration, per-tenant accessor splits. Use it to inspect what a
// serving plane would program.
func CompileJoint(nicName string, tenants []TenantIntent, opts CompileOptions) (*JointResult, error) {
	m, err := nic.Load(nicName)
	if err != nil {
		return nil, err
	}
	return m.CompileJoint(tenants, opts)
}

// JainFairness computes Jain's fairness index (Σx)²/(n·Σx²) over per-tenant
// shares — 1.0 is perfectly fair, 1/n is maximally unfair.
func JainFairness(shares []float64) float64 { return tenant.JainFairness(shares) }
