// This file hosts the repository-level benchmarks: one Benchmark per
// experiment of DESIGN.md's index (tables E1–E14), driving the same harness
// code as cmd/descbench through testing.B so `go test -bench=.` regenerates
// every number. It lives in the external test package because internal/bench
// itself imports the root package (E16 drives the hardened public driver).
package opendesc_test

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"opendesc"
	"opendesc/internal/baseline"
	"opendesc/internal/bench"
	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/obs"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/ring"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

func mustIntent(b *testing.B, sems ...semantics.Name) *core.Intent {
	b.Helper()
	it, err := core.IntentFromSemantics("bench", semantics.Default, sems...)
	if err != nil {
		b.Fatal(err)
	}
	return it
}

// BenchmarkE1_PathSelection times the Fig. 6 running example: CFG extraction,
// path enumeration and Eq. 1 selection on the e1000e description.
func BenchmarkE1_PathSelection(b *testing.B) {
	m := nic.MustLoad("e1000e")
	intent := mustIntent(b, semantics.RSS, semantics.IPChecksum)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := m.Compile(intent, core.CompileOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Selected.Path.Prov().Has(semantics.IPChecksum) {
			b.Fatal("Fig. 6 invariant violated")
		}
	}
}

// BenchmarkE2_MultiNIC compiles one intent against every bundled NIC (the §4
// prototype showcase).
func BenchmarkE2_MultiNIC(b *testing.B) {
	intent := mustIntent(b, semantics.RSS, semantics.VLAN, semantics.IPChecksum, semantics.PktLen)
	models := nic.All()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			if _, err := m.Compile(intent, core.CompileOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE4_Datapath measures ns/packet of each host stack over simulated
// mlx5 traffic (the §2 motivation comparison).
func BenchmarkE4_Datapath(b *testing.B) {
	tr := workload.MustGenerate(workload.DefaultSpec())
	for _, it := range bench.E4Intents {
		stacks, err := bench.NewStacks(it.Sems, tr)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(it.Name+"/skbuff", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stacks.StepSkBuff(i)
			}
		})
		b.Run(it.Name+"/mbuf", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stacks.StepMbuf(i)
			}
		})
		b.Run(it.Name+"/xdp", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stacks.StepXDP(i)
			}
		})
		b.Run(it.Name+"/opendesc", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stacks.StepOpenDesc(i)
			}
		})
		_ = stacks.Sink()
	}
}

// BenchmarkE5_FootprintSelection times the Eq. 1 sweep across α values on
// mlx5 (compressed vs full CQE crossover).
func BenchmarkE5_FootprintSelection(b *testing.B) {
	m := nic.MustLoad("mlx5")
	intent := mustIntent(b, semantics.RSS, semantics.VLAN, semantics.IPChecksum, semantics.PktLen)
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{0.25, 1, 4, 16} {
			if _, err := m.Compile(intent, core.CompileOptions{
				Select: core.SelectOptions{Alpha: alpha},
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE7_Accessor measures the synthesized constant-time accessors:
// byte-aligned and unaligned hardware reads, and a software shim read.
func BenchmarkE7_Accessor(b *testing.B) {
	m := nic.MustLoad("ixgbe") // 13-bit ptype field exercises unaligned reads
	intent := mustIntent(b, semantics.RSS, semantics.PType, semantics.KVKey)
	res, err := m.Compile(intent, core.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rt := codegen.NewRuntime(res, softnic.Funcs())
	tr := workload.MustGenerate(workload.Spec{Packets: 64, Flows: 8, PayloadBytes: 64, KVFraction: 1, Seed: 3})
	samples, err := bench.CaptureSamples(m, res.Config, tr)
	if err != nil {
		b.Fatal(err)
	}
	var sink uint64
	b.Run("aligned32", func(b *testing.B) {
		r := rt.Reader(semantics.RSS)
		for i := 0; i < b.N; i++ {
			sink += r.Read(samples[i%len(samples)].Cmpt, nil)
		}
	})
	b.Run("unaligned13", func(b *testing.B) {
		r := rt.Reader(semantics.PType)
		for i := 0; i < b.N; i++ {
			sink += r.Read(samples[i%len(samples)].Cmpt, nil)
		}
	})
	b.Run("software-shim", func(b *testing.B) {
		r := rt.Reader(semantics.KVKey)
		for i := 0; i < b.N; i++ {
			s := &samples[i%len(samples)]
			sink += r.Read(s.Cmpt, s.Packet)
		}
	})
	_ = sink
}

// BenchmarkE9_MbufDyn measures the dynfield indirection cost as enabled
// offloads grow.
func BenchmarkE9_MbufDyn(b *testing.B) {
	tr := workload.MustGenerate(workload.DefaultSpec())
	m := nic.MustLoad("mlx5")
	paths, err := m.Paths()
	if err != nil {
		b.Fatal(err)
	}
	var full *core.Path
	for _, p := range paths {
		if p.SizeBytes() == 64 {
			full = p
		}
	}
	samples, err := bench.CaptureSamples(m, full.Constraints, tr)
	if err != nil {
		b.Fatal(err)
	}
	dynOrder := []semantics.Name{
		semantics.Timestamp, semantics.FlowID, semantics.Mark, semantics.LROSegs,
		semantics.IPChecksum, semantics.L4Checksum, semantics.TunnelID, semantics.ErrorFlags,
	}
	var sink uint64
	for _, k := range []int{0, 2, 4, 8} {
		enabled := append([]semantics.Name{semantics.RSS, semantics.VLAN, semantics.PktLen}, dynOrder[:k]...)
		drv := baseline.NewMbufDriver(full, enabled)
		accs := make([]baseline.MbufAccessor, len(enabled))
		for i, sem := range enabled {
			accs[i] = drv.Accessor(sem)
		}
		b.Run(fmt.Sprintf("dynfields-%d", k), func(b *testing.B) {
			var mb baseline.Mbuf
			for i := 0; i < b.N; i++ {
				s := &samples[i%len(samples)]
				drv.Fill(&mb, s.Cmpt, len(s.Packet))
				for _, acc := range accs {
					v, _ := acc.Read(&mb)
					sink += v
				}
			}
		})
	}
	_ = sink
}

// BenchmarkE10_CompileTime times the full compiler pipeline per NIC,
// including P4 parse and semantic analysis from source.
func BenchmarkE10_CompileTime(b *testing.B) {
	intent := mustIntent(b, semantics.RSS, semantics.VLAN, semantics.IPChecksum, semantics.PktLen)
	for _, m := range nic.All() {
		b.Run(m.Name+"/compile", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Compile(intent, core.CompileOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(m.Name+"/frontend", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := parser.Parse(m.Name+".p4", m.Source)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sema.Check(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorRx measures the simulated device's packet rate (CFG
// interpretation + offload engines + completion DMA) per NIC.
func BenchmarkSimulatorRx(b *testing.B) {
	tr := workload.MustGenerate(workload.DefaultSpec())
	for _, m := range nic.All() {
		b.Run(m.Name, func(b *testing.B) {
			dev, err := nicsim.New(m, nicsim.Config{RingEntries: 2048})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(tr.TotalBytes() / len(tr.Packets)))
			for i := 0; i < b.N; i++ {
				if !dev.RxPacket(tr.Packets[i%len(tr.Packets)]) {
					// Ring full: drain and continue.
					for dev.CmptRing.Pop() {
					}
				}
			}
		})
	}
}

// BenchmarkObsOverhead quantifies the observability tax on the simulator RX
// path. The device counters are always compiled in, so "counters-only" is
// the baseline; "registered" additionally attaches them to a registry (a
// registration-time change only — the hot path is untouched); "serving"
// keeps a live /metrics endpoint scraping concurrently. The acceptance bound
// for the stats endpoint is ≤5% over the endpoint-disabled run.
func BenchmarkObsOverhead(b *testing.B) {
	tr := workload.MustGenerate(workload.DefaultSpec())
	m := nic.MustLoad("mlx5")
	run := func(b *testing.B, dev *nicsim.Device) {
		b.Helper()
		b.SetBytes(int64(tr.TotalBytes() / len(tr.Packets)))
		for i := 0; i < b.N; i++ {
			if !dev.RxPacket(tr.Packets[i%len(tr.Packets)]) {
				for dev.CmptRing.Pop() {
				}
			}
		}
	}
	b.Run("counters-only", func(b *testing.B) {
		run(b, nicsim.MustNew(m, nicsim.Config{RingEntries: 2048}))
	})
	b.Run("registered", func(b *testing.B) {
		dev := nicsim.MustNew(m, nicsim.Config{RingEntries: 2048})
		dev.RegisterMetrics(obs.NewRegistry(), obs.L("queue", "0"))
		run(b, dev)
	})
	b.Run("serving", func(b *testing.B) {
		dev := nicsim.MustNew(m, nicsim.Config{RingEntries: 2048})
		reg := obs.NewRegistry()
		dev.RegisterMetrics(reg, obs.L("queue", "0"))
		addr, closer, err := reg.Serve("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer closer.Close()
		stop := make(chan struct{})
		defer close(stop)
		go func() { // a scraper polling /metrics while packets flow
			url := fmt.Sprintf("http://%s/metrics", addr)
			for {
				select {
				case <-stop:
					return
				case <-time.After(5 * time.Millisecond):
				}
				resp, err := http.Get(url)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
		run(b, dev)
	})
}

// BenchmarkFlightOverhead measures the flight recorder's hot-path tax on the
// full driver datapath (Rx + Poll + three metadata reads per packet): the
// "on" sub-benchmark records with the default sampling, "off" disables the
// recorder at runtime (the enabled-check cost stays). The acceptance budget
// is <5% between the two; `-tags flight_off` compiles recording out entirely.
func BenchmarkFlightOverhead(b *testing.B) {
	tr := workload.MustGenerate(workload.DefaultSpec())
	run := func(b *testing.B, record bool) {
		b.Helper()
		intent, err := opendesc.NewIntent("bench", "rss", "vlan", "pkt_len")
		if err != nil {
			b.Fatal(err)
		}
		drv, err := opendesc.OpenIntent("e1000e", intent, opendesc.CompileOptions{})
		if err != nil {
			b.Fatal(err)
		}
		drv.Flight().SetEnabled(record)
		var sink uint64
		h := func(p []byte, meta opendesc.Meta) {
			v1, _ := meta.Get("rss")
			v2, _ := meta.Get("vlan")
			v3, _ := meta.Get("pkt_len")
			sink += v1 + v2 + v3
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := tr.Packets[i%len(tr.Packets)]
			for !drv.Rx(p) {
				drv.Poll(h)
			}
			if i%8 == 7 {
				drv.Poll(h)
			}
		}
		for drv.Poll(h) > 0 {
		}
		_ = sink
	}
	b.Run("on", func(b *testing.B) { run(b, true) })
	b.Run("off", func(b *testing.B) { run(b, false) })
}

// BenchmarkRingOps measures the descriptor-queue substrate.
func BenchmarkRingOps(b *testing.B) {
	b.Run("produce-consume-64B", func(b *testing.B) {
		r := ring.MustNew(64, 1024)
		rec := make([]byte, 64)
		for i := 0; i < b.N; i++ {
			if !r.Push(rec) {
				r.Consume(func([]byte) {})
				r.Push(rec)
			} else if i%2 == 1 {
				r.Consume(func([]byte) {})
			}
		}
	})
}

// BenchmarkE11_Interfaces measures the three candidate driver-datapath
// interface models (§5) for the two canonical applications. The timed unit
// is one full deliver+poll round per packet (device and host side together);
// the isolated host-side poll comparison is `descbench e11`, whose harness
// re-delivers outside the timed region.
func BenchmarkE11_Interfaces(b *testing.B) {
	const packets = 256
	ifaces, tr, err := bench.NewInterfaces(packets)
	if err != nil {
		b.Fatal(err)
	}
	for _, app := range bench.IfaceApps {
		for _, ifc := range ifaces {
			b.Run(app+"/"+ifc.Name(), func(b *testing.B) {
				h, sink := bench.IfaceHandler(app)
				for done := 0; done < b.N; {
					if err := ifc.Deliver(tr); err != nil {
						b.Fatal(err)
					}
					n := ifc.Poll(h)
					if n != packets {
						b.Fatalf("polled %d", n)
					}
					done += n
				}
				_ = sink
			})
		}
	}
}
