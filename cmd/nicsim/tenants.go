package main

// The -tenants demo: one multi-tenant serving plane (DESIGN.md §S24) over a
// simulated multi-queue device. N tenants declare different intents, one
// joint Eq. 1 compile picks the device configuration, Zipf traffic is RSS-
// sharded across per-core queues, and tenant 0 renegotiates mid-run to show
// a live switchover that neighbors never notice.

import (
	"fmt"

	"opendesc"
	"opendesc/internal/obs"
	"opendesc/internal/workload"
)

// demoProfiles are the intent mixes tenants cycle through.
var demoProfiles = [][]string{
	{"rss", "pkt_len"},
	{"ip_checksum", "pkt_len"},
	{"pkt_len", "ptype"},
	{"rss", "vlan"},
}

// runTenants drives the multi-tenant serving-plane demo.
func runTenants(nicName string, tenants, packets int, statsAddr string, dump bool) {
	cores := tenants
	if cores > 4 {
		cores = 4
	}
	specs := make([]opendesc.TenantSpec, tenants)
	for i := range specs {
		specs[i] = opendesc.TenantSpec{
			Name:      fmt.Sprintf("tenant%02d", i),
			Semantics: demoProfiles[i%len(demoProfiles)],
		}
	}
	plane, err := opendesc.OpenTenants(opendesc.TenantOptions{NIC: nicName, Cores: cores}, specs...)
	if err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	plane.RegisterMetrics(reg)
	if statsAddr != "" {
		addr, _, err := reg.Serve(statsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stats endpoint: http://%s/metrics (Prometheus), http://%s/debug/vars (JSON)\n", addr, addr)
	}

	tr, err := workload.GenerateZipf(workload.ZipfSpec{
		Packets: packets,
		Flows:   1 << 20,
		Skew:    1.1,
		Tenants: tenants,
		Seed:    42,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("serving %d tenants on %d cores over simulated %s: %d Zipf(1.1) packets, %d flows\n",
		tenants, cores, nicName, len(tr.Packets), 1<<20)
	half := len(tr.Packets) / 2
	for i, p := range tr.Packets {
		if i == half {
			fmt.Printf("pkt %5d: --- tenant00 renegotiates: %v -> [rss pkt_len flow_id] ---\n",
				i, specs[0].Semantics)
			if err := plane.Renegotiate("tenant00", "rss", "pkt_len", "flow_id"); err != nil {
				fatal(err)
			}
		}
		for !plane.Rx(p) { // ring full: drain every core, then retry
			for c := 0; c < cores; c++ {
				plane.PollCore(c, func(opendesc.TenantDelivery) {})
			}
		}
		if i%8 == 7 {
			for c := 0; c < cores; c++ {
				plane.PollCore(c, func(d opendesc.TenantDelivery) {
					d.Get(demoProfiles[d.Tenant%len(demoProfiles)][0])
				})
			}
		}
	}
	plane.Drain(func(opendesc.TenantDelivery) {})

	st := plane.Stats()
	fmt.Printf("\n%-10s %6s %10s %10s %12s\n", "tenant", "port", "accepted", "delivered", "p99 latency")
	for _, ts := range st.Tenants {
		fmt.Printf("%-10s %6d %10d %10d %10.0fns\n", ts.Name, ts.Port, ts.Accepted, ts.Delivered, ts.P99)
	}
	fmt.Printf("\ngeneration=%d renegotiations=%d (fast=%d) rollbacks=%d drained=%d steals=%d\n",
		st.Generation, st.Renegs, st.FastRenegs, st.Rollbacks, st.Drained, st.Steals)
	fmt.Printf("Jain service fairness: %.4f\n", plane.Fairness())
	if dump {
		fmt.Printf("\nplane counters:\n%s", reg.Table())
	}
	for _, ts := range st.Tenants {
		if ts.Accepted != ts.Delivered {
			fatal(fmt.Errorf("tenant %s: accepted %d != delivered %d", ts.Name, ts.Accepted, ts.Delivered))
		}
	}
}
