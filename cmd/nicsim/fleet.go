package main

import (
	"fmt"
	"os"
	"path/filepath"

	"opendesc/internal/fleet"
	"opendesc/internal/fleet/telemetry"
	"opendesc/internal/nic"
	"opendesc/internal/vclock"
	"opendesc/internal/workload"
)

// runFleet is the fleet-control-plane demo (DESIGN.md §S25/§S26): it boots
// a heterogeneous fleet of simulated hosts (round-robin over the bundled
// NIC models, plus one rogue whose describe handshake lies about its
// digest), inventories them over the describe protocol, provisions a
// fleet-wide layout through the content-addressed compile cache, then runs
// two rollouts — a benign intent widening that canaries, bakes, and
// promotes, and a tampered description push whose canary trips the
// golden-metadata oracle and triggers an automatic fleet-wide rollback —
// printing the controller transcript as it goes. A telemetry sweep then
// collects every host's flight evidence into the controller rollup, and
// -trace writes the merged fleet timeline (controller span tree + every
// host's flight ring) as Chrome trace JSON. -spans and -dump-flight ship
// the raw artifacts instead — the span tree and per-host .odfl rings —
// so the same timeline can be rebuilt offline with 'opendesc fleettrace'.
func runFleet(hosts, packets int, dump bool, traceOut, spansOut, dumpDir string) {
	if hosts < 2 {
		fatal(fmt.Errorf("-fleet needs at least 2 hosts"))
	}
	clk := vclock.NewVirtual(1)
	models := nic.All()

	ctrl := fleet.NewController(fleet.Options{
		Clock:      clk,
		Intent:     []string{"rss", "pkt_len"},
		Seed:       1,
		BakeTarget: 32,
	})
	var fleetHosts []*fleet.Host
	for i := 0; i < hosts; i++ {
		m := models[i%len(models)]
		h, err := fleet.NewHost(fmt.Sprintf("%s-%02d", m.Name, i), m, fleet.HostOptions{Clock: clk})
		if err != nil {
			fatal(err)
		}
		fleetHosts = append(fleetHosts, h)
		ctrl.AddHost(h, fleet.NewLink(clk, 1000))
	}
	// The rogue: claims a digest its own description doesn't hash to —
	// exactly the kind of structurally-invalid host the inventory sweep
	// must quarantine rather than provision.
	rogue, err := fleet.NewHost("rogue-00", models[0], fleet.HostOptions{Clock: clk})
	if err != nil {
		fatal(err)
	}
	rogue.SetDescribeMutator(func(d *fleet.Description) {
		d.Digest = "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
	})
	ctrl.AddHost(rogue, fleet.NewLink(clk, 1000))

	rep := ctrl.Inventory()
	fmt.Printf("fleet: %d hosts inventoried, %d healthy, %d distinct descriptions, %d quarantined\n",
		rep.Total, rep.Healthy, len(rep.Digests), len(rep.Quarantined))
	for _, q := range rep.Quarantined {
		fmt.Printf("  quarantined %s: %s\n", q.Host, q.Reason)
	}
	if err := ctrl.Provision(); err != nil {
		fatal(err)
	}
	cs := ctrl.CacheStats()
	fmt.Printf("provisioned gen 1: compile cache %d gets, %d misses, hit rate %.0f%%\n\n",
		cs.Gets, cs.Misses, 100*cs.HitRate())

	// pump pushes deterministic traffic through every healthy host and
	// polls — the same traffic the canary bake measures.
	tr, err := workload.Generate(workload.DefaultSpec())
	if err != nil {
		fatal(err)
	}
	next := 0
	pump := func() {
		for i := 0; i < 8; i++ {
			for _, h := range fleetHosts {
				h.Rx(tr.Packets[next%len(tr.Packets)])
				next++
			}
			for _, h := range fleetHosts {
				h.Poll()
			}
		}
	}

	run := func(up fleet.Upgrade) {
		r, err := ctrl.StartRollout(up)
		if err != nil {
			fmt.Printf("rollout %q refused: %v\n", up.Name, err)
			return
		}
		if err := r.Run(pump); err != nil {
			fmt.Printf("rollout %q (gen %d): %v\n", up.Name, r.Gen(), err)
		} else {
			fmt.Printf("rollout %q (gen %d): promoted fleet-wide\n", up.Name, r.Gen())
		}
	}

	// Rollout 1: benign — widen the fleet intent. Canary → bake → promote.
	run(fleet.Upgrade{Name: "widen-intent", Semantics: []string{"rss", "pkt_len", "flow_id"}})

	// Rollout 2: tampered — push replacement descriptions whose
	// @semantic("ip_checksum") and @semantic("pkt_len") annotations are
	// swapped. Structurally valid, passes every static check; only the
	// canary bake against the SoftNIC golden values catches it.
	bad := fleet.Upgrade{Name: "tampered-push", Descriptions: map[string]string{}}
	for _, m := range models {
		src, err := fleet.SwapSemantics(m.Source, "ip_checksum", "pkt_len")
		if err != nil {
			fatal(err)
		}
		bad.Descriptions[m.Name] = src
	}
	run(bad)
	pump()

	var accepted, delivered, garbage uint64
	promoted := 0
	for _, h := range fleetHosts {
		hl := h.Health()
		accepted += hl.Accepted
		delivered += hl.Delivered
		garbage += hl.Garbage
		if h.Generation() == 2 {
			promoted++
		}
	}
	fmt.Printf("\nfleet after rollback: %d/%d hosts serving promoted gen 2, %d/%d packets delivered exactly once, %d garbage reads (canaries only, during bake)\n",
		promoted, len(fleetHosts), delivered, accepted, garbage)

	// Telemetry sweep: every healthy host ships its flight evidence; the
	// controller validates, cross-checks, and rolls it up fleet-wide.
	sw := ctrl.CollectTelemetry()
	ru := ctrl.Rollup()
	fmt.Printf("\ntelemetry sweep: %d reports collected, %d skipped, %d rejected\n",
		sw.Collected, sw.Skipped, sw.Rejected)
	fmt.Printf("fleet rollup: %d hosts, p99 poll→deliver %dns, anomaly rate %.4f\n",
		ru.Hosts(), ru.FleetP99(), ru.AnomalyRate())
	for _, fs := range ru.Families() {
		fmt.Printf("  family %-8s %2d hosts  %6d delivered  p99 %4dns  %d anomalies\n",
			fs.Family, fs.Hosts, fs.Delivered, fs.P99Ns, fs.Anomalies)
	}
	for _, gs := range ru.Generations() {
		fmt.Printf("  gen %d: %d hosts, %d delivered, p99 %dns\n",
			gs.Gen, gs.Hosts, gs.Delivered, gs.P99Ns)
	}

	fmt.Println("\ncontroller transcript:")
	for _, line := range ctrl.Transcript() {
		fmt.Printf("  %s\n", line)
	}
	if dump {
		fmt.Println()
		fmt.Printf("cache: %+v\n", ctrl.CacheStats())
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		if err := ctrl.FleetTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nfleet trace: %s (open in https://ui.perfetto.dev)\n", traceOut)
	}
	if spansOut != "" {
		f, err := os.Create(spansOut)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.WriteSpans(f, ctrl.Trace().Spans()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("controller spans: %s (%d spans)\n", spansOut, len(ctrl.Trace().Spans()))
	}
	if dumpDir != "" {
		if err := os.MkdirAll(dumpDir, 0o755); err != nil {
			fatal(err)
		}
		for _, h := range fleetHosts {
			path := filepath.Join(dumpDir, h.Name+".odfl")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if _, err := h.FlightSnapshot().WriteTo(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("flight dumps: %d hosts under %s (merge with 'opendesc flight -merge %s/*.odfl')\n",
			len(fleetHosts), dumpDir, dumpDir)
	}
	_ = packets
	if accepted != delivered {
		fmt.Fprintf(os.Stderr, "nicsim: conservation violated: accepted %d != delivered %d\n", accepted, delivered)
		os.Exit(1)
	}
}
