// Command nicsim runs the end-to-end OpenDesc demo: it compiles an intent
// for a simulated NIC, programs the device's context registers over the
// (simulated) control channel, pushes a synthetic workload through the RX
// pipeline, and reads the metadata back through the generated accessors —
// printing a per-semantic comparison against the golden software values.
//
// Usage:
//
//	nicsim -nic mlx5 -req rss,vlan,timestamp -packets 1000
//	nicsim -nic qdma -req kv_key,rss -kv
//	nicsim -nic mlx5 -req rss,kv_key -stats               # ethtool-style dump
//	nicsim -nic mlx5 -req rss -stats-addr localhost:9100  # /metrics endpoint
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/obs"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

func main() {
	var (
		nicName   = flag.String("nic", "mlx5", "NIC model (see opendesc -list)")
		req       = flag.String("req", "rss,vlan,pkt_len", "requested semantics")
		packets   = flag.Int("packets", 256, "packets to push through the device")
		kv        = flag.Bool("kv", false, "generate key-value request traffic")
		verbose   = flag.Bool("v", false, "print per-packet metadata")
		stats     = flag.Bool("stats", false, "dump ethtool-style device/ring/shim counters on exit")
		statsAddr = flag.String("stats-addr", "", "serve /metrics (Prometheus) and /debug/vars on this address while running")
	)
	flag.Parse()

	var names []semantics.Name
	for _, s := range strings.Split(*req, ",") {
		if s = strings.TrimSpace(s); s != "" {
			names = append(names, semantics.Name(s))
		}
	}
	intent, err := core.IntentFromSemantics("demo", semantics.Default, names...)
	if err != nil {
		fatal(err)
	}
	model, err := nic.Load(*nicName)
	if err != nil {
		fatal(err)
	}
	res, err := model.Compile(intent, core.CompileOptions{})
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Report())

	dev, err := nicsim.New(model, nicsim.Config{QueueID: 0})
	if err != nil {
		fatal(err)
	}
	if err := dev.ApplyConfig(res.Config); err != nil {
		fatal(err)
	}

	// Observability: register device + ring counters, and (when stats are
	// requested) run the software shims instrumented so their per-semantic
	// call counts and cycle cost show up in the dump / endpoint.
	reg := obs.NewRegistry()
	dev.RegisterMetrics(reg, obs.L("queue", "0"))
	shimStats := softnic.NewShimStats(reg)
	soft := softnic.Funcs()
	if *stats || *statsAddr != "" {
		soft = softnic.InstrumentedFuncs(shimStats)
	}
	if *statsAddr != "" {
		addr, _, err := reg.Serve(*statsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stats endpoint: http://%s/metrics (Prometheus), http://%s/debug/vars (JSON)\n", addr, addr)
	}
	rt := codegen.NewRuntime(res, soft)

	spec := workload.DefaultSpec()
	spec.Packets = *packets
	if *kv {
		spec.KVFraction = 1
	}
	tr, err := workload.Generate(spec)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\npushing %d packets through simulated %s (completion = %d bytes)...\n",
		len(tr.Packets), model.Name, rt.CompletionBytes)
	mismatches := 0
	checked := 0
	// Cross-checks use the bare (uninstrumented) reference funcs so the
	// shim-call counters reflect only real datapath emulation work.
	golden := softnic.Funcs()
	for i, p := range tr.Packets {
		if !dev.RxPacket(p) {
			fatal(fmt.Errorf("rx stalled at packet %d", i))
		}
		dev.CmptRing.Consume(func(cmpt []byte) {
			for _, n := range names {
				got, err := rt.Read(n, cmpt, p)
				if err != nil {
					fatal(err)
				}
				if *verbose {
					fmt.Printf("  pkt %4d  %-12s = %#x\n", i, n, got)
				}
				// Cross-check hardware reads against golden software where
				// a software implementation exists.
				if f, ok := golden[n]; ok && rt.Reader(n).Hardware {
					want := f(p)
					if a := res.Accessor(n); a != nil && a.WidthBits < 64 {
						want &= (1 << a.WidthBits) - 1
					}
					checked++
					if got != want && n != semantics.PktLen {
						mismatches++
					}
				}
			}
		})
	}
	st := dev.Stats()
	fmt.Printf("done: rx=%d drops=%d, %d hardware reads cross-checked, %d mismatches\n",
		st.RxPackets, st.Drops, checked, mismatches)
	if mismatches > 0 {
		os.Exit(1)
	}
	if *stats {
		fmt.Printf("\ndevice/ring/shim counters (%s):\n%s", model.Name, reg.Table())
	}

	// TX direction demo when the model describes a DescParser.
	if layouts, err := model.TxLayouts(); err == nil && len(layouts) > 0 {
		fmt.Printf("\nTX descriptor formats accepted by %s:\n", model.Name)
		for _, l := range layouts {
			fmt.Printf("  %2dB  consumes %s", l.SizeBytes(), l.Consumes())
			if len(l.Constraints) > 0 {
				fmt.Printf("  when ")
				for i, c := range l.Constraints {
					if i > 0 {
						fmt.Print(" && ")
					}
					fmt.Print(c)
				}
			}
			fmt.Println()
		}
	}
	_ = pkt.EthHeaderLen

	if *statsAddr != "" {
		fmt.Println("\nstill serving the stats endpoint; Ctrl-C to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nicsim: %v\n", err)
	os.Exit(1)
}
