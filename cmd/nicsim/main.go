// Command nicsim runs the end-to-end OpenDesc demo: it compiles an intent
// for a simulated NIC, programs the device's context registers over the
// (simulated) control channel, pushes a synthetic workload through the RX
// pipeline, and reads the metadata back through the generated accessors —
// printing a per-semantic comparison against the golden software values.
//
// Usage:
//
//	nicsim -nic mlx5 -req rss,vlan,timestamp -packets 1000
//	nicsim -nic qdma -req kv_key,rss -kv
//	nicsim -nic mlx5 -req rss,kv_key -stats               # ethtool-style dump
//	nicsim -nic mlx5 -req rss -stats-addr localhost:9100  # /metrics endpoint
//	nicsim -nic e1000e -req rss,vlan,pkt_len \
//	       -faults corrupt=1e-3,hang=2@5000 -seed 7       # hardened driver under injection
//	nicsim -nic mlx5 -tenants 8 -packets 4096             # multi-tenant serving plane
//	nicsim -fleet 13                                      # fleet control plane: inventory,
//	                                                      # canary rollout, auto-rollback
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"opendesc"
	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/evolve"
	"opendesc/internal/faults"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/obs"
	"opendesc/internal/obs/flight"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

func main() {
	var (
		nicName   = flag.String("nic", "mlx5", "NIC model (see opendesc -list)")
		req       = flag.String("req", "rss,vlan,pkt_len", "requested semantics")
		packets   = flag.Int("packets", 256, "packets to push through the device")
		kv        = flag.Bool("kv", false, "generate key-value request traffic")
		verbose   = flag.Bool("v", false, "print per-packet metadata")
		stats     = flag.Bool("stats", false, "dump ethtool-style device/ring/shim counters on exit")
		statsAddr = flag.String("stats-addr", "", "serve /metrics (Prometheus) and /debug/vars on this address while running")
		evolveRun = flag.Bool("evolve", false, "run the live-renegotiation demo: shift the read mix mid-run and report switchovers")
		faultSpec = flag.String("faults", "", "fault-injection spec, e.g. corrupt=1e-3,drop=1e-4,hang=2@5000: run the hardened driver under injection and report detection/recovery")
		seed      = flag.Uint64("seed", 1, "fault-injection PRNG seed (with -faults)")
		tenants   = flag.Int("tenants", 0, "run the multi-tenant serving-plane demo with this many tenants (jointly-compiled intents, RSS sharding, mid-run renegotiation)")
		fleetN    = flag.Int("fleet", 0, "run the fleet control-plane demo with this many hosts (describe inventory, canary rollout, automatic rollback)")
		fleetTr   = flag.String("trace", "", "with -fleet: write the merged fleet timeline (controller spans + host flight rings) as Chrome trace JSON to this file")
		fleetSp   = flag.String("spans", "", "with -fleet: write the controller's rollout/trial/bake/verdict span tree as schema-versioned JSON (rebuild the timeline offline with 'opendesc fleettrace')")
		fleetFd   = flag.String("dump-flight", "", "with -fleet: write every host's flight ring as <host>.odfl into this directory (merge with 'opendesc flight -merge' or 'opendesc fleettrace')")
	)
	flag.StringVar(&flightTrace, "flight", "", "write the flight-recorder Chrome trace (Perfetto-loadable JSON) to this file on exit")
	flag.StringVar(&flightDump, "flight-dump", "", "directory for automatic flight-recorder postmortem dumps (.odfl, decode with 'opendesc flight')")
	flag.Parse()

	var names []semantics.Name
	for _, s := range strings.Split(*req, ",") {
		if s = strings.TrimSpace(s); s != "" {
			names = append(names, semantics.Name(s))
		}
	}
	if *fleetN > 0 {
		runFleet(*fleetN, *packets, *stats, *fleetTr, *fleetSp, *fleetFd)
		return
	}
	if *tenants > 0 {
		runTenants(*nicName, *tenants, *packets, *statsAddr, *stats)
		return
	}
	intent, err := core.IntentFromSemantics("demo", semantics.Default, names...)
	if err != nil {
		fatal(err)
	}
	model, err := nic.Load(*nicName)
	if err != nil {
		fatal(err)
	}
	if *evolveRun {
		runEvolve(model, intent, names, *packets, *statsAddr, *stats)
		return
	}
	if *faultSpec != "" {
		runFaults(model.Name, names, *packets, *faultSpec, *seed, *verbose, *statsAddr, *stats)
		return
	}

	res, err := model.Compile(intent, core.CompileOptions{})
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Report())

	dev, err := nicsim.New(model, nicsim.Config{QueueID: 0})
	if err != nil {
		fatal(err)
	}
	if err := dev.ApplyConfig(res.Config); err != nil {
		fatal(err)
	}

	// Observability: register device + ring counters, and (when stats are
	// requested) run the software shims instrumented so their per-semantic
	// call counts and cycle cost show up in the dump / endpoint.
	reg := obs.NewRegistry()
	dev.RegisterMetrics(reg, obs.L("queue", "0"))
	rec := flight.NewRecorder(flight.Config{})
	dev.AttachFlight(rec.Queue("q0"))
	armFlight(rec, reg)
	shimStats := softnic.NewShimStats(reg)
	shimStats.AttachFlight(rec.Queue("q0"))
	soft := softnic.Funcs()
	if *stats || *statsAddr != "" {
		soft = softnic.InstrumentedFuncs(shimStats)
	}
	if *statsAddr != "" {
		addr, _, err := reg.Serve(*statsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stats endpoint: http://%s/metrics (Prometheus), http://%s/debug/vars (JSON)\n", addr, addr)
	}
	rt := codegen.NewRuntime(res, soft)

	spec := workload.DefaultSpec()
	spec.Packets = *packets
	if *kv {
		spec.KVFraction = 1
	}
	tr, err := workload.Generate(spec)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\npushing %d packets through simulated %s (completion = %d bytes)...\n",
		len(tr.Packets), model.Name, rt.CompletionBytes)
	mismatches := 0
	checked := 0
	// Cross-checks use the bare (uninstrumented) reference funcs so the
	// shim-call counters reflect only real datapath emulation work.
	golden := softnic.Funcs()
	for i, p := range tr.Packets {
		if !dev.RxPacket(p) {
			fatal(fmt.Errorf("rx stalled at packet %d", i))
		}
		dev.CmptRing.Consume(func(cmpt []byte) {
			for _, n := range names {
				got, err := rt.Read(n, cmpt, p)
				if err != nil {
					fatal(err)
				}
				if *verbose {
					fmt.Printf("  pkt %4d  %-12s = %#x\n", i, n, got)
				}
				// Cross-check hardware reads against golden software where
				// a software implementation exists.
				if f, ok := golden[n]; ok && rt.Reader(n).Hardware {
					want := f(p)
					if a := res.Accessor(n); a != nil && a.WidthBits < 64 {
						want &= (1 << a.WidthBits) - 1
					}
					checked++
					if got != want && n != semantics.PktLen {
						mismatches++
					}
				}
			}
		})
	}
	st := dev.Stats()
	fmt.Printf("done: rx=%d drops=%d, %d hardware reads cross-checked, %d mismatches\n",
		st.RxPackets, st.Drops, checked, mismatches)
	if mismatches > 0 {
		os.Exit(1)
	}
	if *stats {
		fmt.Printf("\ndevice/ring/shim counters (%s):\n%s", model.Name, reg.Table())
	}

	// TX direction demo when the model describes a DescParser.
	if layouts, err := model.TxLayouts(); err == nil && len(layouts) > 0 {
		fmt.Printf("\nTX descriptor formats accepted by %s:\n", model.Name)
		for _, l := range layouts {
			fmt.Printf("  %2dB  consumes %s", l.SizeBytes(), l.Consumes())
			if len(l.Constraints) > 0 {
				fmt.Printf("  when ")
				for i, c := range l.Constraints {
					if i > 0 {
						fmt.Print(" && ")
					}
					fmt.Print(c)
				}
			}
			fmt.Println()
		}
	}
	_ = pkt.EthHeaderLen
	finishFlight(rec)

	if *statsAddr != "" {
		fmt.Println("\nstill serving the stats endpoint; Ctrl-C to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// runFaults drives the hardened public driver under a fault-injection plan
// (DESIGN.md §21): every accepted packet must come back exactly once, in
// order, with metadata matching the SoftNIC golden values, no matter which
// faults fire. Prints the injected/detected/recovery report and exits
// non-zero if any corruption leaks through or a packet is lost.
func runFaults(nicName string, names []semantics.Name, packets int, spec string, seed uint64, verbose bool, statsAddr string, dump bool) {
	plan, err := faults.ParseSpec(spec)
	if err != nil {
		fatal(err)
	}
	plan.Seed = seed

	sems := make([]string, len(names))
	for i, n := range names {
		sems[i] = string(n)
	}
	intent, err := opendesc.NewIntent("faults", sems...)
	if err != nil {
		fatal(err)
	}
	drv, err := opendesc.OpenWith(nicName, intent, opendesc.OpenOptions{
		Harden: &opendesc.HardenOptions{Deep: true},
	})
	if err != nil {
		fatal(err)
	}
	inj := faults.New(plan)
	drv.InjectFaults(inj)

	// Observability: the facade registers driver hardening, device and
	// injector counters in one call.
	reg := obs.NewRegistry()
	drv.RegisterMetrics(reg, obs.L("queue", "0"))
	armFlight(drv.Flight(), reg)
	if statsAddr != "" {
		addr, _, err := reg.Serve(statsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stats endpoint: http://%s/metrics (Prometheus), http://%s/debug/vars (JSON)\n", addr, addr)
	}

	tr, err := workload.Generate(workload.DefaultSpec())
	if err != nil {
		fatal(err)
	}
	golden := softnic.Funcs()

	fmt.Printf("fault plan: %s (seed %d)\n", spec, seed)
	fmt.Printf("pushing %d packets through hardened %s (deep validation on)...\n", packets, nicName)

	queue := make([][]byte, 0, 512)
	delivered, garbage, softCount := 0, 0, 0
	h := func(p []byte, meta opendesc.Meta) {
		if len(queue) == 0 || &p[0] != &queue[0][0] {
			fatal(fmt.Errorf("delivery %d out of order or duplicated", delivered))
		}
		queue = queue[1:]
		for _, n := range names {
			got, ok := meta.Get(string(n))
			if !ok {
				continue
			}
			if !meta.Hardware(string(n)) {
				softCount++
			}
			f, okG := golden[n]
			if !okG || n == semantics.PktLen {
				continue
			}
			want := f(p)
			if a := drv.Result.Accessor(n); a != nil && a.WidthBits < 64 {
				want &= (1 << a.WidthBits) - 1
				got &= (1 << a.WidthBits) - 1
			}
			if got != want {
				garbage++
				if verbose {
					fmt.Printf("  GARBAGE pkt %d: %s = %#x, want %#x\n", delivered, n, got, want)
				}
			}
		}
		delivered++
	}
	accepted := 0
	for i := 0; i < packets; i++ {
		p := tr.Packets[i%len(tr.Packets)]
		tries := 0
		for !drv.Rx(p) {
			drv.Poll(h)
			if tries++; tries > 1<<16 {
				fatal(fmt.Errorf("rx stalled at packet %d", i))
			}
		}
		accepted++
		queue = append(queue, p)
		if i%8 == 7 {
			drv.Poll(h)
		}
	}
	idle := 0
	for i := 0; i < 1<<20 && idle < 4; i++ {
		if drv.Poll(h) == 0 {
			idle++
		} else {
			idle = 0
		}
	}

	ist := inj.Stats()
	fmt.Printf("\ninjected:")
	for c := faults.Corrupt; c <= faults.Hang; c++ {
		if n := ist.Injected[c]; n > 0 {
			fmt.Printf(" %s=%d", c, n)
		}
	}
	fmt.Printf(" (device ops=%d)\n", ist.Ops)

	st := drv.Hardening()
	fmt.Printf("detected: quarantined=%d stale=%d resync=%d spurious=%d\n",
		st.Quarantined, st.StaleDrops, st.ResyncDrops, st.SpuriousCompletions)
	for class, n := range st.RejectsByClass {
		fmt.Printf("          validator rejects[%s]=%d\n", class, n)
	}
	fmt.Printf("recovery: device-faults=%d degraded-enters=%d reset-attempts=%d resets=%d config-retries=%d hardware-restores=%d\n",
		st.DeviceFaults, st.DegradedEnters, st.ResetAttempts, st.Resets, st.ConfigRetries, st.HardwareRestores)

	mode := "hardware"
	if st.Degraded {
		mode = "degraded (SoftNIC)"
	}
	fmt.Printf("delivered %d/%d exactly once, in order (%d via SoftNIC shims), %d garbage metadata reads; final mode: %s\n",
		delivered, accepted, softCount, garbage, mode)
	if dump {
		fmt.Printf("\ndriver/device/injector counters (%s):\n%s", nicName, reg.Table())
	}
	finishFlight(drv.Flight())
	if delivered != accepted || garbage > 0 {
		os.Exit(1)
	}
	if statsAddr != "" {
		fmt.Println("\nstill serving the stats endpoint; Ctrl-C to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// runEvolve is the live-renegotiation demo: it drives a workload whose
// application read mix flips halfway through the run (hot semantic: first
// requested name, then last) through the internal/evolve engine, printing a
// line per switchover and the final control-plane counters + change report.
func runEvolve(model *nic.Model, intent *core.Intent, names []semantics.Name, packets int, statsAddr string, dump bool) {
	if len(names) < 2 {
		fatal(fmt.Errorf("-evolve needs at least two requested semantics to shift between"))
	}
	eng, err := evolve.New(model, intent, core.CompileOptions{}, evolve.Options{
		Interval:  256,
		MinWindow: 128,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(eng.Result().Report())

	reg := obs.NewRegistry()
	eng.RegisterMetrics(reg, obs.L("queue", "0"))
	armFlight(eng.Flight(), reg)
	if statsAddr != "" {
		addr, _, err := reg.Serve(statsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stats endpoint: http://%s/metrics (Prometheus), http://%s/debug/vars (JSON)\n", addr, addr)
	}

	spec := workload.DefaultSpec()
	spec.Packets = packets
	tr, err := workload.Generate(spec)
	if err != nil {
		fatal(err)
	}

	half := len(tr.Packets) / 2
	hotA, hotB := names[len(names)-1], names[0]
	fmt.Printf("\nevolving %s under %d packets: hot read %s, shifting to %s at packet %d\n",
		model.Name, len(tr.Packets), hotA, hotB, half)
	lastGen := eng.Generation()
	for i, p := range tr.Packets {
		hot := hotA
		if i >= half {
			hot = hotB
		}
		if i == half {
			fmt.Printf("pkt %5d: --- feature-mix shift: hot read %s -> %s ---\n", i, hotA, hotB)
		}
		if !eng.Rx(p) {
			fatal(fmt.Errorf("rx stalled at packet %d", i))
		}
		idx := i
		eng.Poll(func(pkt, cmpt []byte, rt *codegen.Runtime) {
			for _, n := range names {
				if n != hot && idx%16 != 0 {
					continue
				}
				if _, err := rt.Read(n, cmpt, pkt); err == nil {
					eng.NoteRead(n)
				}
			}
		})
		if g := eng.Generation(); g != lastGen {
			lastGen = g
			st := eng.Stats()
			fmt.Printf("pkt %5d: switchover -> generation %d, hardware now %s (%dB), drained %d, latency p50 %dns\n",
				i, g, eng.Result().HardwareSet(), eng.Result().CompletionBytes(),
				st.PacketsDrained, st.SwitchLatencyP50)
			if d := eng.LastDiff(); d != nil {
				for _, line := range strings.Split(strings.TrimRight(d.String(), "\n"), "\n") {
					fmt.Printf("           %s\n", line)
				}
			}
		}
	}

	st := eng.Stats()
	devst := eng.Device().Stats()
	fmt.Printf("\ndone: rx=%d drops=%d delivered=%d\n", devst.RxPackets, devst.Drops, st.Delivered)
	fmt.Printf("control plane: generation=%d renegotiations=%d switchovers=%d rollbacks=%d unsat=%d switch-drops=%d (must be 0)\n",
		st.Generation, st.Renegotiations, st.Switchovers, st.Rollbacks, st.Unsat, st.SwitchDrops)
	if len(st.Reads) > 0 {
		fmt.Printf("read mix:")
		for _, n := range names {
			if c, ok := st.Reads[n]; ok {
				fmt.Printf(" %s=%d", n, c)
			}
		}
		fmt.Println()
	}
	if dump {
		fmt.Printf("\ndevice/ring/shim/evolve counters (%s):\n%s", model.Name, reg.Table())
	}
	finishFlight(eng.Flight())
	if st.SwitchDrops != 0 {
		fatal(fmt.Errorf("%d packets dropped across switchovers", st.SwitchDrops))
	}
	if statsAddr != "" {
		fmt.Println("\nstill serving the stats endpoint; Ctrl-C to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// flightTrace/flightDump are the -flight / -flight-dump flag values, shared
// by all three run paths.
var flightTrace, flightDump string

// armFlight applies the -flight-dump directory and mounts the live
// /debug/flight endpoint next to /metrics.
func armFlight(rec *flight.Recorder, reg *obs.Registry) {
	if flightDump != "" {
		rec.SetDumpDir(flightDump)
	}
	reg.Handle("/debug/flight", rec.Handler())
}

// finishFlight reports postmortems captured during the run and writes the
// -flight Chrome-trace export.
func finishFlight(rec *flight.Recorder) {
	if n := rec.Postmortems(); n > 0 {
		fmt.Printf("flight recorder: %d postmortem(s) captured", n)
		if reason, _, ok := rec.LastPostmortem(); ok {
			fmt.Printf(", last: %q", reason)
		}
		fmt.Println()
		for _, f := range rec.DumpFiles() {
			fmt.Printf("  dump: %s\n", f)
		}
	}
	if flightTrace == "" {
		return
	}
	f, err := os.Create(flightTrace)
	if err != nil {
		fatal(err)
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("flight trace: %s (open in https://ui.perfetto.dev)\n", flightTrace)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nicsim: %v\n", err)
	os.Exit(1)
}
