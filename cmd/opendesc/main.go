// Command opendesc is the OpenDesc compiler driver: it maps an application's
// metadata intent onto a NIC interface description, selects the optimal
// completion path (Eq. 1), and emits a report plus generated accessors.
//
// Usage:
//
//	opendesc -list
//	opendesc -nic e1000e -req rss,ip_checksum
//	opendesc -nic mlx5 -intent app.p4 -backend go -o gen/
//	opendesc -nic qdma -req kv_key,rss -backend ebpf
//	opendesc -nic e1000e -req rss -backend dot > cfg.dot
//	opendesc flight dump.odfl            # decode a flight-recorder postmortem
//	opendesc flight -chrome dump.odfl    # ... as Perfetto-loadable JSON
//	opendesc flight -merge a.odfl b.odfl # N dumps, one time-aligned trace
//	opendesc fleettrace spans.json *.odfl  # controller spans + host rings merged
//	opendesc chaos -cases 1000           # deterministic whole-stack chaos sweep
//	opendesc chaos -seed 7 -bug -shrink  # catch the canary bug, emit a minimal reproducer
//	opendesc chaos -replay repro.chaos   # replay a shrunk reproducer spec
//	opendesc describe -nic mlx5          # emit the fleet discovery document
//	opendesc describe -check desc.json   # validate one as the controller would
//	opendesc verify e1000e               # differential verification: 4 views × all paths
//	opendesc verify -all -mutants 32     # ... every bundled NIC + adversarial mutants
//	opendesc verify -break mlx5          # ablation: harness catches an injected accessor bug
//
// The -nic flag accepts a bundled model name (see -list) or a path to a .p4
// interface description. The intent comes from -intent (a P4 file with a
// @semantic-annotated header, paper Fig. 5) or -req (a comma-separated
// semantic list).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/obs"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
)

func main() {
	// Subcommand dispatch before flag parsing: `opendesc flight <dump>`
	// decodes a flight-recorder postmortem dump; `opendesc chaos` runs the
	// deterministic simulation harness.
	if len(os.Args) > 1 && os.Args[1] == "flight" {
		if err := runFlight(os.Args[2:], os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "fleettrace" {
		if err := runFleetTrace(os.Args[2:], os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		if err := runChaos(os.Args[2:], os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "describe" {
		if err := runDescribe(os.Args[2:], os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "verify" {
		if err := runVerify(os.Args[2:], os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	var (
		list       = flag.Bool("list", false, "list bundled NIC models and exit")
		nicArg     = flag.String("nic", "", "NIC model name or .p4 description file")
		intentFile = flag.String("intent", "", "application intent .p4 file")
		intentHdr  = flag.String("intent-header", "", "intent header name (default: the @semantic-annotated header)")
		req        = flag.String("req", "", "comma-separated requested semantics (alternative to -intent)")
		backend    = flag.String("backend", "report", "output backend: report, go, c, ebpf, dot")
		outDir     = flag.String("o", "", "write generated files into this directory (default stdout)")
		pkg        = flag.String("pkg", "opendescgen", "package name for the Go backend")
		prefix     = flag.String("prefix", "opendesc", "symbol prefix for the C backend")
		alpha      = flag.Float64("alpha", 0, "DMA footprint weight α (0 = default, negative = ignore footprint)")
		noPrune    = flag.Bool("no-prune", false, "disable symbolic path pruning (debugging)")
		plan       = flag.Bool("plan", false, "print the offload placement plan (software vs programmable pipeline)")
		traceFlag  = flag.Bool("trace", false, "print a per-stage compile span report (parse → sema → cfg → paths → select → codegen)")
		diffMode   = flag.Bool("diff", false, "compare two NIC descriptions under one intent: opendesc -diff old.p4 new.p4 -req ... (or -intent)")
	)
	flag.Parse()

	if *list {
		for _, m := range nic.All() {
			paths, err := m.Paths()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-8s %-22s %-12s %d completion paths — %s\n",
				m.Name, m.Vendor, m.Kind, len(paths), m.Description)
		}
		return
	}
	if *diffMode {
		// Standard flag parsing stops at the first positional argument, so
		// `-diff old.p4 new.p4 -intent app.p4` leaves the trailing intent
		// flags unparsed; pick up the two descriptions and re-parse the rest.
		args := flag.Args()
		if len(args) < 2 {
			fatal(fmt.Errorf("-diff needs two NIC descriptions (old new), got %d", len(args)))
		}
		if err := flag.CommandLine.Parse(args[2:]); err != nil {
			fatal(err)
		}
		if flag.NArg() > 0 {
			fatal(fmt.Errorf("-diff: unexpected arguments %v", flag.Args()))
		}
		intent, err := loadIntent(*intentFile, *intentHdr, *req)
		if err != nil {
			fatal(err)
		}
		out, err := runDiff(args[0], args[1], intent, *alpha)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	if *nicArg == "" {
		fatal(fmt.Errorf("missing -nic (try -list)"))
	}

	var tr *obs.Trace
	if *traceFlag {
		tr = obs.NewTrace("compile " + *nicArg)
	}
	spec, nicName, err := loadNICTraced(*nicArg, tr)
	if err != nil {
		fatal(err)
	}
	intent, err := loadIntent(*intentFile, *intentHdr, *req)
	if err != nil {
		fatal(err)
	}

	opts := core.CompileOptions{
		Select:    core.SelectOptions{Alpha: *alpha},
		Enumerate: core.EnumerateOptions{DisablePruning: *noPrune},
		Trace:     tr,
	}
	res, err := core.Compile(nicName, spec, intent, opts)
	if err != nil {
		fatal(err)
	}

	if *plan {
		caps := core.PipelineCaps{}
		if m, err := nic.Load(nicName); err == nil {
			caps = m.Pipeline
		}
		p, err := core.PlanOffloads(res, caps, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Print(p)
		if prog := p.PipelineProgram(); prog != "" {
			fmt.Println("\n// P4 pushed to the programmable pipeline:")
			fmt.Print(prog)
		}
		if tr != nil {
			fmt.Print(tr.Report())
		}
		return
	}

	var sp *obs.Span
	if tr != nil {
		sp = tr.Start("codegen").Annotate("backend", *backend)
	}
	var out string
	switch *backend {
	case "report":
		out = res.Report()
	case "go":
		out = codegen.GenGo(res, *pkg)
	case "c":
		out = codegen.GenC(res, *prefix)
	case "ebpf":
		out = codegen.GenEBPF(res)
	case "dot":
		out = res.Graph.DOT()
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}
	if sp != nil {
		sp.Annotate("bytes", len(out)).End()
	}
	switch *backend {
	case "report":
		emit(*outDir, "report.txt", out)
	case "go":
		emit(*outDir, "accessors.go", out)
	case "c":
		emit(*outDir, "accessors.h", out)
	case "ebpf":
		emit(*outDir, "accessors_bpf.c", out)
	case "dot":
		emit(*outDir, "deparser.dot", out)
	}
	if tr != nil {
		fmt.Print(tr.Report())
	}
}

// runDiff compiles the same intent against two NIC descriptions (bundled
// model names or .p4 files) and renders the interface drift report — which
// accessors moved, resized, or fell back to software, and whether the drift
// breaks fixed-offset readers or only regenerated accessors.
func runDiff(oldArg, newArg string, intent *core.Intent, alpha float64) (string, error) {
	oldSpec, oldName, err := loadNIC(oldArg)
	if err != nil {
		return "", err
	}
	newSpec, newName, err := loadNIC(newArg)
	if err != nil {
		return "", err
	}
	opts := core.CompileOptions{Select: core.SelectOptions{Alpha: alpha}}
	oldRes, err := core.Compile(oldName, oldSpec, intent, opts)
	if err != nil {
		return "", fmt.Errorf("compiling against %s: %w", oldName, err)
	}
	newRes, err := core.Compile(newName, newSpec, intent, opts)
	if err != nil {
		return "", fmt.Errorf("compiling against %s: %w", newName, err)
	}
	d, err := core.DiffResults(oldRes, newRes)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "OpenDesc interface drift: %s -> %s under intent %s\n",
		oldName, newName, intent.Req())
	sb.WriteString(d.String())
	switch {
	case len(d.LostSemantics()) > 0:
		fmt.Fprintf(&sb, "verdict: BREAKING — semantics lost: %v\n", d.LostSemantics())
	case d.Breaking():
		sb.WriteString("verdict: breaking for fixed-offset readers; regenerated accessors stay correct\n")
	default:
		sb.WriteString("verdict: compatible — no accessor drift\n")
	}
	return sb.String(), nil
}

// loadNIC resolves a bundled model name or a .p4 file into a deparser spec.
func loadNIC(arg string) (core.DeparserSpec, string, error) {
	return loadNICTraced(arg, nil)
}

// loadNICTraced is loadNIC with optional frontend span recording: when tr is
// non-nil the NIC description is (re)parsed and checked under "parse" and
// "sema" spans — also for bundled models, whose cached Info would otherwise
// hide the frontend cost.
func loadNICTraced(arg string, tr *obs.Trace) (core.DeparserSpec, string, error) {
	var name, file, src string
	if !strings.ContainsAny(arg, "./") {
		m, err := nic.Load(arg)
		if err != nil {
			return core.DeparserSpec{}, "", err
		}
		if tr == nil {
			return m.Deparser, m.Name, nil
		}
		name, file, src = m.Name, m.Name+".p4", m.Source
	} else {
		b, err := os.ReadFile(arg)
		if err != nil {
			return core.DeparserSpec{}, "", err
		}
		name, file, src = strings.TrimSuffix(filepath.Base(arg), ".p4"), arg, string(b)
	}
	var sp *obs.Span
	if tr != nil {
		sp = tr.Start("parse").Annotate("source_bytes", len(src))
	}
	prog, err := parser.Parse(file, src)
	if err != nil {
		return core.DeparserSpec{}, "", err
	}
	if sp != nil {
		sp.End()
		sp = tr.Start("sema")
	}
	info, err := sema.Check(prog)
	if err != nil {
		return core.DeparserSpec{}, "", err
	}
	if sp != nil {
		sp.Annotate("controls", len(info.Prog.Controls())).End()
	}
	return core.DeparserSpec{Info: info}, name, nil
}

func loadIntent(file, header, req string) (*core.Intent, error) {
	switch {
	case file != "" && req != "":
		return nil, fmt.Errorf("-intent and -req are mutually exclusive")
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		prog, err := parser.Parse(file, string(src))
		if err != nil {
			return nil, err
		}
		info, err := sema.Check(prog)
		if err != nil {
			return nil, err
		}
		return core.ParseIntent(info, header)
	case req != "":
		var names []semantics.Name
		for _, s := range strings.Split(req, ",") {
			s = strings.TrimSpace(s)
			if s != "" {
				names = append(names, semantics.Name(s))
			}
		}
		return core.IntentFromSemantics("cli_intent", semantics.Default, names...)
	default:
		return nil, fmt.Errorf("missing intent: pass -intent app.p4 or -req rss,vlan,...")
	}
}

func emit(dir, name, content string) {
	if dir == "" {
		fmt.Print(content)
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "opendesc: %v\n", err)
	os.Exit(1)
}
