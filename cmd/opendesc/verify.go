package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"opendesc/internal/diffverify"
	"opendesc/internal/nic"
)

// runVerify implements `opendesc verify`: run the S27 differential harness
// on one description (or every bundled one) — static layout, independent
// CFG walk, P4 interpreter, generated accessors and SoftNIC golden model
// cross-checked over the full completion-path space — and print PASS with
// coverage counts or FAIL with the minimal reproducer. Optional extras: a
// seeded adversarial mutant sweep, the deliberately-broken-accessor
// ablation (proof the harness catches codegen bugs), and the digest-keyed
// certificate the fleet controller gates provisioning on.
//
//	opendesc verify e1000e               # one bundled description, exhaustive
//	opendesc verify path/to/desc.p4      # same, from a file
//	opendesc verify -all                 # all six bundled descriptions
//	opendesc verify -mutants 64 qdma     # + screen 64 seeded mutants
//	opendesc verify -break e1000e        # ablation: inject an accessor bug
//	opendesc verify -cert mlx5           # print the verification certificate
func runVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		all      = fs.Bool("all", false, "verify every bundled NIC description")
		breakAcc = fs.Bool("break", false, "deliberately mis-offset the first generated accessor by one bit (ablation: the harness must catch it)")
		mutants  = fs.Int("mutants", 0, "additionally screen this many seeded adversarial mutants")
		seed     = fs.Uint64("seed", 1, "mutant sweep seed (same seed ⇒ same mutants ⇒ same verdicts)")
		cert     = fs.Bool("cert", false, "print the digest-keyed verification certificate instead of the full report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	type target struct{ name, src string }
	var targets []target
	switch {
	case *all && fs.NArg() > 0:
		return fmt.Errorf("verify: -all and an explicit description are mutually exclusive")
	case *all:
		for _, m := range nic.All() {
			targets = append(targets, target{m.Name, m.Source})
		}
	case fs.NArg() == 1:
		name, src, err := loadVerifySource(fs.Arg(0))
		if err != nil {
			return err
		}
		targets = append(targets, target{name, src})
	default:
		return fmt.Errorf("verify: pass one description (bundled name or .p4 file) or -all")
	}

	failed := 0
	for _, tgt := range targets {
		if *cert {
			c := diffverify.Certify(tgt.name, tgt.src)
			verdict := "PASS"
			if !c.Passed {
				verdict, failed = "FAIL", failed+1
			}
			fmt.Fprintf(out, "certificate %s %.12s…: %s (%d paths, %d cases, %d checks)\n",
				c.NIC, c.Digest, verdict, c.Paths, c.Cases, c.Checks)
			if c.Reason != "" {
				fmt.Fprintf(out, "  reason: %s\n", c.Reason)
			}
			continue
		}
		rep, err := diffverify.VerifySource(tgt.name, tgt.src, diffverify.Options{BreakAccessor: *breakAcc})
		if err != nil {
			fmt.Fprintf(out, "diffverify %s: REJECTED: %v\n", tgt.name, err)
			failed++
			continue
		}
		fmt.Fprintln(out, rep)
		if !rep.OK() {
			failed++
		}
		if *mutants > 0 {
			counts := map[string]int{}
			for _, v := range diffverify.Sweep(tgt.name, tgt.src, *seed, *mutants) {
				counts[v.Outcome]++
				if v.Outcome == diffverify.OutcomeDisagree {
					failed++
					fmt.Fprintf(out, "mutant seed %#x (ops %s) DISAGREES: %s\n", v.Seed, v.Ops, v.Reason)
				}
			}
			fmt.Fprintf(out, "mutants %s: %d screened (seed %#x): %d pass, %d rejected, %d disagree, %d mutate-error\n",
				tgt.name, *mutants, *seed, counts[diffverify.OutcomePass], counts[diffverify.OutcomeRejected],
				counts[diffverify.OutcomeDisagree], counts[diffverify.OutcomeMutateError])
		}
	}
	if failed > 0 {
		return fmt.Errorf("verify: %d verdict(s) failed", failed)
	}
	return nil
}

// loadVerifySource resolves a bundled model name or .p4 file path into the
// (name, source) pair the harness wants (it reruns the whole frontend
// itself — the certificate must cover exactly what a fleet host would
// publish, not a pre-parsed shortcut).
func loadVerifySource(arg string) (string, string, error) {
	if !strings.ContainsAny(arg, "./") {
		m, err := nic.Load(arg)
		if err != nil {
			return "", "", err
		}
		return m.Name, m.Source, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return strings.TrimSuffix(filepath.Base(arg), ".p4"), string(b), nil
}
