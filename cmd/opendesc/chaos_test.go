package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunChaosClean: a small clean sweep exits zero and reports its summary.
func TestRunChaosClean(t *testing.T) {
	var out bytes.Buffer
	if err := runChaos([]string{"-cases", "3", "-steps", "96"}, &out); err != nil {
		t.Fatalf("clean sweep failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Errorf("summary missing violation count:\n%s", out.String())
	}
}

// TestRunChaosBugShrinkReplay drives the full CLI loop: -bug re-opens the
// resync liveness bug, -shrink emits a reproducer spec, and -replay runs the
// spec back to the same violation.
func TestRunChaosBugShrinkReplay(t *testing.T) {
	// Find a violating seed first (cheap — the bug trips quickly).
	var seed string
	var out bytes.Buffer
	for _, s := range []string{"1", "2", "3", "4", "5", "6", "7", "8"} {
		out.Reset()
		if err := runChaos([]string{"-seed", s, "-steps", "256", "-bug"}, &out); err != nil {
			seed = s
			break
		}
	}
	if seed == "" {
		t.Fatal("no seed in 1..8 tripped an oracle with -bug")
	}

	out.Reset()
	err := runChaos([]string{"-seed", seed, "-steps", "256", "-bug", "-shrink"}, &out)
	if err == nil {
		t.Fatalf("violating run exited zero:\n%s", out.String())
	}
	text := out.String()
	if !strings.Contains(text, "chaos FAIL") || !strings.Contains(text, "shrunk to") {
		t.Fatalf("missing failure/shrink report:\n%s", text)
	}
	// Extract the emitted spec (everything from the reproducer header on).
	i := strings.Index(text, "# opendesc chaos reproducer")
	if i < 0 {
		t.Fatalf("no reproducer spec in output:\n%s", text)
	}
	spec := filepath.Join(t.TempDir(), "repro.chaos")
	if err := os.WriteFile(spec, []byte(text[i:]), 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := runChaos([]string{"-replay", spec}, &out); err == nil {
		t.Fatalf("replayed reproducer did not violate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "chaos FAIL") {
		t.Errorf("replay report missing FAIL:\n%s", out.String())
	}
}

// TestRunChaosFlagErrors covers the argument-validation paths.
func TestRunChaosFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := runChaos([]string{"-mode", "yolo"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := runChaos([]string{"stray"}, &out); err == nil {
		t.Error("stray positional argument accepted")
	}
	if err := runChaos([]string{"-replay", "/nonexistent/x.chaos"}, &out); err == nil {
		t.Error("missing replay file accepted")
	}
}
