package main

import (
	"os"
	"path/filepath"
	"testing"

	"opendesc/internal/semantics"
)

func TestLoadNICByName(t *testing.T) {
	spec, name, err := loadNIC("e1000e")
	if err != nil {
		t.Fatal(err)
	}
	if name != "e1000e" || spec.Info == nil {
		t.Errorf("spec = %+v name = %q", spec, name)
	}
	if _, _, err := loadNIC("notanic"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestLoadNICFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "custom.p4")
	src := `
struct ctx_t { bit<1> f; }
header d_t { bit<8> x; }
struct meta_t { @semantic("rss") bit<32> h; }
@bind("CTX","ctx_t") @bind("DESC","d_t") @bind("META","meta_t")
control CmptDeparser<CTX,DESC,META>(cmpt_out co, in CTX ctx, in DESC d, in META m) {
    apply { co.emit(m.h); }
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, name, err := loadNIC(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "custom" {
		t.Errorf("name = %q", name)
	}
	if spec.Info.Prog.Control("CmptDeparser") == nil {
		t.Error("control not parsed")
	}
	// Malformed file errors cleanly.
	bad := filepath.Join(dir, "bad.p4")
	os.WriteFile(bad, []byte("header {"), 0o644)
	if _, _, err := loadNIC(bad); err == nil {
		t.Error("malformed description should fail")
	}
	if _, _, err := loadNIC(filepath.Join(dir, "missing.p4")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadIntentFromReq(t *testing.T) {
	it, err := loadIntent("", "", "rss, vlan ,ip_checksum")
	if err != nil {
		t.Fatal(err)
	}
	req := it.Req()
	for _, s := range []semantics.Name{semantics.RSS, semantics.VLAN, semantics.IPChecksum} {
		if !req.Has(s) {
			t.Errorf("missing %s", s)
		}
	}
	if _, err := loadIntent("", "", "not_a_semantic"); err == nil {
		t.Error("unknown semantic should fail")
	}
	if _, err := loadIntent("", "", ""); err == nil {
		t.Error("empty intent should fail")
	}
}

func TestLoadIntentFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "intent.p4")
	src := `
header intent_t {
    @semantic("rss") bit<32> h;
    @semantic("vlan") bit<16> v;
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	it, err := loadIntent(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if it.Name != "intent_t" || len(it.Fields) != 2 {
		t.Errorf("intent = %+v", it)
	}
	// Explicit header name selects, wrong name fails.
	if _, err := loadIntent(path, "intent_t", ""); err != nil {
		t.Errorf("named header: %v", err)
	}
	if _, err := loadIntent(path, "nope_t", ""); err == nil {
		t.Error("wrong header name should fail")
	}
	// File and req together are rejected.
	if _, err := loadIntent(path, "", "rss"); err == nil {
		t.Error("-intent and -req must be mutually exclusive")
	}
}
