package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opendesc/internal/semantics"
)

func TestLoadNICByName(t *testing.T) {
	spec, name, err := loadNIC("e1000e")
	if err != nil {
		t.Fatal(err)
	}
	if name != "e1000e" || spec.Info == nil {
		t.Errorf("spec = %+v name = %q", spec, name)
	}
	if _, _, err := loadNIC("notanic"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestLoadNICFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "custom.p4")
	src := `
struct ctx_t { bit<1> f; }
header d_t { bit<8> x; }
struct meta_t { @semantic("rss") bit<32> h; }
@bind("CTX","ctx_t") @bind("DESC","d_t") @bind("META","meta_t")
control CmptDeparser<CTX,DESC,META>(cmpt_out co, in CTX ctx, in DESC d, in META m) {
    apply { co.emit(m.h); }
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, name, err := loadNIC(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "custom" {
		t.Errorf("name = %q", name)
	}
	if spec.Info.Prog.Control("CmptDeparser") == nil {
		t.Error("control not parsed")
	}
	// Malformed file errors cleanly.
	bad := filepath.Join(dir, "bad.p4")
	os.WriteFile(bad, []byte("header {"), 0o644)
	if _, _, err := loadNIC(bad); err == nil {
		t.Error("malformed description should fail")
	}
	if _, _, err := loadNIC(filepath.Join(dir, "missing.p4")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadIntentFromReq(t *testing.T) {
	it, err := loadIntent("", "", "rss, vlan ,ip_checksum")
	if err != nil {
		t.Fatal(err)
	}
	req := it.Req()
	for _, s := range []semantics.Name{semantics.RSS, semantics.VLAN, semantics.IPChecksum} {
		if !req.Has(s) {
			t.Errorf("missing %s", s)
		}
	}
	if _, err := loadIntent("", "", "not_a_semantic"); err == nil {
		t.Error("unknown semantic should fail")
	}
	if _, err := loadIntent("", "", ""); err == nil {
		t.Error("empty intent should fail")
	}
}

func TestLoadIntentFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "intent.p4")
	src := `
header intent_t {
    @semantic("rss") bit<32> h;
    @semantic("vlan") bit<16> v;
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	it, err := loadIntent(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if it.Name != "intent_t" || len(it.Fields) != 2 {
		t.Errorf("intent = %+v", it)
	}
	// Explicit header name selects, wrong name fails.
	if _, err := loadIntent(path, "intent_t", ""); err != nil {
		t.Errorf("named header: %v", err)
	}
	if _, err := loadIntent(path, "nope_t", ""); err == nil {
		t.Error("wrong header name should fail")
	}
	// File and req together are rejected.
	if _, err := loadIntent(path, "", "rss"); err == nil {
		t.Error("-intent and -req must be mutually exclusive")
	}
}

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files under testdata/")

func TestRunDiffGolden(t *testing.T) {
	intent, err := loadIntent("", "", "rss,vlan,pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	out, err := runDiff("e1000", "e1000e", intent, 0)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "diff_e1000_e1000e.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("diff report drifted from golden:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

func TestRunDiffIdentical(t *testing.T) {
	intent, err := loadIntent("", "", "rss,pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	out, err := runDiff("ixgbe", "ixgbe", intent, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "compatible — no accessor drift") {
		t.Errorf("self-diff not compatible:\n%s", out)
	}
}

func TestRunDiffErrors(t *testing.T) {
	intent, err := loadIntent("", "", "rss")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runDiff("notanic", "e1000e", intent, 0); err == nil {
		t.Error("unknown old model should fail")
	}
	if _, err := runDiff("e1000e", "notanic", intent, 0); err == nil {
		t.Error("unknown new model should fail")
	}
	// An intent one side cannot satisfy surfaces as a compile error naming
	// the failing model.
	ts, err := loadIntent("", "", "timestamp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runDiff("e1000", "mlx5", ts, 0); err == nil || !strings.Contains(err.Error(), "e1000") {
		t.Errorf("unsat old side: err = %v, want mention of e1000", err)
	}
}
