package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"opendesc/internal/obs/flight"
)

// testSnapshot is a deterministic flight snapshot covering the event shapes
// the decoder has to render: instants, a deliver span with latencies, and
// the degrade→reset→restore recovery arc.
func testSnapshot() *flight.Snapshot {
	return &flight.Snapshot{
		Reason: "watchdog-degrade",
		Epoch:  time.Unix(1700000000, 0).UTC(),
		Queues: []flight.QueueEvents{{
			ID:   0,
			Name: "q0",
			Events: []flight.Event{
				{TS: 1000, Code: flight.EvDMAEmit, Seq: 1, Arg0: 8, Arg1: 2},
				{TS: 1100, Code: flight.EvRingPush, Seq: 0, Arg0: 1},
				{TS: 2000, Code: flight.EvRingPop, Seq: 0, Arg0: 0},
				{TS: 2100, Code: flight.EvVerdict, Seq: 1, Arg0: 0, Arg1: 8},
				{TS: 2200, Code: flight.EvReadHW, Seq: 1, Arg0: flight.PackName("rss")},
				{TS: 2500, Code: flight.EvDeliver, Seq: 1, Arg0: 900, Arg1: 1500},
				{TS: 5000, Code: flight.EvDegrade, Seq: 1, Arg0: 8},
				{TS: 6000, Code: flight.EvResetAttempt, Seq: 1, Arg0: 1, Arg1: 1},
				{TS: 7000, Code: flight.EvRestore, Seq: 1, Arg0: 1},
			},
		}},
	}
}

// writeDump serializes the test snapshot to a temp .odfl file.
func writeDump(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.odfl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := testSnapshot().WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFlightText(t *testing.T) {
	path := writeDump(t)
	var out bytes.Buffer
	if err := runFlight([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"reason: watchdog-degrade",
		`queue 0 "q0": 9 events`,
		"dma_emit", "verdict", "sem=rss",
		"dma→poll=900ns dma→deliver=1500ns",
		"degrade", "reset_attempt", "restore",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("decoded text missing %q:\n%s", want, text)
		}
	}
}

func TestRunFlightChromeGolden(t *testing.T) {
	path := writeDump(t)
	var out bytes.Buffer
	if err := runFlight([]string{"-chrome", path}, &out); err != nil {
		t.Fatal(err)
	}
	// Well-formedness: the export must parse as trace_event JSON with the
	// expected top-level shape.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, out.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no traceEvents")
	}
	golden := filepath.Join("testdata", "flight_trace.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden (run with -update-golden to refresh):\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

func TestRunFlightErrors(t *testing.T) {
	if err := runFlight([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("no arguments should fail")
	}
	if err := runFlight([]string{filepath.Join(t.TempDir(), "missing.odfl")}, &bytes.Buffer{}); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.odfl")
	if err := os.WriteFile(bad, []byte("not a dump"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runFlight([]string{bad}, &bytes.Buffer{}); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestRunFlightOutputFile(t *testing.T) {
	path := writeDump(t)
	outPath := filepath.Join(t.TempDir(), "decoded.txt")
	if err := runFlight([]string{"-o", outPath, path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "flight snapshot") {
		t.Errorf("-o output incomplete: %q", b)
	}
}

func TestRunFlightMergeGolden(t *testing.T) {
	dir := t.TempDir()
	a := writeSnapshotDump(t, dir, "host-a", testSnapshot())
	b := writeSnapshotDump(t, dir, "host-b", secondSnapshot())

	var out bytes.Buffer
	if err := runFlight([]string{"-merge", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("merged export is not valid JSON: %v\n%s", err, out.String())
	}
	// Both dumps contribute, on distinct process tracks named by basename.
	pids := map[float64]bool{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid] = true
		}
		if ev["name"] == "process_name" {
			if args, ok := ev["args"].(map[string]any); ok {
				names[args["name"].(string)] = true
			}
		}
	}
	if len(pids) < 2 || !names["host-a"] || !names["host-b"] {
		t.Fatalf("merged trace lacks per-file process tracks: pids=%v names=%v", pids, names)
	}

	golden := filepath.Join("testdata", "flight_merge.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("merged trace drifted from golden (run with -update-golden to refresh):\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

func TestRunFlightMergeErrors(t *testing.T) {
	if err := runFlight([]string{"-merge"}, &bytes.Buffer{}); err == nil {
		t.Error("-merge with no files should fail")
	}
	path := writeDump(t)
	if err := runFlight([]string{path, path}, &bytes.Buffer{}); err == nil {
		t.Error("two files without -merge should fail")
	}
}
