package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"opendesc/internal/fleet"
	"opendesc/internal/nic"
)

// runDescribe implements `opendesc describe`: emit the self-describing
// discovery document a fleet host would answer the describe handshake with
// (schema-versioned JSON embedding the P4 description, its content digest,
// and the derived capability model), or — with -check — validate such a
// document exactly as the fleet controller's inventory sweep does and print
// either the derived capabilities or the quarantine reason.
//
//	opendesc describe -nic mlx5                  # emit the discovery document
//	opendesc describe -nic mlx5 -host web-07     # ... under a host name
//	opendesc describe -check desc.json           # controller-side validation
func runDescribe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("describe", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		nicName = fs.String("nic", "", "bundled NIC model to describe (see opendesc -list)")
		host    = fs.String("host", "host", "host name stamped into the document")
		check   = fs.String("check", "", "validate a description document (JSON file, '-' for stdin) instead of emitting one")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *check != "" {
		data, err := readDoc(*check)
		if err != nil {
			return err
		}
		v, err := fleet.Validate(data)
		if err != nil {
			// The error string is exactly the operator-visible quarantine
			// reason the controller would record.
			fmt.Fprintf(out, "QUARANTINE: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "valid %s description from host %q\n", fleet.SchemaVersion, v.Desc.Host)
		fmt.Fprintf(out, "  nic:     %s (%s, %s)\n", v.Desc.NIC, v.Desc.Vendor, v.Desc.Capabilities.Kind)
		fmt.Fprintf(out, "  digest:  %s\n", v.Digest)
		fmt.Fprintf(out, "  paths:   %d completion layouts, sizes %v bytes\n",
			v.Desc.Capabilities.Paths, v.Desc.Capabilities.CompletionBytes)
		sems := append([]string(nil), v.Desc.Capabilities.Semantics...)
		sort.Strings(sems)
		fmt.Fprintf(out, "  semantics: %v\n", sems)
		if v.Desc.Capabilities.Programmable {
			fmt.Fprintf(out, "  pipeline: programmable, stage budget %d\n", v.Desc.Capabilities.StageBudget)
		}
		return nil
	}

	if *nicName == "" {
		return fmt.Errorf("describe: pass -nic <model> to emit, or -check <file> to validate")
	}
	m, err := nic.Load(*nicName)
	if err != nil {
		return err
	}
	d, err := fleet.Describe(m, *host)
	if err != nil {
		return err
	}
	data, err := d.Encode()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", data)
	return err
}

func readDoc(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
