package main

// The fleettrace mode merges a controller span file (opendesc-spans/v1 JSON,
// written by `nicsim -fleet -trace`) with any number of host flight dumps
// into one Chrome trace: the rollout → trial → bake → promote/rollback span
// tree on the controller process, every host's flight ring on its own
// process, all on the shared virtual timeline.
//
//	opendesc fleettrace spans.json host-a.odfl host-b.odfl > trace.json

import (
	"flag"
	"fmt"
	"io"
	"os"

	"opendesc/internal/fleet/telemetry"
)

// runFleetTrace merges one span file and N flight dumps into a Chrome trace
// on w.
func runFleetTrace(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fleettrace", flag.ContinueOnError)
	outFile := fs.String("o", "", "write the merged trace to this file (default stdout)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: opendesc fleettrace [-o file] spans.json [host.odfl ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("fleettrace: a controller span file is required (usage: opendesc fleettrace spans.json host.odfl ...)")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	spans, err := telemetry.ReadSpans(f)
	f.Close()
	if err != nil {
		return err
	}
	hosts, err := readDumps(fs.Args()[1:])
	if err != nil {
		return err
	}
	if *outFile != "" {
		out, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer out.Close()
		w = out
	}
	return telemetry.WriteFleetTrace(w, spans, hosts)
}
