package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"opendesc/internal/fleet/telemetry"
	"opendesc/internal/obs/flight"
)

// secondSnapshot is a second deterministic host ring so merged traces have
// two distinct process tracks on one timeline.
func secondSnapshot() *flight.Snapshot {
	return &flight.Snapshot{
		Reason: "telemetry",
		Epoch:  time.Unix(1700000000, 0).UTC(),
		Queues: []flight.QueueEvents{{
			ID:   0,
			Name: "q0",
			Events: []flight.Event{
				{TS: 1500, Code: flight.EvRingPush, Seq: 0, Arg0: 1},
				{TS: 3100, Code: flight.EvDeliver, Seq: 1, Arg0: 400, Arg1: 900},
				{TS: 4200, Code: flight.EvGarbage, Seq: 2, Arg0: flight.PackName("rss"), Arg1: 3},
			},
		}},
	}
}

// writeSnapshotDump serializes one snapshot under the given basename; the
// basename becomes the merged trace's process name.
func writeSnapshotDump(t *testing.T, dir, base string, snap *flight.Snapshot) string {
	t.Helper()
	path := filepath.Join(dir, base+".odfl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// testSpans is a deterministic controller span tree: one rollout wrapping a
// trial and a bake, ending in a promote instant.
func testSpans() []telemetry.Span {
	return []telemetry.Span{
		{Name: "rollout widen gen 2", Cat: "rollout", Track: "rollout", StartNs: 1000, EndNs: 9000,
			Args: map[string]string{"gen": "2", "targets": "2"}},
		{Name: "trial host-a", Cat: "trial", Track: "host-a", StartNs: 1200, EndNs: 6000},
		{Name: "bake", Cat: "bake", Track: "bake", StartNs: 2000, EndNs: 8000},
		{Name: "promote", Cat: "verdict", Track: "rollout", StartNs: 9000, EndNs: 9000,
			Args: map[string]string{"hosts": "2"}},
	}
}

func writeSpanFile(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "spans.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteSpans(f, testSpans()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFleetTraceGolden(t *testing.T) {
	dir := t.TempDir()
	spans := writeSpanFile(t, dir)
	hostA := writeSnapshotDump(t, dir, "host-a", testSnapshot())
	hostB := writeSnapshotDump(t, dir, "host-b", secondSnapshot())

	var out bytes.Buffer
	if err := runFleetTrace([]string{spans, hostA, hostB}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("fleettrace export is not valid JSON: %v\n%s", err, out.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("fleettrace export has no traceEvents")
	}
	text := out.String()
	for _, want := range []string{
		`"controller"`, `"rollout widen gen 2"`, `"trial host-a"`, `"promote"`,
		`"host-a"`, `"host-b"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fleettrace output missing %s", want)
		}
	}

	golden := filepath.Join("testdata", "fleet_trace.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("fleet trace drifted from golden (run with -update-golden to refresh):\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

func TestRunFleetTraceErrors(t *testing.T) {
	if err := runFleetTrace([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("no arguments should fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"wrong/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runFleetTrace([]string{bad}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong span schema: err = %v, want schema rejection", err)
	}
}
