package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"opendesc/internal/chaos"
)

// runChaos implements `opendesc chaos`: deterministic whole-stack simulation
// under a seeded virtual-time scheduler.
//
//	opendesc chaos -seed 42 -steps 512              # one run, report the outcome
//	opendesc chaos -cases 1000                      # sweep seeds 1..1000
//	opendesc chaos -seed 42 -bug -shrink            # re-open the resync bug, shrink the failure
//	opendesc chaos -replay repro.chaos              # replay a shrunk reproducer spec
func runChaos(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		nicName = fs.String("nic", "e1000e", "bundled NIC model under test")
		mode    = fs.String("mode", "harden", "driver stack: harden or evolve")
		sems    = fs.String("sems", "", "comma-separated intent semantics (default rss,vlan,pkt_len)")
		queues  = fs.Int("queues", 1, "independent driver queues the scheduler interleaves")
		ringSz  = fs.Int("ring", 64, "completion ring entries per device")
		steps   = fs.Int("steps", 512, "schedule length per case")
		seed    = fs.Uint64("seed", 1, "schedule seed (single-run mode)")
		cases   = fs.Uint64("cases", 0, "sweep seeds 1..cases instead of a single -seed run")
		shrink  = fs.Bool("shrink", false, "on violation, delta-debug the schedule to a minimal reproducer")
		bug     = fs.Bool("bug", false, "disable the resync path (re-opens the known pre-PR3 liveness bug; canary for the oracles)")
		dumpDir = fs.String("dump", "", "write .odfl flight postmortems of violations into this directory")
		replay  = fs.String("replay", "", "replay a reproducer spec file instead of generating a schedule")
		verbose = fs.Bool("v", false, "print the full event trace of the (first violating) run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("chaos: unexpected arguments %v", fs.Args())
	}

	if *replay != "" {
		text, err := os.ReadFile(*replay)
		if err != nil {
			return err
		}
		cfg, sched, err := chaos.ParseSpec(string(text))
		if err != nil {
			return err
		}
		cfg.DumpDir = *dumpDir
		res := chaos.RunSchedule(cfg, sched)
		if *verbose {
			out.Write(res.Trace)
		}
		return chaosReport(out, cfg, sched.Seed, res, *shrink, sched)
	}

	m, err := chaos.ParseMode(*mode)
	if err != nil {
		return err
	}
	cfg := chaos.Config{
		NIC:           *nicName,
		Mode:          m,
		Queues:        *queues,
		RingEntries:   *ringSz,
		Steps:         *steps,
		DisableResync: *bug,
		DumpDir:       *dumpDir,
	}
	if *sems != "" {
		cfg.Semantics = strings.Split(*sems, ",")
	}

	if *cases > 0 {
		violations := 0
		for s := uint64(1); s <= *cases; s++ {
			res := chaos.Run(cfg, s)
			if res.Violation == nil {
				continue
			}
			violations++
			if *verbose {
				out.Write(res.Trace)
			}
			if err := chaosReport(out, cfg, s, res, *shrink, chaos.Generate(cfg, s)); err != nil {
				return err
			}
			// First violation is the report; keep counting the rest silently.
		}
		fmt.Fprintf(out, "chaos sweep: %d cases x %d steps (%s): %d violations\n",
			*cases, *steps, cfg, violations)
		if violations > 0 {
			return fmt.Errorf("chaos: %d of %d cases violated an invariant", violations, *cases)
		}
		return nil
	}

	res := chaos.Run(cfg, *seed)
	if *verbose {
		out.Write(res.Trace)
	}
	return chaosReport(out, cfg, *seed, res, *shrink, chaos.Generate(cfg, *seed))
}

// chaosReport prints a run summary; on a violation it optionally shrinks and
// emits the minimal reproducer spec, and always returns a non-nil error so
// the process exits non-zero.
func chaosReport(out io.Writer, cfg chaos.Config, seed uint64, res *chaos.Result, shrink bool, sched chaos.Schedule) error {
	if res.Violation == nil {
		fmt.Fprintf(out, "chaos ok: %s seed=%d events=%d accepted=%d delivered=%d rejected=%d switchovers=%d restores=%d quarantined=%d resyncs=%d\n",
			cfg, seed, res.Events, res.Accepted, res.Delivered, res.Rejected,
			res.Switchovers, res.Restores, res.Quarantined, res.Resyncs)
		return nil
	}
	fmt.Fprintf(out, "chaos FAIL: %v\n", res.Violation)
	for _, f := range res.DumpFiles {
		fmt.Fprintf(out, "  flight dump: %s\n", f)
	}
	if shrink {
		sh := chaos.ShrinkToSpec(cfg, sched, res.Violation)
		fmt.Fprintf(out, "shrunk to %d events — replay with `opendesc chaos -replay <file>`:\n%s",
			len(sh.Schedule.Events), sh.Spec)
	}
	return res.Violation
}
