package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runVerifyOut captures runVerify's rendering and error.
func runVerifyOut(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := runVerify(args, &sb)
	return sb.String(), err
}

func checkGolden(t *testing.T, name, out string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", name, out, want)
	}
}

// TestRunVerifyGolden: the exhaustive pass report for one bundled NIC is
// byte-stable (the harness is deterministic, so this golden is tight).
func TestRunVerifyGolden(t *testing.T) {
	out, err := runVerifyOut(t, "e1000e")
	if err != nil {
		t.Fatalf("verify e1000e failed: %v\n%s", err, out)
	}
	checkGolden(t, "verify_e1000e.golden", out)
}

// TestRunVerifyBreakGolden: the ablation run fails with the accessor-view
// reproducers, also byte-stable.
func TestRunVerifyBreakGolden(t *testing.T) {
	out, err := runVerifyOut(t, "-break", "e1000e")
	if err == nil {
		t.Fatalf("ablated verify passed:\n%s", out)
	}
	if !strings.Contains(out, "view=accessor") || !strings.Contains(out, "image ") {
		t.Errorf("failure rendering lacks the reproducer:\n%s", out)
	}
	checkGolden(t, "verify_break_e1000e.golden", out)
}

// TestRunVerifyAll: every bundled description passes exhaustively.
func TestRunVerifyAll(t *testing.T) {
	out, err := runVerifyOut(t, "-all")
	if err != nil {
		t.Fatalf("verify -all failed: %v\n%s", err, out)
	}
	if got := strings.Count(out, "PASS"); got != 6 {
		t.Errorf("%d PASS lines, want 6:\n%s", got, out)
	}
}

// TestRunVerifyMutants: the seeded sweep renders its histogram and is
// deterministic across invocations.
func TestRunVerifyMutants(t *testing.T) {
	a, err := runVerifyOut(t, "-mutants", "24", "-seed", "9", "ixgbe")
	if err != nil {
		t.Fatalf("mutant sweep failed: %v\n%s", err, a)
	}
	if !strings.Contains(a, "mutants ixgbe: 24 screened") {
		t.Errorf("missing sweep summary:\n%s", a)
	}
	b, err := runVerifyOut(t, "-mutants", "24", "-seed", "9", "ixgbe")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("mutant sweep output not deterministic for identical seed")
	}
}

// TestRunVerifyCert: certificate mode prints the digest-keyed verdict.
func TestRunVerifyCert(t *testing.T) {
	out, err := runVerifyOut(t, "-cert", "mlx5")
	if err != nil {
		t.Fatalf("cert failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "certificate mlx5") || !strings.Contains(out, "PASS") {
		t.Errorf("unexpected certificate rendering:\n%s", out)
	}
}

// TestRunVerifyFile: a .p4 file path resolves like any description; an
// unverifiable one (wide semantic field) is a structured rejection.
func TestRunVerifyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wide.p4")
	src := `
struct ctx_t { bit<1> f; }
struct meta_t { @semantic("rss") bit<96> h; }
@bind("CTX","ctx_t") @bind("META","meta_t")
control CmptDeparser<CTX,META>(cmpt_out co, in CTX ctx, in META m) {
    apply { co.emit(m.h); }
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runVerifyOut(t, path)
	if err == nil {
		t.Fatalf("wide-field description verified:\n%s", out)
	}
	if !strings.Contains(out, "REJECTED") || !strings.Contains(out, "96 bits") {
		t.Errorf("rejection rendering:\n%s", out)
	}
}

// TestRunVerifyArgErrors: flag misuse is reported, not silently tolerated.
func TestRunVerifyArgErrors(t *testing.T) {
	if _, err := runVerifyOut(t); err == nil {
		t.Error("no target should fail")
	}
	if _, err := runVerifyOut(t, "-all", "e1000e"); err == nil {
		t.Error("-all with an explicit target should fail")
	}
	if _, err := runVerifyOut(t, "notanic"); err == nil {
		t.Error("unknown model should fail")
	}
}
