package main

// The flight mode decodes flight-recorder dumps (.odfl files written by the
// driver's automatic postmortems or the /debug/flight?format=bin endpoint):
//
//	opendesc flight dump.odfl             # human-readable event listing
//	opendesc flight -chrome dump.odfl     # Chrome trace_event JSON (Perfetto)
//	opendesc flight -merge a.odfl b.odfl  # N dumps as one time-aligned trace

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"opendesc/internal/obs/flight"
)

// runFlight decodes .odfl dumps to w: the human-readable event listing by
// default, Chrome trace_event JSON with -chrome, or — with -merge — any
// number of dumps combined into one time-aligned Chrome trace, one process
// track per file (events share the hosts' virtual timeline, so cross-host
// causality lines up in Perfetto).
func runFlight(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("flight", flag.ContinueOnError)
	chrome := fs.Bool("chrome", false, "emit Chrome trace_event JSON (load in https://ui.perfetto.dev) instead of text")
	merge := fs.Bool("merge", false, "merge several dumps into one time-aligned Chrome trace (implies -chrome)")
	outFile := fs.String("o", "", "write the decoded output to this file (default stdout)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: opendesc flight [-chrome] [-merge] [-o file] dump.odfl [more.odfl ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *merge && fs.NArg() < 1:
		return fmt.Errorf("flight: -merge expects one or more dump files")
	case !*merge && fs.NArg() != 1:
		return fmt.Errorf("flight: exactly one dump file expected (usage: opendesc flight [-chrome] [-merge] [-o file] dump.odfl ...)")
	}
	if *outFile != "" {
		out, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer out.Close()
		w = out
	}
	if *merge {
		snaps, err := readDumps(fs.Args())
		if err != nil {
			return err
		}
		return flight.WriteMergedChromeTrace(w, snaps)
	}
	snaps, err := readDumps(fs.Args())
	if err != nil {
		return err
	}
	snap := snaps[0].Snap
	if *chrome {
		return snap.WriteChromeTrace(w)
	}
	_, err = io.WriteString(w, snap.Format())
	return err
}

// readDumps loads each .odfl file, naming its track after the file's
// basename (sans extension) — the convention `nicsim -fleet -flight-dump`
// and the host postmortem writer both follow, so merged tracks read as host
// names.
func readDumps(paths []string) ([]flight.NamedSnapshot, error) {
	var snaps []flight.NamedSnapshot
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		snap, err := flight.ReadDump(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("flight: decoding %s: %w", p, err)
		}
		name := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		snaps = append(snaps, flight.NamedSnapshot{Name: name, Snap: snap})
	}
	return snaps, nil
}
