package main

// The flight mode decodes flight-recorder dumps (.odfl files written by the
// driver's automatic postmortems or the /debug/flight?format=bin endpoint):
//
//	opendesc flight dump.odfl            # human-readable event listing
//	opendesc flight -chrome dump.odfl    # Chrome trace_event JSON (Perfetto)

import (
	"flag"
	"fmt"
	"io"
	"os"

	"opendesc/internal/obs/flight"
)

// runFlight decodes one .odfl dump to w: the human-readable event listing by
// default, Chrome trace_event JSON with -chrome.
func runFlight(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("flight", flag.ContinueOnError)
	chrome := fs.Bool("chrome", false, "emit Chrome trace_event JSON (load in https://ui.perfetto.dev) instead of text")
	outFile := fs.String("o", "", "write the decoded output to this file (default stdout)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: opendesc flight [-chrome] [-o file] dump.odfl")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("flight: exactly one dump file expected (usage: opendesc flight [-chrome] [-o file] dump.odfl)")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	snap, err := flight.ReadDump(f)
	if err != nil {
		return fmt.Errorf("flight: decoding %s: %w", fs.Arg(0), err)
	}
	if *outFile != "" {
		out, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer out.Close()
		w = out
	}
	if *chrome {
		return snap.WriteChromeTrace(w)
	}
	_, err = io.WriteString(w, snap.Format())
	return err
}
