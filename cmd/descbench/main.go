// Command descbench regenerates the OpenDesc experiment tables (DESIGN.md
// index E1–E22), emits the machine-readable benchmark artifacts
// (BENCH_<name>.json, schema opendesc-bench/v1), and compares two artifacts
// for the CI perf gate.
//
// Usage:
//
//	descbench                         # run every experiment table
//	descbench e1 e3 e5                # selected experiments
//	descbench -quick                  # shorter timing runs
//	descbench -emit dir e4 e11        # also write BENCH_*.json artifacts
//	descbench -profile dir e4         # cpu/heap/mutex pprof around the run
//	descbench baseline -out dir       # pinned-parameter artifact suite
//	descbench compare old.json new.json   # delta report, exit 1 on regression
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"opendesc/internal/bench"
	"opendesc/internal/perf"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "baseline":
			os.Exit(runBaseline(os.Args[2:]))
		case "compare":
			os.Exit(runCompare(os.Args[2:]))
		}
	}
	os.Exit(runExperiments(os.Args[1:]))
}

// startProfile opens a pprof capture when dir is non-empty.
func startProfile(dir string) *perf.Profile {
	if dir == "" {
		return nil
	}
	prof, err := perf.StartProfile(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "descbench: profile: %v\n", err)
		os.Exit(1)
	}
	return prof
}

func stopProfile(prof *perf.Profile) {
	if prof == nil {
		return
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "descbench: profile: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "profiles written to %s (cpu.pprof, heap.pprof, mutex.pprof)\n", prof.Dir)
}

// runBaseline runs the five artifact-emitting experiments at their pinned
// baseline parameters and writes one BENCH_<name>.json per experiment. This
// is what `make bench-baseline` and the CI perf-gate invoke.
func runBaseline(args []string) int {
	fs := flag.NewFlagSet("descbench baseline", flag.ExitOnError)
	out := fs.String("out", ".", "directory for BENCH_*.json artifacts")
	profileDir := fs.String("profile", "", "directory for cpu/heap/mutex pprof capture")
	handicap := fs.Float64("handicap", 1,
		"multiply recorded timing metrics (demonstrates the gate; never use for real baselines)")
	fs.Parse(args)
	bench.SetHandicap(*handicap)

	prof := startProfile(*profileDir)
	for _, e := range bench.BaselineExperiments() {
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "descbench baseline %s: %v\n", e.ID, err)
			return 1
		}
		if tab.Record == nil {
			fmt.Fprintf(os.Stderr, "descbench baseline %s: experiment emitted no record\n", e.ID)
			return 1
		}
		path, err := tab.Record.WriteFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "descbench baseline %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Printf("%s: %s\n", path, tab.Record.Summary())
	}
	stopProfile(prof)
	return 0
}

// runCompare loads two artifacts and prints the delta report; exit status 1
// signals at least one regression (the CI gate condition).
func runCompare(args []string) int {
	fs := flag.NewFlagSet("descbench compare", flag.ExitOnError)
	markdown := fs.Bool("markdown", false, "render the report as a markdown table")
	nsTh := fs.Float64("ns-threshold", perf.DefaultThresholds.TimingPct,
		"fractional regression allowed on timing metrics (count/alloc metrics are exact)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: descbench compare [-markdown] [-ns-threshold f] old.json new.json")
		return 2
	}
	oldRec, err := perf.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "descbench compare: %v\n", err)
		return 2
	}
	newRec, err := perf.Load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "descbench compare: %v\n", err)
		return 2
	}
	th := perf.DefaultThresholds
	th.TimingPct = *nsTh
	rep, err := perf.Compare(oldRec, newRec, th)
	if err != nil {
		fmt.Fprintf(os.Stderr, "descbench compare: %v\n", err)
		return 2
	}
	if *markdown {
		fmt.Print(rep.Markdown())
	} else {
		fmt.Print(rep.Text())
	}
	if !rep.OK() {
		return 1
	}
	return 0
}

// runExperiments is the classic table-regeneration mode (back compatible),
// now able to also write artifacts (-emit) and pprof captures (-profile).
func runExperiments(args []string) int {
	fs := flag.NewFlagSet("descbench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "shorter measurement windows")
	packets := fs.Int("packets", 512, "trace length for timing experiments")
	flightDump := fs.String("flight-dump", "", "directory for E17 flight-recorder postmortem dumps (.odfl)")
	emit := fs.String("emit", "", "directory for BENCH_*.json artifacts (experiments that emit records)")
	profileDir := fs.String("profile", "", "directory for cpu/heap/mutex pprof capture")
	handicap := fs.Float64("handicap", 1, "multiply recorded timing metrics (gate demonstration)")
	fs.Parse(args)
	bench.SetHandicap(*handicap)

	minDur := 200 * time.Millisecond
	if *quick {
		minDur = 20 * time.Millisecond
	}

	type exp struct {
		id  string
		run func() (*bench.Table, error)
	}
	experiments := []exp{
		{"e1", bench.E1PathSelection},
		{"e2", bench.E2MultiNIC},
		{"e3", bench.E3Coverage},
		{"e4", func() (*bench.Table, error) { return bench.E4Datapath(*packets, minDur) }},
		{"e5", bench.E5FootprintSweep},
		{"e6", bench.E6Unsatisfiable},
		{"e8", bench.E8QDMAFormats},
		{"e9", func() (*bench.Table, error) { return bench.E9MbufDyn(minDur) }},
		{"e10", bench.E10CompileTime},
		{"e11", func() (*bench.Table, error) { return bench.E11Interfaces(*packets, minDur) }},
		{"e12", bench.E12CostModel},
		{"e13", bench.E13Pruning},
		{"e14", bench.E14OffloadPlan},
		{"e15", func() (*bench.Table, error) { return bench.E15Evolve(*packets * 4) }},
		{"e16", func() (*bench.Table, error) { return bench.E16Faults(100_000) }},
		{"e17", func() (*bench.Table, error) {
			n := 100_000
			if *quick {
				n = 0 // E17Flight clamps to its minimum
			}
			return bench.E17Flight(n, *flightDump)
		}},
		{"e18", func() (*bench.Table, error) {
			n := 10_000
			if *quick {
				n = 1_000
			}
			return bench.E18Chaos(n)
		}},
		{"e19", func() (*bench.Table, error) { return bench.E19Tenants(*packets * 8) }},
		{"e20", func() (*bench.Table, error) { return bench.E20Fleet(*packets * 4) }},
		{"e21", func() (*bench.Table, error) { return bench.E21Telemetry(*packets * 8) }},
		{"e22", func() (*bench.Table, error) {
			n := 32
			if *quick {
				n = 8
			}
			return bench.E22Diffverify(n)
		}},
	}

	want := map[string]bool{}
	for _, a := range fs.Args() {
		want[strings.ToLower(a)] = true
	}
	prof := startProfile(*profileDir)
	ran := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		tab, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "descbench %s: %v\n", e.id, err)
			return 1
		}
		fmt.Println(tab)
		if *emit != "" && tab.Record != nil {
			path, err := tab.Record.WriteFile(*emit)
			if err != nil {
				fmt.Fprintf(os.Stderr, "descbench %s: %v\n", e.id, err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		ran++
	}
	stopProfile(prof)
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "descbench: no experiment matched %v (have e1..e6, e8..e22)\n", fs.Args())
		return 1
	}
	return 0
}
