// Command descbench regenerates the OpenDesc experiment tables (DESIGN.md
// index E1–E18).
//
// Usage:
//
//	descbench            # run everything
//	descbench e1 e3 e5   # selected experiments
//	descbench -quick     # shorter timing runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"opendesc/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shorter measurement windows")
	packets := flag.Int("packets", 512, "trace length for timing experiments")
	flightDump := flag.String("flight-dump", "", "directory for E17 flight-recorder postmortem dumps (.odfl)")
	flag.Parse()

	minDur := 200 * time.Millisecond
	if *quick {
		minDur = 20 * time.Millisecond
	}

	type exp struct {
		id  string
		run func() (*bench.Table, error)
	}
	experiments := []exp{
		{"e1", bench.E1PathSelection},
		{"e2", bench.E2MultiNIC},
		{"e3", bench.E3Coverage},
		{"e4", func() (*bench.Table, error) { return bench.E4Datapath(*packets, minDur) }},
		{"e5", bench.E5FootprintSweep},
		{"e6", bench.E6Unsatisfiable},
		{"e8", bench.E8QDMAFormats},
		{"e9", func() (*bench.Table, error) { return bench.E9MbufDyn(minDur) }},
		{"e10", bench.E10CompileTime},
		{"e11", func() (*bench.Table, error) { return bench.E11Interfaces(*packets, minDur) }},
		{"e12", bench.E12CostModel},
		{"e13", bench.E13Pruning},
		{"e14", bench.E14OffloadPlan},
		{"e15", func() (*bench.Table, error) { return bench.E15Evolve(*packets * 4) }},
		{"e16", func() (*bench.Table, error) { return bench.E16Faults(100_000) }},
		{"e17", func() (*bench.Table, error) {
			n := 100_000
			if *quick {
				n = 0 // E17Flight clamps to its minimum
			}
			return bench.E17Flight(n, *flightDump)
		}},
		{"e18", func() (*bench.Table, error) {
			n := 10_000
			if *quick {
				n = 1_000
			}
			return bench.E18Chaos(n)
		}},
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToLower(a)] = true
	}
	ran := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		tab, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "descbench %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(tab)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "descbench: no experiment matched %v (have e1..e6, e8..e18)\n", flag.Args())
		os.Exit(1)
	}
}
