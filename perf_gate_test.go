package opendesc

import (
	"testing"

	"opendesc/internal/workload"
)

// gateDriver opens a warmed plain driver plus trace for the alloc gate.
func gateDriver(t *testing.T) (*Driver, [][]byte, func([]byte, Meta)) {
	t.Helper()
	intent, err := NewIntent("gate", "rss", "vlan", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	drv, err := OpenIntent("e1000e", intent, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(workload.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	sink := new(uint64)
	h := func(p []byte, meta Meta) {
		v1, _ := meta.Get("rss")
		v2, _ := meta.Get("vlan")
		v3, _ := meta.Get("pkt_len")
		*sink += v1 + v2 + v3
	}
	for i := 0; i < 64; i++ {
		for !drv.Rx(tr.Packets[i%len(tr.Packets)]) {
			drv.Poll(h)
		}
	}
	for drv.Poll(h) > 0 {
	}
	return drv, tr.Packets, h
}

// TestDeliverPathAllocGate is the alloc ratchet for the host-side
// poll→validate→read→deliver hot path. The simulated device's Rx side
// legitimately allocates (it models hardware: offload maps, deparser env),
// so the gate measures the full Rx+Poll cycle and subtracts an Rx-only
// baseline taken against the same driver — the difference is what the host
// datapath itself allocates per delivered packet, and it must stay zero.
// Any change that puts a heap allocation on Poll, Meta.Get, or the deliver
// callback path fails this test.
func TestDeliverPathAllocGate(t *testing.T) {
	const runs = 400 // plus AllocsPerRun's warm-up call, still < the 1024-deep ring
	const tolerance = 0.25

	drv, packets, h := gateDriver(t)
	p := packets[0]

	// Rx-only baseline: the ring is deep enough that no Poll is ever needed.
	rxOnly := testing.AllocsPerRun(runs, func() {
		if !drv.Rx(p) {
			t.Fatal("ring filled during the rx-only baseline")
		}
	})
	for drv.Poll(h) > 0 {
	}

	// Full cycle: one Rx, one Poll delivering that packet through three reads.
	full := testing.AllocsPerRun(runs, func() {
		for !drv.Rx(p) {
			drv.Poll(h)
		}
		drv.Poll(h)
	})

	deliver := full - rxOnly
	t.Logf("rx(device sim)=%.2f full=%.2f → deliver path=%.2f allocs/pkt (tolerance %.2f)",
		rxOnly, full, deliver, tolerance)
	if deliver > tolerance {
		t.Fatalf("deliver path allocates %.2f allocs/pkt (full %.2f − rx-only %.2f); "+
			"the poll→validate→read→deliver path must stay allocation-free", deliver, full, rxOnly)
	}
}
