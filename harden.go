package opendesc

// This file is the hardened datapath of the driver facade: a completion
// validator synthesized from the compiled layout, a device watchdog with
// bounded exponential backoff, and a SoftNIC degraded mode. The contract it
// defends: every packet accepted by Rx is delivered by Poll exactly once and
// in order, with metadata values equal to the SoftNIC golden reference —
// even while the device corrupts, truncates, replays, duplicates or drops
// completion records, NAKs register writes, or hangs outright.

import (
	"sync/atomic"

	"opendesc/internal/codegen"
	"opendesc/internal/faults"
	"opendesc/internal/nicsim"
	"opendesc/internal/obs"
	"opendesc/internal/obs/flight"
	"opendesc/internal/retry"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/vclock"
)

// HardenOptions tunes the hardened datapath enabled by Driver.Harden.
type HardenOptions struct {
	// Deep enables the per-packet deep-conformance validator tier (recompute
	// packet-derived semantics in software and compare). Off by default: the
	// structural tier alone keeps the fast path within the overhead budget.
	Deep bool
	// DisableValidate turns the completion validator off entirely (A/B
	// baseline for the overhead experiment); watchdog and degraded mode stay.
	DisableValidate bool
	// DegradeThreshold is how many consecutive device faults (refusals that
	// are not ring backpressure) trip SoftNIC degraded mode (default 8).
	DegradeThreshold int
	// ApplyRetries bounds the re-ApplyConfig attempts after a successful
	// reset (the control channel may still NAK); default 4.
	ApplyRetries int
	// MaxResetBackoff caps the exponential reset backoff, measured in driver
	// operations rather than wall time so recovery is deterministic and
	// testable; default 1024.
	MaxResetBackoff int
	// ResyncWindow is how many queued packets ahead a rejected completion is
	// matched against when resynchronizing after a lost completion
	// (default 8, the injector's replay depth).
	ResyncWindow int
	// DisableResync turns the lost-completion resynchronization path off: a
	// packet whose record never arrives stays pending forever instead of being
	// re-delivered in software. This deliberately re-opens the pre-resync
	// liveness bug so the chaos harness can prove its oracles catch it; never
	// set it outside a test.
	DisableResync bool
	// Clock is the timeline degraded-mode residency is measured on (nil
	// selects the process wall clock). The watchdog itself stays op-counted —
	// only the residency stamps read the clock.
	Clock vclock.Clock
}

func (o HardenOptions) withDefaults() HardenOptions {
	if o.DegradeThreshold <= 0 {
		o.DegradeThreshold = 8
	}
	if o.ApplyRetries <= 0 {
		o.ApplyRetries = 4
	}
	if o.MaxResetBackoff <= 0 {
		o.MaxResetBackoff = 1024
	}
	if o.ResyncWindow <= 0 {
		o.ResyncWindow = 8
	}
	o.Clock = vclock.Or(o.Clock)
	return o
}

// deliveredDepth is how many recently delivered packets are retained for
// stale/duplicate classification (matches the injector's replay depth).
const deliveredDepth = 8

// hardening is the per-driver hardened-datapath state. The mutable fields
// are datapath-owned (single goroutine); counters and the degraded flag are
// atomic so Hardening()/RegisterMetrics may be read concurrently.
type hardening struct {
	opts      HardenOptions
	validator *codegen.Validator
	softRT    *codegen.Runtime

	degraded    atomic.Bool
	faultStreak int
	// resetBo schedules reset attempts (1, 2, 4, … operations, capped at
	// MaxResetBackoff); curBackoff is the schedule value behind untilReset,
	// kept for flight-recorder visibility.
	resetBo    *retry.Backoff
	curBackoff uint64
	untilReset int

	// degradedSince stamps (on the injected clock) when degraded mode was
	// entered; degradedNs accumulates completed residencies. Atomic because
	// Hardening() folds the open residency in from another goroutine.
	degradedSince atomic.Uint64
	degradedNs    atomic.Uint64
	degradedOps   obs.Counter // driver operations spent in degraded mode

	// delivered is a ring of the most recently delivered packets, used to
	// classify rejected records as stale replays/duplicates.
	delivered    [deliveredDepth][]byte
	deliveredPos int

	quarantined    obs.Counter
	rejects        [codegen.ViolationValue + 1]obs.Counter
	staleDrops     obs.Counter
	resyncDrops    obs.Counter
	spurious       obs.Counter
	softDelivered  obs.Counter
	deviceFaults   obs.Counter
	degradedEnters obs.Counter
	resetAttempts  obs.Counter
	resets         obs.Counter
	configRetries  obs.Counter
	restores       obs.Counter
}

// softConsts are the device-state semantics whose value is pinned by the
// driver's (default) device configuration; the validator checks them as
// constants and degraded mode serves them as constants.
func softConsts(cfg nicsim.Config) map[semantics.Name]uint64 {
	return map[semantics.Name]uint64{
		semantics.QueueID:    uint64(cfg.QueueID),
		semantics.Mark:       cfg.Mark,
		semantics.CryptoCtx:  cfg.CryptoCtx,
		semantics.LROSegs:    1,
		semantics.SegCnt:     1,
		semantics.RXDropHint: 0,
	}
}

// Harden arms the hardened datapath on a pinned driver: completion
// validation, the device watchdog, and SoftNIC degraded mode. It must be
// called before the first Rx. Evolving drivers harden their switchover
// control plane instead (see EvolveOptions).
func (d *Driver) Harden(opts HardenOptions) error {
	if d.engine != nil {
		return errEvolvingHarden
	}
	opts = opts.withDefaults()
	consts := softConsts(d.dev.Config())
	soft := softnic.Funcs()
	for sem, v := range consts {
		if _, ok := soft[sem]; !ok {
			val := v
			soft[sem] = func([]byte) uint64 { return val }
		}
	}
	if _, ok := soft[semantics.Timestamp]; !ok {
		// No host-side clock can reproduce the device timestamp; degraded
		// mode reports 0 (and the validator skips the field).
		soft[semantics.Timestamp] = func([]byte) uint64 { return 0 }
	}
	v, err := codegen.NewValidator(d.Result, codegen.ValidatorOptions{
		Deep:   opts.Deep,
		Soft:   softnic.Funcs(),
		Consts: consts,
	})
	if err != nil {
		return err
	}
	v.AttachFlight(d.fq)
	d.hard = &hardening{
		opts:      opts,
		validator: v,
		softRT:    codegen.NewSoftRuntime(d.Result, soft),
		resetBo: retry.Policy{
			BaseDelay: 1,
			MaxDelay:  uint64(opts.MaxResetBackoff),
		}.NewBackoff(),
	}
	return nil
}

// Hardened reports whether the hardened datapath is armed.
func (d *Driver) Hardened() bool { return d.hard != nil }

// InjectFaults attaches a fault injector to the underlying simulated device
// (nil detaches). Pair with Harden to exercise the recovery machinery.
func (d *Driver) InjectFaults(inj *faults.Injector) {
	if d.engine != nil {
		d.engine.Device().InjectFaults(inj)
		return
	}
	d.dev.InjectFaults(inj)
}

// rx is the hardened Rx path.
func (h *hardening) rx(d *Driver, packet []byte) bool {
	if h.degraded.Load() {
		// Degraded: the device is not trusted with the packet at all; the
		// packet is queued for software delivery while the watchdog works on
		// recovery in the background.
		h.tickRecovery(d)
		seq := d.nextSeq()
		d.pending = append(d.pending, pendingPkt{pkt: packet, soft: true, ts: d.fq.NowIfSampled(seq), seq: seq})
		return true
	}
	if d.dev.RxPacket(packet) {
		seq := d.nextSeq()
		d.pending = append(d.pending, pendingPkt{pkt: packet, ts: d.fq.NowIfSampled(seq), seq: seq})
		h.faultStreak = 0
		return true
	}
	if d.dev.CmptRing.Free() == 0 {
		// Genuine backpressure, not a fault: reject as an unhardened driver
		// would and let the caller re-poll.
		return false
	}
	// The device refused a packet with ring space available: a device fault
	// (hang or internal error). The packet is delivered in software so the
	// application never sees the loss; enough consecutive faults trip
	// degraded mode.
	h.deviceFaults.Inc()
	h.faultStreak++
	if h.faultStreak >= h.opts.DegradeThreshold {
		h.enterDegraded(d)
	}
	seq := d.nextSeq()
	d.pending = append(d.pending, pendingPkt{pkt: packet, soft: true, ts: d.fq.NowIfSampled(seq), seq: seq})
	return true
}

func (h *hardening) enterDegraded(d *Driver) {
	if h.degraded.Load() {
		return
	}
	h.degraded.Store(true)
	h.degradedEnters.Inc()
	h.degradedSince.Store(h.opts.Clock.Now())
	h.resetBo.Reset()
	h.curBackoff = h.resetBo.Next() // 1: first reset attempt is immediate
	h.untilReset = int(h.curBackoff)
	// The watchdog tripping is exactly the moment a postmortem is for: the
	// events leading up to the fault streak are still in the ring.
	d.fq.Record(flight.EvDegrade, uint32(h.degradedEnters.Load()), uint64(h.faultStreak), 0)
	d.flight.Postmortem("watchdog-degrade")
}

// tickRecovery runs once per driver operation while degraded: it advances
// the device's fault clock (the discrete-time stand-in for wall time passing
// while the host backs off) and attempts a reset when the backoff expires.
func (h *hardening) tickRecovery(d *Driver) {
	d.dev.TickClock()
	h.degradedOps.Inc()
	if h.untilReset--; h.untilReset > 0 {
		return
	}
	h.resetAttempts.Inc()
	d.fq.Record(flight.EvResetAttempt, uint32(h.resetAttempts.Load()), h.curBackoff, 0)
	if err := d.dev.Reset(); err != nil {
		h.bumpBackoff()
		return
	}
	h.resets.Inc()
	// The reset emptied the completion ring: whatever completions the queued
	// hardware packets had are gone, so they are re-marked for software
	// delivery.
	for i := range d.pending {
		d.pending[i].soft = true
	}
	err := retry.Policy{
		Attempts: h.opts.ApplyRetries,
		OnError:  func(int, error) { h.configRetries.Inc() },
	}.Do(func() error { return d.dev.ApplyConfig(d.Result.Config) })
	if err != nil {
		h.bumpBackoff()
		return
	}
	if _, err := d.dev.ActivePath(); err != nil {
		h.bumpBackoff()
		return
	}
	// Atomic restore: from the next Rx on, packets go back to hardware.
	h.degraded.Store(false)
	h.degradedNs.Add(h.opts.Clock.Now() - h.degradedSince.Load())
	h.faultStreak = 0
	h.resetBo.Reset()
	h.restores.Inc()
	d.fq.Record(flight.EvRestore, uint32(h.restores.Load()), h.resetAttempts.Load(), 0)
	// Snapshot the whole degrade→reset→restore arc while it is still in the
	// ring (the recovery postmortem E17 decodes).
	d.flight.Postmortem("hardware-restore")
}

func (h *hardening) bumpBackoff() {
	h.curBackoff = h.resetBo.Next()
	h.untilReset = int(h.curBackoff)
}

// noteDelivered records a delivered packet for stale-record classification.
func (h *hardening) noteDelivered(p []byte) {
	h.delivered[h.deliveredPos] = p
	h.deliveredPos = (h.deliveredPos + 1) % deliveredDepth
}

// isStale reports whether rec is the completion of an already-delivered
// packet (a replayed or duplicated record).
func (h *hardening) isStale(rec []byte) bool {
	for _, p := range h.delivered {
		if p != nil && h.validator.Conforms(rec, p) {
			return true
		}
	}
	return false
}

// poll is the hardened Poll path. The device is synchronous (a completion
// for every accepted packet is DMAed before RxPacket returns), which gives
// the resynchronization logic a strong invariant: if the ring is empty while
// a hardware-pending packet is queued, that packet's completion was lost.
func (h *hardening) poll(d *Driver, fn func(packet []byte, meta Meta)) int {
	if h.degraded.Load() {
		h.tickRecovery(d)
	}
	n := 0
	t0 := d.fq.Now()
	for len(d.pending) > 0 {
		head := d.pending[0]
		if head.soft {
			h.deliverSoft(d, head, t0, fn)
			d.pending = d.pending[:copy(d.pending, d.pending[1:])]
			n++
			continue
		}
		rec := d.dev.CmptRing.Peek()
		if rec == nil {
			if h.opts.DisableResync {
				// The deliberately re-opened pre-resync bug: the packet's
				// record never arrived and nothing re-delivers it — it stays
				// pending forever (the liveness violation the chaos oracles
				// must catch).
				break
			}
			// Lost completion: the device accepted the packet but its record
			// never arrived. Resynchronize by delivering in software.
			h.resyncDrops.Inc()
			d.fq.RecordT(t0, flight.EvResync, head.seq, 0, 0)
			h.deliverSoft(d, head, t0, fn)
			d.pending = d.pending[:copy(d.pending, d.pending[1:])]
			n++
			continue
		}
		var viol *codegen.Violation
		if !h.opts.DisableValidate {
			viol = h.validator.Check(rec, head.pkt)
		}
		if viol == nil {
			// Per-read events fire only for sampled packets (non-zero Rx
			// stamp); a zero Meta timestamp turns Get's RecordT into a no-op.
			mts := uint64(0)
			if head.ts != 0 {
				mts = t0
			}
			fn(head.pkt, Meta{rt: d.rt, cmpt: rec, pkt: head.pkt, fq: d.fq, ts: mts, seq: head.seq})
			h.noteDelivered(head.pkt)
			d.dev.CmptRing.Pop()
			d.pending = d.pending[:copy(d.pending, d.pending[1:])]
			d.noteDelivered(t0, head.ts, head.seq)
			n++
			continue
		}
		h.rejects[viol.Kind].Inc()
		// Classify the rejected record before blaming corruption.
		if h.isStale(rec) {
			// A replayed/duplicated completion of an earlier packet: discard
			// it and retry the head against the next record.
			h.staleDrops.Inc()
			d.fq.RecordT(t0, flight.EvStale, head.seq, uint64(viol.Kind)+1, 0)
			d.dev.CmptRing.Pop()
			continue
		}
		if skip := h.resyncMatch(d, rec); skip > 0 && !h.opts.DisableResync {
			// The record belongs to a packet further down the queue: the
			// completions of the packets ahead of it were lost. Deliver those
			// in software and retry with the matching packet at the head.
			for i := 0; i < skip; i++ {
				h.resyncDrops.Inc()
				d.fq.RecordT(t0, flight.EvResync, d.pending[i].seq, uint64(skip), 0)
				h.deliverSoft(d, d.pending[i], t0, fn)
				n++
			}
			d.pending = d.pending[:copy(d.pending, d.pending[skip:])]
			continue
		}
		// Unclassifiable: a corrupted record. Quarantine it (never expose its
		// bits) and serve the packet from software.
		h.quarantined.Inc()
		d.fq.RecordT(t0, flight.EvQuarantine, head.seq, uint64(viol.Kind)+1, 0)
		if h.quarantined.Load() == 1 {
			// Postmortem on the first quarantine only: fault-heavy runs can
			// quarantine thousands of records, and one snapshot of the first
			// is what a debugging session needs.
			d.flight.Postmortem("quarantine")
		}
		d.dev.CmptRing.Pop()
		h.deliverSoft(d, head, t0, fn)
		d.pending = d.pending[:copy(d.pending, d.pending[1:])]
		n++
	}
	// Records with no queued packet left are spurious (duplicates that
	// outlived their packet); drain and count them.
	for len(d.pending) == 0 {
		rec := d.dev.CmptRing.Peek()
		if rec == nil {
			break
		}
		h.spurious.Inc()
		d.fq.RecordT(t0, flight.EvSpurious, 0, h.spurious.Load(), 0)
		d.dev.CmptRing.Pop()
	}
	return n
}

// resyncMatch looks for the queued packet a rejected record actually
// describes, up to ResyncWindow ahead; it returns how many queue heads to
// skip (0 = no match).
func (h *hardening) resyncMatch(d *Driver, rec []byte) int {
	win := h.opts.ResyncWindow
	if win > len(d.pending) {
		win = len(d.pending)
	}
	for i := 1; i < win; i++ {
		if !d.pending[i].soft && h.validator.Conforms(rec, d.pending[i].pkt) {
			return i
		}
	}
	return 0
}

// deliverSoft serves a packet entirely from the SoftNIC runtime: same
// values as the golden reference, Meta.Hardware false for every field.
func (h *hardening) deliverSoft(d *Driver, p pendingPkt, t0 uint64, fn func([]byte, Meta)) {
	h.softDelivered.Inc()
	mts := uint64(0)
	if p.ts != 0 {
		mts = t0
	}
	fn(p.pkt, Meta{rt: h.softRT, pkt: p.pkt, fq: d.fq, ts: mts, seq: p.seq})
	h.noteDelivered(p.pkt)
	d.noteDelivered(t0, p.ts, p.seq)
}

// HardeningStats snapshots the hardened-datapath counters.
type HardeningStats struct {
	// Degraded reports whether the driver is currently in SoftNIC degraded
	// mode (all semantics software-served).
	Degraded bool
	// Quarantined counts completion records rejected as corrupt; their bits
	// were never exposed to the application.
	Quarantined uint64
	// RejectsByClass breaks the validator rejections down by violation kind
	// (pad, discriminant, const, value, short).
	RejectsByClass map[string]uint64
	// StaleDrops counts discarded replayed/duplicated records; ResyncDrops
	// counts packets whose completion was lost and that were re-delivered in
	// software; SpuriousCompletions counts records with no matching packet.
	StaleDrops          uint64
	ResyncDrops         uint64
	SpuriousCompletions uint64
	// SoftDelivered counts packets served from the SoftNIC runtime (for any
	// reason: quarantine, resync, degraded mode).
	SoftDelivered uint64
	// DeviceFaults counts non-backpressure Rx refusals; DegradedEnters how
	// often the fault streak tripped degraded mode.
	DeviceFaults   uint64
	DegradedEnters uint64
	// DegradedOps counts driver operations spent in degraded mode, and
	// DegradedResidencyNs the cumulative time (on the injected clock) —
	// including the currently open residency, so a chaos oracle can bound
	// degraded-mode dwell while the driver is still degraded.
	DegradedOps         uint64
	DegradedResidencyNs uint64
	// ResetAttempts / Resets / ConfigRetries / HardwareRestores trace the
	// watchdog's recovery ladder.
	ResetAttempts    uint64
	Resets           uint64
	ConfigRetries    uint64
	HardwareRestores uint64
}

// Hardening snapshots the hardened-datapath counters (zero for drivers
// without Harden). Safe to call concurrently with the datapath.
func (d *Driver) Hardening() HardeningStats {
	h := d.hard
	if h == nil {
		return HardeningStats{}
	}
	st := HardeningStats{
		Degraded:            h.degraded.Load(),
		DegradedOps:         h.degradedOps.Load(),
		DegradedResidencyNs: h.degradedNs.Load(),
		Quarantined:         h.quarantined.Load(),
		RejectsByClass:      make(map[string]uint64),
		StaleDrops:          h.staleDrops.Load(),
		ResyncDrops:         h.resyncDrops.Load(),
		SpuriousCompletions: h.spurious.Load(),
		SoftDelivered:       h.softDelivered.Load(),
		DeviceFaults:        h.deviceFaults.Load(),
		DegradedEnters:      h.degradedEnters.Load(),
		ResetAttempts:       h.resetAttempts.Load(),
		Resets:              h.resets.Load(),
		ConfigRetries:       h.configRetries.Load(),
		HardwareRestores:    h.restores.Load(),
	}
	if st.Degraded {
		// Fold the open residency in so the snapshot reflects dwell-so-far.
		st.DegradedResidencyNs += h.opts.Clock.Now() - h.degradedSince.Load()
	}
	for k := codegen.ViolationShort; k <= codegen.ViolationValue; k++ {
		if n := h.rejects[k].Load(); n > 0 {
			st.RejectsByClass[k.String()] = n
		}
	}
	return st
}

// registerMetrics exposes the hardened-datapath counters on an obs registry.
func (h *hardening) registerMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.AttachCounter("opendesc_driver_quarantined_total", "completion records rejected as corrupt", &h.quarantined, labels...)
	reg.AttachCounter("opendesc_driver_stale_drops_total", "replayed/duplicated completion records discarded", &h.staleDrops, labels...)
	reg.AttachCounter("opendesc_driver_resync_drops_total", "lost completions resynchronized via software delivery", &h.resyncDrops, labels...)
	reg.AttachCounter("opendesc_driver_spurious_completions_total", "completion records with no matching packet", &h.spurious, labels...)
	reg.AttachCounter("opendesc_driver_soft_delivered_total", "packets served from the SoftNIC runtime", &h.softDelivered, labels...)
	reg.AttachCounter("opendesc_driver_device_faults_total", "non-backpressure device refusals", &h.deviceFaults, labels...)
	reg.AttachCounter("opendesc_driver_degraded_enters_total", "transitions into SoftNIC degraded mode", &h.degradedEnters, labels...)
	reg.AttachCounter("opendesc_driver_degraded_ops_total", "driver operations spent in SoftNIC degraded mode", &h.degradedOps, labels...)
	reg.AttachCounter("opendesc_driver_reset_attempts_total", "watchdog reset attempts", &h.resetAttempts, labels...)
	reg.AttachCounter("opendesc_driver_resets_total", "watchdog resets that took effect", &h.resets, labels...)
	reg.AttachCounter("opendesc_driver_config_retries_total", "re-ApplyConfig attempts that failed after reset", &h.configRetries, labels...)
	reg.AttachCounter("opendesc_driver_hardware_restores_total", "recoveries back to hardware mode", &h.restores, labels...)
	for k := codegen.ViolationShort; k <= codegen.ViolationValue; k++ {
		l := append(append([]obs.Label{}, labels...), obs.L("class", k.String()))
		reg.AttachCounter("opendesc_driver_rejects_total", "validator rejections per violation class", &h.rejects[k], l...)
	}
	reg.GaugeFunc("opendesc_driver_degraded", "1 while in SoftNIC degraded mode", func() int64 {
		if h.degraded.Load() {
			return 1
		}
		return 0
	}, labels...)
}
