module opendesc

go 1.24
