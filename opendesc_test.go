package opendesc

import (
	"math"
	"strings"
	"testing"

	"opendesc/internal/pkt"
	"opendesc/internal/softnic"
)

func TestNICsAndSemantics(t *testing.T) {
	nics := NICs()
	if len(nics) != 6 {
		t.Fatalf("nics = %v", nics)
	}
	sems := Semantics()
	if len(sems) < 20 {
		t.Errorf("semantics universe = %d entries", len(sems))
	}
	found := false
	for _, s := range sems {
		if s == "rss" {
			found = true
		}
	}
	if !found {
		t.Error("rss missing from universe")
	}
}

func TestCompilePublicAPI(t *testing.T) {
	intent, err := NewIntent("app", "rss", "ip_checksum")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile("e1000e", intent, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 6 invariant holds through the public surface.
	if got := res.Missing(); len(got) != 1 || string(got[0]) != "rss" {
		t.Errorf("missing = %v", got)
	}
	if !strings.Contains(GenerateGo(res, "acc"), "func IpChecksum") {
		t.Error("GenerateGo lost the hardware accessor")
	}
	if !strings.Contains(GenerateC(res, "e1000e"), "e1000e_get_ip_checksum") {
		t.Error("GenerateC lost the accessor")
	}
	if !strings.Contains(GenerateEBPF(res), "opendesc_cmpt") {
		t.Error("GenerateEBPF lost the bounded reader")
	}
	if !strings.Contains(GenerateGoBatch(res, "acc"), "X4(") {
		t.Error("GenerateGoBatch lost the batch form")
	}
}

func TestCompileUnknownNIC(t *testing.T) {
	intent, _ := NewIntent("app", "rss")
	if _, err := Compile("cx7", intent, CompileOptions{}); err == nil {
		t.Error("unknown NIC should fail")
	}
}

func TestParseIntentP4Public(t *testing.T) {
	intent, err := ParseIntentP4(`
header intent_t {
    @semantic("rss") bit<32> h;
    @semantic("vlan") bit<16> v;
}`, "")
	if err != nil {
		t.Fatal(err)
	}
	if intent.Name != "intent_t" || len(intent.Fields) != 2 {
		t.Errorf("intent = %+v", intent)
	}
}

func TestCompileP4CustomNIC(t *testing.T) {
	intent, err := NewIntent("app", "rss")
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompileP4("custom", `
struct ctx_t { bit<1> f; }
header d_t { bit<8> x; }
struct meta_t { @semantic("rss") bit<32> h; @semantic("pkt_len") bit<16> l; }
@bind("CTX","ctx_t") @bind("DESC","d_t") @bind("META","meta_t")
control CmptDeparser<CTX,DESC,META>(cmpt_out co, in CTX ctx, in DESC d, in META m) {
    apply { co.emit(m.h); co.emit(m.l); }
}`, intent, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionBytes() != 6 {
		t.Errorf("completion = %dB", res.CompletionBytes())
	}
	a := res.Accessor("rss")
	if a == nil || !a.Hardware || a.OffsetBits != 0 {
		t.Errorf("rss accessor = %+v", a)
	}
}

func TestDriverEndToEnd(t *testing.T) {
	drv, err := Open("mlx5", "rss", "vlan", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	p := pkt.NewBuilder().
		WithVLAN(0x0123).
		WithTCP(443, 55000, 0x18).
		WithPayload([]byte("public api")).
		Build()
	if !drv.Rx(p) {
		t.Fatal("rx failed")
	}
	var in pkt.Info
	if err := pkt.Decode(p, &in); err != nil {
		t.Fatal(err)
	}
	polled := 0
	n := drv.Poll(func(packet []byte, meta Meta) {
		polled++
		hash, ok := meta.Get("rss")
		if !ok || hash != uint64(softnic.RSS(&in)) {
			t.Errorf("rss = %#x/%v", hash, ok)
		}
		vlan, ok := meta.Get("vlan")
		if !ok || vlan != 0x0123 {
			t.Errorf("vlan = %#x/%v", vlan, ok)
		}
		if _, ok := meta.Get("timestamp"); ok {
			t.Error("semantic outside the intent should not resolve")
		}
		if !meta.Hardware("rss") {
			t.Error("rss should be hardware on mlx5")
		}
	})
	if n != 1 || polled != 1 {
		t.Errorf("poll = %d/%d", n, polled)
	}
	if rx, drops := drv.Stats(); rx != 1 || drops != 0 {
		t.Errorf("stats = %d/%d", rx, drops)
	}
	if drv.CompletionBytes() <= 0 {
		t.Error("completion bytes")
	}
	if !strings.Contains(drv.Report(), "selected path") {
		t.Error("report")
	}
}

func TestDriverPollBatches(t *testing.T) {
	drv, err := Open("e1000", "pkt_len", "ip_checksum")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !drv.Rx(pkt.NewBuilder().WithUDP(uint16(i), 99).Build()) {
			t.Fatal("rx failed")
		}
	}
	if n := drv.Poll(func([]byte, Meta) {}); n != 10 {
		t.Errorf("first poll = %d", n)
	}
	if n := drv.Poll(func([]byte, Meta) {}); n != 0 {
		t.Errorf("drained poll = %d", n)
	}
	// Interleave: rx after poll keeps pairing packets and completions.
	drv.Rx(pkt.NewBuilder().Build())
	if n := drv.Poll(func([]byte, Meta) {}); n != 1 {
		t.Errorf("post-drain poll = %d", n)
	}
}

func TestDriverSoftwareShimThroughMeta(t *testing.T) {
	// On e1000e with rss+csum, rss is a software shim; Meta.Get must still
	// deliver the golden value.
	drv, err := Open("e1000e", "rss", "ip_checksum")
	if err != nil {
		t.Fatal(err)
	}
	p := pkt.NewBuilder().WithTCP(1, 2, 0).Build()
	drv.Rx(p)
	var in pkt.Info
	pkt.Decode(p, &in)
	drv.Poll(func(packet []byte, meta Meta) {
		if meta.Hardware("rss") {
			t.Error("rss should be a software shim here")
		}
		v, ok := meta.Get("rss")
		if !ok || v != uint64(softnic.RSS(&in)) {
			t.Errorf("soft rss = %#x/%v", v, ok)
		}
	})
}

func TestRegisterSemanticEvolvability(t *testing.T) {
	if err := RegisterSemantic("my_accel_digest", 48, 300); err != nil {
		t.Fatal(err)
	}
	// The new semantic is requestable; no NIC provides it, software cost is
	// finite, so compilation succeeds with a shim.
	intent, err := NewIntent("app", "my_accel_digest", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile("e1000", intent, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Accessor("my_accel_digest")
	if a == nil || a.Hardware {
		t.Errorf("accessor = %+v, want software shim", a)
	}
	// An inemulable unknown semantic is rejected.
	if err := RegisterSemantic("hw_only_thing", 32, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	intent2, _ := NewIntent("app", "hw_only_thing")
	if _, err := Compile("e1000", intent2, CompileOptions{}); err == nil {
		t.Error("inemulable absent semantic should be unsatisfiable")
	}
}

func TestPlanOffloadsPublic(t *testing.T) {
	intent, _ := NewIntent("app", "rss", "ip_checksum")
	res, err := Compile("e1000e", intent, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanOffloads(res, PipelineCaps{Programmable: true, StageBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pushed()) != 1 {
		t.Errorf("pushed = %v", plan.Pushed())
	}
}

func TestOpenEvolvingDriver(t *testing.T) {
	// e1000e with the Fig. 6 tension: the static compile carries the
	// checksum in hardware; a hash-heavy read mix must renegotiate the
	// interface onto the RSS path with zero loss.
	drv, err := OpenEvolving("e1000e", EvolveOptions{
		Interval:       128,
		MinWindow:      64,
		MinShimSamples: math.MaxUint64, // deterministic: static w(s)
	}, "rss", "ip_checksum", "vlan", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	if drv.Evolution().Generation != 0 {
		t.Fatal("fresh evolving driver should be at generation 0")
	}
	if drv.Result.HardwareSet().Has("rss") {
		t.Fatalf("static compile should start on the csum path, got %s", drv.Result.HardwareSet())
	}
	p := pkt.NewBuilder().WithTCP(1, 443, 0x18).WithVLAN(7).Build()
	for i := 0; i < 400; i++ {
		if !drv.Rx(p) {
			t.Fatalf("rx stalled at %d", i)
		}
		drv.Poll(func(packet []byte, meta Meta) {
			if _, ok := meta.Get("rss"); !ok {
				t.Fatal("rss read failed")
			}
			if _, ok := meta.Get("pkt_len"); !ok {
				t.Fatal("pkt_len read failed")
			}
		})
	}
	st := drv.Evolution()
	if st.Generation == 0 || st.Switchovers == 0 {
		t.Fatalf("hash-heavy mix should have switched generations: %+v", st)
	}
	if st.SwitchDrops != 0 {
		t.Fatalf("switch drops = %d, want exactly 0", st.SwitchDrops)
	}
	if !drv.Result.HardwareSet().Has("rss") {
		t.Fatalf("Result should track the new generation, got %s", drv.Result.HardwareSet())
	}
	d := drv.LastDiff()
	if d == nil || !d.Breaking() {
		t.Fatalf("switchover should record a breaking-layout diff, got %v", d)
	}
	if rx, drops := drv.Stats(); rx != 400 || drops != 0 {
		t.Fatalf("device rx=%d drops=%d, want 400/0", rx, drops)
	}
}
