// XDP metadata accessor generation — the paper's prototype "enables access
// to the metadata sent from the NIC in eBPF through XDP". This example
// compiles an intent for two NICs and prints the generated eBPF/XDP C source
// plus the plain-C userlevel variant side by side, showing how the same
// declarative intent yields NIC-specific bounded descriptor reads.
//
//	go run ./examples/xdpmeta
package main

import (
	"fmt"
	"log"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/semantics"
)

func main() {
	intent, err := core.IntentFromSemantics("xdp_prog", semantics.Default,
		semantics.RSS, semantics.Timestamp, semantics.VLAN, semantics.PktLen)
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"mlx5", "qdma"} {
		model := nic.MustLoad(name)
		res, err := model.Compile(intent, core.CompileOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("/* ================= %s: %dB completion ================= */\n\n",
			name, res.CompletionBytes())
		fmt.Println(codegen.GenEBPF(res))
	}

	// Userlevel C accessors for applications mapping the ring directly.
	res, err := nic.MustLoad("mlx5").Compile(intent, core.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("/* ============ userlevel C header (mlx5) ============ */")
	fmt.Println(codegen.GenC(res, "mlx5"))

	// And the CFG that selection operated on, for graphviz rendering.
	fmt.Println("/* ============ deparser CFG (DOT) ============ */")
	fmt.Println(res.Graph.DOT())
}
