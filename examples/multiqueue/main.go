// Multi-queue example — the paper notes that "applications might use
// multiple OpenDesc instances with different intents to obtain different
// queues tailored for different kind of traffic". Here a single programmable
// NIC (QDMA) serves two queues: a key-value queue whose 16-byte completions
// carry the request key digest, and a telemetry queue whose 32-byte
// completions carry hardware timestamps — with port-based steering between
// them.
//
//	go run ./examples/multiqueue
package main

import (
	"fmt"
	"log"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

func main() {
	model := nic.MustLoad("qdma")

	kvIntent, err := core.IntentFromSemantics("kv", semantics.Default,
		semantics.KVKey, semantics.RSS)
	if err != nil {
		log.Fatal(err)
	}
	tsIntent, err := core.IntentFromSemantics("telemetry", semantics.Default,
		semantics.Timestamp, semantics.RSS, semantics.PktLen)
	if err != nil {
		log.Fatal(err)
	}

	kvRes, err := model.Compile(kvIntent, core.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tsRes, err := model.Compile(tsIntent, core.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queue 0 (kv):        %2dB completions, config %v\n", kvRes.CompletionBytes(), kvRes.Config)
	fmt.Printf("queue 1 (telemetry): %2dB completions, config %v\n", tsRes.CompletionBytes(), tsRes.Config)

	mq, err := nicsim.NewMultiQueue(model, []*core.Result{kvRes, tsRes},
		nicsim.SteerByL4Port(map[uint16]int{11211: 0}, 1), nicsim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	kvRT := codegen.NewRuntime(kvRes, softnic.Funcs())
	tsRT := codegen.NewRuntime(tsRes, softnic.Funcs())

	// Mixed traffic: half memcached requests, half web.
	spec := workload.DefaultSpec()
	spec.Packets = 600
	spec.KVFraction = 0.5
	spec.VLANFraction = 0
	trace, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	keys := map[uint64]int{}
	var lastTS, tsCount uint64
	for _, p := range trace.Packets {
		switch q := mq.RxPacket(p); q {
		case 0:
			mq.Queues[0].CmptRing.Consume(func(cmpt []byte) {
				key, err := kvRT.Read(semantics.KVKey, cmpt, p)
				if err != nil {
					log.Fatal(err)
				}
				keys[key]++
			})
		case 1:
			mq.Queues[1].CmptRing.Consume(func(cmpt []byte) {
				ts, err := tsRT.Read(semantics.Timestamp, cmpt, p)
				if err != nil {
					log.Fatal(err)
				}
				if ts <= lastTS {
					log.Fatalf("timestamps not monotonic: %d then %d", lastTS, ts)
				}
				lastTS = ts
				tsCount++
			})
		default:
			log.Fatal("packet dropped")
		}
	}
	fmt.Printf("kv queue:        %d requests over %d distinct keys (hardware key digests)\n",
		600-int(tsCount), len(keys))
	fmt.Printf("telemetry queue: %d packets, monotonic hardware timestamps up to %dns\n",
		tsCount, lastTS)
}
