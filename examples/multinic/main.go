// Multi-NIC portability: one load-balancer application (RSS + packet length
// + checksum validation) compiled against every bundled NIC. OpenDesc
// selects a different completion layout per device and fills the gaps with
// SoftNIC shims, while the application's receive loop stays byte-for-byte
// identical — the "applications become portable" claim of the paper.
//
//	go run ./examples/multinic
package main

import (
	"fmt"
	"log"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

const workers = 4

// process is the NIC-independent application datapath: spread packets over
// workers by RSS hash, drop packets failing checksum validation.
func process(rt *codegen.Runtime, cmpt, packet []byte, buckets *[workers]int) error {
	hash, err := rt.Read(semantics.RSS, cmpt, packet)
	if err != nil {
		return err
	}
	errFlags, err := rt.Read(semantics.ErrorFlags, cmpt, packet)
	if err != nil {
		return err
	}
	if errFlags != 0 {
		return nil // drop
	}
	buckets[hash%workers]++
	return nil
}

func main() {
	intent, err := core.IntentFromSemantics("lb", semantics.Default,
		semantics.RSS, semantics.PktLen, semantics.ErrorFlags)
	if err != nil {
		log.Fatal(err)
	}

	spec := workload.DefaultSpec()
	spec.Packets = 2000
	spec.Flows = 128
	spec.BadCsumFraction = 0.05
	trace, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %-6s %-28s %-24s %s\n",
		"nic", "cmpt", "hardware", "software", "per-worker load")
	for _, model := range nic.All() {
		res, err := model.Compile(intent, core.CompileOptions{})
		if err != nil {
			log.Fatalf("%s: %v", model.Name, err)
		}
		dev, err := nicsim.New(model, nicsim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		if err := dev.ApplyConfig(res.Config); err != nil {
			log.Fatal(err)
		}
		rt := codegen.NewRuntime(res, softnic.Funcs())

		var buckets [workers]int
		for _, p := range trace.Packets {
			if !dev.RxPacket(p) {
				log.Fatal("rx stalled")
			}
			var perr error
			dev.CmptRing.Consume(func(cmpt []byte) {
				perr = process(rt, cmpt, p, &buckets)
			})
			if perr != nil {
				log.Fatal(perr)
			}
		}
		total := 0
		for _, b := range buckets {
			total += b
		}
		fmt.Printf("%-8s %3dB   %-28s %-24s %v (kept %d/%d)\n",
			model.Name, res.CompletionBytes(),
			res.HardwareSet(), fmt.Sprint(res.Missing()),
			buckets, total, len(trace.Packets))
	}
}
