// Quickstart: the public OpenDesc API end to end — declare a metadata
// intent, compile it for a NIC, open the generated driver datapath over the
// simulated device, and read per-packet metadata.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"opendesc"
	"opendesc/internal/pkt"
)

// appIntent is the application's declarative metadata contract (paper
// Fig. 5): a plain P4 header whose fields are tagged with @semantic.
const appIntent = `
header intent_t {
    @semantic("rss")
    bit<32> rss_val;
    @semantic("vlan")
    bit<16> vlan_tag;
    @semantic("ip_checksum")
    bit<16> csum;
}
`

func main() {
	// 1. Parse the intent (NewIntent would do the same without P4).
	intent, err := opendesc.ParseIntentP4(appIntent, "intent_t")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Open a driver on the e1000e: the compiler picks between the NIC's
	// two completion layouts — RSS hash or checksum, never both (paper
	// Fig. 6) — configures the device, and links a SoftNIC shim for the
	// loser.
	drv, err := opendesc.OpenIntent("e1000e", intent, opendesc.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(drv.Report())

	// 3. Receive a packet and read the metadata. The same three Get calls
	// work on every NIC model; only the compiled layout changes.
	packet := pkt.NewBuilder().
		WithVLAN(0x0042).
		WithIPv4([4]byte{192, 168, 0, 1}, [4]byte{10, 0, 0, 1}).
		WithTCP(443, 55000, 0x18).
		WithPayload([]byte("hello opendesc")).
		Build()
	if !drv.Rx(packet) {
		log.Fatal("device dropped the packet")
	}

	fmt.Println("\nmetadata read through the generated driver datapath:")
	drv.Poll(func(p []byte, meta opendesc.Meta) {
		for _, sem := range []string{"rss", "vlan", "ip_checksum"} {
			v, ok := meta.Get(sem)
			if !ok {
				log.Fatalf("%s unavailable", sem)
			}
			src := "hardware"
			if !meta.Hardware(sem) {
				src = "software shim"
			}
			fmt.Printf("  %-12s = %#010x  (%s)\n", sem, v, src)
		}
	})
}
