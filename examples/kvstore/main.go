// KV-store example — the paper's Figure 1 scenario: "an application that
// wants to receive the checksum of a packet, the decapsulated vlan TCI, the
// RSS hash and the result of a specific feature, for instance the key of a
// key-value-store request". On a fully-programmable NIC (QDMA) the key
// digest arrives precomputed in the completion; on fixed-function NICs the
// compiler wires a SoftNIC shim instead — the application code is identical.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

// shard is a toy KV server shard keyed by the offloaded key digest.
type shard struct {
	hits map[uint64]int
}

func main() {
	intent, err := core.IntentFromSemantics("fig1", semantics.Default,
		semantics.IPChecksum, semantics.VLAN, semantics.RSS, semantics.KVKey)
	if err != nil {
		log.Fatal(err)
	}

	// Memcached-style request traffic over 8 keys.
	spec := workload.DefaultSpec()
	spec.Packets = 400
	spec.Flows = 8
	spec.KVFraction = 1
	spec.VLANFraction = 0
	trace, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"qdma", "e1000e"} {
		model := nic.MustLoad(name)
		res, err := model.Compile(intent, core.CompileOptions{})
		if err != nil {
			log.Fatal(err)
		}

		dev, err := nicsim.New(model, nicsim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		if err := dev.ApplyConfig(res.Config); err != nil {
			log.Fatal(err)
		}
		rt := codegen.NewRuntime(res, softnic.Funcs())

		kvSrc := "software shim"
		if rt.Reader(semantics.KVKey).Hardware {
			kvSrc = "NIC completion"
		}
		fmt.Printf("=== %s: %dB completion, kv_key from %s, software set = %v ===\n",
			name, res.CompletionBytes(), kvSrc, res.Missing())

		sh := &shard{hits: make(map[uint64]int)}
		for _, p := range trace.Packets {
			if !dev.RxPacket(p) {
				log.Fatal("rx stalled")
			}
			dev.CmptRing.Consume(func(cmpt []byte) {
				key, err := rt.Read(semantics.KVKey, cmpt, p)
				if err != nil {
					log.Fatal(err)
				}
				sh.hits[key]++
			})
		}
		fmt.Printf("  %d distinct keys over %d requests\n", len(sh.hits), len(trace.Packets))
		if len(sh.hits) != spec.Flows {
			log.Fatalf("expected %d keys, got %d — offloaded and software digests disagree",
				spec.Flows, len(sh.hits))
		}
	}
	fmt.Println("\nsame application logic ran unmodified on a programmable and a fixed NIC.")
}
