package opendesc

import (
	"fmt"
	"sync"
	"testing"

	"opendesc/internal/faults"
	"opendesc/internal/pkt"
	"opendesc/internal/softnic"
	"opendesc/internal/vclock"
)

// hardPackets builds n mutually distinct packets (varying ports, IP ids and
// payloads) so completion records are distinguishable during resync.
func hardPackets(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = pkt.NewBuilder().
			WithVLAN(uint16(0x100 | (i & 0xFF))).
			WithIPv4([4]byte{192, 168, 1, 10}, [4]byte{10, 0, 0, 1}).
			WithTCP(443, uint16(40000+i%20000), 0x18).
			WithIPID(uint16(i)).
			WithPayload([]byte(fmt.Sprintf("hardened-%d", i))).
			Build()
	}
	return out
}

func openHardened(t *testing.T, opts HardenOptions) *Driver {
	t.Helper()
	intent, err := NewIntent("hard_intent", "rss", "vlan", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	drv, err := OpenWith("e1000e", intent, OpenOptions{Harden: &opts})
	if err != nil {
		t.Fatal(err)
	}
	return drv
}

// checkGolden asserts the metadata of one delivered packet matches the
// SoftNIC reference — a corrupted record must never leak through.
func checkGolden(t *testing.T, p []byte, meta Meta) {
	t.Helper()
	var in pkt.Info
	if err := pkt.Decode(p, &in); err != nil {
		t.Fatal(err)
	}
	if v, ok := meta.Get("rss"); !ok || v != uint64(softnic.RSS(&in)) {
		t.Errorf("rss = %#x/%v, want %#x", v, ok, softnic.RSS(&in))
	}
	if v, ok := meta.Get("pkt_len"); !ok || v != uint64(len(p)) {
		t.Errorf("pkt_len = %d/%v, want %d", v, ok, len(p))
	}
	if v, ok := meta.Get("vlan"); !ok || v != uint64(softnic.VLANTCI(&in)) {
		t.Errorf("vlan = %#x/%v, want %#x", v, ok, softnic.VLANTCI(&in))
	}
}

// driveExactlyOnce pushes every packet through Rx/Poll in batches and fails
// unless each is delivered exactly once, in order, with golden metadata.
func driveExactlyOnce(t *testing.T, drv *Driver, packets [][]byte, batch int) {
	t.Helper()
	next := 0
	handler := func(p []byte, meta Meta) {
		if next >= len(packets) {
			t.Fatalf("delivery %d beyond the %d accepted packets", next, len(packets))
		}
		if &p[0] != &packets[next][0] {
			t.Fatalf("delivery %d out of order", next)
		}
		checkGolden(t, p, meta)
		next++
	}
	for i := 0; i < len(packets); {
		for j := 0; j < batch && i < len(packets); j++ {
			if !drv.Rx(packets[i]) {
				t.Fatalf("rx %d refused (hardened Rx only refuses on backpressure)", i)
			}
			i++
		}
		drv.Poll(handler)
	}
	for drv.Poll(handler) > 0 {
	}
	if next != len(packets) {
		t.Fatalf("delivered %d of %d packets", next, len(packets))
	}
}

// TestHardenedCleanPath: with no injector the hardened driver behaves like
// the plain one — hardware metadata, no recovery activity.
func TestHardenedCleanPath(t *testing.T) {
	drv := openHardened(t, HardenOptions{Deep: true})
	hw := 0
	packets := hardPackets(64)
	next := 0
	for _, p := range packets {
		if !drv.Rx(p) {
			t.Fatal("rx refused")
		}
		drv.Poll(func(pp []byte, meta Meta) {
			checkGolden(t, pp, meta)
			if meta.Hardware("rss") {
				hw++
			}
			next++
		})
	}
	if next != len(packets) || hw != len(packets) {
		t.Fatalf("delivered %d (hardware %d), want all %d from hardware", next, hw, len(packets))
	}
	st := drv.Hardening()
	if st.SoftDelivered != 0 || st.Quarantined != 0 || st.DeviceFaults != 0 || st.Degraded {
		t.Errorf("clean run tripped hardening: %+v", st)
	}
}

// TestHardenedCorruptionQuarantined: with every completion bit-flipped, the
// validator must quarantine 100% of them and the application still sees
// golden values for every packet, exactly once.
func TestHardenedCorruptionQuarantined(t *testing.T) {
	drv := openHardened(t, HardenOptions{Deep: true})
	inj := faults.New(faults.Plan{Seed: 11, CorruptP: 1, BurstBits: 4})
	drv.InjectFaults(inj)
	packets := hardPackets(200)
	driveExactlyOnce(t, drv, packets, 4)

	st := drv.Hardening()
	injected := inj.Stats().Injected[faults.Corrupt]
	if injected == 0 {
		t.Fatal("injector was not exercised")
	}
	caught := st.Quarantined + st.StaleDrops + st.ResyncDrops + st.SpuriousCompletions
	if caught < injected {
		t.Errorf("caught %d records (quarantine %d, stale %d, resync %d, spurious %d) for %d injected corruptions",
			caught, st.Quarantined, st.StaleDrops, st.ResyncDrops, st.SpuriousCompletions, injected)
	}
	if st.SoftDelivered == 0 {
		t.Error("quarantined packets must be soft-delivered")
	}
}

// TestHardenedLostCompletions: the device accepts packets whose completions
// never arrive; the driver resynchronizes by software delivery.
func TestHardenedLostCompletions(t *testing.T) {
	drv := openHardened(t, HardenOptions{Deep: true})
	drv.InjectFaults(faults.New(faults.Plan{Seed: 3, DropP: 1}))
	packets := hardPackets(50)
	driveExactlyOnce(t, drv, packets, 4)
	st := drv.Hardening()
	if st.ResyncDrops != 50 || st.SoftDelivered != 50 {
		t.Errorf("resync=%d soft=%d, want 50/50", st.ResyncDrops, st.SoftDelivered)
	}
}

// TestHardenedStaleAndDuplicate: replayed and duplicated records are
// discarded without breaking exactly-once delivery.
func TestHardenedStaleAndDuplicate(t *testing.T) {
	drv := openHardened(t, HardenOptions{Deep: true})
	inj := faults.New(faults.Plan{Seed: 9, DuplicateP: 0.5, ReplayP: 0.2})
	drv.InjectFaults(inj)
	packets := hardPackets(300)
	driveExactlyOnce(t, drv, packets, 8)
	st := drv.Hardening()
	if st.StaleDrops+st.SpuriousCompletions == 0 {
		t.Errorf("no stale/spurious records discarded under duplicate+replay injection: %+v", st)
	}
}

// TestHardenedHangDegradeRecover drives the full watchdog state machine:
// hang → fault streak → SoftNIC degraded mode → reset with backoff →
// re-ApplyConfig → hardware restore.
func TestHardenedHangDegradeRecover(t *testing.T) {
	drv := openHardened(t, HardenOptions{Deep: true, DegradeThreshold: 4})
	inj := faults.New(faults.Plan{Seed: 5, HangCount: 1, HangMTBF: 100, HangBurst: 50})
	drv.InjectFaults(inj)

	packets := hardPackets(1000)
	next := 0
	sawDegraded := false
	lastHW := false
	for _, p := range packets {
		if !drv.Rx(p) {
			t.Fatal("hardened rx refused")
		}
		drv.Poll(func(pp []byte, meta Meta) {
			if &pp[0] != &packets[next][0] {
				t.Fatalf("delivery %d out of order", next)
			}
			checkGolden(t, pp, meta)
			lastHW = meta.Hardware("rss")
			next++
		})
		if drv.Hardening().Degraded {
			sawDegraded = true
		}
	}
	for drv.Poll(func(pp []byte, meta Meta) { lastHW = meta.Hardware("rss"); next++ }) > 0 {
	}
	if next != len(packets) {
		t.Fatalf("delivered %d of %d", next, len(packets))
	}
	st := drv.Hardening()
	if !sawDegraded || st.DegradedEnters != 1 {
		t.Errorf("degraded mode not entered exactly once: %+v", st)
	}
	if st.Degraded {
		t.Error("driver still degraded at end of run")
	}
	if st.HardwareRestores != 1 || st.Resets != 1 {
		t.Errorf("restores=%d resets=%d, want 1/1", st.HardwareRestores, st.Resets)
	}
	if st.ResetAttempts <= st.Resets {
		t.Errorf("expected failed reset attempts during the burst (attempts=%d)", st.ResetAttempts)
	}
	if !lastHW {
		t.Error("driver must serve from hardware again after recovery")
	}
	if dst := drv.DeviceStats(); dst.Resets != 1 {
		t.Errorf("device resets = %d, want 1", dst.Resets)
	}
}

// TestHardenedStatsRace scrapes stats concurrently with a faulty datapath
// (run with -race).
func TestHardenedStatsRace(t *testing.T) {
	drv := openHardened(t, HardenOptions{Deep: true, DegradeThreshold: 4})
	drv.InjectFaults(faults.New(faults.Plan{
		Seed: 21, CorruptP: 0.01, DropP: 0.01, DuplicateP: 0.01,
		HangCount: 2, HangMTBF: 500, HangBurst: 30,
	}))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = drv.Hardening()
				_ = drv.DeviceStats()
				_ = drv.dev.Faults().Stats()
			}
		}
	}()
	packets := hardPackets(2000)
	next := 0
	for _, p := range packets {
		drv.Rx(p)
		drv.Poll(func([]byte, Meta) { next++ })
	}
	for drv.Poll(func([]byte, Meta) { next++ }) > 0 {
	}
	close(stop)
	wg.Wait()
	if next != len(packets) {
		t.Fatalf("delivered %d of %d", next, len(packets))
	}
}

// TestHardenEvolvingRejected: facade hardening and the evolving control
// plane are mutually exclusive.
func TestHardenEvolvingRejected(t *testing.T) {
	drv, err := OpenEvolving("mlx5", EvolveOptions{}, "rss", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Harden(HardenOptions{}); err == nil {
		t.Error("Harden on an evolving driver must fail")
	}
	intent, err := NewIntent("x", "rss")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWith("mlx5", intent, OpenOptions{Evolve: &EvolveOptions{}, Harden: &HardenOptions{}}); err == nil {
		t.Error("OpenWith(Evolve+Harden) must fail")
	}
}

// TestHardenedDisableResyncLeavesPacketStuck pins the behavior of the
// deliberately re-opened pre-resync liveness bug (HardenOptions.DisableResync,
// the chaos canary): a lost completion leaves its packet pending forever —
// Poll never delivers it and never counts a resync.
func TestHardenedDisableResyncLeavesPacketStuck(t *testing.T) {
	drv := openHardened(t, HardenOptions{Deep: true, DisableResync: true})
	drv.InjectFaults(faults.New(faults.Plan{Seed: 3, DropP: 1}))
	p := hardPackets(1)[0]
	if !drv.Rx(p) {
		t.Fatal("rx refused")
	}
	for i := 0; i < 100; i++ {
		if n := drv.Poll(func([]byte, Meta) {}); n != 0 {
			t.Fatalf("poll %d delivered %d packets with resync disabled and the completion dropped", i, n)
		}
	}
	if got := drv.PendingPackets(); got != 1 {
		t.Fatalf("pending = %d, want the packet stuck forever", got)
	}
	st := drv.Hardening()
	if st.ResyncDrops != 0 || st.SoftDelivered != 0 {
		t.Errorf("resync machinery ran despite DisableResync: %+v", st)
	}
	// Control: the same scenario with resync enabled delivers in software.
	ctl := openHardened(t, HardenOptions{Deep: true})
	ctl.InjectFaults(faults.New(faults.Plan{Seed: 3, DropP: 1}))
	if !ctl.Rx(p) {
		t.Fatal("control rx refused")
	}
	delivered := 0
	ctl.Poll(func([]byte, Meta) { delivered++ })
	if delivered != 1 || ctl.PendingPackets() != 0 {
		t.Fatalf("control delivered %d (pending %d), want resync to recover the packet", delivered, ctl.PendingPackets())
	}
}

// TestHardenedDegradedResidencyVirtualClock pins the degraded-mode residency
// bookkeeping on an injected virtual clock: DegradedResidencyNs must cover
// exactly the degraded window — including the still-open residency while the
// driver is degraded — and DegradedOps must count only in-degraded
// operations. No wall clock, no sleeps.
func TestHardenedDegradedResidencyVirtualClock(t *testing.T) {
	clk := vclock.NewVirtual(1_000)
	drv := openHardened(t, HardenOptions{Deep: true, DegradeThreshold: 2, Clock: clk})
	inj := faults.New(faults.Plan{})
	drv.InjectFaults(inj)
	packets := hardPackets(64)

	inj.ScriptHang(8)
	// Drive refusals until the fault streak trips degraded mode.
	i := 0
	for !drv.Hardening().Degraded {
		if i >= len(packets) {
			t.Fatal("driver never degraded under a scripted hang")
		}
		drv.Rx(packets[i])
		drv.Poll(func([]byte, Meta) {})
		i++
	}
	if drv.Hardening().DegradedResidencyNs != 0 {
		t.Errorf("residency %d at the instant of entry, want 0", drv.Hardening().DegradedResidencyNs)
	}
	clk.Advance(5_000)
	mid := drv.Hardening()
	if mid.DegradedResidencyNs != 5_000 {
		t.Errorf("open residency = %d, want exactly the 5000ns the virtual clock advanced", mid.DegradedResidencyNs)
	}
	if mid.DegradedOps == 0 {
		t.Error("no degraded ops counted while degraded")
	}

	// Let the watchdog recover (the wedge clears after its burst; each op
	// ticks recovery), then advance the clock again: residency must freeze.
	for j := 0; drv.Hardening().Degraded; j++ {
		if j > 10_000 {
			t.Fatal("driver never recovered")
		}
		clk.Advance(10)
		drv.Poll(func([]byte, Meta) {})
	}
	closed := drv.Hardening().DegradedResidencyNs
	clk.Advance(50_000)
	if got := drv.Hardening().DegradedResidencyNs; got != closed {
		t.Errorf("residency moved %d -> %d after recovery; must freeze once healthy", closed, got)
	}
	opsAfter := drv.Hardening().DegradedOps
	drv.Poll(func([]byte, Meta) {})
	if got := drv.Hardening().DegradedOps; got != opsAfter {
		t.Errorf("DegradedOps moved %d -> %d while healthy", opsAfter, got)
	}
}
