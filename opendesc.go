// Package opendesc is the public API of the OpenDesc library — a compiler
// and runtime for declarative NIC↔host metadata interfaces, implementing
// "OpenDesc: From Static NIC Descriptors to Evolvable Metadata Interfaces"
// (HotNets '25).
//
// The workflow has three steps:
//
//  1. Declare what metadata the application wants — either programmatically
//     (NewIntent) or as a P4 intent header with @semantic annotations
//     (ParseIntentP4).
//  2. Compile the intent against a NIC interface description (Compile /
//     CompileP4): the compiler enumerates the NIC's completion layouts,
//     picks the optimal one, and synthesizes accessors plus software shims.
//  3. Either generate source (GenerateGo / GenerateC / GenerateEBPF) for an
//     external datapath, or Open a ready-to-use driver over the bundled
//     simulator and read metadata per packet.
//
// A minimal end-to-end use:
//
//	drv, err := opendesc.Open("mlx5", "rss", "vlan", "pkt_len")
//	...
//	drv.Rx(packet) // deliver a packet (the simulated wire)
//	drv.Poll(func(pkt []byte, meta opendesc.Meta) {
//	    hash, _ := meta.Get("rss")
//	    ...
//	})
package opendesc

import (
	"errors"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/evolve"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/obs"
	"opendesc/internal/obs/flight"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
)

// Re-exported core types. The aliases make the internal packages' documented
// types part of the public surface without duplicating them.
type (
	// Intent is an application's declared metadata intent.
	Intent = core.Intent
	// Result is a compilation result: selected completion path, layout,
	// accessor table and NIC context configuration.
	Result = core.Result
	// Accessor is one synthesized metadata accessor.
	Accessor = core.Accessor
	// CompileOptions tunes path selection and enumeration.
	CompileOptions = core.CompileOptions
	// SelectOptions tunes the Eq. 1 optimization.
	SelectOptions = core.SelectOptions
	// UnsatisfiableError reports an intent no completion path and no
	// software fallback can serve.
	UnsatisfiableError = core.UnsatisfiableError
	// PipelineCaps describes programmable-pipeline resources for offload
	// planning.
	PipelineCaps = core.PipelineCaps
	// OffloadPlan places missing features onto pipeline or software.
	OffloadPlan = core.OffloadPlan
	// Diff is the accessor-level comparison of two compilations (interface
	// drift analysis, and the change report of a live switchover).
	Diff = core.Diff
	// EvolveOptions tunes the live interface-renegotiation control plane.
	EvolveOptions = evolve.Options
	// EvolveStats snapshots the renegotiation control-plane counters.
	EvolveStats = evolve.Stats
)

// NICs lists the bundled NIC model names.
func NICs() []string {
	var out []string
	for _, m := range nic.All() {
		out = append(out, m.Name)
	}
	return out
}

// Semantics lists the canonical semantic names (the universe Σ).
func Semantics() []string {
	var out []string
	for _, n := range semantics.Default.Names() {
		out = append(out, string(n))
	}
	return out
}

// RegisterSemantic extends Σ with an application-defined semantic — the
// paper's evolvability hook. defaultBits is the canonical field width;
// softCost the per-packet software-emulation cost (use math.Inf(1) when no
// software fallback exists).
func RegisterSemantic(name string, defaultBits int, softCost float64) error {
	return semantics.Default.Register(semantics.Descriptor{
		Name: semantics.Name(name), DefaultBits: defaultBits, SoftCost: softCost,
	})
}

// NewIntent builds an intent from semantic names.
func NewIntent(name string, sems ...string) (*Intent, error) {
	names := make([]semantics.Name, len(sems))
	for i, s := range sems {
		names[i] = semantics.Name(s)
	}
	return core.IntentFromSemantics(name, semantics.Default, names...)
}

// ParseIntentP4 parses a P4 source containing an intent header (fields
// tagged with @semantic, paper Fig. 5). header selects the intent header by
// name; pass "" when the source has exactly one annotated header.
func ParseIntentP4(source, header string) (*Intent, error) {
	prog, err := parser.Parse("intent.p4", source)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, err
	}
	return core.ParseIntent(info, header)
}

// Compile maps an intent onto a bundled NIC model.
func Compile(nicName string, intent *Intent, opts CompileOptions) (*Result, error) {
	m, err := nic.Load(nicName)
	if err != nil {
		return nil, err
	}
	return m.Compile(intent, opts)
}

// CompileP4 maps an intent onto an arbitrary NIC interface description given
// as P4 source (the self-describing-NIC path: the description normally ships
// with the device).
func CompileP4(nicName, nicSource string, intent *Intent, opts CompileOptions) (*Result, error) {
	prog, err := parser.Parse(nicName+".p4", nicSource)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, err
	}
	return core.Compile(nicName, core.DeparserSpec{Info: info}, intent, opts)
}

// GenerateGo renders a standalone Go accessor package for a result.
func GenerateGo(res *Result, pkg string) string { return codegen.GenGo(res, pkg) }

// GenerateGoBatch renders 4-wide batch accessors (the §5 SIMD shape).
func GenerateGoBatch(res *Result, pkg string) string { return codegen.GenGoBatch(res, pkg) }

// GenerateC renders a C header with constant-time accessors.
func GenerateC(res *Result, prefix string) string { return codegen.GenC(res, prefix) }

// GenerateEBPF renders eBPF/XDP C source with verifier-safe bounded reads.
func GenerateEBPF(res *Result) string { return codegen.GenEBPF(res) }

// PlanOffloads places a result's missing features onto the NIC's
// programmable pipeline (when resources allow) or host software.
func PlanOffloads(res *Result, caps PipelineCaps) (*OffloadPlan, error) {
	return core.PlanOffloads(res, caps, nil)
}

// Meta reads per-packet metadata inside a Driver.Poll handler.
type Meta struct {
	rt   *codegen.Runtime
	cmpt []byte
	pkt  []byte
	// note, when non-nil, records each read for the renegotiation control
	// plane (the live feature mix an evolving driver optimizes for).
	note func(semantics.Name)
	// fq/ts/seq, when ts is non-zero, emit one flight event per read
	// (hardware descriptor load vs SoftNIC shim call), reusing the Poll
	// timestamp so the hot path pays no extra clock read.
	fq  *flight.Queue
	ts  uint64
	seq uint32
}

// Get returns the value of a semantic for the current packet: a constant
// -time descriptor read when the selected layout carries it, the SoftNIC
// shim otherwise. ok is false for semantics outside the compiled intent.
func (m Meta) Get(sem string) (uint64, bool) {
	name := semantics.Name(sem)
	if m.note != nil {
		m.note(name)
	}
	r := m.rt.Reader(name)
	if r == nil || !r.Linked() {
		return 0, false
	}
	if m.ts != 0 {
		code := flight.EvReadSoft
		if r.Hardware {
			code = flight.EvReadHW
		}
		m.fq.RecordT(m.ts, code, m.seq, flight.PackName(sem), 0)
	}
	return r.Read(m.cmpt, m.pkt), true
}

// Hardware reports whether the semantic is served directly from the
// completion record (vs a software shim).
func (m Meta) Hardware(sem string) bool {
	r := m.rt.Reader(semantics.Name(sem))
	return r != nil && r.Hardware
}

// Driver is the generated minimalist driver datapath the paper's conclusion
// aims at: a compiled intent, a configured (simulated) device, and the
// accessor runtime, behind a two-call API. A driver opened with the Evolve
// option additionally renegotiates the interface online (see Evolution).
type Driver struct {
	Result *Result

	dev     *nicsim.Device
	rt      *codegen.Runtime
	pending []pendingPkt

	// flight is the driver's always-armed flight recorder; fq its "q0"
	// event ring, shared with the device so DMA, ring, validator, and
	// delivery events interleave on one timeline. Evolving drivers use the
	// engine's recorder instead (see Flight).
	flight *flight.Recorder
	fq     *flight.Queue
	// rxSeq numbers accepted packets 1-based, matching the device's
	// DMA-emit sequence so driver and device events correlate.
	rxSeq uint32
	// dmaToPoll / pollToDeliver are per-stage completion latencies derived
	// from matched flight timestamps (DMA-emit → Poll pickup → handler
	// return).
	dmaToPoll     *obs.Histogram
	pollToDeliver *obs.Histogram

	// engine is non-nil for evolving drivers; the datapath then delegates
	// to the renegotiation control plane.
	engine *evolve.Engine
	// hard is non-nil once Harden armed the validated/watchdogged datapath.
	hard *hardening
}

// pendingPkt is one packet awaiting its completion; soft marks packets that
// will be served from the SoftNIC runtime instead of a device record
// (quarantined completion, lost completion, or degraded mode). ts and seq
// are the packet's flight-recorder timestamp and sequence (zero when the
// recorder is disabled or compiled out).
type pendingPkt struct {
	pkt  []byte
	soft bool
	ts   uint64
	seq  uint32
}

// errEvolvingHarden: facade hardening applies to pinned drivers; the
// evolving control plane hardens its switchover path internally.
var errEvolvingHarden = errors.New("opendesc: Harden is not supported on an evolving driver")

// OpenOptions bundles everything Open can be tuned with.
type OpenOptions struct {
	// Compile tunes path selection and enumeration.
	Compile CompileOptions
	// Evolve, when non-nil, arms the live interface-renegotiation control
	// plane: the driver watches the application's read mix and the measured
	// shim costs, and hot-swaps the descriptor layout when a better one
	// emerges (generation-tagged, zero-loss switchovers).
	Evolve *EvolveOptions
	// Harden, when non-nil, arms the hardened datapath (completion
	// validation, device watchdog, SoftNIC degraded mode) on a pinned
	// driver. Mutually exclusive with Evolve.
	Harden *HardenOptions
	// Device sizes and configures the simulated device of a pinned driver
	// (ring depth, queue id, injected clock). Evolving drivers configure
	// theirs through EvolveOptions.Device instead. The zero value keeps the
	// defaults.
	Device nicsim.Config
}

// Open compiles the intent for the NIC, programs a simulated device with the
// selected context configuration, and links the SoftNIC shims.
func Open(nicName string, sems ...string) (*Driver, error) {
	intent, err := NewIntent("driver_intent", sems...)
	if err != nil {
		return nil, err
	}
	return OpenIntent(nicName, intent, CompileOptions{})
}

// OpenIntent is Open with an explicit intent and compile options.
func OpenIntent(nicName string, intent *Intent, opts CompileOptions) (*Driver, error) {
	return OpenWith(nicName, intent, OpenOptions{Compile: opts})
}

// OpenEvolving is Open with live interface renegotiation enabled.
func OpenEvolving(nicName string, opts EvolveOptions, sems ...string) (*Driver, error) {
	intent, err := NewIntent("driver_intent", sems...)
	if err != nil {
		return nil, err
	}
	return OpenWith(nicName, intent, OpenOptions{Evolve: &opts})
}

// OpenWith is the full-control constructor behind Open and OpenIntent.
func OpenWith(nicName string, intent *Intent, opts OpenOptions) (*Driver, error) {
	m, err := nic.Load(nicName)
	if err != nil {
		return nil, err
	}
	if opts.Evolve != nil {
		if opts.Harden != nil {
			return nil, errEvolvingHarden
		}
		eng, err := evolve.New(m, intent, opts.Compile, *opts.Evolve)
		if err != nil {
			return nil, err
		}
		return &Driver{Result: eng.Result(), dev: eng.Device(), engine: eng}, nil
	}
	res, err := m.Compile(intent, opts.Compile)
	if err != nil {
		return nil, err
	}
	dev, err := nicsim.New(m, opts.Device)
	if err != nil {
		return nil, err
	}
	if err := dev.ApplyConfig(res.Config); err != nil {
		return nil, err
	}
	rec := flight.NewRecorder(flight.Config{})
	d := &Driver{
		Result:        res,
		dev:           dev,
		rt:            codegen.NewRuntime(res, softnic.Funcs()),
		flight:        rec,
		fq:            rec.Queue("q0"),
		dmaToPoll:     obs.NewHistogram(),
		pollToDeliver: obs.NewHistogram(),
	}
	dev.AttachFlight(d.fq)
	if opts.Harden != nil {
		if err := d.Harden(*opts.Harden); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Rx delivers one packet to the device (the simulated wire). It returns
// false when the completion ring is full.
func (d *Driver) Rx(packet []byte) bool {
	if d.engine != nil {
		return d.engine.Rx(packet)
	}
	if d.hard != nil {
		return d.hard.rx(d, packet)
	}
	if !d.dev.RxPacket(packet) {
		return false
	}
	seq := d.nextSeq()
	d.pending = append(d.pending, pendingPkt{pkt: packet, ts: d.fq.NowIfSampled(seq), seq: seq})
	return true
}

// nextSeq numbers an accepted packet (1-based, like the device's DMA-emit
// sequence).
func (d *Driver) nextSeq() uint32 {
	d.rxSeq++
	return d.rxSeq
}

// noteDelivered derives one completed packet's per-stage latencies from its
// flight timestamps — rxTS stamped at Rx, t0 when the current Poll began —
// and emits the deliver event carrying both intervals, so trace viewers can
// render DMA→deliver as a span. A zero rxTS means the packet was not on the
// sampling grid (or the recorder was off at Rx): the whole derivation is
// skipped, which is what keeps the recorder inside its hot-path budget.
func (d *Driver) noteDelivered(t0, rxTS uint64, seq uint32) {
	if t0 == 0 || rxTS == 0 {
		return
	}
	t1 := d.fq.Now()
	d.dmaToPoll.Observe(t0 - rxTS)
	d.pollToDeliver.Observe(t1 - t0)
	d.fq.RecordT(t1, flight.EvDeliver, seq, t0-rxTS, t1-rxTS)
}

// Poll drains completed packets, invoking h for each with its metadata view,
// and returns how many were processed. On an evolving driver this is also
// the control-plane tick: every EvolveOptions.Interval delivered packets the
// layout optimization is re-solved against the observed read mix, and a
// winning candidate triggers a generation switchover (Result is updated to
// the new generation's compilation).
func (d *Driver) Poll(h func(packet []byte, meta Meta)) int {
	if d.engine != nil {
		n := d.engine.Poll(func(pkt, cmpt []byte, rt *codegen.Runtime) {
			fq, ts, seq := d.engine.FlightCtx()
			h(pkt, Meta{rt: rt, cmpt: cmpt, pkt: pkt, note: d.engine.NoteRead, fq: fq, ts: ts, seq: seq})
		})
		d.Result = d.engine.Result()
		return n
	}
	if d.hard != nil {
		return d.hard.poll(d, h)
	}
	n := 0
	t0 := d.fq.Now()
	for n < len(d.pending) {
		p := d.pending[n]
		// Per-read events fire only for sampled packets (non-zero Rx stamp):
		// a zero Meta timestamp turns Get's RecordT into a no-op.
		mts := uint64(0)
		if p.ts != 0 {
			mts = t0
		}
		if !d.dev.CmptRing.Consume(func(cmpt []byte) {
			h(p.pkt, Meta{rt: d.rt, cmpt: cmpt, pkt: p.pkt, fq: d.fq, ts: mts, seq: p.seq})
		}) {
			break
		}
		d.noteDelivered(t0, p.ts, p.seq)
		n++
	}
	d.pending = d.pending[:copy(d.pending, d.pending[n:])]
	return n
}

// PendingPackets reports how many accepted packets await delivery. On a
// healthy driver every pending packet is delivered by the next Poll; the
// chaos harness uses this as its liveness probe (pending packets with an
// empty completion ring and a healthy device are stuck forever).
func (d *Driver) PendingPackets() int {
	if d.engine != nil {
		return d.engine.PendingCount()
	}
	return len(d.pending)
}

// Flight returns the driver's flight recorder — the always-on per-queue
// event ring behind postmortem dumps, Chrome-trace export (WriteChromeTrace)
// and the /debug/flight endpoint. Never nil; evolving drivers return the
// engine's recorder.
func (d *Driver) Flight() *flight.Recorder {
	if d.engine != nil {
		return d.engine.Flight()
	}
	return d.flight
}

// Evolution snapshots the renegotiation control-plane counters (generation,
// switchovers, rollbacks, drained packets, switchover latency). The zero
// snapshot is returned for drivers opened without the Evolve option.
func (d *Driver) Evolution() EvolveStats {
	if d.engine == nil {
		return EvolveStats{}
	}
	return d.engine.Stats()
}

// LastDiff returns the change report of the most recent live switchover
// (nil for pinned drivers and before the first switchover).
func (d *Driver) LastDiff() *Diff {
	if d.engine == nil {
		return nil
	}
	return d.engine.LastDiff()
}

// CompletionBytes is the DMA footprint of each completion record under the
// compiled configuration.
func (d *Driver) CompletionBytes() int { return d.Result.CompletionBytes() }

// Report renders the compilation report (selected path, accessors, config).
func (d *Driver) Report() string { return d.Result.Report() }

// Stats returns device counters (packets received, drops).
func (d *Driver) Stats() (rx, drops uint64) {
	st := d.dev.Stats()
	return st.RxPackets, st.Drops
}

// DeviceStats returns the full ethtool-style counter snapshot of the
// underlying simulated device (per-path completions, per-semantic offload
// invocations, completion-ring occupancy and stalls).
func (d *Driver) DeviceStats() nicsim.DeviceStats { return d.dev.Stats() }

// RegisterMetrics exposes the driver's device and ring counters on an obs
// registry (rendered by Registry.Table, /metrics, or /debug/vars); evolving
// drivers additionally expose the renegotiation control-plane series.
func (d *Driver) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	if d.engine != nil {
		d.engine.RegisterMetrics(reg, labels...)
		return
	}
	d.dev.RegisterMetrics(reg, labels...)
	reg.AttachHistogram("opendesc_flight_dma_to_poll_ns", "DMA emit to Poll pickup latency (flight recorder)", d.dmaToPoll, labels...)
	reg.AttachHistogram("opendesc_flight_poll_to_deliver_ns", "Poll pickup to handler return latency (flight recorder)", d.pollToDeliver, labels...)
	if d.hard != nil {
		d.hard.registerMetrics(reg, labels...)
	}
	if inj := d.dev.Faults(); inj != nil {
		inj.RegisterMetrics(reg, labels...)
	}
}
