// Package opendesc is the public API of the OpenDesc library — a compiler
// and runtime for declarative NIC↔host metadata interfaces, implementing
// "OpenDesc: From Static NIC Descriptors to Evolvable Metadata Interfaces"
// (HotNets '25).
//
// The workflow has three steps:
//
//  1. Declare what metadata the application wants — either programmatically
//     (NewIntent) or as a P4 intent header with @semantic annotations
//     (ParseIntentP4).
//  2. Compile the intent against a NIC interface description (Compile /
//     CompileP4): the compiler enumerates the NIC's completion layouts,
//     picks the optimal one, and synthesizes accessors plus software shims.
//  3. Either generate source (GenerateGo / GenerateC / GenerateEBPF) for an
//     external datapath, or Open a ready-to-use driver over the bundled
//     simulator and read metadata per packet.
//
// A minimal end-to-end use:
//
//	drv, err := opendesc.Open("mlx5", "rss", "vlan", "pkt_len")
//	...
//	drv.Rx(packet) // deliver a packet (the simulated wire)
//	drv.Poll(func(pkt []byte, meta opendesc.Meta) {
//	    hash, _ := meta.Get("rss")
//	    ...
//	})
package opendesc

import (
	"errors"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/evolve"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/obs"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
)

// Re-exported core types. The aliases make the internal packages' documented
// types part of the public surface without duplicating them.
type (
	// Intent is an application's declared metadata intent.
	Intent = core.Intent
	// Result is a compilation result: selected completion path, layout,
	// accessor table and NIC context configuration.
	Result = core.Result
	// Accessor is one synthesized metadata accessor.
	Accessor = core.Accessor
	// CompileOptions tunes path selection and enumeration.
	CompileOptions = core.CompileOptions
	// SelectOptions tunes the Eq. 1 optimization.
	SelectOptions = core.SelectOptions
	// UnsatisfiableError reports an intent no completion path and no
	// software fallback can serve.
	UnsatisfiableError = core.UnsatisfiableError
	// PipelineCaps describes programmable-pipeline resources for offload
	// planning.
	PipelineCaps = core.PipelineCaps
	// OffloadPlan places missing features onto pipeline or software.
	OffloadPlan = core.OffloadPlan
	// Diff is the accessor-level comparison of two compilations (interface
	// drift analysis, and the change report of a live switchover).
	Diff = core.Diff
	// EvolveOptions tunes the live interface-renegotiation control plane.
	EvolveOptions = evolve.Options
	// EvolveStats snapshots the renegotiation control-plane counters.
	EvolveStats = evolve.Stats
)

// NICs lists the bundled NIC model names.
func NICs() []string {
	var out []string
	for _, m := range nic.All() {
		out = append(out, m.Name)
	}
	return out
}

// Semantics lists the canonical semantic names (the universe Σ).
func Semantics() []string {
	var out []string
	for _, n := range semantics.Default.Names() {
		out = append(out, string(n))
	}
	return out
}

// RegisterSemantic extends Σ with an application-defined semantic — the
// paper's evolvability hook. defaultBits is the canonical field width;
// softCost the per-packet software-emulation cost (use math.Inf(1) when no
// software fallback exists).
func RegisterSemantic(name string, defaultBits int, softCost float64) error {
	return semantics.Default.Register(semantics.Descriptor{
		Name: semantics.Name(name), DefaultBits: defaultBits, SoftCost: softCost,
	})
}

// NewIntent builds an intent from semantic names.
func NewIntent(name string, sems ...string) (*Intent, error) {
	names := make([]semantics.Name, len(sems))
	for i, s := range sems {
		names[i] = semantics.Name(s)
	}
	return core.IntentFromSemantics(name, semantics.Default, names...)
}

// ParseIntentP4 parses a P4 source containing an intent header (fields
// tagged with @semantic, paper Fig. 5). header selects the intent header by
// name; pass "" when the source has exactly one annotated header.
func ParseIntentP4(source, header string) (*Intent, error) {
	prog, err := parser.Parse("intent.p4", source)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, err
	}
	return core.ParseIntent(info, header)
}

// Compile maps an intent onto a bundled NIC model.
func Compile(nicName string, intent *Intent, opts CompileOptions) (*Result, error) {
	m, err := nic.Load(nicName)
	if err != nil {
		return nil, err
	}
	return m.Compile(intent, opts)
}

// CompileP4 maps an intent onto an arbitrary NIC interface description given
// as P4 source (the self-describing-NIC path: the description normally ships
// with the device).
func CompileP4(nicName, nicSource string, intent *Intent, opts CompileOptions) (*Result, error) {
	prog, err := parser.Parse(nicName+".p4", nicSource)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, err
	}
	return core.Compile(nicName, core.DeparserSpec{Info: info}, intent, opts)
}

// GenerateGo renders a standalone Go accessor package for a result.
func GenerateGo(res *Result, pkg string) string { return codegen.GenGo(res, pkg) }

// GenerateGoBatch renders 4-wide batch accessors (the §5 SIMD shape).
func GenerateGoBatch(res *Result, pkg string) string { return codegen.GenGoBatch(res, pkg) }

// GenerateC renders a C header with constant-time accessors.
func GenerateC(res *Result, prefix string) string { return codegen.GenC(res, prefix) }

// GenerateEBPF renders eBPF/XDP C source with verifier-safe bounded reads.
func GenerateEBPF(res *Result) string { return codegen.GenEBPF(res) }

// PlanOffloads places a result's missing features onto the NIC's
// programmable pipeline (when resources allow) or host software.
func PlanOffloads(res *Result, caps PipelineCaps) (*OffloadPlan, error) {
	return core.PlanOffloads(res, caps, nil)
}

// Meta reads per-packet metadata inside a Driver.Poll handler.
type Meta struct {
	rt   *codegen.Runtime
	cmpt []byte
	pkt  []byte
	// note, when non-nil, records each read for the renegotiation control
	// plane (the live feature mix an evolving driver optimizes for).
	note func(semantics.Name)
}

// Get returns the value of a semantic for the current packet: a constant
// -time descriptor read when the selected layout carries it, the SoftNIC
// shim otherwise. ok is false for semantics outside the compiled intent.
func (m Meta) Get(sem string) (uint64, bool) {
	if m.note != nil {
		m.note(semantics.Name(sem))
	}
	v, err := m.rt.Read(semantics.Name(sem), m.cmpt, m.pkt)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Hardware reports whether the semantic is served directly from the
// completion record (vs a software shim).
func (m Meta) Hardware(sem string) bool {
	r := m.rt.Reader(semantics.Name(sem))
	return r != nil && r.Hardware
}

// Driver is the generated minimalist driver datapath the paper's conclusion
// aims at: a compiled intent, a configured (simulated) device, and the
// accessor runtime, behind a two-call API. A driver opened with the Evolve
// option additionally renegotiates the interface online (see Evolution).
type Driver struct {
	Result *Result

	dev     *nicsim.Device
	rt      *codegen.Runtime
	pending []pendingPkt

	// engine is non-nil for evolving drivers; the datapath then delegates
	// to the renegotiation control plane.
	engine *evolve.Engine
	// hard is non-nil once Harden armed the validated/watchdogged datapath.
	hard *hardening
}

// pendingPkt is one packet awaiting its completion; soft marks packets that
// will be served from the SoftNIC runtime instead of a device record
// (quarantined completion, lost completion, or degraded mode).
type pendingPkt struct {
	pkt  []byte
	soft bool
}

// errEvolvingHarden: facade hardening applies to pinned drivers; the
// evolving control plane hardens its switchover path internally.
var errEvolvingHarden = errors.New("opendesc: Harden is not supported on an evolving driver")

// OpenOptions bundles everything Open can be tuned with.
type OpenOptions struct {
	// Compile tunes path selection and enumeration.
	Compile CompileOptions
	// Evolve, when non-nil, arms the live interface-renegotiation control
	// plane: the driver watches the application's read mix and the measured
	// shim costs, and hot-swaps the descriptor layout when a better one
	// emerges (generation-tagged, zero-loss switchovers).
	Evolve *EvolveOptions
	// Harden, when non-nil, arms the hardened datapath (completion
	// validation, device watchdog, SoftNIC degraded mode) on a pinned
	// driver. Mutually exclusive with Evolve.
	Harden *HardenOptions
}

// Open compiles the intent for the NIC, programs a simulated device with the
// selected context configuration, and links the SoftNIC shims.
func Open(nicName string, sems ...string) (*Driver, error) {
	intent, err := NewIntent("driver_intent", sems...)
	if err != nil {
		return nil, err
	}
	return OpenIntent(nicName, intent, CompileOptions{})
}

// OpenIntent is Open with an explicit intent and compile options.
func OpenIntent(nicName string, intent *Intent, opts CompileOptions) (*Driver, error) {
	return OpenWith(nicName, intent, OpenOptions{Compile: opts})
}

// OpenEvolving is Open with live interface renegotiation enabled.
func OpenEvolving(nicName string, opts EvolveOptions, sems ...string) (*Driver, error) {
	intent, err := NewIntent("driver_intent", sems...)
	if err != nil {
		return nil, err
	}
	return OpenWith(nicName, intent, OpenOptions{Evolve: &opts})
}

// OpenWith is the full-control constructor behind Open and OpenIntent.
func OpenWith(nicName string, intent *Intent, opts OpenOptions) (*Driver, error) {
	m, err := nic.Load(nicName)
	if err != nil {
		return nil, err
	}
	if opts.Evolve != nil {
		if opts.Harden != nil {
			return nil, errEvolvingHarden
		}
		eng, err := evolve.New(m, intent, opts.Compile, *opts.Evolve)
		if err != nil {
			return nil, err
		}
		return &Driver{Result: eng.Result(), dev: eng.Device(), engine: eng}, nil
	}
	res, err := m.Compile(intent, opts.Compile)
	if err != nil {
		return nil, err
	}
	dev, err := nicsim.New(m, nicsim.Config{})
	if err != nil {
		return nil, err
	}
	if err := dev.ApplyConfig(res.Config); err != nil {
		return nil, err
	}
	d := &Driver{
		Result: res,
		dev:    dev,
		rt:     codegen.NewRuntime(res, softnic.Funcs()),
	}
	if opts.Harden != nil {
		if err := d.Harden(*opts.Harden); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Rx delivers one packet to the device (the simulated wire). It returns
// false when the completion ring is full.
func (d *Driver) Rx(packet []byte) bool {
	if d.engine != nil {
		return d.engine.Rx(packet)
	}
	if d.hard != nil {
		return d.hard.rx(d, packet)
	}
	if !d.dev.RxPacket(packet) {
		return false
	}
	d.pending = append(d.pending, pendingPkt{pkt: packet})
	return true
}

// Poll drains completed packets, invoking h for each with its metadata view,
// and returns how many were processed. On an evolving driver this is also
// the control-plane tick: every EvolveOptions.Interval delivered packets the
// layout optimization is re-solved against the observed read mix, and a
// winning candidate triggers a generation switchover (Result is updated to
// the new generation's compilation).
func (d *Driver) Poll(h func(packet []byte, meta Meta)) int {
	if d.engine != nil {
		n := d.engine.Poll(func(pkt, cmpt []byte, rt *codegen.Runtime) {
			h(pkt, Meta{rt: rt, cmpt: cmpt, pkt: pkt, note: d.engine.NoteRead})
		})
		d.Result = d.engine.Result()
		return n
	}
	if d.hard != nil {
		return d.hard.poll(d, h)
	}
	n := 0
	for n < len(d.pending) {
		p := d.pending[n].pkt
		if !d.dev.CmptRing.Consume(func(cmpt []byte) {
			h(p, Meta{rt: d.rt, cmpt: cmpt, pkt: p})
		}) {
			break
		}
		n++
	}
	d.pending = d.pending[:copy(d.pending, d.pending[n:])]
	return n
}

// Evolution snapshots the renegotiation control-plane counters (generation,
// switchovers, rollbacks, drained packets, switchover latency). The zero
// snapshot is returned for drivers opened without the Evolve option.
func (d *Driver) Evolution() EvolveStats {
	if d.engine == nil {
		return EvolveStats{}
	}
	return d.engine.Stats()
}

// LastDiff returns the change report of the most recent live switchover
// (nil for pinned drivers and before the first switchover).
func (d *Driver) LastDiff() *Diff {
	if d.engine == nil {
		return nil
	}
	return d.engine.LastDiff()
}

// CompletionBytes is the DMA footprint of each completion record under the
// compiled configuration.
func (d *Driver) CompletionBytes() int { return d.Result.CompletionBytes() }

// Report renders the compilation report (selected path, accessors, config).
func (d *Driver) Report() string { return d.Result.Report() }

// Stats returns device counters (packets received, drops).
func (d *Driver) Stats() (rx, drops uint64) {
	st := d.dev.Stats()
	return st.RxPackets, st.Drops
}

// DeviceStats returns the full ethtool-style counter snapshot of the
// underlying simulated device (per-path completions, per-semantic offload
// invocations, completion-ring occupancy and stalls).
func (d *Driver) DeviceStats() nicsim.DeviceStats { return d.dev.Stats() }

// RegisterMetrics exposes the driver's device and ring counters on an obs
// registry (rendered by Registry.Table, /metrics, or /debug/vars); evolving
// drivers additionally expose the renegotiation control-plane series.
func (d *Driver) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	if d.engine != nil {
		d.engine.RegisterMetrics(reg, labels...)
		return
	}
	d.dev.RegisterMetrics(reg, labels...)
	if d.hard != nil {
		d.hard.registerMetrics(reg, labels...)
	}
	if inj := d.dev.Faults(); inj != nil {
		inj.RegisterMetrics(reg, labels...)
	}
}
