package opendesc

import (
	"sync"
	"testing"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/faults"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
)

// fuzzSems is an intent every bundled NIC can serve (hardware or shim) and
// whose SoftNIC reference implementations exist for deep validation.
var fuzzSems = []string{"rss", "vlan", "pkt_len"}

type fuzzCompiled struct {
	res *core.Result
	val *codegen.Validator
	rt  *codegen.Runtime
}

var fuzzOnce sync.Once
var fuzzModels []fuzzCompiled

// fuzzCompile compiles the fuzz intent once per bundled NIC — fuzzing
// amortizes the compile, not the datapath under test.
func fuzzCompile(t *testing.T) []fuzzCompiled {
	fuzzOnce.Do(func() {
		for _, m := range nic.All() {
			intent, err := core.IntentFromSemantics("fuzz", semantics.Default,
				semantics.RSS, semantics.VLAN, semantics.PktLen)
			if err != nil {
				panic(err)
			}
			res, err := m.Compile(intent, core.CompileOptions{})
			if err != nil {
				panic(m.Name + ": " + err.Error())
			}
			val, err := codegen.NewValidator(res, codegen.ValidatorOptions{
				Deep:   true,
				Soft:   softnic.Funcs(),
				Consts: softConsts(nicsim.Config{}.WithDefaults()),
			})
			if err != nil {
				panic(m.Name + ": " + err.Error())
			}
			fuzzModels = append(fuzzModels, fuzzCompiled{
				res: res,
				val: val,
				rt:  codegen.NewSoftRuntime(res, softnic.Funcs()),
			})
		}
	})
	return fuzzModels
}

// FuzzValidate feeds arbitrary completion records and arbitrary packet bytes
// through every bundled NIC's synthesized validator and soft runtime. The
// properties: no panic, no out-of-bounds access, short records are always
// rejected as ViolationShort, and a record that passes the deep Check also
// Conforms.
func FuzzValidate(f *testing.F) {
	n := len(fuzzCompile(nil))
	for i := 0; i < n; i++ {
		f.Add(uint8(i), []byte{}, []byte{})
		f.Add(uint8(i), make([]byte, 32), []byte("not a packet"))
		f.Add(uint8(i), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, make([]byte, 64))
	}
	f.Fuzz(func(t *testing.T, modelIdx uint8, rec, packet []byte) {
		if len(rec) > 1<<12 || len(packet) > 1<<12 {
			t.Skip()
		}
		m := fuzzCompile(t)[int(modelIdx)%len(fuzzModels)]
		viol := m.val.Check(rec, packet)
		if len(rec) < m.val.RecordBytes() {
			if viol == nil || viol.Kind != codegen.ViolationShort {
				t.Fatalf("%s: short record (%d < %d) not rejected: %v",
					m.res.NIC, len(rec), m.val.RecordBytes(), viol)
			}
		}
		conforms := m.val.Conforms(rec, packet)
		if viol == nil && !conforms {
			t.Fatalf("%s: record passed deep Check but does not Conform", m.res.NIC)
		}
		// The degraded-mode runtime must survive arbitrary packet bytes for
		// every semantic of the fuzz intent.
		for _, sem := range []semantics.Name{semantics.RSS, semantics.VLAN, semantics.PktLen} {
			m.rt.Read(sem, rec, packet)
		}
	})
}

// FuzzPoll drives the full hardened driver — simulated device, fault
// injector, validator, watchdog — with arbitrary packet bytes and an
// arbitrary fault mix on every bundled NIC. The properties: no panic, and
// exactly-once delivery (every accepted packet is delivered exactly once
// after draining, no matter which faults fired).
func FuzzPoll(f *testing.F) {
	names := NICs()
	for i := range names {
		f.Add(uint8(i), uint64(1), uint8(0), []byte("hello world, this is not a packet"))
		f.Add(uint8(i), uint64(7), uint8(0xFF), make([]byte, 256))
		f.Add(uint8(i), uint64(42), uint8(1<<6), []byte{8, 0, 1, 2, 3, 4, 5, 6, 7})
	}
	f.Fuzz(func(t *testing.T, modelIdx uint8, seed uint64, mask uint8, data []byte) {
		if len(data) > 1<<11 {
			t.Skip()
		}
		name := names[int(modelIdx)%len(names)]
		intent, err := NewIntent("fuzz", fuzzSems...)
		if err != nil {
			t.Fatal(err)
		}
		drv, err := OpenWith(name, intent, OpenOptions{
			Harden: &HardenOptions{Deep: true, DegradeThreshold: 2},
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		plan := faults.Plan{Seed: seed | 1}
		if mask&(1<<0) != 0 {
			plan.CorruptP = 0.5
		}
		if mask&(1<<1) != 0 {
			plan.TruncateP = 0.3
		}
		if mask&(1<<2) != 0 {
			plan.ReplayP = 0.3
		}
		if mask&(1<<3) != 0 {
			plan.DuplicateP = 0.3
		}
		if mask&(1<<4) != 0 {
			plan.DropP = 0.3
		}
		if mask&(1<<5) != 0 {
			plan.NAKP = 0.5
		}
		if mask&(1<<6) != 0 {
			plan.HangCount, plan.HangMTBF, plan.HangBurst = 1, 5, 3
		}
		drv.InjectFaults(faults.New(plan))

		accepted, delivered := 0, 0
		h := func(p []byte, meta Meta) {
			delivered++
			for _, s := range fuzzSems {
				meta.Get(s)
			}
		}
		for i := 0; i < 8 && len(data) > 0; i++ {
			n := 1 + int(data[0])%64
			if n > len(data) {
				n = len(data)
			}
			if drv.Rx(data[:n]) {
				accepted++
			}
			data = data[n:]
			drv.Poll(h)
		}
		// Drain: while degraded each Poll also ticks the watchdog, so a
		// bounded number of idle polls completes any pending recovery.
		idle := 0
		for i := 0; i < 5000 && idle < 3; i++ {
			if drv.Poll(h) == 0 {
				idle++
			} else {
				idle = 0
			}
		}
		if delivered != accepted {
			t.Fatalf("%s: delivered %d of %d accepted packets (stats %+v)",
				name, delivered, accepted, drv.Hardening())
		}
	})
}
