package opendesc

import (
	"strings"
	"sync"
	"testing"

	"opendesc/internal/obs"
	"opendesc/internal/pkt"
)

// TestTwoDriversOneEndpointNamespaced: two concurrently-open drivers share
// one stats registry, each under its own label namespace. Every series must
// appear for both drivers, with zero collisions, while traffic and scrapes
// race (the test matters under -race: scrape iterates the same store the
// datapaths update).
func TestTwoDriversOneEndpointNamespaced(t *testing.T) {
	a, err := Open("mlx5", "rss", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open("mlx5", "vlan", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	a.RegisterMetrics(reg.WithLabels(obs.L("driver", "a")))
	b.RegisterMetrics(reg.WithLabels(obs.L("driver", "b")))
	if got := reg.Collisions(); got != 0 {
		t.Fatalf("collisions = %d; namespaced drivers must not collide", got)
	}

	// One goroutine per driver (the datapath is single-consumer); the
	// scrapers below race against both datapaths through the shared store.
	packet := pkt.NewBuilder().WithTCP(443, 5555, 0x18).WithPayload([]byte("x")).Build()
	var wg sync.WaitGroup
	var scrapes [8]string
	for _, drv := range []*Driver{a, b} {
		wg.Add(1)
		go func(d *Driver) {
			defer wg.Done()
			for j := 0; j < 128; j++ {
				d.Rx(packet)
				d.Poll(func([]byte, Meta) {})
			}
		}(drv)
	}
	for i := range scrapes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sb strings.Builder
			reg.WritePrometheus(&sb)
			scrapes[i] = sb.String()
		}(i)
	}
	wg.Wait()

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`opendesc_dev_rx_packets_total{nic="mlx5",driver="a"}`,
		`opendesc_dev_rx_packets_total{nic="mlx5",driver="b"}`,
		`opendesc_ring_occupancy{nic="mlx5",ring="cmpt",driver="a"}`,
		`opendesc_ring_occupancy{nic="mlx5",ring="cmpt",driver="b"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %s", want)
		}
	}
	if reg.Collisions() != 0 {
		t.Errorf("collisions = %d after traffic", reg.Collisions())
	}
}

// TestTwoDriversOneEndpointBare: two drivers registering with identical
// names and labels on one registry must not silently drop or double-count
// either one — the second registration is disambiguated with an instance
// label and both data sources stay visible.
func TestTwoDriversOneEndpointBare(t *testing.T) {
	a, err := Open("e1000e", "rss", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open("e1000e", "rss", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	a.RegisterMetrics(reg)
	b.RegisterMetrics(reg)
	if reg.Collisions() == 0 {
		t.Fatal("identical registrations reported no collisions")
	}

	packet := pkt.NewBuilder().WithTCP(80, 2000, 0x18).Build()
	for i := 0; i < 3; i++ {
		a.Rx(packet)
	}
	a.Poll(func([]byte, Meta) {})
	b.Rx(packet)
	b.Poll(func([]byte, Meta) {})

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, `opendesc_dev_rx_packets_total{nic="e1000e"} 3`) {
		t.Errorf("first driver's counter lost:\n%s", grep(out, "rx_packets"))
	}
	if !strings.Contains(out, `opendesc_dev_rx_packets_total{nic="e1000e",instance="1"} 1`) {
		t.Errorf("second driver's counter not instance-disambiguated:\n%s", grep(out, "rx_packets"))
	}
}

// grep filters scrape output lines for failure messages.
func grep(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
