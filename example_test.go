package opendesc_test

import (
	"fmt"
	"log"
	"strings"

	"opendesc"
	"opendesc/internal/pkt"
)

// Example shows the complete OpenDesc workflow: declare an intent, open the
// generated driver datapath on a NIC, and read per-packet metadata.
func Example() {
	drv, err := opendesc.Open("e1000e", "rss", "ip_checksum")
	if err != nil {
		log.Fatal(err)
	}
	// The e1000e can deliver the RSS hash or the checksum — never both
	// (the paper's Fig. 6) — so one of the two is a software shim.
	fmt.Printf("completion: %d bytes\n", drv.CompletionBytes())

	packet := pkt.NewBuilder().WithTCP(443, 55000, 0x18).Build()
	drv.Rx(packet)
	drv.Poll(func(p []byte, meta opendesc.Meta) {
		_, csumOK := meta.Get("ip_checksum")
		_, rssOK := meta.Get("rss")
		fmt.Printf("csum available: %v (hardware: %v)\n", csumOK, meta.Hardware("ip_checksum"))
		fmt.Printf("rss available: %v (hardware: %v)\n", rssOK, meta.Hardware("rss"))
	})
	// Output:
	// completion: 11 bytes
	// csum available: true (hardware: true)
	// rss available: true (hardware: false)
}

// ExampleCompile demonstrates compilation without the simulator: generate
// eBPF/XDP accessor source for an external datapath.
func ExampleCompile() {
	intent, err := opendesc.NewIntent("xdp_app", "rss", "timestamp", "vlan")
	if err != nil {
		log.Fatal(err)
	}
	res, err := opendesc.Compile("mlx5", intent, opendesc.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected completion: %d bytes, software shims: %d\n",
		res.CompletionBytes(), len(res.Missing()))
	src := opendesc.GenerateEBPF(res)
	fmt.Printf("generated bounded XDP reader: %v\n", strings.Contains(src, "opendesc_cmpt"))
	// Output:
	// selected completion: 64 bytes, software shims: 0
	// generated bounded XDP reader: true
}
