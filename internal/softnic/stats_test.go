package softnic

import (
	"strings"
	"testing"

	"opendesc/internal/obs"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
)

func TestInstrumentedFuncsCountAndCost(t *testing.T) {
	st := NewShimStats(nil)
	funcs := InstrumentedFuncs(st)
	if len(funcs) != len(Funcs()) {
		t.Fatalf("instrumented set has %d funcs, bare has %d", len(funcs), len(Funcs()))
	}
	p := pkt.NewBuilder().
		WithIPv4([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}).
		WithTCP(1234, 80, 0x18).
		WithPayload([]byte("payload")).
		Build()

	// Instrumented shims must return the same values as the bare ones.
	bare := Funcs()
	for name, f := range funcs {
		if got, want := f(p), bare[name](p); got != want {
			t.Errorf("%s instrumented = %#x, bare = %#x", name, got, want)
		}
	}
	for i := 0; i < 9; i++ {
		funcs[semantics.RSS](p)
	}

	snap := st.Snapshot()
	if snap[semantics.RSS].Calls != 10 {
		t.Errorf("rss calls = %d, want 10", snap[semantics.RSS].Calls)
	}
	for name, cost := range snap {
		if cost.Calls == 0 {
			t.Errorf("%s snapshotted with zero calls", name)
		}
	}
	if st.MeasuredCost(semantics.RSS) <= 0 {
		t.Errorf("rss measured cost = %v", st.MeasuredCost(semantics.RSS))
	}
	if st.MeasuredCost(semantics.Name("no_such_semantic")) != 0 {
		t.Error("unknown semantic should cost 0")
	}
}

func TestShimStatsRegistration(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewShimStats(reg)
	p := pkt.NewBuilder().WithUDP(1, 2).Build()
	InstrumentedFuncs(st)[semantics.PktLen](p)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `opendesc_softnic_calls_total{semantic="pkt_len"} 1`) {
		t.Errorf("exposition missing shim call counter:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `opendesc_softnic_nanos_total{semantic="pkt_len"}`) {
		t.Error("exposition missing shim nanos counter")
	}
}
