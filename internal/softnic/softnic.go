// Package softnic provides the software reference implementation of every
// emulable semantic — the "SoftNIC-like framework [that] emulates each
// missing semantic at a run-time cost" of the paper. The OpenDesc compiler
// links these functions as shims for the semantics the selected completion
// layout does not provide, and the calibration routine measures w(s) on the
// running machine to replace the static cost table.
package softnic

import (
	"encoding/binary"
	"time"

	"opendesc/internal/codegen"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
)

// DefaultToeplitzKey is the Microsoft RSS reference hash key.
var DefaultToeplitzKey = [40]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// SymmetricToeplitzKey is a repeating 16-bit-pattern key (0x6d5a). A
// Toeplitz key whose bits repeat with period 16 makes the hash invariant
// under swapping (src IP, dst IP) and (src port, dst port) — every field
// moves by a multiple of 16 bits — so both directions of a flow land on the
// same RSS queue. The multi-tenant serving plane steers with this key.
var SymmetricToeplitzKey = [40]byte{
	0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
	0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
	0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
	0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
	0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
}

// Toeplitz computes the Toeplitz hash of input under key, as NIC RSS engines
// do.
func Toeplitz(key []byte, input []byte) uint32 {
	if len(key) < 4 {
		return 0 // no 32-bit window ever forms
	}
	var hash uint32
	for i, in := range input {
		if in == 0 {
			continue // zero byte XORs nothing
		}
		// 64 key bits starting at byte i (zero-padded past the end):
		// bits b..b+31 of this window are the Toeplitz window for input
		// bit b (MSB first) of byte i.
		var w uint64
		for k := i; k < i+8; k++ {
			w <<= 8
			if k < len(key) {
				w |= uint64(key[k])
			}
		}
		for b := 0; b < 8; b++ {
			if in&(0x80>>b) != 0 {
				hash ^= uint32(w >> (32 - b))
			}
		}
	}
	return hash
}

// RSS computes the standard 5-tuple (or 2-tuple for non-TCP/UDP) Toeplitz
// RSS hash of a decoded packet under the Microsoft reference key.
func RSS(in *pkt.Info) uint32 { return RSSKey(DefaultToeplitzKey[:], in) }

// RSSKey is RSS under an explicit Toeplitz key (e.g. SymmetricToeplitzKey
// for direction-invariant steering). Non-IP packets hash to 0.
func RSSKey(key []byte, in *pkt.Info) uint32 {
	var buf [36]byte
	n := 0
	switch in.L3 {
	case pkt.L3IPv4:
		n += copy(buf[n:], in.SrcIP[:4])
		n += copy(buf[n:], in.DstIP[:4])
	case pkt.L3IPv6:
		n += copy(buf[n:], in.SrcIP[:])
		n += copy(buf[n:], in.DstIP[:])
	default:
		return 0
	}
	if in.L4 == pkt.L4TCP || in.L4 == pkt.L4UDP {
		binary.BigEndian.PutUint16(buf[n:], in.SrcPort)
		binary.BigEndian.PutUint16(buf[n+2:], in.DstPort)
		n += 4
	}
	return Toeplitz(key, buf[:n])
}

// FlowID computes a symmetric exact-match flow identifier (FNV-1a over the
// sorted 5-tuple) — software stand-in for NIC flow-table match results.
func FlowID(in *pkt.Info) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(b byte) { h = (h ^ uint32(b)) * prime32 }
	a, b := in.SrcIP, in.DstIP
	pa, pb := in.SrcPort, in.DstPort
	// Symmetric ordering so both directions map to one flow.
	swap := false
	for i := range a {
		if a[i] != b[i] {
			swap = a[i] > b[i]
			break
		}
	}
	if swap {
		a, b = b, a
		pa, pb = pb, pa
	}
	for _, x := range a {
		mix(x)
	}
	for _, x := range b {
		mix(x)
	}
	mix(byte(pa >> 8))
	mix(byte(pa))
	mix(byte(pb >> 8))
	mix(byte(pb))
	mix(in.IPProto)
	return h
}

// IPChecksum recomputes the IPv4 header checksum (0 for non-IPv4).
func IPChecksum(in *pkt.Info) uint16 {
	if in.L3 != pkt.L3IPv4 || in.L3Off < 0 {
		return 0
	}
	hdr := in.Data[in.L3Off:]
	ihl := int(hdr[0]&0x0F) * 4
	if ihl < pkt.IPv4MinLen || in.L3Off+ihl > len(in.Data) {
		return 0
	}
	return pkt.IPv4HeaderChecksum(hdr[:ihl])
}

// L4Checksum recomputes the TCP/UDP checksum including pseudo-header.
func L4Checksum(in *pkt.Info) uint16 {
	c, _ := pkt.L4Checksum(in)
	return c
}

// VLANTCI extracts the outer VLAN TCI (0 when untagged).
func VLANTCI(in *pkt.Info) uint16 { return in.OuterTCI() }

// PType returns the parsed packet-type code.
func PType(in *pkt.Info) uint8 { return in.PTypeCode() }

// PayloadHash hashes the L4 payload (FNV-1a), a software stand-in for
// accelerator-computed digests (RegEx pre-filters and similar).
func PayloadHash(in *pkt.Info) uint32 {
	const prime32 = 16777619
	h := uint32(2166136261)
	for _, b := range in.Payload() {
		h = (h ^ uint32(b)) * prime32
	}
	return h
}

// KVKey extracts the key digest of a key-value-store request carried as the
// packet payload. The recognized wire format is "get <key>\r\n" /
// "set <key> ..." (memcached-style); the digest is FNV-1a64 over the key
// bytes, which is what a FlexNIC-style offload would steer on.
func KVKey(in *pkt.Info) uint64 {
	p := in.Payload()
	// Skip the verb.
	i := 0
	for i < len(p) && p[i] != ' ' {
		i++
	}
	if i == len(p) {
		return 0
	}
	i++ // the space
	start := i
	for i < len(p) && p[i] != ' ' && p[i] != '\r' && p[i] != '\n' {
		i++
	}
	if i == start {
		return 0
	}
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, b := range p[start:i] {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// TunnelID extracts the VXLAN VNI when the packet is a VXLAN encapsulation
// (UDP dst 4789), else 0.
func TunnelID(in *pkt.Info) uint32 {
	if in.L4 != pkt.L4UDP || in.DstPort != 4789 {
		return 0
	}
	p := in.Payload()
	if len(p) < 8 {
		return 0
	}
	return uint32(p[4])<<16 | uint32(p[5])<<8 | uint32(p[6])
}

// Funcs returns the SoftNIC shim table for the codegen runtime: each function
// decodes the raw packet and computes one semantic. Decoding cost is paid per
// call, exactly as a software fallback on a descriptor-less datapath would.
func Funcs() map[semantics.Name]codegen.SoftFunc {
	perPacket := func(f func(*pkt.Info) uint64) codegen.SoftFunc {
		return func(packet []byte) uint64 {
			var in pkt.Info
			if err := pkt.Decode(packet, &in); err != nil {
				return 0
			}
			return f(&in)
		}
	}
	return map[semantics.Name]codegen.SoftFunc{
		semantics.RSS:        perPacket(func(in *pkt.Info) uint64 { return uint64(RSS(in)) }),
		semantics.IPChecksum: perPacket(func(in *pkt.Info) uint64 { return uint64(IPChecksum(in)) }),
		semantics.L4Checksum: perPacket(func(in *pkt.Info) uint64 { return uint64(L4Checksum(in)) }),
		// VLAN needs no full decode: peek the EtherType and TCI directly
		// (this is why w(vlan) is among the cheapest costs in the model).
		semantics.VLAN: func(packet []byte) uint64 {
			if len(packet) < pkt.EthHeaderLen+pkt.VLANTagLen {
				return 0
			}
			et := uint16(packet[12])<<8 | uint16(packet[13])
			if et != pkt.EtherTypeVLAN && et != pkt.EtherTypeQinQ {
				return 0
			}
			return uint64(packet[14])<<8 | uint64(packet[15])
		},
		semantics.PType:       perPacket(func(in *pkt.Info) uint64 { return uint64(PType(in)) }),
		semantics.FlowID:      perPacket(func(in *pkt.Info) uint64 { return uint64(FlowID(in)) }),
		semantics.IPID:        perPacket(func(in *pkt.Info) uint64 { return uint64(in.IPID) }),
		semantics.PktLen:      func(packet []byte) uint64 { return uint64(len(packet)) },
		semantics.KVKey:       perPacket(KVKey),
		semantics.PayloadHash: perPacket(func(in *pkt.Info) uint64 { return uint64(PayloadHash(in)) }),
		semantics.TunnelID:    perPacket(func(in *pkt.Info) uint64 { return uint64(TunnelID(in)) }),
		semantics.DecapFlag:   perPacket(func(in *pkt.Info) uint64 { return boolBit(TunnelID(in) != 0) }),
		semantics.L4Port:      perPacket(func(in *pkt.Info) uint64 { return uint64(in.DstPort) }),
		semantics.SegCnt:      func(packet []byte) uint64 { return 1 },
		semantics.ErrorFlags: perPacket(func(in *pkt.Info) uint64 {
			var f uint64
			if in.L3 == pkt.L3IPv4 && in.L3Off >= 0 {
				hdr := in.Data[in.L3Off:]
				ihl := int(hdr[0]&0x0F) * 4
				if ihl >= pkt.IPv4MinLen && in.L3Off+ihl <= len(in.Data) && !pkt.VerifyIPv4Header(hdr[:ihl]) {
					f |= 1
				}
			}
			if (in.L4 == pkt.L4TCP || in.L4 == pkt.L4UDP) && !pkt.VerifyL4(in) {
				f |= 2
			}
			return f
		}),
		semantics.ChecksumAny: perPacket(func(in *pkt.Info) uint64 {
			lvl := uint64(0)
			if in.L3 == pkt.L3IPv4 {
				lvl = 1
			}
			if in.L4 == pkt.L4TCP || in.L4 == pkt.L4UDP {
				lvl = 2
			}
			return lvl
		}),
		semantics.ParserDepth: perPacket(func(in *pkt.Info) uint64 {
			d := uint64(1)
			if in.L3 != pkt.L3None {
				d++
			}
			if in.L4 != pkt.L4None {
				d++
			}
			return d
		}),
		// queue_id: the polling thread knows which queue it drains; the shim
		// returns the conventional single-queue id and datapaths that spread
		// over queues bind their own closure instead.
		semantics.QueueID: func(packet []byte) uint64 { return 0 },
		semantics.InnerCsum: perPacket(func(in *pkt.Info) uint64 {
			return uint64(innerChecksumStatus(in))
		}),
	}
}

// innerChecksumStatus validates the checksum of a VXLAN-encapsulated inner
// frame: 0 = no tunnel, 1 = inner valid, 2 = inner invalid/undecodable.
func innerChecksumStatus(in *pkt.Info) uint8 {
	if TunnelID(in) == 0 {
		return 0
	}
	p := in.Payload()
	if len(p) < 8+pkt.EthHeaderLen {
		return 2
	}
	var inner pkt.Info
	if err := pkt.Decode(p[8:], &inner); err != nil {
		return 2
	}
	if inner.L3 == pkt.L3IPv4 && inner.L3Off >= 0 {
		hdr := inner.Data[inner.L3Off:]
		ihl := int(hdr[0]&0x0F) * 4
		if ihl < pkt.IPv4MinLen || inner.L3Off+ihl > len(inner.Data) || !pkt.VerifyIPv4Header(hdr[:ihl]) {
			return 2
		}
	}
	return 1
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Calibrate measures the per-packet cost of each emulable semantic on the
// running machine over the supplied sample packets and returns a measured
// cost model (in nanoseconds). This is the dynamic alternative to the static
// table — DESIGN.md's "cost model source" ablation.
func Calibrate(samples [][]byte, rounds int) map[semantics.Name]float64 {
	if rounds <= 0 {
		rounds = 64
	}
	out := make(map[semantics.Name]float64)
	funcs := Funcs()
	var sink uint64
	for name, f := range funcs {
		start := time.Now()
		n := 0
		for r := 0; r < rounds; r++ {
			for _, s := range samples {
				sink += f(s)
				n++
			}
		}
		if n > 0 {
			out[name] = float64(time.Since(start).Nanoseconds()) / float64(n)
		}
	}
	_ = sink
	return out
}

// CalibratedCosts wraps Calibrate results as a cost model, falling back to
// the registry for semantics without software implementation (∞ cost ones).
func CalibratedCosts(reg *semantics.Registry, samples [][]byte, rounds int) semantics.CostModel {
	measured := Calibrate(samples, rounds)
	base := semantics.RegistryCosts(reg)
	return func(n semantics.Name) float64 {
		if v, ok := measured[n]; ok {
			return v
		}
		return base(n)
	}
}
