package softnic

import (
	"math"
	"testing"

	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
)

// TestToeplitzMicrosoftVectors pins the RSS implementation to the official
// verification suite of the Microsoft RSS specification (IPv4 with TCP
// ports).
func TestToeplitzMicrosoftVectors(t *testing.T) {
	cases := []struct {
		src, dst         [4]byte
		srcPort, dstPort uint16
		want             uint32
	}{
		{[4]byte{66, 9, 149, 187}, [4]byte{161, 142, 100, 80}, 2794, 1766, 0x51ccc178},
		{[4]byte{199, 92, 111, 2}, [4]byte{65, 69, 140, 83}, 14230, 4739, 0xc626b0ea},
		{[4]byte{24, 19, 198, 95}, [4]byte{12, 22, 207, 184}, 12898, 38024, 0x5c2b394a},
		{[4]byte{38, 27, 205, 30}, [4]byte{209, 142, 163, 6}, 48228, 2217, 0xafc7327f},
		{[4]byte{153, 39, 163, 191}, [4]byte{202, 188, 127, 2}, 44251, 1303, 0x10e828a2},
	}
	for _, c := range cases {
		var input [12]byte
		copy(input[0:4], c.src[:])
		copy(input[4:8], c.dst[:])
		input[8] = byte(c.srcPort >> 8)
		input[9] = byte(c.srcPort)
		input[10] = byte(c.dstPort >> 8)
		input[11] = byte(c.dstPort)
		if got := Toeplitz(DefaultToeplitzKey[:], input[:]); got != c.want {
			t.Errorf("Toeplitz(%v:%d → %v:%d) = %#x, want %#x",
				c.src, c.srcPort, c.dst, c.dstPort, got, c.want)
		}
	}
}

func decode(t *testing.T, p []byte) *pkt.Info {
	t.Helper()
	var in pkt.Info
	if err := pkt.Decode(p, &in); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &in
}

func TestRSSMatchesVectorEndToEnd(t *testing.T) {
	p := pkt.NewBuilder().
		WithIPv4([4]byte{66, 9, 149, 187}, [4]byte{161, 142, 100, 80}).
		WithTCP(2794, 1766, 0x18).
		Build()
	if got := RSS(decode(t, p)); got != 0x51ccc178 {
		t.Errorf("RSS = %#x, want 0x51ccc178", got)
	}
}

func TestRSSNonIPIsZero(t *testing.T) {
	p := pkt.NewBuilder().Build()
	p[12], p[13] = 0x08, 0x06 // ARP
	if got := RSS(decode(t, p)); got != 0 {
		t.Errorf("RSS of non-IP = %#x", got)
	}
}

func TestFlowIDSymmetric(t *testing.T) {
	fwd := pkt.NewBuilder().
		WithIPv4([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}).
		WithTCP(1111, 2222, 0).Build()
	rev := pkt.NewBuilder().
		WithIPv4([4]byte{10, 0, 0, 2}, [4]byte{10, 0, 0, 1}).
		WithTCP(2222, 1111, 0).Build()
	f1, f2 := FlowID(decode(t, fwd)), FlowID(decode(t, rev))
	if f1 != f2 {
		t.Errorf("flow id not symmetric: %#x vs %#x", f1, f2)
	}
	other := pkt.NewBuilder().
		WithIPv4([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 3}).
		WithTCP(1111, 2222, 0).Build()
	if FlowID(decode(t, other)) == f1 {
		t.Error("different flows collide (unlucky but suspicious)")
	}
}

func TestIPChecksumMatchesWire(t *testing.T) {
	p := pkt.NewBuilder().Build()
	in := decode(t, p)
	got := IPChecksum(in)
	// The checksum over the header with its checksum field zeroed must equal
	// the value on the wire.
	wire := uint16(p[in.L3Off+10])<<8 | uint16(p[in.L3Off+11])
	if got != wire {
		t.Errorf("recomputed %#x != wire %#x", got, wire)
	}
}

func TestKVKeyExtraction(t *testing.T) {
	get := pkt.NewBuilder().WithUDP(1, 11211).WithPayload([]byte("get user:42\r\n")).Build()
	set := pkt.NewBuilder().WithUDP(1, 11211).WithPayload([]byte("set user:42 0 0 5\r\nhello")).Build()
	k1, k2 := KVKey(decode(t, get)), KVKey(decode(t, set))
	if k1 == 0 {
		t.Fatal("get key digest is zero")
	}
	if k1 != k2 {
		t.Errorf("get/set of same key differ: %#x vs %#x", k1, k2)
	}
	other := pkt.NewBuilder().WithUDP(1, 11211).WithPayload([]byte("get user:43\r\n")).Build()
	if KVKey(decode(t, other)) == k1 {
		t.Error("different keys collide")
	}
	for _, bad := range []string{"", "get", "get \r\n", "noop\r\n"} {
		p := pkt.NewBuilder().WithUDP(1, 11211).WithPayload([]byte(bad)).Build()
		if KVKey(decode(t, p)) != 0 {
			t.Errorf("malformed request %q should digest to 0", bad)
		}
	}
}

func TestTunnelID(t *testing.T) {
	vx := make([]byte, 16)
	vx[0] = 0x08
	vx[4], vx[5], vx[6] = 0x01, 0x02, 0x03
	p := pkt.NewBuilder().WithUDP(5000, 4789).WithPayload(vx).Build()
	if got := TunnelID(decode(t, p)); got != 0x010203 {
		t.Errorf("vni = %#x", got)
	}
	notTunnel := pkt.NewBuilder().WithUDP(5000, 53).WithPayload(vx).Build()
	if TunnelID(decode(t, notTunnel)) != 0 {
		t.Error("non-4789 UDP reported a VNI")
	}
}

func TestFuncsCoverEmulableSemantics(t *testing.T) {
	funcs := Funcs()
	reg := semantics.Default
	for _, n := range reg.Names() {
		d := reg.Lookup(n)
		emulable := !math.IsInf(d.SoftCost, 1)
		_, have := funcs[n]
		if emulable && !have {
			t.Errorf("semantic %s has finite cost %v but no software implementation", n, d.SoftCost)
		}
		if !emulable && have {
			t.Errorf("semantic %s is marked inemulable but has an implementation", n)
		}
	}
}

func TestFuncsRobustToGarbage(t *testing.T) {
	garbage := [][]byte{nil, {}, {1, 2, 3}, make([]byte, 14), make([]byte, 60)}
	for name, f := range Funcs() {
		for _, g := range garbage {
			// Must not panic; value is unspecified.
			_ = f(g)
			_ = name
		}
	}
}

func TestErrorFlagsFunc(t *testing.T) {
	f := Funcs()[semantics.ErrorFlags]
	good := pkt.NewBuilder().WithTCP(1, 2, 0).Build()
	if v := f(good); v != 0 {
		t.Errorf("good packet flags = %#x", v)
	}
	badL4 := pkt.NewBuilder().WithTCP(1, 2, 0).WithBadL4Checksum().Build()
	if v := f(badL4); v&2 == 0 {
		t.Errorf("bad L4 not flagged: %#x", v)
	}
	badIP := pkt.NewBuilder().WithBadIPChecksum().Build()
	if v := f(badIP); v&1 == 0 {
		t.Errorf("bad IP not flagged: %#x", v)
	}
}

func TestCalibrateProducesFiniteCosts(t *testing.T) {
	samples := [][]byte{
		pkt.NewBuilder().WithTCP(1, 2, 0).WithPayload(make([]byte, 64)).Build(),
		pkt.NewBuilder().WithUDP(3, 4).WithPayload(make([]byte, 512)).Build(),
	}
	costs := Calibrate(samples, 4)
	if len(costs) == 0 {
		t.Fatal("no costs measured")
	}
	for n, c := range costs {
		if c <= 0 || math.IsInf(c, 1) || math.IsNaN(c) {
			t.Errorf("cost[%s] = %v", n, c)
		}
	}
	cm := CalibratedCosts(semantics.Default, samples, 2)
	if math.IsInf(cm(semantics.RSS), 1) {
		t.Error("calibrated rss cost should be finite")
	}
	if !math.IsInf(cm(semantics.Timestamp), 1) {
		t.Error("timestamp must stay inemulable after calibration")
	}
}

func TestCalibratedPayloadScaling(t *testing.T) {
	small := [][]byte{pkt.NewBuilder().WithUDP(1, 2).WithPayload(make([]byte, 16)).Build()}
	large := [][]byte{pkt.NewBuilder().WithUDP(1, 2).WithPayload(make([]byte, 1400)).Build()}
	cs := Calibrate(small, 16)
	cl := Calibrate(large, 16)
	// Payload-touching semantics must cost more on large packets.
	if cl[semantics.L4Checksum] <= cs[semantics.L4Checksum] {
		t.Errorf("l4 checksum cost should scale with payload: %v vs %v",
			cs[semantics.L4Checksum], cl[semantics.L4Checksum])
	}
}
