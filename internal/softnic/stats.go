package softnic

import (
	"time"

	"opendesc/internal/codegen"
	"opendesc/internal/obs"
	"opendesc/internal/obs/flight"
	"opendesc/internal/semantics"
)

// ShimStats attributes SoftNIC emulation work per semantic: how often each
// shim ran and how many nanoseconds it consumed. This makes the w(s)
// software-emulation cost term of the layout optimizer (Eq. 1) directly
// measurable on the running datapath instead of only modelled.
type ShimStats struct {
	calls map[semantics.Name]*obs.Counter
	nanos map[semantics.Name]*obs.Counter
	// fq, when attached, receives one flight event per shim call with the
	// packed semantic name and the call's duration.
	fq *flight.Queue
}

// AttachFlight wires per-call shim events into a flight-recorder queue
// (affects funcs built by InstrumentedFuncs after the call).
func (st *ShimStats) AttachFlight(q *flight.Queue) { st.fq = q }

// NewShimStats creates counters for every emulable semantic and, when reg
// is non-nil, registers them as
// opendesc_softnic_calls_total{semantic=...} and
// opendesc_softnic_nanos_total{semantic=...}.
func NewShimStats(reg *obs.Registry) *ShimStats {
	st := &ShimStats{
		calls: make(map[semantics.Name]*obs.Counter),
		nanos: make(map[semantics.Name]*obs.Counter),
	}
	for name := range Funcs() {
		st.calls[name] = &obs.Counter{}
		st.nanos[name] = &obs.Counter{}
		if reg != nil {
			l := obs.L("semantic", string(name))
			reg.AttachCounter("opendesc_softnic_calls_total", "SoftNIC shim invocations per semantic", st.calls[name], l)
			reg.AttachCounter("opendesc_softnic_nanos_total", "nanoseconds spent in SoftNIC shims per semantic", st.nanos[name], l)
		}
	}
	return st
}

// ShimCost is one semantic's accumulated emulation cost.
type ShimCost struct {
	Calls uint64
	Nanos uint64
}

// Snapshot returns the per-semantic call and nanosecond totals (non-zero
// entries only).
func (st *ShimStats) Snapshot() map[semantics.Name]ShimCost {
	out := make(map[semantics.Name]ShimCost)
	for name, c := range st.calls {
		calls := c.Load()
		if calls == 0 {
			continue
		}
		out[name] = ShimCost{Calls: calls, Nanos: st.nanos[name].Load()}
	}
	return out
}

// MeasuredCost returns the observed mean ns/call for a semantic (0 when the
// shim never ran) — the runtime-measured counterpart of the static cost
// table and of Calibrate.
func (st *ShimStats) MeasuredCost(name semantics.Name) float64 {
	c := st.calls[name]
	if c == nil {
		return 0
	}
	calls := c.Load()
	if calls == 0 {
		return 0
	}
	return float64(st.nanos[name].Load()) / float64(calls)
}

// InstrumentedFuncs wraps Funcs() so every shim call increments its call
// counter and attributes its wall time. The timing costs one monotonic
// clock read pair per call (~tens of ns), so instrumented funcs are meant
// for observed runs (cmd/nicsim -stats); benchmarks keep the bare Funcs().
func InstrumentedFuncs(st *ShimStats) map[semantics.Name]codegen.SoftFunc {
	out := make(map[semantics.Name]codegen.SoftFunc)
	for name, f := range Funcs() {
		name, f := name, f
		calls, nanos := st.calls[name], st.nanos[name]
		packed := flight.PackName(string(name))
		out[name] = func(packet []byte) uint64 {
			start := time.Now()
			v := f(packet)
			dur := uint64(time.Since(start).Nanoseconds())
			nanos.Add(dur)
			calls.Inc()
			// Shim calls are routine per-read traffic: sampled on the call
			// count (flight.SamplePeriod) to stay inside the hot-path budget.
			if n := uint32(calls.Load()); flight.Sampled(n) {
				st.fq.Record(flight.EvShim, n, packed, dur)
			}
			return v
		}
	}
	return out
}
