package bitfield

import "testing"

// The S27 differential harness leans on three properties of this package:
// extraction is exact at the width extremes (1, 63, 64), straddling a
// 64-bit word or a completion-entry boundary changes nothing, and writes
// never touch bits outside their window. These tables pin each property at
// the exact offsets where a shift/mask bug would hide.

// edgeWidths are the widths where off-by-one mask arithmetic breaks first.
var edgeWidths = []int{1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64}

// edgeOffsets place fields against every boundary the accessor fast path
// cares about: bit 0, odd bit positions, the 64-bit word boundary (bits
// 60..68), and the 88-bit edge of an 11-byte completion entry (so a field
// beginning in entry 0 ends inside entry 1 of a packed pair).
var edgeOffsets = []int{0, 1, 3, 7, 8, 59, 60, 61, 63, 64, 65, 84, 87, 88, 89, 120}

// patterns returns the boundary values for a width: zero, all-ones, the
// LSB, the sign bit, and both alternating phases.
func patterns(w int) []uint64 {
	mask := ^uint64(0)
	if w < 64 {
		mask = (1 << w) - 1
	}
	return []uint64{0, mask, 1 & mask, (uint64(1) << (w - 1)) & mask,
		0x5555555555555555 & mask, 0xaaaaaaaaaaaaaaaa & mask}
}

// TestEdgeRoundTrip: Write then Read returns the masked value for every
// (width, offset, pattern) combination, in both a zeroed and an all-ones
// buffer (the latter catches masks that fail to clear stale bits).
func TestEdgeRoundTrip(t *testing.T) {
	const bufBytes = 22 // two 11-byte completion entries
	for _, w := range edgeWidths {
		for _, off := range edgeOffsets {
			if off+w > bufBytes*8 {
				continue
			}
			for _, fill := range []byte{0x00, 0xff} {
				for _, v := range patterns(w) {
					b := make([]byte, bufBytes)
					for i := range b {
						b[i] = fill
					}
					Write(b, off, w, v)
					if got := Read(b, off, w); got != v {
						t.Fatalf("w=%d off=%d fill=%#x: wrote %#x read %#x", w, off, fill, v, got)
					}
				}
			}
		}
	}
}

// TestEdgeAlignedParity: ReadAligned agrees with Read at every edge
// combination — including the unaligned and odd-width cases where it must
// take its fallback path, and the aligned 8/16/32/64 cases where it takes
// single loads.
func TestEdgeAlignedParity(t *testing.T) {
	const bufBytes = 22
	b := make([]byte, bufBytes)
	for i := range b {
		b[i] = byte(i*151 + 29)
	}
	for _, w := range edgeWidths {
		for _, off := range edgeOffsets {
			if off+w > bufBytes*8 {
				continue
			}
			if got, want := ReadAligned(b, off, w), Read(b, off, w); got != want {
				t.Errorf("w=%d off=%d: aligned %#x != read %#x", w, off, got, want)
			}
		}
	}
}

// TestEdgeNeighborsUntouched: a write at any edge combination leaves every
// bit outside its window exactly as it found it.
func TestEdgeNeighborsUntouched(t *testing.T) {
	const bufBytes = 22
	for _, w := range edgeWidths {
		for _, off := range edgeOffsets {
			if off+w > bufBytes*8 {
				continue
			}
			b := make([]byte, bufBytes)
			for i := range b {
				b[i] = byte(i*91 + 17)
			}
			orig := append([]byte(nil), b...)
			Write(b, off, w, 0xdeadbeefcafef00d)
			for bit := 0; bit < bufBytes*8; bit++ {
				if bit >= off && bit < off+w {
					continue
				}
				if Read(b, bit, 1) != Read(orig, bit, 1) {
					t.Fatalf("w=%d off=%d: neighbor bit %d changed", w, off, bit)
				}
			}
		}
	}
}

// TestEdgeWordStraddle pins the canonical straddle shapes by hand: a field
// crossing the 64-bit word boundary and one crossing the 11-byte
// completion-entry boundary carry their big-endian bit order across the
// seam.
func TestEdgeWordStraddle(t *testing.T) {
	b := make([]byte, 22)
	// 8 bits at offset 60: high nibble in byte 7, low nibble in byte 8.
	Write(b, 60, 8, 0xa5)
	if b[7]&0x0f != 0x0a || b[8]&0xf0 != 0x50 {
		t.Errorf("word straddle bytes = %02x %02x, want 0a 50", b[7]&0x0f, b[8]&0xf0)
	}
	if got := Read(b, 60, 8); got != 0xa5 {
		t.Errorf("word straddle read %#x, want 0xa5", got)
	}
	// 16 bits at offset 80: the last byte of entry 0 plus the first of entry 1.
	Write(b, 80, 16, 0xbeef)
	if b[10] != 0xbe || b[11] != 0xef {
		t.Errorf("entry straddle bytes = %02x %02x, want be ef", b[10], b[11])
	}
	if got := Read(b, 80, 16); got != 0xbeef {
		t.Errorf("entry straddle read %#x, want 0xbeef", got)
	}
}
