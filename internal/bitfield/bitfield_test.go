package bitfield

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadByteAligned(t *testing.T) {
	b := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04}
	cases := []struct {
		off, w int
		want   uint64
	}{
		{0, 8, 0xDE},
		{8, 8, 0xAD},
		{0, 16, 0xDEAD},
		{0, 32, 0xDEADBEEF},
		{32, 32, 0x01020304},
		{0, 64, 0xDEADBEEF01020304},
	}
	for _, c := range cases {
		if got := Read(b, c.off, c.w); got != c.want {
			t.Errorf("Read(%d,%d) = %#x, want %#x", c.off, c.w, got, c.want)
		}
		if got := ReadAligned(b, c.off, c.w); got != c.want {
			t.Errorf("ReadAligned(%d,%d) = %#x, want %#x", c.off, c.w, got, c.want)
		}
	}
}

func TestReadUnaligned(t *testing.T) {
	// 0b1011_0110 0b0100_0000
	b := []byte{0xB6, 0x40}
	if got := Read(b, 0, 1); got != 1 {
		t.Errorf("bit 0 = %d", got)
	}
	if got := Read(b, 1, 1); got != 0 {
		t.Errorf("bit 1 = %d", got)
	}
	if got := Read(b, 0, 4); got != 0xB {
		t.Errorf("nibble = %#x", got)
	}
	if got := Read(b, 4, 4); got != 0x6 {
		t.Errorf("low nibble = %#x", got)
	}
	if got := Read(b, 2, 10); got != 0b11_0110_0100 {
		t.Errorf("10-bit span = %#b", got)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	b := make([]byte, 16)
	Write(b, 3, 13, 0x155F)
	if got := Read(b, 3, 13); got != 0x155F {
		t.Errorf("roundtrip = %#x", got)
	}
	// Neighbouring bits untouched.
	if got := Read(b, 0, 3); got != 0 {
		t.Errorf("prefix dirtied: %#b", got)
	}
	if got := Read(b, 16, 8); got != 0 {
		t.Errorf("suffix dirtied: %#x", got)
	}
}

func TestWriteMasksValue(t *testing.T) {
	b := make([]byte, 2)
	Write(b, 4, 4, 0xFFFF) // only low 4 bits of the value may land
	if got := Read(b, 4, 4); got != 0xF {
		t.Errorf("masked write = %#x", got)
	}
	if got := Read(b, 0, 4); got != 0 {
		t.Errorf("adjacent bits = %#x", got)
	}
}

func TestWritePreservesSurroundings(t *testing.T) {
	b := []byte{0xFF, 0xFF, 0xFF}
	Write(b, 6, 9, 0)
	if got := Read(b, 0, 6); got != 0x3F {
		t.Errorf("prefix = %#x", got)
	}
	if got := Read(b, 6, 9); got != 0 {
		t.Errorf("field = %#x", got)
	}
	if got := Read(b, 15, 9); got != 0x1FF {
		t.Errorf("suffix = %#x", got)
	}
}

func TestPanics(t *testing.T) {
	b := make([]byte, 2)
	for _, f := range []func(){
		func() { Read(b, 0, 0) },
		func() { Read(b, 0, 65) },
		func() { Read(b, 10, 8) },
		func() { Read(b, -1, 4) },
		func() { Write(b, 12, 8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: for any sequence of non-overlapping fields, writing then reading
// recovers every value.
func TestQuickWriteReadMany(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, 64)
		type field struct {
			off, w int
			v      uint64
		}
		var fields []field
		off := 0
		for off < 64*8-64 {
			w := 1 + rng.Intn(64)
			v := rng.Uint64()
			if w < 64 {
				v &= (1 << w) - 1
			}
			fields = append(fields, field{off, w, v})
			off += w
			off += rng.Intn(3) // occasional gaps
		}
		for _, fl := range fields {
			Write(buf, fl.off, fl.w, fl.v)
		}
		for _, fl := range fields {
			if Read(buf, fl.off, fl.w) != fl.v {
				return false
			}
			if ReadAligned(buf, fl.off, fl.w) != fl.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ReadAligned agrees with Read everywhere.
func TestQuickAlignedAgrees(t *testing.T) {
	f := func(raw []byte, offRaw uint16, wRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := int(wRaw%64) + 1
		maxOff := len(raw)*8 - w
		if maxOff < 0 {
			return true
		}
		off := int(offRaw) % (maxOff + 1)
		return Read(raw, off, w) == ReadAligned(raw, off, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkReadAligned32(b *testing.B) {
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += ReadAligned(buf, 32, 32)
	}
	_ = sink
}

func BenchmarkReadUnaligned13(b *testing.B) {
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Read(buf, 5, 13)
	}
	_ = sink
}
