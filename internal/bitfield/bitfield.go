// Package bitfield reads and writes arbitrarily aligned bit slices inside
// byte buffers, using P4 header serialization order: bit 0 is the most
// significant bit of byte 0, and multi-bit fields are big-endian. Descriptor
// layouts produced by the OpenDesc compiler are addressed this way, and the
// NIC simulator serializes completions with the same routines the generated
// accessors use to read them.
package bitfield

import "fmt"

// Read extracts width bits starting at bit offset off. Width must be 1..64
// and the slice [off, off+width) must lie inside b; violations panic, as they
// indicate a compiler-generated layout inconsistent with the buffer.
func Read(b []byte, off, width int) uint64 {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("bitfield: width %d out of range", width))
	}
	if off < 0 || off+width > len(b)*8 {
		panic(fmt.Sprintf("bitfield: read [%d,%d) outside %d-byte buffer", off, off+width, len(b)))
	}
	var v uint64
	remaining := width
	byteIdx := off / 8
	bitIdx := off % 8 // from MSB
	for remaining > 0 {
		avail := 8 - bitIdx
		take := avail
		if take > remaining {
			take = remaining
		}
		chunk := (uint64(b[byteIdx]) >> (avail - take)) & ((1 << take) - 1)
		v = v<<take | chunk
		remaining -= take
		byteIdx++
		bitIdx = 0
	}
	return v
}

// Write stores the low width bits of v starting at bit offset off.
func Write(b []byte, off, width int, v uint64) {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("bitfield: width %d out of range", width))
	}
	if off < 0 || off+width > len(b)*8 {
		panic(fmt.Sprintf("bitfield: write [%d,%d) outside %d-byte buffer", off, off+width, len(b)))
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	remaining := width
	byteIdx := off / 8
	bitIdx := off % 8
	for remaining > 0 {
		avail := 8 - bitIdx
		take := avail
		if take > remaining {
			take = remaining
		}
		shift := remaining - take
		chunk := byte((v >> shift) & ((1 << take) - 1))
		mask := byte(((1 << take) - 1) << (avail - take))
		b[byteIdx] = b[byteIdx]&^mask | chunk<<(avail-take)
		remaining -= take
		byteIdx++
		bitIdx = 0
	}
}

// ReadAligned is a fast path for byte-aligned fields of 8/16/32/64 bits; it
// falls back to Read otherwise. Generated accessors use this to get
// constant-time single-load reads for the common case.
func ReadAligned(b []byte, off, width int) uint64 {
	if off%8 != 0 {
		return Read(b, off, width)
	}
	i := off / 8
	switch width {
	case 8:
		return uint64(b[i])
	case 16:
		return uint64(b[i])<<8 | uint64(b[i+1])
	case 32:
		return uint64(b[i])<<24 | uint64(b[i+1])<<16 | uint64(b[i+2])<<8 | uint64(b[i+3])
	case 64:
		return uint64(b[i])<<56 | uint64(b[i+1])<<48 | uint64(b[i+2])<<40 | uint64(b[i+3])<<32 |
			uint64(b[i+4])<<24 | uint64(b[i+5])<<16 | uint64(b[i+6])<<8 | uint64(b[i+7])
	}
	return Read(b, off, width)
}
