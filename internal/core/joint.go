package core

import (
	"errors"
	"fmt"
	"math"

	"opendesc/internal/semantics"
)

// TenantIntent is one tenant's declared intent inside a joint compilation.
type TenantIntent struct {
	// Tenant names the tenant (label material; need not be unique, but the
	// serving plane requires it to be).
	Tenant string
	Intent *Intent
	// Weight is the tenant's relative traffic share in the joint objective;
	// zero or negative means 1 (equal shares).
	Weight float64
	// Costs optionally overrides the soft-cost model for this tenant — e.g.
	// a measured read-frequency-weighted model from the renegotiation
	// control plane. When nil the compile options' model refined by the
	// intent's per-field @cost overrides is used.
	Costs semantics.CostModel
}

// JointScored couples one completion path with the joint Eq. 1 objective
//
//	Σ_t weight_t · ( Σ_{s ∈ Req_t \ Prov(p)} w_t(s) )  +  α·Size(p)
//
// i.e. the traffic-weighted sum of every tenant's software-emulation cost on
// that path, plus the shared DMA-footprint term (the completion layout is
// one per device, so the footprint is paid once regardless of tenant count).
type JointScored struct {
	Path *Path
	// PerTenantSoft[i] is tenant i's unweighted soft cost Σ w_i(s) on this
	// path (may be +Inf when a semantic has no software fallback).
	PerTenantSoft []float64
	// SoftCost is the weighted sum over tenants.
	SoftCost float64
	// DMACost is α·Size(p).
	DMACost float64
	// Total is the joint objective.
	Total float64
}

// JointResult is the output of one joint compilation: a single device
// configuration chosen for all tenants, and one per-tenant Result (accessor
// /shim split) pinned to the jointly selected path.
type JointResult struct {
	NIC     string
	Control string
	Tenants []TenantIntent
	Graph   *Graph
	Paths   []*Path
	Scored  []JointScored
	// Selected is the jointly optimal path p*.
	Selected JointScored
	// Config is the context-register constraint set that makes the device
	// take p* (programmed once; shared by every queue and tenant).
	Config []Constraint
	// PerTenant[i] is tenant i's compilation result pinned to p*: its Scored
	// list is the tenant's own single-intent scoring of all paths, Selected
	// is p* under that scoring, and Accessors is the tenant's hardware/shim
	// split on p*.
	PerTenant []*Result
}

// TenantResult returns the pinned per-tenant result by tenant name, or nil.
func (jr *JointResult) TenantResult(name string) *Result {
	for i := range jr.Tenants {
		if jr.Tenants[i].Tenant == name {
			return jr.PerTenant[i]
		}
	}
	return nil
}

// CompileJoint maps N tenant intents onto one NIC description at once: CFG
// extraction, path characterization, the joint Eq. 1 optimization above, and
// per-tenant host accessor synthesis against the single winning path. The
// compilation is unsatisfiable only when every path leaves some tenant with
// an infinitely expensive missing semantic.
func CompileJoint(nicName string, spec DeparserSpec, tenants []TenantIntent, opts CompileOptions) (*JointResult, error) {
	if len(tenants) == 0 {
		return nil, errors.New("core: joint compilation needs at least one tenant intent")
	}
	g, err := BuildDeparserGraph(spec)
	if err != nil {
		return nil, fmt.Errorf("opendesc %s: %w", nicName, err)
	}
	paths, err := EnumeratePaths(g, opts.Enumerate)
	if err != nil {
		return nil, fmt.Errorf("opendesc %s: %w", nicName, err)
	}
	if len(paths) == 0 {
		return nil, ErrNoPaths
	}

	// Score every path once per tenant under that tenant's own cost model.
	base := opts.Select.withDefaults()
	perOpts := make([]SelectOptions, len(tenants))
	perScored := make([][]Scored, len(tenants))
	for i, t := range tenants {
		o := base
		if t.Costs != nil {
			o.Costs = t.Costs
		} else {
			o.Costs = t.Intent.CostModel(o.Costs)
		}
		perOpts[i] = o
		perScored[i] = ScorePaths(paths, t.Intent.Req(), o)
	}

	scored := make([]JointScored, len(paths))
	best := -1
	fatal := make(map[int][]semantics.Name)
	for pi, p := range paths {
		js := JointScored{
			Path:          p,
			PerTenantSoft: make([]float64, len(tenants)),
			DMACost:       base.Alpha * float64(p.SizeBytes()),
		}
		feasible := true
		for ti := range tenants {
			s := perScored[ti][pi]
			js.PerTenantSoft[ti] = s.SoftCost
			w := tenants[ti].Weight
			if w <= 0 {
				w = 1
			}
			js.SoftCost += w * s.SoftCost
			if math.IsInf(s.SoftCost, 1) {
				feasible = false
				for _, m := range s.Missing {
					if math.IsInf(perOpts[ti].Costs(m), 1) {
						fatal[p.ID] = append(fatal[p.ID], m)
					}
				}
			}
		}
		js.Total = js.SoftCost + js.DMACost
		scored[pi] = js
		if feasible && (best < 0 || js.Total < scored[best].Total ||
			(js.Total == scored[best].Total && p.SizeBytes() < scored[best].Path.SizeBytes())) {
			best = pi
		}
	}
	if best < 0 {
		return nil, &UnsatisfiableError{Control: g.Control, MissingEverywhere: fatal}
	}
	sel := scored[best]

	per := make([]*Result, len(tenants))
	for i, t := range tenants {
		ps := perScored[i][best]
		r := &Result{
			NIC:      nicName,
			Control:  g.Control,
			Graph:    g,
			Paths:    paths,
			Scored:   perScored[i],
			Selected: ps,
			Intent:   t.Intent,
			Config:   sel.Path.Constraints,
		}
		r.Accessors = synthesizeAccessors(ps, t.Intent, perOpts[i].Costs)
		per[i] = r
	}
	return &JointResult{
		NIC:       nicName,
		Control:   g.Control,
		Tenants:   tenants,
		Graph:     g,
		Paths:     paths,
		Scored:    scored,
		Selected:  sel,
		Config:    sel.Path.Constraints,
		PerTenant: per,
	}, nil
}
