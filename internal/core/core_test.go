package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
)

// e1000Desc is the paper's Figure 6 running example: a single context bit
// selects between an RSS completion and an ip_id+csum completion.
const e1000Desc = `
struct e1000_rx_ctx_t {
    bit<1> use_rss;
}

header e1000_desc_t {
    bit<64> addr;
    bit<16> length;
}

struct e1000_meta_t {
    @semantic("rss")
    bit<32> rss;
    @semantic("ip_id")
    bit<16> ip_id;
    @semantic("ip_checksum")
    bit<16> csum;
    @semantic("pkt_len")
    bit<16> pkt_len;
    @semantic("error_flags")
    bit<8>  status;
}

@bind("C2H_CTX_T", "e1000_rx_ctx_t")
@bind("DESC_T", "e1000_desc_t")
@bind("META_T", "e1000_meta_t")
control CmptDeparser<C2H_CTX_T, DESC_T, META_T>(
    cmpt_out cmpt_out,
    in C2H_CTX_T ctx,
    in DESC_T desc_hdr,
    in META_T pipe_meta)
{
    apply {
        cmpt_out.emit(pipe_meta.pkt_len);
        cmpt_out.emit(pipe_meta.status);
        if (ctx.use_rss == 1) {
            cmpt_out.emit(pipe_meta.rss);
        } else {
            cmpt_out.emit(pipe_meta.ip_id);
            cmpt_out.emit(pipe_meta.csum);
        }
    }
}
`

func e1000Spec(t *testing.T) DeparserSpec {
	t.Helper()
	prog, err := parser.Parse("e1000.p4", e1000Desc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return DeparserSpec{Info: info}
}

func intentOf(t *testing.T, names ...semantics.Name) *Intent {
	t.Helper()
	it, err := IntentFromSemantics("test_intent", semantics.Default, names...)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func TestBuildGraphE1000(t *testing.T) {
	g, err := BuildDeparserGraph(e1000Spec(t))
	if err != nil {
		t.Fatalf("build graph: %v", err)
	}
	if g.EmitCount() != 5 {
		t.Errorf("emit vertices = %d, want 5", g.EmitCount())
	}
	branches := 0
	for _, n := range g.Nodes {
		if n.Kind == NodeBranch {
			branches++
		}
	}
	if branches != 1 {
		t.Errorf("branch nodes = %d, want 1", branches)
	}
}

func TestEnumeratePathsE1000(t *testing.T) {
	g, err := BuildDeparserGraph(e1000Spec(t))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := EnumeratePaths(g, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	// Path taking the then-branch provides rss; the other ip_id+csum. Both
	// include the common prefix pkt_len+status.
	var rssPath, csumPath *Path
	for _, p := range paths {
		if p.Prov().Has(semantics.RSS) {
			rssPath = p
		}
		if p.Prov().Has(semantics.IPChecksum) {
			csumPath = p
		}
	}
	if rssPath == nil || csumPath == nil {
		t.Fatalf("path provs: %v", paths)
	}
	if !rssPath.Prov().Has(semantics.PktLen) || !csumPath.Prov().Has(semantics.ErrorFlags) {
		t.Error("common prefix semantics missing")
	}
	// Sizes: 16+8+32 bits = 7B; 16+8+16+16 = 7B.
	if rssPath.SizeBytes() != 7 || csumPath.SizeBytes() != 7 {
		t.Errorf("sizes = %d, %d; want 7,7", rssPath.SizeBytes(), csumPath.SizeBytes())
	}
	// Constraints.
	if len(rssPath.Constraints) != 1 || rssPath.Constraints[0].Var != "ctx.use_rss" ||
		!rssPath.Constraints[0].Equal || rssPath.Constraints[0].Val.Uint != 1 {
		t.Errorf("rss path constraints = %v", rssPath.Constraints)
	}
	if len(csumPath.Constraints) != 1 || csumPath.Constraints[0].Equal {
		t.Errorf("csum path constraints = %v", csumPath.Constraints)
	}
	// Layout offsets on the csum path: pkt_len@0, status@16, ip_id@24, csum@40.
	wantOff := map[semantics.Name]int{
		semantics.PktLen: 0, semantics.ErrorFlags: 16,
		semantics.IPID: 24, semantics.IPChecksum: 40,
	}
	for s, off := range wantOff {
		f := csumPath.Field(s)
		if f == nil || f.OffsetBits != off {
			t.Errorf("csum path field %s = %+v, want offset %d", s, f, off)
		}
	}
}

// TestFig6Selection reproduces the paper's running example: when both rss and
// csum are requested, the compiler prefers the csum-emitting branch because
// software RSS is cheaper than software checksum.
func TestFig6Selection(t *testing.T) {
	res, err := Compile("e1000", e1000Spec(t), intentOf(t, semantics.RSS, semantics.IPChecksum), CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if !res.Selected.Path.Prov().Has(semantics.IPChecksum) {
		t.Errorf("selected path %v should provide ip_checksum (paper Fig. 6)", res.Selected.Path)
	}
	if len(res.Missing()) != 1 || res.Missing()[0] != semantics.RSS {
		t.Errorf("missing = %v, want [rss]", res.Missing())
	}
	// Accessors: csum hardware, rss software.
	ac := res.Accessor(semantics.IPChecksum)
	if ac == nil || !ac.Hardware {
		t.Errorf("ip_checksum accessor = %+v, want hardware", ac)
	}
	ar := res.Accessor(semantics.RSS)
	if ar == nil || ar.Hardware {
		t.Errorf("rss accessor = %+v, want software shim", ar)
	}
	// Config must clear use_rss (constraint recorded as inequality against 1).
	if len(res.Config) != 1 || res.Config[0].Var != "ctx.use_rss" {
		t.Errorf("config = %v", res.Config)
	}
}

func TestSelectionFlipsWithCosts(t *testing.T) {
	// If software RSS were more expensive than software csum, the rss branch
	// must win instead.
	costs := semantics.RegistryCosts(semantics.Default).WithOverrides(map[semantics.Name]float64{
		semantics.RSS:        500,
		semantics.IPChecksum: 5,
	})
	res, err := Compile("e1000", e1000Spec(t),
		intentOf(t, semantics.RSS, semantics.IPChecksum),
		CompileOptions{Select: SelectOptions{Costs: costs}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selected.Path.Prov().Has(semantics.RSS) {
		t.Errorf("selected %v, want rss branch under inverted costs", res.Selected.Path)
	}
}

func TestRSSOnlyIntentPicksRSSBranch(t *testing.T) {
	res, err := Compile("e1000", e1000Spec(t), intentOf(t, semantics.RSS), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selected.Path.Prov().Has(semantics.RSS) {
		t.Errorf("selected %v", res.Selected.Path)
	}
	if len(res.Missing()) != 0 {
		t.Errorf("missing = %v", res.Missing())
	}
}

func TestUnsatisfiableIntent(t *testing.T) {
	// Timestamp has infinite software cost and e1000 never emits it.
	_, err := Compile("e1000", e1000Spec(t), intentOf(t, semantics.Timestamp), CompileOptions{})
	var unsat *UnsatisfiableError
	if !errors.As(err, &unsat) {
		t.Fatalf("err = %v, want UnsatisfiableError", err)
	}
	if !strings.Contains(unsat.Error(), "timestamp") {
		t.Errorf("error text %q should name the missing semantic", unsat.Error())
	}
}

func TestSatisfiableViaSoftwareOnly(t *testing.T) {
	// kv_key: not on any e1000 path but software-emulable ⇒ compiles with a
	// software shim.
	res, err := Compile("e1000", e1000Spec(t), intentOf(t, semantics.KVKey), CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a := res.Accessor(semantics.KVKey)
	if a == nil || a.Hardware {
		t.Errorf("kv_key accessor = %+v, want software", a)
	}
	if math.IsInf(a.SoftCost, 1) {
		t.Error("kv_key soft cost should be finite")
	}
	// With no hardware-relevant difference, the smaller completion wins; both
	// are 7B here so any is fine — but DMA term must be reflected in total.
	if res.Selected.DMACost != float64(res.Selected.Path.SizeBytes()) {
		t.Errorf("dma cost = %v", res.Selected.DMACost)
	}
}

func TestNegativeAlphaIgnoresFootprint(t *testing.T) {
	g, err := BuildDeparserGraph(e1000Spec(t))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := EnumeratePaths(g, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	req := semantics.NewSet(semantics.RSS)
	best, scored, err := SelectPath(g.Control, paths, req, SelectOptions{Alpha: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scored {
		if s.DMACost != 0 {
			t.Errorf("dma cost with alpha<0 = %v, want 0", s.DMACost)
		}
	}
	if !best.Path.Prov().Has(semantics.RSS) {
		t.Errorf("selected %v", best.Path)
	}
}

// correlatedDesc has two branches on the same context bit; without symbolic
// pruning 4 paths appear, with pruning only the 2 consistent ones remain.
const correlatedDesc = `
struct ctx_t { bit<1> f; }
header d_t { bit<8> x; }
struct meta_t {
    @semantic("rss") bit<32> rss;
    @semantic("vlan") bit<16> vlan;
    @semantic("ip_id") bit<16> ip_id;
    @semantic("ip_checksum") bit<16> csum;
}
@bind("CTX","ctx_t") @bind("DESC","d_t") @bind("META","meta_t")
control CmptDeparser<CTX,DESC,META>(cmpt_out co, in CTX ctx, in DESC d, in META m) {
    apply {
        if (ctx.f == 1) { co.emit(m.rss); } else { co.emit(m.vlan); }
        if (ctx.f == 1) { co.emit(m.ip_id); } else { co.emit(m.csum); }
    }
}
`

func TestSymbolicPruning(t *testing.T) {
	prog, err := parser.Parse("corr.p4", correlatedDesc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildDeparserGraph(DeparserSpec{Info: info})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := EnumeratePaths(g, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 2 {
		for _, p := range pruned {
			t.Log(p)
		}
		t.Fatalf("pruned paths = %d, want 2", len(pruned))
	}
	for _, p := range pruned {
		prov := p.Prov()
		if prov.Has(semantics.RSS) != prov.Has(semantics.IPID) {
			t.Errorf("inconsistent path survived pruning: %v", p)
		}
	}
	unpruned, err := EnumeratePaths(g, EnumerateOptions{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(unpruned) != 4 {
		t.Errorf("unpruned paths = %d, want 4", len(unpruned))
	}
}

const switchDesc = `
struct ctx_t { bit<2> fmt; }
header d_t { bit<8> x; }
struct meta_t {
    @semantic("rss") bit<32> rss;
    @semantic("vlan") bit<16> vlan;
    @semantic("timestamp") bit<64> ts;
    @semantic("pkt_len") bit<16> len;
}
@bind("CTX","ctx_t") @bind("DESC","d_t") @bind("META","meta_t")
control CmptDeparser<CTX,DESC,META>(cmpt_out co, in CTX ctx, in DESC d, in META m) {
    apply {
        co.emit(m.len);
        switch (ctx.fmt) {
            0: { co.emit(m.rss); }
            1: { co.emit(m.vlan); }
            2: { co.emit(m.rss); co.emit(m.ts); }
            default: { }
        }
    }
}
`

func TestSwitchPaths(t *testing.T) {
	prog, err := parser.Parse("sw.p4", switchDesc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildDeparserGraph(DeparserSpec{Info: info})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := EnumeratePaths(g, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("paths = %d, want 4", len(paths))
	}
	// Requesting timestamp must force fmt==2 (timestamp has no software
	// fallback).
	it := intentOf(t, semantics.Timestamp)
	best, _, err := SelectPath(g.Control, paths, it.Req(), SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !best.Path.Prov().Has(semantics.Timestamp) {
		t.Errorf("selected %v", best.Path)
	}
	found := false
	for _, c := range best.Path.Constraints {
		if c.Var == "ctx.fmt" && c.Equal && c.Val.Uint == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("constraints = %v, want ctx.fmt == 2", best.Path.Constraints)
	}
}

func TestSmallerCompletionPreferredOnTie(t *testing.T) {
	prog, err := parser.Parse("sw.p4", switchDesc)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := sema.Check(prog)
	g, err := BuildDeparserGraph(DeparserSpec{Info: info})
	if err != nil {
		t.Fatal(err)
	}
	paths, _ := EnumeratePaths(g, EnumerateOptions{})
	// Request only pkt_len: every path provides it; the default (emit-nothing
	// -else) path with the smallest completion must win.
	best, _, err := SelectPath(g.Control, paths, semantics.NewSet(semantics.PktLen), SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if best.Path.SizeBytes() != 2 {
		t.Errorf("selected %v (%dB), want the 2-byte default path", best.Path, best.Path.SizeBytes())
	}
}

func TestMaxPathsGuard(t *testing.T) {
	// 13 independent branches ⇒ 8192 unpruned paths > 4096 default bound.
	var sb strings.Builder
	sb.WriteString(`struct ctx_t {`)
	for i := 0; i < 13; i++ {
		sb.WriteString(strings.ReplaceAll("bit<1> fN;", "N", string(rune('a'+i))))
	}
	sb.WriteString("}\nheader d_t { bit<8> x; }\nstruct meta_t { @semantic(\"rss\") bit<8> r; }\n")
	sb.WriteString(`@bind("CTX","ctx_t") @bind("DESC","d_t") @bind("META","meta_t")
control CmptDeparser<CTX,DESC,META>(cmpt_out co, in CTX ctx, in DESC d, in META m) { apply {`)
	for i := 0; i < 13; i++ {
		sb.WriteString(strings.ReplaceAll("if (ctx.fN == 1) { co.emit(m.r); }", "N", string(rune('a'+i))))
	}
	sb.WriteString("} }")
	prog, err := parser.Parse("wide.p4", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildDeparserGraph(DeparserSpec{Info: info})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnumeratePaths(g, EnumerateOptions{}); !errors.Is(err, ErrTooManyPaths) {
		t.Errorf("err = %v, want ErrTooManyPaths", err)
	}
	if _, err := EnumeratePaths(g, EnumerateOptions{MaxPaths: 10000}); err != nil {
		t.Errorf("raised bound should succeed: %v", err)
	}
}

func TestDOTOutput(t *testing.T) {
	g, err := BuildDeparserGraph(e1000Spec(t))
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph", "ctx.use_rss == 1", "emit pipe_meta.rss", "shape=diamond"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestReportMentionsSoftwareShim(t *testing.T) {
	res, err := Compile("e1000", e1000Spec(t), intentOf(t, semantics.RSS, semantics.IPChecksum), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if !strings.Contains(rep, "SOFTWARE") || !strings.Contains(rep, "rss") {
		t.Errorf("report should flag the rss software shim:\n%s", rep)
	}
}

func TestIntentParsing(t *testing.T) {
	prog, err := parser.Parse("intent.p4", `
header intent_t {
    @semantic("rss")
    bit<32> rss_val;
    @semantic("vlan")
    bit<16> vlan_tag;
    @semantic("ip_checksum") @cost(3)
    bit<16> csum;
    bit<8> padding;
}`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	it, err := ParseIntent(info, "")
	if err != nil {
		t.Fatal(err)
	}
	if it.Name != "intent_t" || len(it.Fields) != 3 {
		t.Fatalf("intent = %+v", it)
	}
	req := it.Req()
	if !req.Has(semantics.RSS) || !req.Has(semantics.VLAN) || !req.Has(semantics.IPChecksum) {
		t.Errorf("req = %v", req)
	}
	cm := it.CostModel(semantics.RegistryCosts(semantics.Default))
	if cm(semantics.IPChecksum) != 3 {
		t.Errorf("cost override not applied: %v", cm(semantics.IPChecksum))
	}
	if cm(semantics.RSS) != 18 {
		t.Errorf("base cost changed: %v", cm(semantics.RSS))
	}
}

func TestIntentDuplicateSemanticRejected(t *testing.T) {
	prog, _ := parser.Parse("intent.p4", `
header intent_t {
    @semantic("rss") bit<32> a;
    @semantic("rss") bit<32> b;
}`)
	info, _ := sema.Check(prog)
	if _, err := ParseIntent(info, ""); err == nil {
		t.Error("duplicate semantic should be rejected")
	}
}
