package core

import (
	"strings"
	"testing"

	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
)

// e1000Desc is defined in core_test.go. e1000DescV2 simulates a firmware
// update of the same NIC: the vendor reordered the completion (status first)
// and widened the packet-length field — the drift the paper says breaks
// hand-written drivers.
const e1000DescV2 = `
struct e1000_rx_ctx_t {
    bit<1> use_rss;
}

header e1000_desc_t {
    bit<64> addr;
    bit<16> length;
}

struct e1000_meta_t {
    @semantic("rss")
    bit<32> rss;
    @semantic("ip_id")
    bit<16> ip_id;
    @semantic("ip_checksum")
    bit<16> csum;
    @semantic("pkt_len")
    bit<32> pkt_len;
    @semantic("error_flags")
    bit<8>  status;
}

@bind("C2H_CTX_T", "e1000_rx_ctx_t")
@bind("DESC_T", "e1000_desc_t")
@bind("META_T", "e1000_meta_t")
control CmptDeparser<C2H_CTX_T, DESC_T, META_T>(
    cmpt_out cmpt_out,
    in C2H_CTX_T ctx,
    in DESC_T desc_hdr,
    in META_T pipe_meta)
{
    apply {
        cmpt_out.emit(pipe_meta.status);
        cmpt_out.emit(pipe_meta.pkt_len);
        if (ctx.use_rss == 1) {
            cmpt_out.emit(pipe_meta.rss);
        } else {
            cmpt_out.emit(pipe_meta.ip_id);
            cmpt_out.emit(pipe_meta.csum);
        }
    }
}
`

func specFromSource(t *testing.T, src string) DeparserSpec {
	t.Helper()
	prog, err := parser.Parse("v.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return DeparserSpec{Info: info}
}

func TestDiffFirmwareUpdate(t *testing.T) {
	intent := intentOf(t, semantics.PktLen, semantics.ErrorFlags, semantics.RSS)
	oldRes, err := Compile("e1000-v1", e1000Spec(t), intent, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := Compile("e1000-v2", specFromSource(t, e1000DescV2), intent, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := DiffResults(oldRes, newRes)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Breaking() {
		t.Fatalf("reorder+resize must be flagged breaking:\n%s", d)
	}
	byName := map[semantics.Name]Change{}
	for _, c := range d.Changes {
		byName[c.Semantic] = c
	}
	// status moved from bits[16,24) to bits[0,8).
	if byName[semantics.ErrorFlags].Kind != ChangeMoved {
		t.Errorf("error_flags change = %v", byName[semantics.ErrorFlags])
	}
	// pkt_len moved and widened 16→32.
	if byName[semantics.PktLen].Kind != ChangeResized {
		t.Errorf("pkt_len change = %v", byName[semantics.PktLen])
	}
	// rss stays at hardware on its branch but at a shifted offset.
	if k := byName[semantics.RSS].Kind; k != ChangeMoved {
		t.Errorf("rss change = %v", k)
	}
	if !strings.Contains(d.String(), "moved") {
		t.Errorf("report:\n%s", d)
	}
}

func TestDiffHardwareSoftwareTransitions(t *testing.T) {
	intent := intentOf(t, semantics.RSS, semantics.IPChecksum)
	res, err := Compile("e1000e", e1000Spec(t), intent, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Against itself: no changes.
	d, err := DiffResults(res, res)
	if err != nil {
		t.Fatal(err)
	}
	if d.Breaking() {
		t.Errorf("self-diff must be clean:\n%s", d)
	}
	// Flipping the cost model flips which semantic is the software one.
	costs := semantics.RegistryCosts(semantics.Default).WithOverrides(map[semantics.Name]float64{
		semantics.RSS: 500, semantics.IPChecksum: 5,
	})
	flipped, err := Compile("e1000e", e1000Spec(t), intent,
		CompileOptions{Select: SelectOptions{Costs: costs}})
	if err != nil {
		t.Fatal(err)
	}
	d, err = DiffResults(res, flipped)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[semantics.Name]ChangeKind{}
	for _, c := range d.Changes {
		kinds[c.Semantic] = c.Kind
	}
	if kinds[semantics.RSS] != ChangeToHardware {
		t.Errorf("rss = %v, want software→hardware", kinds[semantics.RSS])
	}
	if kinds[semantics.IPChecksum] != ChangeToSoftware {
		t.Errorf("ip_checksum = %v, want hardware→software", kinds[semantics.IPChecksum])
	}
}

func TestDiffRejectsDifferentIntents(t *testing.T) {
	a, _ := Compile("e1000e", e1000Spec(t), intentOf(t, semantics.RSS), CompileOptions{})
	bb, _ := Compile("e1000e", e1000Spec(t), intentOf(t, semantics.VLAN, semantics.PktLen), CompileOptions{})
	if _, err := DiffResults(a, bb); err == nil {
		t.Error("different intents must not diff")
	}
}

func TestPathsEquivalent(t *testing.T) {
	g, err := BuildDeparserGraph(e1000Spec(t))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := EnumeratePaths(g, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !PathsEquivalent(paths[0], paths[0]) {
		t.Error("path must be equivalent to itself")
	}
	if PathsEquivalent(paths[0], paths[1]) {
		t.Error("rss and csum branches are not equivalent")
	}
	// The same source compiled twice yields pairwise-equivalent paths.
	g2, err := BuildDeparserGraph(e1000Spec(t))
	if err != nil {
		t.Fatal(err)
	}
	paths2, err := EnumeratePaths(g2, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range paths {
		if !PathsEquivalent(paths[i], paths2[i]) {
			t.Errorf("path %d not equivalent across identical compiles", i)
		}
	}
}
