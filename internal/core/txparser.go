package core

import (
	"fmt"

	"opendesc/internal/p4/ast"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
)

// TxLayout is one concrete TX descriptor format the NIC's DescParser accepts:
// a root-to-accept walk of the parser state machine, with the context
// constraints that select it and the fields extracted along the way.
type TxLayout struct {
	ID          int
	States      []string // visited parser states, in order
	Constraints []Constraint
	Fields      []LayoutField
	Accepted    bool
}

// SizeBits is the total extracted width.
func (l *TxLayout) SizeBits() int {
	n := 0
	for _, f := range l.Fields {
		n += f.WidthBits
	}
	return n
}

// SizeBytes is the TX descriptor footprint in bytes.
func (l *TxLayout) SizeBytes() int { return (l.SizeBits() + 7) / 8 }

// Consumes returns the set of semantics the NIC reads from the host via this
// TX descriptor format (offload hints, buffer metadata).
func (l *TxLayout) Consumes() semantics.Set {
	s := make(semantics.Set)
	for _, f := range l.Fields {
		if f.Semantic != "" {
			s.Add(f.Semantic)
		}
	}
	return s
}

// Field returns the layout field with the given semantic, or nil.
func (l *TxLayout) Field(s semantics.Name) *LayoutField {
	for i := range l.Fields {
		if l.Fields[i].Semantic == s {
			return &l.Fields[i]
		}
	}
	return nil
}

// maxStateVisits bounds repeated visits to a parser state along one walk
// (loops such as option/TLV parsing are cut off deterministically).
const maxStateVisits = 4

// AnalyzeDescParser enumerates the TX descriptor layouts of a bound
// DescParser instance. inParam names the desc_in channel (auto-detected);
// ctx identifies the parser's context parameter used in select statements.
func AnalyzeDescParser(info *sema.Info, inst *sema.Instance, inParam string) ([]*TxLayout, error) {
	pr := inst.Parser
	if pr == nil {
		return nil, fmt.Errorf("instance is not a parser")
	}
	if inParam == "" {
		for _, p := range inst.Params {
			if et, ok := p.Type.(*sema.ExternType); ok && (et.Name == "desc_in" || et.Name == "packet_in") {
				inParam = p.Name
				break
			}
		}
	}
	if inParam == "" {
		return nil, fmt.Errorf("parser %s: no desc_in parameter found", pr.Name)
	}
	start := pr.State("start")
	if start == nil {
		return nil, fmt.Errorf("parser %s: no start state", pr.Name)
	}

	a := &txAnalyzer{info: info, inst: inst, pr: pr, inParam: inParam}
	if err := a.walk(start, newPathEnv(), nil, nil, nil, make(map[string]int)); err != nil {
		return nil, err
	}
	return a.layouts, nil
}

type txAnalyzer struct {
	info    *sema.Info
	inst    *sema.Instance
	pr      *ast.ParserDecl
	inParam string
	layouts []*TxLayout
}

func (a *txAnalyzer) emitLayout(states []string, cons []Constraint, fields []LayoutField, accepted bool) error {
	if len(a.layouts) >= DefaultMaxPaths {
		return fmt.Errorf("%w: parser %s", ErrTooManyPaths, a.pr.Name)
	}
	a.layouts = append(a.layouts, &TxLayout{
		ID:          len(a.layouts),
		States:      append([]string(nil), states...),
		Constraints: append([]Constraint(nil), cons...),
		Fields:      append([]LayoutField(nil), fields...),
		Accepted:    accepted,
	})
	return nil
}

func (a *txAnalyzer) walk(st *ast.ParserState, env *pathEnv, states []string, cons []Constraint, fields []LayoutField, visits map[string]int) error {
	if visits[st.Name] >= maxStateVisits {
		return nil
	}
	visits[st.Name]++
	defer func() { visits[st.Name]-- }()
	states = append(states, st.Name)

	// Process extract statements.
	off := 0
	for _, f := range fields {
		off = f.OffsetBits + f.WidthBits
	}
	for _, s := range st.Stmts {
		call, ok := s.(*ast.CallStmt)
		if !ok {
			continue
		}
		recv, name := call.Call.Callee()
		if name != "extract" {
			continue
		}
		if id, ok := ast.Unparen(recvOf(recv)).(*ast.Ident); !ok || id.Name != a.inParam {
			continue
		}
		if len(call.Call.Args) != 1 {
			return fmt.Errorf("%s: extract takes exactly one argument", call.Pos())
		}
		fs, err := a.extractFields(call.Call.Args[0], off)
		if err != nil {
			return err
		}
		for _, f := range fs {
			fields = append(fields, f)
			off = f.OffsetBits + f.WidthBits
		}
	}

	switch tr := st.Transition.(type) {
	case nil:
		// Implicit reject.
		return a.emitLayout(states, cons, fields, false)
	case *ast.DirectTransition:
		return a.transitionTo(tr.Target, env, states, cons, fields, visits)
	case *ast.SelectTransition:
		if len(tr.Exprs) != 1 {
			// Tuple selects: treat every case as feasible, no knowledge.
			for _, c := range tr.Cases {
				if err := a.transitionTo(c.Target, env, states, cons, fields, visits); err != nil {
					return err
				}
			}
			return nil
		}
		tagVar, tagKnown := symbolicVar(a.info, tr.Exprs[0], env)
		for _, c := range tr.Cases {
			childEnv := env
			childCons := cons
			if c.IsDefault {
				if tagVar != "" {
					ne := env.clone()
					nc := cons
					for _, sib := range tr.Cases {
						if sib.IsDefault {
							continue
						}
						for _, k := range sib.Keys {
							if v, err := a.info.Eval(k, nil); err == nil && !ne.knownNotEqual(tagVar, v) {
								ne.neq[tagVar] = append(ne.neq[tagVar], v)
								nc = append(nc[:len(nc):len(nc)], Constraint{Var: tagVar, Val: v, Equal: false})
							}
						}
					}
					childEnv, childCons = ne, nc
				}
				if err := a.transitionTo(c.Target, childEnv, states, childCons, fields, visits); err != nil {
					return err
				}
				continue
			}
			feasible := true
			if len(c.Keys) == 1 {
				switch k := c.Keys[0].(type) {
				case *ast.DontCare:
					// always feasible, no knowledge
				case *ast.RangeExpr:
					if tagKnown != nil {
						lo, err1 := a.info.Eval(k.Lo, nil)
						hi, err2 := a.info.Eval(k.Hi, nil)
						if err1 == nil && err2 == nil {
							feasible = tagKnown.Uint >= lo.Uint && tagKnown.Uint <= hi.Uint
						}
					}
				default:
					v, err := a.info.Eval(k, nil)
					if err == nil {
						switch {
						case tagKnown != nil:
							feasible = tagKnown.Equal(v)
						case tagVar != "":
							if kv, ok := env.eq[tagVar]; ok {
								feasible = kv.Equal(v)
							} else if env.knownNotEqual(tagVar, v) {
								feasible = false
							} else {
								ne := env.clone()
								ne.eq[tagVar] = v
								childEnv = ne
								childCons = append(cons[:len(cons):len(cons)], Constraint{Var: tagVar, Val: v, Equal: true})
							}
						}
					}
				}
			}
			if !feasible {
				continue
			}
			if err := a.transitionTo(c.Target, childEnv, states, childCons, fields, visits); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

func (a *txAnalyzer) transitionTo(target string, env *pathEnv, states []string, cons []Constraint, fields []LayoutField, visits map[string]int) error {
	switch target {
	case "accept":
		return a.emitLayout(states, cons, fields, true)
	case "reject":
		return a.emitLayout(states, cons, fields, false)
	}
	next := a.pr.State(target)
	if next == nil {
		return fmt.Errorf("parser %s: transition to unknown state %q", a.pr.Name, target)
	}
	return a.walk(next, env, states, cons, fields, visits)
}

// extractFields flattens the argument of an extract() call.
func (a *txAnalyzer) extractFields(arg ast.Expr, off int) ([]LayoutField, error) {
	arg = ast.Unparen(arg)
	var comp *sema.CompositeType
	var prefix string
	switch x := arg.(type) {
	case *ast.Ident:
		bp := a.inst.Param(x.Name)
		if bp == nil {
			return nil, fmt.Errorf("extract of unknown name %q", x.Name)
		}
		ct, ok := bp.Type.(*sema.CompositeType)
		if !ok {
			return nil, fmt.Errorf("extract target %q is not a composite", x.Name)
		}
		comp, prefix = ct, x.Name
	case *ast.MemberExpr:
		root, chain := memberChain(x)
		bp := a.inst.Param(root)
		if bp == nil {
			return nil, fmt.Errorf("extract of unknown parameter %q", root)
		}
		t := bp.Type
		prefix = root
		for _, fname := range chain {
			ct, ok := t.(*sema.CompositeType)
			if !ok {
				return nil, fmt.Errorf("%s is not a composite", prefix)
			}
			fi := ct.Field(fname)
			if fi == nil {
				return nil, fmt.Errorf("%s has no field %q", ct.Name, fname)
			}
			prefix += "." + fname
			t = fi.Type
		}
		ct, ok := t.(*sema.CompositeType)
		if !ok {
			return nil, fmt.Errorf("extract target %s must be a header", prefix)
		}
		comp = ct
	default:
		return nil, fmt.Errorf("unsupported extract argument %T", arg)
	}
	var out []LayoutField
	for _, f := range comp.Fields {
		w := f.Type.BitWidth()
		if w <= 0 {
			return nil, fmt.Errorf("extract field %s.%s has no fixed width", prefix, f.Name)
		}
		out = append(out, LayoutField{
			Name:       prefix + "." + f.Name,
			Semantic:   semantics.Name(f.Semantic),
			OffsetBits: off,
			WidthBits:  w,
		})
		off += w
	}
	return out, nil
}

// AcceptedLayouts filters the accepted (non-reject) TX layouts.
func AcceptedLayouts(ls []*TxLayout) []*TxLayout {
	var out []*TxLayout
	for _, l := range ls {
		if l.Accepted {
			out = append(out, l)
		}
	}
	return out
}
