// Package core implements the OpenDesc compiler: it extracts the control-flow
// graph of a NIC's completion deparser (each emit statement becomes a vertex,
// each conditional two labeled edges), enumerates the root-to-leaf completion
// paths, characterizes them (Prov, Size), solves the path-selection
// optimization of the paper's Eq. 1, and computes the selected layout from
// which host accessors are synthesized.
package core

import (
	"fmt"

	"opendesc/internal/p4/ast"
	"opendesc/internal/p4/sema"
	"opendesc/internal/p4/token"
	"opendesc/internal/semantics"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// CFG node kinds.
const (
	NodeEntry NodeKind = iota
	NodeEmit
	NodeBranch // two-way if
	NodeSwitch // n-way switch
	NodeExit
)

func (k NodeKind) String() string {
	switch k {
	case NodeEntry:
		return "entry"
	case NodeEmit:
		return "emit"
	case NodeBranch:
		return "branch"
	case NodeSwitch:
		return "switch"
	case NodeExit:
		return "exit"
	}
	return "?"
}

// EmitField is one field committed by an emit vertex: its qualified source
// name, width and semantic tag.
type EmitField struct {
	Name      string // e.g. "pipe_meta.rss" or "csum_cmpt_t.csum"
	Semantic  semantics.Name
	WidthBits int
}

// Emit carries the three static vertex properties of the paper
// (bits(v), sem(v), size(v)).
type Emit struct {
	Pos    token.Pos
	Source string // printed argument of the emit call
	Fields []EmitField
}

// SizeBits returns |bits(v)| in bits.
func (e *Emit) SizeBits() int {
	n := 0
	for _, f := range e.Fields {
		n += f.WidthBits
	}
	return n
}

// Sem returns sem(v), the semantics encoded by the emitted bytes.
func (e *Emit) Sem() semantics.Set {
	s := make(semantics.Set)
	for _, f := range e.Fields {
		if f.Semantic != "" {
			s.Add(f.Semantic)
		}
	}
	return s
}

// Edge is a directed CFG edge guarded by a branch predicate.
type Edge struct {
	To *Node
	// Cond is the branch predicate expression (nil for unconditional edges
	// and switch edges, which use CaseVals).
	Cond ast.Expr
	// Negate: the edge is taken when Cond is false (else edge).
	Negate bool
	// CaseVals are the matching tag values for a switch edge.
	CaseVals []sema.Value
	// IsDefault marks a switch default edge (taken when no CaseVals of any
	// sibling edge match).
	IsDefault bool
	// Label is the human-readable guard for reports and DOT output.
	Label string
}

// Node is a CFG node.
type Node struct {
	ID    int
	Kind  NodeKind
	Emit  *Emit    // for NodeEmit
	Cond  ast.Expr // for NodeBranch
	Tag   ast.Expr // for NodeSwitch
	Succs []*Edge
}

// Graph is the control-flow graph of a completion deparser's apply block.
type Graph struct {
	Control string // deparser control name
	Entry   *Node
	Exit    *Node
	Nodes   []*Node

	info *sema.Info
	inst *sema.Instance
}

// Info exposes the semantic info the graph was built against.
func (g *Graph) Info() *sema.Info { return g.info }

// Instance exposes the bound control instance.
func (g *Graph) Instance() *sema.Instance { return g.inst }

// EmitCount returns the number of emit vertices.
func (g *Graph) EmitCount() int {
	n := 0
	for _, v := range g.Nodes {
		if v.Kind == NodeEmit {
			n++
		}
	}
	return n
}

type graphBuilder struct {
	g        *Graph
	info     *sema.Info
	inst     *sema.Instance
	outParam string
	err      error
}

func (b *graphBuilder) node(k NodeKind) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: k}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *graphBuilder) errorf(pos token.Pos, format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
	}
}

// BuildGraph extracts the CFG from a bound completion-deparser instance.
// outParam names the completion output channel parameter; if empty, the first
// parameter whose type is the extern `cmpt_out` is used.
func BuildGraph(info *sema.Info, inst *sema.Instance, outParam string) (*Graph, error) {
	ctl := inst.Control
	if ctl == nil {
		return nil, fmt.Errorf("instance is not a control")
	}
	if ctl.Apply == nil {
		return nil, fmt.Errorf("control %s has no apply block", ctl.Name)
	}
	if outParam == "" {
		for _, p := range inst.Params {
			if et, ok := p.Type.(*sema.ExternType); ok && et.Name == "cmpt_out" {
				outParam = p.Name
				break
			}
		}
	}
	if outParam == "" {
		return nil, fmt.Errorf("control %s: no cmpt_out parameter found", ctl.Name)
	}
	b := &graphBuilder{
		g:        &Graph{Control: ctl.Name, info: info, inst: inst},
		info:     info,
		inst:     inst,
		outParam: outParam,
	}
	b.g.Entry = b.node(NodeEntry)
	b.g.Exit = b.node(NodeExit)
	last := b.buildBlock(ctl.Apply, b.g.Entry)
	for _, n := range last {
		n.Succs = append(n.Succs, &Edge{To: b.g.Exit})
	}
	if b.err != nil {
		return nil, b.err
	}
	return b.g, nil
}

// buildBlock threads the statements of a block after the given predecessors
// and returns the dangling nodes whose successor is the block's continuation.
func (b *graphBuilder) buildBlock(blk *ast.BlockStmt, pred ...*Node) []*Node {
	cur := pred
	for _, s := range blk.Stmts {
		cur = b.buildStmt(s, cur)
	}
	return cur
}

func (b *graphBuilder) buildStmt(s ast.Stmt, pred []*Node) []*Node {
	switch s := s.(type) {
	case *ast.CallStmt:
		recv, name := s.Call.Callee()
		if name != "emit" {
			// Non-emit calls (logging externs, etc.) do not affect layout.
			return pred
		}
		if id, ok := ast.Unparen(recvOf(recv)).(*ast.Ident); !ok || id.Name != b.outParam {
			// emit on something else than the completion channel.
			return pred
		}
		if len(s.Call.Args) != 1 {
			b.errorf(s.Pos(), "emit takes exactly one argument")
			return pred
		}
		em := b.resolveEmit(s.Call.Args[0], s.Pos())
		if em == nil {
			return pred
		}
		n := b.node(NodeEmit)
		n.Emit = em
		link(pred, n, nil)
		return []*Node{n}

	case *ast.IfStmt:
		br := b.node(NodeBranch)
		br.Cond = s.Cond
		link(pred, br, nil)
		thenEdge := &Edge{Cond: s.Cond, Label: ast.Sprint(s.Cond)}
		elseEdge := &Edge{Cond: s.Cond, Negate: true, Label: "!(" + ast.Sprint(s.Cond) + ")"}

		thenEntry := b.node(NodeEntry) // anchor so the edge has a target before the body exists
		thenEdge.To = thenEntry
		br.Succs = append(br.Succs, thenEdge)
		thenOut := b.buildBlock(s.Then, thenEntry)

		var elseOut []*Node
		switch e := s.Else.(type) {
		case nil:
			// Else falls through: the branch node itself continues.
			elseAnchor := b.node(NodeEntry)
			elseEdge.To = elseAnchor
			br.Succs = append(br.Succs, elseEdge)
			elseOut = []*Node{elseAnchor}
		case *ast.BlockStmt:
			elseEntry := b.node(NodeEntry)
			elseEdge.To = elseEntry
			br.Succs = append(br.Succs, elseEdge)
			elseOut = b.buildBlock(e, elseEntry)
		case *ast.IfStmt:
			elseEntry := b.node(NodeEntry)
			elseEdge.To = elseEntry
			br.Succs = append(br.Succs, elseEdge)
			elseOut = b.buildStmt(e, []*Node{elseEntry})
		}
		return append(thenOut, elseOut...)

	case *ast.SwitchStmt:
		sw := b.node(NodeSwitch)
		sw.Tag = s.Tag
		link(pred, sw, nil)
		var out []*Node
		hasDefault := false
		for _, c := range s.Cases {
			entry := b.node(NodeEntry)
			e := &Edge{To: entry}
			if c.IsDefault {
				hasDefault = true
				e.IsDefault = true
				e.Label = ast.Sprint(s.Tag) + " = default"
			} else {
				for _, k := range c.Keys {
					v, err := b.info.Eval(k, nil)
					if err != nil {
						b.errorf(c.Pos(), "switch case key must be constant: %v", err)
						continue
					}
					e.CaseVals = append(e.CaseVals, v)
				}
				e.Label = fmt.Sprintf("%s = %s", ast.Sprint(s.Tag), caseLabel(e.CaseVals))
			}
			sw.Succs = append(sw.Succs, e)
			out = append(out, b.buildBlock(c.Body, entry)...)
		}
		if !hasDefault {
			// Implicit fallthrough when no case matches.
			anchor := b.node(NodeEntry)
			sw.Succs = append(sw.Succs, &Edge{To: anchor, IsDefault: true, Label: "no match"})
			out = append(out, anchor)
		}
		return out

	case *ast.BlockStmt:
		return b.buildBlock(s, pred...)

	case *ast.ReturnStmt:
		link(pred, b.g.Exit, nil)
		return nil

	case *ast.AssignStmt, *ast.DeclStmt, *ast.EmptyStmt:
		// Local computation; no layout effect.
		return pred

	default:
		b.errorf(s.Pos(), "unsupported statement %T in deparser apply block", s)
		return pred
	}
}

func caseLabel(vals []sema.Value) string {
	out := ""
	for i, v := range vals {
		if i > 0 {
			out += "|"
		}
		out += v.String()
	}
	return out
}

func link(from []*Node, to *Node, e *Edge) {
	for _, f := range from {
		edge := &Edge{To: to}
		if e != nil {
			cp := *e
			cp.To = to
			edge = &cp
		}
		f.Succs = append(f.Succs, edge)
	}
}

func recvOf(e ast.Expr) ast.Expr {
	if e == nil {
		return &ast.Ident{Name: ""}
	}
	return e
}

// resolveEmit flattens the argument of an emit call into the fields it
// commits to the completion stream.
func (b *graphBuilder) resolveEmit(arg ast.Expr, pos token.Pos) *Emit {
	arg = ast.Unparen(arg)
	em := &Emit{Pos: pos, Source: ast.Sprint(arg)}
	switch a := arg.(type) {
	case *ast.Ident:
		// Whole parameter (header/struct).
		bp := b.inst.Param(a.Name)
		if bp == nil {
			b.errorf(pos, "emit of unknown name %q", a.Name)
			return nil
		}
		ct, ok := bp.Type.(*sema.CompositeType)
		if !ok {
			b.errorf(pos, "emit of non-composite parameter %q (%s)", a.Name, bp.Type)
			return nil
		}
		b.flatten(em, a.Name, ct)
	case *ast.MemberExpr:
		root, fields := memberChain(a)
		if root == "" {
			b.errorf(pos, "emit argument %s is not rooted at a parameter", em.Source)
			return nil
		}
		bp := b.inst.Param(root)
		if bp == nil {
			b.errorf(pos, "emit of unknown parameter %q", root)
			return nil
		}
		t := bp.Type
		prefix := root
		for i, fname := range fields {
			ct, ok := t.(*sema.CompositeType)
			if !ok {
				b.errorf(pos, "%s is not a composite (cannot select %q)", prefix, fname)
				return nil
			}
			fi := ct.Field(fname)
			if fi == nil {
				b.errorf(pos, "%s has no field %q", ct.Name, fname)
				return nil
			}
			prefix += "." + fname
			t = fi.Type
			if i == len(fields)-1 {
				// Terminal: either a leaf field or a nested composite.
				if nested, ok := t.(*sema.CompositeType); ok {
					b.flatten(em, prefix, nested)
				} else {
					w := t.BitWidth()
					if w <= 0 {
						b.errorf(pos, "field %s has no fixed width", prefix)
						return nil
					}
					em.Fields = append(em.Fields, EmitField{
						Name:      prefix,
						Semantic:  semantics.Name(fi.Semantic),
						WidthBits: w,
					})
				}
			}
		}
	default:
		b.errorf(pos, "unsupported emit argument %T", arg)
		return nil
	}
	if len(em.Fields) == 0 {
		b.errorf(pos, "emit of %s commits no fields", em.Source)
		return nil
	}
	return em
}

// flatten appends all leaf fields of a composite (recursing into nested
// composites) to the emit.
func (b *graphBuilder) flatten(em *Emit, prefix string, ct *sema.CompositeType) {
	for _, f := range ct.Fields {
		name := prefix + "." + f.Name
		if nested, ok := f.Type.(*sema.CompositeType); ok {
			b.flatten(em, name, nested)
			continue
		}
		w := f.Type.BitWidth()
		if w <= 0 {
			b.errorf(em.Pos, "field %s has no fixed width", name)
			continue
		}
		em.Fields = append(em.Fields, EmitField{
			Name:      name,
			Semantic:  semantics.Name(f.Semantic),
			WidthBits: w,
		})
	}
}

// memberChain decomposes a member expression into its root identifier and the
// ordered field names, e.g. pipe_meta.inner.rss → ("pipe_meta", [inner rss]).
func memberChain(e *ast.MemberExpr) (root string, fields []string) {
	var rev []string
	cur := ast.Expr(e)
	for {
		switch x := cur.(type) {
		case *ast.MemberExpr:
			rev = append(rev, x.Member)
			cur = x.X
		case *ast.Ident:
			root = x.Name
			for i := len(rev) - 1; i >= 0; i-- {
				fields = append(fields, rev[i])
			}
			return root, fields
		default:
			return "", nil
		}
	}
}
