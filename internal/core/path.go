package core

import (
	"errors"
	"fmt"
	"strings"

	"opendesc/internal/p4/ast"
	"opendesc/internal/p4/sema"
	"opendesc/internal/p4/token"
	"opendesc/internal/semantics"
)

// Constraint records one context condition that must hold for a completion
// path to be taken, e.g. ctx.use_rss == 1 or ctx.fmt != 2.
type Constraint struct {
	Var   string // dotted path of the context variable
	Val   sema.Value
	Equal bool // true: Var == Val must hold; false: Var != Val
}

func (c Constraint) String() string {
	op := "=="
	if !c.Equal {
		op = "!="
	}
	return fmt.Sprintf("%s %s %s", c.Var, op, c.Val)
}

// LayoutField is one field of a completion layout with its resolved position.
type LayoutField struct {
	Name       string
	Semantic   semantics.Name
	OffsetBits int
	WidthBits  int
}

// Path is a completion path: a root-to-leaf walk of the deparser CFG, forming
// one concrete metadata layout the NIC may emit under a given context.
type Path struct {
	ID          int
	Constraints []Constraint
	Emits       []*Emit
	Fields      []LayoutField

	prov semantics.Set
}

// Prov returns Prov(p) = ∪ sem(v) over the path's vertices.
func (p *Path) Prov() semantics.Set { return p.prov }

// SizeBits returns Size(p) in bits.
func (p *Path) SizeBits() int {
	n := 0
	for _, e := range p.Emits {
		n += e.SizeBits()
	}
	return n
}

// SizeBytes returns Size(p) rounded up to whole bytes (the DMA completion
// footprint of the paper's Eq. 1).
func (p *Path) SizeBytes() int { return (p.SizeBits() + 7) / 8 }

// Field returns the layout field carrying the given semantic, or nil.
func (p *Path) Field(s semantics.Name) *LayoutField {
	for i := range p.Fields {
		if p.Fields[i].Semantic == s {
			return &p.Fields[i]
		}
	}
	return nil
}

// String renders a compact one-line description.
func (p *Path) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "path %d [%dB]", p.ID, p.SizeBytes())
	if len(p.Constraints) > 0 {
		sb.WriteString(" when ")
		for i, c := range p.Constraints {
			if i > 0 {
				sb.WriteString(" && ")
			}
			sb.WriteString(c.String())
		}
	}
	sb.WriteString(" provides ")
	sb.WriteString(p.prov.String())
	return sb.String()
}

// EnumerateOptions tune path enumeration.
type EnumerateOptions struct {
	// DisablePruning turns off symbolic-consistency pruning of contradictory
	// branch combinations (ablation switch).
	DisablePruning bool
	// MaxPaths bounds enumeration; 0 means DefaultMaxPaths. Exceeding the
	// bound is an error: production NICs expose only a handful of completion
	// paths, so an explosion signals a malformed description.
	MaxPaths int
}

// DefaultMaxPaths bounds path enumeration.
const DefaultMaxPaths = 4096

// ErrTooManyPaths is returned when enumeration exceeds the configured bound.
var ErrTooManyPaths = errors.New("core: completion path explosion")

// pathEnv tracks the symbolic knowledge accumulated along a walk: exact
// values implied by taken equality branches and disequalities implied by
// refused ones.
type pathEnv struct {
	eq  map[string]sema.Value
	neq map[string][]sema.Value
}

func newPathEnv() *pathEnv {
	return &pathEnv{eq: make(map[string]sema.Value), neq: make(map[string][]sema.Value)}
}

func (e *pathEnv) clone() *pathEnv {
	c := newPathEnv()
	for k, v := range e.eq {
		c.eq[k] = v
	}
	for k, vs := range e.neq {
		c.neq[k] = append([]sema.Value(nil), vs...)
	}
	return c
}

// Lookup implements sema.Env over the equality knowledge.
func (e *pathEnv) Lookup(path string) (sema.Value, bool) {
	v, ok := e.eq[path]
	return v, ok
}

func (e *pathEnv) knownNotEqual(v string, val sema.Value) bool {
	for _, x := range e.neq[v] {
		if x.Equal(val) {
			return true
		}
	}
	return false
}

// EnumeratePaths walks the CFG from entry to exit, collecting every feasible
// completion path together with the context constraints that select it.
func EnumeratePaths(g *Graph, opts EnumerateOptions) ([]*Path, error) {
	maxPaths := opts.MaxPaths
	if maxPaths <= 0 {
		maxPaths = DefaultMaxPaths
	}
	var paths []*Path
	var walk func(n *Node, env *pathEnv, cons []Constraint, emits []*Emit) error
	walk = func(n *Node, env *pathEnv, cons []Constraint, emits []*Emit) error {
		switch n.Kind {
		case NodeExit:
			if len(paths) >= maxPaths {
				return fmt.Errorf("%w: more than %d paths in %s", ErrTooManyPaths, maxPaths, g.Control)
			}
			p := &Path{
				ID:          len(paths),
				Constraints: append([]Constraint(nil), cons...),
				Emits:       append([]*Emit(nil), emits...),
			}
			finalizePath(p)
			paths = append(paths, p)
			return nil
		case NodeEmit:
			emits = append(emits, n.Emit)
		}
		for _, e := range n.Succs {
			childEnv := env
			childCons := cons
			if e.Cond != nil || len(e.CaseVals) > 0 || e.IsDefault {
				feasible, newEnv, newCons := applyEdge(g, e, n, env, cons, opts.DisablePruning)
				if !feasible {
					continue
				}
				childEnv, childCons = newEnv, newCons
			}
			if err := walk(e.To, childEnv, childCons, emits); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(g.Entry, newPathEnv(), nil, nil); err != nil {
		return nil, err
	}
	return paths, nil
}

// applyEdge checks feasibility of taking edge e out of node n under env and
// returns the extended knowledge.
func applyEdge(g *Graph, e *Edge, n *Node, env *pathEnv, cons []Constraint, noPrune bool) (bool, *pathEnv, []Constraint) {
	info := g.info

	// Switch edges: tag must equal one of CaseVals (or none, for default).
	if n.Kind == NodeSwitch {
		tagVar, tagKnown := symbolicVar(info, n.Tag, env)
		if tagKnown != nil {
			// Tag folds to a constant: edge feasibility is decided outright.
			match := false
			for _, v := range e.CaseVals {
				if v.Equal(*tagKnown) {
					match = true
					break
				}
			}
			if e.IsDefault {
				match = !siblingMatches(n, *tagKnown)
			}
			if !match && !noPrune {
				return false, env, cons
			}
			return true, env, cons
		}
		if tagVar == "" {
			// Opaque tag: assume feasible, no knowledge gained.
			return true, env, cons
		}
		ne := env.clone()
		nc := cons
		if e.IsDefault {
			// Default edge: tag differs from every sibling case value.
			if !noPrune {
				if v, ok := env.eq[tagVar]; ok && siblingMatches(n, v) {
					return false, env, cons
				}
			}
			for _, sib := range n.Succs {
				for _, v := range sib.CaseVals {
					if !ne.knownNotEqual(tagVar, v) {
						ne.neq[tagVar] = append(ne.neq[tagVar], v)
						nc = append(nc[:len(nc):len(nc)], Constraint{Var: tagVar, Val: v, Equal: false})
					}
				}
			}
			return true, ne, nc
		}
		// Case edge: with a single value we learn tag == v; with several we
		// only know membership, which we record as the first value for
		// configuration purposes while keeping feasibility conservative.
		if len(e.CaseVals) == 0 {
			return true, env, cons
		}
		v := e.CaseVals[0]
		if !noPrune {
			if known, ok := env.eq[tagVar]; ok {
				any := false
				for _, cv := range e.CaseVals {
					if cv.Equal(known) {
						any = true
						break
					}
				}
				if !any {
					return false, env, cons
				}
				return true, env, cons
			}
			if len(e.CaseVals) == 1 && env.knownNotEqual(tagVar, v) {
				return false, env, cons
			}
		}
		if len(e.CaseVals) == 1 {
			ne.eq[tagVar] = v
			nc = append(nc[:len(nc):len(nc)], Constraint{Var: tagVar, Val: v, Equal: true})
			return true, ne, nc
		}
		return true, env, cons
	}

	// If-branch edges.
	cond := e.Cond
	v, err := info.Eval(cond, env)
	if err == nil {
		// Fully determined under current knowledge.
		holds := v.Truthy() != e.Negate
		if !holds && !noPrune {
			return false, env, cons
		}
		return true, env, cons
	}
	// Try to extract an atomic fact var==const / var!=const / bare bool.
	varName, val, isEq, ok := atomicCond(info, cond, env)
	if !ok {
		// Opaque condition: feasible both ways, record nothing.
		return true, env, cons
	}
	// Effective relation on this edge.
	eq := isEq != e.Negate
	if !noPrune {
		if known, has := env.eq[varName]; has {
			holds := known.Equal(val) == eq
			if !holds {
				return false, env, cons
			}
			return true, env, cons
		}
		if eq && env.knownNotEqual(varName, val) {
			return false, env, cons
		}
	}
	ne := env.clone()
	nc := cons
	if eq {
		ne.eq[varName] = val
	} else {
		ne.neq[varName] = append(ne.neq[varName], val)
	}
	nc = append(nc[:len(nc):len(nc)], Constraint{Var: varName, Val: val, Equal: eq})
	return true, ne, nc
}

// siblingMatches reports whether any non-default sibling edge of a switch
// node matches the value.
func siblingMatches(n *Node, v sema.Value) bool {
	for _, sib := range n.Succs {
		for _, cv := range sib.CaseVals {
			if cv.Equal(v) {
				return true
			}
		}
	}
	return false
}

// symbolicVar inspects a tag expression: if it folds to a constant the value
// is returned; if it is a bare context variable its dotted path is returned.
func symbolicVar(info *sema.Info, e ast.Expr, env sema.Env) (name string, known *sema.Value) {
	if v, err := info.Eval(e, env); err == nil {
		return "", &v
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name, nil
	case *ast.MemberExpr:
		return x.Path(), nil
	}
	return "", nil
}

// atomicCond decomposes a branch condition into (var, value, isEquality).
// Supported shapes: v == K, v != K, K == v, v (bare boolean), !v.
func atomicCond(info *sema.Info, cond ast.Expr, env sema.Env) (string, sema.Value, bool, bool) {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		if c.Op != token.EQ && c.Op != token.NEQ {
			return "", sema.Value{}, false, false
		}
		lName, lKnown := symbolicVar(info, c.X, env)
		rName, rKnown := symbolicVar(info, c.Y, env)
		var name string
		var val sema.Value
		switch {
		case lName != "" && rKnown != nil:
			name, val = lName, *rKnown
		case rName != "" && lKnown != nil:
			name, val = rName, *lKnown
		default:
			return "", sema.Value{}, false, false
		}
		return name, val, c.Op == token.EQ, true
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			if name, _ := symbolicVar(info, c.X, env); name != "" {
				return name, sema.BoolValue(true), false, true // !v ⇒ v != true
			}
		}
	case *ast.Ident, *ast.MemberExpr:
		if name, _ := symbolicVar(info, cond, env); name != "" {
			return name, sema.BoolValue(true), true, true // v ⇒ v == true
		}
	}
	return "", sema.Value{}, false, false
}

// finalizePath computes the path's layout fields and provided-semantics set.
func finalizePath(p *Path) {
	p.prov = make(semantics.Set)
	off := 0
	for _, e := range p.Emits {
		for _, f := range e.Fields {
			p.Fields = append(p.Fields, LayoutField{
				Name:       f.Name,
				Semantic:   f.Semantic,
				OffsetBits: off,
				WidthBits:  f.WidthBits,
			})
			if f.Semantic != "" {
				p.prov.Add(f.Semantic)
			}
			off += f.WidthBits
		}
	}
}
