package core

import (
	"errors"
	"math"
	"testing"

	"opendesc/internal/semantics"
)

func jointTenants(t *testing.T) []TenantIntent {
	t.Helper()
	return []TenantIntent{
		{Tenant: "a", Intent: intentOf(t, semantics.RSS)},
		{Tenant: "b", Intent: intentOf(t, semantics.IPChecksum)},
	}
}

func TestCompileJointServesBothTenants(t *testing.T) {
	jr, err := CompileJoint("e1000", e1000Spec(t), jointTenants(t), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(jr.PerTenant) != 2 {
		t.Fatalf("per-tenant results = %d, want 2", len(jr.PerTenant))
	}
	for i, res := range jr.PerTenant {
		if res.Selected.Path.ID != jr.Selected.Path.ID {
			t.Errorf("tenant %d pinned to path %d, joint selected %d",
				i, res.Selected.Path.ID, jr.Selected.Path.ID)
		}
		if len(res.Accessors) != len(res.Intent.Fields) {
			t.Errorf("tenant %d: %d accessors for %d intent fields",
				i, len(res.Accessors), len(res.Intent.Fields))
		}
	}
	// The two intents live on different e1000 paths, so exactly one tenant
	// ends up on a software shim.
	hwA := jr.PerTenant[0].Accessor(semantics.RSS).Hardware
	hwB := jr.PerTenant[1].Accessor(semantics.IPChecksum).Hardware
	if hwA == hwB {
		t.Errorf("rss hardware=%v, ip_checksum hardware=%v; want exactly one hardware", hwA, hwB)
	}
	if jr.TenantResult("a") != jr.PerTenant[0] || jr.TenantResult("missing") != nil {
		t.Error("TenantResult lookup broken")
	}
}

// TestCompileJointWeightTipsSelection pins both tenants' cost models so the
// joint optimum provably flips with the traffic weights.
func TestCompileJointWeightTipsSelection(t *testing.T) {
	flat := func(c float64) semantics.CostModel {
		return func(semantics.Name) float64 { return c }
	}
	tenants := jointTenants(t)
	tenants[0].Costs = flat(18)  // tenant a pays 18 when rss is missing
	tenants[1].Costs = flat(100) // tenant b pays 100 when ip_checksum is missing

	// Equal weights: stranding tenant b costs 100, stranding tenant a costs
	// 18 ⇒ the ip_checksum path must win.
	jr, err := CompileJoint("e1000", e1000Spec(t), tenants, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if jr.Selected.Path.Prov().Has(semantics.RSS) {
		t.Errorf("equal weights selected the rss path (total %.1f)", jr.Selected.Total)
	}

	// Tenant a carrying 20× the traffic: 20·18 = 360 > 100 ⇒ flips to rss.
	tenants[0].Weight = 20
	jr, err = CompileJoint("e1000", e1000Spec(t), tenants, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !jr.Selected.Path.Prov().Has(semantics.RSS) {
		t.Errorf("weighted joint objective did not flip to the rss path (total %.1f)", jr.Selected.Total)
	}
}

func TestCompileJointObjectiveBreakdown(t *testing.T) {
	tenants := jointTenants(t)
	tenants[0].Weight = 3
	jr, err := CompileJoint("e1000", e1000Spec(t), tenants, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range jr.Scored {
		soft := 3*js.PerTenantSoft[0] + 1*js.PerTenantSoft[1]
		if math.Abs(soft-js.SoftCost) > 1e-9 {
			t.Errorf("path %d: SoftCost %.3f, want weighted sum %.3f", js.Path.ID, js.SoftCost, soft)
		}
		if math.Abs(js.SoftCost+js.DMACost-js.Total) > 1e-9 {
			t.Errorf("path %d: Total %.3f ≠ Soft %.3f + DMA %.3f", js.Path.ID, js.Total, js.SoftCost, js.DMACost)
		}
		if js.Total < jr.Selected.Total {
			t.Errorf("path %d total %.3f beats selected %.3f", js.Path.ID, js.Total, jr.Selected.Total)
		}
	}
}

// TestCompileJointSingleTenantMatchesCompile: with one tenant the joint
// solver must degenerate to the single-intent Eq. 1 optimization.
func TestCompileJointSingleTenantMatchesCompile(t *testing.T) {
	intent := intentOf(t, semantics.RSS, semantics.PktLen)
	single, err := Compile("e1000", e1000Spec(t), intent, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jr, err := CompileJoint("e1000", e1000Spec(t), []TenantIntent{{Tenant: "solo", Intent: intent}}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if jr.Selected.Path.ID != single.Selected.Path.ID {
		t.Errorf("joint selected path %d, single compile %d", jr.Selected.Path.ID, single.Selected.Path.ID)
	}
	if jr.Selected.Total != single.Selected.Total {
		t.Errorf("joint total %.3f, single total %.3f", jr.Selected.Total, single.Selected.Total)
	}
	if len(jr.PerTenant[0].Accessors) != len(single.Accessors) {
		t.Errorf("accessor tables differ: %d vs %d", len(jr.PerTenant[0].Accessors), len(single.Accessors))
	}
}

func TestCompileJointUnsatisfiable(t *testing.T) {
	// One tenant demanding timestamp (w=∞, never emitted by e1000) poisons
	// every path even when a neighbor is satisfiable.
	tenants := []TenantIntent{
		{Tenant: "ok", Intent: intentOf(t, semantics.PktLen)},
		{Tenant: "doomed", Intent: intentOf(t, semantics.Timestamp)},
	}
	_, err := CompileJoint("e1000", e1000Spec(t), tenants, CompileOptions{})
	var unsat *UnsatisfiableError
	if !errors.As(err, &unsat) {
		t.Fatalf("err = %v, want UnsatisfiableError", err)
	}
}

func TestCompileJointNoTenants(t *testing.T) {
	if _, err := CompileJoint("e1000", e1000Spec(t), nil, CompileOptions{}); err == nil {
		t.Fatal("expected error for empty tenant list")
	}
}
