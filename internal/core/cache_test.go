package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"opendesc/internal/semantics"
)

// TestCacheSingleflight: many goroutines requesting the same key must
// trigger exactly one compile; everyone shares the result; the counters
// reconcile with the call count. Run under -race this is also the cache's
// data-race test.
func TestCacheSingleflight(t *testing.T) {
	const callers = 32
	c := NewCompileCache(8)
	key := CacheKey{Digest: "d1", Intent: "i1"}

	var compiles atomic.Uint64
	gate := make(chan struct{})
	want := &Result{NIC: "fake"}

	var wg sync.WaitGroup
	results := make([]*Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Get(key, func() (*Result, error) {
				compiles.Add(1)
				<-gate // hold the flight open so arrivals pile up on it
				return want, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := compiles.Load(); n != 1 {
		t.Fatalf("compile ran %d times for one key, want exactly 1 (singleflight)", n)
	}
	for i, res := range results {
		if res != want {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
	st := c.Stats()
	if st.Gets != callers {
		t.Fatalf("gets = %d, want %d", st.Gets, callers)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Misses+st.Coalesced != st.Gets {
		t.Fatalf("counters do not reconcile: %+v", st)
	}

	// A fresh Get is now a plain hit.
	if _, err := c.Get(key, func() (*Result, error) {
		t.Fatal("hit must not recompile")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != st.Gets-1-st.Coalesced {
		t.Fatalf("post-hit counters do not reconcile: %+v", st)
	}
}

// TestCacheConcurrentKeys hammers a small cache with many goroutines over
// more keys than capacity (forcing evictions under contention) and checks
// the invariant Gets = Hits + Misses + Coalesced at the end.
func TestCacheConcurrentKeys(t *testing.T) {
	c := NewCompileCache(4)
	var compiles atomic.Uint64
	var wg sync.WaitGroup
	const callers, rounds = 16, 64
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := CacheKey{Digest: fmt.Sprintf("d%d", (g+i)%7), Intent: "i"}
				res, err := c.Get(key, func() (*Result, error) {
					compiles.Add(1)
					return &Result{NIC: key.Digest}, nil
				})
				if err != nil || res.NIC != key.Digest {
					t.Errorf("got %v, %v for %s", res, err, key.Digest)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Gets != callers*rounds {
		t.Fatalf("gets = %d, want %d", st.Gets, callers*rounds)
	}
	if st.Hits+st.Misses+st.Coalesced != st.Gets {
		t.Fatalf("counters do not reconcile: %+v", st)
	}
	if got := compiles.Load(); got != st.Misses {
		t.Fatalf("compile ran %d times, misses = %d — a miss must mean exactly one compile", got, st.Misses)
	}
	if st.Size > 4 {
		t.Fatalf("size = %d exceeds capacity 4", st.Size)
	}
}

// TestCacheLRUEviction: the least-recently-used entry goes first, and a
// re-request of an evicted key recompiles.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCompileCache(2)
	compiled := map[string]int{}
	get := func(d string) {
		t.Helper()
		if _, err := c.Get(CacheKey{Digest: d}, func() (*Result, error) {
			compiled[d]++
			return &Result{NIC: d}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now LRU
	get("c") // evicts b
	get("a") // still resident
	get("b") // recompiles
	st := c.Stats()
	if st.Evictions != 2 { // b evicted by c, then a or c evicted by b's return
		t.Fatalf("evictions = %d, want 2: %+v", st.Evictions, st)
	}
	if compiled["a"] != 1 || compiled["b"] != 2 || compiled["c"] != 1 {
		t.Fatalf("compile counts = %v, want a:1 b:2 c:1", compiled)
	}
	if st.Hits+st.Misses+st.Coalesced != st.Gets {
		t.Fatalf("counters do not reconcile: %+v", st)
	}
}

// TestCacheErrorNotCached: a failed compile is retried by the next Get and
// every concurrent waiter observes the same error.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCompileCache(2)
	key := CacheKey{Digest: "bad"}
	boom := errors.New("unsatisfiable")
	calls := 0
	for i := 0; i < 2; i++ {
		if _, err := c.Get(key, func() (*Result, error) {
			calls++
			return nil, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want the compile error", err)
		}
	}
	if calls != 2 {
		t.Fatalf("compile ran %d times, want 2 (errors are not cached)", calls)
	}
	if st := c.Stats(); st.Size != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want two misses and an empty cache", st)
	}
}

// TestSourceDigestAndIntentKey: the content address separates sources, and
// the intent key is canonical under field order but sensitive to the
// layout-relevant compile options.
func TestSourceDigestAndIntentKey(t *testing.T) {
	if SourceDigest("a") == SourceDigest("b") {
		t.Fatal("distinct sources must have distinct digests")
	}
	if len(SourceDigest("a")) != 64 {
		t.Fatalf("digest length = %d, want 64 hex chars", len(SourceDigest("a")))
	}

	i1, err := IntentFromSemantics("x", semantics.Default, semantics.RSS, semantics.PktLen)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := IntentFromSemantics("x", semantics.Default, semantics.PktLen, semantics.RSS)
	if err != nil {
		t.Fatal(err)
	}
	if IntentKey(i1, CompileOptions{}) != IntentKey(i2, CompileOptions{}) {
		t.Fatal("intent key must be canonical under field order")
	}
	if IntentKey(i1, CompileOptions{}) == IntentKey(i1, CompileOptions{Select: SelectOptions{Alpha: 9}}) {
		t.Fatal("alpha changes the selected layout and must change the key")
	}
	k := CompileKey(SourceDigest("src"), i1, CompileOptions{})
	if k.Digest != SourceDigest("src") || k.Intent == "" {
		t.Fatalf("CompileKey = %+v", k)
	}
}
