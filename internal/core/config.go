package core

import "fmt"

// ConfigAssignment resolves a configuration's constraint set to the concrete
// context-register values a conforming device will hold after programming:
// equality constraints pin the register outright, disequalities pick the
// smallest value not excluded. This is the single source of truth shared by
// the simulated device (nicsim.ApplyConfig programs exactly these values)
// and the host-side completion validator (which checks that discriminant
// fields a completion record carries match them).
func ConfigAssignment(cons []Constraint) (map[string]uint64, error) {
	type excl struct {
		vals  []uint64
		fixed *uint64
	}
	byVar := map[string]*excl{}
	for _, c := range cons {
		e := byVar[c.Var]
		if e == nil {
			e = &excl{}
			byVar[c.Var] = e
		}
		if c.Equal {
			v := c.Val.Uint
			if e.fixed != nil && *e.fixed != v {
				return nil, fmt.Errorf("core: conflicting config for %s: %d vs %d", c.Var, *e.fixed, v)
			}
			e.fixed = &v
		} else {
			e.vals = append(e.vals, c.Val.Uint)
		}
	}
	out := make(map[string]uint64, len(byVar))
	for v, e := range byVar {
		if e.fixed != nil {
			out[v] = *e.fixed
			continue
		}
		val := uint64(0)
	search:
		for {
			for _, x := range e.vals {
				if x == val {
					val++
					continue search
				}
			}
			break
		}
		out[v] = val
	}
	return out, nil
}
