package core

import (
	"fmt"

	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
)

// IntentField is one metadata item an application requests, as declared by a
// @semantic-annotated field of its intent header (paper Fig. 5).
type IntentField struct {
	FieldName string
	Semantic  semantics.Name
	WidthBits int
	// CostOverride, when >= 0, replaces the registry's software-emulation
	// cost for this semantic (set by @cost on the intent field).
	CostOverride float64
	// Required marks fields that must be available in hardware; requesting a
	// required semantic with no hardware path and no software fallback makes
	// the program unsatisfiable (set by @required).
	Required bool
}

// Intent is an application's declared metadata intent.
type Intent struct {
	Name   string
	Fields []IntentField
}

// Req returns the requested semantic set (Req ⊆ Σ).
func (it *Intent) Req() semantics.Set {
	s := make(semantics.Set, len(it.Fields))
	for _, f := range it.Fields {
		s.Add(f.Semantic)
	}
	return s
}

// CostModel derives a cost model that honours this intent's @cost overrides
// on top of a base model.
func (it *Intent) CostModel(base semantics.CostModel) semantics.CostModel {
	over := make(map[semantics.Name]float64)
	for _, f := range it.Fields {
		if f.CostOverride >= 0 {
			over[f.Semantic] = f.CostOverride
		}
	}
	if len(over) == 0 {
		return base
	}
	return base.WithOverrides(over)
}

// ParseIntent extracts the intent from a checked program. headerName selects
// the intent header; if empty, the single header carrying at least one
// @semantic field is used (ambiguity is an error).
func ParseIntent(info *sema.Info, headerName string) (*Intent, error) {
	var ct *sema.CompositeType
	if headerName != "" {
		ct = info.Composite(headerName)
		if ct == nil {
			return nil, fmt.Errorf("intent header %q not found", headerName)
		}
	} else {
		for _, h := range info.Headers() {
			if len(h.Semantics()) == 0 {
				continue
			}
			if ct != nil {
				return nil, fmt.Errorf("multiple intent candidates (%s, %s); name one explicitly", ct.Name, h.Name)
			}
			ct = h
		}
		if ct == nil {
			return nil, fmt.Errorf("no header with @semantic fields found")
		}
	}
	it := &Intent{Name: ct.Name}
	seen := make(map[semantics.Name]bool)
	for _, f := range ct.Fields {
		if f.Semantic == "" {
			continue
		}
		sn := semantics.Name(f.Semantic)
		if seen[sn] {
			return nil, fmt.Errorf("intent %s: semantic %q requested twice", ct.Name, sn)
		}
		seen[sn] = true
		fld := IntentField{
			FieldName:    f.Name,
			Semantic:     sn,
			WidthBits:    f.Type.BitWidth(),
			CostOverride: -1,
		}
		if a := f.Annots.Get("cost"); a != nil {
			if n, ok := a.IntArg(0); ok {
				fld.CostOverride = float64(n)
			}
		}
		if f.Annots.Has("required") {
			fld.Required = true
		}
		it.Fields = append(it.Fields, fld)
	}
	if len(it.Fields) == 0 {
		return nil, fmt.Errorf("intent header %s has no @semantic fields", ct.Name)
	}
	return it, nil
}

// IntentFromSemantics builds an intent programmatically (used by benchmarks
// and examples that sweep requested sets without writing P4 for each).
func IntentFromSemantics(name string, reg *semantics.Registry, names ...semantics.Name) (*Intent, error) {
	it := &Intent{Name: name}
	for _, n := range names {
		d := reg.Lookup(n)
		if d == nil {
			return nil, fmt.Errorf("unknown semantic %q", n)
		}
		it.Fields = append(it.Fields, IntentField{
			FieldName:    string(n),
			Semantic:     n,
			WidthBits:    d.DefaultBits,
			CostOverride: -1,
		})
	}
	return it, nil
}
