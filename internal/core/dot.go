package core

import (
	"fmt"
	"strings"

	"opendesc/internal/p4/ast"
)

// DOT renders the CFG in Graphviz format (the paper's Figure 6 left-hand
// side: emit vertices, predicate-labeled edges).
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Control)
	sb.WriteString("  rankdir=TB;\n  node [fontname=\"monospace\"];\n")
	for _, n := range g.Nodes {
		switch n.Kind {
		case NodeEntry:
			if n == g.Entry {
				fmt.Fprintf(&sb, "  n%d [label=\"entry\", shape=circle];\n", n.ID)
			} else {
				// Anchor nodes are invisible pass-throughs.
				fmt.Fprintf(&sb, "  n%d [shape=point, width=0.05];\n", n.ID)
			}
		case NodeExit:
			fmt.Fprintf(&sb, "  n%d [label=\"exit\", shape=doublecircle];\n", n.ID)
		case NodeEmit:
			var fields []string
			for _, f := range n.Emit.Fields {
				tag := ""
				if f.Semantic != "" {
					tag = fmt.Sprintf(" (%s)", f.Semantic)
				}
				fields = append(fields, fmt.Sprintf("%s:%db%s", f.Name, f.WidthBits, tag))
			}
			fmt.Fprintf(&sb, "  n%d [label=\"emit %s\\n%s\", shape=box];\n",
				n.ID, escape(n.Emit.Source), escape(strings.Join(fields, "\\n")))
		case NodeBranch:
			fmt.Fprintf(&sb, "  n%d [label=\"%s ?\", shape=diamond];\n", n.ID, escape(condLabel(n)))
		case NodeSwitch:
			fmt.Fprintf(&sb, "  n%d [label=\"switch %s\", shape=diamond];\n", n.ID, escape(tagLabel(n)))
		}
	}
	for _, n := range g.Nodes {
		for _, e := range n.Succs {
			label := e.Label
			if label == "" {
				fmt.Fprintf(&sb, "  n%d -> n%d;\n", n.ID, e.To.ID)
			} else {
				fmt.Fprintf(&sb, "  n%d -> n%d [label=%q];\n", n.ID, e.To.ID, label)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func condLabel(n *Node) string {
	if n.Cond == nil {
		return "?"
	}
	return ast.Sprint(n.Cond)
}

func tagLabel(n *Node) string {
	if n.Tag == nil {
		return "?"
	}
	return ast.Sprint(n.Tag)
}

func escape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
