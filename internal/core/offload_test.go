package core

import (
	"strings"
	"testing"

	"opendesc/internal/semantics"
)

// e1000Spec and intentOf come from core_test.go.

func TestPlanOffloadsFixedFunctionAllSoftware(t *testing.T) {
	res, err := Compile("e1000e", e1000Spec(t), intentOf(t, semantics.RSS, semantics.IPChecksum), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanOffloads(res, PipelineCaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Pushed(); len(got) != 0 {
		t.Errorf("fixed-function NIC pushed %v", got)
	}
	if got := plan.Software(); len(got) != 1 || got[0] != semantics.RSS {
		t.Errorf("software = %v, want [rss]", got)
	}
	if plan.HostCost <= 0 {
		t.Errorf("host cost = %v", plan.HostCost)
	}
}

func TestPlanOffloadsProgrammablePushes(t *testing.T) {
	res, err := Compile("e1000e", e1000Spec(t), intentOf(t, semantics.RSS, semantics.IPChecksum), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	caps := PipelineCaps{Programmable: true, StageBudget: 8}
	plan, err := PlanOffloads(res, caps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Pushed(); len(got) != 1 || got[0] != semantics.RSS {
		t.Errorf("pushed = %v, want [rss]", got)
	}
	if plan.StagesUsed != 2 { // ref_rss uses 2 stages
		t.Errorf("stages used = %d", plan.StagesUsed)
	}
	if plan.HostCost != 0 {
		t.Errorf("host cost after full offload = %v", plan.HostCost)
	}
	prog := plan.PipelineProgram()
	if !strings.Contains(prog, "toeplitz_hash") || !strings.Contains(prog, "pushed feature: rss") {
		t.Errorf("pipeline program:\n%s", prog)
	}
}

func TestPlanOffloadsStageBudget(t *testing.T) {
	// Request several software-bound semantics; a 3-stage budget fits only
	// the most expensive candidates.
	res, err := Compile("e1000e", e1000Spec(t),
		intentOf(t, semantics.RSS, semantics.IPChecksum, semantics.FlowID, semantics.TunnelID),
		CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// On the csum path: rss, flow_id, tunnel_id are missing.
	caps := PipelineCaps{Programmable: true, StageBudget: 3}
	plan, err := PlanOffloads(res, caps, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy by software cost: flow_id (35, 3 stages) first, exhausting the
	// budget; rss (18) and tunnel_id (14) stay in software.
	pushed := plan.Pushed()
	if len(pushed) != 1 || pushed[0] != semantics.FlowID {
		t.Errorf("pushed = %v, want [flow_id]", pushed)
	}
	if plan.StagesUsed != 3 {
		t.Errorf("stages = %d", plan.StagesUsed)
	}
	sw := semantics.NewSet(plan.Software()...)
	if !sw.Has(semantics.RSS) || !sw.Has(semantics.TunnelID) {
		t.Errorf("software = %v", sw)
	}
}

func TestPlanOffloadsPayloadConstraint(t *testing.T) {
	res, err := Compile("e1000e", e1000Spec(t), intentOf(t, semantics.KVKey), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// RMT-style pipeline: no payload externs → kv_key cannot be pushed.
	rmt := PipelineCaps{Programmable: true, StageBudget: 16}
	plan, err := PlanOffloads(res, rmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pushed()) != 0 {
		t.Errorf("payload feature pushed to RMT pipeline: %v", plan.Pushed())
	}
	// SoC/FPGA pipeline with payload externs accepts it.
	soc := PipelineCaps{Programmable: true, StageBudget: 16, PayloadExterns: true}
	plan, err = PlanOffloads(res, soc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Pushed(); len(got) != 1 || got[0] != semantics.KVKey {
		t.Errorf("pushed = %v, want [kv_key]", got)
	}
}

func TestPlanOffloadsDescriptorEntries(t *testing.T) {
	res, err := Compile("e1000e", e1000Spec(t), intentOf(t, semantics.IPChecksum, semantics.PktLen), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanOffloads(res, PipelineCaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	desc := 0
	for _, e := range plan.Entries {
		if e.Placement == PlaceDescriptor {
			desc++
		}
	}
	if desc != 2 {
		t.Errorf("descriptor-served = %d, want 2\n%s", desc, plan)
	}
	if !strings.Contains(plan.String(), "descriptor") {
		t.Errorf("report:\n%s", plan)
	}
}

func TestPipelineCostFactor(t *testing.T) {
	res, err := Compile("e1000e", e1000Spec(t), intentOf(t, semantics.RSS, semantics.IPChecksum), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	caps := PipelineCaps{Programmable: true, StageBudget: 8, PipelineCostFactor: 0.1}
	plan, err := PlanOffloads(res, caps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.HostCost <= 0 || plan.HostCost >= 18 {
		t.Errorf("residual cost = %v, want 10%% of w(rss)=18", plan.HostCost)
	}
}
