package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"opendesc/internal/semantics"
)

// TestCompileDeterministic pins that compilation is a pure function of its
// inputs: repeated compiles yield identical path IDs, accessor tables and
// configurations (drivers and firmware rely on stable negotiation results).
func TestCompileDeterministic(t *testing.T) {
	spec := e1000Spec(t)
	intent := intentOf(t, semantics.RSS, semantics.IPChecksum, semantics.VLAN)
	first, err := Compile("e1000e", spec, intent, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := Compile("e1000e", spec, intent, CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if again.Selected.Path.ID != first.Selected.Path.ID {
			t.Fatalf("run %d selected path %d, first run %d", i, again.Selected.Path.ID, first.Selected.Path.ID)
		}
		if len(again.Accessors) != len(first.Accessors) {
			t.Fatalf("accessor count drifted")
		}
		for j := range again.Accessors {
			if again.Accessors[j] != first.Accessors[j] {
				t.Fatalf("accessor %d drifted: %+v vs %+v", j, again.Accessors[j], first.Accessors[j])
			}
		}
		d, err := DiffResults(first, again)
		if err != nil {
			t.Fatal(err)
		}
		if d.Breaking() {
			t.Fatalf("self-recompile produced a breaking diff:\n%s", d)
		}
	}
}

// TestQuickSelectionInvariants checks Eq. 1 selection properties on random
// requests over the e1000e paths:
//   - the winner's objective is minimal among all scored paths;
//   - every hardware accessor points inside the selected completion;
//   - Req is partitioned exactly into hardware ∪ software.
func TestQuickSelectionInvariants(t *testing.T) {
	spec := e1000Spec(t)
	universe := []semantics.Name{
		semantics.RSS, semantics.IPChecksum, semantics.IPID, semantics.PktLen,
		semantics.VLAN, semantics.ErrorFlags, semantics.KVKey, semantics.FlowID,
	}
	f := func(mask uint8, alphaRaw uint8) bool {
		if mask == 0 {
			return true
		}
		var sems []semantics.Name
		for i, s := range universe {
			if mask>>i&1 == 1 {
				sems = append(sems, s)
			}
		}
		intent, err := IntentFromSemantics("q", semantics.Default, sems...)
		if err != nil {
			return false
		}
		alpha := float64(alphaRaw%16) + 0.5
		res, err := Compile("e1000e", spec, intent, CompileOptions{
			Select: SelectOptions{Alpha: alpha},
		})
		if err != nil {
			return false
		}
		// Optimality.
		for _, s := range res.Scored {
			if s.Total < res.Selected.Total {
				return false
			}
		}
		// Accessor partition and bounds.
		req := intent.Req()
		seen := make(semantics.Set)
		limit := res.CompletionBytes() * 8
		for _, a := range res.Accessors {
			if seen.Has(a.Semantic) || !req.Has(a.Semantic) {
				return false
			}
			seen.Add(a.Semantic)
			if a.Hardware && a.OffsetBits+a.WidthBits > limit {
				return false
			}
		}
		return seen.Equal(req)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPathLayoutContiguity: enumerated layouts are gap-free and ordered
// (fields tile the completion from bit 0 upward).
func TestQuickPathLayoutContiguity(t *testing.T) {
	for _, src := range []string{e1000Desc, correlatedDesc, switchDesc} {
		spec := specFromSource(t, src)
		g, err := BuildDeparserGraph(spec)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := EnumeratePaths(g, EnumerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			off := 0
			for _, f := range p.Fields {
				if f.OffsetBits != off {
					t.Fatalf("path %d: field %s at %d, expected %d", p.ID, f.Name, f.OffsetBits, off)
				}
				off += f.WidthBits
			}
			if off != p.SizeBits() {
				t.Fatalf("path %d: size %d != last offset %d", p.ID, p.SizeBits(), off)
			}
		}
	}
}
