package core

import (
	"fmt"
	"strings"

	"opendesc/internal/semantics"
)

// The paper motivates OpenDesc with interface drift: "the layout may change
// with firmware updates, product revisions, or the addition of new
// features". With a declarative contract, drift becomes mechanically
// analyzable: recompile the same intent against the new description and diff
// the accessor tables. DiffResults implements that analysis.

// ChangeKind classifies one accessor-level difference between two
// compilations of the same intent.
type ChangeKind int

// Change kinds.
const (
	// ChangeNone: identical placement.
	ChangeNone ChangeKind = iota
	// ChangeMoved: still in hardware, at a different offset — regenerated
	// accessors absorb it; hand-written code would break silently.
	ChangeMoved
	// ChangeResized: width changed.
	ChangeResized
	// ChangeToSoftware: was in hardware, now needs a software shim.
	ChangeToSoftware
	// ChangeToHardware: was software, now served by the NIC.
	ChangeToHardware
	// ChangeLost: was available, now unobtainable (compilation rejected or
	// semantic absent).
	ChangeLost
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeNone:
		return "unchanged"
	case ChangeMoved:
		return "moved"
	case ChangeResized:
		return "resized"
	case ChangeToSoftware:
		return "hardware→software"
	case ChangeToHardware:
		return "software→hardware"
	case ChangeLost:
		return "lost"
	}
	return "?"
}

// Change is one accessor difference.
type Change struct {
	Semantic semantics.Name
	Kind     ChangeKind
	// Old/New describe the placements ("bits[a:b)" or "software").
	Old, New string
}

// Diff is the accessor-level comparison of two compilations.
type Diff struct {
	Changes []Change
	// CompletionBytesOld/New track the DMA footprint drift.
	CompletionBytesOld, CompletionBytesNew int
}

// Breaking reports whether any change would break an application using
// hand-written fixed offsets (anything but ChangeNone and ChangeToHardware
// breaks a hard-coded reader; regenerated accessors only break on
// ChangeLost).
func (d *Diff) Breaking() bool {
	for _, c := range d.Changes {
		if c.Kind != ChangeNone {
			return true
		}
	}
	return false
}

// LostSemantics lists semantics that became unobtainable.
func (d *Diff) LostSemantics() []semantics.Name {
	var out []semantics.Name
	for _, c := range d.Changes {
		if c.Kind == ChangeLost {
			out = append(out, c.Semantic)
		}
	}
	return out
}

func placement(a *Accessor) string {
	if a == nil {
		return "absent"
	}
	if !a.Hardware {
		return "software"
	}
	return fmt.Sprintf("bits[%d:%d)", a.OffsetBits, a.OffsetBits+a.WidthBits)
}

// DiffResults compares two compilations of the same intent (typically: the
// same NIC before and after a firmware update, or two different NICs).
func DiffResults(old, new *Result) (*Diff, error) {
	if old == nil || new == nil {
		return nil, fmt.Errorf("core: DiffResults needs two results")
	}
	if !old.Intent.Req().Equal(new.Intent.Req()) {
		return nil, fmt.Errorf("core: results compile different intents (%s vs %s)",
			old.Intent.Req(), new.Intent.Req())
	}
	d := &Diff{
		CompletionBytesOld: old.CompletionBytes(),
		CompletionBytesNew: new.CompletionBytes(),
	}
	for _, f := range old.Intent.Fields {
		oa := old.Accessor(f.Semantic)
		na := new.Accessor(f.Semantic)
		c := Change{Semantic: f.Semantic, Old: placement(oa), New: placement(na)}
		switch {
		case oa == nil && na == nil:
			c.Kind = ChangeLost
		case na == nil:
			c.Kind = ChangeLost
		case oa == nil:
			c.Kind = ChangeToHardware
		case oa.Hardware && !na.Hardware:
			c.Kind = ChangeToSoftware
		case !oa.Hardware && na.Hardware:
			c.Kind = ChangeToHardware
		case !oa.Hardware && !na.Hardware:
			c.Kind = ChangeNone
		case oa.OffsetBits != na.OffsetBits && oa.WidthBits != na.WidthBits:
			c.Kind = ChangeResized
		case oa.WidthBits != na.WidthBits:
			c.Kind = ChangeResized
		case oa.OffsetBits != na.OffsetBits:
			c.Kind = ChangeMoved
		default:
			c.Kind = ChangeNone
		}
		d.Changes = append(d.Changes, c)
	}
	return d, nil
}

// String renders the diff as a short report.
func (d *Diff) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "completion footprint: %dB -> %dB\n", d.CompletionBytesOld, d.CompletionBytesNew)
	for _, c := range d.Changes {
		fmt.Fprintf(&sb, "  %-14s %-20s %s -> %s\n", c.Semantic, c.Kind, c.Old, c.New)
	}
	return sb.String()
}

// PathsEquivalent reports whether two completion paths are interchangeable
// for applications: same semantics at identical bit positions and widths
// (§5 "feature equivalence" restricted to the interface level — the paper
// argues the interface, not the feature internals, is what must match).
func PathsEquivalent(a, b *Path) bool {
	if !a.Prov().Equal(b.Prov()) {
		return false
	}
	for s := range a.Prov() {
		fa, fb := a.Field(s), b.Field(s)
		if fa == nil || fb == nil {
			return false
		}
		if fa.OffsetBits != fb.OffsetBits || fa.WidthBits != fb.WidthBits {
			return false
		}
	}
	return true
}
