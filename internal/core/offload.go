package core

import (
	"fmt"
	"sort"
	"strings"

	"opendesc/internal/semantics"
)

// The paper's prototype "only lists the missing features ... but does not
// currently offload or compile the P4 code"; §5 sketches the next step:
// decide, per missing feature, between the software counterpart and pushing
// the reference P4 implementation into the programmable pipeline, under the
// device's resource constraints. PlanOffloads implements that placement
// pass over a compilation result.

// PipelineCaps describes a NIC's programmable-pipeline resources.
type PipelineCaps struct {
	// Programmable: the device accepts pushed P4 stages at all.
	Programmable bool
	// StageBudget is the number of match-action stages available to pushed
	// features (Menshen/Pipeleon-style isolation would partition this).
	StageBudget int
	// PayloadExterns: the device has externs able to inspect payload bytes
	// (multi-core SoCs, FPGAs); RMT-style pipelines do not.
	PayloadExterns bool
	// PipelineCostFactor scales a feature's software cost to its estimated
	// residual host cost after offload (normally ~0: the NIC absorbs it).
	PipelineCostFactor float64
}

// Placement says where a requested semantic is computed.
type Placement int

// Placements.
const (
	// PlaceDescriptor: already delivered by the selected completion layout.
	PlaceDescriptor Placement = iota
	// PlacePipeline: reference P4 implementation pushed to the NIC pipeline.
	PlacePipeline
	// PlaceSoftware: SoftNIC shim on the host.
	PlaceSoftware
)

func (p Placement) String() string {
	switch p {
	case PlaceDescriptor:
		return "descriptor"
	case PlacePipeline:
		return "pipeline"
	case PlaceSoftware:
		return "software"
	}
	return "?"
}

// PlanEntry is the placement decision for one intent semantic.
type PlanEntry struct {
	Semantic  semantics.Name
	Placement Placement
	// HostCost is the residual per-packet host cost of the placement.
	HostCost float64
	// Stages is the pipeline stage usage (PlacePipeline only).
	Stages int
	// Ref is the pushed reference implementation (PlacePipeline only).
	Ref *semantics.RefImpl
}

// OffloadPlan is the placement of every intent semantic.
type OffloadPlan struct {
	Entries    []PlanEntry
	StagesUsed int
	// HostCost is the total residual per-packet host cost.
	HostCost float64
}

// Pushed lists the semantics planned into the pipeline.
func (p *OffloadPlan) Pushed() []semantics.Name {
	var out []semantics.Name
	for _, e := range p.Entries {
		if e.Placement == PlacePipeline {
			out = append(out, e.Semantic)
		}
	}
	return out
}

// Software lists the semantics left to host shims.
func (p *OffloadPlan) Software() []semantics.Name {
	var out []semantics.Name
	for _, e := range p.Entries {
		if e.Placement == PlaceSoftware {
			out = append(out, e.Semantic)
		}
	}
	return out
}

// PipelineProgram concatenates the pushed reference P4 fragments — the
// program a P4-to-device backend would compile onto the NIC.
func (p *OffloadPlan) PipelineProgram() string {
	var sb strings.Builder
	for _, e := range p.Entries {
		if e.Placement != PlacePipeline || e.Ref == nil {
			continue
		}
		fmt.Fprintf(&sb, "// pushed feature: %s (%d stages)\n%s\n\n", e.Semantic, e.Stages, e.Ref.P4)
	}
	return sb.String()
}

// String renders a placement report.
func (p *OffloadPlan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "offload plan: %d pipeline stages used, residual host cost %.1f\n",
		p.StagesUsed, p.HostCost)
	for _, e := range p.Entries {
		fmt.Fprintf(&sb, "  %-14s -> %-10s", e.Semantic, e.Placement)
		switch e.Placement {
		case PlacePipeline:
			fmt.Fprintf(&sb, " (%d stages)", e.Stages)
		case PlaceSoftware:
			fmt.Fprintf(&sb, " (cost %.1f)", e.HostCost)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// PlanOffloads places every missing semantic of a compilation result:
// features with a reference implementation go to the pipeline while the
// stage budget lasts (most expensive software cost first — the greedy
// heuristic maximizing saved host cycles); the rest stay in software.
func PlanOffloads(res *Result, caps PipelineCaps, costs semantics.CostModel) (*OffloadPlan, error) {
	if res == nil {
		return nil, fmt.Errorf("core: PlanOffloads needs a compilation result")
	}
	if costs == nil {
		costs = semantics.RegistryCosts(semantics.Default)
	}
	plan := &OffloadPlan{}
	// Descriptor-served semantics first, in accessor order.
	missing := make(map[semantics.Name]bool)
	for _, m := range res.Missing() {
		missing[m] = true
	}
	for _, f := range res.Intent.Fields {
		if !missing[f.Semantic] {
			plan.Entries = append(plan.Entries, PlanEntry{
				Semantic: f.Semantic, Placement: PlaceDescriptor,
			})
		}
	}
	// Candidates sorted by software cost, most expensive first.
	cand := append([]semantics.Name(nil), res.Missing()...)
	sort.Slice(cand, func(i, j int) bool { return costs(cand[i]) > costs(cand[j]) })

	budget := caps.StageBudget
	for _, s := range cand {
		ref, hasRef := semantics.Ref(s)
		canPush := caps.Programmable && hasRef && ref.Stages <= budget &&
			(!ref.NeedsPayload || caps.PayloadExterns)
		if canPush {
			r := ref
			plan.Entries = append(plan.Entries, PlanEntry{
				Semantic:  s,
				Placement: PlacePipeline,
				Stages:    ref.Stages,
				HostCost:  costs(s) * caps.PipelineCostFactor,
				Ref:       &r,
			})
			budget -= ref.Stages
			plan.StagesUsed += ref.Stages
			plan.HostCost += costs(s) * caps.PipelineCostFactor
			continue
		}
		plan.Entries = append(plan.Entries, PlanEntry{
			Semantic:  s,
			Placement: PlaceSoftware,
			HostCost:  costs(s),
		})
		plan.HostCost += costs(s)
	}
	return plan, nil
}
