package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"opendesc/internal/semantics"
)

// SelectOptions tune the path-selection optimization (Eq. 1 of the paper).
type SelectOptions struct {
	// Alpha weights the DMA completion footprint term (cost units per byte).
	// Larger values favour shorter completions. Zero selects DefaultAlpha;
	// pass a negative value to ignore the footprint term entirely.
	Alpha float64
	// Costs is the software-emulation cost model w; defaults to the
	// canonical registry costs.
	Costs semantics.CostModel
}

// DefaultAlpha calibrates one byte of completion DMA footprint to one cost
// unit (≈1 ns/packet on the reference machine), matching the observation
// that descriptor DMA bandwidth costs roughly a cycle per byte at line rate.
const DefaultAlpha = 1.0

func (o SelectOptions) withDefaults() SelectOptions {
	switch {
	case o.Alpha == 0:
		o.Alpha = DefaultAlpha
	case o.Alpha < 0:
		o.Alpha = 0
	}
	if o.Costs == nil {
		o.Costs = semantics.RegistryCosts(semantics.Default)
	}
	return o
}

// UnsatisfiableError reports that every completion path leaves at least one
// requested semantic without hardware or software implementation.
type UnsatisfiableError struct {
	Control string
	// MissingEverywhere lists, per path ID, the fatal missing semantics.
	MissingEverywhere map[int][]semantics.Name
}

func (e *UnsatisfiableError) Error() string {
	var all []string
	seen := map[semantics.Name]bool{}
	for _, ms := range e.MissingEverywhere {
		for _, m := range ms {
			if !seen[m] {
				seen[m] = true
				all = append(all, string(m))
			}
		}
	}
	sort.Strings(all)
	return fmt.Sprintf("core: intent unsatisfiable on %s: no path or software fallback provides {%s}",
		e.Control, strings.Join(all, ", "))
}

// ErrNoPaths is returned when the deparser has no completion path at all.
var ErrNoPaths = errors.New("core: deparser has no completion paths")

// Scored couples a path with its objective value and breakdown.
type Scored struct {
	Path *Path
	// SoftCost is Σ w(s) over Req \ Prov(p) (may be +Inf).
	SoftCost float64
	// DMACost is Alpha · SizeBytes(p).
	DMACost float64
	// Total is the Eq. 1 objective.
	Total float64
	// Missing is Req \ Prov(p), sorted.
	Missing []semantics.Name
}

// ScorePaths evaluates the Eq. 1 objective for every path under the request.
func ScorePaths(paths []*Path, req semantics.Set, opts SelectOptions) []Scored {
	opts = opts.withDefaults()
	out := make([]Scored, 0, len(paths))
	for _, p := range paths {
		missing := req.Minus(p.Prov()).Sorted()
		soft := 0.0
		for _, m := range missing {
			soft += opts.Costs(m)
		}
		dma := opts.Alpha * float64(p.SizeBytes())
		out = append(out, Scored{
			Path:     p,
			SoftCost: soft,
			DMACost:  dma,
			Total:    soft + dma,
			Missing:  missing,
		})
	}
	return out
}

// SelectPath solves
//
//	min over p ∈ Paths(G) of  Σ_{s ∈ Req\Prov(p)} w(s)  +  α·Size(p)
//
// and returns the winning scored path. If the software term is infinite for
// every path the program is rejected with an UnsatisfiableError, as the paper
// specifies. Production NICs expose only a handful of completion paths, so
// the optimization degenerates into enumerating a small finite set and
// picking the best element — exactly what this function does.
func SelectPath(control string, paths []*Path, req semantics.Set, opts SelectOptions) (Scored, []Scored, error) {
	if len(paths) == 0 {
		return Scored{}, nil, ErrNoPaths
	}
	scored := ScorePaths(paths, req, opts)
	best := -1
	allInf := true
	fatal := make(map[int][]semantics.Name)
	o := opts.withDefaults()
	for i, s := range scored {
		if !math.IsInf(s.SoftCost, 1) {
			allInf = false
			if best < 0 || s.Total < scored[best].Total ||
				(s.Total == scored[best].Total && s.Path.SizeBytes() < scored[best].Path.SizeBytes()) {
				best = i
			}
		} else {
			var ms []semantics.Name
			for _, m := range s.Missing {
				if math.IsInf(o.Costs(m), 1) {
					ms = append(ms, m)
				}
			}
			fatal[s.Path.ID] = ms
		}
	}
	if allInf {
		return Scored{}, scored, &UnsatisfiableError{Control: control, MissingEverywhere: fatal}
	}
	return scored[best], scored, nil
}
