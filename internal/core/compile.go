package core

import (
	"fmt"
	"sort"
	"strings"

	"opendesc/internal/obs"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
)

// DeparserSpec identifies the completion deparser of a NIC description.
type DeparserSpec struct {
	// Info is the checked NIC description.
	Info *sema.Info
	// ControlName names the CmptDeparser control. If empty, the single
	// control whose name contains "CmptDeparser" is used.
	ControlName string
	// Bindings maps template type parameters to concrete type names;
	// @bind annotations on the control supply defaults.
	Bindings map[string]string
	// OutParam names the completion channel parameter (auto-detected from
	// the cmpt_out extern type when empty).
	OutParam string
}

// Accessor is one host-side metadata accessor synthesized for a compiled
// intent: either a constant-time read at a fixed bit offset of the completion
// record (Hardware=true) or a SoftNIC shim (Hardware=false).
type Accessor struct {
	Semantic  semantics.Name
	FieldName string // layout field (hardware) or intent field (software)
	// OffsetBits/WidthBits locate the bit slice inside the completion record
	// for hardware accessors.
	OffsetBits int
	WidthBits  int
	Hardware   bool
	// SoftCost is the modelled per-packet cost of the software shim.
	SoftCost float64
}

// Result is the output of one OpenDesc compilation: the chosen completion
// path, its layout, and the synthesized accessor table.
type Result struct {
	NIC     string
	Control string
	Graph   *Graph
	Paths   []*Path
	Scored  []Scored
	// Selected is the optimal path p*.
	Selected Scored
	Intent   *Intent
	// Accessors has one entry per intent field, hardware accessors first in
	// layout order, then software shims in intent order.
	Accessors []Accessor
	// Config lists the context-register constraints that make the NIC take
	// the selected path (programmed over the control channel).
	Config []Constraint
}

// Missing lists the semantics that must be computed in software.
func (r *Result) Missing() []semantics.Name { return r.Selected.Missing }

// HardwareSet returns the semantics served directly from the descriptor.
func (r *Result) HardwareSet() semantics.Set {
	s := make(semantics.Set)
	for _, a := range r.Accessors {
		if a.Hardware {
			s.Add(a.Semantic)
		}
	}
	return s
}

// Accessor returns the accessor for a semantic, or nil.
func (r *Result) Accessor(s semantics.Name) *Accessor {
	for i := range r.Accessors {
		if r.Accessors[i].Semantic == s {
			return &r.Accessors[i]
		}
	}
	return nil
}

// CompletionBytes is the DMA footprint of the selected completion layout.
func (r *Result) CompletionBytes() int { return r.Selected.Path.SizeBytes() }

// FindDeparser locates the completion deparser control per the spec.
func FindDeparser(spec DeparserSpec) (string, error) {
	if spec.ControlName != "" {
		if spec.Info.Prog.Control(spec.ControlName) == nil {
			return "", fmt.Errorf("control %q not found", spec.ControlName)
		}
		return spec.ControlName, nil
	}
	var found string
	for _, c := range spec.Info.Prog.Controls() {
		if strings.Contains(c.Name, "CmptDeparser") {
			if found != "" {
				return "", fmt.Errorf("multiple CmptDeparser controls (%s, %s); name one explicitly", found, c.Name)
			}
			found = c.Name
		}
	}
	if found == "" {
		return "", fmt.Errorf("no CmptDeparser control found")
	}
	return found, nil
}

// BuildDeparserGraph parses, binds and extracts the CFG for a deparser spec.
func BuildDeparserGraph(spec DeparserSpec) (*Graph, error) {
	name, err := FindDeparser(spec)
	if err != nil {
		return nil, err
	}
	ctl := spec.Info.Prog.Control(name)
	inst, err := spec.Info.BindControl(ctl, spec.Bindings)
	if err != nil {
		return nil, err
	}
	return BuildGraph(spec.Info, inst, spec.OutParam)
}

// CompileOptions bundle the tunables of a compilation.
type CompileOptions struct {
	Select    SelectOptions
	Enumerate EnumerateOptions
	// Trace, when non-nil, receives one timed span per pipeline stage
	// (cfg → paths → select); the CLI adds the frontend (parse, sema) and
	// backend (codegen) spans around the core.
	Trace *obs.Trace
}

// Compile maps an application intent onto a NIC description: CFG extraction,
// path characterization, Eq. 1 optimization, and host accessor synthesis.
func Compile(nicName string, spec DeparserSpec, intent *Intent, opts CompileOptions) (*Result, error) {
	span := func(stage string) *obs.Span {
		if opts.Trace == nil {
			return nil
		}
		return opts.Trace.Start(stage)
	}
	sp := span("cfg")
	g, err := BuildDeparserGraph(spec)
	if err != nil {
		return nil, fmt.Errorf("opendesc %s: %w", nicName, err)
	}
	if sp != nil {
		sp.Annotate("nodes", len(g.Nodes)).Annotate("emits", g.EmitCount()).End()
	}
	sp = span("paths")
	paths, err := EnumeratePaths(g, opts.Enumerate)
	if err != nil {
		return nil, fmt.Errorf("opendesc %s: %w", nicName, err)
	}
	if sp != nil {
		sp.Annotate("paths", len(paths)).End()
	}
	sp = span("select")
	selOpts := opts.Select.withDefaults()
	selOpts.Costs = intent.CostModel(selOpts.Costs)
	req := intent.Req()
	best, scored, err := SelectPath(g.Control, paths, req, selOpts)
	if err != nil {
		return nil, fmt.Errorf("opendesc %s: %w", nicName, err)
	}
	if sp != nil {
		sp.Annotate("candidates", len(scored)).
			Annotate("selected", best.Path.ID).
			Annotate("bytes", best.Path.SizeBytes()).
			Annotate("fields", len(intent.Fields)).
			Annotate("missing", len(best.Missing)).End()
	}
	res := &Result{
		NIC:      nicName,
		Control:  g.Control,
		Graph:    g,
		Paths:    paths,
		Scored:   scored,
		Selected: best,
		Intent:   intent,
		Config:   best.Path.Constraints,
	}
	res.Accessors = synthesizeAccessors(best, intent, selOpts.Costs)
	return res, nil
}

// synthesizeAccessors builds the accessor table for the selected path:
// constant-time bit-slice readers for every s ∈ Prov(p*) ∩ Req, SoftNIC shims
// for the rest.
func synthesizeAccessors(best Scored, intent *Intent, costs semantics.CostModel) []Accessor {
	var hw, sw []Accessor
	missing := make(map[semantics.Name]bool, len(best.Missing))
	for _, m := range best.Missing {
		missing[m] = true
	}
	for _, f := range intent.Fields {
		if missing[f.Semantic] {
			sw = append(sw, Accessor{
				Semantic:  f.Semantic,
				FieldName: f.FieldName,
				WidthBits: f.WidthBits,
				Hardware:  false,
				SoftCost:  costs(f.Semantic),
			})
			continue
		}
		lf := best.Path.Field(f.Semantic)
		if lf == nil {
			// Prov(p) said present; defensive fallback to software.
			sw = append(sw, Accessor{
				Semantic: f.Semantic, FieldName: f.FieldName,
				WidthBits: f.WidthBits, SoftCost: costs(f.Semantic),
			})
			continue
		}
		hw = append(hw, Accessor{
			Semantic:   f.Semantic,
			FieldName:  lf.Name,
			OffsetBits: lf.OffsetBits,
			WidthBits:  lf.WidthBits,
			Hardware:   true,
		})
	}
	sort.Slice(hw, func(i, j int) bool { return hw[i].OffsetBits < hw[j].OffsetBits })
	return append(hw, sw...)
}

// Report renders a human-readable compilation report (the prototype's
// primary output: "the user is informed of missing s").
func (r *Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "OpenDesc compilation: %s / %s\n", r.NIC, r.Control)
	fmt.Fprintf(&sb, "  intent %s requests %s\n", r.Intent.Name, r.Intent.Req())
	fmt.Fprintf(&sb, "  completion paths: %d\n", len(r.Paths))
	for _, s := range r.Scored {
		marker := "   "
		if s.Path.ID == r.Selected.Path.ID {
			marker = " * "
		}
		fmt.Fprintf(&sb, "  %s%s  soft=%.1f dma=%.1f total=%.1f\n",
			marker, s.Path, s.SoftCost, s.DMACost, s.Total)
	}
	fmt.Fprintf(&sb, "  selected path %d: %d-byte completion\n", r.Selected.Path.ID, r.CompletionBytes())
	if len(r.Config) > 0 {
		fmt.Fprintf(&sb, "  context config:")
		for _, c := range r.Config {
			fmt.Fprintf(&sb, " %s;", c)
		}
		sb.WriteString("\n")
	}
	for _, a := range r.Accessors {
		if a.Hardware {
			fmt.Fprintf(&sb, "  accessor %-14s hardware  bits[%d:%d) field %s\n",
				a.Semantic, a.OffsetBits, a.OffsetBits+a.WidthBits, a.FieldName)
		} else {
			fmt.Fprintf(&sb, "  accessor %-14s SOFTWARE  shim (cost %.1f) — provide implementation for %q\n",
				a.Semantic, a.SoftCost, a.Semantic)
		}
	}
	return sb.String()
}
