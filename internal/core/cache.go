package core

// Content-addressed compile cache (S25). A fleet controller compiles one
// layout per (description digest, intent) pair, not per host: sixty-four
// hosts drawn from six NIC families share six cache entries. Concurrent
// requests for the same key are de-duplicated singleflight-style — the
// first caller compiles, the rest wait and share the result — and entries
// are recycled LRU under a bounded capacity. Results are immutable after
// Compile, so sharing one *Result across hosts is safe (each host builds
// its own accessor runtime).

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// SourceDigest is the content address of a P4 interface description:
// sha256 over the exact source text. Hosts self-report it in their
// describe answer and the controller recomputes it — a mismatch is a
// quarantine reason, and the recomputed value is the cache key, so a
// tampered description can never alias a trusted entry.
func SourceDigest(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// CacheKey addresses one compiled layout: what was compiled (the
// description digest) and what it was compiled for (the canonical intent +
// options string).
type CacheKey struct {
	Digest string
	Intent string
}

// IntentKey renders the (intent, options) pair canonically: field set in
// sorted order with per-field width/cost/required flags, plus every
// CompileOptions knob that can change the selected layout. Two compiles
// with equal IntentKey and equal SourceDigest are interchangeable.
func IntentKey(intent *Intent, opts CompileOptions) string {
	fields := make([]string, 0, len(intent.Fields))
	for _, f := range intent.Fields {
		fields = append(fields, fmt.Sprintf("%s:%s:%d:%g:%t",
			f.FieldName, f.Semantic, f.WidthBits, f.CostOverride, f.Required))
	}
	sort.Strings(fields)
	costs := ""
	if opts.Select.Costs != nil {
		// A custom cost model is opaque; refuse to alias it with the
		// default model by keying on its identity-free marker. Callers
		// sharing a cache across cost models should embed a model tag in
		// the digest instead.
		costs = "custom"
	}
	return fmt.Sprintf("fields=%v alpha=%g costs=%s prune=%t maxpaths=%d",
		fields, opts.Select.Alpha, costs,
		!opts.Enumerate.DisablePruning, opts.Enumerate.MaxPaths)
}

// CompileKey builds the cache key for compiling a description (by digest)
// under an intent and options.
func CompileKey(sourceDigest string, intent *Intent, opts CompileOptions) CacheKey {
	return CacheKey{Digest: sourceDigest, Intent: IntentKey(intent, opts)}
}

// CacheStats is a point-in-time snapshot of the cache counters. They
// reconcile exactly: Gets = Hits + Misses + Coalesced, and (absent compile
// errors) the compile function ran Misses times.
type CacheStats struct {
	Gets      uint64
	Hits      uint64
	Misses    uint64
	Coalesced uint64 // waited on another caller's in-flight compile
	Evictions uint64
	Size      int
}

// HitRate is hits (including coalesced waits, which also avoided a
// compile) over all gets; 0 when nothing was requested.
func (s CacheStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(s.Gets)
}

// cacheEntry is one resident layout plus its LRU links.
type cacheEntry struct {
	key        CacheKey
	res        *Result
	prev, next *cacheEntry
}

// inflight is one compile in progress; late arrivals wait on done.
type inflight struct {
	done chan struct{}
	res  *Result
	err  error
}

// CompileCache is a bounded, content-addressed map from CacheKey to
// compiled *Result with singleflight de-duplication. Safe for concurrent
// use. The zero value is not ready; use NewCompileCache.
type CompileCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[CacheKey]*cacheEntry
	flights  map[CacheKey]*inflight
	// head is most-recently-used, tail least.
	head, tail *cacheEntry

	gets, hits, misses, coalesced, evictions uint64
}

// NewCompileCache returns a cache bounded to capacity entries
// (capacity <= 0 selects 64, comfortably above one entry per bundled NIC
// family per live intent).
func NewCompileCache(capacity int) *CompileCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &CompileCache{
		capacity: capacity,
		entries:  make(map[CacheKey]*cacheEntry),
		flights:  make(map[CacheKey]*inflight),
	}
}

// Get returns the cached result for key, or runs compile (once, however
// many callers ask concurrently) and caches a successful result. Failed
// compiles are not cached: the next Get retries.
func (c *CompileCache) Get(key CacheKey, compile func() (*Result, error)) (*Result, error) {
	c.mu.Lock()
	c.gets++
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.touch(e)
		res := e.res
		c.mu.Unlock()
		return res, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-fl.done
		return fl.res, fl.err
	}
	c.misses++
	fl := &inflight{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()

	fl.res, fl.err = compile()

	c.mu.Lock()
	delete(c.flights, key)
	if fl.err == nil {
		c.insert(key, fl.res)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.res, fl.err
}

// Stats snapshots the counters.
func (c *CompileCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Gets:      c.gets,
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Size:      len(c.entries),
	}
}

// insert adds a fresh entry at the LRU head, evicting the tail when full.
// Caller holds c.mu.
func (c *CompileCache) insert(key CacheKey, res *Result) {
	if _, ok := c.entries[key]; ok {
		return // a racing Get already inserted it
	}
	for len(c.entries) >= c.capacity && c.tail != nil {
		c.evictions++
		old := c.tail
		c.unlink(old)
		delete(c.entries, old.key)
	}
	e := &cacheEntry{key: key, res: res}
	c.entries[key] = e
	c.pushFront(e)
}

// touch moves e to the LRU head. Caller holds c.mu.
func (c *CompileCache) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *CompileCache) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *CompileCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
