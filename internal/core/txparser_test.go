package core

import (
	"testing"

	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
)

const txDesc = `
struct tx_ctx_t {
    bit<2> desc_fmt;
}

header tx_base_t {
    bit<64> addr;
    @semantic("pkt_len")
    bit<16> length;
    @semantic("seg_cnt")
    bit<8>  segs;
}

header tx_offload_t {
    @semantic("csum_level")
    bit<2>  csum_cmd;
    @semantic("vlan")
    bit<16> vlan_tci;
    bit<6>  pad;
}

header tx_tso_t {
    bit<16> mss;
    bit<8>  hdr_len;
}

@bind("CTX","tx_ctx_t") @bind("DESC","tx_full_t")
parser DescParser<CTX, DESC>(
    desc_in din,
    in CTX h2c_ctx,
    out DESC desc_hdr)
{
    state start {
        din.extract(desc_hdr.base);
        transition select(h2c_ctx.desc_fmt) {
            0: accept_state;
            1: parse_offload;
            2: parse_tso;
            default: reject;
        }
    }
    state accept_state {
        transition accept;
    }
    state parse_offload {
        din.extract(desc_hdr.offload);
        transition accept;
    }
    state parse_tso {
        din.extract(desc_hdr.offload);
        din.extract(desc_hdr.tso);
        transition accept;
    }
}

struct tx_full_t {
    tx_base_t base;
    tx_offload_t offload;
    tx_tso_t tso;
}
`

func txInstance(t *testing.T) (*sema.Info, *sema.Instance) {
	t.Helper()
	prog, err := parser.Parse("tx.p4", txDesc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	inst, err := info.BindParser(prog.Parser("DescParser"), nil)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	return info, inst
}

func TestAnalyzeDescParser(t *testing.T) {
	info, inst := txInstance(t)
	layouts, err := AnalyzeDescParser(info, inst, "")
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	acc := AcceptedLayouts(layouts)
	if len(acc) != 3 {
		for _, l := range layouts {
			t.Logf("layout %d accepted=%v states=%v size=%dB", l.ID, l.Accepted, l.States, l.SizeBytes())
		}
		t.Fatalf("accepted layouts = %d, want 3", len(acc))
	}
	// Base-only format: 64+16+8 = 88 bits = 11B.
	sizes := map[int]bool{}
	for _, l := range acc {
		sizes[l.SizeBytes()] = true
	}
	for _, want := range []int{11, 14, 17} {
		if !sizes[want] {
			t.Errorf("missing layout of %d bytes; got %v", want, sizes)
		}
	}
	// The offload format consumes vlan + csum_level.
	var off *TxLayout
	for _, l := range acc {
		if l.SizeBytes() == 14 {
			off = l
		}
	}
	if off == nil {
		t.Fatal("offload layout missing")
	}
	if !off.Consumes().Has(semantics.VLAN) || !off.Consumes().Has(semantics.ChecksumAny) {
		t.Errorf("offload consumes %v", off.Consumes())
	}
	// Constraint should pin desc_fmt == 1.
	found := false
	for _, c := range off.Constraints {
		if c.Var == "h2c_ctx.desc_fmt" && c.Equal && c.Val.Uint == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("constraints = %v", off.Constraints)
	}
	// Field offsets: vlan_tci sits after base(88) + csum_cmd(2) = 90.
	f := off.Field(semantics.VLAN)
	if f == nil || f.OffsetBits != 90 {
		t.Errorf("vlan field = %+v, want offset 90", f)
	}
}

func TestDescParserRejectPath(t *testing.T) {
	info, inst := txInstance(t)
	layouts, err := AnalyzeDescParser(info, inst, "")
	if err != nil {
		t.Fatal(err)
	}
	rejects := 0
	for _, l := range layouts {
		if !l.Accepted {
			rejects++
			// Default branch: desc_fmt ∉ {0,1,2}.
			if len(l.Constraints) != 3 {
				t.Errorf("reject constraints = %v", l.Constraints)
			}
		}
	}
	if rejects != 1 {
		t.Errorf("reject layouts = %d, want 1", rejects)
	}
}

func TestDescParserLoopGuard(t *testing.T) {
	prog, err := parser.Parse("loop.p4", `
header h_t { bit<8> v; }
struct d_t { h_t h; }
@bind("DESC","d_t")
parser DescParser<DESC>(desc_in din, out DESC d) {
    state start {
        din.extract(d.h);
        transition select(d.h.v) {
            0: accept_state;
            default: start;
        }
    }
    state accept_state { transition accept; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := info.BindParser(prog.Parser("DescParser"), nil)
	if err != nil {
		t.Fatal(err)
	}
	layouts, err := AnalyzeDescParser(info, inst, "")
	if err != nil {
		t.Fatalf("loop guard failed: %v", err)
	}
	if len(layouts) == 0 || len(layouts) > 16 {
		t.Errorf("layouts = %d, want small bounded set", len(layouts))
	}
}
