package fleet

// Fleet observability plane (DESIGN §S26): hosts ship digest-sealed
// telemetry reports over their control links; the controller treats every
// report as untrusted input. A report must survive structural validation,
// the digest check, histogram reconciliation, a monotonic-sequence
// staleness check, and — the only defense a re-sealing forger cannot beat
// — an exact cross-check of its cumulative datapath counters against the
// controller's own Health RPC observation taken in the same sweep step.
// Hosts whose reports diverge are quarantined exactly like lying
// describers. Accepted reports feed the fleet rollup and the evidence
// half of canary bakes.

import (
	"errors"
	"fmt"
	"io"
	"strconv"

	"opendesc/internal/fleet/telemetry"
	"opendesc/internal/obs/flight"
	"opendesc/internal/retry"
)

// integrityError marks a telemetry rejection that indicts the host (forged,
// stale, or malformed report) rather than the network. Callers quarantine
// on it; plain transport errors just skip the host for this sweep.
type integrityError struct{ err error }

func (e *integrityError) Error() string { return e.err.Error() }
func (e *integrityError) Unwrap() error { return e.err }

// quarantine removes a member from the healthy set with an operator-visible
// reason and a trace instant on the host's own track.
func (c *Controller) quarantine(m *member, reason string) {
	m.ok, m.reason = false, reason
	c.logf("quarantine %s: %s", m.host.Name, reason)
	c.trace.Instant("quarantine "+m.host.Name, "verdict", m.host.Name, c.clk.Now(),
		map[string]string{"reason": reason})
}

// fetchReport pulls one telemetry report from a member and subjects it to
// the full untrusted-input gauntlet. The Health RPC lands first in the same
// step: under the single-threaded chaos discipline no traffic can run
// between the two calls, so the report's datapath counters must equal the
// RPC observation exactly — any divergence is a forgery, not skew. (Lease
// state and LeaseReverts can legitimately change between the calls — link
// latency advances the clock — so they are not part of the cross-check.)
func (c *Controller) fetchReport(m *member) (*telemetry.Report, error) {
	var h Health
	if err := c.rpc(m, func() error { h = m.host.Health(); return nil }); err != nil {
		return nil, err
	}
	var raw []byte
	err := retry.Policy{
		JitterSeed: c.nextSeed(),
		Sleep:      func(d uint64) { c.clk.Advance(d) },
		OnError:    func(int, error) { c.rpcRetries.Inc() },
	}.Do(func() error {
		return m.link.transfer(c.opts.TelemetryDeadlineNs, func() (int, error) {
			b, terr := m.host.Telemetry()
			if terr != nil {
				return 0, terr
			}
			raw = b
			return len(b), nil
		})
	})
	if err != nil {
		return nil, err
	}
	rep, verr := telemetry.Validate(raw)
	if verr != nil {
		c.telemetryRejects.Inc()
		return nil, &integrityError{verr}
	}
	if rep.Host != m.host.Name {
		c.telemetryRejects.Inc()
		return nil, &integrityError{fmt.Errorf("report claims host %q, link belongs to %q", rep.Host, m.host.Name)}
	}
	if rep.Seq <= m.lastSeq {
		c.telemetryRejects.Inc()
		return nil, &integrityError{fmt.Errorf("stale report seq %d (last accepted %d): replay or rolled-back host", rep.Seq, m.lastSeq)}
	}
	if rep.Counters.Accepted != h.Accepted || rep.Counters.Delivered != h.Delivered ||
		rep.Counters.Garbage != h.Garbage || rep.Counters.OrderViolations != h.OrderViolations {
		c.telemetryRejects.Inc()
		return nil, &integrityError{fmt.Errorf(
			"counters diverge from RPC observations: report accepted=%d delivered=%d garbage=%d order_viol=%d, observed accepted=%d delivered=%d garbage=%d order_viol=%d",
			rep.Counters.Accepted, rep.Counters.Delivered, rep.Counters.Garbage, rep.Counters.OrderViolations,
			h.Accepted, h.Delivered, h.Garbage, h.OrderViolations)}
	}
	return rep, nil
}

// ReportOutcome is one host's verdict from a telemetry sweep.
type ReportOutcome struct {
	Host     string
	Accepted bool
	// Skipped marks an unreachable host: no data, no verdict — it keeps
	// serving and will be swept again. Reason carries the rejection or
	// transport error otherwise.
	Skipped bool
	Reason  string
}

// TelemetrySweep summarizes one fleet-wide collection pass.
type TelemetrySweep struct {
	Outcomes  []ReportOutcome
	Collected int
	Skipped   int
	Rejected  int
}

// CollectTelemetry sweeps every healthy member for a telemetry report,
// absorbing validated+cross-checked reports into the fleet rollup and
// quarantining hosts whose reports fail integrity. Unreachable hosts are
// skipped, not punished — absence of evidence is a network property,
// divergent evidence is a host property.
func (c *Controller) CollectTelemetry() TelemetrySweep {
	var sw TelemetrySweep
	for _, m := range c.members {
		if !m.ok {
			continue
		}
		out := ReportOutcome{Host: m.host.Name}
		rep, err := c.fetchReport(m)
		var ie *integrityError
		switch {
		case err == nil:
			m.lastSeq = rep.Seq
			c.rollup.Absorb(rep)
			c.telemetryReports.Inc()
			out.Accepted = true
			sw.Collected++
		case errors.As(err, &ie):
			out.Reason = ie.err.Error()
			c.quarantine(m, fmt.Sprintf("telemetry: %v", ie.err))
			sw.Rejected++
		default:
			out.Skipped, out.Reason = true, err.Error()
			sw.Skipped++
		}
		sw.Outcomes = append(sw.Outcomes, out)
	}
	c.trace.Instant("telemetry sweep", "telemetry", "telemetry", c.clk.Now(), map[string]string{
		"collected": strconv.Itoa(sw.Collected),
		"skipped":   strconv.Itoa(sw.Skipped),
		"rejected":  strconv.Itoa(sw.Rejected),
	})
	c.logf("telemetry sweep: %d collected, %d skipped, %d rejected; fleet p99 %dns",
		sw.Collected, sw.Skipped, sw.Rejected, c.rollup.FleetP99())
	return sw
}

// Rollup exposes the fleet telemetry aggregates.
func (c *Controller) Rollup() *telemetry.Rollup { return c.rollup }

// Trace exposes the controller's correlated span tree.
func (c *Controller) Trace() *telemetry.Trace { return c.trace }

// FleetTrace writes the merged Chrome-trace timeline: the controller's
// rollout/trial/bake/verdict span tree as process 0 and every member's
// flight ring as its own process, all on the shared virtual clock.
func (c *Controller) FleetTrace(w io.Writer) error {
	snaps := make([]flight.NamedSnapshot, 0, len(c.members))
	for _, m := range c.members {
		snaps = append(snaps, flight.NamedSnapshot{Name: m.host.Name, Snap: m.host.FlightSnapshot()})
	}
	return telemetry.WriteFleetTrace(w, c.trace.Spans(), snaps)
}
