package fleet

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"opendesc/internal/fleet/telemetry"
	"opendesc/internal/nic"
	"opendesc/internal/obs"
	"opendesc/internal/vclock"
)

// TestLinkPayloadDeadline: a telemetry-sized payload whose transfer cost
// exceeds the deadline expires mid-flight — the caller burns the whole
// deadline and receives nothing — while a roomier deadline delivers and
// charges the payload cost to the shared clock.
func TestLinkPayloadDeadline(t *testing.T) {
	clk := vclock.NewVirtual(0)
	l := NewLink(clk, 100)
	l.SetPerByteNs(10)

	// 200 bytes: 100 + 200×10 = 2100ns > 1000ns deadline.
	err := l.transfer(1000, func() (int, error) { return 200, nil })
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("mid-transfer expiry returned %v, want ErrDeadline", err)
	}
	if !strings.Contains(err.Error(), "200 bytes") {
		t.Errorf("expiry error %q does not cite the payload size", err)
	}
	if l.Bytes() != 0 {
		t.Errorf("expired transfer counted %d bytes delivered", l.Bytes())
	}
	if clk.Now() != 1000 {
		t.Errorf("expired transfer burned %dns, want the full 1000ns deadline", clk.Now())
	}
	if _, timeouts := l.Stats(); timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", timeouts)
	}

	if err := l.transfer(4000, func() (int, error) { return 200, nil }); err != nil {
		t.Fatalf("roomy deadline failed: %v", err)
	}
	if l.Bytes() != 200 {
		t.Errorf("delivered bytes = %d, want 200", l.Bytes())
	}
	if clk.Now() != 1000+2100 {
		t.Errorf("clock at %dns, want 3100 (deadline burn + payload cost)", clk.Now())
	}
}

// TestTelemetryRetryAfterPartition: a partitioned host is skipped by the
// sweep (absence of evidence is a network property, not a host property)
// and delivers its report on the first sweep after the partition heals.
func TestTelemetryRetryAfterPartition(t *testing.T) {
	c, hosts, links, _ := newTestFleet(t, 3, Options{})
	c.Inventory()
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	pump(t, hosts, 8)

	links[0].Partition()
	sw := c.CollectTelemetry()
	if sw.Collected != 2 || sw.Skipped != 1 || sw.Rejected != 0 {
		t.Fatalf("sweep under partition = %+v", sw)
	}
	if !sw.Outcomes[0].Skipped || sw.Outcomes[0].Accepted {
		t.Fatalf("partitioned host outcome = %+v, want skipped", sw.Outcomes[0])
	}
	if c.QuarantinedCount() != 0 {
		t.Fatal("partition quarantined a host; only divergent evidence may")
	}
	if c.Rollup().Hosts() != 2 {
		t.Fatalf("rollup hosts = %d, want 2", c.Rollup().Hosts())
	}

	links[0].Heal()
	sw = c.CollectTelemetry()
	if sw.Collected != 3 || sw.Skipped != 0 {
		t.Fatalf("post-heal sweep = %+v", sw)
	}
	if c.Rollup().Hosts() != 3 {
		t.Fatalf("rollup hosts = %d, want 3 after heal", c.Rollup().Hosts())
	}
}

// TestTelemetryStalenessRejection: a host replaying a non-advancing report
// sequence is quarantined on the second sweep.
func TestTelemetryStalenessRejection(t *testing.T) {
	c, hosts, _, _ := newTestFleet(t, 2, Options{})
	c.Inventory()
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	pump(t, hosts, 8)

	hosts[0].SetTelemetryMutator(func(r *telemetry.Report) { r.Seq = 1 })
	if sw := c.CollectTelemetry(); sw.Collected != 2 {
		t.Fatalf("first sweep = %+v (seq 1 advances from 0, must be accepted)", sw)
	}
	sw := c.CollectTelemetry()
	if sw.Rejected != 1 || sw.Collected != 1 {
		t.Fatalf("replay sweep = %+v, want 1 rejected", sw)
	}
	if !strings.Contains(sw.Outcomes[0].Reason, "stale") {
		t.Errorf("rejection reason %q does not cite staleness", sw.Outcomes[0].Reason)
	}
	if c.QuarantinedCount() != 1 {
		t.Fatalf("quarantined = %d, want 1", c.QuarantinedCount())
	}
}

// TestForgedTelemetryQuarantined: a forged-clean report re-seals with a
// valid digest, so only the controller's counter cross-check against its
// own Health observation can expose it.
func TestForgedTelemetryQuarantined(t *testing.T) {
	c, hosts, _, _ := newTestFleet(t, 2, Options{})
	c.Inventory()
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	pump(t, hosts, 8)

	hosts[1].SetTelemetryMutator(func(r *telemetry.Report) {
		r.Counters.Delivered, r.Counters.Garbage = 0, 0
		r.Anomalies, r.Truncated = nil, 0
	})
	sw := c.CollectTelemetry()
	if sw.Rejected != 1 || sw.Collected != 1 {
		t.Fatalf("sweep = %+v, want the forged host rejected", sw)
	}
	if !strings.Contains(sw.Outcomes[1].Reason, "diverge") {
		t.Errorf("rejection reason %q does not cite counter divergence", sw.Outcomes[1].Reason)
	}
	if c.QuarantinedCount() != 1 {
		t.Fatalf("quarantined = %d, want 1", c.QuarantinedCount())
	}
	// The honest host's report was absorbed; the forged one was not.
	if c.Rollup().Hosts() != 1 {
		t.Fatalf("rollup hosts = %d, want 1", c.Rollup().Hosts())
	}
}

// TestEvidenceBakeCatchesLatencyRegression is E21's core scenario in
// miniature: a tampered description that stops advertising rss and pkt_len
// still delivers bit-correct metadata through SoftNIC shims — zero oracle
// violations, so Health-counter bakes promote it — but every read now pays
// the soft path. Only the flight-evidence latency gate catches it, citing
// p99 numbers and the slowest flight deliveries in the rollback reason.
func TestEvidenceBakeCatchesLatencyRegression(t *testing.T) {
	run := func(t *testing.T, disabled bool) (*Controller, *Host, error) {
		t.Helper()
		clk := vclock.NewVirtual(0)
		c := NewController(Options{Clock: clk, BakeTarget: 16, DisableEvidenceBake: disabled, LeaseNs: 1 << 40})
		// e1000e advertises both intent semantics in hardware — the all-hw
		// baseline the tampered push degrades.
		h, err := NewHost("e1000e-a", nic.All()[1], HostOptions{Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		c.AddHost(h, NewLink(clk, 1000))
		hosts := []*Host{h}
		c.Inventory()
		if err := c.Provision(); err != nil {
			t.Fatal(err)
		}
		pump(t, hosts, 32) // baseline window on the all-hardware layout
		if got := h.DeliverCostNs(); got != 70 {
			t.Fatalf("baseline deliver cost %dns, want 70 (all-hardware rss+pkt_len)", got)
		}
		src, err := StripSemantics(h.Model.Source, "rss", "pkt_len")
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.StartRollout(Upgrade{Name: "fw-refresh", Descriptions: map[string]string{h.Model.Name: src}})
		if err != nil {
			t.Fatalf("stripped-but-structurally-valid upgrade must pass static validation: %v", err)
		}
		return c, h, r.Run(func() { pump(t, hosts, 8) })
	}

	t.Run("evidence", func(t *testing.T) {
		c, h, err := run(t, false)
		if err == nil {
			t.Fatal("latency-degrading upgrade promoted under evidence bake")
		}
		for _, want := range []string{"latency evidence", "slowest deliveries", "deliver["} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("rollback reason %q does not cite %q", err, want)
			}
		}
		if c.Phase() != PhaseRolledBack {
			t.Fatalf("phase = %s, want rolled-back", c.Phase())
		}
		if got := h.DeliverCostNs(); got != 70 {
			t.Errorf("host serves at %dns after rollback, want the 70ns last-known-good", got)
		}
		hl := h.Health()
		if hl.Garbage != 0 || hl.OrderViolations != 0 {
			t.Fatalf("soft-shim deliveries must be bit-correct, got %+v", hl)
		}
	})

	t.Run("counter-bake-misses-it", func(t *testing.T) {
		c, h, err := run(t, true)
		if err != nil {
			t.Fatalf("counter-only bake unexpectedly rolled back: %v", err)
		}
		if c.Phase() != PhasePromoted {
			t.Fatalf("phase = %s, want promoted", c.Phase())
		}
		if got := h.DeliverCostNs(); got != 920 {
			t.Errorf("promoted trial serves at %dns, want 920 (two soft reads)", got)
		}
	})
}

// TestPerRolloutPhaseGauge: the unlabeled fleet_rollout_phase gauge is
// last-writer-wins across rollouts; the labeled per-rollout series keeps
// every rollout's terminal phase visible.
func TestPerRolloutPhaseGauge(t *testing.T) {
	c, hosts, _, _ := newTestFleet(t, 4, Options{BakeTarget: 8})
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	c.Inventory()
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	pump(t, hosts, 8)

	// Same read set, new generation: promotes cleanly and keeps every
	// baseline layout (and its latency budget) unchanged for the second
	// rollout.
	good, err := c.StartRollout(Upgrade{Name: "rebase", Semantics: []string{"rss", "pkt_len"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Run(func() { pump(t, hosts, 8) }); err != nil {
		t.Fatalf("good rollout: %v", err)
	}

	src, err := StripSemantics(hosts[1].Model.Source, "rss", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := c.StartRollout(Upgrade{Name: "refresh", Descriptions: map[string]string{hosts[1].Model.Name: src}})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Run(func() { pump(t, hosts, 8) }); err == nil {
		t.Fatal("bad rollout promoted")
	}
	if good.Phase() != PhasePromoted || bad.Phase() != PhaseRolledBack {
		t.Fatalf("rollout phases = %s/%s", good.Phase(), bad.Phase())
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`fleet_rollout_phase{rollout="rebase",gen="2"} 4`,
		`fleet_rollout_phase{rollout="refresh",gen="3"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}

// TestFleetTraceMergedTimeline: the controller's span tree and every
// host's flight ring land in one Chrome trace on the shared virtual
// timeline.
func TestFleetTraceMergedTimeline(t *testing.T) {
	c, hosts, _, _ := newTestFleet(t, 2, Options{BakeTarget: 8})
	c.Inventory()
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	pump(t, hosts, 8)
	r, err := c.StartRollout(Upgrade{Name: "widen", Semantics: []string{"rss", "pkt_len", "flow_id"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(func() { pump(t, hosts, 8) }); err != nil {
		t.Fatal(err)
	}
	c.CollectTelemetry()

	var buf bytes.Buffer
	if err := c.FleetTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"controller"`, `"name":"rollout widen gen 2"`,
		`"name":"trial ` + hosts[0].Name + `"`, `"name":"bake"`, `"name":"promote"`,
		`"name":"telemetry sweep"`, `"name":"` + hosts[1].Name + `"`, `"name":"completion"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet trace missing %s", want)
		}
	}
}
