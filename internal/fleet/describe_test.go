package fleet

import (
	"encoding/json"
	"strings"
	"testing"

	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/semantics"
)

// TestDescribeRoundTrip: every bundled NIC's describe answer survives the
// wire (encode → validate) with matching digest and capability model, and
// the validated description compiles the fleet intent.
func TestDescribeRoundTrip(t *testing.T) {
	intent, err := core.IntentFromSemantics("fleet", semantics.Default, semantics.RSS, semantics.PktLen)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range nic.All() {
		d, err := Describe(m, "host-"+m.Name)
		if err != nil {
			t.Fatalf("%s: describe: %v", m.Name, err)
		}
		raw, err := d.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Name, err)
		}
		v, err := Validate(raw)
		if err != nil {
			t.Fatalf("%s: validate rejected an honest description: %v", m.Name, err)
		}
		if v.Digest != core.SourceDigest(m.Source) {
			t.Fatalf("%s: digest mismatch after round trip", m.Name)
		}
		prov, _ := m.ProvidableSet()
		if !v.Providable.Equal(prov) {
			t.Fatalf("%s: providable set changed on the wire: %v vs %v", m.Name, v.Providable, prov)
		}
		res, err := v.Compile(intent, core.CompileOptions{})
		if err != nil {
			t.Fatalf("%s: compile from validated description: %v", m.Name, err)
		}
		want, err := m.Compile(intent, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Selected.Path.ID != want.Selected.Path.ID {
			t.Fatalf("%s: description compile selected path %d, model compile %d",
				m.Name, res.Selected.Path.ID, want.Selected.Path.ID)
		}
	}
}

// TestValidateQuarantineReasons: each class of untrusted-input failure is
// rejected with an operator-legible reason.
func TestValidateQuarantineReasons(t *testing.T) {
	m := nic.MustLoad("e1000e")
	honest, err := Describe(m, "h1")
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func(*Description)) []byte {
		d := *honest
		fn(&d)
		raw, err := d.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	cases := []struct {
		name   string
		raw    []byte
		reason string
	}{
		{"malformed json", []byte("{nope"), "malformed JSON"},
		{"wrong schema", mutate(func(d *Description) { d.Schema = "opendesc-describe/v9" }), "schema"},
		{"missing host", mutate(func(d *Description) { d.Host = "" }), "missing host"},
		{"digest lie", mutate(func(d *Description) { d.Digest = strings.Repeat("0", 64) }), "digest mismatch"},
		{"source tamper", mutate(func(d *Description) { d.P4 = d.P4 + "\n// trailing" }), "digest mismatch"},
		{"capability overclaim", mutate(func(d *Description) {
			d.Capabilities.Semantics = append(d.Capabilities.Semantics, "payload_hash")
		}), "capability claim mismatch"},
		{"path overclaim", mutate(func(d *Description) { d.Capabilities.Paths++ }), "capability claim mismatch"},
		{"size lie", mutate(func(d *Description) { d.Capabilities.CompletionBytes = []int{1} }), "capability claim mismatch"},
		{"broken p4", mutate(func(d *Description) {
			d.P4 = "parser Broken {"
			d.Digest = core.SourceDigest(d.P4)
		}), "parse"},
		{"oversized", append([]byte(`{"p4":"`), append(make([]byte, maxDescriptionBytes), []byte(`"}`)...)...), "exceeds"},
	}
	for _, c := range cases {
		if _, err := Validate(c.raw); err == nil {
			t.Errorf("%s: accepted, want rejection", c.name)
		} else if !strings.Contains(err.Error(), c.reason) {
			t.Errorf("%s: reason %q does not mention %q", c.name, err, c.reason)
		}
	}
}

// TestValidateIsStructural confirms the JSON layer itself is exercised
// (not just Go struct round trips): a hand-built document validates.
func TestValidateHandBuiltDocument(t *testing.T) {
	m := nic.MustLoad("e1000")
	d, err := Describe(m, "h")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(d) // compact form, different bytes than Encode
	if _, err := Validate(raw); err != nil {
		t.Fatalf("compact JSON rejected: %v", err)
	}
}

// TestSwapSemantics: the tamper helper produces a structurally identical,
// validation-clean description whose fields lie about their meaning — the
// attack only a canary bake can catch.
func TestSwapSemantics(t *testing.T) {
	m := nic.MustLoad("e1000e")
	bad, err := SwapSemantics(m.Source, "ip_checksum", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	if bad == m.Source {
		t.Fatal("swap changed nothing")
	}
	v, err := ValidateSource(m.Name, bad)
	if err != nil {
		t.Fatalf("structural validation must pass on the tampered source (that is the point): %v", err)
	}
	honest, err := ValidateSource(m.Name, m.Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Paths) != len(honest.Paths) {
		t.Fatalf("tamper changed path structure: %d vs %d", len(v.Paths), len(honest.Paths))
	}
	if !v.Providable.Equal(honest.Providable) {
		t.Fatalf("tamper changed providable set: %v vs %v", v.Providable, honest.Providable)
	}
	if _, err := SwapSemantics(m.Source, "rss", "no_such_semantic"); err == nil {
		t.Fatal("swap of an absent annotation must fail")
	}
}
