package fleet

import (
	"errors"
	"fmt"

	"opendesc/internal/vclock"
)

// ErrDeadline is what every control RPC surfaces when its link is down,
// flapping, or slower than the caller's deadline. Retry logic matches on
// it with errors.Is.
var ErrDeadline = errors.New("fleet: rpc deadline exceeded")

// Link is the simulated control channel between the controller and one
// host. It charges latency to the shared (virtual) clock, can be
// partitioned or scripted to fail the next N calls, and — like everything
// in the chaos harness — is driven single-threaded: the scheduler
// interleaves operations, it never overlaps them.
type Link struct {
	clk       vclock.Clock
	latencyNs uint64
	perByteNs uint64

	down     bool
	failNext int

	calls    uint64
	timeouts uint64
	bytes    uint64
}

// NewLink builds a link with the given one-way latency on clk.
func NewLink(clk vclock.Clock, latencyNs uint64) *Link {
	if clk == nil {
		clk = vclock.Wall()
	}
	return &Link{clk: clk, latencyNs: latencyNs}
}

// SetPerByteNs charges payload-carrying calls (telemetry reports) this much
// per byte on top of the base latency. Zero (the default) keeps plain
// control RPCs and every pre-existing scenario byte-identical.
func (l *Link) SetPerByteNs(ns uint64) { l.perByteNs = ns }

// Partition takes the link down until Heal; calls burn their full deadline
// and fail.
func (l *Link) Partition() { l.down = true }

// Heal restores the link.
func (l *Link) Heal() { l.down = false }

// Partitioned reports the link state.
func (l *Link) Partitioned() bool { return l.down }

// FailNext scripts the next n calls to time out even on a healed link
// (flapping/lossy behavior).
func (l *Link) FailNext(n int) { l.failNext = n }

// call runs one RPC body under a deadline. A failed call costs the caller
// the whole deadline (the realistic worst case — the controller blocked
// waiting); a successful one costs the link latency.
func (l *Link) call(deadlineNs uint64, fn func() error) error {
	return l.transfer(deadlineNs, func() (int, error) { return 0, fn() })
}

// transfer runs one payload-carrying RPC: fn reports how many bytes the
// reply carried, and the link charges base latency plus the per-byte cost.
// A transfer whose total cost exceeds the deadline expires mid-flight —
// the caller burned its whole deadline and got nothing, exactly like a
// partition — so large telemetry reports cannot ride a deadline tuned for
// small control RPCs unless the deadline accounts for the payload.
func (l *Link) transfer(deadlineNs uint64, fn func() (int, error)) error {
	l.calls++
	if l.down || l.failNext > 0 {
		if l.failNext > 0 {
			l.failNext--
		}
		l.timeouts++
		l.clk.Advance(deadlineNs)
		return ErrDeadline
	}
	n, err := fn()
	if err != nil {
		l.clk.Advance(l.latencyNs)
		return err
	}
	cost := l.latencyNs + uint64(n)*l.perByteNs
	if l.perByteNs > 0 && cost > deadlineNs {
		l.timeouts++
		l.clk.Advance(deadlineNs)
		return fmt.Errorf("%w (transfer of %d bytes needs %dns, deadline %dns)", ErrDeadline, n, cost, deadlineNs)
	}
	l.bytes += uint64(n)
	l.clk.Advance(cost)
	return nil
}

// Stats reports (calls, timeouts) for observability and tests.
func (l *Link) Stats() (calls, timeouts uint64) { return l.calls, l.timeouts }

// Bytes reports payload bytes successfully transferred.
func (l *Link) Bytes() uint64 { return l.bytes }
