package fleet

import (
	"errors"

	"opendesc/internal/vclock"
)

// ErrDeadline is what every control RPC surfaces when its link is down,
// flapping, or slower than the caller's deadline. Retry logic matches on
// it with errors.Is.
var ErrDeadline = errors.New("fleet: rpc deadline exceeded")

// Link is the simulated control channel between the controller and one
// host. It charges latency to the shared (virtual) clock, can be
// partitioned or scripted to fail the next N calls, and — like everything
// in the chaos harness — is driven single-threaded: the scheduler
// interleaves operations, it never overlaps them.
type Link struct {
	clk       vclock.Clock
	latencyNs uint64

	down     bool
	failNext int

	calls    uint64
	timeouts uint64
}

// NewLink builds a link with the given one-way latency on clk.
func NewLink(clk vclock.Clock, latencyNs uint64) *Link {
	if clk == nil {
		clk = vclock.Wall()
	}
	return &Link{clk: clk, latencyNs: latencyNs}
}

// Partition takes the link down until Heal; calls burn their full deadline
// and fail.
func (l *Link) Partition() { l.down = true }

// Heal restores the link.
func (l *Link) Heal() { l.down = false }

// Partitioned reports the link state.
func (l *Link) Partitioned() bool { return l.down }

// FailNext scripts the next n calls to time out even on a healed link
// (flapping/lossy behavior).
func (l *Link) FailNext(n int) { l.failNext = n }

// call runs one RPC body under a deadline. A failed call costs the caller
// the whole deadline (the realistic worst case — the controller blocked
// waiting); a successful one costs the link latency.
func (l *Link) call(deadlineNs uint64, fn func() error) error {
	l.calls++
	if l.down || l.failNext > 0 {
		if l.failNext > 0 {
			l.failNext--
		}
		l.timeouts++
		l.clk.Advance(deadlineNs)
		return ErrDeadline
	}
	l.clk.Advance(l.latencyNs)
	return fn()
}

// Stats reports (calls, timeouts) for observability and tests.
func (l *Link) Stats() (calls, timeouts uint64) { return l.calls, l.timeouts }
