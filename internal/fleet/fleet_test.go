package fleet

import (
	"strings"
	"testing"

	"opendesc/internal/nic"
	"opendesc/internal/pkt"
	"opendesc/internal/vclock"
)

func testPacket(i int) []byte {
	return pkt.NewBuilder().
		WithIPv4([4]byte{10, 0, byte(i >> 8), byte(i)}, [4]byte{10, 1, 2, 3}).
		WithUDP(uint16(1000+i%53), 443).
		WithPayload(make([]byte, 16+i%97)).
		Build()
}

// pump pushes n packets through every host and polls them dry.
func pump(t *testing.T, hosts []*Host, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for _, h := range hosts {
			if !h.Rx(testPacket(i)) {
				t.Fatalf("%s rejected packet %d", h.Name, i)
			}
		}
		if i%4 == 3 {
			for _, h := range hosts {
				h.Poll()
			}
		}
	}
	for _, h := range hosts {
		h.Poll()
	}
}

// requireClean asserts the embedded oracles saw nothing and conservation
// holds exactly.
func requireClean(t *testing.T, hosts []*Host) {
	t.Helper()
	for _, h := range hosts {
		hl := h.Health()
		if hl.Garbage != 0 || hl.OrderViolations != 0 {
			t.Fatalf("%s: oracle violations: %+v", h.Name, hl)
		}
		if hl.Accepted != hl.Delivered || h.PendingCount() != 0 {
			t.Fatalf("%s: conservation broken: accepted %d delivered %d pending %d",
				h.Name, hl.Accepted, hl.Delivered, h.PendingCount())
		}
	}
}

// newTestFleet boots hosts round-robin over every bundled NIC on a shared
// virtual clock, wired to a controller with per-host links.
func newTestFleet(t *testing.T, n int, opts Options) (*Controller, []*Host, []*Link, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual(0)
	opts.Clock = clk
	if opts.LeaseNs == 0 {
		opts.LeaseNs = 1 << 40 // effectively infinite unless a test shrinks it
	}
	c := NewController(opts)
	models := nic.All()
	hosts := make([]*Host, 0, n)
	links := make([]*Link, 0, n)
	for i := 0; i < n; i++ {
		m := models[i%len(models)]
		h, err := NewHost(m.Name+"-"+string(rune('a'+i/len(models))), m, HostOptions{Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		l := NewLink(clk, 1000)
		c.AddHost(h, l)
		hosts = append(hosts, h)
		links = append(links, l)
	}
	return c, hosts, links, clk
}

// TestInventoryAndProvision: a mixed fleet inventories healthy, compiles
// once per distinct description (cache misses == digests), and serves the
// provisioned layout cleanly.
func TestInventoryAndProvision(t *testing.T) {
	c, hosts, _, _ := newTestFleet(t, 12, Options{})
	rep := c.Inventory()
	if rep.Healthy != 12 || len(rep.Quarantined) != 0 {
		t.Fatalf("inventory = %+v", rep)
	}
	if len(rep.Digests) != 6 {
		t.Fatalf("distinct digests = %d, want 6", len(rep.Digests))
	}
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	st := c.CacheStats()
	if st.Misses != 6 {
		t.Fatalf("provision compiled %d times for 6 distinct descriptions", st.Misses)
	}
	if st.Gets != 12 || st.Hits+st.Coalesced != 6 {
		t.Fatalf("cache counters = %+v, want 12 gets / 6 hits", st)
	}
	for _, h := range hosts {
		if h.CommittedGeneration() != 1 {
			t.Fatalf("%s on gen %d after provision", h.Name, h.CommittedGeneration())
		}
	}
	pump(t, hosts, 64)
	requireClean(t, hosts)
}

// TestQuarantine: hosts publishing tampered or lying descriptions are
// quarantined with operator-visible reasons and never provisioned; the
// rest of the fleet is unaffected.
func TestQuarantine(t *testing.T) {
	c, hosts, _, _ := newTestFleet(t, 8, Options{})
	hosts[2].SetDescribeMutator(func(d *Description) { d.Digest = strings.Repeat("f", 64) })
	hosts[5].SetDescribeMutator(func(d *Description) {
		d.Capabilities.Semantics = append(d.Capabilities.Semantics, "warp_speed")
	})
	rep := c.Inventory()
	if rep.Healthy != 6 || len(rep.Quarantined) != 2 {
		t.Fatalf("inventory = %+v", rep)
	}
	reasons := map[string]string{}
	for _, q := range rep.Quarantined {
		reasons[q.Host] = q.Reason
	}
	if !strings.Contains(reasons[hosts[2].Name], "digest mismatch") {
		t.Fatalf("host 2 reason = %q", reasons[hosts[2].Name])
	}
	if !strings.Contains(reasons[hosts[5].Name], "capability claim mismatch") {
		t.Fatalf("host 5 reason = %q", reasons[hosts[5].Name])
	}
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	if hosts[2].CommittedGeneration() != 0 || hosts[5].CommittedGeneration() != 0 {
		t.Fatal("quarantined hosts must not be provisioned")
	}
	// Quarantined hosts still serve on their boot layout.
	pump(t, hosts, 32)
	requireClean(t, hosts)
	if c.QuarantinedCount() != 2 {
		t.Fatalf("quarantined count = %d", c.QuarantinedCount())
	}
}

// TestGoodRolloutPromotes: a benign upgrade canaries, bakes clean, and
// promotes fleet-wide with zero oracle noise.
func TestGoodRolloutPromotes(t *testing.T) {
	c, hosts, _, _ := newTestFleet(t, 12, Options{BakeTarget: 32})
	c.Inventory()
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	pump(t, hosts, 16)

	r, err := c.StartRollout(Upgrade{Name: "widen-reads", Semantics: []string{"rss", "pkt_len", "flow_id"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Phase(); got != PhaseCanary {
		t.Fatalf("phase = %s after start", got)
	}
	if err := r.Run(func() { pump(t, hosts, 8) }); err != nil {
		t.Fatalf("good rollout failed: %v", err)
	}
	if got := c.Phase(); got != PhasePromoted {
		t.Fatalf("phase = %s, want promoted", got)
	}
	for _, h := range hosts {
		if h.CommittedGeneration() != r.Gen() {
			t.Fatalf("%s on gen %d, want %d", h.Name, h.CommittedGeneration(), r.Gen())
		}
	}
	pump(t, hosts, 32)
	requireClean(t, hosts)
}

// TestBadRolloutRollsBack is the tentpole scenario: a structurally valid
// upgrade whose descriptions lie about field meaning trips the canary
// oracle and auto-rolls back — with zero disruption on non-canary hosts
// and exactly-once delivery fleet-wide throughout.
func TestBadRolloutRollsBack(t *testing.T) {
	c, hosts, _, _ := newTestFleet(t, 12, Options{BakeTarget: 32})
	c.Inventory()
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	pump(t, hosts, 16)

	bad := Upgrade{Name: "vendor-push-v2", Descriptions: map[string]string{}}
	for _, m := range nic.All() {
		src, err := SwapSemantics(m.Source, "ip_checksum", "pkt_len")
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		bad.Descriptions[m.Name] = src
	}
	r, err := c.StartRollout(bad)
	if err != nil {
		t.Fatalf("tampered-but-structurally-valid upgrade must pass static validation: %v", err)
	}
	if err := r.Run(func() { pump(t, hosts, 8) }); err == nil {
		t.Fatal("bad rollout promoted; canary oracle failed to fire")
	}
	if got := c.Phase(); got != PhaseRolledBack {
		t.Fatalf("phase = %s, want rolled-back", got)
	}

	canaryGarbage := uint64(0)
	for _, h := range hosts {
		hl := h.Health()
		if hl.Gen == r.Gen() || hl.Trial {
			t.Fatalf("%s still serving the aborted gen %d", h.Name, r.Gen())
		}
		if lkg := h.CommittedGeneration(); lkg != 1 {
			t.Fatalf("%s LKG moved to gen %d", h.Name, lkg)
		}
		if hl.OrderViolations != 0 {
			t.Fatalf("%s: order violations during rollback: %s", h.Name, hl.Detail)
		}
		// Garbage is allowed ONLY on the known-bad trial generation (that is
		// the detection signal); any other generation reading garbage is a
		// real failure.
		for gen, n := range h.GarbageByGen() {
			if gen != r.Gen() && n > 0 {
				t.Fatalf("%s: %d garbage reads on gen %d (only bad gen %d may read garbage)",
					h.Name, n, gen, r.Gen())
			}
		}
		canaryGarbage += hl.Garbage
	}
	if canaryGarbage == 0 {
		t.Fatal("no canary read garbage; what triggered the rollback?")
	}
	// Non-canary hosts (second host per model, indexes 6..11) never saw the
	// trial: zero garbage, zero disruption.
	for _, h := range hosts[6:] {
		if hl := h.Health(); hl.Garbage != 0 {
			t.Fatalf("non-canary %s read garbage: %+v", h.Name, hl)
		}
	}
	// Exactly-once conservation holds fleet-wide after a final drain.
	pump(t, hosts, 8)
	for _, h := range hosts {
		hl := h.Health()
		if hl.Accepted != hl.Delivered || h.PendingCount() != 0 {
			t.Fatalf("%s: conservation broken after rollback: %+v pending %d", h.Name, hl, h.PendingCount())
		}
		if hl.OrderViolations != 0 {
			t.Fatalf("%s: order violation: %s", h.Name, hl.Detail)
		}
	}
	// A follow-up good rollout proceeds from the rolled-back state.
	r2, err := c.StartRollout(Upgrade{Name: "retry-good"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Run(func() { pump(t, hosts, 8) }); err != nil {
		t.Fatalf("post-rollback rollout failed: %v", err)
	}
}

// TestLeaseRevertOnControllerSilence: a host whose controller vanishes
// mid-trial reverts to last-known-good when the lease expires and keeps
// serving cleanly.
func TestLeaseRevertOnControllerSilence(t *testing.T) {
	c, hosts, links, clk := newTestFleet(t, 6, Options{LeaseNs: 10_000, BakeTarget: 8})
	c.Inventory()
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	r, err := c.StartRollout(Upgrade{Name: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(); err != nil { // canary applies
		t.Fatal(err)
	}
	if c.Phase() != PhaseBake {
		t.Fatalf("phase = %s", c.Phase())
	}
	// Controller goes silent: partition every link, outlive the lease.
	for _, l := range links {
		l.Partition()
	}
	clk.Advance(20_000)
	pump(t, hosts, 16) // hosts keep serving; tick reverts expired trials
	reverts := uint64(0)
	for _, h := range hosts {
		hl := h.Health()
		if hl.Trial {
			t.Fatalf("%s trial survived its lease", h.Name)
		}
		if hl.Gen != h.CommittedGeneration() {
			t.Fatalf("%s serving gen %d but LKG is %d", h.Name, hl.Gen, h.CommittedGeneration())
		}
		reverts += hl.LeaseReverts
	}
	if reverts == 0 {
		t.Fatal("no lease reverts recorded")
	}
	requireClean(t, hosts)
	// The controller, once healed, observes the revert and rolls back.
	for _, l := range links {
		l.Heal()
	}
	if err := r.Step(); err == nil {
		t.Fatal("bake over lease-reverted canaries must roll the rollout back")
	}
	if c.Phase() != PhaseRolledBack {
		t.Fatalf("phase = %s", c.Phase())
	}
}

// TestRPCRetryAgainstFlappingLink: a flapping link (fails first attempts)
// is survived by the bounded backoff, and a dead link surfaces ErrDeadline
// after the attempt budget.
func TestRPCRetryAgainstFlappingLink(t *testing.T) {
	c, _, links, _ := newTestFleet(t, 2, Options{})
	links[0].FailNext(2) // third attempt succeeds, within the default 4
	rep := c.Inventory()
	if rep.Healthy != 2 {
		t.Fatalf("flapping link not retried through: %+v", rep)
	}
	calls, timeouts := links[0].Stats()
	if timeouts != 2 || calls < 3 {
		t.Fatalf("link stats calls=%d timeouts=%d, want 2 timeouts then success", calls, timeouts)
	}

	links[1].Partition()
	rep = c.Inventory()
	if rep.Healthy != 1 || len(rep.Quarantined) != 1 {
		t.Fatalf("dead link host not quarantined: %+v", rep)
	}
	if !strings.Contains(rep.Quarantined[0].Reason, "unreachable") {
		t.Fatalf("reason = %q", rep.Quarantined[0].Reason)
	}
}

// TestTranscript: the operator log narrates quarantine, canary, rollback.
func TestTranscript(t *testing.T) {
	c, hosts, _, _ := newTestFleet(t, 6, Options{BakeTarget: 8})
	hosts[1].SetDescribeMutator(func(d *Description) { d.Digest = "lie" })
	c.Inventory()
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	bad := Upgrade{Name: "bad-push", Descriptions: map[string]string{}}
	for _, m := range nic.All() {
		src, err := SwapSemantics(m.Source, "ip_checksum", "pkt_len")
		if err != nil {
			t.Fatal(err)
		}
		bad.Descriptions[m.Name] = src
	}
	r, err := c.StartRollout(bad)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(func() { pump(t, hosts, 8) })
	log := strings.Join(c.Transcript(), "\n")
	for _, want := range []string{"quarantine", "digest mismatch", "inventory:", "provision gen",
		"rollout \"bad-push\"", "oracle violation", "rolled back", "last-known-good"} {
		if !strings.Contains(log, want) {
			t.Errorf("transcript lacks %q:\n%s", want, log)
		}
	}
}
