package fleet

import (
	"fmt"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/fleet/telemetry"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/obs"
	"opendesc/internal/obs/flight"
	"opendesc/internal/retry"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/vclock"
)

// HostOptions tunes one simulated fleet host.
type HostOptions struct {
	// RingEntries sizes the completion ring (default 256).
	RingEntries int
	// FlightEntries sizes the host flight-recorder ring (default 1024;
	// ~40 KB per host — telemetry reports are built from it).
	FlightEntries int
	// Clock is the host's timeline (trial leases are measured on it);
	// nil selects the wall clock.
	Clock vclock.Clock
	// BootSemantics is the intent the host self-provisions at boot, before
	// any controller has reached it (default pkt_len — satisfiable on every
	// description). Whatever the controller later provisions or promotes
	// replaces it as the last-known-good layout.
	BootSemantics []string
}

func (o HostOptions) withDefaults() HostOptions {
	if o.RingEntries <= 0 {
		o.RingEntries = 256
	}
	if o.FlightEntries <= 0 {
		o.FlightEntries = 1024
	}
	if o.Clock == nil {
		o.Clock = vclock.Wall()
	}
	if len(o.BootSemantics) == 0 {
		o.BootSemantics = []string{"pkt_len"}
	}
	return o
}

// Per-delivery service cost model, charged to the host's (virtual) clock
// and observed into the serving layout's latency histogram. The constants
// mirror the measured shape of the real datapath — a fixed poll/validate
// base plus per-accessor reads, where a SoftNIC shim fallback costs an
// order of magnitude more than a synthesized hardware read (E4/E11). They
// exist so p99 poll→deliver latency is a *deterministic* function of the
// layout: a tampered description that silently demotes hardware reads to
// shims shifts the histogram by whole log2 buckets, which is exactly the
// signal the evidence bake gates on.
const (
	deliverBaseNs = 40
	hwReadNs      = 15
	softReadNs    = 440
)

// goldenFuncs is the per-semantic ground truth the embedded oracle can
// check a delivery against: pure functions of the packet bytes (the same
// S23 golden-metadata family the chaos harness uses). Environment-derived
// semantics (timestamp, queue id, mark) are excluded — their truth lives
// in the device, not the packet.
func goldenFuncs() map[semantics.Name]codegen.SoftFunc {
	funcs := softnic.Funcs()
	g := map[semantics.Name]codegen.SoftFunc{
		semantics.PktLen: func(p []byte) uint64 { return uint64(len(p)) },
	}
	for _, s := range []semantics.Name{
		semantics.RSS, semantics.VLAN, semantics.FlowID, semantics.TunnelID,
		semantics.IPChecksum, semantics.PType,
	} {
		if f, ok := funcs[s]; ok {
			g[s] = f
		}
	}
	return g
}

// goldenCheck is one oracle probe compiled into a layout: read the
// semantic through the layout's accessor and compare against ground truth
// under the accessor's width.
type goldenCheck struct {
	sem  semantics.Name
	fn   codegen.SoftFunc
	mask uint64
}

// layout is one installed interface generation: the compiled result, its
// executable accessors, the oracle probes derived from both, the modelled
// per-delivery service cost, and the latency histogram deliveries under it
// feed (the telemetry report's deliver_ns series).
type layout struct {
	gen    uint64
	res    *core.Result
	rt     *codegen.Runtime
	checks []goldenCheck
	costNs uint64
	hist   *obs.Histogram
}

func newLayout(gen uint64, res *core.Result, golden map[semantics.Name]codegen.SoftFunc) *layout {
	l := &layout{gen: gen, res: res, rt: codegen.NewRuntime(res, softnic.Funcs()), hist: obs.NewHistogram()}
	l.costNs = deliverBaseNs
	for _, a := range res.Accessors {
		if a.Hardware {
			l.costNs += hwReadNs
		} else {
			l.costNs += softReadNs
		}
		fn, ok := golden[a.Semantic]
		if !ok {
			continue
		}
		mask := ^uint64(0)
		if a.Hardware && a.WidthBits > 0 && a.WidthBits < 64 {
			mask = (1 << a.WidthBits) - 1
		}
		l.checks = append(l.checks, goldenCheck{sem: a.Semantic, fn: fn, mask: mask})
	}
	return l
}

// parkedPkt is a completion consumed during a drain, held for delivery
// under the layout it was serialized for.
type parkedPkt struct {
	pkt  []byte
	cmpt []byte
	lay  *layout
	rxNs uint64
}

// Health is the host's self-reported canary health: the S23 invariant
// oracles, embedded in the datapath, are the health check.
type Health struct {
	// Gen is the serving generation; Trial reports an uncommitted trial.
	Gen   uint64
	Trial bool
	// Accepted/Delivered are cumulative exactly-once conservation counts.
	Accepted  uint64
	Delivered uint64
	// Garbage counts golden-metadata oracle violations (reads that
	// disagreed with the SoftNIC ground truth) and OrderViolations
	// exactly-once/FIFO breaks. Detail describes the first violation.
	Garbage         uint64
	OrderViolations uint64
	Detail          string
	// LeaseReverts counts trials the host unilaterally rolled back to its
	// last-known-good layout after the controller went silent.
	LeaseReverts uint64
}

// Host is one simulated fleet member: a NIC device, a serving layout, and
// the control surface a controller drives over its Link. Hosts are
// single-threaded by the chaos discipline (the scheduler interleaves,
// never overlaps, operations); the data plane (Rx/Poll) works regardless
// of control-plane reachability — a partitioned host keeps serving on its
// last-known-good layout.
type Host struct {
	Name  string
	Model *nic.Model

	dev    *nicsim.Device
	clk    vclock.Clock
	golden map[semantics.Name]codegen.SoftFunc

	// lkg is the last-known-good layout: the newest committed generation.
	// trial is an uncommitted rollout generation being baked; it serves
	// until commit (promote), abort (rollback), or lease expiry (controller
	// silence), whichever comes first — expiry reverts to lkg.
	lkg         *layout
	trial       *layout
	trialExpiry uint64

	pending []pendingPkt
	parked  []parkedPkt
	fifo    [][]byte // arrival order, exactly-once by slice identity

	accepted, delivered, rejected uint64
	garbage, orderViol            uint64
	garbageByGen                  map[uint64]uint64
	detail                        string
	leaseReverts                  uint64
	applyRetries                  uint64

	// rec/fq are the host flight recorder and its event ring: anomaly
	// events the telemetry report carries verbatim, sampled routine
	// lifecycle events, and control-plane transitions — all stamped with
	// the host's (virtual) clock so fleet traces share one timeline.
	rec   *flight.Recorder
	fq    *flight.Queue
	rxSeq uint32

	telemetrySeq    uint64
	describeMutator func(*Description)
	// telemetryMutator models a host shipping forged telemetry (the
	// reports re-seal, so only the controller's counter cross-check can
	// catch them).
	telemetryMutator func(*telemetry.Report)
}

type pendingPkt struct {
	pkt  []byte
	gen  uint64
	rxNs uint64
}

// NewHost boots a host: device from the bundled model, self-provisioned
// boot layout compiled locally (a NIC is serviceable before any controller
// finds it).
func NewHost(name string, m *nic.Model, opts HostOptions) (*Host, error) {
	opts = opts.withDefaults()
	dev, err := nicsim.New(m, nicsim.Config{RingEntries: opts.RingEntries})
	if err != nil {
		return nil, err
	}
	rec := flight.NewRecorder(flight.Config{Size: opts.FlightEntries})
	h := &Host{
		Name:         name,
		Model:        m,
		dev:          dev,
		clk:          opts.Clock,
		golden:       goldenFuncs(),
		garbageByGen: make(map[uint64]uint64),
		rec:          rec,
		fq:           rec.Queue(name),
	}
	names := make([]semantics.Name, len(opts.BootSemantics))
	for i, s := range opts.BootSemantics {
		names[i] = semantics.Name(s)
	}
	intent, err := core.IntentFromSemantics("boot", semantics.Default, names...)
	if err != nil {
		return nil, err
	}
	res, err := m.Compile(intent, core.CompileOptions{})
	if err != nil {
		return nil, fmt.Errorf("fleet host %s: boot compile: %w", name, err)
	}
	if err := h.applyConfig(res.Config); err != nil {
		return nil, fmt.Errorf("fleet host %s: boot apply: %w", name, err)
	}
	h.lkg = newLayout(0, res, h.golden)
	return h, nil
}

// Describe answers the discovery handshake. The optional mutator models a
// rogue or corrupted publisher (quarantine-path coverage in tests and the
// demo); an honest host publishes exactly its model.
func (h *Host) Describe() (*Description, error) {
	d, err := Describe(h.Model, h.Name)
	if err != nil {
		return nil, err
	}
	if h.describeMutator != nil {
		h.describeMutator(d)
	}
	return d, nil
}

// SetDescribeMutator installs the rogue-publisher hook.
func (h *Host) SetDescribeMutator(fn func(*Description)) { h.describeMutator = fn }

// active returns the serving layout: the trial while one is baking, the
// last-known-good otherwise.
func (h *Host) active() *layout {
	if h.trial != nil {
		return h.trial
	}
	return h.lkg
}

// Generation reports the serving generation.
func (h *Host) Generation() uint64 { return h.active().gen }

// CommittedGeneration reports the last-known-good generation.
func (h *Host) CommittedGeneration() uint64 { return h.lkg.gen }

// tick enforces the trial lease: a trial the controller neither committed
// nor aborted within its lease (partition, crash, mid-rollout abort lost
// in transit) is unilaterally reverted — the host degrades to its
// last-known-good layout rather than serving an unproven interface
// indefinitely.
func (h *Host) tick() {
	if h.trial != nil && h.clk.Now() >= h.trialExpiry {
		if h.revertToLKG() == nil {
			h.leaseReverts++
		}
	}
}

// Rx offers one packet to the device; false means ring backpressure.
func (h *Host) Rx(pkt []byte) bool {
	h.tick()
	h.rxSeq++
	now := h.clk.Now()
	if !h.dev.RxPacket(pkt) {
		h.rejected++
		h.fq.RecordT(now, flight.EvRingFull, h.rxSeq, uint64(len(h.pending)), 0)
		return false
	}
	h.pending = append(h.pending, pendingPkt{pkt: pkt, gen: h.active().gen, rxNs: now})
	h.fifo = append(h.fifo, pkt)
	h.accepted++
	if flight.Sampled(h.rxSeq) {
		h.fq.RecordT(now, flight.EvRingPush, h.rxSeq, uint64(len(h.pending)), 0)
	}
	return true
}

// Poll delivers available completions, running the embedded oracles on
// every delivery. Returns the number delivered.
func (h *Host) Poll() int {
	h.tick()
	n := 0
	for _, d := range h.parked {
		h.deliver(d.pkt, d.cmpt, d.lay, d.rxNs)
		n++
	}
	h.parked = h.parked[:0]
	lay := h.active()
	for len(h.pending) > 0 {
		p := h.pending[0]
		if !h.dev.CmptRing.Consume(func(cmpt []byte) {
			h.deliver(p.pkt, cmpt, lay, p.rxNs)
		}) {
			break
		}
		h.pending = h.pending[1:]
		n++
	}
	return n
}

// deliver checks one delivery against the S23 oracle family: exactly-once
// in order (FIFO, by slice identity) and golden metadata (every checkable
// read equals the SoftNIC ground truth under the accessor's width). The
// layout's modelled service cost is charged to the host clock and observed
// into its latency histogram; oracle violations are recorded as flight
// anomalies so telemetry reports can cite them verbatim.
//
// EvDeliver rides the flight sampling grid (plus every anomalous delivery):
// the latency evidence the controller gates on is the always-on per-packet
// histogram, so sampling only thins the verbatim exhibit events — and keeps
// the telemetry instrumentation tax inside the recorder's 5% hot-path
// budget (E21 measures and enforces it).
func (h *Host) deliver(pkt, cmpt []byte, lay *layout, rxNs uint64) {
	pollNs := h.clk.Now()
	h.clk.Advance(lay.costNs)
	now := h.clk.Now()
	seq := uint32(h.delivered + 1)
	anomalous := false
	if len(h.fifo) == 0 || &h.fifo[0][0] != &pkt[0] {
		h.orderViol++
		anomalous = true
		h.note(fmt.Sprintf("gen %d: delivery out of order or duplicated", lay.gen))
		h.fq.RecordT(now, flight.EvOrderViol, seq, 0, lay.gen)
	} else {
		h.fifo = h.fifo[1:]
	}
	for _, c := range lay.checks {
		got, err := lay.rt.Read(c.sem, cmpt, pkt)
		if err != nil {
			continue
		}
		if want := c.fn(pkt) & c.mask; got != want {
			h.garbage++
			h.garbageByGen[lay.gen]++
			anomalous = true
			h.note(fmt.Sprintf("gen %d: read %s = %#x, ground truth %#x", lay.gen, c.sem, got, want))
			h.fq.RecordT(now, flight.EvGarbage, seq, flight.PackName(string(c.sem)), lay.gen)
		}
	}
	h.delivered++
	lay.hist.Observe(lay.costNs)
	if anomalous || flight.Sampled(seq) {
		var pollLat uint64
		if rxNs > 0 && pollNs > rxNs {
			pollLat = pollNs - rxNs
		}
		h.fq.RecordT(now, flight.EvDeliver, seq, pollLat, pollLat+lay.costNs)
	}
}

func (h *Host) note(detail string) {
	if h.detail == "" {
		h.detail = detail
	}
}

// drain consumes every completion still in the ring under the given
// layout, parking deliveries so no in-flight packet crosses a
// reconfiguration boundary (the evolve switchover discipline).
func (h *Host) drain(lay *layout) {
	for len(h.pending) > 0 {
		p := h.pending[0]
		if !h.dev.CmptRing.Consume(func(cmpt []byte) {
			h.parked = append(h.parked, parkedPkt{pkt: p.pkt, cmpt: append([]byte(nil), cmpt...), lay: lay, rxNs: p.rxNs})
		}) {
			break
		}
		h.pending = h.pending[1:]
	}
}

// applyConfig programs the device with the shared bounded-retry policy
// (the control channel of a real device may NAK bursts; the simulated one
// only does under fault injection, but the discipline is uniform).
func (h *Host) applyConfig(cfg []core.Constraint) error {
	return retry.Policy{
		OnError: func(int, error) { h.applyRetries++ },
	}.Do(func() error { return h.dev.ApplyConfig(cfg) })
}

// ApplyTrial installs an uncommitted rollout generation: drain under the
// current layout, program the device, verify the active path, then serve
// on the trial under a lease. On any failure the previous configuration is
// restored and the host stays on its current layout.
func (h *Host) ApplyTrial(gen uint64, res *core.Result, leaseNs uint64) error {
	h.tick()
	if h.trial != nil {
		return fmt.Errorf("fleet host %s: trial gen %d still open", h.Name, h.trial.gen)
	}
	cur := h.active()
	h.drain(cur)
	if err := h.applyConfig(res.Config); err != nil {
		h.applyConfig(cur.res.Config) // best-effort restore; ApplyConfig is atomic
		return fmt.Errorf("fleet host %s: apply gen %d: %w", h.Name, gen, err)
	}
	if ap, err := h.dev.ActivePath(); err != nil || ap.ID != res.Selected.Path.ID {
		h.applyConfig(cur.res.Config)
		if err == nil {
			err = fmt.Errorf("device resolved path %d, want %d", ap.ID, res.Selected.Path.ID)
		}
		return fmt.Errorf("fleet host %s: verify gen %d: %w", h.Name, gen, err)
	}
	now := h.clk.Now()
	h.fq.RecordT(now, flight.EvApply, uint32(gen), 0, gen)
	h.fq.RecordT(now, flight.EvVerify, uint32(gen), 0, gen)
	h.trial = newLayout(gen, res, h.golden)
	h.trialExpiry = now + leaseNs
	return nil
}

// Commit promotes the trial to last-known-good (no reconfiguration: the
// trial is already serving).
func (h *Host) Commit(gen uint64) error {
	h.tick()
	if h.trial == nil || h.trial.gen != gen {
		return fmt.Errorf("fleet host %s: no open trial for gen %d", h.Name, gen)
	}
	h.fq.RecordT(h.clk.Now(), flight.EvSwap, uint32(gen), 0, gen)
	h.lkg = h.trial
	h.trial = nil
	h.trialExpiry = 0
	return nil
}

// Abort rolls the trial back to the last-known-good layout. Aborting a
// trial that already lease-reverted (or never applied) succeeds as a
// no-op: the rollback goal state is already true.
func (h *Host) Abort(gen uint64) error {
	h.tick()
	if h.trial == nil || h.trial.gen != gen {
		return nil
	}
	return h.revertToLKG()
}

// revertToLKG drains in-flight traffic under the trial, restores the
// last-known-good configuration, and drops the trial.
func (h *Host) revertToLKG() error {
	gen := h.trial.gen
	h.drain(h.trial)
	if err := h.applyConfig(h.lkg.res.Config); err != nil {
		return fmt.Errorf("fleet host %s: revert: %w", h.Name, err)
	}
	h.fq.RecordT(h.clk.Now(), flight.EvRollback, uint32(gen), 0, gen)
	h.trial = nil
	h.trialExpiry = 0
	return nil
}

// Health reports the embedded-oracle counters (the canary health check).
// Like every control RPC it first enforces the lease, so a host whose
// trial expired reports itself back on last-known-good.
func (h *Host) Health() Health {
	h.tick()
	return Health{
		Gen:             h.active().gen,
		Trial:           h.trial != nil,
		Accepted:        h.accepted,
		Delivered:       h.delivered,
		Garbage:         h.garbage,
		OrderViolations: h.orderViol,
		Detail:          h.detail,
		LeaseReverts:    h.leaseReverts,
	}
}

// GarbageByGen exposes per-generation golden-oracle violation counts, so a
// harness can attribute garbage to the (known-bad) trial generation that
// produced it and flag anything else as a real failure.
func (h *Host) GarbageByGen() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(h.garbageByGen))
	for g, n := range h.garbageByGen {
		out[g] = n
	}
	return out
}

// TelemetryReport builds the host's next telemetry report: cumulative
// counters, the serving layout's latency histogram, and the flight-ring
// evidence (anomalies verbatim, slowest deliveries as exhibits). Seq is
// monotonic per host; the controller rejects non-advancing sequences.
func (h *Host) TelemetryReport() *telemetry.Report {
	h.tick()
	h.telemetrySeq++
	lay := h.active()
	anoms, slowest, trunc := telemetry.FromFlight(h.rec.Snapshot(), 0)
	r := &telemetry.Report{
		Host:  h.Name,
		NIC:   h.Model.Name,
		Seq:   h.telemetrySeq,
		NowNs: h.clk.Now(),
		Gen:   lay.gen,
		Trial: h.trial != nil,
		Counters: telemetry.Counters{
			Accepted:        h.accepted,
			Delivered:       h.delivered,
			Garbage:         h.garbage,
			OrderViolations: h.orderViol,
			LeaseReverts:    h.leaseReverts,
		},
		Deliver:   lay.hist.Snapshot(),
		Anomalies: anoms,
		Truncated: trunc,
		Slowest:   slowest,
	}
	if h.telemetryMutator != nil {
		h.telemetryMutator(r)
	}
	return r
}

// Telemetry builds, seals, and serializes the next report — what actually
// crosses the Link. A mutated (forged) report re-seals with a valid digest:
// integrity checks pass and only the controller's counter cross-check can
// expose it, which is the point.
func (h *Host) Telemetry() ([]byte, error) {
	r := h.TelemetryReport()
	b, err := r.Encode()
	if err != nil {
		return nil, fmt.Errorf("fleet host %s: telemetry: %w", h.Name, err)
	}
	h.fq.RecordT(h.clk.Now(), flight.EvTelemetry, uint32(r.Seq), uint64(len(b)), 0)
	return b, nil
}

// SetTelemetryMutator installs the forged-telemetry hook (chaos and test
// coverage for the controller's cross-check).
func (h *Host) SetTelemetryMutator(fn func(*telemetry.Report)) { h.telemetryMutator = fn }

// FlightRecorder exposes the host's flight recorder (snapshotting for
// merged fleet traces, A/B enable toggling in benchmarks).
func (h *Host) FlightRecorder() *flight.Recorder { return h.rec }

// FlightSnapshot copies the host's full flight ring.
func (h *Host) FlightSnapshot() *flight.Snapshot { return h.rec.Snapshot() }

// DeliverCostNs reports the serving layout's modelled per-delivery service
// cost (deterministic; tests and experiments pin budgets against it).
func (h *Host) DeliverCostNs() uint64 { return h.active().costNs }

// PendingCount reports packets accepted but not yet delivered.
func (h *Host) PendingCount() int { return len(h.pending) + len(h.parked) }

// Rejected reports ring-backpressure rejections.
func (h *Host) Rejected() uint64 { return h.rejected }

// ApplyRetries reports NAKed/retried config bursts (zero without faults).
func (h *Host) ApplyRetries() uint64 { return h.applyRetries }
