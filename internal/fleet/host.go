package fleet

import (
	"fmt"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/retry"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/vclock"
)

// HostOptions tunes one simulated fleet host.
type HostOptions struct {
	// RingEntries sizes the completion ring (default 256).
	RingEntries int
	// Clock is the host's timeline (trial leases are measured on it);
	// nil selects the wall clock.
	Clock vclock.Clock
	// BootSemantics is the intent the host self-provisions at boot, before
	// any controller has reached it (default pkt_len — satisfiable on every
	// description). Whatever the controller later provisions or promotes
	// replaces it as the last-known-good layout.
	BootSemantics []string
}

func (o HostOptions) withDefaults() HostOptions {
	if o.RingEntries <= 0 {
		o.RingEntries = 256
	}
	if o.Clock == nil {
		o.Clock = vclock.Wall()
	}
	if len(o.BootSemantics) == 0 {
		o.BootSemantics = []string{"pkt_len"}
	}
	return o
}

// goldenFuncs is the per-semantic ground truth the embedded oracle can
// check a delivery against: pure functions of the packet bytes (the same
// S23 golden-metadata family the chaos harness uses). Environment-derived
// semantics (timestamp, queue id, mark) are excluded — their truth lives
// in the device, not the packet.
func goldenFuncs() map[semantics.Name]codegen.SoftFunc {
	funcs := softnic.Funcs()
	g := map[semantics.Name]codegen.SoftFunc{
		semantics.PktLen: func(p []byte) uint64 { return uint64(len(p)) },
	}
	for _, s := range []semantics.Name{
		semantics.RSS, semantics.VLAN, semantics.FlowID, semantics.TunnelID,
		semantics.IPChecksum, semantics.PType,
	} {
		if f, ok := funcs[s]; ok {
			g[s] = f
		}
	}
	return g
}

// goldenCheck is one oracle probe compiled into a layout: read the
// semantic through the layout's accessor and compare against ground truth
// under the accessor's width.
type goldenCheck struct {
	sem  semantics.Name
	fn   codegen.SoftFunc
	mask uint64
}

// layout is one installed interface generation: the compiled result, its
// executable accessors, and the oracle probes derived from both.
type layout struct {
	gen    uint64
	res    *core.Result
	rt     *codegen.Runtime
	checks []goldenCheck
}

func newLayout(gen uint64, res *core.Result, golden map[semantics.Name]codegen.SoftFunc) *layout {
	l := &layout{gen: gen, res: res, rt: codegen.NewRuntime(res, softnic.Funcs())}
	for _, a := range res.Accessors {
		fn, ok := golden[a.Semantic]
		if !ok {
			continue
		}
		mask := ^uint64(0)
		if a.Hardware && a.WidthBits > 0 && a.WidthBits < 64 {
			mask = (1 << a.WidthBits) - 1
		}
		l.checks = append(l.checks, goldenCheck{sem: a.Semantic, fn: fn, mask: mask})
	}
	return l
}

// parkedPkt is a completion consumed during a drain, held for delivery
// under the layout it was serialized for.
type parkedPkt struct {
	pkt  []byte
	cmpt []byte
	lay  *layout
}

// Health is the host's self-reported canary health: the S23 invariant
// oracles, embedded in the datapath, are the health check.
type Health struct {
	// Gen is the serving generation; Trial reports an uncommitted trial.
	Gen   uint64
	Trial bool
	// Accepted/Delivered are cumulative exactly-once conservation counts.
	Accepted  uint64
	Delivered uint64
	// Garbage counts golden-metadata oracle violations (reads that
	// disagreed with the SoftNIC ground truth) and OrderViolations
	// exactly-once/FIFO breaks. Detail describes the first violation.
	Garbage         uint64
	OrderViolations uint64
	Detail          string
	// LeaseReverts counts trials the host unilaterally rolled back to its
	// last-known-good layout after the controller went silent.
	LeaseReverts uint64
}

// Host is one simulated fleet member: a NIC device, a serving layout, and
// the control surface a controller drives over its Link. Hosts are
// single-threaded by the chaos discipline (the scheduler interleaves,
// never overlaps, operations); the data plane (Rx/Poll) works regardless
// of control-plane reachability — a partitioned host keeps serving on its
// last-known-good layout.
type Host struct {
	Name  string
	Model *nic.Model

	dev    *nicsim.Device
	clk    vclock.Clock
	golden map[semantics.Name]codegen.SoftFunc

	// lkg is the last-known-good layout: the newest committed generation.
	// trial is an uncommitted rollout generation being baked; it serves
	// until commit (promote), abort (rollback), or lease expiry (controller
	// silence), whichever comes first — expiry reverts to lkg.
	lkg         *layout
	trial       *layout
	trialExpiry uint64

	pending []pendingPkt
	parked  []parkedPkt
	fifo    [][]byte // arrival order, exactly-once by slice identity

	accepted, delivered, rejected uint64
	garbage, orderViol            uint64
	garbageByGen                  map[uint64]uint64
	detail                        string
	leaseReverts                  uint64
	applyRetries                  uint64

	describeMutator func(*Description)
}

type pendingPkt struct {
	pkt []byte
	gen uint64
}

// NewHost boots a host: device from the bundled model, self-provisioned
// boot layout compiled locally (a NIC is serviceable before any controller
// finds it).
func NewHost(name string, m *nic.Model, opts HostOptions) (*Host, error) {
	opts = opts.withDefaults()
	dev, err := nicsim.New(m, nicsim.Config{RingEntries: opts.RingEntries})
	if err != nil {
		return nil, err
	}
	h := &Host{
		Name:         name,
		Model:        m,
		dev:          dev,
		clk:          opts.Clock,
		golden:       goldenFuncs(),
		garbageByGen: make(map[uint64]uint64),
	}
	names := make([]semantics.Name, len(opts.BootSemantics))
	for i, s := range opts.BootSemantics {
		names[i] = semantics.Name(s)
	}
	intent, err := core.IntentFromSemantics("boot", semantics.Default, names...)
	if err != nil {
		return nil, err
	}
	res, err := m.Compile(intent, core.CompileOptions{})
	if err != nil {
		return nil, fmt.Errorf("fleet host %s: boot compile: %w", name, err)
	}
	if err := h.applyConfig(res.Config); err != nil {
		return nil, fmt.Errorf("fleet host %s: boot apply: %w", name, err)
	}
	h.lkg = newLayout(0, res, h.golden)
	return h, nil
}

// Describe answers the discovery handshake. The optional mutator models a
// rogue or corrupted publisher (quarantine-path coverage in tests and the
// demo); an honest host publishes exactly its model.
func (h *Host) Describe() (*Description, error) {
	d, err := Describe(h.Model, h.Name)
	if err != nil {
		return nil, err
	}
	if h.describeMutator != nil {
		h.describeMutator(d)
	}
	return d, nil
}

// SetDescribeMutator installs the rogue-publisher hook.
func (h *Host) SetDescribeMutator(fn func(*Description)) { h.describeMutator = fn }

// active returns the serving layout: the trial while one is baking, the
// last-known-good otherwise.
func (h *Host) active() *layout {
	if h.trial != nil {
		return h.trial
	}
	return h.lkg
}

// Generation reports the serving generation.
func (h *Host) Generation() uint64 { return h.active().gen }

// CommittedGeneration reports the last-known-good generation.
func (h *Host) CommittedGeneration() uint64 { return h.lkg.gen }

// tick enforces the trial lease: a trial the controller neither committed
// nor aborted within its lease (partition, crash, mid-rollout abort lost
// in transit) is unilaterally reverted — the host degrades to its
// last-known-good layout rather than serving an unproven interface
// indefinitely.
func (h *Host) tick() {
	if h.trial != nil && h.clk.Now() >= h.trialExpiry {
		if h.revertToLKG() == nil {
			h.leaseReverts++
		}
	}
}

// Rx offers one packet to the device; false means ring backpressure.
func (h *Host) Rx(pkt []byte) bool {
	h.tick()
	if !h.dev.RxPacket(pkt) {
		h.rejected++
		return false
	}
	h.pending = append(h.pending, pendingPkt{pkt: pkt, gen: h.active().gen})
	h.fifo = append(h.fifo, pkt)
	h.accepted++
	return true
}

// Poll delivers available completions, running the embedded oracles on
// every delivery. Returns the number delivered.
func (h *Host) Poll() int {
	h.tick()
	n := 0
	for _, d := range h.parked {
		h.deliver(d.pkt, d.cmpt, d.lay)
		n++
	}
	h.parked = h.parked[:0]
	lay := h.active()
	for len(h.pending) > 0 {
		p := h.pending[0]
		if !h.dev.CmptRing.Consume(func(cmpt []byte) {
			h.deliver(p.pkt, cmpt, lay)
		}) {
			break
		}
		h.pending = h.pending[1:]
		n++
	}
	return n
}

// deliver checks one delivery against the S23 oracle family: exactly-once
// in order (FIFO, by slice identity) and golden metadata (every checkable
// read equals the SoftNIC ground truth under the accessor's width).
func (h *Host) deliver(pkt, cmpt []byte, lay *layout) {
	if len(h.fifo) == 0 || &h.fifo[0][0] != &pkt[0] {
		h.orderViol++
		h.note(fmt.Sprintf("gen %d: delivery out of order or duplicated", lay.gen))
	} else {
		h.fifo = h.fifo[1:]
	}
	for _, c := range lay.checks {
		got, err := lay.rt.Read(c.sem, cmpt, pkt)
		if err != nil {
			continue
		}
		if want := c.fn(pkt) & c.mask; got != want {
			h.garbage++
			h.garbageByGen[lay.gen]++
			h.note(fmt.Sprintf("gen %d: read %s = %#x, ground truth %#x", lay.gen, c.sem, got, want))
		}
	}
	h.delivered++
}

func (h *Host) note(detail string) {
	if h.detail == "" {
		h.detail = detail
	}
}

// drain consumes every completion still in the ring under the given
// layout, parking deliveries so no in-flight packet crosses a
// reconfiguration boundary (the evolve switchover discipline).
func (h *Host) drain(lay *layout) {
	for len(h.pending) > 0 {
		p := h.pending[0]
		if !h.dev.CmptRing.Consume(func(cmpt []byte) {
			h.parked = append(h.parked, parkedPkt{pkt: p.pkt, cmpt: append([]byte(nil), cmpt...), lay: lay})
		}) {
			break
		}
		h.pending = h.pending[1:]
	}
}

// applyConfig programs the device with the shared bounded-retry policy
// (the control channel of a real device may NAK bursts; the simulated one
// only does under fault injection, but the discipline is uniform).
func (h *Host) applyConfig(cfg []core.Constraint) error {
	return retry.Policy{
		OnError: func(int, error) { h.applyRetries++ },
	}.Do(func() error { return h.dev.ApplyConfig(cfg) })
}

// ApplyTrial installs an uncommitted rollout generation: drain under the
// current layout, program the device, verify the active path, then serve
// on the trial under a lease. On any failure the previous configuration is
// restored and the host stays on its current layout.
func (h *Host) ApplyTrial(gen uint64, res *core.Result, leaseNs uint64) error {
	h.tick()
	if h.trial != nil {
		return fmt.Errorf("fleet host %s: trial gen %d still open", h.Name, h.trial.gen)
	}
	cur := h.active()
	h.drain(cur)
	if err := h.applyConfig(res.Config); err != nil {
		h.applyConfig(cur.res.Config) // best-effort restore; ApplyConfig is atomic
		return fmt.Errorf("fleet host %s: apply gen %d: %w", h.Name, gen, err)
	}
	if ap, err := h.dev.ActivePath(); err != nil || ap.ID != res.Selected.Path.ID {
		h.applyConfig(cur.res.Config)
		if err == nil {
			err = fmt.Errorf("device resolved path %d, want %d", ap.ID, res.Selected.Path.ID)
		}
		return fmt.Errorf("fleet host %s: verify gen %d: %w", h.Name, gen, err)
	}
	h.trial = newLayout(gen, res, h.golden)
	h.trialExpiry = h.clk.Now() + leaseNs
	return nil
}

// Commit promotes the trial to last-known-good (no reconfiguration: the
// trial is already serving).
func (h *Host) Commit(gen uint64) error {
	h.tick()
	if h.trial == nil || h.trial.gen != gen {
		return fmt.Errorf("fleet host %s: no open trial for gen %d", h.Name, gen)
	}
	h.lkg = h.trial
	h.trial = nil
	h.trialExpiry = 0
	return nil
}

// Abort rolls the trial back to the last-known-good layout. Aborting a
// trial that already lease-reverted (or never applied) succeeds as a
// no-op: the rollback goal state is already true.
func (h *Host) Abort(gen uint64) error {
	h.tick()
	if h.trial == nil || h.trial.gen != gen {
		return nil
	}
	return h.revertToLKG()
}

// revertToLKG drains in-flight traffic under the trial, restores the
// last-known-good configuration, and drops the trial.
func (h *Host) revertToLKG() error {
	h.drain(h.trial)
	if err := h.applyConfig(h.lkg.res.Config); err != nil {
		return fmt.Errorf("fleet host %s: revert: %w", h.Name, err)
	}
	h.trial = nil
	h.trialExpiry = 0
	return nil
}

// Health reports the embedded-oracle counters (the canary health check).
// Like every control RPC it first enforces the lease, so a host whose
// trial expired reports itself back on last-known-good.
func (h *Host) Health() Health {
	h.tick()
	return Health{
		Gen:             h.active().gen,
		Trial:           h.trial != nil,
		Accepted:        h.accepted,
		Delivered:       h.delivered,
		Garbage:         h.garbage,
		OrderViolations: h.orderViol,
		Detail:          h.detail,
		LeaseReverts:    h.leaseReverts,
	}
}

// GarbageByGen exposes per-generation golden-oracle violation counts, so a
// harness can attribute garbage to the (known-bad) trial generation that
// produced it and flag anything else as a real failure.
func (h *Host) GarbageByGen() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(h.garbageByGen))
	for g, n := range h.garbageByGen {
		out[g] = n
	}
	return out
}

// PendingCount reports packets accepted but not yet delivered.
func (h *Host) PendingCount() int { return len(h.pending) + len(h.parked) }

// Rejected reports ring-backpressure rejections.
func (h *Host) Rejected() uint64 { return h.rejected }

// ApplyRetries reports NAKed/retried config bursts (zero without faults).
func (h *Host) ApplyRetries() uint64 { return h.applyRetries }
