package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"

	"opendesc/internal/core"
	"opendesc/internal/diffverify"
	"opendesc/internal/fleet/telemetry"
	"opendesc/internal/obs"
	"opendesc/internal/retry"
	"opendesc/internal/semantics"
	"opendesc/internal/vclock"
)

// Phase is the rollout state machine position. One rollout runs at a time:
// inventory → canary → bake → promote, with rollback exiting from canary
// or bake.
type Phase int32

// Rollout phases.
const (
	PhaseIdle Phase = iota
	PhaseCanary
	PhaseBake
	PhasePromote
	PhasePromoted
	PhaseRolledBack
)

func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseCanary:
		return "canary"
	case PhaseBake:
		return "bake"
	case PhasePromote:
		return "promote"
	case PhasePromoted:
		return "promoted"
	case PhaseRolledBack:
		return "rolled-back"
	}
	return "?"
}

// Options tunes the controller.
type Options struct {
	// Clock is the controller's timeline (shared with hosts and links in
	// simulation); nil selects the wall clock.
	Clock vclock.Clock
	// Intent is the fleet-wide read set compiled for every description
	// (default rss + pkt_len; semantics a device cannot provide in hardware
	// compile to SoftNIC shims, so the intent is satisfiable fleet-wide).
	Intent []string
	// CompileOpts are passed through to every compile (part of the cache key).
	CompileOpts core.CompileOptions
	// RPCDeadlineNs bounds every control RPC (default 1ms virtual).
	RPCDeadlineNs uint64
	// Seed drives the retry jitter streams deterministically.
	Seed uint64
	// LeaseNs is the trial lease granted with every ApplyTrial: a host whose
	// controller goes silent for this long unilaterally reverts to its
	// last-known-good layout (default 30s virtual).
	LeaseNs uint64
	// BakeTarget is how many deliveries every canary must serve under the
	// trial, violation-free, before promotion (default 64).
	BakeTarget uint64
	// CacheCapacity bounds the compile cache (default 64).
	CacheCapacity int
	// TelemetryDeadlineNs bounds payload-carrying telemetry transfers, which
	// need more headroom than small control RPCs (default 8× RPCDeadlineNs).
	TelemetryDeadlineNs uint64
	// DisableEvidenceBake reverts canary verdicts to Health counters alone —
	// the pre-telemetry behavior, kept for A/B efficacy experiments. A trial
	// that degrades latency but still delivers correct metadata promotes
	// under counter bakes; only flight evidence catches it.
	DisableEvidenceBake bool
	// LatencyBudgetFactor and LatencyBudgetSlackNs set the evidence-bake
	// latency gate: a canary promotes only if its trial p99 poll→deliver
	// latency is ≤ baseline p99 × factor + slack. The slack absorbs log2
	// bucket quantization around small baselines (defaults 4 and 256ns).
	LatencyBudgetFactor  uint64
	LatencyBudgetSlackNs uint64
	// DisableVerify skips the S27 differential-verification gate: structural
	// validation alone admits a description, as before the gate existed. Kept
	// as an ablation — with it set, a description whose views disagree (or
	// that the harness cannot certify at all) provisions onto hosts and only
	// the canary bake can catch the damage downstream.
	DisableVerify bool
}

func (o Options) withDefaults() Options {
	if o.Clock == nil {
		o.Clock = vclock.Wall()
	}
	if len(o.Intent) == 0 {
		o.Intent = []string{"rss", "pkt_len"}
	}
	if o.RPCDeadlineNs == 0 {
		o.RPCDeadlineNs = 1_000_000
	}
	if o.LeaseNs == 0 {
		o.LeaseNs = 30_000_000_000
	}
	if o.BakeTarget == 0 {
		o.BakeTarget = 64
	}
	if o.TelemetryDeadlineNs == 0 {
		o.TelemetryDeadlineNs = 8 * o.RPCDeadlineNs
	}
	if o.LatencyBudgetFactor == 0 {
		o.LatencyBudgetFactor = 4
	}
	if o.LatencyBudgetSlackNs == 0 {
		o.LatencyBudgetSlackNs = 256
	}
	return o
}

// member is the controller's view of one host.
type member struct {
	host *Host
	link *Link

	ok     bool
	reason string // quarantine reason when !ok
	digest string // recomputed content address of the host's description
	val    *Validated
	// lastSeq is the highest telemetry report sequence accepted from this
	// host; non-advancing sequences are replays and are rejected.
	lastSeq uint64
}

// QuarantinedHost is one operator-visible quarantine record.
type QuarantinedHost struct {
	Host   string
	Reason string
}

// InventoryReport summarizes one discovery sweep.
type InventoryReport struct {
	Total       int
	Healthy     int
	Digests     []string // distinct healthy description digests, sorted
	Quarantined []QuarantinedHost
}

// Controller inventories a heterogeneous fleet over describe handshakes,
// compiles one layout per (description digest, intent) pair through the
// content-addressed cache, and rolls out interface upgrades canary-first
// with automatic rollback on oracle violation. Single-threaded by the
// chaos discipline; the obs hooks are safe to render concurrently.
type Controller struct {
	opts    Options
	clk     vclock.Clock
	cache   *core.CompileCache
	members []*member
	nextGen uint64
	seedSt  uint64

	phase  atomic.Int32
	active *Rollout

	transcript []string

	// rollup aggregates accepted telemetry reports into fleet-level metrics;
	// trace accumulates the correlated rollout span tree. reg is remembered
	// so per-rollout labeled gauges can be registered as rollouts start.
	rollup *telemetry.Rollup
	trace  *telemetry.Trace
	reg    *obs.Registry

	rollouts, promotions, rollbacks obs.Counter
	canaryViolations, rpcRetries    obs.Counter
	telemetryReports                obs.Counter
	telemetryRejects                obs.Counter
}

// NewController builds an empty controller; add hosts with AddHost.
func NewController(opts Options) *Controller {
	opts = opts.withDefaults()
	return &Controller{
		opts:    opts,
		clk:     opts.Clock,
		cache:   core.NewCompileCache(opts.CacheCapacity),
		nextGen: 1,
		seedSt:  opts.Seed,
		rollup:  telemetry.NewRollup(),
		trace:   telemetry.NewTrace(),
	}
}

// AddHost attaches a host behind its control link.
func (c *Controller) AddHost(h *Host, l *Link) {
	if l == nil {
		l = NewLink(c.clk, 0)
	}
	c.members = append(c.members, &member{host: h, link: l})
}

// Phase reports the current rollout phase.
func (c *Controller) Phase() Phase { return Phase(c.phase.Load()) }

// CacheStats snapshots the compile-cache counters.
func (c *Controller) CacheStats() core.CacheStats { return c.cache.Stats() }

// Transcript returns the operator log (phase transitions, quarantines,
// rollbacks) accumulated so far.
func (c *Controller) Transcript() []string {
	return append([]string(nil), c.transcript...)
}

func (c *Controller) logf(format string, args ...interface{}) {
	c.transcript = append(c.transcript, fmt.Sprintf(format, args...))
}

// nextSeed draws the next deterministic jitter seed (splitmix64 stream).
func (c *Controller) nextSeed() uint64 {
	c.seedSt += 0x9e3779b97f4a7c15
	z := c.seedSt
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rpc runs one control RPC under the member's link with a deadline and
// bounded exponential backoff (seeded jitter, budget charged to the
// shared clock by the link itself).
func (c *Controller) rpc(m *member, fn func() error) error {
	return retry.Policy{
		JitterSeed: c.nextSeed(),
		Sleep:      func(d uint64) { c.clk.Advance(d) },
		OnError:    func(int, error) { c.rpcRetries.Inc() },
	}.Do(func() error {
		return m.link.call(c.opts.RPCDeadlineNs, fn)
	})
}

// verifyDescription runs the S27 differential-verification gate on a
// structurally valid description and returns the quarantine reason, or ""
// when the description holds a passing certificate. Certificates are
// digest-keyed and cached process-wide, so a fleet of hosts sharing one
// description pays for a single harness run. Structural validation says the
// description is well-formed; the certificate says the compiler triad and
// the SoftNIC golden model agree on every completion path it describes —
// without it, a description whose generated accessors read the wrong bits
// would provision cleanly and corrupt metadata on every delivery.
func (c *Controller) verifyDescription(nicName, src string) string {
	if c.opts.DisableVerify {
		return ""
	}
	cert := diffverify.CertifyCached(nicName, src)
	if cert.Passed {
		return ""
	}
	return fmt.Sprintf("verification: %s", cert.Reason)
}

// intent materializes the controller's read set as a core intent.
func (c *Controller) intent(sems []string) (*core.Intent, error) {
	names := make([]semantics.Name, len(sems))
	for i, s := range sems {
		names[i] = semantics.Name(s)
	}
	return core.IntentFromSemantics("fleet", semantics.Default, names...)
}

// Inventory sweeps the fleet with describe handshakes. Every answer is
// untrusted: it crosses the wire as JSON and is structurally validated
// before anything is compiled for the host. Hosts that are unreachable or
// fail validation are quarantined with an operator-visible reason; they
// keep serving whatever layout they already have.
func (c *Controller) Inventory() InventoryReport {
	rep := InventoryReport{Total: len(c.members)}
	digests := make(map[string]bool)
	for _, m := range c.members {
		m.ok, m.reason, m.val, m.digest = false, "", nil, ""
		var raw []byte
		err := c.rpc(m, func() error {
			d, derr := m.host.Describe()
			if derr != nil {
				return derr
			}
			raw, derr = d.Encode()
			return derr
		})
		if err != nil {
			m.reason = fmt.Sprintf("unreachable: %v", err)
		} else if v, verr := Validate(raw); verr != nil {
			m.reason = verr.Error()
		} else if vreason := c.verifyDescription(v.Desc.NIC, v.Desc.P4); vreason != "" {
			m.reason = vreason
		} else {
			m.ok, m.val, m.digest = true, v, v.Digest
		}
		if m.ok {
			rep.Healthy++
			digests[m.digest] = true
		} else {
			rep.Quarantined = append(rep.Quarantined, QuarantinedHost{Host: m.host.Name, Reason: m.reason})
			c.logf("quarantine %s: %s", m.host.Name, m.reason)
		}
	}
	for d := range digests {
		rep.Digests = append(rep.Digests, d)
	}
	sort.Strings(rep.Digests)
	c.logf("inventory: %d/%d healthy, %d distinct descriptions, %d quarantined",
		rep.Healthy, rep.Total, len(rep.Digests), len(rep.Quarantined))
	return rep
}

// Provision compiles the fleet intent for every healthy host (one compile
// per distinct description, however many hosts share it — the cache and
// its singleflight do the de-duplication) and installs it as each host's
// last-known-good layout. Requires a prior Inventory.
func (c *Controller) Provision() error {
	intent, err := c.intent(c.opts.Intent)
	if err != nil {
		return err
	}
	gen := c.nextGen
	c.nextGen++
	installed := 0
	for _, m := range c.members {
		if !m.ok {
			continue
		}
		val := m.val
		res, cerr := c.cache.Get(core.CompileKey(m.digest, intent, c.opts.CompileOpts),
			func() (*core.Result, error) { return val.Compile(intent, c.opts.CompileOpts) })
		if cerr != nil {
			m.ok, m.reason = false, fmt.Sprintf("compile: %v", cerr)
			c.logf("quarantine %s: %s", m.host.Name, m.reason)
			continue
		}
		aerr := c.rpc(m, func() error { return m.host.ApplyTrial(gen, res, c.opts.LeaseNs) })
		if aerr == nil {
			aerr = c.rpc(m, func() error { return m.host.Commit(gen) })
		}
		if aerr != nil {
			m.ok, m.reason = false, fmt.Sprintf("provision: %v", aerr)
			c.logf("quarantine %s: %s", m.host.Name, m.reason)
			continue
		}
		installed++
	}
	st := c.cache.Stats()
	c.logf("provision gen %d: %d hosts installed, cache %d/%d hit (%.1f%%)",
		gen, installed, st.Hits+st.Coalesced, st.Gets, 100*st.HitRate())
	return nil
}

// Upgrade is one fleet-wide interface change: a new read set and/or
// vendor-pushed description updates (replacement P4 source per NIC model).
// Description updates are structurally validated before any host is
// touched; a structurally valid description that lies about field meaning
// is exactly what the canary bake exists to catch.
type Upgrade struct {
	Name string
	// Semantics is the new fleet intent ("" entries invalid); empty slice
	// keeps the controller's current intent.
	Semantics []string
	// Descriptions maps NIC model name → replacement P4 source.
	Descriptions map[string]string
}

// Rollout is one in-flight upgrade.
type Rollout struct {
	c        *Controller
	up       Upgrade
	gen      uint64
	compiled map[string]*core.Result // effective digest → layout
	digests  map[*member]string      // member → effective digest (override-aware)
	targets  []*member
	// canaries/applied are ordered (deterministic RPC and jitter-draw order
	// under seeded chaos); isCanary answers membership.
	canaries []*member
	isCanary map[*member]bool
	applied  []*member
	baseline map[*member]Health
	// baseReport is each canary's pre-trial telemetry report; its histogram
	// anchors the latency budget. Absent (unreachable or rejected at canary
	// time) the latency gate is disarmed for that canary — the anomaly gate
	// never is. cutoff is the controller's own clock at trial apply: flight
	// events at or before it are pre-trial history, not trial evidence.
	baseReport map[*member]*telemetry.Report
	cutoff     map[*member]uint64
	// phase mirrors the controller's phase for this rollout only, so the
	// per-rollout labeled gauge survives later rollouts overwriting the
	// controller-global one.
	phase atomic.Int32
	// span/trialSpan/bakeSpan are trace handles for the rollout span tree.
	span      int
	trialSpan map[*member]int
	bakeSpan  int
	// Err records what aborted or rolled back the rollout.
	Err error
}

// Phase reports this rollout's own terminal-aware phase (unlike
// Controller.Phase, which tracks only the most recent rollout).
func (r *Rollout) Phase() Phase { return Phase(r.phase.Load()) }

// Gen is the generation this rollout installs.
func (r *Rollout) Gen() uint64 { return r.gen }

// StartRollout validates and compiles an upgrade, then opens the canary
// phase: one canary per distinct effective description. Returns an error
// (and touches no host) when validation or compilation fails, or when a
// rollout is already active.
func (c *Controller) StartRollout(up Upgrade) (*Rollout, error) {
	if c.active != nil {
		return nil, fmt.Errorf("fleet: rollout %q still active in phase %s", c.active.up.Name, c.Phase())
	}
	sems := up.Semantics
	if len(sems) == 0 {
		sems = c.opts.Intent
	}
	intent, err := c.intent(sems)
	if err != nil {
		return nil, err
	}
	// Validate pushed descriptions up front: structural failures abort the
	// rollout at inventory time, before any host is touched.
	overrides := make(map[string]*Validated) // NIC model name → validated source
	for nicName, src := range up.Descriptions {
		v, verr := ValidateSource(nicName, src)
		if verr != nil {
			return nil, fmt.Errorf("fleet: upgrade %q description for %s rejected: %v", up.Name, nicName, verr)
		}
		// The verification gate applies to pushed descriptions too: a vendor
		// update whose views disagree never reaches a canary. (A description
		// that *lies about meaning* — swapped or stripped semantics — still
		// certifies: the triad agrees on the bits; only the canary bake
		// against SoftNIC ground truth can judge meaning.)
		if vreason := c.verifyDescription(nicName, src); vreason != "" {
			return nil, fmt.Errorf("fleet: upgrade %q description for %s rejected: %s", up.Name, nicName, vreason)
		}
		overrides[nicName] = v
	}
	r := &Rollout{
		c:          c,
		up:         up,
		gen:        c.nextGen,
		compiled:   make(map[string]*core.Result),
		digests:    make(map[*member]string),
		isCanary:   make(map[*member]bool),
		baseline:   make(map[*member]Health),
		baseReport: make(map[*member]*telemetry.Report),
		cutoff:     make(map[*member]uint64),
		trialSpan:  make(map[*member]int),
		span:       -1,
		bakeSpan:   -1,
	}
	c.nextGen++
	canaryByDigest := make(map[string]*member)
	for _, m := range c.members {
		if !m.ok {
			continue
		}
		val, digest := m.val, m.digest
		if ov, hit := overrides[m.host.Model.Name]; hit {
			val, digest = ov, ov.Digest
		}
		if _, done := r.compiled[digest]; !done {
			res, cerr := c.cache.Get(core.CompileKey(digest, intent, c.opts.CompileOpts),
				func() (*core.Result, error) { return val.Compile(intent, c.opts.CompileOpts) })
			if cerr != nil {
				return nil, fmt.Errorf("fleet: upgrade %q compile for %s: %v", up.Name, m.host.Model.Name, cerr)
			}
			r.compiled[digest] = res
		}
		r.targets = append(r.targets, m)
		r.digests[m] = digest
		if canaryByDigest[digest] == nil {
			canaryByDigest[digest] = m
			r.canaries = append(r.canaries, m)
			r.isCanary[m] = true
		}
	}
	if len(r.targets) == 0 {
		return nil, fmt.Errorf("fleet: upgrade %q has no healthy targets", up.Name)
	}
	c.active = r
	c.phase.Store(int32(PhaseCanary))
	r.phase.Store(int32(PhaseCanary))
	c.rollouts.Inc()
	r.span = c.trace.Begin(fmt.Sprintf("rollout %s gen %d", up.Name, r.gen), "rollout", "rollout",
		c.clk.Now(), map[string]string{
			"gen":      strconv.FormatUint(r.gen, 10),
			"targets":  strconv.Itoa(len(r.targets)),
			"canaries": strconv.Itoa(len(r.canaries)),
		})
	if c.reg != nil {
		// Per-rollout labeled phase series: unlike the unlabeled
		// fleet_rollout_phase gauge (which tracks only the latest rollout),
		// each rollout keeps its own terminal value visible.
		rr := r
		c.reg.WithLabels(obs.L("rollout", up.Name), obs.L("gen", strconv.FormatUint(r.gen, 10))).
			GaugeFunc("fleet_rollout_phase", "per-rollout phase (0=idle 1=canary 2=bake 3=promote 4=promoted 5=rolled-back)",
				func() int64 { return int64(rr.phase.Load()) })
	}
	c.logf("rollout %q gen %d: %d targets, %d canaries (%d distinct descriptions)",
		up.Name, r.gen, len(r.targets), len(r.canaries), len(r.compiled))
	return r, nil
}

// Step advances the rollout one phase transition. The caller interleaves
// Step with data-plane traffic so canaries accumulate bake deliveries.
// Terminal phases make Step a no-op. Returns Err once terminal-by-failure.
func (r *Rollout) Step() error {
	c := r.c
	switch c.Phase() {
	case PhaseCanary:
		for _, m := range r.canaries {
			res := r.compiled[r.digests[m]]
			base := m.host.Health() // pre-trial snapshot is the violation baseline
			if !c.opts.DisableEvidenceBake {
				// Best-effort pre-trial report: its histogram anchors the
				// latency budget. A canary whose baseline is unavailable still
				// trials — with the latency gate disarmed, never the anomaly
				// gate — so a flaky link cannot veto the rollout before it
				// starts.
				if rep, ferr := c.fetchReport(m); ferr == nil {
					r.baseReport[m] = rep
				} else {
					c.logf("rollout %q: canary %s baseline telemetry unavailable (%v); latency gate disarmed",
						r.up.Name, m.host.Name, ferr)
				}
			}
			r.cutoff[m] = c.clk.Now()
			err := c.rpc(m, func() error { return m.host.ApplyTrial(r.gen, res, c.opts.LeaseNs) })
			if err != nil {
				c.logf("rollout %q: canary %s apply failed: %v — rolling back", r.up.Name, m.host.Name, err)
				r.rollback(fmt.Errorf("canary %s apply: %w", m.host.Name, err))
				return r.Err
			}
			r.applied = append(r.applied, m)
			r.baseline[m] = base
			r.trialSpan[m] = c.trace.Begin("trial "+m.host.Name, "trial", m.host.Name,
				c.clk.Now(), map[string]string{"gen": strconv.FormatUint(r.gen, 10)})
		}
		c.phase.Store(int32(PhaseBake))
		r.phase.Store(int32(PhaseBake))
		r.bakeSpan = c.trace.Begin("bake", "bake", "rollout", c.clk.Now(),
			map[string]string{"target": strconv.FormatUint(c.opts.BakeTarget, 10)})
		c.logf("rollout %q: %d canaries on trial gen %d, baking to %d deliveries",
			r.up.Name, len(r.canaries), r.gen, c.opts.BakeTarget)
		return nil

	case PhaseBake:
		baked := uint64(0)
		first := true
		for _, m := range r.canaries {
			var h Health
			err := c.rpc(m, func() error { h = m.host.Health(); return nil })
			if err != nil {
				c.logf("rollout %q: canary %s unreachable mid-bake — rolling back", r.up.Name, m.host.Name)
				r.rollback(fmt.Errorf("canary %s unreachable: %w", m.host.Name, err))
				return r.Err
			}
			base := r.baseline[m]
			if !h.Trial || h.Gen != r.gen {
				// The lease fired (controller was silent too long): the host
				// already reverted itself. Treat as a failed canary.
				c.logf("rollout %q: canary %s lease-reverted to gen %d — rolling back", r.up.Name, m.host.Name, h.Gen)
				r.rollback(fmt.Errorf("canary %s lease-reverted", m.host.Name))
				return r.Err
			}
			if h.Garbage > base.Garbage || h.OrderViolations > base.OrderViolations {
				c.canaryViolations.Inc()
				cause := fmt.Sprintf("canary %s oracle violation: %s", m.host.Name, h.Detail)
				if ev := r.citeEvidence(m); ev != "" {
					cause += "; flight evidence: " + ev
				}
				c.logf("rollout %q: canary %s oracle violation (%s) — rolling back", r.up.Name, m.host.Name, h.Detail)
				r.rollback(errors.New(cause))
				return r.Err
			}
			if n := h.Delivered - base.Delivered; first || n < baked {
				baked, first = n, false
			}
		}
		if baked < c.opts.BakeTarget {
			return nil // keep baking; caller drives more traffic and re-Steps
		}
		if !c.opts.DisableEvidenceBake {
			if err := r.evidenceVerdict(); err != nil {
				r.rollback(err)
				return r.Err
			}
		}
		c.phase.Store(int32(PhasePromote))
		r.phase.Store(int32(PhasePromote))
		c.logf("rollout %q: bake clean (%d deliveries/canary), promoting", r.up.Name, baked)
		return nil

	case PhasePromote:
		promoted := 0
		for _, m := range r.targets {
			res := r.compiled[r.digests[m]]
			var err error
			if !r.isCanary[m] {
				err = c.rpc(m, func() error { return m.host.ApplyTrial(r.gen, res, c.opts.LeaseNs) })
			}
			if err == nil {
				err = c.rpc(m, func() error { return m.host.Commit(r.gen) })
			}
			if err != nil {
				// A straggler stays on its last-known-good layout (or lease-
				// reverts to it); it is not rolled back fleet-wide.
				c.logf("rollout %q: %s unreachable at promote, stays on LKG", r.up.Name, m.host.Name)
				continue
			}
			promoted++
		}
		c.active = nil
		c.phase.Store(int32(PhasePromoted))
		r.phase.Store(int32(PhasePromoted))
		c.promotions.Inc()
		r.closeSpans("promote", map[string]string{"hosts": strconv.Itoa(promoted)})
		c.logf("rollout %q: promoted gen %d on %d/%d hosts", r.up.Name, r.gen, promoted, len(r.targets))
		return nil
	}
	return r.Err
}

// citeEvidence best-effort fetches the canary's flight evidence and formats
// the trial-window anomalies for a rollback reason. Empty when evidence
// bakes are disabled or the report is unavailable.
func (r *Rollout) citeEvidence(m *member) string {
	if r.c.opts.DisableEvidenceBake {
		return ""
	}
	rep, err := r.c.fetchReport(m)
	if err != nil {
		return ""
	}
	return formatAnomalies(trialAnomalies(rep, r.cutoff[m]), 4)
}

// trialAnomalies filters report anomalies to rollback-triggering codes
// inside the trial window (strictly after the baseline report's NowNs).
func trialAnomalies(rep *telemetry.Report, cutoffNs uint64) []telemetry.Anomaly {
	var out []telemetry.Anomaly
	for _, a := range rep.Anomalies {
		switch a.Code {
		case "garbage", "order_viol", "rollback":
		default:
			continue // ring_full is backpressure, explained by conservation
		}
		if a.TS > cutoffNs {
			out = append(out, a)
		}
	}
	return out
}

// formatAnomalies renders up to max anomaly citations.
func formatAnomalies(anoms []telemetry.Anomaly, max int) string {
	if len(anoms) == 0 {
		return ""
	}
	cited := make([]string, 0, max)
	for i, a := range anoms {
		if i >= max {
			cited = append(cited, fmt.Sprintf("… %d more", len(anoms)-max))
			break
		}
		cited = append(cited, a.String())
	}
	out := cited[0]
	for _, s := range cited[1:] {
		out += " " + s
	}
	return out
}

// evidenceVerdict is the flight-evidence half of the bake: every canary's
// post-bake telemetry report must show zero unexplained anomalies in the
// trial window AND a trial p99 poll→deliver latency within the budget
// derived from its own pre-trial baseline. Health counters alone miss a
// trial that degrades latency but still delivers correct metadata; the
// report's histogram and slowest-delivery exhibits catch it, and the
// offending flight events are cited verbatim in the rollback reason.
func (r *Rollout) evidenceVerdict() error {
	c := r.c
	for _, m := range r.canaries {
		rep, err := c.fetchReport(m)
		if err != nil {
			var ie *integrityError
			if errors.As(err, &ie) {
				c.quarantine(m, fmt.Sprintf("telemetry: %v", ie.err))
				return fmt.Errorf("canary %s telemetry rejected: %w", m.host.Name, ie.err)
			}
			return fmt.Errorf("canary %s unreachable for evidence bake: %w", m.host.Name, err)
		}
		if anoms := trialAnomalies(rep, r.cutoff[m]); len(anoms) > 0 {
			c.canaryViolations.Inc()
			return fmt.Errorf("canary %s flight evidence: %d unexplained anomalies in trial window: %s",
				m.host.Name, len(anoms), formatAnomalies(anoms, 4))
		}
		// Latency gate, skipped when either window has no deliveries (a fresh
		// fleet has no baseline to hold the trial against).
		base := r.baseReport[m]
		if base != nil && base.Deliver.Count > 0 && rep.Deliver.Count > 0 {
			baseP99 := base.Deliver.Quantile(0.99)
			budget := baseP99*c.opts.LatencyBudgetFactor + c.opts.LatencyBudgetSlackNs
			p99 := rep.Deliver.Quantile(0.99)
			if p99 > budget {
				c.canaryViolations.Inc()
				exhibits := formatAnomalies(rep.Slowest, 3)
				return fmt.Errorf("canary %s latency evidence: trial p99 %dns exceeds budget %dns (baseline p99 %dns × %d + %dns); slowest deliveries: %s",
					m.host.Name, p99, budget, baseP99, c.opts.LatencyBudgetFactor, c.opts.LatencyBudgetSlackNs, exhibits)
			}
			c.logf("rollout %q: canary %s evidence clean (trial p99 %dns ≤ budget %dns, 0 anomalies)",
				r.up.Name, m.host.Name, p99, budget)
		}
		m.lastSeq = rep.Seq
		c.rollup.Absorb(rep)
		c.telemetryReports.Inc()
	}
	return nil
}

// closeSpans ends the rollout span tree with a terminal verdict instant.
func (r *Rollout) closeSpans(verdict string, args map[string]string) {
	c := r.c
	now := c.clk.Now()
	for _, m := range r.canaries {
		if i, ok := r.trialSpan[m]; ok {
			c.trace.End(i, now)
		}
	}
	if r.bakeSpan >= 0 {
		c.trace.End(r.bakeSpan, now)
	}
	c.trace.Instant(verdict, "verdict", "rollout", now, args)
	if r.span >= 0 {
		c.trace.End(r.span, now)
	}
}

// rollback aborts every applied canary (unreachable ones are left to their
// trial lease, which reverts them without the controller). Non-canary
// hosts were never touched: rollback costs them nothing.
func (r *Rollout) rollback(cause error) {
	c := r.c
	for _, m := range r.applied {
		gen := r.gen
		if err := c.rpc(m, func() error { return m.host.Abort(gen) }); err != nil {
			c.logf("rollout %q: abort %s unreachable, trial lease will revert it", r.up.Name, m.host.Name)
		}
	}
	r.Err = cause
	c.active = nil
	c.phase.Store(int32(PhaseRolledBack))
	r.phase.Store(int32(PhaseRolledBack))
	c.rollbacks.Inc()
	r.closeSpans("rollback", map[string]string{"cause": cause.Error()})
	c.logf("rollout %q: rolled back (%v); fleet serves on last-known-good", r.up.Name, cause)
}

// Run drives a rollout to a terminal phase, calling pump between steps to
// generate canary traffic. Returns nil on promotion, the cause on rollback.
func (r *Rollout) Run(pump func()) error {
	for {
		switch r.c.Phase() {
		case PhasePromoted:
			return nil
		case PhaseRolledBack, PhaseIdle:
			return r.Err
		}
		if err := r.Step(); err != nil {
			return err
		}
		if pump != nil {
			pump()
		}
	}
}

// QuarantinedCount reports hosts currently quarantined.
func (c *Controller) QuarantinedCount() int {
	n := 0
	for _, m := range c.members {
		if !m.ok {
			n++
		}
	}
	return n
}

// RegisterMetrics exposes the fleet gauges on reg: rollout phase,
// quarantined hosts, cache hit rate, the rollout/RPC/telemetry counters,
// and the telemetry rollup aggregates. Rollouts started after this call
// additionally get their own {rollout,gen}-labeled phase series, so
// concurrent scrapes see every rollout's terminal phase — not just the
// last writer's.
func (c *Controller) RegisterMetrics(reg *obs.Registry) {
	c.reg = reg
	c.rollup.Bind(reg)
	reg.AttachCounter("fleet_telemetry_reports_total", "telemetry reports validated, cross-checked, and absorbed", &c.telemetryReports)
	reg.AttachCounter("fleet_telemetry_rejects_total", "telemetry reports rejected (invalid, stale, or counter-divergent)", &c.telemetryRejects)
	reg.GaugeFunc("fleet_rollout_phase", "current rollout phase (0=idle 1=canary 2=bake 3=promote 4=promoted 5=rolled-back)",
		func() int64 { return int64(c.phase.Load()) })
	reg.GaugeFunc("fleet_quarantined_hosts", "hosts quarantined by inventory validation",
		func() int64 { return int64(c.QuarantinedCount()) })
	reg.FloatFunc("fleet_cache_hit_rate", "compile cache hit rate (hits+coalesced over gets)",
		func() float64 { return c.cache.Stats().HitRate() })
	reg.CounterFunc("fleet_cache_compiles", "compile cache misses (actual compiles)",
		func() uint64 { return c.cache.Stats().Misses })
	reg.AttachCounter("fleet_rollouts_total", "rollouts started", &c.rollouts)
	reg.AttachCounter("fleet_promotions_total", "rollouts promoted fleet-wide", &c.promotions)
	reg.AttachCounter("fleet_rollbacks_total", "rollouts rolled back", &c.rollbacks)
	reg.AttachCounter("fleet_canary_violations_total", "canary oracle violations detected", &c.canaryViolations)
	reg.AttachCounter("fleet_rpc_retries_total", "control RPC attempts that failed and were retried", &c.rpcRetries)
}
