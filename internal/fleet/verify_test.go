package fleet

import (
	"strings"
	"testing"

	"opendesc/internal/diffverify"
	"opendesc/internal/nic"
	"opendesc/internal/vclock"
)

// rogueWiden installs a describe mutator on h that republishes its own
// description with the first emitted semantic field widened to 96 bits —
// digest and capability claims recomputed so the document is structurally
// self-consistent and only verification can reject it.
func rogueWiden(t *testing.T, h *Host) {
	t.Helper()
	src, err := diffverify.WidenFirstSemantic(h.Model.Source, 96)
	if err != nil {
		t.Fatal(err)
	}
	h.SetDescribeMutator(func(d *Description) {
		rd, rerr := d.RewriteSource(src)
		if rerr != nil {
			t.Errorf("rewrite: %v", rerr)
			return
		}
		*d = *rd
	})
}

func newVerifyFleet(t *testing.T, opts Options) (*Controller, []*Host) {
	t.Helper()
	clk := vclock.NewVirtual(0)
	opts.Clock = clk
	c := NewController(opts)
	var hosts []*Host
	for i, name := range []string{"e1000e", "mlx5", "ice"} {
		h, err := NewHost(name+"-0"+string(rune('1'+i)), nic.MustLoad(name), HostOptions{Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		c.AddHost(h, NewLink(clk, 1000))
		hosts = append(hosts, h)
	}
	return c, hosts
}

// TestInventoryQuarantinesUnverified: a structurally self-consistent
// description that fails differential verification is quarantined at
// inventory with an operator-visible "verification:" reason, and Provision
// never touches the host — it keeps serving its boot layout.
func TestInventoryQuarantinesUnverified(t *testing.T) {
	c, hosts := newVerifyFleet(t, Options{})
	rogueWiden(t, hosts[1])
	rep := c.Inventory()
	if rep.Healthy != 2 || len(rep.Quarantined) != 1 {
		t.Fatalf("inventory %d healthy / %d quarantined, want 2/1", rep.Healthy, len(rep.Quarantined))
	}
	q := rep.Quarantined[0]
	if q.Host != hosts[1].Name {
		t.Errorf("quarantined %s, want %s", q.Host, hosts[1].Name)
	}
	if !strings.HasPrefix(q.Reason, "verification: ") {
		t.Errorf("reason %q does not name the verification gate", q.Reason)
	}
	if !strings.Contains(q.Reason, "96 bits") {
		t.Errorf("reason %q does not carry the harness rejection", q.Reason)
	}
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	if g := hosts[1].Generation(); g != 0 {
		t.Errorf("quarantined host provisioned to gen %d, want boot gen 0", g)
	}
	if hosts[0].Generation() == 0 || hosts[2].Generation() == 0 {
		t.Error("healthy hosts not provisioned")
	}
}

// TestDisableVerifyAblation: with the gate disabled, the same rogue
// description inventories healthy and provisions — the pre-S27 behavior the
// ablation exists to demonstrate.
func TestDisableVerifyAblation(t *testing.T) {
	c, hosts := newVerifyFleet(t, Options{DisableVerify: true})
	rogueWiden(t, hosts[1])
	rep := c.Inventory()
	if rep.Healthy != 3 || len(rep.Quarantined) != 0 {
		t.Fatalf("ablated inventory %d healthy / %d quarantined, want 3/0", rep.Healthy, len(rep.Quarantined))
	}
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	if hosts[1].Generation() == 0 {
		t.Error("ablation did not provision the unverified description")
	}
}

// TestRolloutRejectsUnverifiedPush: a vendor-pushed description that fails
// verification aborts StartRollout before any host is touched.
func TestRolloutRejectsUnverifiedPush(t *testing.T) {
	c, hosts := newVerifyFleet(t, Options{})
	c.Inventory()
	if err := c.Provision(); err != nil {
		t.Fatal(err)
	}
	src, err := diffverify.WidenFirstSemantic(hosts[0].Model.Source, 128)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.StartRollout(Upgrade{
		Name:         "bad-push",
		Descriptions: map[string]string{hosts[0].Model.Name: src},
	})
	if err == nil {
		t.Fatal("rollout accepted an unverifiable description")
	}
	if !strings.Contains(err.Error(), "verification: ") {
		t.Errorf("error %q does not name the verification gate", err)
	}
	if c.Phase() != PhaseIdle {
		t.Errorf("phase %s after rejected rollout, want idle", c.Phase())
	}
}

// TestVerifiedPushStillCertifies: the gate does not over-reject — a
// semantics-swapped description (a meaning lie the harness cannot judge)
// passes verification and reaches the canary, whose bake is the layer that
// catches it. Division of labor, not redundancy.
func TestVerifiedPushStillCertifies(t *testing.T) {
	m := nic.MustLoad("mlx5")
	src, err := SwapSemantics(m.Source, "rss", "flow_id")
	if err != nil {
		t.Fatal(err)
	}
	cert := diffverify.CertifyCached(m.Name, src)
	if !cert.Passed {
		t.Errorf("semantics swap failed certification (%s); the gate is doing the bake's job", cert.Reason)
	}
}
