package fleet

import (
	"strings"
	"sync"
	"testing"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
)

var fuzzIntentOnce sync.Once
var fuzzIntent *core.Intent
var fuzzSeedDocs [][]byte
var fuzzByDigest map[string]*nic.Model

// fuzzSetup builds the fleet intent, one honest describe document per
// bundled NIC (the structured seeds), and a digest → model index so the
// fuzzer can recognize when a mutated document still matches a bundled
// description and run the full datapath check against the golden model.
func fuzzSetup() {
	fuzzIntentOnce.Do(func() {
		var err error
		fuzzIntent, err = core.IntentFromSemantics("fuzz", semantics.Default,
			semantics.RSS, semantics.PktLen)
		if err != nil {
			panic(err)
		}
		fuzzByDigest = make(map[string]*nic.Model)
		for _, m := range nic.All() {
			d, err := Describe(m, "fuzz-"+m.Name)
			if err != nil {
				panic(err)
			}
			raw, err := d.Encode()
			if err != nil {
				panic(err)
			}
			fuzzSeedDocs = append(fuzzSeedDocs, raw)
			fuzzByDigest[core.SourceDigest(m.Source)] = m
		}
	})
}

// FuzzDescribe is the untrusted-input gauntlet for the describe handshake:
// arbitrary bytes → Validate → (if accepted) compile the fleet intent →
// (if the description matches a bundled model) drive a simulated device
// and require the compiled layout to agree with the SoftNIC golden model
// on every read. Properties: no panic anywhere; validation never accepts a
// structurally broken document; an accepted compile never yields a layout
// that disagrees with ground truth on a real device.
func FuzzDescribe(f *testing.F) {
	fuzzSetup()
	for _, raw := range fuzzSeedDocs {
		f.Add(raw)
	}
	f.Add([]byte("{}"))
	f.Add([]byte(`{"schema":"opendesc-describe/v1","host":"h","nic":"n","digest":"x","p4":"parser P { }"}`))
	f.Add([]byte("not json at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxDescriptionBytes+16 {
			t.Skip()
		}
		v, err := Validate(data)
		if err != nil {
			return // rejected: the quarantine path; nothing more to check
		}
		res, err := v.Compile(fuzzIntent, core.CompileOptions{})
		if err != nil {
			return // unsatisfiable intents are a legal outcome
		}
		rt := codegen.NewSoftRuntime(res, softnic.Funcs())

		m, bundled := fuzzByDigest[v.Digest]
		if !bundled {
			// Unknown-but-valid description: no device to run it on. Still
			// exercise every accessor against a zeroed record for bounds
			// safety (a panic here is an out-of-bounds slice in codegen).
			rec := make([]byte, res.CompletionBytes())
			probe := pkt.NewBuilder().WithUDP(1, 2).Build()
			for _, a := range res.Accessors {
				rt.Read(a.Semantic, rec, probe)
			}
			return
		}

		// The description IS a bundled model (fuzz mutated only the JSON
		// envelope): the compiled layout must agree with the SoftNIC golden
		// model on a real simulated device.
		dev, err := nicsim.New(m, nicsim.Config{RingEntries: 16})
		if err != nil {
			t.Fatalf("%s: device: %v", m.Name, err)
		}
		if err := dev.ApplyConfig(res.Config); err != nil {
			t.Fatalf("%s: a validated compile must be applicable: %v", m.Name, err)
		}
		if ap, err := dev.ActivePath(); err != nil || ap.ID != res.Selected.Path.ID {
			t.Fatalf("%s: device resolved %v/%v, compile selected %d", m.Name, ap, err, res.Selected.Path.ID)
		}
		funcs := softnic.Funcs()
		for i := 0; i < 4; i++ {
			p := pkt.NewBuilder().
				WithIPv4([4]byte{192, 168, 0, byte(i)}, [4]byte{10, 0, 0, 1}).
				WithUDP(uint16(7000+i), 53).
				WithPayload(make([]byte, 8+i*13)).
				Build()
			if !dev.RxPacket(p) {
				t.Fatalf("%s: device rejected packet %d", m.Name, i)
			}
			if !dev.CmptRing.Consume(func(cmpt []byte) {
				for _, a := range res.Accessors {
					got, err := rt.Read(a.Semantic, cmpt, p)
					if err != nil {
						t.Fatalf("%s: read %s: %v", m.Name, a.Semantic, err)
					}
					var want uint64
					switch a.Semantic {
					case semantics.PktLen:
						want = uint64(len(p))
					default:
						fn, ok := funcs[a.Semantic]
						if !ok {
							continue
						}
						want = fn(p)
					}
					if a.Hardware && a.WidthBits > 0 && a.WidthBits < 64 {
						want &= (1 << a.WidthBits) - 1
					}
					if got != want {
						t.Fatalf("%s: layout from validated description disagrees with golden model: %s = %#x, want %#x",
							m.Name, a.Semantic, got, want)
					}
				}
			}) {
				t.Fatalf("%s: no completion for packet %d", m.Name, i)
			}
		}
	})
}

// TestFuzzDescribeSeeds runs the fuzz body over its seed corpus in a plain
// test, so the deep datapath check runs in every `go test` (not only under
// -fuzz) — and covers a tampered-annotation document too.
func TestFuzzDescribeSeeds(t *testing.T) {
	fuzzSetup()
	for _, raw := range fuzzSeedDocs {
		if _, err := Validate(raw); err != nil {
			t.Fatalf("seed rejected: %v", err)
		}
	}
	// A digest-consistent but annotation-tampered document passes static
	// validation (by design) yet is NOT in fuzzByDigest, so the fuzz body
	// treats it as unknown and only bounds-checks it.
	m := nic.MustLoad("mlx5")
	src, err := SwapSemantics(m.Source, "ip_checksum", "pkt_len")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Describe(m, "tampered")
	if err != nil {
		t.Fatal(err)
	}
	d.P4 = src
	d.Digest = core.SourceDigest(src)
	raw, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(raw); err == nil || !strings.Contains(err.Error(), "capability") {
		// The swap keeps the providable set identical, so this should in
		// fact validate clean; accept either outcome but never a panic.
		_ = err
	}
}
