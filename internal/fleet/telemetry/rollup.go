package telemetry

import (
	"sort"
	"strconv"
	"sync"

	"opendesc/internal/obs"
)

// Rollup aggregates the latest accepted report per host into fleet-level
// views: a merged delivery-latency histogram (fleet p99), anomaly rates,
// and per-NIC-family / per-generation breakdowns. Because reports carry
// cumulative counters and histograms, the rollup keeps only the most
// recent report per host and re-derives every aggregate from that set —
// merging successive reports from one host would double-count.
//
// Bind exposes the aggregates on an obs.Registry; per-family and
// per-generation series are registered lazily (idempotently) as new labels
// appear, through the registry's WithLabels views.
type Rollup struct {
	mu     sync.Mutex
	latest map[string]*Report // host → newest accepted report

	reg       *obs.Registry
	boundFams map[string]bool
	boundGens map[uint64]bool
}

// NewRollup returns an empty rollup.
func NewRollup() *Rollup {
	return &Rollup{
		latest:    make(map[string]*Report),
		boundFams: make(map[string]bool),
		boundGens: make(map[uint64]bool),
	}
}

// Absorb replaces the host's contribution with a newer accepted report.
// Callers must have validated and cross-checked the report first; the
// rollup aggregates, it does not judge.
func (ru *Rollup) Absorb(r *Report) {
	ru.mu.Lock()
	ru.latest[r.Host] = r
	reg := ru.reg
	newFam := reg != nil && !ru.boundFams[r.NIC]
	newGen := reg != nil && !ru.boundGens[r.Gen]
	if newFam {
		ru.boundFams[r.NIC] = true
	}
	if newGen {
		ru.boundGens[r.Gen] = true
	}
	ru.mu.Unlock()
	if newFam {
		ru.bindFamily(reg, r.NIC)
	}
	if newGen {
		ru.bindGeneration(reg, r.Gen)
	}
}

// Hosts reports how many hosts currently contribute to the rollup.
func (ru *Rollup) Hosts() int {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	return len(ru.latest)
}

// FleetDeliver merges every contributing host's delivery histogram.
func (ru *Rollup) FleetDeliver() obs.HistogramSnapshot {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	var out obs.HistogramSnapshot
	for _, r := range ru.latest {
		out = out.Merge(r.Deliver)
	}
	return out
}

// FleetP99 is the fleet-wide p99 poll→deliver latency (ns).
func (ru *Rollup) FleetP99() uint64 { return ru.FleetDeliver().Quantile(0.99) }

// AnomalyRate is fleet oracle violations per delivered packet.
func (ru *Rollup) AnomalyRate() float64 {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	var bad, delivered uint64
	for _, r := range ru.latest {
		bad += r.Counters.Garbage + r.Counters.OrderViolations
		delivered += r.Counters.Delivered
	}
	if delivered == 0 {
		return 0
	}
	return float64(bad) / float64(delivered)
}

// FamilyStats is one NIC family's aggregate view.
type FamilyStats struct {
	Family    string
	Hosts     int
	Delivered uint64
	Anomalies uint64 // garbage + order violations
	P99Ns     uint64
}

// Families returns per-NIC-family aggregates, sorted by family name.
func (ru *Rollup) Families() []FamilyStats {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	byFam := map[string]*FamilyStats{}
	hist := map[string]obs.HistogramSnapshot{}
	for _, r := range ru.latest {
		fs := byFam[r.NIC]
		if fs == nil {
			fs = &FamilyStats{Family: r.NIC}
			byFam[r.NIC] = fs
		}
		fs.Hosts++
		fs.Delivered += r.Counters.Delivered
		fs.Anomalies += r.Counters.Garbage + r.Counters.OrderViolations
		hist[r.NIC] = hist[r.NIC].Merge(r.Deliver)
	}
	out := make([]FamilyStats, 0, len(byFam))
	for fam, fs := range byFam {
		fs.P99Ns = hist[fam].Quantile(0.99)
		out = append(out, *fs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out
}

// GenStats is one serving generation's aggregate view. Cumulative host
// counters are attributed to the host's current serving generation.
type GenStats struct {
	Gen       uint64
	Hosts     int
	Delivered uint64
	P99Ns     uint64
}

// Generations returns per-serving-generation aggregates, ascending.
func (ru *Rollup) Generations() []GenStats {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	byGen := map[uint64]*GenStats{}
	hist := map[uint64]obs.HistogramSnapshot{}
	for _, r := range ru.latest {
		gs := byGen[r.Gen]
		if gs == nil {
			gs = &GenStats{Gen: r.Gen}
			byGen[r.Gen] = gs
		}
		gs.Hosts++
		gs.Delivered += r.Counters.Delivered
		hist[r.Gen] = hist[r.Gen].Merge(r.Deliver)
	}
	out := make([]GenStats, 0, len(byGen))
	for gen, gs := range byGen {
		gs.P99Ns = hist[gen].Quantile(0.99)
		out = append(out, *gs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Gen < out[j].Gen })
	return out
}

// Bind exposes fleet-level aggregates on reg and arms lazy registration of
// per-family and per-generation labeled series.
func (ru *Rollup) Bind(reg *obs.Registry) {
	ru.mu.Lock()
	ru.reg = reg
	ru.mu.Unlock()
	reg.GaugeFunc("fleet_telemetry_hosts", "hosts contributing a validated telemetry report",
		func() int64 { return int64(ru.Hosts()) })
	reg.GaugeFunc("fleet_deliver_p99_ns", "fleet-wide p99 poll→deliver latency from merged host reports",
		func() int64 { return int64(ru.FleetP99()) })
	reg.FloatFunc("fleet_anomaly_rate", "fleet oracle violations per delivered packet",
		func() float64 { return ru.AnomalyRate() })
}

func (ru *Rollup) family(fam string) FamilyStats {
	for _, fs := range ru.Families() {
		if fs.Family == fam {
			return fs
		}
	}
	return FamilyStats{Family: fam}
}

func (ru *Rollup) generation(gen uint64) GenStats {
	for _, gs := range ru.Generations() {
		if gs.Gen == gen {
			return gs
		}
	}
	return GenStats{Gen: gen}
}

func (ru *Rollup) bindFamily(reg *obs.Registry, fam string) {
	v := reg.WithLabels(obs.L("family", fam))
	v.GaugeFunc("fleet_family_deliver_p99_ns", "per-NIC-family p99 poll→deliver latency",
		func() int64 { return int64(ru.family(fam).P99Ns) })
	v.CounterFunc("fleet_family_delivered_total", "per-NIC-family delivered packets (latest reports)",
		func() uint64 { return ru.family(fam).Delivered })
	v.CounterFunc("fleet_family_anomalies_total", "per-NIC-family oracle violations (latest reports)",
		func() uint64 { return ru.family(fam).Anomalies })
}

func (ru *Rollup) bindGeneration(reg *obs.Registry, gen uint64) {
	v := reg.WithLabels(obs.L("gen", strconv.FormatUint(gen, 10)))
	v.GaugeFunc("fleet_gen_hosts", "hosts serving this generation (latest reports)",
		func() int64 { return int64(ru.generation(gen).Hosts) })
	v.CounterFunc("fleet_gen_delivered_total", "delivered packets attributed to this serving generation",
		func() uint64 { return ru.generation(gen).Delivered })
}
