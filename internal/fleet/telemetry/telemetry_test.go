package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"opendesc/internal/obs"
	"opendesc/internal/obs/flight"
)

func testReport(host string, seq uint64) *Report {
	h := obs.NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(70)
	}
	return &Report{
		Host: host, NIC: "e1000e", Seq: seq, NowNs: 12345, Gen: 2,
		Counters: Counters{Accepted: 100, Delivered: 100},
		Deliver:  h.Snapshot(),
		Anomalies: []Anomaly{
			{TS: 9000, Code: "garbage", Seq: 7, Arg0: flight.PackName("pkt_len"), Arg1: 3},
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := testReport("h0", 1)
	b, err := r.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Validate(b)
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if got.Host != "h0" || got.Seq != 1 || got.Counters.Delivered != 100 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if got.Deliver.Quantile(0.99) != 127 {
		t.Errorf("p99 = %d, want 127 (log2 bucket upper of 70)", got.Deliver.Quantile(0.99))
	}
	if len(got.Anomalies) != 1 || got.Anomalies[0].Code != "garbage" {
		t.Errorf("anomalies did not survive: %+v", got.Anomalies)
	}
	if !strings.Contains(got.Anomalies[0].String(), "sem pkt_len") {
		t.Errorf("anomaly citation %q lacks the semantic name", got.Anomalies[0].String())
	}
}

func TestReportTamperDetection(t *testing.T) {
	b, err := testReport("h0", 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip the delivered counter in transit: the digest must catch it.
	tampered := bytes.Replace(b, []byte(`"delivered": 100`), []byte(`"delivered": 999`), 1)
	if bytes.Equal(tampered, b) {
		t.Fatal("tamper target not found in encoding")
	}
	if _, err := Validate(tampered); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Errorf("tampered report validated (err=%v), want digest mismatch", err)
	}
}

func TestReportValidateRejections(t *testing.T) {
	if _, err := Validate(bytes.Repeat([]byte("x"), MaxReportBytes+1)); err == nil {
		t.Error("oversized report accepted")
	}
	if _, err := Validate([]byte(`{"schema":"opendesc-telemetry/v0"}`)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema accepted (err=%v)", err)
	}
	// A histogram whose Count disagrees with its buckets is forged.
	r := testReport("h0", 1)
	r.Deliver.Count++
	b, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(b); err == nil || !strings.Contains(err.Error(), "reconcile") {
		t.Errorf("non-reconciling histogram accepted (err=%v)", err)
	}
}

func TestFromFlight(t *testing.T) {
	rec := flight.NewRecorder(flight.Config{Size: 256})
	q := rec.Queue("h0")
	// Routine deliveries plus anomalies, some before the window cutoff.
	q.RecordT(50, flight.EvGarbage, 1, flight.PackName("rss"), 1) // before cutoff: excluded
	for i := uint32(1); i <= 20; i++ {
		q.RecordT(100+uint64(i), flight.EvDeliver, i, 10, uint64(100+i*10))
	}
	q.RecordT(200, flight.EvGarbage, 21, flight.PackName("pkt_len"), 3)
	q.RecordT(210, flight.EvOrderViol, 22, 0, 3)
	q.RecordT(220, flight.EvRingFull, 23, 128, 0)

	anoms, slowest, trunc := FromFlight(rec.Snapshot(), 99)
	if trunc != 0 {
		t.Errorf("truncated %d, want 0", trunc)
	}
	if len(anoms) != 3 {
		t.Fatalf("anomalies %d, want 3 (window excludes ts=50): %+v", len(anoms), anoms)
	}
	if anoms[0].Code != "garbage" || anoms[1].Code != "order_viol" || anoms[2].Code != "ring_full" {
		t.Errorf("anomaly order/codes wrong: %+v", anoms)
	}
	if len(slowest) != MaxSlowest {
		t.Fatalf("slowest %d, want %d", len(slowest), MaxSlowest)
	}
	// Worst-first by poll→deliver latency.
	if slowest[0].Arg1 != 300 || slowest[MaxSlowest-1].Arg1 <= slowest[0].Arg1-uint64(MaxSlowest)*10 {
		t.Errorf("slowest ordering wrong: %+v", slowest)
	}
}

func TestFromFlightTruncation(t *testing.T) {
	rec := flight.NewRecorder(flight.Config{Size: 1024})
	q := rec.Queue("h0")
	for i := uint32(1); i <= MaxAnomalies+10; i++ {
		q.RecordT(uint64(i), flight.EvGarbage, i, flight.PackName("rss"), 2)
	}
	anoms, _, trunc := FromFlight(rec.Snapshot(), 0)
	if len(anoms) != MaxAnomalies || trunc != 10 {
		t.Fatalf("anomalies %d truncated %d, want %d/%d", len(anoms), trunc, MaxAnomalies, 10)
	}
	// The freshest events are kept.
	if anoms[len(anoms)-1].TS != uint64(MaxAnomalies+10) {
		t.Errorf("last kept anomaly ts %d, want %d", anoms[len(anoms)-1].TS, MaxAnomalies+10)
	}
}

func TestRollupAggregates(t *testing.T) {
	ru := NewRollup()
	reg := obs.NewRegistry()
	ru.Bind(reg)

	r1 := testReport("h0", 1)
	ru.Absorb(r1)
	// A newer report from the same host replaces, never double-counts.
	r2 := testReport("h0", 2)
	r2.Counters.Delivered = 200
	h := obs.NewHistogram()
	for i := 0; i < 200; i++ {
		h.Observe(70)
	}
	r2.Deliver = h.Snapshot()
	ru.Absorb(r2)

	r3 := testReport("h1", 1)
	r3.NIC = "mlx5"
	r3.Gen = 3
	r3.Counters.Garbage = 2
	hb := obs.NewHistogram()
	for i := 0; i < 100; i++ {
		hb.Observe(900)
	}
	r3.Deliver = hb.Snapshot()
	ru.Absorb(r3)

	if ru.Hosts() != 2 {
		t.Fatalf("hosts %d, want 2", ru.Hosts())
	}
	fd := ru.FleetDeliver()
	if fd.Count != 300 {
		t.Errorf("fleet deliver count %d, want 300 (no double counting)", fd.Count)
	}
	if p99 := ru.FleetP99(); p99 != 1023 {
		t.Errorf("fleet p99 %d, want 1023 (100/300 observations at 900ns)", p99)
	}
	if rate := ru.AnomalyRate(); rate != 2.0/300 {
		t.Errorf("anomaly rate %v, want %v", rate, 2.0/300)
	}

	fams := ru.Families()
	if len(fams) != 2 || fams[0].Family != "e1000e" || fams[1].Family != "mlx5" {
		t.Fatalf("families: %+v", fams)
	}
	if fams[0].Delivered != 200 || fams[1].Anomalies != 2 || fams[1].P99Ns != 1023 {
		t.Errorf("family stats wrong: %+v", fams)
	}
	gens := ru.Generations()
	if len(gens) != 2 || gens[0].Gen != 2 || gens[1].Gen != 3 || gens[1].Hosts != 1 {
		t.Errorf("generation stats wrong: %+v", gens)
	}

	// Labeled series appeared on the registry.
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"fleet_deliver_p99_ns 1023",
		`fleet_family_deliver_p99_ns{family="mlx5"} 1023`,
		`fleet_family_delivered_total{family="e1000e"} 200`,
		`fleet_gen_hosts{gen="3"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

func TestSpansRoundTripAndFleetTrace(t *testing.T) {
	tr := NewTrace()
	ro := tr.Begin("rollout widen gen 2", "rollout", "rollout", 1000, map[string]string{"gen": "2"})
	trial := tr.Begin("trial e1000e-0", "trial", "e1000e-0", 1100, nil)
	tr.Instant("promote", "verdict", "rollout", 1900, nil)
	tr.End(trial, 1800)
	tr.End(ro, 2000)

	var sb bytes.Buffer
	if err := WriteSpans(&sb, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(bytes.NewReader(sb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 || spans[0].EndNs != 2000 || spans[1].Track != "e1000e-0" {
		t.Fatalf("span round trip: %+v", spans)
	}
	if _, err := ReadSpans(strings.NewReader(`{"schema":"nope","spans":[]}`)); err == nil {
		t.Error("wrong span schema accepted")
	}

	rec := flight.NewRecorder(flight.Config{Size: 64})
	rec.Queue("e1000e-0").RecordT(1500, flight.EvGarbage, 7, flight.PackName("rss"), 2)
	var out bytes.Buffer
	err = WriteFleetTrace(&out, spans, []flight.NamedSnapshot{{Name: "e1000e-0", Snap: rec.Snapshot()}})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		`"name":"controller"`, `"name":"rollout widen gen 2"`, `"ph":"X"`,
		`"name":"e1000e-0"`, `"name":"garbage"`, `"name":"promote"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("fleet trace missing %s\n%s", want, s)
		}
	}
}
