package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"opendesc/internal/obs/flight"
)

// SpanSchemaVersion identifies the fleet-trace span file format
// (`opendesc fleettrace` input).
const SpanSchemaVersion = "opendesc-fleettrace/v1"

// Span is one correlated controller-side interval (rollout, per-canary
// trial, bake window) or instant (promote, rollback, quarantine) on the
// shared fleet timeline. StartNs == EndNs renders as an instant.
type Span struct {
	Name    string            `json:"name"`
	Cat     string            `json:"cat,omitempty"` // rollout | trial | bake | verdict | telemetry
	Track   string            `json:"track"`         // timeline row within the controller process
	StartNs uint64            `json:"start_ns"`
	EndNs   uint64            `json:"end_ns"`
	Args    map[string]string `json:"args,omitempty"`
}

// Trace accumulates the controller's span tree. Safe for concurrent use;
// under the chaos discipline it is effectively single-threaded and fully
// deterministic.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Begin opens a span and returns its handle for End.
func (t *Trace) Begin(name, cat, track string, nowNs uint64, args map[string]string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{
		Name: name, Cat: cat, Track: track, StartNs: nowNs, EndNs: nowNs, Args: args,
	})
	return len(t.spans) - 1
}

// End closes the span at handle i.
func (t *Trace) End(i int, nowNs uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i >= 0 && i < len(t.spans) && nowNs > t.spans[i].EndNs {
		t.spans[i].EndNs = nowNs
	}
}

// Annotate merges args into the span at handle i.
func (t *Trace) Annotate(i int, args map[string]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.spans) {
		return
	}
	if t.spans[i].Args == nil {
		t.spans[i].Args = map[string]string{}
	}
	for k, v := range args {
		t.spans[i].Args[k] = v
	}
}

// Instant records a zero-duration event.
func (t *Trace) Instant(name, cat, track string, nowNs uint64, args map[string]string) {
	t.Begin(name, cat, track, nowNs, args)
}

// Spans copies the accumulated spans, in creation order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// spanFile is the on-disk form consumed by `opendesc fleettrace`.
type spanFile struct {
	Schema string `json:"schema"`
	Spans  []Span `json:"spans"`
}

// WriteSpans serializes spans as a schema-versioned JSON document.
func WriteSpans(w io.Writer, spans []Span) error {
	if spans == nil {
		spans = []Span{}
	}
	b, err := json.MarshalIndent(spanFile{Schema: SpanSchemaVersion, Spans: spans}, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadSpans parses a span document written by WriteSpans.
func ReadSpans(r io.Reader) ([]Span, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var f spanFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("fleettrace: malformed span file: %v", err)
	}
	if f.Schema != SpanSchemaVersion {
		return nil, fmt.Errorf("fleettrace: schema %q, want %q", f.Schema, SpanSchemaVersion)
	}
	return f.Spans, nil
}

// WriteFleetTrace merges the controller's span tree (process 0, one thread
// per span track) with each host's flight snapshot (process 1..N, one
// thread per queue) into a single Chrome trace_event timeline. All inputs
// must share one clock domain — in simulation they do by construction (one
// virtual clock), which is what makes the merged timeline meaningful.
func WriteFleetTrace(w io.Writer, spans []Span, hosts []flight.NamedSnapshot) error {
	evs := []flight.ChromeEvent{
		{Name: "process_name", Ph: "M", PID: 0, Args: map[string]any{"name": "controller"}},
	}
	trackIDs := map[string]int{}
	trackID := func(track string) int {
		id, ok := trackIDs[track]
		if !ok {
			id = len(trackIDs)
			trackIDs[track] = id
			evs = append(evs, flight.ChromeEvent{
				Name: "thread_name", Ph: "M", PID: 0, TID: id,
				Args: map[string]any{"name": track},
			})
		}
		return id
	}
	for _, sp := range spans {
		args := map[string]any{}
		for k, v := range sp.Args {
			args[k] = v
		}
		if len(args) == 0 {
			args = nil
		}
		tid := trackID(sp.Track)
		if sp.EndNs > sp.StartNs {
			evs = append(evs, flight.ChromeEvent{
				Name: sp.Name, Ph: "X", Dur: float64(sp.EndNs-sp.StartNs) / 1e3,
				TS: float64(sp.StartNs) / 1e3, PID: 0, TID: tid, Args: args,
			})
		} else {
			evs = append(evs, flight.ChromeEvent{
				Name: sp.Name, Ph: "i", TS: float64(sp.StartNs) / 1e3,
				PID: 0, TID: tid, S: "t", Args: args,
			})
		}
	}
	for i, h := range hosts {
		evs = append(evs, h.Snap.TraceEvents(i+1, h.Name)...)
	}
	return flight.WriteTraceEvents(w, evs)
}
