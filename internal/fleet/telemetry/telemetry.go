// Package telemetry is the fleet observability wire format and rollup
// layer (DESIGN.md §S26). Hosts periodically condense their flight-recorder
// ring and per-layout latency histograms into a compact, schema-versioned,
// digest-sealed report; the controller validates every report as untrusted
// input (the same posture as describe documents), cross-checks its counters
// against the controller's own RPC observations, aggregates accepted
// reports into fleet-level rollups, and drives canary bake verdicts from
// the flight evidence — with the offending events cited verbatim in any
// rollback reason.
//
// The report is deliberately lossy in a bounded way: anomaly events
// (oracle violations, ring stalls, rollbacks) are always carried verbatim,
// while routine per-packet traffic is summarized into the existing log2
// histograms. A report therefore has a hard size ceiling regardless of
// traffic volume, and every timestamp in it comes from the host's injected
// (virtual in simulation) clock, so chaos schedules reproduce reports
// byte for byte.
package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"opendesc/internal/obs"
	"opendesc/internal/obs/flight"
)

// SchemaVersion identifies the telemetry report wire format. Consumers
// reject other versions outright — an evolvable interface starts with
// refusing to guess.
const SchemaVersion = "opendesc-telemetry/v1"

const (
	// MaxReportBytes bounds an encoded report before anything is parsed.
	MaxReportBytes = 64 << 10
	// MaxAnomalies bounds the anomaly events carried verbatim; beyond it
	// the report marks itself truncated (the count survives, the tail is
	// dropped oldest-first so the freshest evidence is kept).
	MaxAnomalies = 64
	// MaxSlowest bounds the slowest-delivery exhibit list.
	MaxSlowest = 8
)

// Counters is the host's cumulative datapath counter block, the piece the
// controller can cross-check against its own Health RPC observation: both
// views describe the same events, so any divergence means somebody is
// lying — and the host, not the RPC layer, owns the report.
type Counters struct {
	Accepted        uint64 `json:"accepted"`
	Delivered       uint64 `json:"delivered"`
	Garbage         uint64 `json:"garbage"`
	OrderViolations uint64 `json:"order_violations"`
	LeaseReverts    uint64 `json:"lease_reverts"`
}

// Anomaly is one flight-recorder event carried verbatim in a report:
// timestamp (host virtual clock, ns), stable wire code name, and the raw
// payload words. Kept as a plain struct (not flight.Event) so the wire
// format is self-describing JSON rather than internal enum values.
type Anomaly struct {
	TS   uint64 `json:"ts_ns"`
	Code string `json:"code"`
	Seq  uint32 `json:"seq"`
	Arg0 uint64 `json:"arg0,omitempty"`
	Arg1 uint64 `json:"arg1,omitempty"`
}

// String renders the anomaly the way rollback reasons cite it.
func (a Anomaly) String() string {
	switch a.Code {
	case "garbage":
		return fmt.Sprintf("garbage[seq %d sem %s gen %d @%dns]", a.Seq, flight.UnpackName(a.Arg0), a.Arg1, a.TS)
	case "order_viol":
		return fmt.Sprintf("order_viol[seq %d gen %d @%dns]", a.Seq, a.Arg1, a.TS)
	case "deliver":
		return fmt.Sprintf("deliver[seq %d poll→deliver %dns @%dns]", a.Seq, a.Arg1, a.TS)
	case "ring_full":
		return fmt.Sprintf("ring_full[occ %d @%dns]", a.Arg0, a.TS)
	case "rollback":
		return fmt.Sprintf("rollback[gen %d @%dns]", a.Arg1, a.TS)
	default:
		return fmt.Sprintf("%s[seq %d arg0 %d arg1 %d @%dns]", a.Code, a.Seq, a.Arg0, a.Arg1, a.TS)
	}
}

// Report is one host's periodic telemetry snapshot.
type Report struct {
	Schema string `json:"schema"`
	Host   string `json:"host"`
	NIC    string `json:"nic"` // NIC family (model name)
	// Seq is the host's monotonic report sequence: the controller rejects
	// any report whose Seq does not advance (replay / reordering defense).
	Seq uint64 `json:"seq"`
	// NowNs is the host clock when the report was built.
	NowNs uint64 `json:"now_ns"`
	// Gen/Trial mirror the serving layout at build time.
	Gen      uint64   `json:"gen"`
	Trial    bool     `json:"trial,omitempty"`
	Counters Counters `json:"counters"`
	// Deliver is the serving layout's cumulative poll→deliver service
	// latency histogram (log2 buckets, ns).
	Deliver obs.HistogramSnapshot `json:"deliver_ns"`
	// Anomalies carries anomaly flight events verbatim, oldest first;
	// Truncated counts events dropped to stay under MaxAnomalies.
	Anomalies []Anomaly `json:"anomalies,omitempty"`
	Truncated int       `json:"truncated,omitempty"`
	// Slowest exhibits the worst deliver events by poll→deliver latency —
	// the specific flight events a latency-budget rollback cites.
	Slowest []Anomaly `json:"slowest,omitempty"`
	// Digest seals everything above (sha256 of the canonical encoding with
	// Digest empty). A mismatch means corruption or tampering in transit.
	Digest string `json:"digest"`
}

// digestOf computes the canonical content digest of a report.
func digestOf(r *Report) (string, error) {
	tmp := *r
	tmp.Digest = ""
	b, err := json.Marshal(&tmp)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Encode seals and serializes the report. The size ceiling is enforced at
// the producer too: a host must never build an unshippable report.
func (r *Report) Encode() ([]byte, error) {
	r.Schema = SchemaVersion
	d, err := digestOf(r)
	if err != nil {
		return nil, err
	}
	r.Digest = d
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	if len(b) > MaxReportBytes {
		return nil, fmt.Errorf("telemetry: report is %d bytes, ceiling %d", len(b), MaxReportBytes)
	}
	return b, nil
}

// Validate parses an untrusted report: size ceiling before parsing, schema
// version, digest recomputation, and internal consistency (the histogram
// must reconcile, the anomaly list must respect its own bound). It proves
// integrity and well-formedness only — whether the *content* is honest is
// the controller's counter cross-check.
func Validate(data []byte) (*Report, error) {
	if len(data) > MaxReportBytes {
		return nil, fmt.Errorf("telemetry: report exceeds %d bytes", MaxReportBytes)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("telemetry: malformed report: %v", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("telemetry: schema %q, want %q", r.Schema, SchemaVersion)
	}
	if r.Host == "" {
		return nil, fmt.Errorf("telemetry: report missing host")
	}
	want, err := digestOf(&r)
	if err != nil {
		return nil, err
	}
	if r.Digest != want {
		return nil, fmt.Errorf("telemetry: digest %.12s… does not match content (%.12s…)", r.Digest, want)
	}
	var n uint64
	for _, b := range r.Deliver.Buckets {
		n += b
	}
	if n != r.Deliver.Count {
		return nil, fmt.Errorf("telemetry: deliver histogram does not reconcile: count %d, buckets sum %d", r.Deliver.Count, n)
	}
	if len(r.Anomalies) > MaxAnomalies {
		return nil, fmt.Errorf("telemetry: %d anomalies exceed the %d ceiling", len(r.Anomalies), MaxAnomalies)
	}
	if len(r.Slowest) > MaxSlowest {
		return nil, fmt.Errorf("telemetry: %d slowest exhibits exceed the %d ceiling", len(r.Slowest), MaxSlowest)
	}
	return &r, nil
}

// anomalyCodes are the flight events a report always carries verbatim:
// the embedded-oracle violations and the control-plane reversions.
var anomalyCodes = map[flight.Code]bool{
	flight.EvGarbage:   true,
	flight.EvOrderViol: true,
	flight.EvRingFull:  true,
	flight.EvRollback:  true,
}

// fromEvent converts a flight event to its wire form.
func fromEvent(ev flight.Event) Anomaly {
	return Anomaly{TS: ev.TS, Code: ev.Code.String(), Seq: ev.Seq, Arg0: ev.Arg0, Arg1: ev.Arg1}
}

// FromFlight extracts a report's event evidence from a flight snapshot:
// every anomaly event with TS > sinceNs (bounded by MaxAnomalies, freshest
// kept, truncation counted) and the MaxSlowest worst deliver events by
// poll→deliver latency in the same window.
func FromFlight(snap *flight.Snapshot, sinceNs uint64) (anomalies, slowest []Anomaly, truncated int) {
	if snap == nil {
		return nil, nil, 0
	}
	var delivers []flight.Event
	for _, q := range snap.Queues {
		for _, ev := range q.Events {
			if ev.TS <= sinceNs {
				continue
			}
			if anomalyCodes[ev.Code] {
				anomalies = append(anomalies, fromEvent(ev))
			} else if ev.Code == flight.EvDeliver {
				delivers = append(delivers, ev)
			}
		}
	}
	sort.SliceStable(anomalies, func(i, j int) bool { return anomalies[i].TS < anomalies[j].TS })
	if n := len(anomalies); n > MaxAnomalies {
		truncated = n - MaxAnomalies
		anomalies = anomalies[n-MaxAnomalies:] // keep the freshest evidence
	}
	// Worst deliveries by poll→deliver latency (Arg1), ties by timestamp
	// then sequence for determinism.
	sort.SliceStable(delivers, func(i, j int) bool {
		if delivers[i].Arg1 != delivers[j].Arg1 {
			return delivers[i].Arg1 > delivers[j].Arg1
		}
		if delivers[i].TS != delivers[j].TS {
			return delivers[i].TS < delivers[j].TS
		}
		return delivers[i].Seq < delivers[j].Seq
	})
	if len(delivers) > MaxSlowest {
		delivers = delivers[:MaxSlowest]
	}
	for _, ev := range delivers {
		slowest = append(slowest, fromEvent(ev))
	}
	return anomalies, slowest, truncated
}
