// Package fleet is the S25 control plane: self-describing hosts, a
// controller that inventories them and compiles layouts through a
// content-addressed cache, and canary rollouts of interface upgrades with
// automatic rollback on oracle violation.
//
// The describe handshake is the paper's thesis operationalized at fleet
// scale: a host IS its P4 description plus a capability model, published as
// schema-versioned machine-actionable JSON (like internal/perf's benchmark
// artifacts). Descriptions arrive over a network, so — following P4K's
// framing — they are untrusted input: everything is structurally validated
// (size bound, schema version, content digest, parse, semantic check,
// deparser graph, path enumeration, capability-claim consistency) before a
// single compile runs, and a host whose description fails validation is
// quarantined with an operator-visible reason, never compiled for.
package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
)

// SchemaVersion identifies the describe-document wire format. Consumers
// must reject other versions (forward compatibility is a new version, not
// a silent reinterpretation).
const SchemaVersion = "opendesc-describe/v1"

// maxDescriptionBytes bounds an untrusted describe document before any
// parsing happens. Real interface descriptions are a few KiB; a megabyte
// is already suspicious.
const maxDescriptionBytes = 1 << 20

// Capabilities is the host's machine-readable capability model: what the
// device can deliver in hardware and in which completion shapes. Every
// claim is recomputed from the P4 source during validation — a claim the
// source cannot back is a quarantine reason.
type Capabilities struct {
	// Kind classifies the descriptor regime (fixed/selectable/programmable).
	Kind string `json:"kind"`
	// Semantics is the providable set: every semantic some completion path
	// can carry in hardware, sorted.
	Semantics []string `json:"semantics"`
	// Paths is the number of enumerable completion paths.
	Paths int `json:"paths"`
	// CompletionBytes lists the distinct completion-record sizes, ascending.
	CompletionBytes []int `json:"completion_bytes"`
	// TxParser reports a TX-direction descriptor parser in the description.
	TxParser bool `json:"tx_parser"`
	// Programmable/StageBudget mirror the pipeline resource model.
	Programmable bool `json:"programmable"`
	StageBudget  int  `json:"stage_budget"`
}

// Description is one host's describe answer.
type Description struct {
	Schema string `json:"schema"`
	Host   string `json:"host"`
	NIC    string `json:"nic"`
	Vendor string `json:"vendor,omitempty"`
	// Digest is the self-reported sha256 of P4. The controller recomputes
	// it; a mismatch quarantines the host (and the recomputed value, never
	// this field, keys the compile cache).
	Digest string `json:"digest"`
	// P4 is the full interface description source — the contract itself.
	P4           string       `json:"p4"`
	Capabilities Capabilities `json:"capabilities"`
}

// Encode renders the canonical wire form.
func (d *Description) Encode() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// Describe builds the describe answer for a host backed by a bundled
// model: the exact P4 source, its content digest, and the capability model
// recomputed from the description (so the answer is honest by
// construction; rogue publishers are modeled by mutating the result).
func Describe(m *nic.Model, host string) (*Description, error) {
	prov, err := m.ProvidableSet()
	if err != nil {
		return nil, err
	}
	paths, err := m.Paths()
	if err != nil {
		return nil, err
	}
	sizes, err := m.CompletionSizes()
	if err != nil {
		return nil, err
	}
	sems := make([]string, 0, len(prov))
	for _, n := range prov.Sorted() {
		sems = append(sems, string(n))
	}
	return &Description{
		Schema: SchemaVersion,
		Host:   host,
		NIC:    m.Name,
		Vendor: m.Vendor,
		Digest: core.SourceDigest(m.Source),
		P4:     m.Source,
		Capabilities: Capabilities{
			Kind:            m.Kind.String(),
			Semantics:       sems,
			Paths:           len(paths),
			CompletionBytes: sizes,
			TxParser:        m.TxParserName != "",
			Programmable:    m.Pipeline.Programmable,
			StageBudget:     m.Pipeline.StageBudget,
		},
	}, nil
}

// RewriteSource returns a copy of d publishing src as its interface
// description, with the content digest and every recomputed capability
// claim (semantics, path count, completion sizes) consistent with the new
// source. This models the *structurally honest* rogue publisher: the
// document sails through Validate because nothing in it contradicts itself —
// only the S27 differential-verification gate (or, for pure meaning lies,
// the canary bake) can tell the description is not one to serve on.
func (d *Description) RewriteSource(src string) (*Description, error) {
	v, err := ValidateSource(d.NIC, src)
	if err != nil {
		return nil, fmt.Errorf("fleet: rewrite for %s: %w", d.NIC, err)
	}
	out := *d
	out.P4 = src
	out.Digest = v.Digest
	sems := make([]string, 0, len(v.Providable))
	for _, n := range v.Providable.Sorted() {
		sems = append(sems, string(n))
	}
	out.Capabilities.Semantics = sems
	out.Capabilities.Paths = len(v.Paths)
	sizes := make(map[int]bool)
	var sizeList []int
	for _, p := range v.Paths {
		if n := p.SizeBytes(); !sizes[n] {
			sizes[n] = true
			sizeList = append(sizeList, n)
		}
	}
	sort.Ints(sizeList)
	out.Capabilities.CompletionBytes = sizeList
	return &out, nil
}

// Validated is a description that survived structural validation, carrying
// everything a compile needs so the expensive frontend work (parse, sema,
// graph, paths) is never repeated.
type Validated struct {
	Desc *Description
	// Digest is the recomputed content address (cache key component).
	Digest     string
	Info       *sema.Info
	Paths      []*core.Path
	Providable semantics.Set
}

// ValidateSource structurally validates a bare P4 interface description
// (the inner half of Validate, also used for vendor-pushed description
// updates in an Upgrade): parse, semantic check, deparser graph, path
// enumeration, non-empty providable set.
func ValidateSource(name, src string) (*Validated, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("empty P4 source")
	}
	if len(src) > maxDescriptionBytes {
		return nil, fmt.Errorf("P4 source exceeds %d bytes", maxDescriptionBytes)
	}
	prog, err := parser.Parse(name+".p4", src)
	if err != nil {
		return nil, fmt.Errorf("parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("sema: %v", err)
	}
	g, err := core.BuildDeparserGraph(core.DeparserSpec{Info: info})
	if err != nil {
		return nil, fmt.Errorf("deparser graph: %v", err)
	}
	paths, err := core.EnumeratePaths(g, core.EnumerateOptions{})
	if err != nil {
		return nil, fmt.Errorf("path enumeration: %v", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("description has no completion paths")
	}
	prov := make(semantics.Set)
	for _, p := range paths {
		for n := range p.Prov() {
			prov.Add(n)
		}
	}
	if len(prov) == 0 {
		return nil, fmt.Errorf("description provides no semantics")
	}
	return &Validated{
		Digest:     core.SourceDigest(src),
		Info:       info,
		Paths:      paths,
		Providable: prov,
	}, nil
}

// Validate structurally validates one untrusted describe document. The
// returned error string is the operator-visible quarantine reason.
func Validate(data []byte) (*Validated, error) {
	if len(data) > maxDescriptionBytes {
		return nil, fmt.Errorf("description exceeds %d bytes", maxDescriptionBytes)
	}
	var d Description
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("malformed JSON: %v", err)
	}
	if d.Schema != SchemaVersion {
		return nil, fmt.Errorf("schema %q, want %q", d.Schema, SchemaVersion)
	}
	if d.Host == "" || d.NIC == "" {
		return nil, fmt.Errorf("missing host or nic name")
	}
	v, err := ValidateSource(d.NIC, d.P4)
	if err != nil {
		return nil, err
	}
	if d.Digest != v.Digest {
		return nil, fmt.Errorf("digest mismatch: claimed %.12s…, content is %.12s…", d.Digest, v.Digest)
	}
	// Capability claims must match what the source actually provides: a
	// host overstating its capabilities would otherwise steer layout
	// selection toward reads the device cannot back.
	claimed := make(semantics.Set)
	for _, s := range d.Capabilities.Semantics {
		claimed.Add(semantics.Name(s))
	}
	if !claimed.Equal(v.Providable) {
		return nil, fmt.Errorf("capability claim mismatch: claims %v, source provides %v",
			claimed, v.Providable)
	}
	if d.Capabilities.Paths != len(v.Paths) {
		return nil, fmt.Errorf("capability claim mismatch: claims %d paths, source has %d",
			d.Capabilities.Paths, len(v.Paths))
	}
	sizes := make(map[int]bool)
	var want []int
	for _, p := range v.Paths {
		if n := p.SizeBytes(); !sizes[n] {
			sizes[n] = true
			want = append(want, n)
		}
	}
	sort.Ints(want)
	if len(d.Capabilities.CompletionBytes) != len(want) {
		return nil, fmt.Errorf("capability claim mismatch: completion sizes %v, source has %v",
			d.Capabilities.CompletionBytes, want)
	}
	for i, n := range want {
		if d.Capabilities.CompletionBytes[i] != n {
			return nil, fmt.Errorf("capability claim mismatch: completion sizes %v, source has %v",
				d.Capabilities.CompletionBytes, want)
		}
	}
	v.Desc = &d
	return v, nil
}

// Compile maps an intent onto the validated description.
func (v *Validated) Compile(intent *core.Intent, opts core.CompileOptions) (*core.Result, error) {
	name := "description"
	if v.Desc != nil {
		name = v.Desc.NIC
	}
	return core.Compile(name, core.DeparserSpec{Info: v.Info}, intent, opts)
}

// SwapSemantics returns src with the @semantic("a") and @semantic("b")
// annotations exchanged: a description that stays structurally valid but
// lies about which field carries which meaning. No static validation can
// catch it — only a canary bake against the SoftNIC ground truth can,
// which is exactly what E20's deliberately bad upgrade demonstrates.
func SwapSemantics(src, a, b string) (string, error) {
	ta := fmt.Sprintf("@semantic(%q)", a)
	tb := fmt.Sprintf("@semantic(%q)", b)
	if !strings.Contains(src, ta) || !strings.Contains(src, tb) {
		return "", fmt.Errorf("fleet: source lacks %s or %s", ta, tb)
	}
	const hold = "@semantic(\x00)"
	s := strings.ReplaceAll(src, ta, hold)
	s = strings.ReplaceAll(s, tb, ta)
	s = strings.ReplaceAll(s, hold, tb)
	return s, nil
}

// StripSemantics returns src with the named @semantic annotations removed:
// the fields remain, but the description no longer advertises them, so the
// compiler falls back to SoftNIC shims for those semantics. Deliveries stay
// correct — the shim computes ground truth — but every read pays the soft
// path. Health-counter bakes see zero violations and promote; only the
// flight-evidence latency gate catches the regression (E21's tampered
// upgrade).
func StripSemantics(src string, sems ...string) (string, error) {
	out := src
	for _, s := range sems {
		tag := fmt.Sprintf("@semantic(%q)", s)
		if !strings.Contains(out, tag) {
			return "", fmt.Errorf("fleet: source lacks %s", tag)
		}
		out = strings.ReplaceAll(out, tag, "")
	}
	return out, nil
}
