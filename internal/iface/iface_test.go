package iface

import (
	"testing"

	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

func lbResult(t *testing.T) (*nic.Model, *core.Result) {
	t.Helper()
	m := nic.MustLoad("mlx5")
	intent, err := core.IntentFromSemantics("lb", semantics.Default,
		semantics.RSS, semantics.PktLen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Compile(intent, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func trace(t *testing.T, n int) [][]byte {
	t.Helper()
	spec := workload.DefaultSpec()
	spec.Packets = n
	spec.VLANFraction = 0 // keep streams delimitable without VLAN handling edge cases
	return workload.MustGenerate(spec).Packets
}

// TestAllModelsDeliverSamePackets checks that every interface model hands the
// host the same packet sequence.
func TestAllModelsDeliverSamePackets(t *testing.T) {
	m, res := lbResult(t)
	packets := trace(t, 200)
	soft := softnic.Funcs()

	ringed, err := NewRinged(m, res, soft, 256)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewBatched(m, res, soft, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	streamed := NewStreamed(1 << 20)

	for _, ifc := range []Interface{ringed, batched, streamed} {
		if err := ifc.Deliver(packets); err != nil {
			t.Fatalf("%s deliver: %v", ifc.Name(), err)
		}
		var got [][]byte
		n := ifc.Poll(func(p []byte, _ MetaFunc) {
			cp := append([]byte(nil), p...)
			got = append(got, cp)
		})
		if n != len(packets) {
			t.Fatalf("%s polled %d of %d packets", ifc.Name(), n, len(packets))
		}
		for i := range got {
			if string(got[i]) != string(packets[i]) {
				t.Fatalf("%s packet %d differs", ifc.Name(), i)
			}
		}
	}
}

// TestMetadataAvailability pins the §5 trade-off: descriptor-bearing models
// serve the hash from hardware; the streaming model cannot.
func TestMetadataAvailability(t *testing.T) {
	m, res := lbResult(t)
	packets := trace(t, 50)
	soft := softnic.Funcs()

	ringed, _ := NewRinged(m, res, soft, 64)
	batched, _ := NewBatched(m, res, soft, 8, 16)
	streamed := NewStreamed(1 << 20)

	for _, ifc := range []Interface{ringed, batched} {
		if err := ifc.Deliver(packets); err != nil {
			t.Fatal(err)
		}
		checked := 0
		ifc.Poll(func(p []byte, meta MetaFunc) {
			hw, ok := meta(semantics.RSS)
			if !ok {
				t.Fatalf("%s: hash not available from descriptors", ifc.Name())
			}
			var in pkt.Info
			if err := pkt.Decode(p, &in); err != nil {
				t.Fatal(err)
			}
			if want := uint64(softnic.RSS(&in)); hw != want {
				t.Fatalf("%s: hash %#x != golden %#x", ifc.Name(), hw, want)
			}
			checked++
		})
		if checked != len(packets) {
			t.Fatalf("%s checked %d", ifc.Name(), checked)
		}
	}

	if err := streamed.Deliver(packets); err != nil {
		t.Fatal(err)
	}
	streamed.Poll(func(p []byte, meta MetaFunc) {
		if _, ok := meta(semantics.RSS); ok {
			t.Fatal("streaming model must not offer descriptor metadata")
		}
	})
}

func TestBatchedDescriptorOverheadPerPacket(t *testing.T) {
	m, res := lbResult(t)
	batched, err := NewBatched(m, res, softnic.Funcs(), 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := batched.PerPacketDescriptorBytes(); got != res.CompletionBytes()+2 {
		t.Errorf("per-packet bytes = %d", got)
	}
	streamed := NewStreamed(1 << 16)
	if streamed.PerPacketDescriptorBytes() != 0 {
		t.Error("streaming carries no descriptors")
	}
}

func TestBatchedPartialFrame(t *testing.T) {
	m, res := lbResult(t)
	batched, err := NewBatched(m, res, softnic.Funcs(), 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	packets := trace(t, 21) // 16 + 5: last frame is partial
	if err := batched.Deliver(packets); err != nil {
		t.Fatal(err)
	}
	if n := batched.Poll(func([]byte, MetaFunc) {}); n != 21 {
		t.Errorf("polled %d, want 21", n)
	}
}

func TestStreamedBufferFull(t *testing.T) {
	streamed := NewStreamed(256)
	packets := trace(t, 50)
	if err := streamed.Deliver(packets); err == nil {
		t.Error("overflow should error")
	}
}

func TestStreamedVLANDelimiting(t *testing.T) {
	streamed := NewStreamed(1 << 16)
	p1 := pkt.NewBuilder().WithVLAN(5).WithUDP(1, 2).WithPayload([]byte("abc")).Build()
	p2 := pkt.NewBuilder().WithTCP(3, 4, 0).Build()
	if err := streamed.Deliver([][]byte{p1, p2}); err != nil {
		t.Fatal(err)
	}
	var lens []int
	if n := streamed.Poll(func(p []byte, _ MetaFunc) { lens = append(lens, len(p)) }); n != 2 {
		t.Fatalf("polled %d", n)
	}
	if lens[0] != len(p1) || lens[1] != len(p2) {
		t.Errorf("boundaries = %v, want %d,%d", lens, len(p1), len(p2))
	}
}

func TestStreamedUndelimitableStops(t *testing.T) {
	streamed := NewStreamed(1 << 12)
	arp := pkt.NewBuilder().Build()
	arp[12], arp[13] = 0x08, 0x06 // ARP has no length field to delimit on
	if err := streamed.Deliver([][]byte{arp}); err != nil {
		t.Fatal(err)
	}
	if n := streamed.Poll(func([]byte, MetaFunc) {}); n != 0 {
		t.Errorf("undelimitable stream should stop, polled %d", n)
	}
}

func TestRingedCapacityError(t *testing.T) {
	m, res := lbResult(t)
	ringed, err := NewRinged(m, res, softnic.Funcs(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ringed.Deliver(trace(t, 50)); err == nil {
		t.Error("ring overflow should error")
	}
}
