// Package iface implements the three NIC↔host interface models the paper
// discusses as candidates for a fully synthesized driver datapath (§5,
// "Synthesizing the complete driver datapath"):
//
//   - Ringed:   classic per-packet descriptor + completion rings (the model
//     every bundled NIC description uses);
//   - Batched:  ASNI-style — packets and their completion metadata are
//     aggregated inside a single larger frame, amortizing ring
//     operations and keeping metadata inline with the data;
//   - Streamed: Enso-style — a contiguous byte stream of raw packets with
//     no per-packet descriptors at all; maximal raw throughput, but
//     "the model collapses if the application needs to recompute
//     metadata such as a hash in software".
//
// All three models deliver the same simulated traffic, so measured
// differences isolate the interface shape itself (experiment E11).
package iface

import (
	"encoding/binary"
	"fmt"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/pkt"
	"opendesc/internal/ring"
	"opendesc/internal/semantics"
)

// Handler processes one received packet. meta reads a semantic from
// whatever the interface model can provide; ok=false means the value is
// unobtainable without software recomputation (the handler decides).
type Handler func(packet []byte, meta MetaFunc)

// MetaFunc reads one semantic for the current packet.
type MetaFunc func(s semantics.Name) (uint64, bool)

// Interface is a NIC↔host packet delivery model.
type Interface interface {
	Name() string
	// Deliver runs the device side for a trace: packets become visible to
	// the host side in order.
	Deliver(packets [][]byte) error
	// Poll runs the host side, invoking h for every delivered packet, and
	// returns the number of packets processed.
	Poll(h Handler) int
	// PerPacketDescriptorBytes reports the descriptor/metadata bytes the
	// model moves per packet (0 for streaming).
	PerPacketDescriptorBytes() int
}

// ---- Ringed (per-packet descriptors) ----

// Ringed is the classic model: one completion record per packet in a ring,
// packet bytes in a buffer pool, metadata via generated accessors.
type Ringed struct {
	dev     *nicsim.Device
	rt      *codegen.Runtime
	res     *core.Result
	packets [][]byte
	count   int
}

// NewRinged builds the per-packet ring model for a NIC and intent.
func NewRinged(model *nic.Model, res *core.Result, soft map[semantics.Name]codegen.SoftFunc, capacity int) (*Ringed, error) {
	dev, err := nicsim.New(model, nicsim.Config{RingEntries: capacity})
	if err != nil {
		return nil, err
	}
	if err := dev.ApplyConfig(res.Config); err != nil {
		return nil, err
	}
	return &Ringed{dev: dev, rt: codegen.NewRuntime(res, soft), res: res}, nil
}

// Name implements Interface.
func (r *Ringed) Name() string { return "ringed" }

// PerPacketDescriptorBytes implements Interface.
func (r *Ringed) PerPacketDescriptorBytes() int { return r.res.CompletionBytes() }

// Deliver implements Interface.
func (r *Ringed) Deliver(packets [][]byte) error {
	r.packets = packets
	r.count = 0
	for _, p := range packets {
		if !r.dev.RxPacket(p) {
			return fmt.Errorf("iface: ring full after %d packets", r.count)
		}
		r.count++
	}
	return nil
}

// Poll implements Interface.
func (r *Ringed) Poll(h Handler) int {
	n := 0
	for n < r.count {
		p := r.packets[n]
		if !r.dev.CmptRing.Consume(func(cmpt []byte) {
			h(p, func(s semantics.Name) (uint64, bool) {
				rd := r.rt.Reader(s)
				if rd == nil || !rd.Hardware {
					return 0, false
				}
				return rd.Read(cmpt, p), true
			})
		}) {
			break
		}
		n++
	}
	return n
}

// ---- Batched (ASNI-style frames) ----

// batchedFrameHdr is the per-frame prefix: packet count.
const batchedFrameHdr = 2

// Batched aggregates packets and their completion metadata inside larger
// frames: [u16 count] then per packet [u16 pktlen][cmpt bytes][pkt bytes].
type Batched struct {
	dev       *nicsim.Device
	rt        *codegen.Runtime
	res       *core.Result
	batchSize int
	cmptBytes int
	frames    *ring.Ring
	frameBuf  []byte
}

// NewBatched builds the ASNI-style model with the given packets-per-frame.
func NewBatched(model *nic.Model, res *core.Result, soft map[semantics.Name]codegen.SoftFunc, batchSize, capacity int) (*Batched, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("iface: batch size must be positive")
	}
	dev, err := nicsim.New(model, nicsim.Config{RingEntries: batchSize + 1})
	if err != nil {
		return nil, err
	}
	if err := dev.ApplyConfig(res.Config); err != nil {
		return nil, err
	}
	cb := res.CompletionBytes()
	frameSize := batchedFrameHdr + batchSize*(2+cb+2048)
	return &Batched{
		dev:       dev,
		rt:        codegen.NewRuntime(res, soft),
		res:       res,
		batchSize: batchSize,
		cmptBytes: cb,
		frames:    ring.MustNew(frameSize, capacity),
		frameBuf:  make([]byte, frameSize),
	}, nil
}

// Name implements Interface.
func (b *Batched) Name() string { return "batched" }

// PerPacketDescriptorBytes implements Interface.
func (b *Batched) PerPacketDescriptorBytes() int { return b.cmptBytes + 2 }

// Deliver implements Interface: the device side fills ASNI frames.
func (b *Batched) Deliver(packets [][]byte) error {
	i := 0
	for i < len(packets) {
		n := b.batchSize
		if rem := len(packets) - i; rem < n {
			n = rem
		}
		off := batchedFrameHdr
		binary.BigEndian.PutUint16(b.frameBuf[0:], uint16(n))
		for j := 0; j < n; j++ {
			p := packets[i+j]
			if !b.dev.RxPacket(p) {
				return fmt.Errorf("iface: device stalled")
			}
			var ok bool
			b.dev.CmptRing.Consume(func(cmpt []byte) {
				binary.BigEndian.PutUint16(b.frameBuf[off:], uint16(len(p)))
				off += 2
				copy(b.frameBuf[off:], cmpt[:b.cmptBytes])
				off += b.cmptBytes
				copy(b.frameBuf[off:], p)
				off += len(p)
				ok = true
			})
			if !ok {
				return fmt.Errorf("iface: completion missing")
			}
		}
		if !b.frames.Push(b.frameBuf[:off]) {
			return fmt.Errorf("iface: frame ring full")
		}
		i += n
	}
	return nil
}

// Poll implements Interface: the host side unpacks frames.
func (b *Batched) Poll(h Handler) int {
	total := 0
	for {
		consumed := b.frames.Consume(func(frame []byte) {
			n := int(binary.BigEndian.Uint16(frame[0:]))
			off := batchedFrameHdr
			for j := 0; j < n; j++ {
				plen := int(binary.BigEndian.Uint16(frame[off:]))
				off += 2
				cmpt := frame[off : off+b.cmptBytes]
				off += b.cmptBytes
				p := frame[off : off+plen]
				off += plen
				h(p, func(s semantics.Name) (uint64, bool) {
					rd := b.rt.Reader(s)
					if rd == nil || !rd.Hardware {
						return 0, false
					}
					return rd.Read(cmpt, p), true
				})
				total++
			}
		})
		if !consumed {
			return total
		}
	}
}

// ---- Streamed (Enso-style) ----

// Streamed delivers raw packet bytes back-to-back in one contiguous buffer
// with no per-packet descriptors. Packet boundaries are recovered by parsing
// the packets themselves; any metadata must be recomputed in software.
type Streamed struct {
	buf   []byte
	used  int
	count int
}

// NewStreamed builds the Enso-style model with the given buffer capacity.
func NewStreamed(capacity int) *Streamed {
	return &Streamed{buf: make([]byte, capacity)}
}

// Name implements Interface.
func (s *Streamed) Name() string { return "streamed" }

// PerPacketDescriptorBytes implements Interface.
func (s *Streamed) PerPacketDescriptorBytes() int { return 0 }

// Deliver implements Interface: packets are copied back-to-back (the
// device-side DMA into the stream buffer).
func (s *Streamed) Deliver(packets [][]byte) error {
	s.used = 0
	s.count = 0
	for _, p := range packets {
		if s.used+len(p) > len(s.buf) {
			return fmt.Errorf("iface: stream buffer full after %d packets", s.count)
		}
		copy(s.buf[s.used:], p)
		s.used += len(p)
		s.count++
	}
	return nil
}

// Poll implements Interface: packet boundaries are recovered from the L3
// length fields, exactly the bookkeeping an Enso-style consumer performs.
func (s *Streamed) Poll(h Handler) int {
	off := 0
	n := 0
	for off < s.used && n < s.count {
		p, adv, err := nextPacket(s.buf[off:s.used])
		if err != nil {
			return n
		}
		h(p, func(semantics.Name) (uint64, bool) {
			return 0, false // no descriptors: nothing is free
		})
		off += adv
		n++
	}
	return n
}

// nextPacket determines the boundary of the first packet in the stream from
// its headers (Ethernet + IP total length).
func nextPacket(b []byte) ([]byte, int, error) {
	if len(b) < pkt.EthHeaderLen {
		return nil, 0, fmt.Errorf("iface: truncated stream")
	}
	off := pkt.EthHeaderLen
	et := binary.BigEndian.Uint16(b[12:14])
	for et == pkt.EtherTypeVLAN || et == pkt.EtherTypeQinQ {
		if len(b) < off+pkt.VLANTagLen {
			return nil, 0, fmt.Errorf("iface: truncated vlan")
		}
		et = binary.BigEndian.Uint16(b[off+2 : off+4])
		off += pkt.VLANTagLen
	}
	var total int
	switch et {
	case pkt.EtherTypeIPv4:
		if len(b) < off+pkt.IPv4MinLen {
			return nil, 0, fmt.Errorf("iface: truncated ipv4")
		}
		total = off + int(binary.BigEndian.Uint16(b[off+2:off+4]))
	case pkt.EtherTypeIPv6:
		if len(b) < off+pkt.IPv6HeaderLen {
			return nil, 0, fmt.Errorf("iface: truncated ipv6")
		}
		total = off + pkt.IPv6HeaderLen + int(binary.BigEndian.Uint16(b[off+4:off+6]))
	default:
		return nil, 0, fmt.Errorf("iface: cannot delimit ethertype %#x in stream", et)
	}
	if total > len(b) {
		return nil, 0, fmt.Errorf("iface: packet spans past stream end")
	}
	return b[:total], total, nil
}
