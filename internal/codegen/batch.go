package codegen

import (
	"fmt"
	"strings"

	"opendesc/internal/bitfield"
	"opendesc/internal/core"
)

// The paper's §5 notes that DPDK drivers hand-maintain SSE/AltiVec/NEON
// variants of the descriptor datapath that read four descriptors at a time,
// and proposes generating such batch accessors instead. This file implements
// the lane-parallel form of the generated accessors: BatchWidth descriptors
// processed per call with unrolled independent loads (instruction-level
// parallelism; a SIMD backend would emit vector loads against the same
// layout).

// BatchWidth is the number of descriptors a batch accessor processes per
// call, mirroring the 4-wide SSE driver loops.
const BatchWidth = 4

// BatchReader reads one semantic from BatchWidth completion records at once.
type BatchReader struct {
	Semantic   string
	OffsetBits int
	WidthBits  int
	aligned    bool
}

// NewBatchReader builds a batch reader for a hardware accessor. Software
// accessors have no batch form (each packet must be touched individually).
func NewBatchReader(a core.Accessor) (*BatchReader, error) {
	if !a.Hardware {
		return nil, fmt.Errorf("codegen: no batch form for software semantic %q", a.Semantic)
	}
	return &BatchReader{
		Semantic:   string(a.Semantic),
		OffsetBits: a.OffsetBits,
		WidthBits:  a.WidthBits,
		aligned:    a.OffsetBits%8 == 0 && (a.WidthBits == 8 || a.WidthBits == 16 || a.WidthBits == 32 || a.WidthBits == 64),
	}, nil
}

// Read4 loads the field from four completion records. The loads are
// independent, letting the CPU overlap them — the scalar analogue of one
// SSE gather in the hand-written driver loops.
func (b *BatchReader) Read4(d0, d1, d2, d3 []byte, out *[BatchWidth]uint64) {
	if b.aligned {
		out[0] = bitfield.ReadAligned(d0, b.OffsetBits, b.WidthBits)
		out[1] = bitfield.ReadAligned(d1, b.OffsetBits, b.WidthBits)
		out[2] = bitfield.ReadAligned(d2, b.OffsetBits, b.WidthBits)
		out[3] = bitfield.ReadAligned(d3, b.OffsetBits, b.WidthBits)
		return
	}
	out[0] = bitfield.Read(d0, b.OffsetBits, b.WidthBits)
	out[1] = bitfield.Read(d1, b.OffsetBits, b.WidthBits)
	out[2] = bitfield.Read(d2, b.OffsetBits, b.WidthBits)
	out[3] = bitfield.Read(d3, b.OffsetBits, b.WidthBits)
}

// BatchRuntime bundles batch readers for every hardware accessor of a
// compilation result.
type BatchRuntime struct {
	Readers []*BatchReader
	byName  map[string]*BatchReader
}

// NewBatchRuntime builds the batch accessor table (hardware accessors only).
func NewBatchRuntime(res *core.Result) *BatchRuntime {
	rt := &BatchRuntime{byName: make(map[string]*BatchReader)}
	for _, a := range res.Accessors {
		if !a.Hardware {
			continue
		}
		br, err := NewBatchReader(a)
		if err != nil {
			continue
		}
		rt.Readers = append(rt.Readers, br)
		rt.byName[string(a.Semantic)] = br
	}
	return rt
}

// Reader returns the batch reader for a semantic, or nil.
func (rt *BatchRuntime) Reader(sem string) *BatchReader { return rt.byName[sem] }

// GenGoBatch renders the batch accessor source: one XN function per hardware
// accessor, unrolled across BatchWidth descriptors.
func GenGoBatch(res *core.Result, pkg string) string {
	var sb strings.Builder
	sb.WriteString(banner(res, "//"))
	fmt.Fprintf(&sb, "package %s\n\n", pkg)
	sb.WriteString("// Batch accessors process ")
	fmt.Fprintf(&sb, "%d completion records per call, the generated\n", BatchWidth)
	sb.WriteString("// counterpart of the hand-written SSE descriptor loops in DPDK drivers.\n\n")
	for _, a := range res.Accessors {
		if !a.Hardware {
			continue
		}
		name := exportName(string(a.Semantic))
		typ := goWidthType(a.WidthBits)
		fmt.Fprintf(&sb, "// %sX%d reads %q from %d completion records at fixed offsets.\n",
			name, BatchWidth, a.Semantic, BatchWidth)
		fmt.Fprintf(&sb, "func %sX%d(c0, c1, c2, c3 []byte) (v0, v1, v2, v3 %s) {\n",
			name, BatchWidth, typ)
		for lane := 0; lane < BatchWidth; lane++ {
			body := genGoRead(a.OffsetBits, a.WidthBits, typ)
			body = strings.ReplaceAll(body, "cmpt[", fmt.Sprintf("c%d[", lane))
			body = strings.ReplaceAll(body, "\treturn ", fmt.Sprintf("\tv%d = ", lane))
			body = strings.ReplaceAll(body, "v := uint64(0)", fmt.Sprintf("u%d := uint64(0)", lane))
			body = strings.ReplaceAll(body, "v = v<<8", fmt.Sprintf("u%d = u%d<<8", lane, lane))
			body = strings.ReplaceAll(body, "v >>= ", fmt.Sprintf("u%d >>= ", lane))
			body = strings.ReplaceAll(body, fmt.Sprintf("v%d = %s(v & ", lane, typ), fmt.Sprintf("v%d = %s(u%d & ", lane, typ, lane))
			body = strings.ReplaceAll(body, fmt.Sprintf("v%d = %s(v)", lane, typ), fmt.Sprintf("v%d = %s(u%d)", lane, typ, lane))
			sb.WriteString(body)
		}
		sb.WriteString("\treturn\n}\n\n")
	}
	return sb.String()
}
