package codegen_test

// The validator tests live in an external test package so they can drive the
// simulated device and the SoftNIC reference functions (softnic imports
// codegen, so the in-package tests cannot).

import (
	"testing"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
)

func vPacket() []byte {
	return pkt.NewBuilder().
		WithVLAN(0x0123).
		WithIPv4([4]byte{192, 168, 1, 10}, [4]byte{10, 0, 0, 1}).
		WithTCP(443, 51000, 0x18).
		WithIPID(0xBEEF).
		WithPayload([]byte("validator probe")).
		Build()
}

// receive compiles the intent on a NIC, programs a device, receives one
// packet and returns the result plus the raw completion record.
func receive(t *testing.T, nicName string, p []byte, sems ...semantics.Name) (*core.Result, []byte) {
	t.Helper()
	intent, err := core.IntentFromSemantics("intent", semantics.Default, sems...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nic.MustLoad(nicName).Compile(intent, core.CompileOptions{})
	if err != nil {
		t.Fatalf("compile %s: %v", nicName, err)
	}
	dev := nicsim.MustNew(nic.MustLoad(nicName), nicsim.Config{})
	if err := dev.ApplyConfig(res.Config); err != nil {
		t.Fatal(err)
	}
	if !dev.RxPacket(p) {
		t.Fatal("rx failed")
	}
	rec := dev.CmptRing.Peek()
	if rec == nil {
		t.Fatal("no completion")
	}
	return res, rec[:res.CompletionBytes()]
}

// TestValidatorEveryBitFlipDetected is the validator's core guarantee for
// E16: with the deep tier on and a layout with no unpredictable fields, *any*
// single-bit flip anywhere in the completion record is detected.
func TestValidatorEveryBitFlipDetected(t *testing.T) {
	p := vPacket()
	res, rec := receive(t, "e1000e", p, semantics.RSS, semantics.VLAN, semantics.PktLen)
	v, err := codegen.NewValidator(res, codegen.ValidatorOptions{Deep: true, Soft: softnic.Funcs()})
	if err != nil {
		t.Fatal(err)
	}
	if viol := v.Check(rec, p); viol != nil {
		t.Fatalf("clean record rejected: %v", viol)
	}
	cov := v.Coverage()
	if got := cov.StructuralBits + cov.DeepBits; got != cov.TotalBits {
		t.Fatalf("coverage %d/%d bits (uncovered %v): e1000e layout should be fully checkable",
			got, cov.TotalBits, cov.Uncovered)
	}
	mut := make([]byte, len(rec))
	for bit := 0; bit < len(rec)*8; bit++ {
		copy(mut, rec)
		mut[bit/8] ^= 1 << (bit % 8)
		if v.Check(mut, p) == nil {
			t.Errorf("bit flip at %d undetected", bit)
		}
	}
}

// TestValidatorTiers checks the structural/deep split: with Deep off, pads
// and discriminants are still enforced but value fields are not recomputed.
func TestValidatorTiers(t *testing.T) {
	p := vPacket()
	res, rec := receive(t, "e1000e", p, semantics.RSS, semantics.VLAN, semantics.PktLen)
	v, err := codegen.NewValidator(res, codegen.ValidatorOptions{Soft: softnic.Funcs()})
	if err != nil {
		t.Fatal(err)
	}
	if viol := v.Check(rec, p); viol != nil {
		t.Fatalf("clean record rejected: %v", viol)
	}
	// Corrupting the RSS value field slips past the structural tier…
	f := res.Selected.Path.Field(semantics.RSS)
	if f == nil {
		t.Fatal("no rss field in layout")
	}
	mut := append([]byte(nil), rec...)
	mut[f.OffsetBits/8] ^= 1
	if viol := v.Check(mut, p); viol != nil {
		t.Errorf("structural tier should not catch a value corruption, got %v", viol)
	}
	// …but not past Conforms (deep forced on) …
	if v.Conforms(mut, p) {
		t.Error("Conforms must catch a value corruption")
	}
	// …and a short record is always rejected.
	if viol := v.Check(rec[:len(rec)-1], p); viol == nil || viol.Kind != codegen.ViolationShort {
		t.Errorf("short record: got %v, want a short violation", viol)
	}
}

// TestValidatorSkipsTimestamp: a layout carrying a timestamp cannot be fully
// covered; flips inside the timestamp field must NOT be flagged, flips
// elsewhere must.
func TestValidatorSkipsTimestamp(t *testing.T) {
	p := vPacket()
	res, rec := receive(t, "mlx5", p, semantics.RSS, semantics.Timestamp, semantics.PktLen)
	f := res.Selected.Path.Field(semantics.Timestamp)
	if f == nil {
		t.Skip("selected mlx5 path carries no timestamp")
	}
	v, err := codegen.NewValidator(res, codegen.ValidatorOptions{Deep: true, Soft: softnic.Funcs()})
	if err != nil {
		t.Fatal(err)
	}
	if viol := v.Check(rec, p); viol != nil {
		t.Fatalf("clean record rejected: %v", viol)
	}
	cov := v.Coverage()
	if len(cov.Uncovered) == 0 {
		t.Error("timestamp field should be reported uncovered")
	}
	mut := append([]byte(nil), rec...)
	mut[f.OffsetBits/8] ^= 0x55
	if viol := v.Check(mut, p); viol != nil {
		t.Errorf("timestamp flip must be tolerated, got %v", viol)
	}
}

// TestValidatorConsts pins device-state fields (queue id, mark, crypto ctx)
// to driver-configured constants.
func TestValidatorConsts(t *testing.T) {
	p := vPacket()
	res, rec := receive(t, "qdma", p, semantics.RSS, semantics.QueueID, semantics.Mark)
	f := res.Selected.Path.Field(semantics.QueueID)
	if f == nil {
		t.Skip("selected qdma path carries no queue_id")
	}
	v, err := codegen.NewValidator(res, codegen.ValidatorOptions{
		Deep: true,
		Soft: softnic.Funcs(),
		Consts: map[semantics.Name]uint64{
			semantics.QueueID: 0, semantics.Mark: 0, semantics.CryptoCtx: 0,
			semantics.LROSegs: 1, semantics.SegCnt: 1, semantics.RXDropHint: 0,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if viol := v.Check(rec, p); viol != nil {
		t.Fatalf("clean record rejected: %v", viol)
	}
	mut := append([]byte(nil), rec...)
	mut[f.OffsetBits/8] ^= 1 << (f.OffsetBits % 8)
	viol := v.Check(mut, p)
	if viol == nil || viol.Kind != codegen.ViolationConst {
		t.Errorf("queue_id flip: got %v, want a const violation", viol)
	}
}

// TestSoftRuntime checks the degraded-mode accessor table: every reader is a
// software shim (Hardware false) and produces the golden values even from a
// garbage descriptor.
func TestSoftRuntime(t *testing.T) {
	p := vPacket()
	res, rec := receive(t, "e1000e", p, semantics.RSS, semantics.VLAN, semantics.PktLen)
	hw := codegen.NewRuntime(res, softnic.Funcs())
	soft := codegen.NewSoftRuntime(res, softnic.Funcs())
	garbage := make([]byte, len(rec)) // all zero: a descriptor we must not trust
	for _, r := range soft.Readers {
		if r.Hardware {
			t.Errorf("soft runtime reader %s claims hardware", r.Semantic)
		}
		want := hw.Reader(r.Semantic).Read(rec, p)
		if got := r.Read(garbage, p); got != want {
			t.Errorf("%s: soft=%#x hw=%#x", r.Semantic, got, want)
		}
	}
}
