package codegen

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/semantics"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files under testdata/")

// goldenCases pin the generated output for representative NIC×intent pairs;
// any unintended change to layout selection, offsets or codegen shows up as
// a golden diff.
var goldenCases = []struct {
	name    string
	nic     string
	sems    []semantics.Name
	render  func(*core.Result) string
	outfile string
}{
	{
		name: "e1000e_fig6_go", nic: "e1000e",
		sems:    []semantics.Name{semantics.RSS, semantics.IPChecksum},
		render:  func(r *core.Result) string { return GenGo(r, "e1000eacc") },
		outfile: "e1000e_fig6.go.golden",
	},
	{
		name: "mlx5_xdp_ebpf", nic: "mlx5",
		sems:    []semantics.Name{semantics.RSS, semantics.Timestamp, semantics.VLAN},
		render:  GenEBPF,
		outfile: "mlx5_xdp.c.golden",
	},
	{
		name: "qdma_kv_c", nic: "qdma",
		sems:    []semantics.Name{semantics.KVKey, semantics.RSS, semantics.PktLen},
		render:  func(r *core.Result) string { return GenC(r, "qdma") },
		outfile: "qdma_kv.h.golden",
	},
	{
		name: "ixgbe_unaligned_batch_go", nic: "ixgbe",
		sems:    []semantics.Name{semantics.PType, semantics.PktLen},
		render:  func(r *core.Result) string { return GenGoBatch(r, "batchacc") },
		outfile: "ixgbe_batch.go.golden",
	},
	{
		name: "e1000e_report", nic: "e1000e",
		sems:    []semantics.Name{semantics.RSS, semantics.IPChecksum},
		render:  func(r *core.Result) string { return r.Report() },
		outfile: "e1000e_report.txt.golden",
	},
	{
		name: "e1000e_dot", nic: "e1000e",
		sems:    []semantics.Name{semantics.RSS},
		render:  func(r *core.Result) string { return r.Graph.DOT() },
		outfile: "e1000e_cfg.dot.golden",
	},
}

func TestGoldenOutputs(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.name, func(t *testing.T) {
			intent, err := core.IntentFromSemantics("golden", semantics.Default, c.sems...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := nic.MustLoad(c.nic).Compile(intent, core.CompileOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got := c.render(res)
			path := filepath.Join("testdata", c.outfile)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("output drifted from %s;\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
