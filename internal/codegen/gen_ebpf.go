package codegen

import (
	"fmt"
	"strings"

	"opendesc/internal/core"
)

// GenEBPF renders an eBPF/XDP C source exposing the compiled accessors to an
// XDP program. Following the paper's prototype, the completion record is
// made available through the xdp_md metadata area (bpf_xdp_adjust_meta);
// every read is preceded by the verifier-mandated bounds check so access to
// the descriptor "can be bounded and therefore read safely from an eBPF
// program".
func GenEBPF(res *core.Result) string {
	var sb strings.Builder
	sb.WriteString(banner(res, "//"))
	sb.WriteString(`
#include <linux/bpf.h>
#include <bpf/bpf_helpers.h>

`)
	fmt.Fprintf(&sb, "#define OPENDESC_CMPT_BYTES %d\n\n", res.CompletionBytes())
	sb.WriteString(`/* The driver prepends the raw completion record to the packet metadata
 * area. opendesc_cmpt() recovers and bounds it for the verifier. */
static __always_inline const __u8 *opendesc_cmpt(const struct xdp_md *ctx)
{
	const __u8 *meta = (const __u8 *)(long)ctx->data_meta;
	const __u8 *data = (const __u8 *)(long)ctx->data;

	if (meta + OPENDESC_CMPT_BYTES > data)
		return 0; /* metadata absent or truncated */
	return meta;
}

`)
	for _, a := range res.Accessors {
		name := "opendesc_get_" + string(a.Semantic)
		if !a.Hardware {
			fmt.Fprintf(&sb, "/* %q is not in the selected completion layout. The OpenDesc runtime\n", a.Semantic)
			fmt.Fprintf(&sb, " * links a software implementation instead (modelled cost %.1f). */\n", a.SoftCost)
			fmt.Fprintf(&sb, "extern %s %s_soft(const struct xdp_md *ctx);\n\n", bpfWidthType(a.WidthBits), name)
			continue
		}
		fmt.Fprintf(&sb, "/* bits [%d:%d) of the completion record (%s) */\n",
			a.OffsetBits, a.OffsetBits+a.WidthBits, a.FieldName)
		fmt.Fprintf(&sb, "static __always_inline int %s(const struct xdp_md *ctx, %s *out)\n{\n",
			name, bpfWidthType(a.WidthBits))
		sb.WriteString("\tconst __u8 *cmpt = opendesc_cmpt(ctx);\n\n\tif (!cmpt)\n\t\treturn -1;\n")
		body := genCRead(a.OffsetBits, a.WidthBits)
		body = strings.ReplaceAll(body, "return ", "*out = ")
		// genCRead ends each flavour with a return; convert to assignment +
		// success code.
		body = strings.ReplaceAll(body, "uint64_t", "__u64")
		body = strings.ReplaceAll(body, "uint32_t", "__u32")
		body = strings.ReplaceAll(body, "uint16_t", "__u16")
		body = strings.ReplaceAll(body, "uint8_t", "__u8")
		sb.WriteString(body)
		sb.WriteString("\treturn 0;\n}\n\n")
	}
	sb.WriteString(`char _license[] SEC("license") = "GPL";
`)
	return sb.String()
}

func bpfWidthType(w int) string {
	switch {
	case w <= 8:
		return "__u8"
	case w <= 16:
		return "__u16"
	case w <= 32:
		return "__u32"
	default:
		return "__u64"
	}
}
