package codegen

import (
	"strings"
	"testing"

	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/semantics"
)

func TestBatchReaderMatchesScalar(t *testing.T) {
	res := compile(t, "mlx5", semantics.RSS, semantics.Timestamp, semantics.FlowID)
	rt := NewRuntime(res, nil)
	brt := NewBatchRuntime(res)
	descs := make([][]byte, BatchWidth)
	for i := range descs {
		descs[i] = make([]byte, rt.CompletionBytes)
		for j := range descs[i] {
			descs[i][j] = byte(i*31 + j*7)
		}
	}
	for _, br := range brt.Readers {
		var out [BatchWidth]uint64
		br.Read4(descs[0], descs[1], descs[2], descs[3], &out)
		scalar := rt.Reader(semantics.Name(br.Semantic))
		for lane := 0; lane < BatchWidth; lane++ {
			want := scalar.Read(descs[lane], nil)
			if out[lane] != want {
				t.Errorf("%s lane %d = %#x, want %#x", br.Semantic, lane, out[lane], want)
			}
		}
	}
	// flow_id is 24 bits (unaligned width): ensure it went through the
	// unaligned path and still matches.
	if br := brt.Reader(string(semantics.FlowID)); br == nil || br.WidthBits != 24 {
		t.Errorf("flow_id batch reader = %+v", brt.Reader(string(semantics.FlowID)))
	}
}

func TestBatchRuntimeSkipsSoftware(t *testing.T) {
	res := compile(t, "e1000e", semantics.RSS, semantics.IPChecksum)
	brt := NewBatchRuntime(res)
	// rss is software on the csum path: no batch reader.
	if brt.Reader(string(semantics.RSS)) != nil {
		t.Error("software semantic must have no batch reader")
	}
	if brt.Reader(string(semantics.IPChecksum)) == nil {
		t.Error("hardware semantic missing batch reader")
	}
}

func TestNewBatchReaderRejectsSoftware(t *testing.T) {
	res := compile(t, "e1000e", semantics.RSS, semantics.IPChecksum)
	a := res.Accessor(semantics.RSS) // software on the csum path
	if a.Hardware {
		t.Fatal("test premise broken")
	}
	if _, err := NewBatchReader(*a); err == nil {
		t.Error("software accessor accepted")
	}
}

func TestGenGoBatchSource(t *testing.T) {
	// Request enough to force the compressed CQE, which carries the VLAN in
	// hardware (a small intent would pick the mini CQE and shim the VLAN).
	res := compile(t, "mlx5", semantics.RSS, semantics.VLAN, semantics.PType,
		semantics.PktLen, semantics.ErrorFlags)
	src := GenGoBatch(res, "batchacc")
	for _, want := range []string{
		"package batchacc",
		"func RssX4(c0, c1, c2, c3 []byte) (v0, v1, v2, v3 uint32)",
		"func VlanX4(c0, c1, c2, c3 []byte) (v0, v1, v2, v3 uint16)",
		"c3[", // all four lanes referenced
	} {
		if !strings.Contains(src, want) {
			t.Errorf("batch source missing %q:\n%s", want, src)
		}
	}
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces")
	}
}

func TestGenGoBatchUnalignedLanes(t *testing.T) {
	// ixgbe's 13-bit ptype forces the shift/mask form in every lane with
	// per-lane temporaries (no variable collisions).
	res := compile(t, "ixgbe", semantics.PType)
	src := GenGoBatch(res, "b")
	for lane := 0; lane < BatchWidth; lane++ {
		if !strings.Contains(src, "u"+string(rune('0'+lane))+" := uint64(0)") {
			t.Errorf("missing lane %d temporary:\n%s", lane, src)
		}
	}
}

// BenchmarkBatchVsScalar compares 4 scalar reads against one 4-wide batch
// read (the §5 SIMD-accessor shape).
func BenchmarkBatchVsScalar(b *testing.B) {
	res, err := compileB("mlx5", semantics.RSS)
	if err != nil {
		b.Fatal(err)
	}
	rt := NewRuntime(res, nil)
	brt := NewBatchRuntime(res)
	descs := make([][]byte, BatchWidth)
	for i := range descs {
		descs[i] = make([]byte, rt.CompletionBytes)
	}
	var sink uint64
	b.Run("scalar-x4", func(b *testing.B) {
		r := rt.Reader(semantics.RSS)
		for i := 0; i < b.N; i++ {
			sink += r.Read(descs[0], nil)
			sink += r.Read(descs[1], nil)
			sink += r.Read(descs[2], nil)
			sink += r.Read(descs[3], nil)
		}
	})
	b.Run("batch-x4", func(b *testing.B) {
		br := brt.Reader(string(semantics.RSS))
		var out [BatchWidth]uint64
		for i := 0; i < b.N; i++ {
			br.Read4(descs[0], descs[1], descs[2], descs[3], &out)
			sink += out[0] + out[1] + out[2] + out[3]
		}
	})
	_ = sink
}

func compileB(nicName string, sems ...semantics.Name) (*core.Result, error) {
	intent, err := core.IntentFromSemantics("bench_intent", semantics.Default, sems...)
	if err != nil {
		return nil, err
	}
	return nic.MustLoad(nicName).Compile(intent, core.CompileOptions{})
}
