// Package codegen synthesizes host-side accessors from an OpenDesc
// compilation result in three forms:
//
//   - an executable Runtime of constant-time Go closures (what the simulator
//     datapath and the benchmarks actually run),
//   - Go source (a standalone accessor package),
//   - C and eBPF/XDP C source, mirroring the paper's prototype which exposes
//     descriptor metadata to eBPF programs through bounded descriptor reads.
package codegen

import (
	"fmt"

	"opendesc/internal/bitfield"
	"opendesc/internal/core"
	"opendesc/internal/semantics"
)

// SoftFunc computes a semantic in software from the raw packet bytes
// (a SoftNIC shim body).
type SoftFunc func(packet []byte) uint64

// Reader is a compiled constant-time accessor over a completion record.
type Reader struct {
	Semantic   semantics.Name
	Hardware   bool
	OffsetBits int
	WidthBits  int
	// read is non-nil for hardware accessors.
	read func(desc []byte) uint64
	// soft is non-nil for software shims.
	soft SoftFunc
}

// Read returns the metadata value: a direct bit-slice load for hardware
// accessors, the software shim otherwise.
func (r *Reader) Read(desc, packet []byte) uint64 {
	if r.Hardware {
		return r.read(desc)
	}
	if r.soft == nil {
		panic(fmt.Sprintf("codegen: software shim for %q not linked", r.Semantic))
	}
	return r.soft(packet)
}

// Runtime is the executable accessor table for one compilation result.
type Runtime struct {
	Result  *core.Result
	Readers []*Reader
	byName  map[semantics.Name]*Reader
	// CompletionBytes is the size of the completion record the NIC will DMA
	// under the selected configuration.
	CompletionBytes int
}

// NewRuntime builds the executable accessors for a compilation result.
// softImpls supplies SoftNIC shim bodies for the software accessors; a
// missing implementation is only an error when that accessor is actually
// invoked ("the user is responsible for providing a linkable software
// implementation").
func NewRuntime(res *core.Result, softImpls map[semantics.Name]SoftFunc) *Runtime {
	rt := &Runtime{
		Result:          res,
		byName:          make(map[semantics.Name]*Reader, len(res.Accessors)),
		CompletionBytes: res.CompletionBytes(),
	}
	for _, a := range res.Accessors {
		r := &Reader{
			Semantic:   a.Semantic,
			Hardware:   a.Hardware,
			OffsetBits: a.OffsetBits,
			WidthBits:  a.WidthBits,
		}
		if a.Hardware {
			off, w := a.OffsetBits, a.WidthBits
			if off%8 == 0 && (w == 8 || w == 16 || w == 32 || w == 64) {
				r.read = func(d []byte) uint64 { return bitfield.ReadAligned(d, off, w) }
			} else {
				r.read = func(d []byte) uint64 { return bitfield.Read(d, off, w) }
			}
		} else {
			r.soft = softImpls[a.Semantic]
		}
		rt.Readers = append(rt.Readers, r)
		rt.byName[a.Semantic] = r
	}
	return rt
}

// Linked reports whether the reader can execute: hardware accessors always
// can; software accessors need a shim body linked.
func (r *Reader) Linked() bool { return r.Hardware || r.soft != nil }

// Reader returns the accessor for a semantic, or nil.
func (rt *Runtime) Reader(s semantics.Name) *Reader { return rt.byName[s] }

// Read is a convenience wrapper: read one semantic for a received packet.
func (rt *Runtime) Read(s semantics.Name, desc, packet []byte) (uint64, error) {
	r := rt.byName[s]
	if r == nil {
		return 0, fmt.Errorf("codegen: no accessor for semantic %q", s)
	}
	if !r.Hardware && r.soft == nil {
		return 0, fmt.Errorf("codegen: software shim for %q not linked", s)
	}
	return r.Read(desc, packet), nil
}

// ReadAll reads every accessor into dst (keyed by semantic); used by the
// full-extraction comparison paths and tests.
func (rt *Runtime) ReadAll(desc, packet []byte, dst map[semantics.Name]uint64) {
	for _, r := range rt.Readers {
		dst[r.Semantic] = r.Read(desc, packet)
	}
}
