package codegen

import (
	goast "go/ast"
	goimporter "go/importer"
	goparser "go/parser"
	gotoken "go/token"
	gotypes "go/types"
	"testing"

	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/semantics"
)

// typecheckGo parses and type-checks a generated Go source file with the
// real Go toolchain packages — the generated accessors must be valid,
// compilable Go, not merely plausible-looking text.
func typecheckGo(t *testing.T, src string) {
	t.Helper()
	fset := gotoken.NewFileSet()
	file, err := goparser.ParseFile(fset, "generated.go", src, 0)
	if err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}
	conf := gotypes.Config{Importer: goimporter.Default()}
	if _, err := conf.Check("generated", fset, []*goast.File{file}, nil); err != nil {
		t.Fatalf("generated source does not type-check: %v\n%s", err, src)
	}
}

// TestGeneratedGoTypechecks runs every bundled NIC through representative
// intents and type-checks the scalar and batch accessor sources.
func TestGeneratedGoTypechecks(t *testing.T) {
	intents := [][]semantics.Name{
		{semantics.RSS},
		{semantics.RSS, semantics.VLAN, semantics.PktLen, semantics.ErrorFlags},
		{semantics.RSS, semantics.IPChecksum},                   // forces a software shim
		{semantics.PType, semantics.PktLen},                     // 13-bit unaligned on ixgbe
		{semantics.KVKey, semantics.RSS, semantics.PktLen},      // 64-bit fields on qdma
		{semantics.FlowID, semantics.Mark, semantics.Timestamp}, // 24-bit fields on mlx5
	}
	for _, m := range nic.All() {
		for _, sems := range intents {
			intent, err := core.IntentFromSemantics("tc", semantics.Default, sems...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Compile(intent, core.CompileOptions{})
			if err != nil {
				continue // unsatisfiable on this NIC: nothing to generate
			}
			typecheckGo(t, GenGo(res, "acc"))
			typecheckGo(t, GenGoBatch(res, "accbatch"))
		}
	}
}
