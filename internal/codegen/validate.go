package codegen

import (
	"fmt"
	"sync/atomic"

	"opendesc/internal/bitfield"
	"opendesc/internal/core"
	"opendesc/internal/obs/flight"
	"opendesc/internal/semantics"
)

// This file synthesizes a completion-record *validator* from the same
// compilation result the accessors are generated from. A real device may
// violate its declared contract (bit-flipped DMA, torn writes, stale
// replays); because OpenDesc knows the exact layout the configuration
// selects, the host can mechanically check every bit of a record before
// trusting it:
//
//   - discriminant fields — layout fields that mirror a context register
//     (e.g. a format selector) must carry exactly the value ApplyConfig
//     programmed, recomputed here via core.ConfigAssignment;
//   - pads and reserved fields (no semantic tag) must be zero, as must the
//     slack bits between the end of the layout and the byte boundary;
//   - device-state fields whose value is fixed by the driver's configuration
//     (queue id, mark, …) must carry that constant;
//   - value fields can be *deeply* checked by recomputing the semantic from
//     the raw packet with the SoftNIC reference functions and comparing,
//     masked to the field width.
//
// The structural tiers are O(#fields) bit reads per record and are meant to
// stay enabled in production; the deep tier re-runs the software path per
// packet and is switched on for fault-hunting runs (and the E16 experiment).

// ViolationKind classifies why a completion record was rejected.
type ViolationKind int

const (
	// ViolationShort: the record is smaller than the layout requires.
	ViolationShort ViolationKind = iota
	// ViolationPad: a reserved/pad field or slack bit range is non-zero.
	ViolationPad
	// ViolationDiscriminant: a context-register field does not match the
	// programmed configuration.
	ViolationDiscriminant
	// ViolationConst: a device-state field does not match its configured
	// constant.
	ViolationConst
	// ViolationValue: deep check — a packet-derived field does not match the
	// value recomputed from the raw packet.
	ViolationValue
)

var violationNames = map[ViolationKind]string{
	ViolationShort: "short", ViolationPad: "pad",
	ViolationDiscriminant: "discriminant", ViolationConst: "const",
	ViolationValue: "value",
}

func (k ViolationKind) String() string { return violationNames[k] }

// Violation describes the first check a completion record failed.
type Violation struct {
	Kind     ViolationKind
	Field    string // layout field name ("(slack)" for trailing bits)
	Semantic semantics.Name
	Want     uint64
	Got      uint64
}

func (v *Violation) Error() string {
	return fmt.Sprintf("completion %s violation at %s: got %#x, want %#x", v.Kind, v.Field, v.Got, v.Want)
}

// ValidatorOptions selects the validation tiers.
type ValidatorOptions struct {
	// Deep enables the per-packet conformance tier: packet-derived fields are
	// recomputed with Soft and compared. Structural tiers are always on.
	Deep bool
	// Soft supplies the reference implementations for the deep tier
	// (typically softnic.Funcs()).
	Soft map[semantics.Name]SoftFunc
	// Consts pins device-state semantics to the constants the driver
	// configured (queue id, mark, crypto ctx, …); those fields are checked
	// structurally even when Deep is off.
	Consts map[semantics.Name]uint64
	// Skip exempts semantics no host-side check can predict (timestamps).
	// Defaults to {timestamp} when nil.
	Skip map[semantics.Name]bool
}

// fieldCheck is one precompiled per-field check.
type fieldCheck struct {
	name  string
	sem   semantics.Name
	off   int
	width int
	kind  ViolationKind
	want  uint64   // pad/discriminant/const expectation
	soft  SoftFunc // deep recomputation
	mask  uint64
}

// Validator checks completion records against the compiled contract.
type Validator struct {
	res      *core.Result
	recBytes int
	checks   []fieldCheck
	deep     bool

	structuralBits int
	deepBits       int
	totalBits      int
	uncovered      []string

	// fq, when attached, receives one verdict event per Check call (not per
	// Conforms — the hardened driver calls Conforms repeatedly while
	// re-classifying a single record during resync, which would flood the
	// stream with echoes of one verdict). nChecks is the verdict sequence.
	fq      *flight.Queue
	nChecks atomic.Uint32
}

// AttachFlight wires per-Check verdict events to q (nil detaches).
func (v *Validator) AttachFlight(q *flight.Queue) { v.fq = q }

// NewValidator compiles the check table for a compilation result.
func NewValidator(res *core.Result, opts ValidatorOptions) (*Validator, error) {
	assign, err := core.ConfigAssignment(res.Config)
	if err != nil {
		return nil, fmt.Errorf("codegen: validator: %w", err)
	}
	if opts.Skip == nil {
		opts.Skip = map[semantics.Name]bool{semantics.Timestamp: true}
	}
	path := res.Selected.Path
	v := &Validator{
		res:      res,
		recBytes: res.CompletionBytes(),
		deep:     opts.Deep,
	}
	v.totalBits = v.recBytes * 8
	for _, f := range path.Fields {
		mask := ^uint64(0)
		if f.WidthBits < 64 {
			mask = (uint64(1) << f.WidthBits) - 1
		}
		c := fieldCheck{name: f.Name, sem: f.Semantic, off: f.OffsetBits, width: f.WidthBits, mask: mask}
		if reg, isDiscriminant := assign[f.Name]; isDiscriminant {
			c.kind = ViolationDiscriminant
			c.want = reg & mask
			v.structuralBits += f.WidthBits
		} else if f.Semantic == "" {
			c.kind = ViolationPad
			v.structuralBits += f.WidthBits
		} else if opts.Skip[f.Semantic] {
			v.uncovered = append(v.uncovered, f.Name)
			continue
		} else if konst, isConst := opts.Consts[f.Semantic]; isConst {
			c.kind = ViolationConst
			c.want = konst & mask
			v.structuralBits += f.WidthBits
		} else if soft := opts.Soft[f.Semantic]; soft != nil {
			c.kind = ViolationValue
			c.soft = soft
			v.deepBits += f.WidthBits
		} else {
			v.uncovered = append(v.uncovered, f.Name)
			continue
		}
		v.checks = append(v.checks, c)
	}
	// The slack bits between the end of the layout and the record's byte
	// boundary are never written by the deparser; a flip there is detectable.
	if slack := v.recBytes*8 - path.SizeBits(); slack > 0 {
		v.checks = append(v.checks, fieldCheck{
			name: "(slack)", off: path.SizeBits(), width: slack, kind: ViolationPad,
		})
		v.structuralBits += slack
	}
	return v, nil
}

// RecordBytes returns the completion size the validator expects.
func (v *Validator) RecordBytes() int { return v.recBytes }

// Deep reports whether the deep tier is enabled for Check.
func (v *Validator) Deep() bool { return v.deep }

// Check validates one completion record against the packet it should
// describe. It returns nil for a conforming record, or the first violation.
// The deep tier runs only when the validator was built with Deep.
func (v *Validator) Check(rec, packet []byte) *Violation {
	viol := v.check(rec, packet, v.deep)
	if v.fq != nil {
		// Violations are always recorded; conforming verdicts are routine
		// per-completion traffic and sampled (flight.SamplePeriod).
		n := v.nChecks.Add(1)
		if viol != nil {
			v.fq.Record(flight.EvVerdict, n, uint64(viol.Kind)+1, uint64(len(rec)))
		} else if flight.Sampled(n) {
			v.fq.Record(flight.EvVerdict, n, 0, uint64(len(rec)))
		}
	}
	return viol
}

// Conforms reports whether rec fully describes packet, with the deep tier
// forced on regardless of options. The hardened driver uses it to classify
// rejected records during resynchronization (is this stale record the
// completion of an *earlier* packet?).
func (v *Validator) Conforms(rec, packet []byte) bool {
	return v.check(rec, packet, true) == nil
}

func (v *Validator) check(rec, packet []byte, deep bool) *Violation {
	if len(rec) < v.recBytes {
		return &Violation{Kind: ViolationShort, Field: "(record)", Want: uint64(v.recBytes), Got: uint64(len(rec))}
	}
	for i := range v.checks {
		c := &v.checks[i]
		switch c.kind {
		case ViolationValue:
			if !deep {
				continue
			}
			want := c.soft(packet) & c.mask
			if got := bitfield.Read(rec, c.off, c.width); got != want {
				return &Violation{Kind: ViolationValue, Field: c.name, Semantic: c.sem, Want: want, Got: got}
			}
		default:
			if c.width > 64 {
				// Wide pads are checked in 64-bit chunks (always want == 0).
				for off := c.off; off < c.off+c.width; off += 64 {
					w := c.off + c.width - off
					if w > 64 {
						w = 64
					}
					if got := bitfield.Read(rec, off, w); got != 0 {
						return &Violation{Kind: c.kind, Field: c.name, Semantic: c.sem, Got: got}
					}
				}
				continue
			}
			if got := bitfield.Read(rec, c.off, c.width); got != c.want {
				return &Violation{Kind: c.kind, Field: c.name, Semantic: c.sem, Want: c.want, Got: got}
			}
		}
	}
	return nil
}

// Coverage reports how much of the completion record the validator can
// vouch for.
type Coverage struct {
	// TotalBits is the record size in bits.
	TotalBits int
	// StructuralBits are covered by the always-on tiers (pads, slack,
	// discriminants, device-state constants).
	StructuralBits int
	// DeepBits are covered only when the deep tier runs.
	DeepBits int
	// Uncovered lists layout fields no check can vouch for (skipped
	// semantics, or value fields with no reference implementation).
	Uncovered []string
}

// Fraction returns the covered share of record bits given the validator's
// deep setting at construction.
func (c Coverage) Fraction(deep bool) float64 {
	if c.TotalBits == 0 {
		return 1
	}
	n := c.StructuralBits
	if deep {
		n += c.DeepBits
	}
	return float64(n) / float64(c.TotalBits)
}

// Coverage returns the validator's bit-coverage accounting.
func (v *Validator) Coverage() Coverage {
	return Coverage{
		TotalBits:      v.totalBits,
		StructuralBits: v.structuralBits,
		DeepBits:       v.deepBits,
		Uncovered:      append([]string(nil), v.uncovered...),
	}
}

// NewSoftRuntime builds an accessor table that serves *every* semantic from
// the software reference implementations, ignoring hardware placements —
// the degraded-mode runtime a hardened driver swaps in when it stops
// trusting the device (Meta.Hardware() reports false for all fields).
func NewSoftRuntime(res *core.Result, softImpls map[semantics.Name]SoftFunc) *Runtime {
	rt := &Runtime{
		Result:          res,
		byName:          make(map[semantics.Name]*Reader, len(res.Accessors)),
		CompletionBytes: res.CompletionBytes(),
	}
	for _, a := range res.Accessors {
		r := &Reader{
			Semantic:   a.Semantic,
			Hardware:   false,
			OffsetBits: a.OffsetBits,
			WidthBits:  a.WidthBits,
			soft:       softImpls[a.Semantic],
		}
		rt.Readers = append(rt.Readers, r)
		rt.byName[a.Semantic] = r
	}
	return rt
}
