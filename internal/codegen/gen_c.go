package codegen

import (
	"fmt"
	"strings"

	"opendesc/internal/core"
)

func cWidthType(w int) string {
	switch {
	case w <= 8:
		return "uint8_t"
	case w <= 16:
		return "uint16_t"
	case w <= 32:
		return "uint32_t"
	default:
		return "uint64_t"
	}
}

// GenC renders a C header with static-inline constant-time accessors, for
// applications that map the NIC completion ring directly (the paper's
// "userlevel programs directly accessing the NIC descriptors").
func GenC(res *core.Result, prefix string) string {
	guard := strings.ToUpper(prefix) + "_OPENDESC_H"
	var sb strings.Builder
	sb.WriteString(banner(res, "//"))
	fmt.Fprintf(&sb, "#ifndef %s\n#define %s\n\n#include <stdint.h>\n\n", guard, guard)
	fmt.Fprintf(&sb, "#define %s_CMPT_BYTES %d\n\n", strings.ToUpper(prefix), res.CompletionBytes())

	for _, c := range res.Config {
		macro := strings.ToUpper(prefix) + "_CFG_" + strings.ToUpper(strings.ReplaceAll(strings.ReplaceAll(c.Var, ".", "_"), "-", "_"))
		op := ""
		if !c.Equal {
			op = "_NOT"
		}
		fmt.Fprintf(&sb, "#define %s%s %s /* context configuration */\n", macro, op, c.Val)
	}
	if len(res.Config) > 0 {
		sb.WriteString("\n")
	}

	for _, a := range res.Accessors {
		name := fmt.Sprintf("%s_get_%s", prefix, a.Semantic)
		if !a.Hardware {
			fmt.Fprintf(&sb, "/* %q is not provided by the selected layout: provide a software\n * implementation (modelled cost %.1f). */\n", a.Semantic, a.SoftCost)
			fmt.Fprintf(&sb, "extern %s %s_soft(const uint8_t *pkt, uint32_t len);\n\n", cWidthType(a.WidthBits), name)
			continue
		}
		fmt.Fprintf(&sb, "/* bits [%d:%d) of the completion record (%s) */\n",
			a.OffsetBits, a.OffsetBits+a.WidthBits, a.FieldName)
		fmt.Fprintf(&sb, "static inline %s %s(const uint8_t *cmpt) {\n", cWidthType(a.WidthBits), name)
		sb.WriteString(genCRead(a.OffsetBits, a.WidthBits))
		sb.WriteString("}\n\n")
	}
	fmt.Fprintf(&sb, "#endif /* %s */\n", guard)
	return sb.String()
}

func genCRead(off, w int) string {
	var sb strings.Builder
	typ := cWidthType(w)
	if off%8 == 0 && (w == 8 || w == 16 || w == 32 || w == 64) {
		i := off / 8
		switch w {
		case 8:
			fmt.Fprintf(&sb, "\treturn cmpt[%d];\n", i)
		default:
			fmt.Fprintf(&sb, "\t%s v = 0;\n", typ)
			for k := 0; k < w/8; k++ {
				fmt.Fprintf(&sb, "\tv = (%s)(v << 8) | cmpt[%d];\n", typ, i+k)
			}
			sb.WriteString("\treturn v;\n")
		}
		return sb.String()
	}
	firstByte := off / 8
	lastBit := off + w
	lastByte := (lastBit + 7) / 8
	sb.WriteString("\tuint64_t v = 0;\n")
	for i := firstByte; i < lastByte; i++ {
		fmt.Fprintf(&sb, "\tv = v << 8 | cmpt[%d];\n", i)
	}
	if tail := lastByte*8 - lastBit; tail > 0 {
		fmt.Fprintf(&sb, "\tv >>= %d;\n", tail)
	}
	if w < 64 {
		fmt.Fprintf(&sb, "\treturn (%s)(v & %#xULL);\n", typ, uint64(1)<<w-1)
	} else {
		fmt.Fprintf(&sb, "\treturn (%s)v;\n", typ)
	}
	return sb.String()
}
