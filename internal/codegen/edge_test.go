package codegen

import (
	"strings"
	"testing"

	"opendesc/internal/bitfield"
	"opendesc/internal/core"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
)

// edgeSource is a synthetic interface description built to hit every
// extraction edge the generated accessors must survive: a 1-bit flag at
// offset 0, a 63-bit field straddling the first 64-bit word, a 64-bit field
// at a byte- but not word-aligned offset, a signed int<16> field, a const
// width, and pads between them. The layout (offsets in bits):
//
//	mark    [0,1)    width 1
//	pad0    [1,4)
//	flow_id [4,67)   width 63 — straddles the 64-bit word boundary
//	pad1    [67,72)
//	kv_key  [72,136) width 64 — byte-aligned, word-unaligned
//	signed  [136,152)
//	pkt_len [152,168)
const edgeSource = `
const bit<8> PLEN_W = 16;
struct ctx_t { bit<1> wide; }
struct meta_t {
    @semantic("mark") bit<1> m1;
    bit<3> pad0;
    @semantic("flow_id") bit<63> fid;
    bit<5> pad1;
    @semantic("kv_key") bit<64> key;
    int<16> temp;
    @semantic("pkt_len") bit<PLEN_W> plen;
}
@bind("CTX","ctx_t") @bind("META","meta_t")
control CmptDeparser<CTX,META>(cmpt_out co, in CTX ctx, in META m) {
    apply {
        if (ctx.wide == 1) {
            co.emit(m);
        } else {
            co.emit(m.plen);
        }
    }
}`

func compileEdge(t *testing.T) *core.Result {
	t.Helper()
	prog, err := parser.Parse("edge.p4", edgeSource)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	intent, err := core.IntentFromSemantics("edge_intent", semantics.Default,
		semantics.Mark, semantics.FlowID, semantics.KVKey, semantics.PktLen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile("edge", core.DeparserSpec{Info: info}, intent, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEdgeLayoutOffsets pins the resolved layout: widths 1/63/64 land at
// the straddling offsets the source was built for, signed and const-width
// fields take their declared widths.
func TestEdgeLayoutOffsets(t *testing.T) {
	res := compileEdge(t)
	want := map[semantics.Name][2]int{
		semantics.Mark:   {0, 1},
		semantics.FlowID: {4, 63},
		semantics.KVKey:  {72, 64},
		semantics.PktLen: {152, 16},
	}
	for sem, ow := range want {
		a := res.Accessor(sem)
		if a == nil || !a.Hardware {
			t.Fatalf("%s: no hardware accessor (%+v)", sem, a)
		}
		if a.OffsetBits != ow[0] || a.WidthBits != ow[1] {
			t.Errorf("%s at bits[%d:%d), want bits[%d:%d)",
				sem, a.OffsetBits, a.OffsetBits+a.WidthBits, ow[0], ow[0]+ow[1])
		}
	}
	if got := res.Selected.Path.SizeBytes(); got != 21 {
		t.Errorf("completion entry %d bytes, want 21", got)
	}
}

// TestEdgeRuntimeMatchesBitfield: the executable runtime readers agree with
// direct bitfield extraction on adversarial fill patterns — all-ones (mask
// leaks), alternating phases (shift errors), and a pseudo-random fill.
func TestEdgeRuntimeMatchesBitfield(t *testing.T) {
	res := compileEdge(t)
	rt := NewRuntime(res, nil)
	fills := [][]byte{make([]byte, rt.CompletionBytes), make([]byte, rt.CompletionBytes),
		make([]byte, rt.CompletionBytes), make([]byte, rt.CompletionBytes)}
	for i := range fills[1] {
		fills[1][i] = 0xff
	}
	for i := range fills[2] {
		fills[2][i] = 0x55
	}
	for i := range fills[3] {
		fills[3][i] = byte(i*197 + 83)
	}
	for _, desc := range fills {
		for _, r := range rt.Readers {
			if !r.Hardware {
				continue
			}
			want := bitfield.Read(desc, r.OffsetBits, r.WidthBits)
			if got := r.Read(desc, nil); got != want {
				t.Errorf("%s bits[%d:%d): runtime %#x != bitfield %#x",
					r.Semantic, r.OffsetBits, r.OffsetBits+r.WidthBits, got, want)
			}
		}
	}
}

// TestEdgeGeneratedSources: all three source backends emit accessors for the
// edge widths (a 64-bit read must not truncate its return type; a 1-bit read
// must still mask).
func TestEdgeGeneratedSources(t *testing.T) {
	res := compileEdge(t)
	goSrc := GenGo(res, "edgeacc")
	for _, want := range []string{
		"func KvKey(cmpt []byte) uint64 {",
		"func Mark(cmpt []byte) uint8 {",
		"func FlowId(cmpt []byte) uint64 {",
	} {
		if !strings.Contains(goSrc, want) {
			t.Errorf("GenGo missing %q:\n%s", want, goSrc)
		}
	}
	if c := GenC(res, "edge"); !strings.Contains(c, "uint64_t") {
		t.Errorf("GenC lacks a 64-bit accessor:\n%s", c)
	}
	if e := GenEBPF(res); !strings.Contains(e, "__u64") {
		t.Errorf("GenEBPF lacks a 64-bit accessor:\n%s", e)
	}
}

// TestEdgeNarrowPath: the same description compiled for pkt_len alone must
// select the narrow completion path (2-byte records) and fall back to
// software for everything the narrow path cannot carry.
func TestEdgeNarrowPath(t *testing.T) {
	prog, err := parser.Parse("edge.p4", edgeSource)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	intent, err := core.IntentFromSemantics("edge_narrow", semantics.Default, semantics.PktLen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile("edge", core.DeparserSpec{Info: info}, intent, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Selected.Path.SizeBytes(); got != 2 {
		t.Errorf("narrow path %d bytes, want 2", got)
	}
	a := res.Accessor(semantics.PktLen)
	if a == nil || !a.Hardware || a.OffsetBits != 0 || a.WidthBits != 16 {
		t.Errorf("narrow pkt_len accessor = %+v", a)
	}
}
