package pkt

import (
	"encoding/binary"
	"fmt"
)

// Builder assembles test/workload packets. All With* methods return the
// builder for chaining; Build produces a fresh byte slice.
type Builder struct {
	srcMAC, dstMAC [6]byte
	vlanTCIs       []uint16
	ipv6           bool
	srcIP, dstIP   [16]byte
	proto          uint8
	srcPort        uint16
	dstPort        uint16
	tcpFlags       uint8
	ipID           uint16
	ttl            uint8
	payload        []byte
	badIPCsum      bool
	badL4Csum      bool
}

// NewBuilder returns a builder with sane defaults (IPv4 UDP 10.0.0.1→10.0.0.2,
// ports 1000→2000, TTL 64).
func NewBuilder() *Builder {
	b := &Builder{
		srcMAC:  [6]byte{0x02, 0, 0, 0, 0, 1},
		dstMAC:  [6]byte{0x02, 0, 0, 0, 0, 2},
		proto:   ProtoUDP,
		srcPort: 1000,
		dstPort: 2000,
		ttl:     64,
	}
	copy(b.srcIP[:4], []byte{10, 0, 0, 1})
	copy(b.dstIP[:4], []byte{10, 0, 0, 2})
	return b
}

// WithVLAN appends a VLAN tag (outer first).
func (b *Builder) WithVLAN(tci uint16) *Builder {
	b.vlanTCIs = append(b.vlanTCIs, tci)
	return b
}

// WithIPv4 sets IPv4 addressing.
func (b *Builder) WithIPv4(src, dst [4]byte) *Builder {
	b.ipv6 = false
	b.srcIP = [16]byte{}
	b.dstIP = [16]byte{}
	copy(b.srcIP[:4], src[:])
	copy(b.dstIP[:4], dst[:])
	return b
}

// WithIPv6 sets IPv6 addressing.
func (b *Builder) WithIPv6(src, dst [16]byte) *Builder {
	b.ipv6 = true
	b.srcIP = src
	b.dstIP = dst
	return b
}

// WithTCP selects TCP with the given ports and flags.
func (b *Builder) WithTCP(src, dst uint16, flags uint8) *Builder {
	b.proto = ProtoTCP
	b.srcPort, b.dstPort, b.tcpFlags = src, dst, flags
	return b
}

// WithUDP selects UDP with the given ports.
func (b *Builder) WithUDP(src, dst uint16) *Builder {
	b.proto = ProtoUDP
	b.srcPort, b.dstPort = src, dst
	return b
}

// WithPayload sets the L4 payload.
func (b *Builder) WithPayload(p []byte) *Builder {
	b.payload = p
	return b
}

// WithIPID sets the IPv4 identification field.
func (b *Builder) WithIPID(id uint16) *Builder {
	b.ipID = id
	return b
}

// WithBadIPChecksum corrupts the IPv4 header checksum (for error-path tests).
func (b *Builder) WithBadIPChecksum() *Builder {
	b.badIPCsum = true
	return b
}

// WithBadL4Checksum corrupts the TCP/UDP checksum.
func (b *Builder) WithBadL4Checksum() *Builder {
	b.badL4Csum = true
	return b
}

// Build serializes the packet.
func (b *Builder) Build() []byte {
	l3len := IPv4MinLen
	if b.ipv6 {
		l3len = IPv6HeaderLen
	}
	l4len := UDPHeaderLen
	if b.proto == ProtoTCP {
		l4len = TCPMinLen
	}
	total := EthHeaderLen + len(b.vlanTCIs)*VLANTagLen + l3len + l4len + len(b.payload)
	buf := make([]byte, total)

	// Ethernet.
	copy(buf[0:6], b.dstMAC[:])
	copy(buf[6:12], b.srcMAC[:])
	off := 12
	for i, tci := range b.vlanTCIs {
		et := EtherTypeVLAN
		if len(b.vlanTCIs) == 2 && i == 0 {
			et = EtherTypeQinQ
		}
		binary.BigEndian.PutUint16(buf[off:], et)
		off += 2
		binary.BigEndian.PutUint16(buf[off:], tci)
		off += 2
	}
	if b.ipv6 {
		binary.BigEndian.PutUint16(buf[off:], EtherTypeIPv6)
	} else {
		binary.BigEndian.PutUint16(buf[off:], EtherTypeIPv4)
	}
	off += 2

	l3Off := off
	if b.ipv6 {
		buf[off] = 6 << 4
		binary.BigEndian.PutUint16(buf[off+4:], uint16(l4len+len(b.payload)))
		buf[off+6] = b.proto
		buf[off+7] = b.ttl
		copy(buf[off+8:], b.srcIP[:])
		copy(buf[off+24:], b.dstIP[:])
		off += IPv6HeaderLen
	} else {
		buf[off] = 4<<4 | 5
		binary.BigEndian.PutUint16(buf[off+2:], uint16(l3len+l4len+len(b.payload)))
		binary.BigEndian.PutUint16(buf[off+4:], b.ipID)
		buf[off+8] = b.ttl
		buf[off+9] = b.proto
		copy(buf[off+12:], b.srcIP[:4])
		copy(buf[off+16:], b.dstIP[:4])
		csum := IPv4HeaderChecksum(buf[off : off+IPv4MinLen])
		if b.badIPCsum {
			csum ^= 0xBEEF
		}
		binary.BigEndian.PutUint16(buf[off+10:], csum)
		off += IPv4MinLen
	}

	l4Off := off
	if b.proto == ProtoTCP {
		binary.BigEndian.PutUint16(buf[off:], b.srcPort)
		binary.BigEndian.PutUint16(buf[off+2:], b.dstPort)
		buf[off+12] = 5 << 4 // data offset: 5 words
		buf[off+13] = b.tcpFlags
		binary.BigEndian.PutUint16(buf[off+14:], 0xFFFF) // window
		off += TCPMinLen
	} else {
		binary.BigEndian.PutUint16(buf[off:], b.srcPort)
		binary.BigEndian.PutUint16(buf[off+2:], b.dstPort)
		binary.BigEndian.PutUint16(buf[off+4:], uint16(UDPHeaderLen+len(b.payload)))
		off += UDPHeaderLen
	}
	copy(buf[off:], b.payload)

	// L4 checksum over the finished packet.
	var info Info
	if err := Decode(buf, &info); err != nil {
		panic(fmt.Sprintf("pkt.Builder produced undecodable packet: %v", err))
	}
	if csum, ok := L4Checksum(&info); ok {
		if b.badL4Csum {
			csum ^= 0xDEAD
		}
		if csum == 0 {
			csum = 0xFFFF // RFC 768: transmitted as all ones
		}
		csumOff := l4Off + 16
		if b.proto == ProtoUDP {
			csumOff = l4Off + 6
		}
		binary.BigEndian.PutUint16(buf[csumOff:], csum)
	}
	_ = l3Off
	return buf
}
