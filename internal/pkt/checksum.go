package pkt

import "encoding/binary"

// ChecksumAccumulator incrementally computes the Internet (RFC 1071) one's
// complement checksum.
type ChecksumAccumulator struct {
	sum uint64
	odd bool
}

// Add folds data into the checksum, handling odd-length segments across
// calls.
func (c *ChecksumAccumulator) Add(data []byte) {
	i := 0
	if c.odd && len(data) > 0 {
		c.sum += uint64(data[0])
		i = 1
		c.odd = false
	}
	for ; i+1 < len(data); i += 2 {
		c.sum += uint64(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if i < len(data) {
		c.sum += uint64(data[i]) << 8
		c.odd = true
	}
}

// AddUint16 folds a single big-endian word.
func (c *ChecksumAccumulator) AddUint16(v uint16) { c.sum += uint64(v) }

// Sum finalizes and returns the one's complement checksum.
func (c *ChecksumAccumulator) Sum() uint16 {
	s := c.sum
	for s>>16 != 0 {
		s = (s & 0xFFFF) + (s >> 16)
	}
	return ^uint16(s)
}

// Checksum computes the Internet checksum of data in one shot.
func Checksum(data []byte) uint16 {
	var c ChecksumAccumulator
	c.Add(data)
	return c.Sum()
}

// IPv4HeaderChecksum computes the header checksum for the IPv4 header at
// hdr (with the checksum field bytes treated as zero).
func IPv4HeaderChecksum(hdr []byte) uint16 {
	var c ChecksumAccumulator
	c.Add(hdr[:10])
	// skip checksum bytes 10..11
	c.Add(hdr[12:])
	return c.Sum()
}

// VerifyIPv4Header reports whether the IPv4 header at hdr has a valid
// checksum.
func VerifyIPv4Header(hdr []byte) bool {
	var c ChecksumAccumulator
	c.Add(hdr)
	// Summing the full header including its checksum yields 0 when valid.
	return c.Sum() == 0
}

// L4Checksum computes the TCP/UDP checksum for the parsed packet, including
// the pseudo-header. Returns 0, false if the packet has no supported L4.
func L4Checksum(in *Info) (uint16, bool) {
	if in.L4 != L4TCP && in.L4 != L4UDP {
		return 0, false
	}
	var c ChecksumAccumulator
	l4 := in.Data[in.L4Off:]
	l4len := len(l4)
	switch in.L3 {
	case L3IPv4:
		c.Add(in.SrcIP[:4])
		c.Add(in.DstIP[:4])
		c.AddUint16(uint16(in.IPProto))
		c.AddUint16(uint16(l4len))
	case L3IPv6:
		c.Add(in.SrcIP[:])
		c.Add(in.DstIP[:])
		c.AddUint16(uint16(l4len >> 16))
		c.AddUint16(uint16(l4len))
		c.AddUint16(uint16(in.IPProto))
	default:
		return 0, false
	}
	// Checksum field position inside the L4 header.
	csumOff := 16 // TCP
	if in.L4 == L4UDP {
		csumOff = 6
	}
	c.Add(l4[:csumOff])
	c.Add(l4[csumOff+2:])
	return c.Sum(), true
}

// VerifyL4 reports whether the packet's TCP/UDP checksum is valid.
func VerifyL4(in *Info) bool {
	want, ok := L4Checksum(in)
	if !ok {
		return false
	}
	l4 := in.Data[in.L4Off:]
	csumOff := 16
	if in.L4 == L4UDP {
		csumOff = 6
	}
	got := binary.BigEndian.Uint16(l4[csumOff : csumOff+2])
	if in.L4 == L4UDP && got == 0 {
		return true // UDP checksum optional over IPv4
	}
	return got == want
}
