// Package pkt implements a small, allocation-free packet library for the
// protocols the OpenDesc experiments exercise: Ethernet, 802.1Q VLAN (incl.
// QinQ), IPv4, IPv6, TCP and UDP. It provides zero-copy field views over a
// byte slice plus serialization helpers used by the workload generator.
package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EtherType values understood by the decoder.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100
	EtherTypeQinQ uint16 = 0x88A8
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// Header sizes in bytes.
const (
	EthHeaderLen  = 14
	VLANTagLen    = 4
	IPv4MinLen    = 20
	IPv6HeaderLen = 40
	TCPMinLen     = 20
	UDPHeaderLen  = 8
)

// Errors returned by the decoder.
var (
	ErrTruncated   = errors.New("pkt: truncated packet")
	ErrUnsupported = errors.New("pkt: unsupported protocol")
	ErrBadVersion  = errors.New("pkt: bad IP version")
	ErrBadLength   = errors.New("pkt: inconsistent length fields")
)

// L4Kind classifies the transport layer.
type L4Kind uint8

// Transport classifications.
const (
	L4None L4Kind = iota
	L4TCP
	L4UDP
	L4Other
)

func (k L4Kind) String() string {
	switch k {
	case L4TCP:
		return "tcp"
	case L4UDP:
		return "udp"
	case L4Other:
		return "other"
	}
	return "none"
}

// L3Kind classifies the network layer.
type L3Kind uint8

// Network classifications.
const (
	L3None L3Kind = iota
	L3IPv4
	L3IPv6
	L3Other
)

func (k L3Kind) String() string {
	switch k {
	case L3IPv4:
		return "ipv4"
	case L3IPv6:
		return "ipv6"
	case L3Other:
		return "other"
	}
	return "none"
}

// Info is the parsed view of a packet: offsets of each layer inside the
// original buffer plus the extracted addressing fields. It contains no
// pointers into the heap beyond the original data slice, so decoding is
// allocation-free and Info values can be reused.
type Info struct {
	Data []byte

	// Layer offsets; -1 when the layer is absent.
	L2Off int
	L3Off int
	L4Off int
	// PayloadOff is the offset of the L4 payload (or -1).
	PayloadOff int

	L3 L3Kind
	L4 L4Kind

	// VLAN tags in outer-to-inner order (QinQ ⇒ 2 entries). TCI includes
	// PCP/DEI/VID.
	VLANTCIs  [2]uint16
	VLANCount int

	// IPv4/IPv6 addressing. For IPv4 only the first 4 bytes are meaningful.
	SrcIP [16]byte
	DstIP [16]byte

	SrcPort uint16
	DstPort uint16

	IPProto uint8
	IPID    uint16 // IPv4 only
	TTL     uint8

	// TCPFlags holds the TCP flag byte when L4 == L4TCP.
	TCPFlags uint8
}

// Reset clears the Info for reuse.
func (in *Info) Reset() {
	*in = Info{L2Off: -1, L3Off: -1, L4Off: -1, PayloadOff: -1}
}

// Payload returns the L4 payload bytes (nil when absent).
func (in *Info) Payload() []byte {
	if in.PayloadOff < 0 || in.PayloadOff > len(in.Data) {
		return nil
	}
	return in.Data[in.PayloadOff:]
}

// HasVLAN reports whether at least one VLAN tag was present.
func (in *Info) HasVLAN() bool { return in.VLANCount > 0 }

// OuterTCI returns the outermost VLAN TCI (0 when untagged).
func (in *Info) OuterTCI() uint16 {
	if in.VLANCount == 0 {
		return 0
	}
	return in.VLANTCIs[0]
}

// Decode parses an Ethernet frame into info. It stops gracefully at the first
// unsupported or truncated layer: the returned error describes the problem but
// the layers decoded up to that point remain valid.
func Decode(data []byte, in *Info) error {
	in.Reset()
	in.Data = data
	if len(data) < EthHeaderLen {
		return ErrTruncated
	}
	in.L2Off = 0
	etherType := binary.BigEndian.Uint16(data[12:14])
	off := EthHeaderLen

	// VLAN tags (up to 2: QinQ).
	for etherType == EtherTypeVLAN || etherType == EtherTypeQinQ {
		if in.VLANCount >= 2 {
			return fmt.Errorf("%w: more than two VLAN tags", ErrUnsupported)
		}
		if len(data) < off+VLANTagLen {
			return ErrTruncated
		}
		in.VLANTCIs[in.VLANCount] = binary.BigEndian.Uint16(data[off : off+2])
		in.VLANCount++
		etherType = binary.BigEndian.Uint16(data[off+2 : off+4])
		off += VLANTagLen
	}

	switch etherType {
	case EtherTypeIPv4:
		return decodeIPv4(data, off, in)
	case EtherTypeIPv6:
		return decodeIPv6(data, off, in)
	default:
		in.L3 = L3Other
		return nil
	}
}

func decodeIPv4(data []byte, off int, in *Info) error {
	if len(data) < off+IPv4MinLen {
		return ErrTruncated
	}
	b := data[off:]
	if b[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl < IPv4MinLen || len(data) < off+ihl {
		return ErrBadLength
	}
	totalLen := int(binary.BigEndian.Uint16(b[2:4]))
	if totalLen < ihl || off+totalLen > len(data) {
		return ErrBadLength
	}
	in.L3 = L3IPv4
	in.L3Off = off
	in.IPID = binary.BigEndian.Uint16(b[4:6])
	in.TTL = b[8]
	in.IPProto = b[9]
	copy(in.SrcIP[:4], b[12:16])
	copy(in.DstIP[:4], b[16:20])
	return decodeL4(data, off+ihl, in)
}

func decodeIPv6(data []byte, off int, in *Info) error {
	if len(data) < off+IPv6HeaderLen {
		return ErrTruncated
	}
	b := data[off:]
	if b[0]>>4 != 6 {
		return ErrBadVersion
	}
	in.L3 = L3IPv6
	in.L3Off = off
	in.IPProto = b[6]
	in.TTL = b[7]
	copy(in.SrcIP[:], b[8:24])
	copy(in.DstIP[:], b[24:40])
	return decodeL4(data, off+IPv6HeaderLen, in)
}

func decodeL4(data []byte, off int, in *Info) error {
	switch in.IPProto {
	case ProtoTCP:
		if len(data) < off+TCPMinLen {
			return ErrTruncated
		}
		b := data[off:]
		in.L4 = L4TCP
		in.L4Off = off
		in.SrcPort = binary.BigEndian.Uint16(b[0:2])
		in.DstPort = binary.BigEndian.Uint16(b[2:4])
		in.TCPFlags = b[13]
		dataOff := int(b[12]>>4) * 4
		if dataOff < TCPMinLen || off+dataOff > len(data) {
			return ErrBadLength
		}
		in.PayloadOff = off + dataOff
		return nil
	case ProtoUDP:
		if len(data) < off+UDPHeaderLen {
			return ErrTruncated
		}
		b := data[off:]
		in.L4 = L4UDP
		in.L4Off = off
		in.SrcPort = binary.BigEndian.Uint16(b[0:2])
		in.DstPort = binary.BigEndian.Uint16(b[2:4])
		in.PayloadOff = off + UDPHeaderLen
		return nil
	default:
		in.L4 = L4Other
		return nil
	}
}

// PTypeCode packs the parsed layer kinds into the 8-bit packet-type code NICs
// report: upper nibble L3, lower nibble L4 (matching DPDK's RTE_PTYPE split in
// spirit).
func (in *Info) PTypeCode() uint8 {
	return uint8(in.L3)<<4 | uint8(in.L4)
}
