package pkt

import (
	"testing"
	"testing/quick"
)

func TestDecodeUDPv4(t *testing.T) {
	p := NewBuilder().
		WithIPv4([4]byte{10, 1, 2, 3}, [4]byte{10, 4, 5, 6}).
		WithUDP(1234, 5678).
		WithIPID(0xCAFE).
		WithPayload([]byte("payload!")).
		Build()
	var in Info
	if err := Decode(p, &in); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if in.L3 != L3IPv4 || in.L4 != L4UDP {
		t.Errorf("layers = %v/%v", in.L3, in.L4)
	}
	if in.SrcPort != 1234 || in.DstPort != 5678 {
		t.Errorf("ports = %d/%d", in.SrcPort, in.DstPort)
	}
	if in.IPID != 0xCAFE {
		t.Errorf("ipid = %#x", in.IPID)
	}
	if in.SrcIP[0] != 10 || in.SrcIP[3] != 3 {
		t.Errorf("src ip = %v", in.SrcIP[:4])
	}
	if string(in.Payload()) != "payload!" {
		t.Errorf("payload = %q", in.Payload())
	}
	if in.HasVLAN() {
		t.Error("untagged packet reports VLAN")
	}
}

func TestDecodeTCPFlags(t *testing.T) {
	p := NewBuilder().WithTCP(80, 443, 0x12).Build()
	var in Info
	if err := Decode(p, &in); err != nil {
		t.Fatal(err)
	}
	if in.L4 != L4TCP || in.TCPFlags != 0x12 {
		t.Errorf("tcp flags = %#x", in.TCPFlags)
	}
	if in.PayloadOff != len(p) {
		t.Errorf("payload off = %d, len = %d", in.PayloadOff, len(p))
	}
}

func TestDecodeVLANAndQinQ(t *testing.T) {
	single := NewBuilder().WithVLAN(0x0123).Build()
	var in Info
	if err := Decode(single, &in); err != nil {
		t.Fatal(err)
	}
	if in.VLANCount != 1 || in.OuterTCI() != 0x0123 {
		t.Errorf("vlan = %d tags, outer %#x", in.VLANCount, in.OuterTCI())
	}
	double := NewBuilder().WithVLAN(0x0100).WithVLAN(0x0200).Build()
	if err := Decode(double, &in); err != nil {
		t.Fatal(err)
	}
	if in.VLANCount != 2 || in.VLANTCIs[0] != 0x0100 || in.VLANTCIs[1] != 0x0200 {
		t.Errorf("qinq = %v (%d)", in.VLANTCIs, in.VLANCount)
	}
}

func TestDecodeIPv6(t *testing.T) {
	var src, dst [16]byte
	src[15], dst[15] = 1, 2
	p := NewBuilder().WithIPv6(src, dst).WithTCP(1, 2, 0).Build()
	var in Info
	if err := Decode(p, &in); err != nil {
		t.Fatal(err)
	}
	if in.L3 != L3IPv6 || in.L4 != L4TCP {
		t.Errorf("layers = %v/%v", in.L3, in.L4)
	}
	if in.SrcIP != src || in.DstIP != dst {
		t.Error("ipv6 addresses mangled")
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := NewBuilder().WithTCP(1, 2, 0).Build()
	for _, cut := range []int{0, 5, 13, 15, 20, 33, 40} {
		if cut >= len(p) {
			continue
		}
		var in Info
		if err := Decode(p[:cut], &in); err == nil {
			t.Errorf("cut at %d: expected error", cut)
		}
	}
}

func TestDecodeNonIP(t *testing.T) {
	p := NewBuilder().Build()
	p[12], p[13] = 0x08, 0x06 // ARP
	var in Info
	if err := Decode(p, &in); err != nil {
		t.Fatalf("ARP should decode to L3Other: %v", err)
	}
	if in.L3 != L3Other {
		t.Errorf("l3 = %v", in.L3)
	}
}

func TestDecodeBadIPVersion(t *testing.T) {
	p := NewBuilder().Build()
	var in Info
	if err := Decode(p, &in); err != nil {
		t.Fatal(err)
	}
	p[in.L3Off] = 0x95 // version 9
	if err := Decode(p, &in); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestPTypeCode(t *testing.T) {
	var in Info
	in.L3, in.L4 = L3IPv4, L4TCP
	if in.PTypeCode() != 0x11 {
		t.Errorf("ptype = %#x", in.PTypeCode())
	}
	in.L3, in.L4 = L3IPv6, L4UDP
	if in.PTypeCode() != 0x22 {
		t.Errorf("ptype = %#x", in.PTypeCode())
	}
}

func TestIPv4HeaderChecksumValid(t *testing.T) {
	p := NewBuilder().Build()
	var in Info
	if err := Decode(p, &in); err != nil {
		t.Fatal(err)
	}
	hdr := p[in.L3Off : in.L3Off+IPv4MinLen]
	if !VerifyIPv4Header(hdr) {
		t.Error("builder checksum invalid")
	}
	bad := NewBuilder().WithBadIPChecksum().Build()
	Decode(bad, &in)
	if VerifyIPv4Header(bad[in.L3Off : in.L3Off+IPv4MinLen]) {
		t.Error("corrupted checksum verified")
	}
}

func TestL4ChecksumRoundtrip(t *testing.T) {
	for _, build := range []*Builder{
		NewBuilder().WithTCP(80, 443, 0x18).WithPayload([]byte("abcdef")),
		NewBuilder().WithUDP(53, 5353).WithPayload([]byte("odd")),
		NewBuilder().WithVLAN(7).WithTCP(1, 2, 0),
	} {
		p := build.Build()
		var in Info
		if err := Decode(p, &in); err != nil {
			t.Fatal(err)
		}
		if !VerifyL4(&in) {
			t.Errorf("builder L4 checksum invalid (%v)", in.L4)
		}
	}
	bad := NewBuilder().WithTCP(80, 443, 0).WithBadL4Checksum().Build()
	var in Info
	Decode(bad, &in)
	if VerifyL4(&in) {
		t.Error("corrupted L4 checksum verified")
	}
}

func TestChecksumAccumulatorOddSegments(t *testing.T) {
	data := []byte{0x12, 0x34, 0x56, 0x78, 0x9A}
	whole := Checksum(data)
	var c ChecksumAccumulator
	c.Add(data[:1])
	c.Add(data[1:2])
	c.Add(data[2:])
	if got := c.Sum(); got != whole {
		t.Errorf("split sum %#x != whole %#x", got, whole)
	}
}

func TestChecksumRFCExample(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 → sum 0xddf2, checksum ^sum.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

// Property: any built packet decodes with consistent lengths and verifying
// checksums.
func TestQuickBuilderDecode(t *testing.T) {
	f := func(seed uint32, tcp bool, vlan bool, payloadLen uint8) bool {
		b := NewBuilder().
			WithIPv4(
				[4]byte{byte(seed), byte(seed >> 8), byte(seed >> 16), byte(seed >> 24)},
				[4]byte{1, 2, 3, 4},
			).
			WithIPID(uint16(seed)).
			WithPayload(make([]byte, int(payloadLen)))
		if tcp {
			b.WithTCP(uint16(seed), uint16(seed>>16), 0x10)
		} else {
			b.WithUDP(uint16(seed), uint16(seed>>16))
		}
		if vlan {
			b.WithVLAN(uint16(seed) & 0x0FFF)
		}
		p := b.Build()
		var in Info
		if err := Decode(p, &in); err != nil {
			return false
		}
		if in.HasVLAN() != vlan {
			return false
		}
		if len(in.Payload()) != int(payloadLen) {
			return false
		}
		hdr := p[in.L3Off : in.L3Off+IPv4MinLen]
		return VerifyIPv4Header(hdr) && VerifyL4(&in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInfoReset(t *testing.T) {
	var in Info
	p := NewBuilder().WithVLAN(5).Build()
	Decode(p, &in)
	short := []byte{1, 2, 3}
	Decode(short, &in)
	if in.L3 != L3None || in.VLANCount != 0 || in.L3Off != -1 {
		t.Errorf("stale state after reset: %+v", in)
	}
}
