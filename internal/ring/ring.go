// Package ring implements the shared-memory descriptor queues over which a
// host and a (simulated) NIC exchange fixed-size records — the "structured
// memory regions shared via DMA" of the paper. A Ring is a single-producer,
// single-consumer circular buffer of fixed-size entries backed by one flat
// byte slice, with head/tail indices mirroring hardware ring semantics
// (including wrap-around and full/empty distinction via index arithmetic).
package ring

import (
	"fmt"
	"sync/atomic"

	"opendesc/internal/obs/flight"
)

// Ring is a SPSC circular queue of fixed-size byte records.
type Ring struct {
	mem       []byte
	entrySize int
	capacity  uint32 // number of entries, power of two
	mask      uint32

	// fq, when attached, receives push/pop/stall/wrap flight-recorder
	// events. Nil by default: an unattached ring records nothing.
	fq *flight.Queue

	// head is the consumer index, tail the producer index; both increase
	// monotonically and are reduced modulo capacity on access. Atomic so a
	// simulated device goroutine and a host goroutine can share the ring.
	head atomic.Uint32
	tail atomic.Uint32

	// Ethtool-style ring counters. Producer-owned and consumer-owned
	// counters sit on separate cache lines (via the pad) so the SPSC halves
	// do not false-share; all are atomic so a stats scraper may read them
	// concurrently with the datapath.
	produced    atomic.Uint64
	fullStalls  atomic.Uint64
	oversized   atomic.Uint64
	highWater   atomic.Uint32 // occupancy high-water mark (entries)
	_           [36]byte
	consumed    atomic.Uint64
	emptyStalls atomic.Uint64
}

// Stats is a snapshot of a ring's counters.
type Stats struct {
	// Produced / Consumed count successfully published / released entries.
	Produced uint64
	Consumed uint64
	// FullStalls counts rejected produce attempts (ring full) and
	// EmptyStalls failed consume attempts (ring empty) — the back-pressure
	// signals a driver would watch.
	FullStalls  uint64
	EmptyStalls uint64
	// Oversized counts Push attempts rejected because the record exceeded
	// the entry size (a malformed completion must not crash the device loop).
	Oversized uint64
	// Occupancy is the instantaneous fill level and HighWater the largest
	// occupancy ever reached.
	Occupancy int
	HighWater int
}

// Stats returns a snapshot of the ring counters. Safe to call concurrently
// with the producer and consumer.
func (r *Ring) Stats() Stats {
	return Stats{
		Produced:    r.produced.Load(),
		Consumed:    r.consumed.Load(),
		FullStalls:  r.fullStalls.Load(),
		EmptyStalls: r.emptyStalls.Load(),
		Oversized:   r.oversized.Load(),
		Occupancy:   r.Len(),
		HighWater:   int(r.highWater.Load()),
	}
}

// Occupancy returns the number of filled entries (alias of Len, named for
// the inspection API).
func (r *Ring) Occupancy() int { return r.Len() }

// noteProduced updates the producer-side counters after a publish at the
// given occupancy. Only the producer calls this, so a load+store suffices
// for the high-water mark.
func (r *Ring) noteProduced(occ uint32) {
	r.produced.Add(1)
	if occ > r.highWater.Load() {
		r.highWater.Store(occ)
	}
}

// New creates a ring with the given entry size and capacity (rounded up to a
// power of two, minimum 2).
func New(entrySize, capacity int) (*Ring, error) {
	if entrySize <= 0 {
		return nil, fmt.Errorf("ring: entry size %d must be positive", entrySize)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("ring: capacity %d must be positive", capacity)
	}
	c := uint32(2)
	for int(c) < capacity {
		c <<= 1
	}
	return &Ring{
		mem:       make([]byte, int(c)*entrySize),
		entrySize: entrySize,
		capacity:  c,
		mask:      c - 1,
	}, nil
}

// MustNew panics on invalid parameters.
func MustNew(entrySize, capacity int) *Ring {
	r, err := New(entrySize, capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// AttachFlight points the ring's flight-recorder events at q. Attach before
// the datapath starts; a nil queue (the default) keeps the ring silent.
func (r *Ring) AttachFlight(q *flight.Queue) { r.fq = q }

// EntrySize returns the record size in bytes.
func (r *Ring) EntrySize() int { return r.entrySize }

// Capacity returns the number of entry slots.
func (r *Ring) Capacity() int { return int(r.capacity) }

// Len returns the number of filled entries.
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Free returns the number of empty slots.
func (r *Ring) Free() int { return int(r.capacity) - r.Len() }

// slot returns the backing bytes of an absolute index.
func (r *Ring) slot(idx uint32) []byte {
	off := int(idx&r.mask) * r.entrySize
	return r.mem[off : off+r.entrySize]
}

// Produce reserves the next entry, passes its backing slice to fill (which
// writes the record in place — the DMA write), and publishes it. It returns
// false when the ring is full.
func (r *Ring) Produce(fill func(entry []byte)) bool {
	tail := r.tail.Load()
	head := r.head.Load()
	if tail-head >= r.capacity {
		r.fullStalls.Add(1)
		r.fq.Record(flight.EvRingFull, tail, uint64(r.capacity), 0)
		return false
	}
	fill(r.slot(tail))
	r.tail.Store(tail + 1)
	r.noteProduced(tail + 1 - head)
	if r.fq != nil {
		// Pushes are routine per-completion traffic: sampled. Wraps are rare
		// (one per lap) and always recorded.
		if flight.Sampled(tail) {
			r.fq.Record(flight.EvRingPush, tail, uint64(tail+1-head), 0)
		}
		if (tail+1)&r.mask == 0 {
			r.fq.Record(flight.EvRingWrap, tail, uint64((tail+1)/r.capacity), 0)
		}
	}
	return true
}

// Push copies rec into the next entry; shorter records are zero-padded. It
// returns false when the ring is full or when rec exceeds the entry size —
// an oversized record is a malformed completion, counted in Stats.Oversized
// and rejected instead of crashing the device loop.
func (r *Ring) Push(rec []byte) bool {
	if len(rec) > r.entrySize {
		r.oversized.Add(1)
		return false
	}
	return r.Produce(func(e []byte) {
		n := copy(e, rec)
		for i := n; i < len(e); i++ {
			e[i] = 0
		}
	})
}

// MustPush is Push that panics on an oversized record (a programming error
// in tests and fixtures, where silent rejection would hide the bug).
func (r *Ring) MustPush(rec []byte) bool {
	if len(rec) > r.entrySize {
		panic(fmt.Sprintf("ring: record %dB exceeds entry size %dB", len(rec), r.entrySize))
	}
	return r.Push(rec)
}

// Consume passes the oldest entry to use and releases it; returns false when
// the ring is empty. The slice passed to use is only valid during the call.
func (r *Ring) Consume(use func(entry []byte)) bool {
	head := r.head.Load()
	tail := r.tail.Load()
	if head == tail {
		// Empty polls are routine in a spin-polling driver: sampled on the
		// stall count so a busy-wait loop can't flood the ring and evict the
		// history that matters.
		if n := r.emptyStalls.Add(1); flight.Sampled(uint32(n)) {
			r.fq.Record(flight.EvRingEmpty, head, 0, 0)
		}
		return false
	}
	use(r.slot(head))
	r.head.Store(head + 1)
	r.consumed.Add(1)
	if flight.Sampled(head) {
		r.fq.Record(flight.EvRingPop, head, uint64(tail-head-1), 0)
	}
	return true
}

// Peek returns the oldest entry without releasing it (nil when empty). The
// returned slice stays valid until the entry is consumed or overwritten.
func (r *Ring) Peek() []byte {
	head := r.head.Load()
	if head == r.tail.Load() {
		return nil
	}
	return r.slot(head)
}

// Pop releases the oldest entry after a Peek; it reports whether an entry was
// released.
func (r *Ring) Pop() bool {
	head := r.head.Load()
	tail := r.tail.Load()
	if head == tail {
		if n := r.emptyStalls.Add(1); flight.Sampled(uint32(n)) {
			r.fq.Record(flight.EvRingEmpty, head, 0, 0)
		}
		return false
	}
	r.head.Store(head + 1)
	r.consumed.Add(1)
	if flight.Sampled(head) {
		r.fq.Record(flight.EvRingPop, head, uint64(tail-head-1), 0)
	}
	return true
}

// ConsumeBatch drains up to max entries, calling use for each, and returns
// how many were consumed. This mirrors driver RX-burst processing.
func (r *Ring) ConsumeBatch(max int, use func(i int, entry []byte)) int {
	head := r.head.Load()
	avail := int(r.tail.Load() - head)
	if avail == 0 {
		if n := r.emptyStalls.Add(1); flight.Sampled(uint32(n)) {
			r.fq.Record(flight.EvRingEmpty, head, 0, 0)
		}
		return 0
	}
	if max > 0 && avail > max {
		avail = max
	}
	for i := 0; i < avail; i++ {
		use(i, r.slot(head+uint32(i)))
	}
	r.head.Store(head + uint32(avail))
	r.consumed.Add(uint64(avail))
	// One event for the burst, not one per entry: arg0 = batch size.
	r.fq.Record(flight.EvRingPop, head, uint64(avail), 0)
	return avail
}

// Reset empties the ring. Counters are monotonic (ethtool semantics) and
// survive a reset; only the occupancy drops to zero.
func (r *Ring) Reset() {
	r.head.Store(0)
	r.tail.Store(0)
}

// BufferPool is a fixed pool of equally sized packet buffers indexed like a
// hardware RX buffer area: the host posts buffer indices, the NIC DMAs packet
// bytes into them, and completion records reference the slot.
type BufferPool struct {
	mem     []byte
	bufSize int
	lens    []int
	count   int
}

// NewBufferPool allocates count buffers of bufSize bytes.
func NewBufferPool(bufSize, count int) (*BufferPool, error) {
	if bufSize <= 0 || count <= 0 {
		return nil, fmt.Errorf("ring: invalid buffer pool %dx%dB", count, bufSize)
	}
	return &BufferPool{
		mem:     make([]byte, bufSize*count),
		bufSize: bufSize,
		lens:    make([]int, count),
		count:   count,
	}, nil
}

// MustNewBufferPool panics on invalid parameters.
func MustNewBufferPool(bufSize, count int) *BufferPool {
	p, err := NewBufferPool(bufSize, count)
	if err != nil {
		panic(err)
	}
	return p
}

// Count returns the number of buffers.
func (p *BufferPool) Count() int { return p.count }

// BufSize returns each buffer's capacity.
func (p *BufferPool) BufSize() int { return p.bufSize }

// Write DMAs data into buffer slot idx and records its length.
func (p *BufferPool) Write(idx int, data []byte) error {
	if idx < 0 || idx >= p.count {
		return fmt.Errorf("ring: buffer index %d out of range", idx)
	}
	if len(data) > p.bufSize {
		return fmt.Errorf("ring: packet %dB exceeds buffer size %dB", len(data), p.bufSize)
	}
	copy(p.mem[idx*p.bufSize:], data)
	p.lens[idx] = len(data)
	return nil
}

// Bytes returns the filled bytes of buffer slot idx.
func (p *BufferPool) Bytes(idx int) []byte {
	if idx < 0 || idx >= p.count {
		return nil
	}
	return p.mem[idx*p.bufSize : idx*p.bufSize+p.lens[idx]]
}
