package ring

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewRoundsToPowerOfTwo(t *testing.T) {
	r := MustNew(8, 5)
	if r.Capacity() != 8 {
		t.Errorf("capacity = %d, want 8", r.Capacity())
	}
	if r.EntrySize() != 8 {
		t.Errorf("entry size = %d", r.EntrySize())
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("zero entry size accepted")
	}
	if _, err := New(8, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestPushConsumeFIFO(t *testing.T) {
	r := MustNew(4, 8)
	for i := 0; i < 5; i++ {
		if !r.Push([]byte{byte(i), 0xAA}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Len() != 5 {
		t.Errorf("len = %d", r.Len())
	}
	for i := 0; i < 5; i++ {
		ok := r.Consume(func(e []byte) {
			if e[0] != byte(i) || e[1] != 0xAA {
				t.Errorf("entry %d = %v", i, e[:2])
			}
			// Short records must be zero padded.
			if e[2] != 0 || e[3] != 0 {
				t.Errorf("entry %d not padded: %v", i, e)
			}
		})
		if !ok {
			t.Fatalf("consume %d failed", i)
		}
	}
	if r.Consume(func([]byte) {}) {
		t.Error("consume on empty ring succeeded")
	}
}

func TestFullRing(t *testing.T) {
	r := MustNew(2, 4)
	for i := 0; i < 4; i++ {
		if !r.Push([]byte{byte(i)}) {
			t.Fatalf("push %d", i)
		}
	}
	if r.Push([]byte{9}) {
		t.Error("push on full ring succeeded")
	}
	if r.Free() != 0 {
		t.Errorf("free = %d", r.Free())
	}
	r.Consume(func([]byte) {})
	if !r.Push([]byte{9}) {
		t.Error("push after consume failed")
	}
}

func TestWrapAround(t *testing.T) {
	r := MustNew(1, 4)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push([]byte{byte(round*3 + i)}) {
				t.Fatalf("round %d push %d", round, i)
			}
		}
		for i := 0; i < 3; i++ {
			want := byte(round*3 + i)
			r.Consume(func(e []byte) {
				if e[0] != want {
					t.Errorf("got %d, want %d", e[0], want)
				}
			})
		}
	}
}

func TestPeekPop(t *testing.T) {
	r := MustNew(2, 2)
	if r.Peek() != nil {
		t.Error("peek on empty should be nil")
	}
	if r.Pop() {
		t.Error("pop on empty should fail")
	}
	r.Push([]byte{7, 8})
	e := r.Peek()
	if !bytes.Equal(e, []byte{7, 8}) {
		t.Errorf("peek = %v", e)
	}
	if r.Len() != 1 {
		t.Error("peek must not consume")
	}
	if !r.Pop() || r.Len() != 0 {
		t.Error("pop failed")
	}
}

func TestProduceInPlace(t *testing.T) {
	r := MustNew(4, 2)
	ok := r.Produce(func(e []byte) {
		e[0], e[3] = 0xDE, 0xAD
	})
	if !ok {
		t.Fatal("produce failed")
	}
	r.Consume(func(e []byte) {
		if e[0] != 0xDE || e[3] != 0xAD {
			t.Errorf("in-place fill lost: %v", e)
		}
	})
}

func TestConsumeBatch(t *testing.T) {
	r := MustNew(1, 16)
	for i := 0; i < 10; i++ {
		r.Push([]byte{byte(i)})
	}
	var got []byte
	n := r.ConsumeBatch(4, func(i int, e []byte) { got = append(got, e[0]) })
	if n != 4 || !bytes.Equal(got, []byte{0, 1, 2, 3}) {
		t.Errorf("batch = %d %v", n, got)
	}
	n = r.ConsumeBatch(0, func(i int, e []byte) {})
	if n != 6 {
		t.Errorf("unbounded batch = %d, want 6", n)
	}
	if r.ConsumeBatch(4, func(int, []byte) {}) != 0 {
		t.Error("batch on empty should be 0")
	}
}

func TestPushOversizedRejected(t *testing.T) {
	r := MustNew(2, 2)
	if r.Push([]byte{1, 2, 3}) {
		t.Error("oversized push should be rejected")
	}
	if r.Len() != 0 {
		t.Error("rejected push must not occupy a slot")
	}
	if st := r.Stats(); st.Oversized != 1 || st.Produced != 0 {
		t.Errorf("oversized=%d produced=%d, want 1/0", st.Oversized, st.Produced)
	}
	// A well-sized record still goes through afterwards.
	if !r.Push([]byte{1, 2}) {
		t.Error("valid push after oversized rejection failed")
	}
}

func TestMustPushOversizedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized MustPush should panic")
		}
	}()
	MustNew(2, 2).MustPush([]byte{1, 2, 3})
}

func TestReset(t *testing.T) {
	r := MustNew(1, 4)
	r.Push([]byte{1})
	r.Reset()
	if r.Len() != 0 || r.Peek() != nil {
		t.Error("reset did not empty the ring")
	}
}

// TestSPSCConcurrent exercises the single-producer single-consumer contract
// across goroutines: every record arrives exactly once, in order.
func TestSPSCConcurrent(t *testing.T) {
	r := MustNew(2, 64)
	const n = 10000
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan string, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if r.Push([]byte{byte(i), byte(i >> 8)}) {
				i++
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			ok := r.Consume(func(e []byte) {
				got := int(e[0]) | int(e[1])<<8
				if got != i&0xFFFF {
					select {
					case errs <- "out of order":
					default:
					}
				}
			})
			if ok {
				i++
			}
		}
	}()
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

// Property: a random push/consume schedule never loses or duplicates records.
func TestQuickSchedule(t *testing.T) {
	f := func(ops []bool) bool {
		r := MustNew(2, 8)
		next := 0   // next value to push
		expect := 0 // next value to consume
		for _, push := range ops {
			if push {
				if r.Push([]byte{byte(next), byte(next >> 8)}) {
					next++
				}
			} else {
				r.Consume(func(e []byte) {
					got := int(e[0]) | int(e[1])<<8
					if got != expect&0xFFFF {
						panic("order violation")
					}
					expect++
				})
			}
		}
		return expect <= next && r.Len() == next-expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBufferPool(t *testing.T) {
	p := MustNewBufferPool(64, 4)
	if p.Count() != 4 || p.BufSize() != 64 {
		t.Fatalf("pool = %dx%d", p.Count(), p.BufSize())
	}
	if err := p.Write(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if string(p.Bytes(1)) != "hello" {
		t.Errorf("bytes = %q", p.Bytes(1))
	}
	if p.Bytes(0) == nil || len(p.Bytes(0)) != 0 {
		t.Errorf("unwritten slot should be empty, got %v", p.Bytes(0))
	}
	if err := p.Write(4, []byte("x")); err == nil {
		t.Error("out-of-range write accepted")
	}
	if err := p.Write(0, make([]byte, 65)); err == nil {
		t.Error("oversized write accepted")
	}
	if p.Bytes(-1) != nil {
		t.Error("negative index should be nil")
	}
}

// TestStatsExactAcrossWrapAround tracks every counter against a shadow model
// through several full wrap-arounds of the index space, including the
// full and empty boundaries where stall counters must tick.
func TestStatsExactAcrossWrapAround(t *testing.T) {
	r := MustNew(1, 4)
	var produced, consumed, fullStalls, emptyStalls uint64
	occ, hwm := 0, 0

	check := func(when string) {
		t.Helper()
		st := r.Stats()
		want := Stats{
			Produced: produced, Consumed: consumed,
			FullStalls: fullStalls, EmptyStalls: emptyStalls,
			Occupancy: occ, HighWater: hwm,
		}
		if st != want {
			t.Fatalf("%s: stats = %+v, want %+v", when, st, want)
		}
		if r.Occupancy() != occ || r.Capacity() != 4 {
			t.Fatalf("%s: occupancy=%d capacity=%d", when, r.Occupancy(), r.Capacity())
		}
	}

	push := func() bool {
		ok := r.Push([]byte{1})
		if ok {
			produced++
			occ++
			if occ > hwm {
				hwm = occ
			}
		} else {
			fullStalls++
		}
		return ok
	}
	pop := func() bool {
		ok := r.Consume(func([]byte) {})
		if ok {
			consumed++
			occ--
		} else {
			emptyStalls++
		}
		return ok
	}

	check("fresh")
	// Empty boundary: consume on a fresh ring must stall.
	pop()
	check("empty stall")

	// Fill to capacity, then hit the full boundary twice.
	for i := 0; i < 4; i++ {
		if !push() {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	check("full")
	if push() || push() {
		t.Fatal("push on full ring succeeded")
	}
	check("full stalls")

	// Drain completely and hit the empty boundary again.
	for occ > 0 {
		pop()
	}
	pop()
	check("drained")

	// Three index wrap-arounds at varying fill levels. The high-water mark
	// must stay at capacity from the earlier fill, never reset.
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			push()
			push()
			pop()
			pop()
		}
		check("wrap round")
	}
	if hwm != 4 {
		t.Fatalf("shadow high-water = %d, want 4", hwm)
	}

	// Reset empties occupancy but keeps monotonic counters (ethtool
	// semantics).
	push()
	push()
	r.Reset()
	occ = 0
	check("after reset")
}

// TestStatsConsumeBatchAndPop covers the remaining consume paths.
func TestStatsConsumeBatchAndPop(t *testing.T) {
	r := MustNew(1, 8)
	for i := 0; i < 6; i++ {
		r.Push([]byte{byte(i)})
	}
	if n := r.ConsumeBatch(4, func(int, []byte) {}); n != 4 {
		t.Fatalf("batch = %d", n)
	}
	r.Peek()
	r.Pop()
	st := r.Stats()
	if st.Produced != 6 || st.Consumed != 5 || st.Occupancy != 1 || st.HighWater != 6 {
		t.Fatalf("stats = %+v", st)
	}
	r.Pop()
	if r.Pop() { // empty
		t.Fatal("pop on empty")
	}
	r.ConsumeBatch(4, func(int, []byte) {}) // empty
	st = r.Stats()
	if st.Consumed != 6 || st.EmptyStalls != 2 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

// TestPushDuringReconfigure interleaves producer traffic with the Reset an
// evolve switchover issues when it reprograms the ring for a new descriptor
// layout: entries published before the Reset vanish (their epoch is gone),
// pushes after the Reset land at slot zero, and the monotonic ethtool
// counters keep counting across the boundary.
func TestPushDuringReconfigure(t *testing.T) {
	r := MustNew(8, 4)
	for i := 0; i < 3; i++ {
		if !r.Push([]byte{byte(i)}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if !r.Consume(func([]byte) {}) {
		t.Fatal("pre-reset consume failed")
	}

	r.Reset() // the reconfigure: old-epoch entries are gone

	if got := r.Len(); got != 0 {
		t.Fatalf("occupancy %d after reset, want 0", got)
	}
	if r.Peek() != nil {
		t.Fatal("peek returned an old-epoch entry after reset")
	}
	// The next push is the new epoch's first entry and must be the next consume.
	if !r.Push([]byte{0xAA}) {
		t.Fatal("post-reset push rejected")
	}
	var got byte
	if !r.Consume(func(e []byte) { got = e[0] }) {
		t.Fatal("post-reset consume failed")
	}
	if got != 0xAA {
		t.Fatalf("consumed %#x after reset, want the new epoch's 0xAA", got)
	}

	st := r.Stats()
	if st.Produced != 4 || st.Consumed != 2 {
		t.Errorf("counters produced=%d consumed=%d, want monotonic 4/2 across reset", st.Produced, st.Consumed)
	}
	if st.Occupancy != 0 {
		t.Errorf("occupancy %d, want 0", st.Occupancy)
	}
}

// TestReconfigureClearsFullBackpressure: a full ring that is reset mid-stream
// accepts a full capacity of new-epoch pushes again (the switchover drain
// path relies on this).
func TestReconfigureClearsFullBackpressure(t *testing.T) {
	r := MustNew(4, 4)
	for i := 0; i < r.Capacity(); i++ {
		if !r.Push([]byte{byte(i)}) {
			t.Fatalf("fill push %d rejected", i)
		}
	}
	if r.Push([]byte{9}) {
		t.Fatal("push into a full ring succeeded")
	}
	stalls := r.Stats().FullStalls

	r.Reset()

	for i := 0; i < r.Capacity(); i++ {
		if !r.Push([]byte{byte(0x10 + i)}) {
			t.Fatalf("new-epoch push %d rejected after reset", i)
		}
	}
	seen := 0
	for r.Consume(func(e []byte) {
		if e[0] != byte(0x10+seen) {
			t.Fatalf("entry %d = %#x, want new-epoch %#x", seen, e[0], 0x10+seen)
		}
		seen++
	}) {
	}
	if seen != r.Capacity() {
		t.Fatalf("drained %d entries, want %d", seen, r.Capacity())
	}
	if got := r.Stats().FullStalls; got != stalls {
		t.Errorf("full stalls moved %d -> %d across reset without a full ring", stalls, got)
	}
}

// TestReconfigureWrapAround resets a ring whose indices have already lapped
// the capacity, then laps it again: slot reuse after the index rebase must
// not resurface stale bytes.
func TestReconfigureWrapAround(t *testing.T) {
	r := MustNew(8, 4)
	// Lap the ring one and a half times.
	for i := 0; i < 6; i++ {
		if !r.Push([]byte{byte(0xE0 + i)}) {
			t.Fatalf("lap push %d rejected", i)
		}
		if !r.Consume(func([]byte) {}) {
			t.Fatalf("lap consume %d failed", i)
		}
	}
	r.Reset()
	// Two more laps in the new epoch; every value must read back exactly.
	for i := 0; i < 2*r.Capacity(); i++ {
		if !r.Push([]byte{byte(i), byte(i >> 1)}) {
			t.Fatalf("post-reset push %d rejected", i)
		}
		var e0, e1 byte
		if !r.Consume(func(e []byte) { e0, e1 = e[0], e[1] }) {
			t.Fatalf("post-reset consume %d failed", i)
		}
		if e0 != byte(i) || e1 != byte(i>>1) {
			t.Fatalf("entry %d read back %#x/%#x, want %#x/%#x", i, e0, e1, byte(i), byte(i>>1))
		}
	}
}
