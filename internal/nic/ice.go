package nic

import "opendesc/internal/core"

// iceSource models the Intel E810 ("ice") flexible receive descriptor: the
// device supports per-queue RXDID profiles that select which metadata the
// 16/32-byte write-back carries — a shipping example of the partially
// programmable middle ground between fixed layouts and fully user-defined
// QDMA completions. Profile 0 is the legacy layout; profiles 1 and 2 are
// "flex" layouts trading flow/timestamp metadata against tunnel/mark
// metadata within the same 32-byte budget.
const iceSource = `
// Intel E810 (ice) flexible descriptor OpenDesc description.

struct ice_rx_ctx_t {
    bit<6> rxdid;   // receive descriptor profile id, programmed per queue
}

header ice_tx_desc_t {
    bit<64> address;
    @semantic("pkt_len")
    bit<16> length;
    @semantic("csum_level")
    bit<2>  csum_cmd;
    bit<6>  dtyp;
    @semantic("vlan")
    bit<16> l2tag1;
    @semantic("seg_cnt")
    bit<8>  mss_idx;
}

struct ice_meta_t {
    @semantic("pkt_len")
    bit<16> pkt_len;
    @semantic("ptype")
    bit<10> ptype;
    bit<6>  rsvd0;
    @semantic("vlan")
    bit<16> l2tag1;
    @semantic("error_flags")
    bit<8>  err;
    @semantic("ip_checksum")
    bit<16> frag_csum;
    @semantic("rss")
    bit<32> rss_hash;
    @semantic("flow_id")
    bit<32> flow_id;
    @semantic("timestamp")
    bit<64> ts;
    @semantic("tunnel_id")
    bit<32> vni;
    @semantic("mark")
    bit<32> fd_id;
}

header ice_pad7_t  { bit<56> rsvd; }
header ice_pad11_t { bit<88> rsvd; }

struct ice_pads_t {
    ice_pad7_t  pad56;
    ice_pad11_t pad88;
}

@bind("H2C_CTX_T", "ice_rx_ctx_t")
@bind("DESC_T", "ice_tx_desc_t")
parser DescParser<H2C_CTX_T, DESC_T>(
    desc_in din,
    in H2C_CTX_T h2c_ctx,
    out DESC_T desc_hdr)
{
    state start {
        din.extract(desc_hdr);
        transition accept;
    }
}

@bind("C2H_CTX_T", "ice_rx_ctx_t")
@bind("DESC_T", "ice_tx_desc_t")
@bind("META_T", "ice_meta_t")
@bind("PAD_T", "ice_pads_t")
control CmptDeparser<C2H_CTX_T, DESC_T, META_T, PAD_T>(
    cmpt_out cmpt_out,
    in C2H_CTX_T ctx,
    in DESC_T desc_hdr,
    in META_T pipe_meta,
    in PAD_T pads)
{
    apply {
        // Base write-back shared by every RXDID profile.
        cmpt_out.emit(pipe_meta.pkt_len);
        cmpt_out.emit(pipe_meta.ptype);
        cmpt_out.emit(pipe_meta.rsvd0);
        cmpt_out.emit(pipe_meta.l2tag1);
        cmpt_out.emit(pipe_meta.err);
        cmpt_out.emit(pipe_meta.frag_csum);
        if (ctx.rxdid == 1) {
            // RXDID 1: "flex NIC" profile — flow metadata + timestamp (32B).
            cmpt_out.emit(pipe_meta.rss_hash);
            cmpt_out.emit(pipe_meta.flow_id);
            cmpt_out.emit(pipe_meta.ts);
            cmpt_out.emit(pads.pad56);
        } else {
            if (ctx.rxdid == 2) {
                // RXDID 2: "flex comms" profile — overlay metadata (32B).
                cmpt_out.emit(pipe_meta.rss_hash);
                cmpt_out.emit(pipe_meta.vni);
                cmpt_out.emit(pipe_meta.fd_id);
                cmpt_out.emit(pads.pad88);
            } else {
                // RXDID 0 (and reserved ids): legacy 16-byte write-back.
                cmpt_out.emit(pads.pad56);
            }
        }
    }
}
`

func init() {
	register(&Model{
		Name:         "ice",
		Vendor:       "Intel",
		Kind:         PartiallyProgrammable,
		Description:  "E810 flexible descriptor: legacy 16B write-back + two 32B flex RXDID profiles",
		Pipeline:     core.PipelineCaps{Programmable: true, StageBudget: 2},
		Source:       iceSource,
		TxParserName: "DescParser",
	})
}
