package nic

import "opendesc/internal/core"

// qdmaSource models the AMD/Xilinx QDMA subsystem: completions ("CMPT
// entries") are fully user-defined and sized 8, 16, 32 or 64 bytes per
// installed queue context. The metadata carried is whatever the programmable
// pipeline computes — including application-level items such as a key-value
// request key digest (the FlexNIC-style scenario of the paper's Fig. 1) or a
// crypto context id. One completion path exists per installed queue format.
const qdmaSource = `
// AMD/Xilinx QDMA OpenDesc interface description.

struct qdma_rx_ctx_t {
    bit<3> cmpt_size;  // 0: 8B, 1: 16B, 2: 32B, 3: 64B
    bit<1> user_fmt;   // 8B variant: 0 = flow id, 1 = crypto context
}

struct qdma_tx_ctx_t {
    bit<8> desc_size;  // H2C descriptor bytes: 8, 16 or 32
}

header qdma_tx_base_t {
    bit<64> addr;
}

header qdma_tx_len_t {
    @semantic("pkt_len")
    bit<16> length;
    @semantic("seg_cnt")
    bit<8>  sg_count;
    bit<40> rsvd;
}

header qdma_tx_user_t {
    @semantic("csum_level")
    bit<2>  csum_cmd;
    @semantic("vlan")
    bit<16> vlan;
    @semantic("crypto_ctx")
    bit<32> crypto_ctx;
    @semantic("tunnel_id")
    bit<32> vni;
    bit<46> rsvd;
}

struct qdma_tx_desc_t {
    qdma_tx_base_t base;
    qdma_tx_len_t  len;
    qdma_tx_user_t user;
}

struct qdma_meta_t {
    @semantic("pkt_len")
    bit<16> length;
    @semantic("rss")
    bit<32> hash;
    @semantic("kv_key")
    bit<64> kv_key;
    @semantic("crypto_ctx")
    bit<32> crypto_ctx;
    @semantic("payload_hash")
    bit<32> payload_hash;
    @semantic("vlan")
    bit<16> vlan;
    @semantic("timestamp")
    bit<64> timestamp;
    @semantic("ip_checksum")
    bit<16> ip_csum;
    @semantic("l4_checksum")
    bit<16> l4_csum;
    @semantic("flow_id")
    bit<32> flow_id;
    @semantic("ptype")
    bit<8>  ptype;
    @semantic("tunnel_id")
    bit<32> vni;
    @semantic("mark")
    bit<32> mark;
    @semantic("queue_id")
    bit<16> qid;
    @semantic("seg_cnt")
    bit<8>  segs;
    @semantic("decap")
    bit<1>  decap;
    @semantic("drop_hint")
    bit<1>  drop_hint;
    @semantic("error_flags")
    bit<8>  err;
}

header qdma_pad6_t  { bit<48>  rsvd; }
header qdma_pad11_t { bit<86>  rsvd; }

struct qdma_pads_t {
    qdma_pad6_t  pad32;
    qdma_pad11_t pad64;
}

@bind("H2C_CTX_T", "qdma_tx_ctx_t")
@bind("DESC_T", "qdma_tx_desc_t")
parser DescParser<H2C_CTX_T, DESC_T>(
    desc_in din,
    in H2C_CTX_T h2c_ctx,
    out DESC_T desc_hdr)
{
    state start {
        din.extract(desc_hdr.base);
        transition select(h2c_ctx.desc_size) {
            8:  accept_base;
            16: parse_len;
            32: parse_user;
            default: reject;
        }
    }
    state accept_base {
        transition accept;
    }
    state parse_len {
        din.extract(desc_hdr.len);
        transition accept;
    }
    state parse_user {
        din.extract(desc_hdr.len);
        din.extract(desc_hdr.user);
        transition accept;
    }
}

@bind("C2H_CTX_T", "qdma_rx_ctx_t")
@bind("DESC_T", "qdma_tx_desc_t")
@bind("META_T", "qdma_meta_t")
@bind("PAD_T", "qdma_pads_t")
control CmptDeparser<C2H_CTX_T, DESC_T, META_T, PAD_T>(
    cmpt_out cmpt_out,
    in C2H_CTX_T ctx,
    in DESC_T desc_hdr,
    in META_T pipe_meta,
    in PAD_T pads)
{
    apply {
        cmpt_out.emit(pipe_meta.length);
        switch (ctx.cmpt_size) {
            0: { // 8-byte entry: length + one user dword + flags
                if (ctx.user_fmt == 0) {
                    cmpt_out.emit(pipe_meta.flow_id);
                } else {
                    cmpt_out.emit(pipe_meta.crypto_ctx);
                }
                cmpt_out.emit(pipe_meta.ptype);
                cmpt_out.emit(pipe_meta.err);
            }
            1: { // 16-byte entry: KV-store scenario
                cmpt_out.emit(pipe_meta.hash);
                cmpt_out.emit(pipe_meta.kv_key);
                cmpt_out.emit(pipe_meta.ptype);
                cmpt_out.emit(pipe_meta.err);
            }
            2: { // 32-byte entry: checksum/timestamp heavy
                cmpt_out.emit(pipe_meta.hash);
                cmpt_out.emit(pipe_meta.vlan);
                cmpt_out.emit(pipe_meta.timestamp);
                cmpt_out.emit(pipe_meta.ip_csum);
                cmpt_out.emit(pipe_meta.l4_csum);
                cmpt_out.emit(pipe_meta.flow_id);
                cmpt_out.emit(pipe_meta.ptype);
                cmpt_out.emit(pipe_meta.err);
                cmpt_out.emit(pads.pad32);
            }
            default: { // 64-byte entry: everything the pipeline computes
                cmpt_out.emit(pipe_meta.hash);
                cmpt_out.emit(pipe_meta.kv_key);
                cmpt_out.emit(pipe_meta.crypto_ctx);
                cmpt_out.emit(pipe_meta.payload_hash);
                cmpt_out.emit(pipe_meta.vlan);
                cmpt_out.emit(pipe_meta.timestamp);
                cmpt_out.emit(pipe_meta.ip_csum);
                cmpt_out.emit(pipe_meta.l4_csum);
                cmpt_out.emit(pipe_meta.flow_id);
                cmpt_out.emit(pipe_meta.ptype);
                cmpt_out.emit(pipe_meta.vni);
                cmpt_out.emit(pipe_meta.mark);
                cmpt_out.emit(pipe_meta.qid);
                cmpt_out.emit(pipe_meta.segs);
                cmpt_out.emit(pipe_meta.decap);
                cmpt_out.emit(pipe_meta.drop_hint);
                cmpt_out.emit(pipe_meta.err);
                cmpt_out.emit(pads.pad64);
            }
        }
    }
}
`

func init() {
	register(&Model{
		Name:         "qdma",
		Vendor:       "AMD/Xilinx",
		Kind:         FullyProgrammable,
		Description:  "QDMA fully-programmable completions: 8/16/32/64-byte user-defined formats",
		Pipeline:     core.PipelineCaps{Programmable: true, StageBudget: 12, PayloadExterns: true},
		Source:       qdmaSource,
		TxParserName: "DescParser",
	})
}
