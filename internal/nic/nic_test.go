package nic

import (
	"testing"

	"opendesc/internal/core"
	"opendesc/internal/p4/ast"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
)

func TestAllModelsRegistered(t *testing.T) {
	want := []string{"e1000", "e1000e", "ice", "ixgbe", "mlx5", "qdma"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("models = %d, want %d", len(all), len(want))
	}
	for i, m := range all {
		if m.Name != want[i] {
			t.Errorf("model %d = %s, want %s", i, m.Name, want[i])
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("cx7"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestPathCounts(t *testing.T) {
	want := map[string]int{
		"e1000":  1, // single fixed layout
		"e1000e": 2, // rss XOR ip_id+csum (Fig. 6)
		"ice":    3, // legacy / flex-NIC / flex-comms RXDID profiles
		"ixgbe":  3, // fragment-csum / rss / flow-director
		"mlx5":   4, // full, compressed, mini-hash, mini-csum
		"qdma":   5, // 8B(x2 variants), 16B, 32B, 64B
	}
	for name, n := range want {
		m := MustLoad(name)
		paths, err := m.Paths()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(paths) != n {
			for _, p := range paths {
				t.Logf("%s: %s", name, p)
			}
			t.Errorf("%s paths = %d, want %d", name, len(paths), n)
		}
	}
}

func TestCompletionSizes(t *testing.T) {
	want := map[string][]int{
		"e1000":  {8},
		"e1000e": {11, 11},
		"ice":    {16, 32, 32},
		"mlx5":   {8, 8, 16, 64},
		"qdma":   {8, 8, 16, 32, 64},
	}
	for name, sizes := range want {
		m := MustLoad(name)
		paths, err := m.Paths()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := map[int]int{}
		for _, p := range paths {
			got[p.SizeBytes()]++
		}
		wantCount := map[int]int{}
		for _, s := range sizes {
			wantCount[s]++
		}
		for s, n := range wantCount {
			if got[s] != n {
				t.Errorf("%s: %d paths of %dB, want %d (have %v)", name, got[s], s, n, got)
			}
		}
	}
}

// TestMlx5TwelveMetadataFields pins the paper's coverage denominator: "the 12
// metadata information available in NVIDIA Mellanox ConnectX descriptors".
func TestMlx5TwelveMetadataFields(t *testing.T) {
	n, err := MustLoad("mlx5").MetadataFieldCount()
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		s, _ := MustLoad("mlx5").ProvidableSet()
		t.Errorf("mlx5 metadata fields = %d (%v), want 12", n, s)
	}
}

func TestMlx5FullPathProvidesAll12(t *testing.T) {
	m := MustLoad("mlx5")
	paths, err := m.Paths()
	if err != nil {
		t.Fatal(err)
	}
	var full *core.Path
	for _, p := range paths {
		if p.SizeBytes() == 64 {
			full = p
		}
	}
	if full == nil {
		t.Fatal("no 64B path")
	}
	if len(full.Prov()) != 12 {
		t.Errorf("full CQE provides %d semantics: %v", len(full.Prov()), full.Prov())
	}
}

func TestE1000SingleLayoutHasIPChecksum(t *testing.T) {
	m := MustLoad("e1000")
	paths, err := m.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	if !paths[0].Prov().Has(semantics.IPChecksum) {
		t.Errorf("e1000 must provide ip_checksum: %v", paths[0].Prov())
	}
	if len(paths[0].Constraints) != 0 {
		t.Errorf("single-layout NIC should need no context config: %v", paths[0].Constraints)
	}
}

func TestE1000eFig6Compile(t *testing.T) {
	m := MustLoad("e1000e")
	intent, err := core.IntentFromSemantics("app", semantics.Default,
		semantics.RSS, semantics.IPChecksum)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Compile(intent, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selected.Path.Prov().Has(semantics.IPChecksum) {
		t.Errorf("Fig. 6: csum branch must win, got %v", res.Selected.Path)
	}
	if got := res.Missing(); len(got) != 1 || got[0] != semantics.RSS {
		t.Errorf("missing = %v", got)
	}
}

func TestQdmaKVKeyOnlyOnProgrammable(t *testing.T) {
	intent, err := core.IntentFromSemantics("kv", semantics.Default, semantics.KVKey, semantics.RSS)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MustLoad("qdma").Compile(intent, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HardwareSet().Has(semantics.KVKey) {
		t.Errorf("qdma should serve kv_key in hardware; accessors: %+v", res.Accessors)
	}
	if res.CompletionBytes() != 16 {
		t.Errorf("kv intent should pick the 16B entry, got %dB", res.CompletionBytes())
	}
	// Fixed-function NICs must fall back to software for kv_key.
	resFixed, err := MustLoad("e1000e").Compile(intent, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resFixed.HardwareSet().Has(semantics.KVKey) {
		t.Error("e1000e cannot provide kv_key in hardware")
	}
}

func TestTimestampIntentAcrossNICs(t *testing.T) {
	intent, err := core.IntentFromSemantics("ts", semantics.Default, semantics.Timestamp)
	if err != nil {
		t.Fatal(err)
	}
	// mlx5 and qdma can provide timestamps; e1000 cannot and must reject
	// (timestamp has no software fallback).
	for _, name := range []string{"mlx5", "qdma"} {
		res, err := MustLoad(name).Compile(intent, core.CompileOptions{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !res.HardwareSet().Has(semantics.Timestamp) {
			t.Errorf("%s should provide timestamp", name)
		}
	}
	for _, name := range []string{"e1000", "e1000e", "ixgbe"} {
		if _, err := MustLoad(name).Compile(intent, core.CompileOptions{}); err == nil {
			t.Errorf("%s: timestamp intent should be unsatisfiable", name)
		}
	}
}

func TestTxLayouts(t *testing.T) {
	want := map[string]int{
		"e1000":  1,
		"e1000e": 1,
		"ixgbe":  1,
		"mlx5":   1,
		"qdma":   3, // 8/16/32-byte H2C descriptor formats
	}
	for name, n := range want {
		ls, err := MustLoad(name).TxLayouts()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(ls) != n {
			t.Errorf("%s tx layouts = %d, want %d", name, len(ls), n)
		}
	}
}

func TestQdmaTxLayoutSizes(t *testing.T) {
	ls, err := MustLoad("qdma").TxLayouts()
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int]bool{}
	for _, l := range ls {
		sizes[l.SizeBytes()] = true
	}
	for _, want := range []int{8, 16, 32} {
		if !sizes[want] {
			t.Errorf("missing %dB TX layout, have %v", want, sizes)
		}
	}
}

func TestGraphCached(t *testing.T) {
	m := MustLoad("e1000e")
	g1, err := m.Graph()
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := m.Graph()
	if g1 != g2 {
		t.Error("graph should be cached")
	}
}

func TestProvidableSets(t *testing.T) {
	// Spot-check flexibility ordering: programmable NICs provide strictly
	// more than fixed-function ones.
	sizes := map[string]int{}
	for _, m := range All() {
		s, err := m.ProvidableSet()
		if err != nil {
			t.Fatal(err)
		}
		sizes[m.Name] = len(s)
	}
	if !(sizes["qdma"] > sizes["mlx5"] && sizes["mlx5"] > sizes["e1000e"] && sizes["e1000e"] > sizes["e1000"]) {
		t.Errorf("providable-set sizes should grow with programmability: %v", sizes)
	}
}

// TestDescriptionsPrintRoundtrip pins that every bundled P4 description
// survives the canonical print → reparse → print cycle byte-identically —
// the fixed-point property the parser fuzzer asserts, on the real corpus.
func TestDescriptionsPrintRoundtrip(t *testing.T) {
	for _, m := range All() {
		printed := ast.SprintProgram(m.Info.Prog)
		prog2, err := parser.Parse(m.Name+"-printed.p4", printed)
		if err != nil {
			t.Fatalf("%s: canonical print does not reparse: %v", m.Name, err)
		}
		if ast.SprintProgram(prog2) != printed {
			t.Errorf("%s: printing is not a fixed point", m.Name)
		}
		// And the reparsed program checks and compiles identically.
		info2, err := sema.Check(prog2)
		if err != nil {
			t.Fatalf("%s: reparsed program fails sema: %v", m.Name, err)
		}
		g, err := core.BuildDeparserGraph(core.DeparserSpec{Info: info2})
		if err != nil {
			t.Fatalf("%s: reparsed graph: %v", m.Name, err)
		}
		paths, err := core.EnumeratePaths(g, core.EnumerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		orig, _ := m.Paths()
		if len(paths) != len(orig) {
			t.Errorf("%s: reparsed paths %d != %d", m.Name, len(paths), len(orig))
		}
		for i := range paths {
			if !core.PathsEquivalent(paths[i], orig[i]) {
				t.Errorf("%s: reparsed path %d not equivalent", m.Name, i)
			}
		}
	}
}

// TestIceFlexProfiles pins the E810 flexible-descriptor behaviour: the
// timestamp intent forces the flex-NIC profile, the tunnel intent the
// flex-comms profile, and a bare intent stays on the 16-byte legacy layout.
func TestIceFlexProfiles(t *testing.T) {
	m := MustLoad("ice")
	cases := []struct {
		sems  []semantics.Name
		bytes int
		rxdid *uint64
	}{
		{[]semantics.Name{semantics.PktLen, semantics.IPChecksum}, 16, nil},
		{[]semantics.Name{semantics.Timestamp, semantics.RSS}, 32, ptr(1)},
		{[]semantics.Name{semantics.TunnelID, semantics.Mark}, 32, ptr(2)},
	}
	for _, c := range cases {
		intent, err := core.IntentFromSemantics("i", semantics.Default, c.sems...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Compile(intent, core.CompileOptions{})
		if err != nil {
			t.Fatalf("%v: %v", c.sems, err)
		}
		if res.CompletionBytes() != c.bytes {
			t.Errorf("%v: completion %dB, want %d", c.sems, res.CompletionBytes(), c.bytes)
		}
		if c.rxdid != nil {
			found := false
			for _, cons := range res.Config {
				if cons.Var == "ctx.rxdid" && cons.Equal && cons.Val.Uint == *c.rxdid {
					found = true
				}
			}
			if !found {
				t.Errorf("%v: config %v, want rxdid == %d", c.sems, res.Config, *c.rxdid)
			}
		}
	}
}

func ptr(v uint64) *uint64 { return &v }
