package nic

// e1000Source describes the early Intel e1000 legacy RX descriptor: the NIC
// writes back a single fixed completion layout carrying the packet length,
// the computed IP checksum, status/error bits and the stripped VLAN tag.
// There is exactly one completion path — the paper's example of a NIC that
// "supported only a single descriptor, giving the computed IP checksum of
// the packet".
const e1000Source = `
// Intel e1000 (legacy) OpenDesc interface description.

struct e1000_rx_ctx_t {
    // Legacy descriptors have no per-queue layout configuration.
    bit<1> reserved;
}

// TX descriptor posted by the host (legacy transmit descriptor).
header e1000_tx_desc_t {
    bit<64> buffer_addr;
    @semantic("pkt_len")
    bit<16> length;
    @semantic("csum_level")
    bit<8>  cso;        // checksum offset command
    bit<8>  cmd;
    bit<8>  status_rsv;
    bit<8>  css;
    @semantic("vlan")
    bit<16> special;
}

// RX write-back (completion) fields computed by the NIC.
struct e1000_meta_t {
    @semantic("pkt_len")
    bit<16> length;
    @semantic("ip_checksum")
    bit<16> csum;
    @semantic("error_flags")
    bit<8>  status;
    bit<8>  errors;
    @semantic("vlan")
    bit<16> special;
}

@bind("H2C_CTX_T", "e1000_rx_ctx_t")
@bind("DESC_T", "e1000_tx_desc_t")
parser DescParser<H2C_CTX_T, DESC_T>(
    desc_in din,
    in H2C_CTX_T h2c_ctx,
    out DESC_T desc_hdr)
{
    state start {
        din.extract(desc_hdr);
        transition accept;
    }
}

@bind("C2H_CTX_T", "e1000_rx_ctx_t")
@bind("DESC_T", "e1000_tx_desc_t")
@bind("META_T", "e1000_meta_t")
control CmptDeparser<C2H_CTX_T, DESC_T, META_T>(
    cmpt_out cmpt_out,
    in C2H_CTX_T ctx,
    in DESC_T desc_hdr,
    in META_T pipe_meta)
{
    apply {
        cmpt_out.emit(pipe_meta.length);
        cmpt_out.emit(pipe_meta.csum);
        cmpt_out.emit(pipe_meta.status);
        cmpt_out.emit(pipe_meta.errors);
        cmpt_out.emit(pipe_meta.special);
    }
}
`

func init() {
	register(&Model{
		Name:         "e1000",
		Vendor:       "Intel",
		Kind:         FixedFunction,
		Description:  "Early Intel gigabit NIC; one fixed 8-byte write-back layout with IP checksum",
		Source:       e1000Source,
		TxParserName: "DescParser",
	})
}
