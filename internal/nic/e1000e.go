package nic

// e1000eSource is the paper's Figure 6 running example: the newer Intel
// extended descriptor can contain the RSS hash, or the IP identification +
// checksum pair, but not both. A single context bit (use_rss, programmed via
// MRQC-like registers over the control channel) selects between the two
// completion layouts.
const e1000eSource = `
// Intel e1000e / 82574-style extended descriptor OpenDesc description.

struct e1000e_rx_ctx_t {
    bit<1> use_rss;
}

header e1000e_tx_desc_t {
    bit<64> buffer_addr;
    @semantic("pkt_len")
    bit<16> length;
    @semantic("csum_level")
    bit<2>  csum_cmd;
    bit<6>  dtyp;
    @semantic("vlan")
    bit<16> vlan;
    bit<8>  cmd;
}

struct e1000e_meta_t {
    @semantic("rss")
    bit<32> rss_hash;
    @semantic("ip_id")
    bit<16> ip_id;
    @semantic("ip_checksum")
    bit<16> csum;
    @semantic("pkt_len")
    bit<16> length;
    @semantic("error_flags")
    bit<8>  status;
    bit<8>  errors;
    @semantic("vlan")
    bit<16> vlan;
    @semantic("ptype")
    bit<8>  ptype;
}

@bind("H2C_CTX_T", "e1000e_rx_ctx_t")
@bind("DESC_T", "e1000e_tx_desc_t")
parser DescParser<H2C_CTX_T, DESC_T>(
    desc_in din,
    in H2C_CTX_T h2c_ctx,
    out DESC_T desc_hdr)
{
    state start {
        din.extract(desc_hdr);
        transition accept;
    }
}

@bind("C2H_CTX_T", "e1000e_rx_ctx_t")
@bind("DESC_T", "e1000e_tx_desc_t")
@bind("META_T", "e1000e_meta_t")
control CmptDeparser<C2H_CTX_T, DESC_T, META_T>(
    cmpt_out cmpt_out,
    in C2H_CTX_T ctx,
    in DESC_T desc_hdr,
    in META_T pipe_meta)
{
    apply {
        // MRQ field: RSS hash or the ip_id+fragment-checksum pair — never
        // both (Fig. 6 of the paper).
        if (ctx.use_rss == 1) {
            cmpt_out.emit(pipe_meta.rss_hash);
        } else {
            cmpt_out.emit(pipe_meta.ip_id);
            cmpt_out.emit(pipe_meta.csum);
        }
        cmpt_out.emit(pipe_meta.length);
        cmpt_out.emit(pipe_meta.status);
        cmpt_out.emit(pipe_meta.errors);
        cmpt_out.emit(pipe_meta.vlan);
        cmpt_out.emit(pipe_meta.ptype);
    }
}
`

func init() {
	register(&Model{
		Name:         "e1000e",
		Vendor:       "Intel",
		Kind:         FixedFunction,
		Description:  "Newer Intel extended descriptor: RSS hash XOR ip_id+checksum (paper Fig. 6)",
		Source:       e1000eSource,
		TxParserName: "DescParser",
	})
}
