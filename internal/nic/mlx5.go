package nic

import "opendesc/internal/core"

// mlx5Source models NVIDIA ConnectX-style completion queue entries (CQEs).
// The full 64-byte CQE carries 12 distinct metadata items — the paper notes
// that XDP's accessors cover only 3 of them (hash, timestamp, VLAN). The
// device also supports a 16-byte compressed CQE and an 8-byte mini CQE whose
// content is chosen per-queue ("One might prefer to use the compressed
// descriptor format ... which might contain only the hash, or only the
// checksum").
const mlx5Source = `
// NVIDIA ConnectX (mlx5-class) OpenDesc interface description.

enum bit<2> mlx5_cqe_format_t {
    FULL       = 0,
    COMPRESSED = 1,
    MINI       = 2
}

struct mlx5_rx_ctx_t {
    bit<2> cqe_format;   // mlx5_cqe_format_t, programmed per queue
    bit<1> mini_fmt;     // mini CQE content: 0 = hash, 1 = checksum
}

header mlx5_tx_desc_t {
    bit<64> laddr;
    bit<32> lkey;
    @semantic("pkt_len")
    bit<32> byte_count;
    @semantic("csum_level")
    bit<2>  csum_ctrl;
    @semantic("vlan")
    bit<16> insert_vlan;
    bit<6>  ds_cnt;
    bit<8>  opcode;
}

// The 12 metadata items a ConnectX CQE can carry.
struct mlx5_meta_t {
    @semantic("rss")
    bit<32> rx_hash_result;
    @semantic("vlan")
    bit<16> vlan_info;
    @semantic("timestamp")
    bit<64> timestamp;
    @semantic("pkt_len")
    bit<32> byte_cnt;
    @semantic("ptype")
    bit<8>  l3_l4_hdr_type;
    @semantic("flow_id")
    bit<24> flow_tag;
    @semantic("mark")
    bit<24> sop_drop_qpn;
    @semantic("lro_segs")
    bit<8>  lro_num_seg;
    @semantic("ip_checksum")
    bit<16> checksum;
    @semantic("l4_checksum")
    bit<8>  l4_ok;
    @semantic("tunnel_id")
    bit<32> vni;
    @semantic("error_flags")
    bit<8>  err_syndrome;
    // Short pkt_len used by mini CQEs.
    @semantic("pkt_len")
    bit<16> byte_cnt16;
}

@bind("H2C_CTX_T", "mlx5_rx_ctx_t")
@bind("DESC_T", "mlx5_tx_desc_t")
parser DescParser<H2C_CTX_T, DESC_T>(
    desc_in din,
    in H2C_CTX_T h2c_ctx,
    out DESC_T desc_hdr)
{
    state start {
        din.extract(desc_hdr);
        transition accept;
    }
}

header mlx5_pad29_t { bit<232> rsvd; }
header mlx5_pad3_t  { bit<24>  rsvd; }

struct mlx5_pads_t {
    mlx5_pad29_t full_pad;
    mlx5_pad3_t  comp_pad;
}

@bind("C2H_CTX_T", "mlx5_rx_ctx_t")
@bind("DESC_T", "mlx5_tx_desc_t")
@bind("META_T", "mlx5_meta_t")
@bind("PAD_T", "mlx5_pads_t")
control CmptDeparser<C2H_CTX_T, DESC_T, META_T, PAD_T>(
    cmpt_out cmpt_out,
    in C2H_CTX_T ctx,
    in DESC_T desc_hdr,
    in META_T pipe_meta,
    in PAD_T pads)
{
    apply {
        switch (ctx.cqe_format) {
            1: { // COMPRESSED: 16-byte CQE
                cmpt_out.emit(pipe_meta.rx_hash_result);
                cmpt_out.emit(pipe_meta.byte_cnt);
                cmpt_out.emit(pipe_meta.vlan_info);
                cmpt_out.emit(pipe_meta.err_syndrome);
                cmpt_out.emit(pipe_meta.l3_l4_hdr_type);
                cmpt_out.emit(pads.comp_pad);
            }
            2: { // MINI: 8-byte CQE, content selected per queue
                if (ctx.mini_fmt == 0) {
                    cmpt_out.emit(pipe_meta.rx_hash_result);
                    cmpt_out.emit(pipe_meta.byte_cnt16);
                    cmpt_out.emit(pipe_meta.lro_num_seg);
                } else {
                    cmpt_out.emit(pipe_meta.checksum);
                    cmpt_out.emit(pipe_meta.byte_cnt16);
                    cmpt_out.emit(pipe_meta.flow_tag);
                }
            }
            default: { // FULL: 64-byte CQE with all 12 metadata items
                cmpt_out.emit(pipe_meta.rx_hash_result);
                cmpt_out.emit(pipe_meta.vlan_info);
                cmpt_out.emit(pipe_meta.timestamp);
                cmpt_out.emit(pipe_meta.byte_cnt);
                cmpt_out.emit(pipe_meta.l3_l4_hdr_type);
                cmpt_out.emit(pipe_meta.flow_tag);
                cmpt_out.emit(pipe_meta.sop_drop_qpn);
                cmpt_out.emit(pipe_meta.lro_num_seg);
                cmpt_out.emit(pipe_meta.checksum);
                cmpt_out.emit(pipe_meta.l4_ok);
                cmpt_out.emit(pipe_meta.vni);
                cmpt_out.emit(pipe_meta.err_syndrome);
                cmpt_out.emit(pads.full_pad);
            }
        }
        // op_own: opcode/owner byte closing every CQE format.
        cmpt_out.emit(desc_hdr.opcode);
    }
}
`

func init() {
	register(&Model{
		Name:         "mlx5",
		Vendor:       "NVIDIA",
		Kind:         PartiallyProgrammable,
		Description:  "ConnectX-style CQE: 64B full (12 metadata fields), 16B compressed, 8B mini",
		Pipeline:     core.PipelineCaps{Programmable: true, StageBudget: 4},
		Source:       mlx5Source,
		TxParserName: "DescParser",
	})
}
