// Package nic bundles OpenDesc interface descriptions for four NIC families,
// mirroring the spectrum the paper discusses:
//
//   - e1000:  early Intel fixed-function NIC, a single completion layout
//     carrying the computed IP checksum;
//   - e1000e: newer Intel NIC (the paper's Fig. 6 running example) whose
//     bigger descriptor can contain the RSS hash or the checksum, but not
//     both;
//   - ixgbe:  Intel advanced descriptors with RSS/flow-director variants;
//   - mlx5:   NVIDIA ConnectX-style CQEs with 12 metadata fields and
//     compressed/mini formats;
//   - qdma:   AMD/Xilinx fully-programmable completions of 8/16/32/64 bytes,
//     one layout per installed queue context.
//
// Every model is expressed as P4 source (parsed and checked at load time), so
// the compiler and the simulator operate on exactly the declarative contract
// the paper proposes.
package nic

import (
	"fmt"
	"sort"
	"sync"

	"opendesc/internal/core"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
)

// Kind classifies how flexible a NIC's descriptor interface is.
type Kind int

// NIC flexibility classes (paper Fig. 1).
const (
	FixedFunction Kind = iota
	PartiallyProgrammable
	FullyProgrammable
)

func (k Kind) String() string {
	switch k {
	case FixedFunction:
		return "fixed-function"
	case PartiallyProgrammable:
		return "partially-programmable"
	case FullyProgrammable:
		return "fully-programmable"
	}
	return "?"
}

// Model is one NIC family's OpenDesc description.
type Model struct {
	Name        string
	Vendor      string
	Kind        Kind
	Description string
	// Source is the P4 interface description shipped with the NIC.
	Source string
	// Info is the checked program.
	Info *sema.Info
	// Deparser locates the completion deparser inside Source.
	Deparser core.DeparserSpec
	// TxParserName names the DescParser for the TX direction ("" if the
	// model only describes the RX completion side).
	TxParserName string
	// Pipeline describes the programmable-pipeline resources available to
	// pushed features (zero value: not programmable).
	Pipeline core.PipelineCaps

	once    sync.Once
	graph   *core.Graph
	paths   []*core.Path
	pathErr error
}

// Graph returns the (lazily built, cached) completion deparser CFG.
func (m *Model) Graph() (*core.Graph, error) {
	m.build()
	if m.pathErr != nil {
		return nil, m.pathErr
	}
	return m.graph, nil
}

// Paths returns the enumerated completion paths.
func (m *Model) Paths() ([]*core.Path, error) {
	m.build()
	if m.pathErr != nil {
		return nil, m.pathErr
	}
	return m.paths, nil
}

func (m *Model) build() {
	m.once.Do(func() {
		g, err := core.BuildDeparserGraph(m.Deparser)
		if err != nil {
			m.pathErr = fmt.Errorf("nic %s: %w", m.Name, err)
			return
		}
		paths, err := core.EnumeratePaths(g, core.EnumerateOptions{})
		if err != nil {
			m.pathErr = fmt.Errorf("nic %s: %w", m.Name, err)
			return
		}
		m.graph = g
		m.paths = paths
	})
}

// ProvidableSet is the union of Prov(p) over all completion paths: everything
// the NIC can deliver in hardware under some configuration.
func (m *Model) ProvidableSet() (semantics.Set, error) {
	paths, err := m.Paths()
	if err != nil {
		return nil, err
	}
	s := make(semantics.Set)
	for _, p := range paths {
		for n := range p.Prov() {
			s.Add(n)
		}
	}
	return s, nil
}

// MetadataFieldCount counts the distinct semantic-tagged metadata items the
// NIC can emit (the "12 metadata information available in ConnectX
// descriptors" denominator of the paper's coverage claim).
func (m *Model) MetadataFieldCount() (int, error) {
	s, err := m.ProvidableSet()
	if err != nil {
		return 0, err
	}
	return len(s), nil
}

// CompletionSizes returns the distinct completion-record byte sizes across
// the NIC's enumerated paths, ascending — part of the capability model a
// fleet host publishes in its describe answer (S25).
func (m *Model) CompletionSizes() ([]int, error) {
	paths, err := m.Paths()
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool)
	var sizes []int
	for _, p := range paths {
		if n := p.SizeBytes(); !seen[n] {
			seen[n] = true
			sizes = append(sizes, n)
		}
	}
	sort.Ints(sizes)
	return sizes, nil
}

// Compile maps an intent onto this NIC.
func (m *Model) Compile(intent *core.Intent, opts core.CompileOptions) (*core.Result, error) {
	return core.Compile(m.Name, m.Deparser, intent, opts)
}

// CompileJoint maps N tenant intents onto this NIC at once, solving the
// joint Eq. 1 objective for one shared device configuration (see
// core.CompileJoint).
func (m *Model) CompileJoint(tenants []core.TenantIntent, opts core.CompileOptions) (*core.JointResult, error) {
	return core.CompileJoint(m.Name, m.Deparser, tenants, opts)
}

// TxInstance binds the model's DescParser for TX-direction analysis.
func (m *Model) TxInstance() (*sema.Instance, error) {
	if m.TxParserName == "" {
		return nil, fmt.Errorf("nic %s: no TX DescParser in description", m.Name)
	}
	pr := m.Info.Prog.Parser(m.TxParserName)
	if pr == nil {
		return nil, fmt.Errorf("nic %s: parser %q not found", m.Name, m.TxParserName)
	}
	return m.Info.BindParser(pr, nil)
}

// TxLayouts enumerates the accepted TX descriptor formats.
func (m *Model) TxLayouts() ([]*core.TxLayout, error) {
	inst, err := m.TxInstance()
	if err != nil {
		return nil, err
	}
	ls, err := core.AnalyzeDescParser(m.Info, inst, "")
	if err != nil {
		return nil, err
	}
	return core.AcceptedLayouts(ls), nil
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]*Model)
)

// register parses, checks, and registers a model; called from each NIC file's
// init. Panics on malformed built-in descriptions (programmer error).
func register(m *Model) {
	prog := parser.MustParse(m.Name+".p4", m.Source)
	m.Info = sema.MustCheck(prog)
	m.Deparser.Info = m.Info
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[m.Name]; dup {
		panic("nic: duplicate model " + m.Name)
	}
	registry[m.Name] = m
}

// Load returns the named model.
func Load(name string) (*Model, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	m, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("nic: unknown model %q (have %v)", name, names())
	}
	return m, nil
}

// MustLoad panics when the model is unknown; for tests and examples.
func MustLoad(name string) *Model {
	m, err := Load(name)
	if err != nil {
		panic(err)
	}
	return m
}

// All returns every registered model sorted by name.
func All() []*Model {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]*Model, 0, len(registry))
	for _, m := range registry {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
