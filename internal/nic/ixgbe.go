package nic

// ixgbeSource models the Intel 82599/X540 advanced receive descriptor
// write-back format. The 4-byte "MRQ" dword is mode-dependent: RSS hash,
// flow-director filter id, or fragment-checksum + ip_id — selected by the
// multiple-receive-queues mode programmed per port. The packet-type field is
// 13 bits wide (deliberately not byte aligned, as on real hardware).
const ixgbeSource = `
// Intel ixgbe (82599-class) advanced descriptor OpenDesc description.

struct ixgbe_rx_ctx_t {
    bit<2> mrq_mode;   // 0: fragment checksum, 1: RSS, 2: flow director
}

header ixgbe_tx_desc_t {
    bit<64> address;
    @semantic("pkt_len")
    bit<16> length;
    @semantic("csum_level")
    bit<2>  txsm;
    bit<6>  dtyp;
    @semantic("vlan")
    bit<16> vlan;
    @semantic("seg_cnt")
    bit<8>  mss_idx;
}

struct ixgbe_meta_t {
    @semantic("rss")
    bit<32> rss_hash;
    @semantic("flow_id")
    bit<32> fdir_id;
    @semantic("ip_checksum")
    bit<16> frag_csum;
    @semantic("ip_id")
    bit<16> ip_id;
    @semantic("ptype")
    bit<13> ptype;
    bit<3>  rsvd_ptype;
    @semantic("pkt_len")
    bit<16> pkt_len;
    @semantic("vlan")
    bit<16> vlan_tag;
    @semantic("error_flags")
    bit<8>  ext_error;
    bit<8>  ext_status;
}

@bind("H2C_CTX_T", "ixgbe_rx_ctx_t")
@bind("DESC_T", "ixgbe_tx_desc_t")
parser DescParser<H2C_CTX_T, DESC_T>(
    desc_in din,
    in H2C_CTX_T h2c_ctx,
    out DESC_T desc_hdr)
{
    state start {
        din.extract(desc_hdr);
        transition accept;
    }
}

@bind("C2H_CTX_T", "ixgbe_rx_ctx_t")
@bind("DESC_T", "ixgbe_tx_desc_t")
@bind("META_T", "ixgbe_meta_t")
control CmptDeparser<C2H_CTX_T, DESC_T, META_T>(
    cmpt_out cmpt_out,
    in C2H_CTX_T ctx,
    in DESC_T desc_hdr,
    in META_T pipe_meta)
{
    apply {
        // MRQ dword: mode-dependent content.
        if (ctx.mrq_mode == 1) {
            cmpt_out.emit(pipe_meta.rss_hash);
        } else {
            if (ctx.mrq_mode == 2) {
                cmpt_out.emit(pipe_meta.fdir_id);
            } else {
                cmpt_out.emit(pipe_meta.frag_csum);
                cmpt_out.emit(pipe_meta.ip_id);
            }
        }
        cmpt_out.emit(pipe_meta.ptype);
        cmpt_out.emit(pipe_meta.rsvd_ptype);
        cmpt_out.emit(pipe_meta.pkt_len);
        cmpt_out.emit(pipe_meta.vlan_tag);
        cmpt_out.emit(pipe_meta.ext_error);
        cmpt_out.emit(pipe_meta.ext_status);
    }
}
`

func init() {
	register(&Model{
		Name:         "ixgbe",
		Vendor:       "Intel",
		Kind:         FixedFunction,
		Description:  "82599-class advanced write-back: RSS / flow-director / fragment-checksum MRQ modes",
		Source:       ixgbeSource,
		TxParserName: "DescParser",
	})
}
