package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"opendesc/internal/baseline"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/semantics"
)

// intentNames renders a semantic list compactly.
func intentNames(sems []semantics.Name) string {
	parts := make([]string, len(sems))
	for i, s := range sems {
		parts[i] = string(s)
	}
	return strings.Join(parts, "+")
}

func mustIntent(sems ...semantics.Name) *core.Intent {
	it, err := core.IntentFromSemantics(intentNames(sems), semantics.Default, sems...)
	if err != nil {
		panic(err)
	}
	return it
}

// E1PathSelection reproduces the paper's Figure 6 running example: the e1000e
// deparser CFG offers an RSS path and an ip_id+checksum path; the compiler's
// choice per requested set shows the Eq. 1 trade-off, including the headline
// case where requesting {rss, csum} selects the checksum branch because
// software RSS is cheaper than software checksum.
func E1PathSelection() (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Fig. 6 running example — path selection on e1000e",
		Note: "Req = {rss, ip_checksum} must select the csum-emitting branch:\n" +
			"w(rss)=18 < w(ip_checksum)=26, so RSS goes to software.",
		Header: []string{"requested", "selected-path", "provides", "software", "cmpt-bytes", "soft-cost", "total-cost"},
	}
	m := nic.MustLoad("e1000e")
	for _, req := range [][]semantics.Name{
		{semantics.RSS},
		{semantics.IPChecksum},
		{semantics.RSS, semantics.IPChecksum},
		{semantics.RSS, semantics.IPChecksum, semantics.VLAN, semantics.PktLen},
		{semantics.VLAN, semantics.PktLen},
	} {
		res, err := m.Compile(mustIntent(req...), core.CompileOptions{})
		if err != nil {
			return nil, err
		}
		branch := "csum"
		if res.Selected.Path.Prov().Has(semantics.RSS) {
			branch = "rss"
		}
		t.AddRow(
			intentNames(req),
			fmt.Sprintf("%d (%s)", res.Selected.Path.ID, branch),
			res.Selected.Path.Prov().String(),
			intentNames(res.Missing()),
			res.CompletionBytes(),
			res.Selected.SoftCost,
			res.Selected.Total,
		)
	}
	return t, nil
}

// standardIntents are the request mixes used by the cross-NIC experiments.
func standardIntents() []struct {
	Name string
	Sems []semantics.Name
} {
	return []struct {
		Name string
		Sems []semantics.Name
	}{
		{"basic", []semantics.Name{semantics.PktLen}},
		{"lb", []semantics.Name{semantics.RSS, semantics.PktLen}},
		{"fw", []semantics.Name{semantics.RSS, semantics.IPChecksum, semantics.L4Checksum, semantics.PktLen}},
		{"telemetry", []semantics.Name{semantics.Timestamp, semantics.RSS, semantics.PktLen}},
		{"vlan-app", []semantics.Name{semantics.VLAN, semantics.IPChecksum, semantics.PktLen}},
		{"kv-store", []semantics.Name{semantics.KVKey, semantics.RSS, semantics.PktLen}},
		{"fig1", []semantics.Name{semantics.IPChecksum, semantics.VLAN, semantics.RSS, semantics.KVKey}},
	}
}

// E2MultiNIC is the §4 prototype showcase: one application intent compiled
// against every bundled NIC, selecting the fittest interface per device and
// listing what must be recomputed in software.
func E2MultiNIC() (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "Multi-NIC selection matrix (the §4 prototype showcase)",
		Note:   "unsat = rejected: a requested semantic has no hardware path and no software fallback.",
		Header: []string{"intent", "nic", "paths", "cmpt-bytes", "hardware", "software", "config"},
	}
	for _, it := range standardIntents() {
		for _, m := range nic.All() {
			paths, err := m.Paths()
			if err != nil {
				return nil, err
			}
			res, err := m.Compile(mustIntent(it.Sems...), core.CompileOptions{})
			if err != nil {
				t.AddRow(it.Name, m.Name, len(paths), "-", "-", "-", "unsat")
				continue
			}
			var cfg []string
			for _, c := range res.Config {
				cfg = append(cfg, c.String())
			}
			cfgs := strings.Join(cfg, ",")
			if cfgs == "" {
				cfgs = "(none)"
			}
			t.AddRow(
				it.Name, m.Name, len(paths),
				res.CompletionBytes(),
				res.HardwareSet().String(),
				intentNames(res.Missing()),
				cfgs,
			)
		}
	}
	return t, nil
}

// E3Coverage quantifies the §2 claim that "the BPF accessors only cover 3 of
// the 12 metadata information available in NVIDIA Mellanox ConnectX
// descriptors": for every stack and NIC, how many of the NIC's providable
// metadata items the stack can deliver to the application.
func E3Coverage() (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Metadata coverage per host stack (paper §2: XDP = 3/12 on ConnectX)",
		Note: "covered/providable metadata items per stack.\n" +
			"xdp: the 3 standardized accessors; skbuff: fields representable in sk_buff;\n" +
			"mbuf: static area + dynfields; opendesc: everything the description declares.",
		Header: []string{"nic", "providable", "xdp", "skbuff", "mbuf", "opendesc"},
	}
	// Semantics an sk_buff can represent (fixed struct members).
	skbuffRepresentable := semantics.NewSet(
		semantics.RSS, semantics.VLAN, semantics.Timestamp, semantics.PktLen,
		semantics.PType, semantics.Mark, semantics.QueueID, semantics.IPID,
		semantics.FlowID, semantics.TunnelID, semantics.LROSegs,
		semantics.ErrorFlags, semantics.IPChecksum, semantics.L4Checksum,
	)
	xdpSet := semantics.NewSet(baseline.XDPCoveredSemantics...)
	for _, m := range nic.All() {
		prov, err := m.ProvidableSet()
		if err != nil {
			return nil, err
		}
		total := len(prov)
		xdp := len(prov.Intersect(xdpSet))
		skb := len(prov.Intersect(skbuffRepresentable))
		// mbuf: 4 static semantics plus up to 9 dynfield slots.
		mbufStatic := len(prov.Intersect(semantics.NewSet(
			semantics.RSS, semantics.VLAN, semantics.PType, semantics.PktLen)))
		mbufDyn := total - mbufStatic
		if mbufDyn > 9 {
			mbufDyn = 9
		}
		t.AddRow(
			m.Name,
			total,
			fmt.Sprintf("%d/%d", xdp, total),
			fmt.Sprintf("%d/%d", skb, total),
			fmt.Sprintf("%d/%d", mbufStatic+mbufDyn, total),
			fmt.Sprintf("%d/%d", total, total),
		)
	}
	return t, nil
}

// E5FootprintSweep explores the Eq. 1 trade-off on mlx5: as the requested set
// grows or the DMA weight α changes, the optimum crosses over between the
// 8-byte mini CQE, the 16-byte compressed CQE and the 64-byte full CQE.
func E5FootprintSweep() (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "SoftNIC-cost vs DMA-footprint trade-off on mlx5 (Eq. 1)",
		Note: "Selected CQE format as the request grows and the DMA weight α varies.\n" +
			"Small requests fit the mini/compressed CQEs; richer requests or cheap DMA\n" +
			"(low α) push the optimum to the full 64-byte CQE.",
		Header: []string{"requested", "alpha", "selected-bytes", "soft-cost", "dma-cost", "total"},
	}
	m := nic.MustLoad("mlx5")
	reqs := [][]semantics.Name{
		{semantics.RSS},
		{semantics.RSS, semantics.PktLen},
		{semantics.RSS, semantics.VLAN, semantics.PktLen},
		{semantics.RSS, semantics.VLAN, semantics.IPChecksum, semantics.PktLen},
		{semantics.RSS, semantics.VLAN, semantics.IPChecksum, semantics.L4Checksum, semantics.FlowID, semantics.PktLen},
	}
	for _, req := range reqs {
		for _, alpha := range []float64{0.25, 1, 4, 16} {
			res, err := m.Compile(mustIntent(req...), core.CompileOptions{
				Select: core.SelectOptions{Alpha: alpha},
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(
				intentNames(req), alpha,
				res.CompletionBytes(),
				res.Selected.SoftCost,
				res.Selected.DMACost,
				res.Selected.Total,
			)
		}
	}
	return t, nil
}

// E6Unsatisfiable demonstrates program rejection: requested semantics whose
// software cost is infinite and which no completion path of the target NIC
// provides.
func E6Unsatisfiable() (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Unsatisfiable intents are rejected (w(s)=∞ on every path)",
		Header: []string{"intent", "nic", "outcome"},
	}
	cases := []struct {
		sems []semantics.Name
		nics []string
	}{
		{[]semantics.Name{semantics.Timestamp}, []string{"e1000", "e1000e", "ixgbe", "mlx5", "qdma"}},
		{[]semantics.Name{semantics.CryptoCtx}, []string{"e1000e", "mlx5", "qdma"}},
		{[]semantics.Name{semantics.Mark, semantics.RSS}, []string{"e1000", "mlx5"}},
	}
	for _, c := range cases {
		for _, name := range c.nics {
			m := nic.MustLoad(name)
			res, err := m.Compile(mustIntent(c.sems...), core.CompileOptions{})
			switch {
			case err != nil:
				t.AddRow(intentNames(c.sems), name, "rejected: "+trimErr(err))
			default:
				t.AddRow(intentNames(c.sems), name,
					fmt.Sprintf("ok (%dB completion)", res.CompletionBytes()))
			}
		}
	}
	return t, nil
}

func trimErr(err error) string {
	s := err.Error()
	if i := strings.Index(s, "unsatisfiable"); i >= 0 {
		s = s[i:]
	}
	if len(s) > 80 {
		s = s[:77] + "..."
	}
	return s
}

// E8QDMAFormats shows the fully-programmable case: one completion layout per
// installed queue context, sized 8/16/32/64 bytes, and the compiler picking
// the smallest format satisfying each intent.
func E8QDMAFormats() (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "QDMA fully-programmable completions: format per intent",
		Note:   "The compiler picks the smallest queue format whose Prov covers the request.",
		Header: []string{"intent", "selected-bytes", "hardware", "software", "config"},
	}
	m := nic.MustLoad("qdma")
	for _, it := range standardIntents() {
		res, err := m.Compile(mustIntent(it.Sems...), core.CompileOptions{})
		if err != nil {
			t.AddRow(it.Name, "-", "-", "-", "unsat")
			continue
		}
		var cfg []string
		for _, c := range res.Config {
			cfg = append(cfg, c.String())
		}
		t.AddRow(it.Name, res.CompletionBytes(),
			res.HardwareSet().String(), intentNames(res.Missing()),
			strings.Join(cfg, ","))
	}
	return t, nil
}

// E10CompileTime measures the full compiler pipeline (parse → check → CFG →
// enumerate → select → accessor synthesis) per NIC.
func E10CompileTime() (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Compiler pipeline latency per NIC",
		Note:   "Full pipeline on a cold description; intent = {rss, vlan, ip_checksum, pkt_len}.",
		Header: []string{"nic", "paths", "compile-us", "per-path-us"},
	}
	intent := mustIntent(semantics.RSS, semantics.VLAN, semantics.IPChecksum, semantics.PktLen)
	for _, m := range nic.All() {
		paths, err := m.Paths()
		if err != nil {
			return nil, err
		}
		const rounds = 50
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if _, err := m.Compile(intent, core.CompileOptions{}); err != nil {
				return nil, err
			}
		}
		us := float64(time.Since(start).Microseconds()) / rounds
		t.AddRow(m.Name, len(paths), us, us/float64(len(paths)))
	}
	return t, nil
}

// CrossoverAlpha computes, for a given request on mlx5, the α at which the
// selected format flips between two sizes (used by tests to pin the E5
// shape). It returns the smallest α in the scanned grid where the selection
// differs from α=0+.
func CrossoverAlpha(req []semantics.Name) (float64, int, int, error) {
	m := nic.MustLoad("mlx5")
	sel := func(alpha float64) (int, error) {
		res, err := m.Compile(mustIntent(req...), core.CompileOptions{
			Select: core.SelectOptions{Alpha: alpha},
		})
		if err != nil {
			return 0, err
		}
		return res.CompletionBytes(), nil
	}
	base, err := sel(0.01)
	if err != nil {
		return 0, 0, 0, err
	}
	alphas := make([]float64, 0, 64)
	for a := 0.05; a <= 64; a *= 1.2 {
		alphas = append(alphas, a)
	}
	sort.Float64s(alphas)
	for _, a := range alphas {
		b, err := sel(a)
		if err != nil {
			return 0, 0, 0, err
		}
		if b != base {
			return a, base, b, nil
		}
	}
	return math.Inf(1), base, base, nil
}
