package bench

import (
	"math"
	"strings"
	"testing"
)

// TestTableLargeValues: values wider than their header must stretch the
// column, never clip or panic, and huge floats render compactly.
func TestTableLargeValues(t *testing.T) {
	tab := &Table{
		ID:     "T",
		Title:  "width audit",
		Header: []string{"a", "b"},
	}
	long := strings.Repeat("x", 200)
	tab.AddRow(long, 1.5)
	tab.AddRow("short", 12345678901234567890.0) // > 1e15 → %.4g
	tab.AddRow(3, math.Inf(1))
	out := tab.String()
	if !strings.Contains(out, long) {
		t.Error("long cell clipped")
	}
	if !strings.Contains(out, "1.235e+19") {
		t.Errorf("huge float not compacted:\n%s", out)
	}
	if !strings.Contains(out, "+Inf") {
		t.Errorf("Inf not rendered:\n%s", out)
	}
	// Every rendered body line must be at least as wide as the longest cell.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, l := range lines[1:] { // skip the title line
		if len(l) < len(long) {
			t.Errorf("line narrower than widest cell: %q", l)
		}
	}
}

// TestTableRaggedRows: rows longer or shorter than the header must render
// (the longer row previously panicked: widths were sized to the header).
func TestTableRaggedRows(t *testing.T) {
	tab := &Table{ID: "T", Title: "ragged", Header: []string{"a", "b"}}
	tab.AddRow("only")
	tab.AddRow("one", "two", "three-wide-extra")
	var out string
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("String() panicked on ragged rows: %v", r)
			}
		}()
		out = tab.String()
	}()
	if !strings.Contains(out, "three-wide-extra") {
		t.Errorf("extra column dropped:\n%s", out)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "three-wide-extra") {
		t.Errorf("markdown dropped the extra column:\n%s", md)
	}
}

// mdCells parses the body cells out of a Markdown rendering.
func mdCells(md string) [][]string {
	var rows [][]string
	for _, line := range strings.Split(md, "\n") {
		if !strings.HasPrefix(line, "|") {
			continue
		}
		// Protect escaped pipes from the cell split, then restore them.
		const sentinel = "\x00"
		trimmed := strings.Trim(strings.ReplaceAll(line, `\|`, sentinel), "|")
		if strings.Trim(strings.ReplaceAll(trimmed, "-", ""), "| ") == "" {
			continue // separator row
		}
		var cells []string
		for _, c := range strings.Split(trimmed, "|") {
			cells = append(cells, strings.ReplaceAll(strings.TrimSpace(c), sentinel, "|"))
		}
		rows = append(rows, cells)
	}
	return rows
}

// TestTableRendersAgree: the text and markdown frames must carry identical
// cell content — headers, every row, every column — so the human and
// machine views cannot drift.
func TestTableRendersAgree(t *testing.T) {
	tab := &Table{ID: "T", Title: "agree", Header: []string{"col-a", "col-b", "col-c"}}
	tab.AddRow("x", 1.25, "a|b") // a pipe to exercise escaping
	tab.AddRow("yyyyyyyyyyyyyyyyyyyy", 2, "z")
	got := mdCells(tab.Markdown())
	want := append([][]string{tab.Header}, tab.Rows...)
	if len(got) != len(want) {
		t.Fatalf("markdown rows = %d, want %d", len(got), len(want))
	}
	text := tab.String()
	for i, row := range want {
		for j, cell := range row {
			if got[i][j] != cell {
				t.Errorf("markdown[%d][%d] = %q, want %q", i, j, got[i][j], cell)
			}
			if !strings.Contains(text, cell) {
				t.Errorf("text rendering missing cell %q", cell)
			}
		}
	}
}
