package bench

import (
	"fmt"
	"math"
	"time"

	"opendesc/internal/core"
	"opendesc/internal/iface"
	"opendesc/internal/nic"
	"opendesc/internal/perf"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

// IfaceApps are the two applications of the interface-model comparison:
// payload-touch needs no metadata (Enso's home turf); hash-lb needs the RSS
// hash (where descriptor-less streaming "collapses", §2).
var IfaceApps = []string{"payload-touch", "hash-lb"}

// NewInterfaces constructs the three interface models for the E11 workload.
func NewInterfaces(packets int) ([]iface.Interface, [][]byte, error) {
	m := nic.MustLoad("mlx5")
	intent, err := core.IntentFromSemantics("lb", semantics.Default,
		semantics.RSS, semantics.PktLen)
	if err != nil {
		return nil, nil, err
	}
	res, err := m.Compile(intent, core.CompileOptions{})
	if err != nil {
		return nil, nil, err
	}
	soft := softnic.Funcs()
	spec := workload.DefaultSpec()
	spec.Packets = packets
	spec.VLANFraction = 0
	tr, err := workload.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	ringed, err := iface.NewRinged(m, res, soft, packets*2)
	if err != nil {
		return nil, nil, err
	}
	batched, err := iface.NewBatched(m, res, soft, 32, packets)
	if err != nil {
		return nil, nil, err
	}
	streamed := iface.NewStreamed(tr.TotalBytes() + 4096)
	return []iface.Interface{ringed, batched, streamed}, tr.Packets, nil
}

// IfaceHandler returns the host-side handler for one of the IfaceApps.
// The returned *uint64 is the sink defeating dead-code elimination.
func IfaceHandler(app string) (iface.Handler, *uint64) {
	sink := new(uint64)
	switch app {
	case "payload-touch":
		return func(p []byte, _ iface.MetaFunc) {
			// Touch the first payload bytes (constant work per packet).
			if len(p) >= pkt.EthHeaderLen+8 {
				for _, b := range p[pkt.EthHeaderLen : pkt.EthHeaderLen+8] {
					*sink += uint64(b)
				}
			}
		}, sink
	case "hash-lb":
		soft := softnic.Funcs()[semantics.RSS]
		return func(p []byte, meta iface.MetaFunc) {
			h, ok := meta(semantics.RSS)
			if !ok {
				h = soft(p) // streaming model: recompute in software
			}
			*sink += h
		}, sink
	}
	panic("unknown iface app " + app)
}

// MeasurePoll times the host-side Poll of an interface model, re-delivering
// the trace outside the timed region. The fastest round is reported
// (minimum-of-rounds is robust to scheduler noise from concurrent work).
func MeasurePoll(ifc iface.Interface, packets [][]byte, h iface.Handler, minDur time.Duration) (float64, error) {
	var total time.Duration
	best := math.Inf(1)
	for total < minDur {
		if err := ifc.Deliver(packets); err != nil {
			return 0, err
		}
		start := time.Now()
		c := ifc.Poll(h)
		d := time.Since(start)
		total += d
		if c != len(packets) {
			return 0, fmt.Errorf("iface %s polled %d of %d", ifc.Name(), c, len(packets))
		}
		if ns := float64(d.Nanoseconds()) / float64(c); ns < best {
			best = ns
		}
	}
	return best, nil
}

// E11Interfaces compares the three candidate driver-datapath interface
// models (§5): per-packet rings, ASNI-style batched frames, and Enso-style
// descriptor-less streaming. The expected shape mirrors the papers cited in
// §2: streaming wins for raw payload processing (ENSO's 6× claim) but
// collapses once the application needs NIC-computed metadata, while the
// batched model keeps metadata inline at a fraction of the ring overhead.
func E11Interfaces(packets int, minDur time.Duration) (*Table, error) {
	if packets <= 0 {
		packets = 512
	}
	if minDur <= 0 {
		minDur = 20 * time.Millisecond
	}
	ifaces, tr, err := NewInterfaces(packets)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E11",
		Title: "Interface models for a synthesized driver datapath (§5, ns/packet)",
		Note: "ringed: per-packet completion ring; batched: ASNI-style frames\n" +
			"(metadata inline); streamed: Enso-style raw byte stream (no descriptors\n" +
			"— metadata must be recomputed in software).",
		Header: []string{"app", "model", "desc-B/pkt", "ns/pkt"},
		Record: newPerfRecord("e11_iface", "E11",
			"Interface models for a synthesized driver datapath (ns/packet)", packets, minDur),
	}
	for _, ifc := range ifaces {
		t.Record.AddValue("desc_bytes/"+ifc.Name(), "bytes",
			float64(ifc.PerPacketDescriptorBytes()), perf.Info)
	}
	for _, app := range IfaceApps {
		for _, ifc := range ifaces {
			h, sink := IfaceHandler(app)
			ns, err := MeasurePoll(ifc, tr, h, minDur)
			if err != nil {
				return nil, err
			}
			_ = sink
			t.AddRow(app, ifc.Name(), ifc.PerPacketDescriptorBytes(), ns)
			addTiming(t.Record, "poll/"+app+"/"+ifc.Name(), "ns/pkt", ns)
		}
	}
	return t, nil
}
