package bench

import (
	"fmt"
	"time"

	"opendesc"
	"opendesc/internal/faults"
	"opendesc/internal/obs/flight"
	"opendesc/internal/perf"
	"opendesc/internal/workload"
)

// e17Time measures the bare datapath cost (Rx, Poll, three metadata reads)
// of n packets through the plain driver with the flight recorder enabled or
// runtime-disabled.
func e17Time(n int, record bool) (float64, error) {
	intent, err := opendesc.NewIntent("e17", "rss", "vlan", "pkt_len")
	if err != nil {
		return 0, err
	}
	drv, err := opendesc.OpenIntent("e1000e", intent, opendesc.CompileOptions{})
	if err != nil {
		return 0, err
	}
	drv.Flight().SetEnabled(record)
	tr, err := workload.Generate(workload.DefaultSpec())
	if err != nil {
		return 0, err
	}
	var sink uint64
	h := func(p []byte, meta opendesc.Meta) {
		v1, _ := meta.Get("rss")
		v2, _ := meta.Get("vlan")
		v3, _ := meta.Get("pkt_len")
		sink += v1 + v2 + v3
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		p := tr.Packets[i%len(tr.Packets)]
		for !drv.Rx(p) {
			drv.Poll(h)
		}
		if i%8 == 7 {
			drv.Poll(h)
		}
	}
	for drv.Poll(h) > 0 {
	}
	ns := float64(time.Since(start).Nanoseconds()) / float64(n)
	_ = sink
	return ns, nil
}

// e17Allocs measures steady-state heap allocations per packet with the
// recorder enabled: the full Rx+Poll cycle, an Rx-only baseline (the
// simulated device legitimately allocates — offload maps, deparser env), and
// their difference, which is what the host-side poll→validate→read→deliver
// path allocates and must stay zero. The driver is warmed first so one-time
// ring and recorder allocations don't count.
func e17Allocs() (full, deliver float64, err error) {
	intent, err := opendesc.NewIntent("e17", "rss", "vlan", "pkt_len")
	if err != nil {
		return 0, 0, err
	}
	drv, err := opendesc.OpenIntent("e1000e", intent, opendesc.CompileOptions{})
	if err != nil {
		return 0, 0, err
	}
	drv.Flight().SetEnabled(true)
	tr, err := workload.Generate(workload.DefaultSpec())
	if err != nil {
		return 0, 0, err
	}
	var sink uint64
	h := func(p []byte, meta opendesc.Meta) {
		v, _ := meta.Get("rss")
		sink += v
	}
	for i := 0; i < 64; i++ {
		p := tr.Packets[i%len(tr.Packets)]
		for !drv.Rx(p) {
			drv.Poll(h)
		}
	}
	for drv.Poll(h) > 0 {
	}
	// Rx-only: 200 runs plus warm-up stay well under the 1024-deep ring.
	rxOnly := perf.Allocs(200, func() {
		drv.Rx(tr.Packets[0])
	})
	for drv.Poll(h) > 0 {
	}
	full = perf.Allocs(200, func() {
		for !drv.Rx(tr.Packets[0]) {
			drv.Poll(h)
		}
		drv.Poll(h)
	})
	_ = sink
	deliver = full - rxOnly
	if deliver < 0 {
		deliver = 0
	}
	return full, deliver, nil
}

// E17Flight is the flight-recorder experiment: the recording overhead on the
// hot path (recorder on vs runtime-disabled, same binary), and a worked
// postmortem — a hardened driver survives an injected device hang and the
// recorder's automatic snapshot must decode to the degrade→reset→restore
// recovery arc with per-completion DMA→deliver latencies. dumpDir, when
// non-empty, also writes the postmortem as a .odfl file (decode with
// `opendesc flight`).
func E17Flight(packets int, dumpDir string) (*Table, error) {
	if packets < 4096 {
		packets = 4096
	}

	// Alternate on/off passes and keep each mode's best time: single passes
	// jitter by several percent in shared environments, and the minimum is
	// the standard estimator for "the code's cost without the noise".
	onNs, offNs := -1.0, -1.0
	for round := 0; round < 3; round++ {
		on, err := e17Time(packets, true)
		if err != nil {
			return nil, err
		}
		off, err := e17Time(packets, false)
		if err != nil {
			return nil, err
		}
		if onNs < 0 || on < onNs {
			onNs = on
		}
		if offNs < 0 || off < offNs {
			offNs = off
		}
	}

	// Worked postmortem: one forced device hang mid-run; the watchdog must
	// degrade, reset, and restore, and the recorder must have snapshotted
	// the whole arc.
	run, err := e17Hang(packets, dumpDir)
	if err != nil {
		return nil, err
	}

	fullAllocs, deliverAllocs, err := e17Allocs()
	if err != nil {
		return nil, err
	}

	tab := &Table{
		ID:     "E17",
		Title:  "flight recorder: hot-path overhead and hang postmortem (e1000e, rss+vlan+pkt_len)",
		Header: []string{"measurement", "value"},
		Record: newPerfRecord("e17_flight", "E17",
			"Flight recorder: hot-path overhead and hang postmortem (e1000e)", packets, 0),
	}
	rec := tab.Record
	addTiming(rec, "datapath/recorder_on", "ns/pkt", onNs)
	addTiming(rec, "datapath/recorder_off", "ns/pkt", offNs)
	rec.AddValue("recorder/overhead_pct", "ratio", (onNs-offNs)/offNs, perf.Info)
	rec.AddValue("datapath/allocs_per_pkt", "allocs/op", fullAllocs, perf.Lower)
	rec.AddValue("deliver/allocs_per_pkt", "allocs/op", deliverAllocs, perf.Lower)
	rec.AddValue("postmortems", "count", float64(run.postmortems), perf.Higher)
	rec.AddValue("dump/delivers", "count", float64(run.delivers), perf.Info)
	rec.AddValue("dump/max_deliver_ns", "ns", float64(run.maxDeliverNs), perf.Info)
	tab.AddRow("datapath, recorder on", fmt.Sprintf("%.0f ns/pkt", onNs))
	tab.AddRow("datapath, recorder disabled", fmt.Sprintf("%.0f ns/pkt (%+.1f%% when on)", offNs, (onNs-offNs)/offNs*100))
	tab.AddRow("deliver-path allocs", fmt.Sprintf("%.2f/pkt (device sim total %.2f)", deliverAllocs, fullAllocs))
	tab.AddRow("hang run delivered", fmt.Sprintf("%d/%d exactly once", run.delivered, run.accepted))
	tab.AddRow("postmortems captured", fmt.Sprintf("%d (last: %q)", run.postmortems, run.lastReason))
	tab.AddRow("recovery arc in dump", run.arc)
	tab.AddRow("deliver events in dump", fmt.Sprintf("%d (max DMA→deliver %dns)", run.delivers, run.maxDeliverNs))
	note := "the postmortem snapshot must decode to degrade → reset_attempt → restore with per-completion latencies"
	if len(run.dumpFiles) > 0 {
		note += "\ndump files:"
		for _, f := range run.dumpFiles {
			note += " " + f
		}
	}
	tab.Note = note
	return tab, nil
}

// e17Run is the outcome of the hang-postmortem drive.
type e17Run struct {
	accepted     int
	delivered    int
	postmortems  uint64
	lastReason   string
	arc          string
	delivers     int
	maxDeliverNs uint64
	dumpFiles    []string
}

// e17Hang drives a hardened driver through one forced device hang and
// decodes the recorder's last postmortem snapshot.
func e17Hang(packets int, dumpDir string) (*e17Run, error) {
	intent, err := opendesc.NewIntent("e17", "rss", "vlan", "pkt_len")
	if err != nil {
		return nil, err
	}
	drv, err := opendesc.OpenWith("e1000e", intent, opendesc.OpenOptions{
		Harden: &opendesc.HardenOptions{},
	})
	if err != nil {
		return nil, err
	}
	if dumpDir != "" {
		drv.Flight().SetDumpDir(dumpDir)
	}
	drv.InjectFaults(faults.New(faults.Plan{
		Seed: 171, HangCount: 1, HangMTBF: packets / 2, HangBurst: 32,
	}))
	tr, err := workload.Generate(workload.DefaultSpec())
	if err != nil {
		return nil, err
	}

	run := &e17Run{}
	h := func(p []byte, meta opendesc.Meta) {
		run.delivered++
		_, _ = meta.Get("rss")
	}
	for i := 0; i < packets; i++ {
		p := tr.Packets[i%len(tr.Packets)]
		tries := 0
		for !drv.Rx(p) {
			drv.Poll(h)
			if tries++; tries > 1<<16 {
				return nil, fmt.Errorf("e17: rx stalled at packet %d", i)
			}
		}
		run.accepted++
		if i%8 == 7 {
			drv.Poll(h)
		}
	}
	idle := 0
	for i := 0; i < 1<<20 && idle < 4; i++ {
		if drv.Poll(h) == 0 {
			idle++
		} else {
			idle = 0
		}
	}
	if run.delivered != run.accepted {
		return nil, fmt.Errorf("e17: delivered %d of %d accepted packets", run.delivered, run.accepted)
	}
	hard := drv.Hardening()
	if hard.HardwareRestores != 1 {
		return nil, fmt.Errorf("e17: %d hardware restores, want 1", hard.HardwareRestores)
	}

	rec := drv.Flight()
	run.postmortems = rec.Postmortems()
	if run.postmortems == 0 {
		return nil, fmt.Errorf("e17: hang recovery captured no postmortem")
	}
	reason, _, _ := rec.LastPostmortem()
	run.lastReason = reason
	run.dumpFiles = rec.DumpFiles()

	snap := rec.LastSnapshot()
	if snap == nil {
		return nil, fmt.Errorf("e17: no postmortem snapshot retained")
	}
	// Decode the recovery arc: the degrade, reset-attempt and restore events
	// must appear in causal order in the dump, and delivered completions must
	// carry their DMA→deliver latency.
	pos := map[flight.Code]int{}
	i := 0
	for _, q := range snap.Queues {
		for _, ev := range q.Events {
			i++
			switch ev.Code {
			case flight.EvDegrade, flight.EvResetAttempt, flight.EvRestore:
				if _, seen := pos[ev.Code]; !seen {
					pos[ev.Code] = i
				}
			case flight.EvDeliver:
				run.delivers++
				if ev.Arg1 > run.maxDeliverNs {
					run.maxDeliverNs = ev.Arg1
				}
			}
		}
	}
	dg, okD := pos[flight.EvDegrade]
	ra, okR := pos[flight.EvResetAttempt]
	rs, okS := pos[flight.EvRestore]
	if !okD || !okR || !okS || !(dg < ra && ra < rs) {
		return nil, fmt.Errorf("e17: postmortem does not decode to degrade→reset→restore (positions: degrade=%d reset=%d restore=%d)", dg, ra, rs)
	}
	if run.delivers == 0 || run.maxDeliverNs == 0 {
		return nil, fmt.Errorf("e17: postmortem has no deliver events with latencies")
	}
	run.arc = fmt.Sprintf("degrade@%d → reset_attempt@%d → restore@%d", dg, ra, rs)
	return run, nil
}
