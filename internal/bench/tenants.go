package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"opendesc/internal/chaos"
	"opendesc/internal/perf"
	"opendesc/internal/tenant"
	"opendesc/internal/workload"
)

// tenantProfiles are the intent mixes E19 cycles tenants through — four
// different application shapes sharing one jointly-compiled layout.
var tenantProfiles = [][]string{
	{"rss", "pkt_len"},
	{"ip_checksum", "pkt_len"},
	{"pkt_len", "ptype"},
	{"rss", "vlan"},
}

// e19Run is one serving-plane measurement: aggregate throughput, per-tenant
// tail latency, fairness, and steal/renegotiation counts.
type e19Run struct {
	tenants, cores int
	elapsed        time.Duration
	fairness       float64 // Jain over per-tenant service ratios
	loadFairness   float64 // Jain over raw offered load (workload skew context)
	maxP99         float64
	steals         uint64
	renegs         uint64
	renegNs        float64 // wall time of the mid-run joint switchover
	delivered      uint64
}

// e19Serve pushes a Zipf trace through a plane of (tenants, cores) with one
// producer goroutine and one poll goroutine per core, renegotiating tenant 0
// mid-run to show a live switchover under load loses nothing.
func e19Serve(tenants, cores, packets int) (*e19Run, error) {
	specs := make([]tenant.Spec, tenants)
	for i := range specs {
		specs[i] = tenant.Spec{
			Name:      fmt.Sprintf("tenant%02d", i),
			Semantics: tenantProfiles[i%len(tenantProfiles)],
		}
	}
	p, err := tenant.Open(tenant.Options{NIC: "mlx5", Cores: cores, RingEntries: 2048}, specs...)
	if err != nil {
		return nil, err
	}
	tr, err := workload.GenerateZipf(workload.ZipfSpec{
		Packets: packets,
		Flows:   2 << 20, // two million concurrent flows
		Skew:    1.1,
		Tenants: tenants,
		Seed:    19,
	})
	if err != nil {
		return nil, err
	}
	offered := make([]uint64, tenants)
	for _, t := range tr.TenantOf {
		offered[t]++
	}

	var done atomic.Uint64
	var renegErr atomic.Value
	var renegNs atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // producer: the simulated wire
		defer wg.Done()
		for i, pk := range tr.Packets {
			if i == len(tr.Packets)/2 {
				// Live renegotiation in the middle of the run: tenant 0
				// adds flow_id. Neighbors must not lose a packet (checked
				// below by exact conservation). The joint re-compile is
				// control-plane work, timed on its own so the datapath
				// throughput number stays a datapath number.
				t0 := time.Now()
				if err := p.Renegotiate("tenant00", "rss", "pkt_len", "flow_id"); err != nil {
					renegErr.Store(err)
					return
				}
				renegNs.Store(time.Since(t0).Nanoseconds())
			}
			for !p.Rx(pk) { // completion ring full: let consumers drain
				runtime.Gosched()
			}
		}
	}()
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			for done.Load() < uint64(packets) {
				n := p.PollCore(core, func(d tenant.Delivery) {
					d.Get(tenantProfiles[d.Tenant%len(tenantProfiles)][0])
				})
				if n == 0 {
					runtime.Gosched()
				} else {
					done.Add(uint64(n))
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start) - time.Duration(renegNs.Load())
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	if err, _ := renegErr.Load().(error); err != nil {
		return nil, fmt.Errorf("mid-run renegotiation: %w", err)
	}

	st := p.Stats()
	run := &e19Run{tenants: tenants, cores: cores, elapsed: elapsed}
	// Fairness of SERVICE, not of demand: Jain's index over per-tenant
	// delivered/offered ratios. The Zipf head is deliberately lopsided
	// across tenants (rank 1 belongs entirely to tenant 0) — what the plane
	// owes its tenants is that each one's traffic is served in proportion
	// to what arrived, i.e. no neighbor-induced starvation or selective
	// loss. Raw demand skew is reported separately as context.
	ratios := make([]float64, tenants)
	loads := make([]float64, tenants)
	for i, ts := range st.Tenants {
		if ts.Delivered != offered[i] || ts.Accepted != offered[i] {
			return nil, fmt.Errorf("tenant %d: offered %d, accepted %d, delivered %d (exactly-once broken)",
				i, offered[i], ts.Accepted, ts.Delivered)
		}
		ratios[i] = float64(ts.Delivered) / float64(offered[i])
		loads[i] = float64(offered[i])
		run.delivered += ts.Delivered
		if ts.P99 > run.maxP99 {
			run.maxP99 = ts.P99
		}
	}
	run.fairness = tenant.JainFairness(ratios)
	run.loadFairness = tenant.JainFairness(loads)
	run.steals = st.Steals
	run.renegs = st.Renegs + st.FastRenegs
	if run.renegs == 0 {
		return nil, fmt.Errorf("mid-run renegotiation did not complete")
	}
	return run, nil
}

// E19Tenants is the multi-tenant serving-plane experiment (DESIGN.md §S24):
// aggregate throughput, per-tenant p99 latency and Jain's fairness across
// tenant counts {1, 4, 16, 64} under a 2M-flow Zipf(1.1) workload, each
// with a live mid-run renegotiation, plus the S23 tenant-isolation chaos
// sweep. Wall-clock numbers are context (Info); fairness and conservation
// counts are deterministic and gate the CI perf ratchet.
func E19Tenants(packets int) (*Table, error) {
	if packets <= 0 {
		packets = 4096
	}
	tab := &Table{
		ID: "E19",
		Title: fmt.Sprintf("multi-tenant serving plane: %d Zipf(1.1) packets over 2M flows per row, live mid-run renegotiation",
			packets),
		Header: []string{"tenants", "cores", "throughput", "max p99", "fairness", "steals", "renegs"},
		Record: newPerfRecord("e19_tenants", "E19",
			"multi-tenant serving plane: throughput, tail latency, Jain fairness vs tenant count", packets, 0),
	}
	rec := tab.Record

	var fairness16 float64
	for _, shape := range []struct{ tenants, cores int }{
		{1, 1}, {4, 2}, {16, 4}, {64, 8},
	} {
		run, err := e19Serve(shape.tenants, shape.cores, packets)
		if err != nil {
			return nil, fmt.Errorf("e19 t=%d c=%d: %w", shape.tenants, shape.cores, err)
		}
		pps := float64(run.delivered) / run.elapsed.Seconds()
		tab.AddRow(shape.tenants, shape.cores,
			fmt.Sprintf("%.2f Mpps", pps/1e6),
			fmt.Sprintf("%.1f µs", run.maxP99/1e3),
			fmt.Sprintf("%.4f (load %.2f)", run.fairness, run.loadFairness),
			run.steals, run.renegs)

		pfx := fmt.Sprintf("t%02d/", shape.tenants)
		rec.AddValue(pfx+"throughput_pps", "ops/s", pps, perf.Info)
		rec.AddValue(pfx+"max_p99_ns", "ns", run.maxP99, perf.Info)
		rec.AddValue(pfx+"fairness", "ratio", run.fairness, perf.Higher)
		rec.AddValue(pfx+"load_fairness", "ratio", run.loadFairness, perf.Info)
		rec.AddValue(pfx+"delivered", "count", float64(run.delivered), perf.Higher)
		rec.AddValue(pfx+"steals", "count", float64(run.steals), perf.Info)
		if shape.tenants == 16 {
			fairness16 = run.fairness
		}
	}
	// Acceptance floor from the issue: Jain ≥ 0.95 at 16 tenants under the
	// skewed workload (round-robin rank sharding keeps offered load even).
	if fairness16 < 0.95 {
		return nil, fmt.Errorf("e19: Jain fairness %.4f at 16 tenants, want >= 0.95", fairness16)
	}

	// Tenant-isolation chaos sweep (S23): scripted renegotiations under
	// interleaved arrivals/polls/steals; every oracle must hold.
	var renegs, violations, cases uint64
	for seed := uint64(1); seed <= 8; seed++ {
		res := chaos.RunTenant(chaos.TenantConfig{Tenants: 4, Cores: 2, Steps: 512}, seed)
		cases++
		renegs += res.Renegs + res.FastRenegs
		if res.Violation != nil {
			violations++
			return nil, fmt.Errorf("e19 chaos seed=%d: %v", seed, res.Violation)
		}
	}
	if res := chaos.RunTenant(chaos.TenantConfig{Tenants: 16, Cores: 4, Steps: 768}, 3); res.Violation != nil {
		return nil, fmt.Errorf("e19 chaos 16-tenant: %v", res.Violation)
	} else {
		cases++
		renegs += res.Renegs + res.FastRenegs
	}
	tab.AddRow("chaos", "-", "-", "-", "-", "-",
		fmt.Sprintf("%d renegs / %d cases / %d violations", renegs, cases, violations))
	rec.AddValue("chaos/cases", "count", float64(cases), perf.Higher)
	rec.AddValue("chaos/renegotiations", "count", float64(renegs), perf.Info)
	rec.AddValue("chaos/violations", "count", float64(violations), perf.Lower)

	tab.Note = fmt.Sprintf(
		"one joint Eq. 1 compile per plane; per-tenant accessor/shim splits over one shared layout\n"+
			"every row renegotiates tenant 0 mid-run with exact per-tenant conservation (exactly-once held)\n"+
			"fairness = Jain over per-tenant delivered/offered service ratios (load = Jain over raw Zipf demand)\n"+
			"Jain service fairness at 16 tenants: %.4f (floor 0.95); chaos sweep: %d cases, %d scripted renegotiations, 0 violations",
		fairness16, cases, renegs)
	return tab, nil
}
