package bench

import (
	"fmt"
	"time"

	"opendesc/internal/diffverify"
	"opendesc/internal/nic"
	"opendesc/internal/perf"
)

// e22Coverage is one exhaustive six-NIC harness pass: every bundled
// description through the four-view differential check (static layout, CFG
// walk, interpreter, generated accessors) plus SoftNIC golden packets.
type e22Coverage struct {
	paths, cases, checks int
	ns                   float64 // wall-clock for the whole pass
}

// e22Pass runs the harness exhaustively over all bundled NICs and returns
// the aggregate coverage. Any disagreement or underdetermined case is an
// experiment failure — the artifact pins zero for both.
func e22Pass() (*e22Coverage, error) {
	var cov e22Coverage
	start := time.Now()
	for _, m := range nic.All() {
		rep, err := diffverify.VerifySource(m.Name, m.Source, diffverify.Options{})
		if err != nil {
			return nil, fmt.Errorf("e22: %s rejected: %v", m.Name, err)
		}
		if !rep.OK() {
			return nil, fmt.Errorf("e22: %s disagrees:\n%s", m.Name, rep)
		}
		if rep.Skipped != 0 {
			return nil, fmt.Errorf("e22: %s left %d cases underdetermined", m.Name, rep.Skipped)
		}
		cov.paths += rep.Paths
		cov.cases += rep.Cases
		cov.checks += rep.Checks
	}
	cov.ns = float64(time.Since(start).Nanoseconds())
	return &cov, nil
}

// E22Diffverify is the S27 differential-verification experiment (DESIGN.md
// §S27): exhaustive four-view equivalence over every bundled description
// (timed — the harness has to be cheap enough to gate every fleet push), the
// broken-accessor ablation on every NIC (the harness must catch an injected
// one-bit codegen bug with a minimal accessor-view reproducer), and a seeded
// adversarial mutant sweep run twice to pin verdict determinism. Coverage
// counts, ablation catches, and mutant verdicts are deterministic and gate
// the CI ratchet; wall-clock numbers are context except the per-pass timing.
func E22Diffverify(mutantsPerNIC int) (*Table, error) {
	if mutantsPerNIC < 8 {
		mutantsPerNIC = 8
	}
	models := nic.All()

	// Harness timing: one untimed warm-up pass, then min-of-rounds over the
	// full six-NIC exhaustive sweep (the E17/E21 estimator).
	if _, err := e22Pass(); err != nil {
		return nil, err
	}
	var cov *e22Coverage
	minNs := -1.0
	for round := 0; round < 3; round++ {
		c, err := e22Pass()
		if err != nil {
			return nil, err
		}
		if minNs < 0 || c.ns < minNs {
			minNs = c.ns
		}
		cov = c
	}
	pathsPerSec := float64(cov.paths) / (minNs / 1e9)

	// Ablation: a deliberately mis-offset accessor must be caught on every
	// NIC, and the first reproducer must blame the accessor view.
	caught := 0
	var reproducer string
	for _, m := range models {
		rep, err := diffverify.VerifySource(m.Name, m.Source, diffverify.Options{BreakAccessor: true})
		if err != nil {
			return nil, fmt.Errorf("e22 ablation: %s rejected: %v", m.Name, err)
		}
		if rep.OK() {
			return nil, fmt.Errorf("e22 ablation: broken accessor on %s not caught", m.Name)
		}
		if d := rep.Disagreements[0]; d.View != "accessor" {
			return nil, fmt.Errorf("e22 ablation: %s first disagreement blames view %q, want accessor", m.Name, d.View)
		}
		if reproducer == "" {
			reproducer = rep.Disagreements[0].String()
		}
		caught++
	}

	// Adversarial mutant sweep, seeded, run twice: identical seeds must give
	// identical verdicts, and no screened mutant may expose a triad
	// disagreement (a disagree verdict means a real compiler bug).
	sweepStart := time.Now()
	counts := map[string]int{}
	screened := 0
	for _, m := range models {
		a := diffverify.Sweep(m.Name, m.Source, 1, mutantsPerNIC)
		b := diffverify.Sweep(m.Name, m.Source, 1, mutantsPerNIC)
		if len(a) != len(b) {
			return nil, fmt.Errorf("e22: %s sweep lengths differ between identical runs", m.Name)
		}
		for i, v := range a {
			if v != b[i] {
				return nil, fmt.Errorf("e22: %s mutant seed %#x verdict differs between identical runs", m.Name, v.Seed)
			}
			if v.Outcome == diffverify.OutcomeDisagree {
				return nil, fmt.Errorf("e22: %s mutant seed %#x (ops %s) exposes a disagreement: %s",
					m.Name, v.Seed, v.Ops, v.Reason)
			}
			counts[v.Outcome]++
			screened++
		}
	}
	sweepNs := float64(time.Since(sweepStart).Nanoseconds())

	// Certificate flow: the digest-keyed verdict the fleet controller gates
	// provisioning on must pass for a bundled description.
	cert := diffverify.Certify(models[0].Name, models[0].Source)
	if !cert.Passed {
		return nil, fmt.Errorf("e22: certificate for %s failed: %s", cert.NIC, cert.Reason)
	}

	tab := &Table{
		ID:     "E22",
		Title:  fmt.Sprintf("differential verification: four-view harness, ablation, %d-mutant sweep", screened),
		Header: []string{"measurement", "value"},
		Record: newPerfRecord("e22_diff", "E22",
			"differential verification: exhaustive harness timing, accessor ablation, adversarial mutant sweep",
			cov.cases, 0),
	}
	rec := tab.Record
	addTiming(rec, "harness/six_nic_pass", "ns", minNs)
	// One-shot wall-clock over 384 full frontend runs — too noisy to ratchet;
	// the gated timing is the min-of-rounds harness pass above.
	rec.AddValue("mutants/sweep", "ns", sweepNs*handicap, perf.Info)
	rec.AddValue("harness/paths_per_sec", "count", pathsPerSec, perf.Info)
	rec.AddValue("harness/paths", "count", float64(cov.paths), perf.Higher)
	rec.AddValue("harness/cases", "count", float64(cov.cases), perf.Higher)
	rec.AddValue("harness/checks", "count", float64(cov.checks), perf.Higher)
	rec.AddValue("harness/underdetermined", "count", 0, perf.Lower)
	rec.AddValue("harness/disagreements", "count", 0, perf.Lower)
	rec.AddValue("ablation/caught", "count", float64(caught), perf.Higher)
	rec.AddValue("mutants/screened", "count", float64(screened), perf.Higher)
	rec.AddValue("mutants/pass", "count", float64(counts[diffverify.OutcomePass]), perf.Info)
	rec.AddValue("mutants/rejected", "count", float64(counts[diffverify.OutcomeRejected]), perf.Info)
	rec.AddValue("mutants/disagree", "count", 0, perf.Lower)
	rec.AddValue("cert/passed", "count", boolCount(cert.Passed), perf.Higher)

	tab.AddRow("exhaustive six-NIC pass", fmt.Sprintf("%.2f ms (%d paths, %d cases, %d checks)",
		minNs/1e6, cov.paths, cov.cases, cov.checks))
	tab.AddRow("harness throughput", fmt.Sprintf("%.0f paths/s", pathsPerSec))
	tab.AddRow("underdetermined / disagreements", "0 / 0")
	tab.AddRow("accessor ablation", fmt.Sprintf("caught on %d/%d NICs (minimal reproducer, accessor view)", caught, len(models)))
	tab.AddRow("mutant sweep", fmt.Sprintf("%d screened ×2 identical: %d pass, %d rejected, 0 disagree (%.2f ms)",
		screened, counts[diffverify.OutcomePass], counts[diffverify.OutcomeRejected], sweepNs/1e6))
	tab.AddRow("certificate", fmt.Sprintf("%s %.12s… PASS", cert.NIC, cert.Digest))
	tab.Note = fmt.Sprintf(
		"four views per completion path: static layout, independent CFG walk, P4 interpreter, generated\n"+
			"accessors — plus SoftNIC golden packets; a disagreement renders as a minimal reproducer, e.g.\n"+
			"ablation excerpt: %.160s…", reproducer)
	return tab, nil
}
