// Package bench implements the OpenDesc experiment harness: one function per
// experiment in DESIGN.md's index (E1–E10), each regenerating the
// corresponding table or series as formatted text. cmd/descbench and the
// repository-level benchmarks are thin wrappers around these functions.
package bench

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(&sb, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}
