// Package bench implements the OpenDesc experiment harness: one function per
// experiment in DESIGN.md's index (E1–E18), each regenerating the
// corresponding table or series as formatted text. cmd/descbench and the
// repository-level benchmarks are thin wrappers around these functions.
package bench

import (
	"fmt"
	"math"
	"strings"

	"opendesc/internal/perf"
)

// Table is a formatted experiment result. Record, when non-nil, is the
// experiment's machine-readable perf artifact (serialized by descbench to
// BENCH_<name>.json); the table is the human view of the same run.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string

	Record *perf.Record
}

// AddRow appends a row; values are stringified with %v. Large-magnitude
// floats switch to %.4g so a runaway value widens its column readably
// instead of printing dozens of digits.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			if math.Abs(x) >= 1e15 || math.IsInf(x, 0) || math.IsNaN(x) {
				row[i] = fmt.Sprintf("%.4g", x)
			} else {
				row[i] = fmt.Sprintf("%.1f", x)
			}
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// columns is the table's true column count: the widest of the header and
// every row, so a row with more cells than the header widens the table
// instead of panicking or silently truncating.
func (t *Table) columns() int {
	n := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	return n
}

// widths computes per-column display widths over header and all rows.
func (t *Table) widths() []int {
	w := make([]int, t.columns())
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	return w
}

// String renders the table with aligned columns. Column widths adapt to the
// widest cell (header or row) so no value is ever clipped, and ragged rows
// — shorter or longer than the header — render with empty padding cells
// rather than disagreeing between output formats.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(&sb, "   %s\n", line)
		}
	}
	widths := t.widths()
	writeRow := func(cells []string) {
		for i := 0; i < len(widths); i++ {
			if i > 0 {
				sb.WriteString("  ")
			}
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(widths))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// Markdown renders the same cells as a GitHub-flavored markdown table.
// It shares cell content with String (only the frame differs), so the two
// renderings cannot disagree; TestTableRendersAgree enforces this.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s: %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(&sb, "> %s\n", line)
		}
		sb.WriteString("\n")
	}
	cols := t.columns()
	writeRow := func(cells []string) {
		sb.WriteString("|")
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = strings.ReplaceAll(cells[i], "|", `\|`)
			}
			sb.WriteString(" " + c + " |")
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	sb.WriteString("|")
	for i := 0; i < cols; i++ {
		sb.WriteString("---|")
	}
	sb.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}
