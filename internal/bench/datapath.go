package bench

import (
	"fmt"
	"math"
	"time"

	"opendesc/internal/baseline"
	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/obs"
	"opendesc/internal/perf"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

// Sample is one (completion record, packet) pair captured from the simulated
// device, i.e. what the host datapath sees per received packet.
type Sample struct {
	Cmpt   []byte
	Packet []byte
}

// CaptureStats summarizes device-side saturation during a capture — the
// same counters `nicsim -stats` exposes as the opendesc_ring_occupancy*
// gauges. The E4 perf record carries them alongside the latency numbers so
// a "fast because the ring was idle" run is visible as such.
type CaptureStats struct {
	RingCapacity  int
	RingHighWater int
	FullStalls    uint64
	Drops         uint64
}

// merge folds another capture's saturation into the summary (max for
// level-style gauges, sum for counters).
func (c *CaptureStats) merge(o CaptureStats) {
	if o.RingCapacity > c.RingCapacity {
		c.RingCapacity = o.RingCapacity
	}
	if o.RingHighWater > c.RingHighWater {
		c.RingHighWater = o.RingHighWater
	}
	c.FullStalls += o.FullStalls
	c.Drops += o.Drops
}

// CaptureSamples runs a trace through a simulated NIC configured with the
// given context constraints and captures the resulting completions.
func CaptureSamples(m *nic.Model, cons []core.Constraint, tr *workload.Trace) ([]Sample, error) {
	samples, _, err := captureSamplesStats(m, cons, tr)
	return samples, err
}

// captureSamplesStats is CaptureSamples plus the device's ring-occupancy
// and stall counters at the end of the capture.
func captureSamplesStats(m *nic.Model, cons []core.Constraint, tr *workload.Trace) ([]Sample, CaptureStats, error) {
	dev, err := nicsim.New(m, nicsim.Config{RingEntries: 64})
	if err != nil {
		return nil, CaptureStats{}, err
	}
	if err := dev.ApplyConfig(cons); err != nil {
		return nil, CaptureStats{}, err
	}
	active, err := dev.ActivePath()
	if err != nil {
		return nil, CaptureStats{}, err
	}
	size := active.SizeBytes()
	samples := make([]Sample, 0, len(tr.Packets))
	for i, p := range tr.Packets {
		if !dev.RxPacket(p) {
			st := dev.Stats()
			return nil, CaptureStats{}, fmt.Errorf(
				"bench: rx failed at packet %d/%d on %s (device drops=%d, cmpt ring %d/%d full, %d full-stalls)",
				i, len(tr.Packets), m.Name, st.Drops,
				dev.CmptRing.Occupancy(), dev.CmptRing.Capacity(), st.Ring.FullStalls)
		}
		dev.CmptRing.Consume(func(e []byte) {
			samples = append(samples, Sample{
				Cmpt:   append([]byte(nil), e[:size]...),
				Packet: p,
			})
		})
	}
	st := dev.Stats()
	return samples, CaptureStats{
		RingCapacity:  dev.CmptRing.Capacity(),
		RingHighWater: st.Ring.HighWater,
		FullStalls:    st.Ring.FullStalls,
		Drops:         st.Drops,
	}, nil
}

// measure times fn over the samples until it has run at least minDur in
// total, and returns nanoseconds per sample. The fastest round is reported
// (minimum-of-rounds is robust to scheduler noise from concurrent work).
// When h is non-nil every round's ns/packet is recorded into it, so the
// caller gets the whole per-round latency distribution (p50/p90/p99), not
// just the aggregate minimum.
func measure(samples []Sample, minDur time.Duration, h *obs.Histogram, fn func(s *Sample)) float64 {
	// Warm-up pass.
	for i := range samples {
		fn(&samples[i])
	}
	var total time.Duration
	best := math.Inf(1)
	for total < minDur {
		start := time.Now()
		for i := range samples {
			fn(&samples[i])
		}
		d := time.Since(start)
		total += d
		ns := float64(d.Nanoseconds()) / float64(len(samples))
		if h != nil {
			h.Observe(uint64(ns))
		}
		if ns < best {
			best = ns
		}
	}
	return best
}

// datapathStacks builds the per-stack read closures for one intent over the
// mlx5 device. Kernel-style stacks (skbuff, mbuf, xdp) consume the full
// 64-byte CQE — a driver extracts what the descriptor carries; OpenDesc
// consumes the completion layout its compiler selected for the intent.
type datapathStacks struct {
	Intent   []semantics.Name
	Full     []Sample // full-CQE samples (baseline stacks)
	Selected []Sample // OpenDesc-selected layout samples
	SelBytes int

	skb  *baseline.SkBuffDriver
	mbuf *baseline.MbufDriver
	xdp  *baseline.XDPDriver
	rt   *codegen.Runtime

	// Accessor handles resolved once per intent (what real applications
	// cache at startup): dynfield handles for mbuf, reader pointers for the
	// generated OpenDesc accessors.
	mbufAcc   []baseline.MbufAccessor
	odReaders []*codegen.Reader

	// Hists holds, after Run, the per-stack round-latency distribution
	// (ns/packet per timed round) keyed by stack name.
	Hists map[string]*obs.Histogram

	// Capture is the device-side saturation summary of the sample captures
	// (full-CQE and selected-layout runs merged).
	Capture CaptureStats
}

func newDatapathStacks(intent []semantics.Name, tr *workload.Trace) (*datapathStacks, error) {
	m := nic.MustLoad("mlx5")
	paths, err := m.Paths()
	if err != nil {
		return nil, err
	}
	var full *core.Path
	for _, p := range paths {
		if p.SizeBytes() == 64 {
			full = p
		}
	}
	if full == nil {
		return nil, fmt.Errorf("bench: mlx5 full CQE path missing")
	}
	fullSamples, fullStats, err := captureSamplesStats(m, full.Constraints, tr)
	if err != nil {
		return nil, err
	}
	res, err := m.Compile(mustIntent(intent...), core.CompileOptions{})
	if err != nil {
		return nil, err
	}
	selSamples, selStats, err := captureSamplesStats(m, res.Config, tr)
	if err != nil {
		return nil, err
	}
	fullStats.merge(selStats)
	soft := softnic.Funcs()
	st := &datapathStacks{
		Intent:   intent,
		Full:     fullSamples,
		Selected: selSamples,
		SelBytes: res.CompletionBytes(),
		Capture:  fullStats,
		skb:      baseline.NewSkBuffDriver(full),
		mbuf:     baseline.NewMbufDriver(full, nil),
		xdp:      baseline.NewXDPDriver(full, soft),
		rt:       codegen.NewRuntime(res, soft),
	}
	for _, sem := range intent {
		st.mbufAcc = append(st.mbufAcc, st.mbuf.Accessor(sem))
		st.odReaders = append(st.odReaders, st.rt.Reader(sem))
	}
	return st, nil
}

// Run measures every stack and returns ns/packet keyed by stack name. It
// also fills d.Hists with the per-stack round-latency distribution.
func (d *datapathStacks) Run(minDur time.Duration) map[string]float64 {
	out := make(map[string]float64, 4)
	d.Hists = make(map[string]*obs.Histogram, 4)
	for _, name := range []string{"skbuff", "mbuf", "xdp", "opendesc"} {
		d.Hists[name] = obs.NewHistogram()
	}
	var sink uint64

	var skb baseline.SkBuff
	out["skbuff"] = measure(d.Full, minDur, d.Hists["skbuff"], func(s *Sample) {
		d.skb.Fill(&skb, s.Cmpt, len(s.Packet))
		for _, sem := range d.Intent {
			v, ok := skb.Read(sem)
			if !ok {
				// Not representable: recompute in software like the kernel
				// would for an unknown offload.
				v = softFallback(sem, s.Packet)
			}
			sink += v
		}
	})

	var mb baseline.Mbuf
	out["mbuf"] = measure(d.Full, minDur, d.Hists["mbuf"], func(s *Sample) {
		d.mbuf.Fill(&mb, s.Cmpt, len(s.Packet))
		for i, acc := range d.mbufAcc {
			v, ok := acc.Read(&mb)
			if !ok {
				v = softFallback(d.Intent[i], s.Packet)
			}
			sink += v
		}
	})

	out["xdp"] = measure(d.Full, minDur, d.Hists["xdp"], func(s *Sample) {
		meta := d.xdp.Wrap(s.Cmpt, len(s.Packet))
		for _, sem := range d.Intent {
			v, _ := meta.Read(sem, s.Packet)
			sink += v
		}
	})

	out["opendesc"] = measure(d.Selected, minDur, d.Hists["opendesc"], func(s *Sample) {
		for _, r := range d.odReaders {
			sink += r.Read(s.Cmpt, s.Packet)
		}
	})
	_ = sink
	return out
}

// allocsOpenDesc measures steady-state heap allocations per packet of the
// OpenDesc read path (generated accessors over the selected layout) — the
// zero-alloc claim the perf record gates exactly.
func (d *datapathStacks) allocsOpenDesc() float64 {
	var sink uint64
	i := 0
	return perf.Allocs(200, func() {
		s := &d.Selected[i%len(d.Selected)]
		for _, r := range d.odReaders {
			sink += r.Read(s.Cmpt, s.Packet)
		}
		i++
	})
}

// Stacks exposes per-stack single-sample processing for external benchmark
// drivers (testing.B loops in the repository-level benchmarks).
type Stacks struct {
	inner *datapathStacks
	skb   baseline.SkBuff
	mb    baseline.Mbuf
	sink  uint64
}

// NewStacks prepares the four stacks for an intent over a trace.
func NewStacks(intent []semantics.Name, tr *workload.Trace) (*Stacks, error) {
	in, err := newDatapathStacks(intent, tr)
	if err != nil {
		return nil, err
	}
	return &Stacks{inner: in}, nil
}

// Samples returns the number of captured samples.
func (s *Stacks) Samples() int { return len(s.inner.Full) }

// SelectedBytes is the OpenDesc-selected completion size.
func (s *Stacks) SelectedBytes() int { return s.inner.SelBytes }

// StepSkBuff processes full-CQE sample i via eager sk_buff extraction.
func (s *Stacks) StepSkBuff(i int) {
	sm := &s.inner.Full[i%len(s.inner.Full)]
	s.inner.skb.Fill(&s.skb, sm.Cmpt, len(sm.Packet))
	for _, sem := range s.inner.Intent {
		v, ok := s.skb.Read(sem)
		if !ok {
			v = softFallback(sem, sm.Packet)
		}
		s.sink += v
	}
}

// StepMbuf processes full-CQE sample i via the mbuf flags+dynfield path.
func (s *Stacks) StepMbuf(i int) {
	sm := &s.inner.Full[i%len(s.inner.Full)]
	s.inner.mbuf.Fill(&s.mb, sm.Cmpt, len(sm.Packet))
	for j, acc := range s.inner.mbufAcc {
		v, ok := acc.Read(&s.mb)
		if !ok {
			v = softFallback(s.inner.Intent[j], sm.Packet)
		}
		s.sink += v
	}
}

// StepXDP processes full-CQE sample i via the 3-kfunc XDP model.
func (s *Stacks) StepXDP(i int) {
	sm := &s.inner.Full[i%len(s.inner.Full)]
	meta := s.inner.xdp.Wrap(sm.Cmpt, len(sm.Packet))
	for _, sem := range s.inner.Intent {
		v, _ := meta.Read(sem, sm.Packet)
		s.sink += v
	}
}

// StepOpenDesc processes selected-layout sample i via generated accessors.
func (s *Stacks) StepOpenDesc(i int) {
	sm := &s.inner.Selected[i%len(s.inner.Selected)]
	for _, r := range s.inner.odReaders {
		s.sink += r.Read(sm.Cmpt, sm.Packet)
	}
}

// Sink defeats dead-code elimination in benchmark drivers.
func (s *Stacks) Sink() uint64 { return s.sink }

var softFuncs = softnic.Funcs()

func softFallback(sem semantics.Name, packet []byte) uint64 {
	if f := softFuncs[sem]; f != nil {
		return f(packet)
	}
	return 0
}

// E4Intents are the request mixes of the datapath comparison.
var E4Intents = []struct {
	Name string
	Sems []semantics.Name
}{
	{"hash-only", []semantics.Name{semantics.RSS}},
	{"lb", []semantics.Name{semantics.RSS, semantics.PktLen}},
	{"vlan-app", []semantics.Name{semantics.RSS, semantics.VLAN, semantics.PktLen}},
	{"fw", []semantics.Name{semantics.RSS, semantics.IPChecksum, semantics.L4Checksum, semantics.PktLen}},
	{"telemetry", []semantics.Name{semantics.RSS, semantics.Timestamp, semantics.VLAN, semantics.FlowID, semantics.PktLen}},
}

// E4Datapath measures per-packet metadata-handling cost per host stack on
// simulated mlx5 traffic — the experiment behind the paper's §2 motivation
// numbers (TinyNF 1.7×, X-Change +70%): eager extraction and indirection
// layers cost more than direct generated accessors, and XDP collapses once a
// request leaves its 3 covered hints.
func E4Datapath(packets int, minDur time.Duration) (*Table, error) {
	if packets <= 0 {
		packets = 512
	}
	if minDur <= 0 {
		minDur = 20 * time.Millisecond
	}
	spec := workload.DefaultSpec()
	spec.Packets = packets
	tr, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E4",
		Title: "Host datapath cost per stack (ns/packet, simulated mlx5)",
		Note: "skbuff: eager full extraction; mbuf: flags+dynfield indirection;\n" +
			"xdp: 3 kfuncs + software recompute beyond them; opendesc: generated\n" +
			"fixed-offset accessors over the compiler-selected layout.\n" +
			"od-p50/od-p99: round-level ns/packet distribution (log2 buckets).",
		Header: []string{"intent", "cmpt-bytes(od)", "skbuff", "mbuf", "xdp", "opendesc", "od-p50", "od-p99", "best-baseline/od"},
		Record: newPerfRecord("e4_datapath", "E4",
			"Host datapath cost per stack (ns/packet, simulated mlx5)", packets, minDur),
	}
	rec := t.Record
	var capture CaptureStats
	for _, it := range E4Intents {
		st, err := newDatapathStacks(it.Sems, tr)
		if err != nil {
			return nil, err
		}
		r := st.Run(minDur)
		best := r["skbuff"]
		for _, k := range []string{"mbuf", "xdp"} {
			if r[k] < best {
				best = r[k]
			}
		}
		od := st.Hists["opendesc"]
		t.AddRow(it.Name, st.SelBytes,
			r["skbuff"], r["mbuf"], r["xdp"], r["opendesc"],
			od.Quantile(0.50), od.Quantile(0.99),
			fmt.Sprintf("%.2fx", best/r["opendesc"]))

		for _, stack := range []string{"skbuff", "mbuf", "xdp"} {
			addTiming(rec, "datapath/"+it.Name+"/"+stack, "ns/pkt", r[stack])
		}
		addTimingDist(rec, "datapath/"+it.Name+"/opendesc", "ns/pkt", r["opendesc"],
			perf.DistFromSnapshot(od.Snapshot()))
		rec.AddValue("speedup/"+it.Name, "ratio", best/r["opendesc"], perf.Higher)
		rec.AddValue("footprint/"+it.Name, "bytes", float64(st.SelBytes), perf.Lower)
		rec.AddValue("allocs/"+it.Name+"/opendesc", "allocs/op", st.allocsOpenDesc(), perf.Lower)
		capture.merge(st.Capture)
	}
	// Device-side saturation context (the nicsim -stats ring gauges): a
	// latency claim from an idle ring is a different claim than one from a
	// loaded ring, so the occupancy high-water travels with the numbers.
	rec.AddValue("ring/occupancy_highwater", "count", float64(capture.RingHighWater), perf.Info)
	rec.AddValue("ring/capacity", "count", float64(capture.RingCapacity), perf.Info)
	rec.AddValue("ring/full_stalls", "count", float64(capture.FullStalls), perf.Lower)
	rec.AddValue("ring/drops", "count", float64(capture.Drops), perf.Lower)
	return t, nil
}

// E9MbufDyn measures the DPDK rte_mbuf_dyn indirection cost as the number of
// flag-guarded dynamic offload fields grows (the mechanism the paper notes
// "has itself become a performance bottleneck").
func E9MbufDyn(minDur time.Duration) (*Table, error) {
	if minDur <= 0 {
		minDur = 20 * time.Millisecond
	}
	tr, err := workload.Generate(workload.DefaultSpec())
	if err != nil {
		return nil, err
	}
	m := nic.MustLoad("mlx5")
	paths, err := m.Paths()
	if err != nil {
		return nil, err
	}
	var full *core.Path
	for _, p := range paths {
		if p.SizeBytes() == 64 {
			full = p
		}
	}
	samples, err := CaptureSamples(m, full.Constraints, tr)
	if err != nil {
		return nil, err
	}
	dynOrder := []semantics.Name{
		semantics.Timestamp, semantics.FlowID, semantics.Mark,
		semantics.LROSegs, semantics.IPChecksum, semantics.L4Checksum,
		semantics.TunnelID, semantics.ErrorFlags,
	}
	t := &Table{
		ID:    "E9",
		Title: "DPDK-style dynfield indirection cost vs enabled offloads (mlx5 full CQE)",
		Note: "fill+read ns/packet as flag-guarded dynamic fields are enabled; the\n" +
			"opendesc column reads the same semantics through generated accessors.",
		Header: []string{"dynfields", "mbuf-ns/pkt", "opendesc-ns/pkt", "ratio"},
	}
	soft := softnic.Funcs()
	for k := 0; k <= len(dynOrder); k++ {
		enabled := append([]semantics.Name{semantics.RSS, semantics.VLAN, semantics.PktLen}, dynOrder[:k]...)
		drv := baseline.NewMbufDriver(full, enabled)
		accs := make([]baseline.MbufAccessor, len(enabled))
		for i, sem := range enabled {
			accs[i] = drv.Accessor(sem)
		}
		var mb baseline.Mbuf
		var sink uint64
		mbufNs := measure(samples, minDur, nil, func(s *Sample) {
			drv.Fill(&mb, s.Cmpt, len(s.Packet))
			for _, acc := range accs {
				v, _ := acc.Read(&mb)
				sink += v
			}
		})
		res, err := m.Compile(mustIntent(enabled...), core.CompileOptions{})
		if err != nil {
			return nil, err
		}
		rt := codegen.NewRuntime(res, soft)
		readers := make([]*codegen.Reader, len(enabled))
		for i, sem := range enabled {
			readers[i] = rt.Reader(sem)
		}
		sel, err := CaptureSamples(m, res.Config, tr)
		if err != nil {
			return nil, err
		}
		odNs := measure(sel, minDur, nil, func(s *Sample) {
			for _, r := range readers {
				sink += r.Read(s.Cmpt, s.Packet)
			}
		})
		_ = sink
		t.AddRow(k, mbufNs, odNs, fmt.Sprintf("%.2fx", mbufNs/odNs))
	}
	return t, nil
}
