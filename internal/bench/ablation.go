package bench

import (
	"fmt"
	"strings"
	"time"

	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

// E12CostModel is the cost-model-source ablation from DESIGN.md: path
// selection under the static cost table versus costs measured on the running
// machine (softnic calibration). The paper's Fig. 6 choice — "it is assumed
// that the software rss is cheaper than recomputing the csum" — is exactly
// the kind of assumption this ablation probes: on machines where Toeplitz
// hashing is slower than header checksumming, the measured model flips the
// selected branch.
func E12CostModel() (*Table, error) {
	samples := workload.MustGenerate(workload.Spec{
		Packets: 64, Flows: 16, PayloadBytes: 64, TCPFraction: 0.7, Seed: 11,
	}).Packets
	calibrated := softnic.CalibratedCosts(semantics.Default, samples, 32)
	static := semantics.RegistryCosts(semantics.Default)

	t := &Table{
		ID:    "E12",
		Title: "Ablation: static vs calibrated cost model w(s)",
		Note: "Selected completion per intent under both models. 'flip' marks\n" +
			"decisions that depend on the cost-model source — including the paper's\n" +
			"own Fig. 6 assumption that software RSS is cheaper than software csum.",
		Header: []string{"nic", "intent", "static-sel", "calibrated-sel", "w_s(rss)", "w_c(rss)", "w_s(csum)", "w_c(csum)", "flip"},
	}
	cases := []struct {
		nic  string
		sems []semantics.Name
	}{
		{"e1000e", []semantics.Name{semantics.RSS, semantics.IPChecksum}},
		{"mlx5", []semantics.Name{semantics.RSS, semantics.VLAN, semantics.PktLen}},
		{"mlx5", []semantics.Name{semantics.RSS, semantics.IPChecksum, semantics.PktLen}},
		{"qdma", []semantics.Name{semantics.KVKey, semantics.RSS}},
	}
	for _, c := range cases {
		m := nic.MustLoad(c.nic)
		sel := func(cm semantics.CostModel) (string, error) {
			res, err := m.Compile(mustIntent(c.sems...), core.CompileOptions{
				Select: core.SelectOptions{Costs: cm},
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%dB/path%d sw=%s", res.CompletionBytes(),
				res.Selected.Path.ID, intentNames(res.Missing())), nil
		}
		s, err := sel(static)
		if err != nil {
			return nil, err
		}
		cc, err := sel(calibrated)
		if err != nil {
			return nil, err
		}
		flip := ""
		if s != cc {
			flip = "FLIP"
		}
		t.AddRow(c.nic, intentNames(c.sems), s, cc,
			static(semantics.RSS), calibrated(semantics.RSS),
			static(semantics.IPChecksum), calibrated(semantics.IPChecksum),
			flip)
	}
	return t, nil
}

// wideDeparser builds a synthetic deparser with n correlated branch pairs on
// shared context bits: with pruning, path count stays 2^n over n bits; the
// correlated second branches add nothing. Without pruning it doubles per
// branch pair to 4^n.
func wideDeparser(n int) (core.DeparserSpec, error) {
	var sb strings.Builder
	sb.WriteString("struct ctx_t {")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, " bit<1> f%d;", i)
	}
	sb.WriteString(" }\nheader d_t { bit<8> x; }\nstruct meta_t { @semantic(\"rss\") bit<8> a; @semantic(\"vlan\") bit<8> b; }\n")
	sb.WriteString("@bind(\"CTX\",\"ctx_t\") @bind(\"DESC\",\"d_t\") @bind(\"META\",\"meta_t\")\n")
	sb.WriteString("control CmptDeparser<CTX,DESC,META>(cmpt_out co, in CTX ctx, in DESC d, in META m) { apply {\n")
	for i := 0; i < n; i++ {
		// Two correlated branches on the same bit.
		fmt.Fprintf(&sb, "if (ctx.f%d == 1) { co.emit(m.a); } else { co.emit(m.b); }\n", i)
		fmt.Fprintf(&sb, "if (ctx.f%d == 1) { co.emit(m.b); } else { co.emit(m.a); }\n", i)
	}
	sb.WriteString("} }\n")
	prog, err := parser.Parse("wide.p4", sb.String())
	if err != nil {
		return core.DeparserSpec{}, err
	}
	info, err := sema.Check(prog)
	if err != nil {
		return core.DeparserSpec{}, err
	}
	return core.DeparserSpec{Info: info}, nil
}

// E13Pruning is the symbolic-pruning ablation: feasible-path counts and
// enumeration latency with and without consistency pruning, on the bundled
// NICs (where branches are independent, so pruning changes nothing) and on
// synthetic deparsers with correlated branches (where the unpruned set
// explodes).
func E13Pruning() (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Ablation: symbolic path pruning",
		Note: "Correlated context branches make the unpruned path set explode\n" +
			"(4^n vs the 2^n feasible ones); bundled NICs have independent\n" +
			"branches, so pruning is free there.",
		Header: []string{"deparser", "paths-pruned", "paths-unpruned", "enum-us-pruned", "enum-us-unpruned"},
	}
	run := func(name string, spec core.DeparserSpec, maxPaths int) error {
		g, err := core.BuildDeparserGraph(spec)
		if err != nil {
			return err
		}
		count := func(disable bool) (int, float64, error) {
			const rounds = 20
			var n int
			start := time.Now()
			for i := 0; i < rounds; i++ {
				paths, err := core.EnumeratePaths(g, core.EnumerateOptions{
					DisablePruning: disable, MaxPaths: maxPaths,
				})
				if err != nil {
					return 0, 0, err
				}
				n = len(paths)
			}
			return n, float64(time.Since(start).Microseconds()) / rounds, nil
		}
		p, pt, err := count(false)
		if err != nil {
			return err
		}
		u, ut, err := count(true)
		if err != nil {
			return err
		}
		t.AddRow(name, p, u, pt, ut)
		return nil
	}
	for _, m := range nic.All() {
		if err := run(m.Name, m.Deparser, 0); err != nil {
			return nil, err
		}
	}
	for _, n := range []int{2, 4, 6} {
		spec, err := wideDeparser(n)
		if err != nil {
			return nil, err
		}
		if err := run(fmt.Sprintf("synthetic-%d-correlated", n), spec, 1<<16); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// E14OffloadPlan exercises the §5 placement question — "whether a feature
// should be offloaded to the NIC even if technically possible, or if
// sometimes using a software counterpart is not more desirable" — by
// planning each intent's missing features onto each NIC's pipeline
// resources.
func E14OffloadPlan() (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Offload placement: descriptor vs pushed-pipeline vs software (§5)",
		Note: "Missing features with a reference P4 implementation are pushed to the\n" +
			"pipeline while stages last (payload-inspecting features need externs);\n" +
			"the rest stay as host shims. Fixed-function NICs cannot push anything.",
		Header: []string{"nic", "intent", "descriptor", "pipeline", "software", "stages", "residual-cost"},
	}
	cases := []struct {
		nic  string
		sems []semantics.Name
	}{
		{"e1000", []semantics.Name{semantics.RSS, semantics.IPChecksum, semantics.FlowID}},
		{"e1000e", []semantics.Name{semantics.RSS, semantics.IPChecksum, semantics.FlowID}},
		{"mlx5", []semantics.Name{semantics.RSS, semantics.FlowID, semantics.PktLen}},
		{"mlx5", []semantics.Name{semantics.RSS, semantics.KVKey, semantics.PktLen}},
		{"qdma", []semantics.Name{semantics.RSS, semantics.KVKey, semantics.InnerCsum}},
	}
	for _, c := range cases {
		m := nic.MustLoad(c.nic)
		res, err := m.Compile(mustIntent(c.sems...), core.CompileOptions{})
		if err != nil {
			t.AddRow(c.nic, intentNames(c.sems), "-", "-", "-", "-", "unsat")
			continue
		}
		plan, err := core.PlanOffloads(res, m.Pipeline, nil)
		if err != nil {
			return nil, err
		}
		var desc []string
		for _, e := range plan.Entries {
			if e.Placement == core.PlaceDescriptor {
				desc = append(desc, string(e.Semantic))
			}
		}
		t.AddRow(c.nic, intentNames(c.sems),
			strings.Join(desc, "+"),
			intentNames(plan.Pushed()),
			intentNames(plan.Software()),
			plan.StagesUsed,
			plan.HostCost,
		)
	}
	return t, nil
}
