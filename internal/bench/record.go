package bench

import (
	"time"

	"opendesc/internal/perf"
)

// handicap multiplies every wall-clock metric recorded into perf artifacts.
// It exists to demonstrate the CI perf ratchet end to end: `descbench
// baseline -handicap 2` produces artifacts that a compare against the real
// baselines must reject. It never affects the human-readable tables.
var handicap = 1.0

// SetHandicap sets the timing handicap factor (ignored unless > 0).
func SetHandicap(f float64) {
	if f > 0 {
		handicap = f
	}
}

// newPerfRecord starts a benchmark artifact under the repo's standard
// methodology: untimed warm-up pass, rounds repeated until minDur of timed
// work, minimum-of-rounds estimator.
func newPerfRecord(name, experiment, title string, packets int, minDur time.Duration) *perf.Record {
	return perf.New(name, experiment, title, perf.Methodology{
		Estimator:     "min-of-rounds",
		Warmup:        true,
		MinDurationNs: minDur.Nanoseconds(),
		Packets:       packets,
	})
}

// addTiming records one wall-clock metric (ns), applying the handicap.
func addTiming(r *perf.Record, name, unit string, ns float64) {
	r.AddValue(name, unit, ns*handicap, perf.Lower)
}

// addTimingDist records a wall-clock metric with its per-round latency
// distribution exported from an obs histogram snapshot.
func addTimingDist(r *perf.Record, name, unit string, ns float64, d *perf.Dist) {
	r.Add(perf.Metric{Name: name, Unit: unit, Value: ns * handicap, Better: perf.Lower, Dist: d})
}

// BaselineExp is one artifact-emitting experiment run under the pinned
// baseline parameters, so `descbench baseline` and the CI perf-gate measure
// exactly what the committed BENCH_*.json files measured. Count metrics are
// deterministic only under these parameters (Compare flags a packet-count
// mismatch).
type BaselineExp struct {
	ID   string // experiment id, e.g. "e4"
	Name string // artifact name, e.g. "e4_datapath"
	Run  func() (*Table, error)
}

// Baseline parameters: small enough for a CI job, large enough for stable
// minima (the min-of-rounds estimator converges fast).
const (
	baselineMinDur     = 50 * time.Millisecond
	baselinePackets    = 512
	baselineE15Packets = 2048
	baselineE16Packets = 20000
	baselineE17Packets = 4096
	baselineE19Packets = 4096
	baselineE20Packets = 2048
	baselineE21Packets = 4096
	baselineE22Mutants = 32 // mutants screened per bundled NIC (×6 NICs)
)

// BaselineExperiments returns the nine artifact-emitting experiments at
// their pinned baseline parameters: the E4 datapath comparison, the E11
// interface-model microbench, E15 live renegotiation, the E16 fault
// matrix, the E17 flight-recorder overhead run, the E19 multi-tenant
// serving plane, the E20 fleet control plane, the E21 fleet
// telemetry/evidence-bake run, and the E22 differential-verification
// harness run.
func BaselineExperiments() []BaselineExp {
	return []BaselineExp{
		{"e4", "e4_datapath", func() (*Table, error) { return E4Datapath(baselinePackets, baselineMinDur) }},
		{"e11", "e11_iface", func() (*Table, error) { return E11Interfaces(baselinePackets, baselineMinDur) }},
		{"e15", "e15_evolve", func() (*Table, error) { return E15Evolve(baselineE15Packets) }},
		{"e16", "e16_faults", func() (*Table, error) { return E16Faults(baselineE16Packets) }},
		{"e17", "e17_flight", func() (*Table, error) { return E17Flight(baselineE17Packets, "") }},
		{"e19", "e19_tenants", func() (*Table, error) { return E19Tenants(baselineE19Packets) }},
		{"e20", "e20_fleet", func() (*Table, error) { return E20Fleet(baselineE20Packets) }},
		{"e21", "e21_teleme", func() (*Table, error) { return E21Telemetry(baselineE21Packets) }},
		{"e22", "e22_diff", func() (*Table, error) { return E22Diffverify(baselineE22Mutants) }},
	}
}
