package bench

import (
	"fmt"
	"time"

	"opendesc/internal/chaos"
	"opendesc/internal/fleet"
	"opendesc/internal/nic"
	"opendesc/internal/perf"
	"opendesc/internal/vclock"
	"opendesc/internal/workload"
)

// e20Fleet is one full fleet control-plane scenario (DESIGN.md §S25):
// inventory a heterogeneous fleet (hosts round-robin over the six bundled
// NICs, plus one rogue whose describe handshake lies about its digest),
// provision through the content-addressed compile cache, promote a benign
// upgrade, then push tampered descriptions whose canary trips the
// golden-metadata oracle and verify the automatic rollback left every
// non-canary host untouched with exactly-once delivery fleet-wide.
type e20Run struct {
	hosts       int
	quarantined int
	digests     int
	hitRate     float64
	compiles    uint64

	promoteElapsed  time.Duration
	rollbackElapsed time.Duration

	accepted, delivered uint64
	garbage             uint64
	canaries            int
	leaseReverts        uint64
}

func e20Scenario(hosts, packets int) (*e20Run, error) {
	clk := vclock.NewVirtual(1)
	models := nic.All()
	ctrl := fleet.NewController(fleet.Options{
		Clock:      clk,
		Intent:     []string{"rss", "pkt_len"},
		Seed:       1,
		BakeTarget: 32,
	})
	var members []*fleet.Host
	for i := 0; i < hosts; i++ {
		m := models[i%len(models)]
		h, err := fleet.NewHost(fmt.Sprintf("%s-%02d", m.Name, i), m, fleet.HostOptions{Clock: clk})
		if err != nil {
			return nil, err
		}
		members = append(members, h)
		ctrl.AddHost(h, fleet.NewLink(clk, 1000))
	}
	rogue, err := fleet.NewHost("rogue-00", models[0], fleet.HostOptions{Clock: clk})
	if err != nil {
		return nil, err
	}
	rogue.SetDescribeMutator(func(d *fleet.Description) { d.Digest = "bad" })
	ctrl.AddHost(rogue, fleet.NewLink(clk, 1000))

	rep := ctrl.Inventory()
	if rep.Healthy != hosts || len(rep.Quarantined) != 1 {
		return nil, fmt.Errorf("inventory: %d/%d healthy, %d quarantined (want %d/1)",
			rep.Healthy, rep.Total, len(rep.Quarantined), hosts)
	}
	if err := ctrl.Provision(); err != nil {
		return nil, err
	}
	// The hit-rate acceptance is about provisioning: N hosts, ≤ 6 distinct
	// descriptions, one compile each — everything else a cache hit. Later
	// rollouts add one compulsory miss per (new digest, intent) pair.
	pcs := ctrl.CacheStats()
	run := &e20Run{
		hosts:       hosts,
		quarantined: len(rep.Quarantined),
		digests:     len(rep.Digests),
		hitRate:     pcs.HitRate(),
	}

	tr, err := workload.Generate(workload.DefaultSpec())
	if err != nil {
		return nil, err
	}
	next := 0
	pump := func() {
		for i := 0; i < 4; i++ {
			for _, h := range members {
				h.Rx(tr.Packets[next%len(tr.Packets)])
				next++
			}
			for _, h := range members {
				h.Poll()
			}
		}
	}

	// Benign upgrade: widen the intent; must canary, bake, and promote on
	// every healthy host with zero garbage anywhere.
	start := time.Now()
	r, err := ctrl.StartRollout(fleet.Upgrade{
		Name: "widen", Semantics: []string{"rss", "pkt_len", "flow_id"},
	})
	if err != nil {
		return nil, err
	}
	if err := r.Run(pump); err != nil {
		return nil, fmt.Errorf("benign rollout failed: %w", err)
	}
	run.promoteElapsed = time.Since(start)
	goodGen := r.Gen()
	for _, h := range members {
		if h.Generation() != goodGen {
			return nil, fmt.Errorf("host %s on gen %d after promote, want %d", h.Name, h.Generation(), goodGen)
		}
	}

	// Tampered upgrade: ip_checksum/pkt_len annotations swapped on every
	// model — structurally valid, only the canary bake catches it.
	bad := fleet.Upgrade{Name: "tampered", Descriptions: map[string]string{}}
	for _, m := range models {
		src, err := fleet.SwapSemantics(m.Source, "ip_checksum", "pkt_len")
		if err != nil {
			return nil, err
		}
		bad.Descriptions[m.Name] = src
	}
	start = time.Now()
	r2, err := ctrl.StartRollout(bad)
	if err != nil {
		return nil, err
	}
	if err := r2.Run(pump); err == nil {
		return nil, fmt.Errorf("tampered rollout promoted — canary oracle never fired")
	}
	run.rollbackElapsed = time.Since(start)
	pump()

	badGen := r2.Gen()
	for _, h := range members {
		hl := h.Health()
		run.accepted += hl.Accepted
		run.delivered += hl.Delivered
		run.garbage += hl.Garbage
		run.leaseReverts += hl.LeaseReverts
		if h.Generation() != goodGen {
			return nil, fmt.Errorf("host %s on gen %d after rollback, want last-known-good %d",
				h.Name, h.Generation(), goodGen)
		}
		if hl.Garbage > 0 {
			run.canaries++
		}
		for gen := range h.GarbageByGen() {
			if gen != badGen {
				return nil, fmt.Errorf("host %s: garbage on gen %d, only the tampered gen %d may read garbage",
					h.Name, gen, badGen)
			}
		}
	}
	if run.accepted != run.delivered {
		return nil, fmt.Errorf("conservation: accepted %d != delivered %d", run.accepted, run.delivered)
	}
	if run.garbage == 0 {
		return nil, fmt.Errorf("tampered rollout produced no canary garbage — detection was vacuous")
	}
	if run.canaries > run.digests {
		return nil, fmt.Errorf("%d hosts saw garbage, want at most the %d canaries", run.canaries, run.digests)
	}

	cs := ctrl.CacheStats()
	run.compiles = cs.Misses
	if cs.Gets != cs.Hits+cs.Misses+cs.Coalesced {
		return nil, fmt.Errorf("cache counters do not reconcile: %+v", cs)
	}
	_ = packets
	return run, nil
}

// E20Fleet is the fleet control-plane experiment (DESIGN.md §S25): a
// 64-host mixed-NIC inventory with a quarantined rogue, compile-cache hit
// rate across provisioning and two rollouts, a benign promote, a tampered
// push auto-rolled-back by the canary oracle with zero disruption off the
// canaries, and the seeded fleet chaos sweep. Wall-clock numbers are
// context (Info); counts and rates are deterministic and gate the ratchet.
func E20Fleet(packets int) (*Table, error) {
	if packets <= 0 {
		packets = 2048
	}
	tab := &Table{
		ID: "E20",
		Title: fmt.Sprintf(
			"fleet control plane: describe inventory, canary rollout + auto-rollback, LKG degradation (%d pumped packets/host-phase)", packets),
		Header: []string{"fleet", "quarantined", "descriptions", "cache hits", "promote", "rollback", "garbage"},
		Record: newPerfRecord("e20_fleet", "E20",
			"fleet control plane: inventory, compile-cache reuse, canary rollback blast radius", packets, 0),
	}
	rec := tab.Record

	var hitRate64 float64
	for _, hosts := range []int{16, 64} {
		run, err := e20Scenario(hosts, packets)
		if err != nil {
			return nil, fmt.Errorf("e20 hosts=%d: %w", hosts, err)
		}
		tab.AddRow(
			fmt.Sprintf("%d hosts", run.hosts),
			run.quarantined,
			run.digests,
			fmt.Sprintf("%.1f%% (%d compiles)", 100*run.hitRate, run.compiles),
			fmt.Sprintf("%.1f ms", float64(run.promoteElapsed.Microseconds())/1e3),
			fmt.Sprintf("%.1f ms", float64(run.rollbackElapsed.Microseconds())/1e3),
			fmt.Sprintf("%d reads on %d/%d canaries", run.garbage, run.canaries, run.digests))

		pfx := fmt.Sprintf("h%02d/", hosts)
		rec.AddValue(pfx+"cache_hit_rate", "ratio", run.hitRate, perf.Higher)
		rec.AddValue(pfx+"compiles", "count", float64(run.compiles), perf.Lower)
		rec.AddValue(pfx+"delivered", "count", float64(run.delivered), perf.Higher)
		rec.AddValue(pfx+"garbage_hosts", "count", float64(run.canaries), perf.Lower)
		// Promote/rollback wall-clock is dominated by the six compiles and
		// varies run to run — context only, never gated.
		rec.AddValue(pfx+"promote_ns", "ns", float64(run.promoteElapsed.Nanoseconds()), perf.Info)
		rec.AddValue(pfx+"rollback_ns", "ns", float64(run.rollbackElapsed.Nanoseconds()), perf.Info)
		if hosts == 64 {
			hitRate64 = run.hitRate
		}
	}
	// Acceptance floor from the issue: ≥ 90% compile-cache hit rate on a
	// 64-host inventory with ≤ 6 distinct descriptions.
	if hitRate64 < 0.90 {
		return nil, fmt.Errorf("e20: cache hit rate %.3f on 64 hosts, want >= 0.90", hitRate64)
	}

	// Fleet chaos sweep (S25 × S23): seeded schedules interleaving traffic,
	// partitions/heals, and alternating benign/tampered rollouts; every
	// oracle must hold and tampered pushes must never promote.
	var rollouts, promotions, rollbacks, reverts, violations, cases uint64
	for seed := uint64(1); seed <= 12; seed++ {
		res := chaos.RunFleet(chaos.FleetConfig{Hosts: 8, Steps: 512}, seed)
		cases++
		rollouts += res.Rollouts
		promotions += res.Promotions
		rollbacks += res.Rollbacks
		reverts += res.LeaseReverts
		if res.Violation != nil {
			violations++
			return nil, fmt.Errorf("e20 chaos seed=%d: %v", seed, res.Violation)
		}
	}
	tab.AddRow("chaos", "-", "-", "-", "-", "-",
		fmt.Sprintf("%d rollouts / %d cases / %d violations", rollouts, cases, violations))
	rec.AddValue("chaos/cases", "count", float64(cases), perf.Higher)
	rec.AddValue("chaos/rollouts", "count", float64(rollouts), perf.Info)
	rec.AddValue("chaos/promotions", "count", float64(promotions), perf.Info)
	rec.AddValue("chaos/rollbacks", "count", float64(rollbacks), perf.Info)
	rec.AddValue("chaos/lease_reverts", "count", float64(reverts), perf.Info)
	rec.AddValue("chaos/violations", "count", float64(violations), perf.Lower)

	tab.Note = fmt.Sprintf(
		"one compile per (description digest, intent) through the content-addressed cache; singleflight coalesces\n"+
			"tampered push = ip_checksum/pkt_len @semantic swap: passes structural validation, caught only by canary bake\n"+
			"rollback blast radius = canaries only (one per distinct description); all other hosts never left last-known-good\n"+
			"64-host cache hit rate: %.1f%% (floor 90%%); chaos sweep: %d cases, %d rollouts, %d lease reverts, 0 violations",
		100*hitRate64, cases, rollouts, reverts)
	return tab, nil
}
