package bench

import (
	"fmt"
	"runtime"
	"time"

	"opendesc"
	"opendesc/internal/faults"
	"opendesc/internal/perf"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

// e16Run is the outcome of one fault-injection drive: delivery accounting,
// golden-value verification and the driver/injector counters.
type e16Run struct {
	accepted  int
	delivered int
	garbage   int // deliveries whose metadata disagreed with the SoftNIC golden values
	nsPerPkt  float64
	hard      opendesc.HardeningStats
	inj       faults.Stats
}

// caught is the number of completion records the hardened driver discarded
// (quarantine, stale, resync or spurious) — the detection side of the matrix.
func (r *e16Run) caught() uint64 {
	return r.hard.Quarantined + r.hard.StaleDrops + r.hard.ResyncDrops + r.hard.SpuriousCompletions
}

// e16Drive pushes n workload packets through a driver (hardened when harden
// is non-nil, the plain pre-hardening facade otherwise) under an optional
// fault plan, verifying exactly-once in-order delivery and golden metadata on
// every packet.
func e16Drive(n int, plan *faults.Plan, harden *opendesc.HardenOptions) (*e16Run, error) {
	intent, err := opendesc.NewIntent("e16", "rss", "vlan", "pkt_len")
	if err != nil {
		return nil, err
	}
	drv, err := opendesc.OpenWith("e1000e", intent, opendesc.OpenOptions{Harden: harden})
	if err != nil {
		return nil, err
	}
	var inj *faults.Injector
	if plan != nil {
		inj = faults.New(*plan)
		drv.InjectFaults(inj)
	}

	spec := workload.DefaultSpec()
	tr, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	golden := softnic.Funcs()

	run := &e16Run{}
	var orderErr error
	queue := make([][]byte, 0, 512) // accepted but not yet delivered, FIFO
	h := func(p []byte, meta opendesc.Meta) {
		run.delivered++
		if len(queue) == 0 || &p[0] != &queue[0][0] {
			if orderErr == nil {
				orderErr = fmt.Errorf("e16: delivery %d out of order or duplicated", run.delivered)
			}
			return
		}
		queue = queue[1:]
		rss, okR := meta.Get("rss")
		vlan, okV := meta.Get("vlan")
		plen, okL := meta.Get("pkt_len")
		if !okR || !okV || !okL ||
			rss != golden["rss"](p) ||
			vlan != golden["vlan"](p) ||
			plen != uint64(len(p)) {
			run.garbage++
		}
	}

	start := time.Now()
	for i := 0; i < n; i++ {
		p := tr.Packets[i%len(tr.Packets)]
		tries := 0
		for !drv.Rx(p) {
			// Backpressure (plain driver ring-full, or hardened pre-degrade
			// refusals with a full ring): drain and retry.
			drv.Poll(h)
			if tries++; tries > 1<<16 {
				return nil, fmt.Errorf("e16: rx stalled at packet %d", i)
			}
		}
		run.accepted++
		queue = append(queue, p)
		if i%8 == 7 {
			drv.Poll(h)
		}
	}
	idle := 0
	for i := 0; i < 1<<20 && idle < 4; i++ {
		if drv.Poll(h) == 0 {
			idle++
		} else {
			idle = 0
		}
	}
	run.nsPerPkt = float64(time.Since(start).Nanoseconds()) / float64(n)

	if orderErr != nil {
		return nil, orderErr
	}
	if run.delivered != run.accepted {
		return nil, fmt.Errorf("e16: delivered %d of %d accepted packets", run.delivered, run.accepted)
	}
	if harden != nil {
		run.hard = drv.Hardening()
		if run.hard.Degraded {
			return nil, fmt.Errorf("e16: driver still degraded after the drain")
		}
	}
	if inj != nil {
		run.inj = inj.Stats()
	}
	return run, nil
}

// e16Time measures the bare datapath cost (Rx, Poll, three metadata reads —
// no golden cross-checking) of n packets through a driver variant,
// min-of-5 rounds (fresh driver and a clean heap per round) against
// scheduler and GC noise.
func e16Time(n int, harden *opendesc.HardenOptions) (float64, error) {
	tr, err := workload.Generate(workload.DefaultSpec())
	if err != nil {
		return 0, err
	}
	best := 0.0
	for round := 0; round < 5; round++ {
		runtime.GC()
		intent, err := opendesc.NewIntent("e16", "rss", "vlan", "pkt_len")
		if err != nil {
			return 0, err
		}
		drv, err := opendesc.OpenWith("e1000e", intent, opendesc.OpenOptions{Harden: harden})
		if err != nil {
			return 0, err
		}
		var sink uint64
		h := func(p []byte, meta opendesc.Meta) {
			v1, _ := meta.Get("rss")
			v2, _ := meta.Get("vlan")
			v3, _ := meta.Get("pkt_len")
			sink += v1 + v2 + v3
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			p := tr.Packets[i%len(tr.Packets)]
			for !drv.Rx(p) {
				drv.Poll(h)
			}
			if i%8 == 7 {
				drv.Poll(h)
			}
		}
		for drv.Poll(h) > 0 {
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(n)
		_ = sink
		if round == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// E16Faults is the fault matrix (DESIGN.md §21): one hardened-driver run per
// fault class at a 1e-3 rate reporting injected vs detected vs survived, the
// combined acceptance run (corrupt=1e-3 plus two forced device hangs over the
// full packet budget, which must deliver every packet exactly once with zero
// garbage metadata and recover to hardware mode twice), and the goodput /
// validation-overhead comparison against the plain driver.
func E16Faults(packets int) (*Table, error) {
	if packets < 20000 {
		packets = 20000
	}
	perClass := packets / 5
	deep := &opendesc.HardenOptions{Deep: true}

	tab := &Table{
		ID:     "E16",
		Title:  "fault matrix: hardened driver under injection (e1000e, rss+vlan+pkt_len)",
		Header: []string{"fault", "pkts", "injected", "detected", "garbage", "delivered", "restores"},
		Record: newPerfRecord("e16_faults", "E16",
			"Fault matrix: hardened driver under injection (e1000e)", packets, 0),
	}
	rec := tab.Record
	// Injection and detection counts are seeded and exactly reproducible
	// under the pinned packet budget; only the overhead rows are timed.
	rec.Method.Estimator = "seeded-deterministic-drive"
	rec.Method.Warmup = false

	classes := []struct {
		name  string
		class faults.Class
		plan  faults.Plan
	}{
		{"corrupt", faults.Corrupt, faults.Plan{Seed: 161, CorruptP: 1e-3, BurstBits: 4}},
		{"truncate", faults.Truncate, faults.Plan{Seed: 162, TruncateP: 1e-3}},
		{"replay", faults.Replay, faults.Plan{Seed: 163, ReplayP: 1e-3}},
		{"duplicate", faults.Duplicate, faults.Plan{Seed: 164, DuplicateP: 1e-3}},
		{"drop", faults.Drop, faults.Plan{Seed: 165, DropP: 1e-3}},
		{"hang", faults.Hang, faults.Plan{Seed: 166, HangCount: 2, HangMTBF: perClass / 3, HangBurst: 64}},
	}
	for _, c := range classes {
		run, err := e16Drive(perClass, &c.plan, deep)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		injected := run.inj.Injected[c.class]
		detected := run.caught()
		if c.class == faults.Hang {
			detected = run.hard.DeviceFaults
		}
		// The validator guarantee: every effective record mutation is caught.
		if (c.class == faults.Corrupt || c.class == faults.Truncate) && detected < injected {
			return nil, fmt.Errorf("%s: detected %d of %d injected mutations", c.name, detected, injected)
		}
		if run.garbage != 0 {
			return nil, fmt.Errorf("%s: %d garbage deliveries, want 0", c.name, run.garbage)
		}
		if c.class == faults.Hang && run.hard.HardwareRestores != uint64(c.plan.HangCount) {
			return nil, fmt.Errorf("hang: %d hardware restores, want %d", run.hard.HardwareRestores, c.plan.HangCount)
		}
		tab.AddRow(c.name, perClass, injected, detected, run.garbage,
			fmt.Sprintf("%d/%d", run.delivered, run.accepted), run.hard.HardwareRestores)
		rec.AddValue("faults/"+c.name+"/injected", "count", float64(injected), perf.Info)
		rec.AddValue("faults/"+c.name+"/detected", "count", float64(detected), perf.Higher)
		rec.AddValue("faults/"+c.name+"/garbage", "count", float64(run.garbage), perf.Lower)
	}

	// Combined acceptance run: corruption at 1e-3 plus two forced hangs over
	// the full budget.
	combined := faults.Plan{Seed: 616, CorruptP: 1e-3, BurstBits: 4,
		HangCount: 2, HangMTBF: packets / 3, HangBurst: 64}
	comb, err := e16Drive(packets, &combined, deep)
	if err != nil {
		return nil, fmt.Errorf("combined: %w", err)
	}
	if comb.garbage != 0 {
		return nil, fmt.Errorf("combined: %d garbage deliveries, want 0", comb.garbage)
	}
	if comb.caught() < comb.inj.Injected[faults.Corrupt] {
		return nil, fmt.Errorf("combined: caught %d of %d corruptions", comb.caught(), comb.inj.Injected[faults.Corrupt])
	}
	if comb.hard.HardwareRestores != 2 {
		return nil, fmt.Errorf("combined: %d hardware restores, want 2", comb.hard.HardwareRestores)
	}
	tab.AddRow("corrupt+2 hangs", packets, comb.inj.Injected[faults.Corrupt]+comb.inj.Injected[faults.Hang],
		comb.caught()+comb.hard.DeviceFaults, comb.garbage,
		fmt.Sprintf("%d/%d", comb.delivered, comb.accepted), comb.hard.HardwareRestores)

	// Exactly-once sanity on a clean hardened run (recovery must stay idle).
	clean, err := e16Drive(packets, nil, deep)
	if err != nil {
		return nil, fmt.Errorf("clean: %w", err)
	}
	if clean.caught() != 0 || clean.hard.SoftDelivered != 0 {
		return nil, fmt.Errorf("clean hardened run tripped recovery: %+v", clean.hard)
	}

	// The goodput ratio divides two measured drives; take the min-of-3 of
	// each side (the drives are seeded, so counters repeat exactly — only
	// the wall clock varies) to keep the ratio inside the CI gate's noise
	// budget.
	for round := 0; round < 2; round++ {
		r, err := e16Drive(packets, &combined, deep)
		if err != nil {
			return nil, fmt.Errorf("combined round %d: %w", round+2, err)
		}
		if r.nsPerPkt < comb.nsPerPkt {
			comb.nsPerPkt = r.nsPerPkt
		}
		c, err := e16Drive(packets, nil, deep)
		if err != nil {
			return nil, fmt.Errorf("clean round %d: %w", round+2, err)
		}
		if c.nsPerPkt < clean.nsPerPkt {
			clean.nsPerPkt = c.nsPerPkt
		}
	}

	// Overhead: bare datapath cost of the plain pre-hardening driver vs the
	// hardened driver at its default (structural) and deep validation tiers,
	// injection disabled. Goodput under corruption comes from the combined
	// run relative to the identically-instrumented clean run.
	plainNs, err := e16Time(packets, nil)
	if err != nil {
		return nil, err
	}
	structNs, err := e16Time(packets, &opendesc.HardenOptions{})
	if err != nil {
		return nil, err
	}
	deepNs, err := e16Time(packets, deep)
	if err != nil {
		return nil, err
	}
	tab.Note = fmt.Sprintf(
		"every run must deliver all packets exactly once, in order, with golden metadata (garbage=0)\n"+
			"overhead (no injection): plain %.0f ns/pkt, hardened structural %.0f (%+.1f%%), deep %.0f (%+.1f%%)\n"+
			"goodput under corrupt=1e-3 + 2 hangs: %.2fx of the clean hardened run",
		plainNs, structNs, (structNs-plainNs)/plainNs*100,
		deepNs, (deepNs-plainNs)/plainNs*100,
		comb.nsPerPkt/clean.nsPerPkt)

	rec.AddValue("combined/garbage", "count", float64(comb.garbage), perf.Lower)
	rec.AddValue("combined/restores", "count", float64(comb.hard.HardwareRestores), perf.Info)
	addTiming(rec, "overhead/plain", "ns/pkt", plainNs)
	addTiming(rec, "overhead/structural", "ns/pkt", structNs)
	addTiming(rec, "overhead/deep", "ns/pkt", deepNs)
	// structural_pct hovers around zero (structural validation is nearly
	// free), so a fractional gate on it is pure noise — the plain/structural
	// /deep ns/pkt rows above carry the actual gate.
	rec.AddValue("overhead/structural_pct", "ratio", (structNs-plainNs)/plainNs, perf.Info)
	rec.AddValue("goodput/corrupt_vs_clean", "ratio", clean.nsPerPkt/comb.nsPerPkt, perf.Higher)
	return tab, nil
}
