package bench

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"opendesc/internal/chaos"
	"opendesc/internal/fleet"
	"opendesc/internal/nic"
	"opendesc/internal/perf"
	"opendesc/internal/vclock"
	"opendesc/internal/workload"
)

// e21Host builds a single-host fleet on the named model, inventoried and
// provisioned, ready to pump traffic. e1000e is the workhorse: it advertises
// both intent semantics (rss, pkt_len) in hardware, so the baseline layout is
// all-hardware at 70ns/deliver and a stripped description degrades it to two
// SoftNIC shim reads at 920ns — the exact regression E21 exists to catch.
func e21Host(opts fleet.Options) (*fleet.Controller, *fleet.Host, error) {
	var model *nic.Model
	for _, m := range nic.All() {
		if m.Name == "e1000e" {
			model = m
			break
		}
	}
	if model == nil {
		return nil, nil, fmt.Errorf("e21: no e1000e model bundled")
	}
	clk := vclock.NewVirtual(0)
	opts.Clock = clk
	if opts.LeaseNs == 0 {
		opts.LeaseNs = 1 << 40
	}
	ctrl := fleet.NewController(opts)
	h, err := fleet.NewHost("e1000e-a", model, fleet.HostOptions{Clock: clk})
	if err != nil {
		return nil, nil, err
	}
	ctrl.AddHost(h, fleet.NewLink(clk, 1000))
	if rep := ctrl.Inventory(); rep.Healthy != 1 {
		return nil, nil, fmt.Errorf("e21 inventory: %d healthy, want 1", rep.Healthy)
	}
	if err := ctrl.Provision(); err != nil {
		return nil, nil, err
	}
	return ctrl, h, nil
}

// e21Tax measures the wall-clock cost of n packets through one fleet host's
// full datapath (Rx, SoftNIC golden check, flight record, histogram observe,
// deliver) with the flight recorder enabled or runtime-disabled. The loops
// are byte-identical apart from SetEnabled, so the difference is exactly the
// always-on telemetry instrumentation tax.
func e21Tax(n int, record bool) (float64, error) {
	_, h, err := e21Host(fleet.Options{})
	if err != nil {
		return 0, err
	}
	h.FlightRecorder().SetEnabled(record)
	tr, err := workload.Generate(workload.DefaultSpec())
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		p := tr.Packets[i%len(tr.Packets)]
		tries := 0
		for !h.Rx(p) {
			h.Poll()
			if tries++; tries > 1<<16 {
				return 0, fmt.Errorf("e21: rx stalled at packet %d", i)
			}
		}
		if i%8 == 7 {
			h.Poll()
		}
	}
	for h.Poll() > 0 {
	}
	ns := float64(time.Since(start).Nanoseconds()) / float64(n)
	hl := h.Health()
	if hl.Accepted != hl.Delivered || hl.Garbage != 0 {
		return 0, fmt.Errorf("e21 tax run corrupted the datapath: %+v", hl)
	}
	return ns, nil
}

// e21Report measures the periodic control-plane cost of building, sealing,
// and encoding one telemetry report from a warm host, and its wire size.
func e21Report(packets int) (nsPerReport float64, wireBytes int, err error) {
	_, h, err := e21Host(fleet.Options{})
	if err != nil {
		return 0, 0, err
	}
	tr, err := workload.Generate(workload.DefaultSpec())
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < packets; i++ {
		p := tr.Packets[i%len(tr.Packets)]
		for !h.Rx(p) {
			h.Poll()
		}
		if i%8 == 7 {
			h.Poll()
		}
	}
	for h.Poll() > 0 {
	}
	const rounds = 64
	start := time.Now()
	var data []byte
	for i := 0; i < rounds; i++ {
		if data, err = h.Telemetry(); err != nil {
			return 0, 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / rounds, len(data), nil
}

// e21Evidence is the outcome of one efficacy arm: the same tampered push
// (description stops advertising rss and pkt_len, deliveries fall back to
// bit-correct SoftNIC shims) baked with or without flight evidence.
type e21Evidence struct {
	baselineP99 uint64 // p99 poll→deliver on the all-hardware layout (ns)
	trialP99    uint64 // p99 on the stripped layout (ns), from the promoted arm
	budgetNs    uint64 // baselineP99 × factor + slack the verdict enforces
	servesNs    uint64 // deliver cost the host ends the arm serving at
	rolledBack  bool
	reason      string
}

// e21Efficacy drives the tampered rollout through one bake mode.
func e21Efficacy(disabled bool) (*e21Evidence, error) {
	ctrl, h, err := e21Host(fleet.Options{BakeTarget: 16, DisableEvidenceBake: disabled})
	if err != nil {
		return nil, err
	}
	tr, err := workload.Generate(workload.DefaultSpec())
	if err != nil {
		return nil, err
	}
	next := 0
	pump := func(rounds int) {
		for i := 0; i < rounds; i++ {
			for !h.Rx(tr.Packets[next%len(tr.Packets)]) {
				h.Poll()
			}
			next++
			if i%4 == 3 {
				h.Poll()
			}
		}
		for h.Poll() > 0 {
		}
	}

	pump(128) // baseline window on the all-hardware layout
	if got := h.DeliverCostNs(); got != 70 {
		return nil, fmt.Errorf("e21 baseline deliver cost %dns, want 70 (all-hardware rss+pkt_len)", got)
	}
	ev := &e21Evidence{baselineP99: h.TelemetryReport().Deliver.Quantile(0.99)}
	// Budget arithmetic mirrors the controller defaults (factor 4, slack 256).
	ev.budgetNs = ev.baselineP99*4 + 256

	src, err := fleet.StripSemantics(h.Model.Source, "rss", "pkt_len")
	if err != nil {
		return nil, err
	}
	r, err := ctrl.StartRollout(fleet.Upgrade{
		Name: "fw-refresh", Descriptions: map[string]string{h.Model.Name: src},
	})
	if err != nil {
		return nil, fmt.Errorf("stripped description must pass static validation: %w", err)
	}
	err = r.Run(func() { pump(32) })
	ev.servesNs = h.DeliverCostNs()
	if err != nil {
		ev.rolledBack = true
		ev.reason = err.Error()
	} else {
		// Promoted: the serving layout is the stripped trial; its cumulative
		// histogram is the trial-window evidence the other arm rolled back on.
		ev.trialP99 = h.TelemetryReport().Deliver.Quantile(0.99)
	}
	hl := h.Health()
	if hl.Garbage != 0 || hl.OrderViolations != 0 {
		return nil, fmt.Errorf("e21: SoftNIC shim deliveries must be bit-correct, got %+v", hl)
	}
	if hl.Accepted != hl.Delivered {
		return nil, fmt.Errorf("e21 conservation: accepted %d != delivered %d", hl.Accepted, hl.Delivered)
	}
	return ev, nil
}

// E21Telemetry is the fleet observability experiment (DESIGN.md §S26):
// the always-on telemetry instrumentation tax on the host datapath (hard
// ceiling 5%), the periodic report build/seal/encode cost and wire size,
// evidence-bake efficacy on a latency-degrading-but-delivering tampered
// description (counter-only bakes promote it; the flight-evidence latency
// gate rolls it back citing p99 numbers and the slowest flight deliveries),
// and the 16-seed forged-telemetry chaos sweep run twice per seed to pin
// byte-identical traces. Wall-clock numbers are context (Info) except the
// tax ceiling; counts and p99s are deterministic and gate the ratchet.
func E21Telemetry(packets int) (*Table, error) {
	if packets < 4096 {
		packets = 4096
	}

	// Telemetry tax: one untimed warm-up pass (the first pass of a process
	// pays cold caches and frequency ramp — without it the tax estimate is
	// dominated by which mode happened to run first), then alternating
	// on/off passes keeping each mode's best time (the E17 estimator — the
	// minimum is the code's cost without the noise).
	if _, err := e21Tax(packets/4, true); err != nil {
		return nil, err
	}
	onNs, offNs := -1.0, -1.0
	for round := 0; round < 5; round++ {
		on, err := e21Tax(packets, true)
		if err != nil {
			return nil, err
		}
		off, err := e21Tax(packets, false)
		if err != nil {
			return nil, err
		}
		if onNs < 0 || on < onNs {
			onNs = on
		}
		if offNs < 0 || off < offNs {
			offNs = off
		}
	}
	tax := (onNs - offNs) / offNs
	if tax >= 0.05 {
		return nil, fmt.Errorf("e21: telemetry tax %.1f%% of the host datapath, ceiling is 5%%", 100*tax)
	}

	reportNs, reportBytes, err := e21Report(1024)
	if err != nil {
		return nil, err
	}

	// Efficacy: the same tampered push through both bake modes.
	caught, err := e21Efficacy(false)
	if err != nil {
		return nil, err
	}
	missed, err := e21Efficacy(true)
	if err != nil {
		return nil, err
	}
	if !caught.rolledBack {
		return nil, fmt.Errorf("e21: latency-degrading upgrade promoted under evidence bake")
	}
	for _, want := range []string{"latency evidence", "slowest deliveries", "deliver["} {
		if !strings.Contains(caught.reason, want) {
			return nil, fmt.Errorf("e21: rollback reason %q does not cite %q", caught.reason, want)
		}
	}
	if caught.servesNs != 70 {
		return nil, fmt.Errorf("e21: host serves at %dns after rollback, want the 70ns last-known-good", caught.servesNs)
	}
	if missed.rolledBack {
		return nil, fmt.Errorf("e21: counter-only bake unexpectedly rolled back: %s", missed.reason)
	}
	if missed.servesNs != 920 {
		return nil, fmt.Errorf("e21: promoted trial serves at %dns, want 920 (two soft reads)", missed.servesNs)
	}
	// The cost model is deterministic, so the evidence numbers are exact:
	// 70ns lands in the [64,127] log2 bucket, 920ns in [512,1023].
	if caught.baselineP99 != 127 || missed.trialP99 != 1023 {
		return nil, fmt.Errorf("e21: p99 evidence baseline=%d trial=%d, want 127/1023",
			caught.baselineP99, missed.trialP99)
	}
	if missed.trialP99 <= caught.budgetNs {
		return nil, fmt.Errorf("e21: trial p99 %dns within budget %dns — gate was vacuous",
			missed.trialP99, caught.budgetNs)
	}

	// Forged-telemetry chaos sweep: host 1 re-seals clean-slate reports with
	// valid digests; only the controller's counter cross-check can expose it.
	// Each seed runs twice — the traces must be byte-identical.
	var cases, reports, rejects uint64
	for seed := uint64(1); seed <= 16; seed++ {
		cfg := chaos.FleetConfig{Hosts: 8, Steps: 512, ForgedTelemetry: true}
		res := chaos.RunFleet(cfg, seed)
		if res.Violation != nil {
			return nil, fmt.Errorf("e21 chaos seed=%d: %v", seed, res.Violation)
		}
		again := chaos.RunFleet(cfg, seed)
		if !bytes.Equal(res.Trace, again.Trace) {
			return nil, fmt.Errorf("e21 chaos seed=%d: forged-telemetry traces differ between identical runs", seed)
		}
		cases++
		reports += res.TelemetryReports
		rejects += res.TelemetryRejects
	}
	if reports == 0 || rejects == 0 {
		return nil, fmt.Errorf("e21 chaos: reports=%d rejects=%d — forged reports never caught", reports, rejects)
	}

	tab := &Table{
		ID:     "E21",
		Title:  fmt.Sprintf("fleet telemetry: instrumentation tax, evidence bake, forged-report sweep (%d packets/pass)", packets),
		Header: []string{"measurement", "value"},
		Record: newPerfRecord("e21_teleme", "E21",
			"fleet telemetry: instrumentation tax, evidence-bake efficacy, forged-report chaos sweep", packets, 0),
	}
	rec := tab.Record
	addTiming(rec, "datapath/recorder_on", "ns/pkt", onNs)
	addTiming(rec, "datapath/recorder_off", "ns/pkt", offNs)
	rec.AddValue("telemetry/tax_pct", "ratio", tax, perf.Info)
	rec.AddValue("report/encode_ns", "ns", reportNs*handicap, perf.Info)
	rec.AddValue("report/bytes", "count", float64(reportBytes), perf.Info)
	rec.AddValue("evidence/baseline_p99_ns", "count", float64(caught.baselineP99), perf.Lower)
	rec.AddValue("evidence/trial_p99_ns", "count", float64(missed.trialP99), perf.Info)
	rec.AddValue("evidence/budget_ns", "count", float64(caught.budgetNs), perf.Info)
	rec.AddValue("evidence/rollbacks", "count", boolCount(caught.rolledBack), perf.Higher)
	rec.AddValue("evidence/counter_bake_promotions", "count", boolCount(!missed.rolledBack), perf.Info)
	rec.AddValue("chaos/cases", "count", float64(cases), perf.Higher)
	rec.AddValue("chaos/reports", "count", float64(reports), perf.Higher)
	rec.AddValue("chaos/forged_rejects", "count", float64(rejects), perf.Higher)
	rec.AddValue("chaos/violations", "count", 0, perf.Lower)

	tab.AddRow("datapath, recorder on", fmt.Sprintf("%.0f ns/pkt", onNs))
	tab.AddRow("datapath, recorder disabled", fmt.Sprintf("%.0f ns/pkt (tax %.1f%%, ceiling 5%%)", offNs, 100*tax))
	tab.AddRow("report build+seal+encode", fmt.Sprintf("%.0f ns (%d bytes on the wire)", reportNs, reportBytes))
	tab.AddRow("baseline p99 / budget", fmt.Sprintf("%d ns / %d ns (×4 + 256)", caught.baselineP99, caught.budgetNs))
	tab.AddRow("stripped trial p99", fmt.Sprintf("%d ns (70→920 ns deliver, zero garbage)", missed.trialP99))
	tab.AddRow("evidence bake", "rolled back, slowest flight deliveries cited verbatim")
	tab.AddRow("counter-only bake", fmt.Sprintf("promoted the regression (serves at %d ns)", missed.servesNs))
	tab.AddRow("forged-telemetry chaos", fmt.Sprintf("%d seeds ×2 byte-identical, %d reports, %d forged rejected, 0 violations",
		cases, reports, rejects))
	tab.Note = fmt.Sprintf(
		"tampered push = rss/pkt_len @semantic annotations stripped: deliveries stay bit-correct through SoftNIC\n"+
			"shims, so Health-counter bakes see zero violations and promote; only the flight-evidence latency gate\n"+
			"(trial p99 ≤ baseline p99 × 4 + 256ns) catches it, citing the slowest deliver events verbatim\n"+
			"rollback reason excerpt: %.160s…", caught.reason)
	return tab, nil
}

func boolCount(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
