package bench

import (
	"fmt"
	"math"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/evolve"
	"opendesc/internal/nic"
	"opendesc/internal/perf"
	"opendesc/internal/semantics"
	"opendesc/internal/workload"
)

// e15Phase describes one half of the shifting workload: how often the
// application reads each requested semantic (1 = every packet).
type e15Phase struct {
	name string
	mix  map[semantics.Name]float64
}

// e15ReadEvery converts a mix frequency into a read period for the drive
// loop (freq 1.0 → every packet, 1/16 → every 16th).
func e15ReadEvery(freq float64) int {
	if freq >= 1 {
		return 1
	}
	if freq <= 0 {
		return 0
	}
	return int(math.Round(1 / freq))
}

// e15Cost is the modelled steady-state per-packet datapath cost of running
// a layout under a read mix: Eq. 1 evaluated with the observed frequencies —
// sum of freq(s)·w(s) over semantics the path leaves to software, plus the
// alpha-weighted DMA footprint.
func e15Cost(res *core.Result, mix map[semantics.Name]float64, costs semantics.CostModel) float64 {
	c := core.DefaultAlpha * float64(res.CompletionBytes())
	for _, s := range res.Missing() {
		c += mix[s] * costs(s)
	}
	return c
}

// E15Evolve drives a workload whose feature mix shifts mid-run through the
// internal/evolve renegotiation engine and compares its per-phase datapath
// cost against the layout pinned at compile time. Phase 1 is checksum-heavy
// (the mix the static compile is optimal for); phase 2 flips to hash-heavy,
// stranding the pinned layout while the evolving driver renegotiates onto
// the RSS path. Reports adaptation latency (packets into phase 2 before the
// generation swap) and the switchover loss counter, which must be zero.
func E15Evolve(packets int) (*Table, error) {
	if packets < 512 {
		packets = 512
	}
	const nicName = "e1000e"
	intent, err := core.IntentFromSemantics("e15", semantics.Default,
		semantics.RSS, semantics.IPChecksum, semantics.VLAN, semantics.PktLen)
	if err != nil {
		return nil, err
	}

	phases := []e15Phase{
		{"csum-heavy", map[semantics.Name]float64{
			semantics.IPChecksum: 1, semantics.RSS: 1.0 / 16,
			semantics.VLAN: 1.0 / 4, semantics.PktLen: 1.0 / 4,
		}},
		{"hash-heavy", map[semantics.Name]float64{
			semantics.RSS: 1, semantics.IPChecksum: 1.0 / 16,
			semantics.VLAN: 1.0 / 4, semantics.PktLen: 1.0 / 4,
		}},
	}

	// MinShimSamples = MaxUint64 keeps the re-solve on the static w(s)
	// table so the experiment is deterministic across machines; the live
	// signal is then purely the observed read mix.
	model, err := nic.Load(nicName)
	if err != nil {
		return nil, err
	}
	eng, err := evolve.New(model, intent, core.CompileOptions{}, evolve.Options{
		Interval:       256,
		MinWindow:      128,
		MinShimSamples: math.MaxUint64,
	})
	if err != nil {
		return nil, err
	}
	pinned := eng.Result() // generation 0 == the static compile

	spec := workload.DefaultSpec()
	spec.Packets = packets
	tr, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}

	costs := semantics.RegistryCosts(semantics.Default)
	tab := &Table{
		ID:     "E15",
		Title:  "live renegotiation under a mid-run feature-mix shift (e1000e)",
		Header: []string{"phase", "driver", "path", "bytes", "cost/pkt", "adapt(pkts)"},
		Record: newPerfRecord("e15_evolve", "E15",
			"Live renegotiation under a mid-run feature-mix shift (e1000e)", packets, 0),
	}
	// E15 is a deterministic seeded drive, not a timed min-of-rounds loop.
	tab.Record.Method.Estimator = "deterministic-drive"
	tab.Record.Method.Warmup = false

	perPhase := packets / len(phases)
	adapt := make([]int, len(phases))
	results := make([]*core.Result, len(phases))
	for pi, ph := range phases {
		adapt[pi] = -1
		startGen := eng.Generation()
		for i := 0; i < perPhase; i++ {
			p := tr.Packets[(pi*perPhase+i)%len(tr.Packets)]
			if !eng.Rx(p) {
				return nil, fmt.Errorf("e15: rx stalled in phase %s packet %d", ph.name, i)
			}
			delivered := i
			eng.Poll(func(pkt, cmpt []byte, rt *codegen.Runtime) {
				for s, freq := range ph.mix {
					every := e15ReadEvery(freq)
					if every == 0 || delivered%every != 0 {
						continue
					}
					if _, err := rt.Read(s, cmpt, pkt); err == nil {
						eng.NoteRead(s)
					}
				}
			})
			if adapt[pi] < 0 && eng.Generation() != startGen {
				adapt[pi] = i + 1
			}
		}
		results[pi] = eng.Result()
	}

	st := eng.Stats()
	rec := tab.Record
	for pi, ph := range phases {
		pinnedCost := e15Cost(pinned, ph.mix, costs)
		evolvedCost := e15Cost(results[pi], ph.mix, costs)
		tab.AddRow(ph.name, "pinned", pathLabel(pinned), pinned.CompletionBytes(),
			pinnedCost, "-")
		ad := "converged"
		if adapt[pi] >= 0 {
			ad = fmt.Sprintf("%d", adapt[pi])
		}
		tab.AddRow(ph.name, "evolving", pathLabel(results[pi]), results[pi].CompletionBytes(),
			evolvedCost, ad)

		// The modelled Eq. 1 costs are deterministic, but they move whenever
		// the solver or cost table legitimately changes — gate them with the
		// ratio threshold, not exactly.
		rec.AddValue("cost/"+ph.name+"/pinned", "cost_per_pkt", pinnedCost, perf.Lower)
		rec.AddValue("cost/"+ph.name+"/evolving", "cost_per_pkt", evolvedCost, perf.Lower)
		rec.AddValue("footprint/"+ph.name+"/evolving", "bytes",
			float64(results[pi].CompletionBytes()), perf.Lower)
		if adapt[pi] >= 0 {
			rec.AddValue("adapt_packets/"+ph.name, "count", float64(adapt[pi]), perf.Lower)
		}
	}
	rec.AddValue("switch/drops", "count", float64(st.SwitchDrops), perf.Lower)
	rec.AddValue("switch/count", "count", float64(st.Switchovers), perf.Info)
	rec.AddValue("switch/drained", "count", float64(st.PacketsDrained), perf.Info)
	rec.AddValue("switch/latency_p50", "ns", float64(st.SwitchLatencyP50), perf.Info)
	tab.Note = fmt.Sprintf(
		"cost/pkt = Σ freq(s)·w(s) over software semantics + α·bytes (Eq. 1 under the live mix)\n"+
			"switchovers=%d renegotiations=%d drained=%d drops=%d (must be 0) switch p50=%dns",
		st.Switchovers, st.Renegotiations, st.PacketsDrained, st.SwitchDrops, st.SwitchLatencyP50)
	if st.SwitchDrops != 0 {
		return nil, fmt.Errorf("e15: %d packets dropped across switchovers, want 0", st.SwitchDrops)
	}
	return tab, nil
}

// pathLabel renders a result's selected path as its hardware-provided set.
func pathLabel(res *core.Result) string {
	return res.HardwareSet().String()
}
