package bench

import (
	"testing"

	"opendesc/internal/perf"
)

// checkRecord asserts an artifact-emitting experiment produced a valid
// perf record with the expected artifact name, and that it survives a
// marshal→load round trip and a self-compare with zero regressions.
func checkRecord(t *testing.T, tab *Table, name string) {
	t.Helper()
	if tab.Record == nil {
		t.Fatalf("experiment %s emitted no perf record", tab.ID)
	}
	if tab.Record.Name != name {
		t.Errorf("record name = %q, want %q", tab.Record.Name, name)
	}
	if err := tab.Record.Validate(); err != nil {
		t.Errorf("record invalid: %v", err)
	}
	dir := t.TempDir()
	path, err := tab.Record.WriteFile(dir)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := perf.Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rep, err := perf.Compare(loaded, tab.Record, perf.DefaultThresholds)
	if err != nil {
		t.Fatalf("self-compare: %v", err)
	}
	if !rep.OK() {
		t.Errorf("self-compare found regressions:\n%s", rep.Text())
	}
}

// TestHandicapScalesArtifactsOnly: the handicap must inflate recorded timing
// metrics (the gate-demonstration path) without touching count metrics.
func TestHandicapScalesArtifactsOnly(t *testing.T) {
	rec := newPerfRecord("handicap_probe", "T", "handicap probe", 16, 0)
	SetHandicap(2)
	defer SetHandicap(1)
	addTiming(rec, "t", "ns/pkt", 100)
	rec.AddValue("c", "count", 7, perf.Info)
	if m := rec.Lookup("t"); m == nil || m.Value != 200 {
		t.Errorf("timing metric = %+v, want value 200", m)
	}
	if m := rec.Lookup("c"); m == nil || m.Value != 7 {
		t.Errorf("count metric = %+v, want value 7", m)
	}
}
