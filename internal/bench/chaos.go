package bench

import (
	"fmt"

	"opendesc/internal/chaos"
)

// E18Chaos is the deterministic chaos-simulation sweep (DESIGN.md §S23): a
// seed corpus per scenario over the full NIC matrix in both driver modes,
// with every invariant oracle armed. The acceptance criterion is absolute —
// zero violations over the whole corpus — plus a canary: with the resync
// path deliberately disabled, the oracles must catch the re-opened liveness
// bug and the shrinker must reduce the failure to a handful of events.
func E18Chaos(cases int) (*Table, error) {
	if cases <= 0 {
		cases = 10_000
	}

	type scenario struct {
		name string
		cfg  chaos.Config
	}
	var scenarios []scenario
	for _, nic := range []string{"e1000", "e1000e", "ice", "ixgbe", "mlx5", "qdma"} {
		scenarios = append(scenarios,
			scenario{nic + "/harden", chaos.Config{NIC: nic, Mode: chaos.ModeHarden, Steps: 128}},
			scenario{nic + "/evolve", chaos.Config{NIC: nic, Mode: chaos.ModeEvolve, Steps: 128}},
		)
	}
	// Multi-queue interleavings on one NIC per mode (the scheduler shuffles
	// events across queues, so cross-queue isolation is under test too).
	scenarios = append(scenarios,
		scenario{"e1000e/harden q4", chaos.Config{NIC: "e1000e", Mode: chaos.ModeHarden, Steps: 192, Queues: 4}},
		scenario{"ice/evolve q2", chaos.Config{NIC: "ice", Mode: chaos.ModeEvolve, Steps: 192, Queues: 2}},
	)

	per := cases / len(scenarios)
	if per < 1 {
		per = 1
	}

	tab := &Table{
		ID:     "E18",
		Title:  fmt.Sprintf("deterministic chaos: %d seeded cases across %d scenarios, all oracles armed", per*len(scenarios), len(scenarios)),
		Header: []string{"scenario", "cases", "events", "accepted", "delivered", "switchovers", "restores", "violations"},
	}

	total := 0
	for _, sc := range scenarios {
		var events, accepted, delivered, switchovers, restores uint64
		violations := 0
		for seed := uint64(1); seed <= uint64(per); seed++ {
			res := chaos.Run(sc.cfg, seed)
			events += uint64(res.Events)
			accepted += res.Accepted
			delivered += res.Delivered
			switchovers += res.Switchovers
			restores += res.Restores
			if res.Violation != nil {
				violations++
				if violations == 1 {
					// Surface the first failing case precisely: (seed, config)
					// is the complete reproducer.
					return nil, fmt.Errorf("e18 %s seed=%d: %v", sc.name, seed, res.Violation)
				}
			}
		}
		total += per
		tab.AddRow(sc.name, per, events, accepted, delivered, switchovers, restores, violations)
	}

	// Canary: re-open the known pre-resync liveness bug and prove the
	// pipeline catches and shrinks it.
	canary := chaos.Config{Mode: chaos.ModeHarden, Steps: 256, DisableResync: true}
	var caught *chaos.Result
	var seed uint64
	for s := uint64(1); s <= 256; s++ {
		if r := chaos.Run(canary, s); r.Violation != nil {
			caught, seed = r, s
			break
		}
	}
	if caught == nil {
		return nil, fmt.Errorf("e18 canary: resync disabled but no oracle fired in 256 seeds")
	}
	sh := chaos.ShrinkToSpec(canary, chaos.Generate(canary, seed), caught.Violation)
	if len(sh.Schedule.Events) > 10 {
		return nil, fmt.Errorf("e18 canary: shrunk reproducer has %d events, want <= 10", len(sh.Schedule.Events))
	}
	tab.AddRow("resync-bug canary", 1, len(sh.Schedule.Events), "-", "-", "-", "-",
		fmt.Sprintf("1 (%s, shrunk %d->%d events)", caught.Violation.Oracle, canary.Steps, len(sh.Schedule.Events)))

	tab.Note = fmt.Sprintf(
		"every case is reproducible from (seed, config) alone; %d clean cases, 0 violations\n"+
			"canary: with the resync path disabled, oracle %q caught the re-opened liveness bug at seed %d\n"+
			"and ddmin shrank the %d-event schedule to %d events",
		total, caught.Violation.Oracle, seed, canary.Steps, len(sh.Schedule.Events))
	return tab, nil
}
