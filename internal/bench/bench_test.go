package bench

import (
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"opendesc/internal/semantics"
)

func TestE1ShapeMatchesPaper(t *testing.T) {
	tab, err := E1PathSelection()
	if err != nil {
		t.Fatal(err)
	}
	// Find the {rss, ip_checksum} row: the selected branch must be csum and
	// the software column must be rss.
	found := false
	for _, r := range tab.Rows {
		if r[0] == "rss+ip_checksum" {
			found = true
			if !strings.Contains(r[1], "csum") {
				t.Errorf("Fig. 6 row selected %q, want csum branch", r[1])
			}
			if r[3] != "rss" {
				t.Errorf("software column = %q, want rss", r[3])
			}
		}
	}
	if !found {
		t.Fatalf("rss+ip_checksum row missing:\n%s", tab)
	}
}

func TestE2CoversAllNICs(t *testing.T) {
	tab, err := E2MultiNIC()
	if err != nil {
		t.Fatal(err)
	}
	intents := len(standardIntents())
	if len(tab.Rows) != intents*6 {
		t.Errorf("rows = %d, want %d", len(tab.Rows), intents*6)
	}
	// The telemetry intent (timestamp) must be unsat on all fixed Intel NICs
	// and satisfiable on mlx5/qdma.
	unsat := map[string]bool{}
	for _, r := range tab.Rows {
		if r[0] == "telemetry" && r[len(r)-1] == "unsat" {
			unsat[r[1]] = true
		}
	}
	for _, n := range []string{"e1000", "e1000e", "ixgbe"} {
		if !unsat[n] {
			t.Errorf("telemetry should be unsat on %s", n)
		}
	}
	for _, n := range []string{"ice", "mlx5", "qdma"} {
		if unsat[n] {
			t.Errorf("telemetry should compile on %s", n)
		}
	}
}

func TestE3XDPThreeOfTwelve(t *testing.T) {
	tab, err := E3Coverage()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r[0] == "mlx5" {
			if r[1] != "12" {
				t.Errorf("mlx5 providable = %s, want 12", r[1])
			}
			if r[2] != "3/12" {
				t.Errorf("mlx5 xdp coverage = %s, want 3/12 (the paper's claim)", r[2])
			}
			if r[5] != "12/12" {
				t.Errorf("mlx5 opendesc coverage = %s, want 12/12", r[5])
			}
			return
		}
	}
	t.Fatal("mlx5 row missing")
}

func TestE5CrossoverExists(t *testing.T) {
	// With a small request, raising α (DMA weight) must eventually pull the
	// selection toward a smaller completion, or the small format is already
	// optimal at low α and a crossover in the other direction shows up in
	// the sweep. Pin that the sweep spans at least two distinct sizes.
	tab, err := E5FootprintSweep()
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]bool{}
	for _, r := range tab.Rows {
		sizes[r[2]] = true
	}
	if len(sizes) < 2 {
		t.Errorf("footprint sweep selected a single size only:\n%s", tab)
	}
}

func TestCrossoverAlphaRichRequest(t *testing.T) {
	// A rich request sits on the full CQE at low α and must cross to a
	// smaller format as DMA gets expensive.
	alpha, from, to, err := CrossoverAlpha([]semantics.Name{
		semantics.RSS, semantics.VLAN, semantics.IPChecksum, semantics.PktLen,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(alpha, 1) {
		t.Fatalf("no crossover found (stuck at %dB)", from)
	}
	if !(from > to) {
		t.Errorf("crossover %dB → %dB at α=%.2f; expected shrink as α grows", from, to, alpha)
	}
}

func TestE6RejectsTimestampEverywhere(t *testing.T) {
	tab, err := E6Unsatisfiable()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r[0] == "timestamp" {
			switch r[1] {
			case "e1000", "e1000e", "ixgbe":
				if !strings.HasPrefix(r[2], "rejected") {
					t.Errorf("%s should reject timestamp: %q", r[1], r[2])
				}
			case "mlx5", "qdma":
				if !strings.HasPrefix(r[2], "ok") {
					t.Errorf("%s should accept timestamp: %q", r[1], r[2])
				}
			}
		}
	}
}

func TestE8SmallestFormatWins(t *testing.T) {
	tab, err := E8QDMAFormats()
	if err != nil {
		t.Fatal(err)
	}
	byIntent := map[string]string{}
	for _, r := range tab.Rows {
		byIntent[r[0]] = r[1]
	}
	if byIntent["basic"] != "8" {
		t.Errorf("basic intent → %sB, want the 8B format", byIntent["basic"])
	}
	if byIntent["kv-store"] != "16" {
		t.Errorf("kv-store intent → %sB, want the 16B format", byIntent["kv-store"])
	}
	if byIntent["telemetry"] != "32" {
		t.Errorf("telemetry intent → %sB, want the 32B format", byIntent["telemetry"])
	}
}

func TestE4ShapeOpenDescWins(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := E4Datapath(256, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	checkRecord(t, tab, "e4_datapath")
	if len(tab.Rows) != len(E4Intents) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Shape assertions, robust to machine speed: on every intent OpenDesc
	// must beat the sk_buff eager-extraction baseline; and on the fw intent
	// (checksums outside XDP's 3 hints) XDP must be the slowest by far.
	idx := map[string]int{}
	for i, h := range tab.Header {
		idx[h] = i
	}
	parse := func(s string) float64 {
		var f float64
		if _, err := fmtSscan(s, &f); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return f
	}
	for _, r := range tab.Rows {
		sk := parse(r[idx["skbuff"]])
		od := parse(r[idx["opendesc"]])
		if od >= sk {
			t.Errorf("intent %s: opendesc %.1f ns !< skbuff %.1f ns", r[0], od, sk)
		}
		if r[0] == "fw" {
			xdp := parse(r[idx["xdp"]])
			if xdp < 2*od {
				t.Errorf("fw: xdp %.1f ns should collapse vs opendesc %.1f ns", xdp, od)
			}
		}
	}
}

func TestE9MonotoneCost(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := E9MbufDyn(5 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// mbuf cost with 8 dynfields must exceed cost with 0 (indirection grows).
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	var f0, fN float64
	fmtSscan(first[1], &f0)
	fmtSscan(last[1], &fN)
	if fN <= f0 {
		t.Errorf("mbuf cost should grow with dynfields: %0.1f → %0.1f", f0, fN)
	}
}

func TestE10Runs(t *testing.T) {
	tab, err := E10CompileTime()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "T", Title: "test", Header: []string{"a", "bb"}}
	tab.AddRow("x", 1.25)
	s := tab.String()
	if !strings.Contains(s, "== T: test ==") || !strings.Contains(s, "1.2") {
		t.Errorf("render:\n%s", s)
	}
}

// fmtSscan parses a float cell from a rendered table row.
func fmtSscan(s string, f *float64) (int, error) { return fmt.Sscan(s, f) }

func TestE11InterfaceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := E11Interfaces(256, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	checkRecord(t, tab, "e11_iface")
	ns := map[[2]string]float64{}
	for _, r := range tab.Rows {
		var f float64
		fmtSscan(r[3], &f)
		ns[[2]string{r[0], r[1]}] = f
	}
	// Raw payload: descriptor-less streaming must beat the per-packet ring
	// (the ENSO-shaped win).
	if !(ns[[2]string{"payload-touch", "streamed"}] < ns[[2]string{"payload-touch", "ringed"}]) {
		t.Errorf("payload-touch: streamed %.1f !< ringed %.1f",
			ns[[2]string{"payload-touch", "streamed"}], ns[[2]string{"payload-touch", "ringed"}])
	}
	// Metadata-needing app: streaming must collapse (software hash recompute)
	// versus both descriptor-bearing models.
	if !(ns[[2]string{"hash-lb", "streamed"}] > 2*ns[[2]string{"hash-lb", "ringed"}]) {
		t.Errorf("hash-lb: streamed %.1f should collapse vs ringed %.1f",
			ns[[2]string{"hash-lb", "streamed"}], ns[[2]string{"hash-lb", "ringed"}])
	}
}

func TestE12CostModelRuns(t *testing.T) {
	tab, err := E12CostModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The calibrated-rss column must hold a positive finite measurement.
	var wc float64
	fmtSscan(tab.Rows[0][5], &wc)
	if wc <= 0 {
		t.Errorf("calibrated rss cost = %v", wc)
	}
}

func TestE13PruningShape(t *testing.T) {
	tab, err := E13Pruning()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string][2]string{}
	for _, r := range tab.Rows {
		counts[r[0]] = [2]string{r[1], r[2]}
	}
	// Bundled NICs: pruning changes nothing (independent branches).
	for _, n := range []string{"e1000", "e1000e", "ixgbe", "mlx5", "qdma"} {
		c := counts[n]
		if c[0] != c[1] {
			t.Errorf("%s: pruned %s != unpruned %s (branches are independent)", n, c[0], c[1])
		}
	}
	// Correlated synthetic: 4^n unpruned vs 2^n feasible.
	if c := counts["synthetic-4-correlated"]; c[0] != "16" || c[1] != "256" {
		t.Errorf("synthetic-4: %v, want 16/256", c)
	}
	if c := counts["synthetic-6-correlated"]; c[0] != "64" || c[1] != "4096" {
		t.Errorf("synthetic-6: %v, want 64/4096", c)
	}
}

func TestE14OffloadPlanShape(t *testing.T) {
	tab, err := E14OffloadPlan()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		switch {
		case r[0] == "e1000" || r[0] == "e1000e":
			if r[3] != "" {
				t.Errorf("%s pushed %q to a fixed-function pipeline", r[0], r[3])
			}
		case r[0] == "mlx5" && strings.Contains(r[1], "flow_id"):
			// Whichever of rss/flow_id misses the selected mini CQE must be
			// pushed to the pipeline, leaving no software residue.
			if r[3] == "" || r[4] != "" {
				t.Errorf("mlx5 should push the missing feature, got pipeline=%q software=%q", r[3], r[4])
			}
		case r[0] == "mlx5" && strings.Contains(r[1], "kv_key"):
			if strings.Contains(r[3], "kv_key") {
				t.Error("mlx5 (no payload externs) must not push kv_key")
			}
		}
	}
}

func TestE16FaultMatrixShape(t *testing.T) {
	// E16Faults itself errors on any violated acceptance invariant
	// (exactly-once, zero garbage, missed corruption, missing restore), so
	// the shape test mostly needs the run to complete.
	tab, err := E16Faults(20000)
	if err != nil {
		t.Fatal(err)
	}
	checkRecord(t, tab, "e16_faults")
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 6 per-class + 1 combined:\n%s", len(tab.Rows), tab)
	}
	for _, r := range tab.Rows {
		if r[4] != "0" {
			t.Errorf("%s: garbage column = %s, want 0", r[0], r[4])
		}
		if r[0] == "hang" || r[0] == "corrupt+2 hangs" {
			if r[6] != "2" {
				t.Errorf("%s: restores = %s, want 2", r[0], r[6])
			}
		}
	}
	if !strings.Contains(tab.Note, "goodput") {
		t.Errorf("note %q missing the goodput comparison", tab.Note)
	}
}

func TestE15EvolveShape(t *testing.T) {
	tab, err := E15Evolve(2048)
	if err != nil {
		t.Fatal(err)
	}
	checkRecord(t, tab, "e15_evolve")
	// Index rows by (phase, driver) → cost and adapt columns.
	cost := map[string]float64{}
	adapt := map[string]string{}
	for _, r := range tab.Rows {
		key := r[0] + "/" + r[1]
		var c float64
		if _, err := fmt.Sscanf(r[4], "%f", &c); err != nil {
			t.Fatalf("row %v: bad cost %q", r, r[4])
		}
		cost[key] = c
		adapt[key] = r[5]
	}
	// Phase 1 is the mix the static compile is optimal for: the evolving
	// driver must hold the pinned layout, not flap.
	if cost["csum-heavy/evolving"] != cost["csum-heavy/pinned"] {
		t.Errorf("phase 1: evolving cost %.1f != pinned %.1f (should stay pinned)",
			cost["csum-heavy/evolving"], cost["csum-heavy/pinned"])
	}
	if adapt["csum-heavy/evolving"] != "converged" {
		t.Errorf("phase 1 adapt = %q, want converged", adapt["csum-heavy/evolving"])
	}
	// After the mid-run shift the evolving driver must end the phase on a
	// strictly cheaper steady-state layout than the pinned one.
	if cost["hash-heavy/evolving"] >= cost["hash-heavy/pinned"] {
		t.Errorf("phase 2: evolving cost %.1f not below pinned %.1f",
			cost["hash-heavy/evolving"], cost["hash-heavy/pinned"])
	}
	if adapt["hash-heavy/evolving"] == "converged" || adapt["hash-heavy/evolving"] == "-" {
		t.Errorf("phase 2 adapt = %q, want a packet count", adapt["hash-heavy/evolving"])
	}
	// The loss counter lives in the note; E15Evolve errors when non-zero,
	// but assert the rendered claim too.
	if !strings.Contains(tab.Note, "drops=0") {
		t.Errorf("note %q does not report drops=0", tab.Note)
	}
	if !strings.Contains(tab.Note, "switchovers=") {
		t.Errorf("note %q missing switchover count", tab.Note)
	}
}

func TestE17FlightShape(t *testing.T) {
	// E17Flight itself errors on any violated acceptance invariant (lost
	// packets, missing postmortem, arc not decoding to degrade→reset→restore,
	// no deliver latencies in the dump), so the shape test needs the run to
	// complete, the postmortem files to land, and the table rows to render.
	dir := t.TempDir()
	tab, err := E17Flight(0, dir) // clamps to the experiment's minimum
	if err != nil {
		t.Fatal(err)
	}
	checkRecord(t, tab, "e17_flight")
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7:\n%s", len(tab.Rows), tab)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.odfl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Error("no .odfl postmortem dumps written")
	}
	for _, r := range tab.Rows {
		if r[0] == "recovery arc in dump" && !strings.Contains(r[1], "degrade@") {
			t.Errorf("arc row = %q", r[1])
		}
	}
}
