package workload

import (
	"fmt"
	"math"

	"opendesc/internal/pkt"
)

// ZipfSpec configures the flow-popularity generator for the multi-tenant
// serving plane: packets are drawn from a bounded Zipf(s) distribution over
// a flow population that can reach millions of concurrent flows (flows are
// materialized per packet from their popularity rank, never as a table).
type ZipfSpec struct {
	// Packets is the trace length.
	Packets int
	// Flows is the concurrent flow population (popularity ranks 1..Flows).
	// Bounded by 1<<24: flows are addressed inside a 10.0.0.0/8 source net.
	Flows int
	// Skew is the Zipf exponent s ≥ 0: 0 is uniform, ~1 matches measured
	// web/object-store popularity, larger concentrates traffic on the head.
	Skew float64
	// Tenants shards the flow space: flow rank r belongs to tenant
	// (r-1) mod Tenants, so every tenant owns an equal slice of both the
	// popularity head and the tail (equal offered load in expectation).
	Tenants int
	// PayloadBytes is the UDP payload size (default 26).
	PayloadBytes int
	// BasePort is the per-tenant UDP destination port base: tenant i
	// receives on BasePort+i (default 20000). The serving plane classifies
	// tenants by this port.
	BasePort uint16
	// Seed makes the trace byte-identical across runs (chaos discipline:
	// the generator uses its own splitmix64 stream, not math/rand, whose
	// sequence is not stable across Go releases).
	Seed uint64
}

// maxZipfFlows bounds the flow population to 24-bit source addressing.
const maxZipfFlows = 1 << 24

// DefaultZipfSpec is a million-flow, 4-tenant, web-skew population.
func DefaultZipfSpec() ZipfSpec {
	return ZipfSpec{
		Packets: 4096,
		Flows:   1 << 20,
		Skew:    1.1,
		Tenants: 4,
		Seed:    1,
	}
}

// ZipfTrace is a generated flow-popularity packet sequence with its
// per-packet tenant and flow-rank attribution.
type ZipfTrace struct {
	Spec    ZipfSpec
	Packets [][]byte
	// TenantOf[i] is the tenant index of packet i.
	TenantOf []int
	// FlowOf[i] is the popularity rank (1-based) of packet i's flow.
	FlowOf []int
	// DistinctFlows counts the flows actually touched by the trace.
	DistinctFlows int
}

// zipfRNG is a splitmix64 PRNG — same discipline as the chaos scheduler
// (package chaos imports workload, so the 10-line generator is repeated
// here rather than imported).
type zipfRNG struct{ s uint64 }

func (r *zipfRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0,1).
func (r *zipfRNG) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// zipfRank inverts the continuous bounded-Zipf CDF: for s≠1,
// rank = ⌊(u·(N^(1−s)−1)+1)^(1/(1−s))⌋, and rank = ⌊e^(u·lnN)⌋ at s=1 —
// the standard closed-form approximation of the discrete distribution,
// exact enough for popularity skew and O(1) regardless of N.
func zipfRank(u float64, n int, s float64) int {
	if n <= 1 {
		return 1
	}
	N := float64(n)
	var k float64
	if s == 1 {
		k = math.Exp(u * math.Log(N))
	} else {
		t := math.Pow(N, 1-s)
		k = math.Pow(u*(t-1)+1, 1/(1-s))
	}
	r := int(k)
	if r < 1 {
		return 1
	}
	if r > n {
		return n
	}
	return r
}

// GenerateZipf builds the trace. Every parameter is validated up front so a
// misconfigured experiment fails loudly instead of producing a silently
// degenerate population.
func GenerateZipf(spec ZipfSpec) (*ZipfTrace, error) {
	if spec.Packets <= 0 {
		return nil, fmt.Errorf("workload: zipf packet count %d must be positive", spec.Packets)
	}
	if spec.Flows <= 0 {
		return nil, fmt.Errorf("workload: zipf flow population %d must be positive", spec.Flows)
	}
	if spec.Flows > maxZipfFlows {
		return nil, fmt.Errorf("workload: zipf flow population %d exceeds 24-bit flow addressing (max %d)",
			spec.Flows, maxZipfFlows)
	}
	if math.IsNaN(spec.Skew) || math.IsInf(spec.Skew, 0) || spec.Skew < 0 {
		return nil, fmt.Errorf("workload: zipf skew %v must be a finite value ≥ 0", spec.Skew)
	}
	if spec.Tenants <= 0 {
		return nil, fmt.Errorf("workload: zipf tenant count %d must be positive", spec.Tenants)
	}
	if spec.Tenants > spec.Flows {
		return nil, fmt.Errorf("workload: zipf tenant count %d exceeds flow population %d",
			spec.Tenants, spec.Flows)
	}
	if spec.Tenants > 4096 {
		return nil, fmt.Errorf("workload: zipf tenant count %d exceeds the 4096-port tenant namespace", spec.Tenants)
	}
	if spec.PayloadBytes < 0 || spec.PayloadBytes > 1400 {
		return nil, fmt.Errorf("workload: zipf payload %dB out of [0,1400]", spec.PayloadBytes)
	}
	if spec.PayloadBytes == 0 {
		spec.PayloadBytes = 26
	}
	if spec.BasePort == 0 {
		spec.BasePort = 20000
	}

	rng := &zipfRNG{s: spec.Seed}
	tr := &ZipfTrace{
		Spec:     spec,
		Packets:  make([][]byte, 0, spec.Packets),
		TenantOf: make([]int, 0, spec.Packets),
		FlowOf:   make([]int, 0, spec.Packets),
	}
	seen := make(map[int]struct{})
	payload := make([]byte, spec.PayloadBytes)
	for i := 0; i < spec.Packets; i++ {
		rank := zipfRank(rng.float(), spec.Flows, spec.Skew)
		f := rank - 1
		tenant := f % spec.Tenants
		for j := range payload {
			payload[j] = byte(rng.next())
		}
		// The 5-tuple is a pure function of the rank so one flow is one
		// 5-tuple no matter when it recurs in the trace.
		sport := uint16(1024 + (uint32(f)*2654435761)%60000)
		b := pkt.NewBuilder().
			WithIPv4(
				[4]byte{10, byte(f >> 16), byte(f >> 8), byte(f)},
				[4]byte{192, 168, byte(tenant >> 8), byte(tenant)},
			).
			WithIPID(uint16(i)).
			WithUDP(sport, spec.BasePort+uint16(tenant)).
			WithPayload(payload)
		tr.Packets = append(tr.Packets, b.Build())
		tr.TenantOf = append(tr.TenantOf, tenant)
		tr.FlowOf = append(tr.FlowOf, rank)
		if _, ok := seen[rank]; !ok {
			seen[rank] = struct{}{}
			tr.DistinctFlows++
		}
	}
	return tr, nil
}

// MustGenerateZipf panics on an invalid spec.
func MustGenerateZipf(spec ZipfSpec) *ZipfTrace {
	tr, err := GenerateZipf(spec)
	if err != nil {
		panic(err)
	}
	return tr
}
