package workload

import (
	"strings"
	"testing"
)

func TestMixScheduleValidation(t *testing.T) {
	if _, err := NewMixSchedule(); err == nil {
		t.Error("zero-phase schedule accepted, want error")
	}
	_, err := NewMixSchedule(Mix{"rss", "no_such_semantic"})
	if err == nil {
		t.Fatal("unknown semantic accepted, want error")
	}
	if !strings.Contains(err.Error(), "no_such_semantic") || !strings.Contains(err.Error(), "phase 0") {
		t.Errorf("error %q does not name the bad semantic and phase", err)
	}
	if _, err := NewMixSchedule(Mix{"rss"}, Mix{"vlan", "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "phase 1") {
		t.Errorf("second-phase error not positional: %v", err)
	}
}

// TestMixScheduleEmptyMix: the empty mix is a legal phase — an application
// that reads no metadata at all is the degenerate end of a shifting read-mix.
func TestMixScheduleEmptyMix(t *testing.T) {
	s, err := NewMixSchedule(Mix{})
	if err != nil {
		t.Fatalf("empty mix rejected: %v", err)
	}
	if got := s.Phase(0); len(got) != 0 {
		t.Errorf("Phase(0) = %v, want empty", got)
	}
	if s.NumPhases() != 1 {
		t.Errorf("NumPhases = %d, want 1", s.NumPhases())
	}
}

// TestMixScheduleSingleField: a one-field mix phase (the target of an abrupt
// 100%-flip) round-trips through Phase.
func TestMixScheduleSingleField(t *testing.T) {
	s := MustMixSchedule(Mix{"rss"})
	for i := 0; i < 5; i++ {
		if got := s.Phase(i); len(got) != 1 || got[0] != "rss" {
			t.Fatalf("Phase(%d) = %v, want [rss]", i, got)
		}
	}
}

// TestMixScheduleAbruptFlip models the Fig. 1 scenario as two disjoint
// single-field phases: 100% of reads flip from one semantic to another
// between consecutive phases, with no overlap.
func TestMixScheduleAbruptFlip(t *testing.T) {
	s := MustMixSchedule(Mix{"ip_checksum"}, Mix{"rss"})
	a, b := s.Phase(0), s.Phase(1)
	if len(a) != 1 || len(b) != 1 || a[0] == b[0] {
		t.Fatalf("flip phases not disjoint singletons: %v vs %v", a, b)
	}
	// Walking past the end wraps — the shifting workload cycles.
	if got := s.Phase(2); got[0] != a[0] {
		t.Errorf("Phase(2) = %v, want wrap to %v", got, a)
	}
	if got := s.Phase(3); got[0] != b[0] {
		t.Errorf("Phase(3) = %v, want wrap to %v", got, b)
	}
}

func TestMixSchedulePhaseWrapping(t *testing.T) {
	var zero MixSchedule
	if got := zero.Phase(7); got != nil {
		t.Errorf("zero schedule Phase(7) = %v, want nil", got)
	}
	if zero.NumPhases() != 0 {
		t.Errorf("zero schedule NumPhases = %d, want 0", zero.NumPhases())
	}
	s := MustMixSchedule(Mix{"rss"}, Mix{"vlan"}, Mix{})
	if got := s.Phase(4); len(got) != 1 || got[0] != "vlan" {
		t.Errorf("Phase(4) = %v, want [vlan]", got)
	}
	// Negative indices must not panic (defensive for scripted schedules):
	// they map onto their absolute value, so -2 is phase 2, the empty mix.
	if got := s.Phase(-2); len(got) != 0 {
		t.Errorf("Phase(-2) = %v, want the empty mix", got)
	}
}

func TestMustMixSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMixSchedule with unknown semantic did not panic")
		}
	}()
	MustMixSchedule(Mix{"banana"})
}
