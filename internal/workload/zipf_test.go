package workload

import (
	"bytes"
	"math"
	"testing"

	"opendesc/internal/pkt"
)

// TestZipfDeterminism: same seed ⇒ byte-identical trace (the chaos S23
// discipline); a different seed must diverge.
func TestZipfDeterminism(t *testing.T) {
	spec := ZipfSpec{Packets: 512, Flows: 1 << 20, Skew: 1.1, Tenants: 8, Seed: 42}
	a := MustGenerateZipf(spec)
	b := MustGenerateZipf(spec)
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if !bytes.Equal(a.Packets[i], b.Packets[i]) {
			t.Fatalf("packet %d differs between identical-seed runs", i)
		}
		if a.TenantOf[i] != b.TenantOf[i] || a.FlowOf[i] != b.FlowOf[i] {
			t.Fatalf("attribution differs at packet %d", i)
		}
	}
	spec.Seed = 43
	c := MustGenerateZipf(spec)
	same := true
	for i := range a.Packets {
		if !bytes.Equal(a.Packets[i], c.Packets[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestZipfSkewShape: under heavy skew the head flow must dominate far beyond
// its uniform share, and skew 0 must stay near-uniform.
func TestZipfSkewShape(t *testing.T) {
	const packets = 20000
	flows := 1 << 16
	skewed := MustGenerateZipf(ZipfSpec{Packets: packets, Flows: flows, Skew: 1.2, Tenants: 1, Seed: 7})
	head := 0
	for _, r := range skewed.FlowOf {
		if r == 1 {
			head++
		}
	}
	// Uniform share would be packets/flows < 1; Zipf(1.2) over 64k flows
	// puts several percent of all traffic on rank 1.
	if head < packets/100 {
		t.Errorf("rank-1 flow got %d of %d packets under skew 1.2; want ≥ 1%%", head, packets)
	}
	if skewed.DistinctFlows >= packets {
		t.Errorf("skewed trace touched %d distinct flows in %d packets; expected heavy reuse",
			skewed.DistinctFlows, packets)
	}

	uniform := MustGenerateZipf(ZipfSpec{Packets: packets, Flows: flows, Skew: 0, Tenants: 1, Seed: 7})
	if uniform.DistinctFlows < packets*3/4 {
		t.Errorf("uniform trace touched only %d distinct flows in %d packets", uniform.DistinctFlows, packets)
	}
}

// TestZipfTenantAttribution: the built packets must decode back to the
// declared tenant (dst port) and flow (src address) attribution.
func TestZipfTenantAttribution(t *testing.T) {
	tr := MustGenerateZipf(ZipfSpec{Packets: 256, Flows: 4096, Skew: 1, Tenants: 16, Seed: 3, BasePort: 30000})
	var info pkt.Info
	for i, p := range tr.Packets {
		if err := pkt.Decode(p, &info); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got := int(info.DstPort) - 30000; got != tr.TenantOf[i] {
			t.Fatalf("packet %d: dst port says tenant %d, TenantOf %d", i, got, tr.TenantOf[i])
		}
		f := tr.FlowOf[i] - 1
		want := [4]byte{10, byte(f >> 16), byte(f >> 8), byte(f)}
		if [4]byte(info.SrcIP[:4]) != want {
			t.Fatalf("packet %d: src %v, want %v", i, info.SrcIP[:4], want)
		}
		if tr.TenantOf[i] != f%16 {
			t.Fatalf("packet %d: tenant %d, want rank-round-robin %d", i, tr.TenantOf[i], f%16)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	ok := ZipfSpec{Packets: 16, Flows: 1024, Skew: 1, Tenants: 4, Seed: 1}
	cases := []struct {
		name   string
		mutate func(*ZipfSpec)
	}{
		{"zero packets", func(s *ZipfSpec) { s.Packets = 0 }},
		{"negative packets", func(s *ZipfSpec) { s.Packets = -5 }},
		{"zero flows", func(s *ZipfSpec) { s.Flows = 0 }},
		{"flow overflow", func(s *ZipfSpec) { s.Flows = maxZipfFlows + 1 }},
		{"negative skew", func(s *ZipfSpec) { s.Skew = -0.5 }},
		{"NaN skew", func(s *ZipfSpec) { s.Skew = math.NaN() }},
		{"Inf skew", func(s *ZipfSpec) { s.Skew = math.Inf(1) }},
		{"zero tenants", func(s *ZipfSpec) { s.Tenants = 0 }},
		{"tenants exceed flows", func(s *ZipfSpec) { s.Flows = 4; s.Tenants = 8 }},
		{"tenant namespace overflow", func(s *ZipfSpec) { s.Flows = 1 << 20; s.Tenants = 5000 }},
		{"negative payload", func(s *ZipfSpec) { s.PayloadBytes = -1 }},
		{"oversize payload", func(s *ZipfSpec) { s.PayloadBytes = 1500 }},
	}
	for _, c := range cases {
		spec := ok
		c.mutate(&spec)
		if _, err := GenerateZipf(spec); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	if _, err := GenerateZipf(ok); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestZipfRankBounds: the inverse-transform sampler must stay in [1, N] at
// the extremes of u for representative skews.
func TestZipfRankBounds(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 1.2, 2, 4} {
		for _, u := range []float64{0, 1e-12, 0.5, 1 - 1e-12} {
			r := zipfRank(u, 1<<20, s)
			if r < 1 || r > 1<<20 {
				t.Errorf("zipfRank(%v, 2^20, %v) = %d out of range", u, s, r)
			}
		}
		if zipfRank(0.5, 1, s) != 1 {
			t.Errorf("single-flow population must always rank 1")
		}
	}
}
