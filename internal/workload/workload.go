// Package workload generates deterministic synthetic packet traces for the
// OpenDesc experiments: multi-flow TCP/UDP mixes with configurable packet
// sizes, VLAN tagging, tunnel traffic, corrupted checksums, and
// memcached-style key-value request streams (the Fig. 1 scenario).
package workload

import (
	"fmt"
	"math/rand"

	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
)

// Spec configures a trace.
type Spec struct {
	// Packets is the trace length.
	Packets int
	// Flows is the number of distinct 5-tuples (round-robin).
	Flows int
	// PayloadBytes is the L4 payload size (pre-header).
	PayloadBytes int
	// TCPFraction in [0,1] selects the TCP share; the rest is UDP.
	TCPFraction float64
	// VLANFraction tags this share of packets with 802.1Q.
	VLANFraction float64
	// TunnelFraction wraps this share in a VXLAN-like header (UDP 4789).
	TunnelFraction float64
	// BadCsumFraction corrupts the L4 checksum on this share.
	BadCsumFraction float64
	// KVFraction carries a memcached-style "get <key>" request as payload.
	KVFraction float64
	// Seed makes the trace reproducible.
	Seed int64
}

// DefaultSpec is a balanced 64-flow mix.
func DefaultSpec() Spec {
	return Spec{
		Packets:      1024,
		Flows:        64,
		PayloadBytes: 64,
		TCPFraction:  0.6,
		VLANFraction: 0.3,
		Seed:         1,
	}
}

// Trace is a generated packet sequence.
type Trace struct {
	Spec    Spec
	Packets [][]byte
}

// Generate builds the trace.
func Generate(spec Spec) (*Trace, error) {
	if spec.Packets <= 0 {
		return nil, fmt.Errorf("workload: packet count %d must be positive", spec.Packets)
	}
	if spec.Flows <= 0 {
		spec.Flows = 1
	}
	for name, f := range map[string]float64{
		"TCPFraction": spec.TCPFraction, "VLANFraction": spec.VLANFraction,
		"TunnelFraction": spec.TunnelFraction, "BadCsumFraction": spec.BadCsumFraction,
		"KVFraction": spec.KVFraction,
	} {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("workload: %s = %v out of [0,1]", name, f)
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	tr := &Trace{Spec: spec, Packets: make([][]byte, 0, spec.Packets)}
	for i := 0; i < spec.Packets; i++ {
		flow := i % spec.Flows
		b := pkt.NewBuilder().
			WithIPv4(
				[4]byte{10, 0, byte(flow >> 8), byte(flow)},
				[4]byte{192, 168, 0, byte(flow % 250)},
			).
			WithIPID(uint16(i))

		payload := make([]byte, spec.PayloadBytes)
		rng.Read(payload)
		kv := rng.Float64() < spec.KVFraction
		if kv {
			payload = []byte(fmt.Sprintf("get key:%06d\r\n", flow))
		}

		switch {
		case rng.Float64() < spec.TunnelFraction:
			// VXLAN-style: flags byte + rsvd + VNI + inner stub.
			vni := uint32(flow + 1)
			vx := make([]byte, 8+len(payload))
			vx[0] = 0x08
			vx[4] = byte(vni >> 16)
			vx[5] = byte(vni >> 8)
			vx[6] = byte(vni)
			copy(vx[8:], payload)
			b.WithUDP(uint16(20000+flow), 4789).WithPayload(vx)
		case kv:
			b.WithUDP(uint16(30000+flow), 11211).WithPayload(payload)
		case rng.Float64() < spec.TCPFraction:
			b.WithTCP(uint16(40000+flow), 443, 0x18).WithPayload(payload)
		default:
			b.WithUDP(uint16(50000+flow), 53).WithPayload(payload)
		}
		if rng.Float64() < spec.VLANFraction {
			b.WithVLAN(uint16(100 + flow%5))
		}
		if rng.Float64() < spec.BadCsumFraction {
			b.WithBadL4Checksum()
		}
		tr.Packets = append(tr.Packets, b.Build())
	}
	return tr, nil
}

// MustGenerate panics on an invalid spec.
func MustGenerate(spec Spec) *Trace {
	tr, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return tr
}

// Mix is a read-mix: the ordered list of semantics an application reads per
// delivered packet. The empty mix is valid — deliveries then read nothing
// (the application consumes only the packet bytes), which is the degenerate
// feature mix an evolving driver must also survive.
type Mix []string

// MixSchedule is an ordered list of read-mix phases. A shifting workload
// walks the phases (the chaos scheduler jumps between them on scripted
// mix-shift events); a one-phase schedule is a steady mix, and an abrupt
// 100%-flip is simply two disjoint single-field phases back to back.
type MixSchedule struct {
	Phases []Mix
}

// NewMixSchedule validates every phase's semantics against the default
// registry (unknown names would silently read nothing and mask bugs) and
// returns the schedule. At least one phase is required; empty phases are
// allowed.
func NewMixSchedule(phases ...Mix) (MixSchedule, error) {
	if len(phases) == 0 {
		return MixSchedule{}, fmt.Errorf("workload: mix schedule needs at least one phase")
	}
	for pi, ph := range phases {
		for _, s := range ph {
			if semantics.Default.Lookup(semantics.Name(s)) == nil {
				return MixSchedule{}, fmt.Errorf("workload: mix phase %d: unknown semantic %q", pi, s)
			}
		}
	}
	return MixSchedule{Phases: phases}, nil
}

// MustMixSchedule panics on an invalid schedule.
func MustMixSchedule(phases ...Mix) MixSchedule {
	s, err := NewMixSchedule(phases...)
	if err != nil {
		panic(err)
	}
	return s
}

// Phase returns phase i, wrapping modulo the phase count so schedule walkers
// never fall off the end; the zero schedule returns the empty mix.
func (s MixSchedule) Phase(i int) Mix {
	if len(s.Phases) == 0 {
		return nil
	}
	if i < 0 {
		i = -i
	}
	return s.Phases[i%len(s.Phases)]
}

// NumPhases returns the phase count.
func (s MixSchedule) NumPhases() int { return len(s.Phases) }

// TotalBytes sums the wire lengths.
func (t *Trace) TotalBytes() int {
	n := 0
	for _, p := range t.Packets {
		n += len(p)
	}
	return n
}
