package workload

import (
	"bytes"
	"testing"

	"opendesc/internal/pkt"
)

func TestDeterministic(t *testing.T) {
	spec := DefaultSpec()
	spec.Packets = 128
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	if len(a.Packets) != len(b.Packets) {
		t.Fatal("lengths differ")
	}
	for i := range a.Packets {
		if !bytes.Equal(a.Packets[i], b.Packets[i]) {
			t.Fatalf("packet %d differs between same-seed runs", i)
		}
	}
	spec.Seed = 2
	c := MustGenerate(spec)
	same := 0
	for i := range a.Packets {
		if bytes.Equal(a.Packets[i], c.Packets[i]) {
			same++
		}
	}
	if same == len(a.Packets) {
		t.Error("different seeds produced identical traces")
	}
}

func TestAllPacketsDecode(t *testing.T) {
	spec := Spec{
		Packets: 512, Flows: 32, PayloadBytes: 128,
		TCPFraction: 0.5, VLANFraction: 0.4, TunnelFraction: 0.2,
		BadCsumFraction: 0.1, KVFraction: 0.2, Seed: 7,
	}
	tr := MustGenerate(spec)
	var in pkt.Info
	kinds := map[pkt.L4Kind]int{}
	vlans, tunnels := 0, 0
	for i, p := range tr.Packets {
		if err := pkt.Decode(p, &in); err != nil {
			t.Fatalf("packet %d undecodable: %v", i, err)
		}
		kinds[in.L4]++
		if in.HasVLAN() {
			vlans++
		}
		if in.L4 == pkt.L4UDP && in.DstPort == 4789 {
			tunnels++
		}
	}
	if kinds[pkt.L4TCP] == 0 || kinds[pkt.L4UDP] == 0 {
		t.Errorf("mix missing a protocol: %v", kinds)
	}
	if vlans == 0 || vlans == spec.Packets {
		t.Errorf("vlan fraction degenerate: %d/%d", vlans, spec.Packets)
	}
	if tunnels == 0 {
		t.Error("no tunnel packets generated")
	}
}

func TestFlowCount(t *testing.T) {
	spec := DefaultSpec()
	spec.Packets = 256
	spec.Flows = 16
	spec.VLANFraction = 0
	spec.TCPFraction = 1
	tr := MustGenerate(spec)
	var in pkt.Info
	flows := map[[2]uint16]bool{}
	for _, p := range tr.Packets {
		if err := pkt.Decode(p, &in); err != nil {
			t.Fatal(err)
		}
		flows[[2]uint16{in.SrcPort, in.DstPort}] = true
	}
	if len(flows) != 16 {
		t.Errorf("distinct flows = %d, want 16", len(flows))
	}
}

func TestBadChecksumFraction(t *testing.T) {
	spec := DefaultSpec()
	spec.Packets = 400
	spec.BadCsumFraction = 0.5
	spec.VLANFraction = 0
	tr := MustGenerate(spec)
	var in pkt.Info
	bad := 0
	for _, p := range tr.Packets {
		if err := pkt.Decode(p, &in); err != nil {
			t.Fatal(err)
		}
		if !pkt.VerifyL4(&in) {
			bad++
		}
	}
	if bad < 100 || bad > 300 {
		t.Errorf("bad checksum count = %d of 400, want ≈200", bad)
	}
}

func TestKVPayloads(t *testing.T) {
	spec := DefaultSpec()
	spec.Packets = 100
	spec.KVFraction = 1
	spec.TunnelFraction = 0
	tr := MustGenerate(spec)
	var in pkt.Info
	for _, p := range tr.Packets {
		if err := pkt.Decode(p, &in); err != nil {
			t.Fatal(err)
		}
		if in.DstPort != 11211 {
			t.Fatalf("kv packet on port %d", in.DstPort)
		}
		if !bytes.HasPrefix(in.Payload(), []byte("get key:")) {
			t.Fatalf("kv payload = %q", in.Payload())
		}
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Generate(Spec{Packets: 0}); err == nil {
		t.Error("zero packets accepted")
	}
	if _, err := Generate(Spec{Packets: 1, TCPFraction: 1.5}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := Generate(Spec{Packets: 1, VLANFraction: -0.1}); err == nil {
		t.Error("negative fraction accepted")
	}
}

func TestTotalBytes(t *testing.T) {
	tr := MustGenerate(Spec{Packets: 10, PayloadBytes: 100, Seed: 1})
	if tr.TotalBytes() < 10*100 {
		t.Errorf("total bytes = %d", tr.TotalBytes())
	}
}
