package evolve

import (
	"strings"
	"testing"

	"opendesc/internal/codegen"
	"opendesc/internal/faults"
	"opendesc/internal/semantics"
)

// TestSwitchoverSurvivesNAKStorm: with every register-write burst NAKed, a
// switchover must fail cleanly — bounded retries, a rollback, and an intact
// datapath — and succeed once the control channel heals.
func TestSwitchoverSurvivesNAKStorm(t *testing.T) {
	e := newTestEngine(t, staticOptions())
	tr := trace(t)
	drive(t, e, tr, 128, semantics.RSS)

	e.Device().InjectFaults(faults.New(faults.Plan{Seed: 13, NAKP: 1}))
	switched, err := e.Renegotiate()
	if switched {
		t.Fatal("switchover must not complete under a NAK storm")
	}
	if err == nil || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("err = %v, want a rollback", err)
	}
	st := e.Stats()
	if st.Rollbacks != 1 || st.Generation != 0 || st.Switchovers != 0 {
		t.Fatalf("stats = %+v, want 1 rollback at generation 0", st)
	}
	// Both the apply and the rollback reapply must have exhausted their
	// bounded retries (4 + 4).
	if st.ApplyRetries != 8 {
		t.Fatalf("apply retries = %d, want 8", st.ApplyRetries)
	}
	if st.SwitchDrops != 0 {
		t.Fatalf("switch drops = %d, want 0", st.SwitchDrops)
	}
	// NAKs are atomic: the device context was never touched, the old path
	// still serves traffic (injector still attached — data path is
	// unaffected by NAK-only plans).
	if got := drive(t, e, tr, 64, semantics.RSS); got != 64 {
		t.Fatalf("post-rollback delivery = %d, want 64", got)
	}

	// Control channel heals: the next renegotiation must switch.
	e.Device().InjectFaults(nil)
	drive(t, e, tr, 128, semantics.RSS)
	switched, err = e.Renegotiate()
	if err != nil || !switched {
		t.Fatalf("post-heal renegotiate = %v/%v, want a clean switchover", switched, err)
	}
	if st := e.Stats(); st.Generation != 1 || st.SwitchDrops != 0 {
		t.Fatalf("stats after heal = %+v, want generation 1 with 0 drops", st)
	}
}

// TestSwitchoverAbsorbsTransientNAKs: sporadic NAKs within the retry budget
// must not abort a switchover at all.
func TestSwitchoverAbsorbsTransientNAKs(t *testing.T) {
	// The injector is deterministic, so sweep seeds until one NAKs the apply
	// op at least once; the retry budget must then absorb it silently.
	exercised := false
	for seed := uint64(1); seed <= 64; seed++ {
		e := newTestEngine(t, staticOptions())
		tr := trace(t)
		drive(t, e, tr, 128, semantics.RSS)
		e.Device().InjectFaults(faults.New(faults.Plan{Seed: seed, NAKP: 0.5}))
		switched, err := e.Renegotiate()
		st := e.Stats()
		if err != nil || !switched {
			// 4 consecutive NAKs exhausted the budget — a legitimate
			// rollback, covered by the NAK-storm test. Try another seed.
			if st.Rollbacks != 1 {
				t.Fatalf("seed %d: renegotiate = %v/%v without a rollback", seed, switched, err)
			}
			continue
		}
		if st.Rollbacks != 0 || st.Generation != 1 {
			t.Fatalf("seed %d: stats = %+v, want a clean generation-1 switchover", seed, st)
		}
		if st.ApplyRetries > 0 {
			exercised = true
			break
		}
	}
	if !exercised {
		t.Fatal("no seed in [1,64] exercised the transient-NAK retry path")
	}
}

// TestDrainSoftParksLostCompletions: completions lost to a faulty device
// mid-switchover must not become drops — the stranded packets are parked and
// delivered through the old generation's software runtime.
func TestDrainSoftParksLostCompletions(t *testing.T) {
	e := newTestEngine(t, staticOptions())
	tr := trace(t)
	drive(t, e, tr, 128, semantics.RSS)

	// Queue a burst whose completions are partially lost, without polling.
	e.Device().InjectFaults(faults.New(faults.Plan{Seed: 4, DropP: 0.5}))
	queued := 0
	for i := 0; i < 32; i++ {
		if e.Rx(tr.Packets[i%len(tr.Packets)]) {
			queued++
		}
	}
	e.Device().InjectFaults(nil)

	switched, err := e.Renegotiate()
	if err != nil || !switched {
		t.Fatalf("renegotiate = %v/%v, want a switchover", switched, err)
	}
	st := e.Stats()
	if st.SoftParked == 0 {
		t.Fatal("expected lost completions to be soft-parked during the drain")
	}
	if st.SwitchDrops != 0 {
		t.Fatalf("switch drops = %d, want 0 (losses must be parked, not dropped)", st.SwitchDrops)
	}
	if int(st.PacketsDrained+st.SoftParked) != queued {
		t.Fatalf("drained %d + parked %d != queued %d", st.PacketsDrained, st.SoftParked, queued)
	}

	// Every parked packet is delivered on the next Poll; the soft runtime
	// serves reads without a completion record.
	got := 0
	n := e.Poll(func(pkt, cmpt []byte, rt *codegen.Runtime) {
		if _, err := rt.Read(semantics.RSS, cmpt, pkt); err != nil {
			t.Fatalf("parked read: %v", err)
		}
		got++
	})
	if n != queued || got != queued {
		t.Fatalf("post-switchover poll delivered %d/%d, want %d", n, got, queued)
	}
}
