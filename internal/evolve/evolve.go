// Package evolve is the live interface-renegotiation control plane: it
// closes the loop the compiler leaves open. A compilation pins one
// completion layout at Compile time, but the *observed* feature mix — which
// semantics the application actually reads, and what each SoftNIC shim
// really costs on this machine — only exists at runtime. The Engine watches
// both signals, periodically re-solves the Eq. 1 layout optimization against
// the live mix with measured w(s), and when a candidate path beats the
// active one past a hysteresis threshold it performs a graceful,
// generation-tagged switchover:
//
//	RUNNING ──interval──▶ EVALUATE ──no better / unsat──▶ RUNNING
//	EVALUATE ──candidate wins──▶ QUIESCE ─▶ DRAIN ─▶ APPLY ─▶ VERIFY ─▶ SWAP
//	APPLY/VERIFY failure ──▶ ROLLBACK (old config re-applied) ─▶ RUNNING
//
// Quiesce stops the producer; drain consumes every completion still in the
// ring under the old layout (each in-flight packet carries the generation
// epoch it was received under, the host-side analogue of the color/epoch
// bits real completion formats reserve); apply pushes the new context
// constraints over the control channel (nicsim.ApplyConfig); verify checks
// the device now resolves the selected path; swap atomically replaces the
// accessor runtime and bumps the generation. Every transition produces obs
// metrics (renegotiations, switchover-latency histogram, packets drained,
// rollbacks, a drop counter that must stay zero) and a core.Diff change
// report.
package evolve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/obs"
	"opendesc/internal/obs/flight"
	"opendesc/internal/retry"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/vclock"
)

// Options tune the renegotiation control plane.
type Options struct {
	// Interval is the number of delivered packets between renegotiation
	// checks (default 2048).
	Interval int
	// Hysteresis is the fractional Eq. 1 improvement a candidate must show
	// over the active path before a switchover is attempted (default 0.10).
	// Zero selects the default; pass a negative value for no hysteresis.
	Hysteresis float64
	// Alpha is the DMA footprint weight forwarded to the re-solve (zero
	// selects core.DefaultAlpha).
	Alpha float64
	// MinShimSamples is how many calls a shim needs before its measured
	// ns/call replaces the static w(s) (default 64).
	MinShimSamples uint64
	// MinWindow is the minimum number of delivered packets in the current
	// observation window before a renegotiation is evaluated (default 256).
	MinWindow int
	// Costs, when non-nil, wraps the live cost model before the re-solve —
	// a policy hook (and the test hook for injecting unsatisfiable
	// renegotiations).
	Costs func(live semantics.CostModel) semantics.CostModel
	// PreSwitch, when non-nil, is an admission check invoked after the ring
	// has drained and before the new configuration is pushed; an error
	// aborts the switchover and rolls back to the active generation.
	PreSwitch func(next *core.Result) error
	// Device sizes the simulated device.
	Device nicsim.Config
	// Clock is the timeline switchover latencies are measured on (nil selects
	// the process wall clock). Chaos runs inject a virtual clock here so the
	// control plane is fully deterministic.
	Clock vclock.Clock
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 2048
	}
	switch {
	case o.Hysteresis == 0:
		o.Hysteresis = 0.10
	case o.Hysteresis < 0:
		o.Hysteresis = 0
	}
	if o.MinShimSamples == 0 {
		o.MinShimSamples = 64
	}
	if o.MinWindow <= 0 {
		o.MinWindow = 256
	}
	o.Clock = vclock.Or(o.Clock)
	return o
}

// generation is one pinned interface configuration: a compilation result and
// its executable accessor table, tagged with a monotonically increasing
// sequence number (the switchover epoch).
type generation struct {
	seq uint64
	res *core.Result
	rt  *codegen.Runtime
	// softRT is the generation's all-software runtime, built lazily: packets
	// whose completion is lost to a device fault mid-switchover are delivered
	// through it instead of being dropped.
	softRT *codegen.Runtime
}

// soft returns the generation's software runtime, building it on first use.
func (g *generation) soft() *codegen.Runtime {
	if g.softRT == nil {
		g.softRT = codegen.NewSoftRuntime(g.res, softnic.Funcs())
	}
	return g.softRT
}

// pending is one packet received but not yet delivered: the epoch tag
// records which generation's layout its completion was serialized under.
// ts/seq are the packet's flight-recorder timestamp and sequence.
type pendingPkt struct {
	pkt []byte
	gen uint64
	ts  uint64
	seq uint32
}

// drainedPkt is a completion consumed during a switchover drain, parked for
// delivery on the next Poll together with the runtime of its generation.
// The flight timestamp/sequence ride along so the eventual delivery still
// reports the full DMA→deliver latency (including the park).
type drainedPkt struct {
	pkt  []byte
	cmpt []byte
	rt   *codegen.Runtime
	ts   uint64
	seq  uint32
}

// Engine is an evolvable driver datapath: the static Open driver plus the
// renegotiation control plane.
type Engine struct {
	model  *nic.Model
	intent *core.Intent
	copts  core.CompileOptions
	opts   Options

	dev   *nicsim.Device
	shims *softnic.ShimStats

	mu      sync.Mutex
	active  *generation
	pending []pendingPkt
	drained []drainedPkt
	// window counts delivered packets since the last renegotiation check.
	window int

	// reads counts per-semantic application reads (the live feature mix).
	// The counters are pre-created for every intent semantic so NoteRead is
	// lock-free (it runs inside the application's Poll handler).
	reads     map[semantics.Name]*obs.Counter
	lastReads map[semantics.Name]uint64
	lastDeliv uint64
	delivered obs.Counter

	gen atomic.Uint64

	// Control-plane counters.
	renegotiations obs.Counter // re-solve evaluations
	switchovers    obs.Counter // completed generation swaps
	rollbacks      obs.Counter // begun switchovers reverted
	unsat          obs.Counter // re-solves rejected as unsatisfiable
	switchDrops    obs.Counter // packets lost across a switchover (must be 0)
	packetsDrained obs.Counter // completions drained under the old layout
	softParked     obs.Counter // drain shortfalls re-delivered in software
	applyRetries   obs.Counter // NAKed ApplyConfig bursts retried
	switchLatency  *obs.Histogram

	// Flight recorder: fr is the engine's always-armed recorder, fq its
	// "q0" event ring (shared with the device); rxSeq numbers received
	// packets 1-based like the device's DMA-emit sequence. curTS/curSeq are
	// the flight context of the packet currently being delivered, valid
	// only inside a Poll handler (e.mu held). dmaToPoll/pollToDeliver are
	// the per-stage completion latencies derived from matched timestamps.
	fr            *flight.Recorder
	fq            *flight.Queue
	rxSeq         uint32
	curTS         uint64
	curSeq        uint32
	dmaToPoll     *obs.Histogram
	pollToDeliver *obs.Histogram

	lastDiff *core.Diff
	lastErr  error
}

// New compiles the intent for the model (static costs, like a pinned Open),
// programs a simulated device, and arms the control plane. The SoftNIC shims
// are instrumented so their measured per-call cost feeds later re-solves.
func New(model *nic.Model, intent *core.Intent, copts core.CompileOptions, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	res, err := model.Compile(intent, copts)
	if err != nil {
		return nil, err
	}
	dev, err := nicsim.New(model, opts.Device)
	if err != nil {
		return nil, err
	}
	if err := dev.ApplyConfig(res.Config); err != nil {
		return nil, err
	}
	e := &Engine{
		model:         model,
		intent:        intent,
		copts:         copts,
		opts:          opts,
		dev:           dev,
		shims:         softnic.NewShimStats(nil),
		reads:         make(map[semantics.Name]*obs.Counter, len(intent.Fields)),
		lastReads:     make(map[semantics.Name]uint64, len(intent.Fields)),
		switchLatency: obs.NewHistogram(),
		fr:            flight.NewRecorder(flight.Config{}),
		dmaToPoll:     obs.NewHistogram(),
		pollToDeliver: obs.NewHistogram(),
	}
	e.fq = e.fr.Queue("q0")
	dev.AttachFlight(e.fq)
	e.shims.AttachFlight(e.fq)
	for _, f := range intent.Fields {
		e.reads[f.Semantic] = &obs.Counter{}
	}
	e.active = &generation{
		seq: 0,
		res: res,
		rt:  codegen.NewRuntime(res, softnic.InstrumentedFuncs(e.shims)),
	}
	return e, nil
}

// Device exposes the simulated device (counters, registers).
func (e *Engine) Device() *nicsim.Device { return e.dev }

// Result returns the active generation's compilation result.
func (e *Engine) Result() *core.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.active.res
}

// Runtime returns the active generation's accessor runtime.
func (e *Engine) Runtime() *codegen.Runtime {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.active.rt
}

// Generation returns the current switchover epoch (0 until the first swap).
func (e *Engine) Generation() uint64 { return e.gen.Load() }

// LastDiff returns the core.Diff change report of the most recent
// switchover (nil before the first one).
func (e *Engine) LastDiff() *core.Diff {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastDiff
}

// LastErr returns the most recent renegotiation failure (unsat re-solve or
// rolled-back switchover), nil when the last evaluation succeeded.
func (e *Engine) LastErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastErr
}

// NoteRead records one application read of a semantic — the live feature
// mix. Safe to call from inside a Poll handler (lock-free).
func (e *Engine) NoteRead(s semantics.Name) {
	if c := e.reads[s]; c != nil {
		c.Inc()
	}
}

// Rx delivers one packet to the device, tagging it with the current
// generation epoch. It returns false when the completion ring is full.
func (e *Engine) Rx(packet []byte) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.dev.RxPacket(packet) {
		return false
	}
	e.rxSeq++
	e.pending = append(e.pending, pendingPkt{pkt: packet, gen: e.gen.Load(), ts: e.fq.NowIfSampled(e.rxSeq), seq: e.rxSeq})
	return true
}

// PendingCount reports how many accepted packets await delivery — the
// chaos harness's liveness probe (a packet that stays pending with an empty
// completion ring and a healthy device is a stuck delivery).
func (e *Engine) PendingCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending) + len(e.drained)
}

// Flight returns the engine's flight recorder (never nil).
func (e *Engine) Flight() *flight.Recorder { return e.fr }

// FlightQueue returns the engine's "q0" event ring.
func (e *Engine) FlightQueue() *flight.Queue { return e.fq }

// FlightCtx returns the flight context — event ring, Poll timestamp and
// packet sequence — of the packet currently being delivered. Only
// meaningful inside a Poll handler (where e.mu is held).
func (e *Engine) FlightCtx() (*flight.Queue, uint64, uint32) { return e.fq, e.curTS, e.curSeq }

// setFlightCtx arms FlightCtx for the packet about to be delivered. The
// timestamp is zeroed for unsampled packets (zero Rx stamp) so per-read
// events stay inside the recorder's hot-path budget (flight.SamplePeriod).
func (e *Engine) setFlightCtx(t0, rxTS uint64, seq uint32) {
	if rxTS != 0 {
		e.curTS, e.curSeq = t0, seq
	} else {
		e.curTS, e.curSeq = 0, seq
	}
}

// noteDelivered derives one delivered packet's per-stage latencies from its
// flight timestamps and emits the deliver event carrying both intervals
// (DMA→poll, DMA→deliver). No-op when the packet was off the sampling grid
// or the recorder was off at Rx or Poll time (zero timestamps).
func (e *Engine) noteDelivered(t0, rxTS uint64, seq uint32) {
	if t0 == 0 || rxTS == 0 {
		return
	}
	t1 := e.fq.Now()
	e.dmaToPoll.Observe(t0 - rxTS)
	e.pollToDeliver.Observe(t1 - t0)
	e.fq.RecordT(t1, flight.EvDeliver, seq, t0-rxTS, t1-rxTS)
}

// PollFunc receives one delivered packet: its bytes, its completion record,
// and the accessor runtime of the generation the completion was serialized
// under (reads through an older runtime stay correct across a switchover).
type PollFunc func(pkt, cmpt []byte, rt *codegen.Runtime)

// Poll delivers completed packets — parked switchover-drained completions
// first (under their own generation's runtime), then live ring entries —
// and, when the renegotiation interval has elapsed, evaluates a re-solve.
func (e *Engine) Poll(h PollFunc) int {
	e.mu.Lock()
	n := 0
	t0 := e.fq.Now()
	for _, d := range e.drained {
		e.setFlightCtx(t0, d.ts, d.seq)
		h(d.pkt, d.cmpt, d.rt)
		e.noteDelivered(t0, d.ts, d.seq)
		n++
	}
	e.drained = e.drained[:0]
	rt := e.active.rt
	for len(e.pending) > 0 {
		p := e.pending[0]
		e.setFlightCtx(t0, p.ts, p.seq)
		if !e.dev.CmptRing.Consume(func(cmpt []byte) {
			h(p.pkt, cmpt, rt)
		}) {
			break
		}
		e.noteDelivered(t0, p.ts, p.seq)
		e.pending = e.pending[1:]
		n++
	}
	e.window += n
	e.delivered.Add(uint64(n))
	due := e.window >= e.opts.Interval
	e.mu.Unlock()
	if due {
		e.Renegotiate()
	}
	return n
}

// windowMix computes the expected per-packet read frequency of every intent
// semantic over the observation window since the last check, then resets
// the window baseline. Caller holds e.mu.
func (e *Engine) windowMix() (map[semantics.Name]float64, int) {
	deliv := e.delivered.Load()
	dn := deliv - e.lastDeliv
	mix := make(map[semantics.Name]float64, len(e.reads))
	for s, c := range e.reads {
		cur := c.Load()
		if dn > 0 {
			mix[s] = float64(cur-e.lastReads[s]) / float64(dn)
		} else {
			mix[s] = 0
		}
		e.lastReads[s] = cur
	}
	e.lastDeliv = deliv
	return mix, int(dn)
}

// liveCosts builds the runtime cost model: per-packet expected software
// cost of leaving s to a shim = (reads of s per delivered packet) × w(s),
// where w(s) is the measured mean ns/call when the shim has run often
// enough, the static registry cost otherwise. Infinite costs are never
// scaled: a semantic with no software fallback stays unsatisfiable in
// software no matter how rarely it is read.
func (e *Engine) liveCosts(mix map[semantics.Name]float64) semantics.CostModel {
	base := semantics.RegistryCosts(semantics.Default)
	shimCosts := e.shims.Snapshot()
	return func(s semantics.Name) float64 {
		w := base(s)
		if math.IsInf(w, 1) {
			return w
		}
		if sc, ok := shimCosts[s]; ok && sc.Calls >= e.opts.MinShimSamples {
			w = float64(sc.Nanos) / float64(sc.Calls)
		}
		f, ok := mix[s]
		if !ok {
			return w // outside the intent: keep the static model
		}
		return f * w
	}
}

// Renegotiate evaluates one re-solve immediately (Poll calls this every
// Interval delivered packets). It returns whether a switchover completed and
// the failure, if any, that forced a rollback or rejected the re-solve.
func (e *Engine) Renegotiate() (switched bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.window = 0
	if int(e.delivered.Load()-e.lastDeliv) < e.opts.MinWindow {
		// Too few observations to trust the mix; keep accumulating into the
		// same window instead of resetting the baseline.
		return false, nil
	}
	mix, _ := e.windowMix()
	e.renegotiations.Inc()
	e.lastErr = nil

	costs := e.liveCosts(mix)
	if e.opts.Costs != nil {
		costs = e.opts.Costs(costs)
	}
	copts := e.copts
	copts.Select.Costs = costs
	if e.opts.Alpha != 0 {
		copts.Select.Alpha = e.opts.Alpha
	}
	next, err := e.model.Compile(e.intent, copts)
	if err != nil {
		// Unsatisfiable under the live mix (or a broken description): stay
		// on the active generation.
		e.unsat.Inc()
		e.lastErr = err
		return false, err
	}
	if next.Selected.Path.ID == e.active.res.Selected.Path.ID {
		return false, nil
	}
	// Score the active path under the same live model so the comparison is
	// apples-to-apples (path IDs are deterministic across compiles).
	var activeTotal float64 = math.Inf(1)
	for _, s := range next.Scored {
		if s.Path.ID == e.active.res.Selected.Path.ID {
			activeTotal = s.Total
			break
		}
	}
	if next.Selected.Total >= activeTotal*(1-e.opts.Hysteresis) {
		return false, nil
	}
	if err := e.switchover(next); err != nil {
		e.lastErr = err
		return false, err
	}
	return true, nil
}

// switchover performs the generation swap. Caller holds e.mu — which IS the
// quiesce step: Rx and Poll serialize on the same mutex, so no packet can
// enter the device and no completion can be consumed concurrently.
func (e *Engine) switchover(next *core.Result) error {
	start := e.opts.Clock.Now()
	oldGen := e.gen.Load()
	old := e.active

	// QUIESCE is holding e.mu (Rx and Poll serialize on it); the event marks
	// when the producer stopped. Switchover events carry the generation in
	// arg1 so a trace shows which epoch each phase belongs to.
	e.fq.Record(flight.EvQuiesce, uint32(oldGen), uint64(len(e.pending)), oldGen)

	// DRAIN: consume every completion still in the ring under the old
	// layout, parking (packet, completion copy, old runtime) for delivery on
	// the next Poll. The epoch tag on each in-flight packet must match the
	// old generation — a mismatch would mean a completion crossed the swap
	// boundary, i.e. a lost or corrupted packet.
	drained := 0
	for len(e.pending) > 0 {
		p := e.pending[0]
		ok := e.dev.CmptRing.Consume(func(cmpt []byte) {
			e.drained = append(e.drained, drainedPkt{
				pkt:  p.pkt,
				cmpt: append([]byte(nil), cmpt...),
				rt:   old.rt,
				ts:   p.ts,
				seq:  p.seq,
			})
		})
		if !ok {
			// Pending packets with no completion left in the ring: a faulty
			// device lost their records. Park them for software delivery
			// under the old generation's soft runtime — the switchover stays
			// zero-loss even when completions vanish mid-drain.
			for _, q := range e.pending {
				e.drained = append(e.drained, drainedPkt{pkt: q.pkt, rt: old.soft(), ts: q.ts, seq: q.seq})
				e.softParked.Inc()
			}
			e.pending = e.pending[:0]
			break
		}
		if p.gen != oldGen {
			e.switchDrops.Inc()
		}
		e.pending = e.pending[1:]
		drained++
	}
	e.packetsDrained.Add(uint64(drained))
	e.fq.Record(flight.EvDrain, uint32(oldGen), uint64(drained), oldGen)

	// apply pushes a register-write burst with bounded retries (the shared
	// retry discipline, defaults matching the old ×4 schedule): a faulty
	// control channel may NAK individual bursts, and ApplyConfig fails
	// atomically, so retrying is always safe.
	apply := func(cfg []core.Constraint) error {
		return retry.Policy{
			OnError: func(int, error) { e.applyRetries.Inc() },
		}.Do(func() error { return e.dev.ApplyConfig(cfg) })
	}

	rollback := func(cause error) error {
		// ROLLBACK: re-apply the old generation's configuration (with the
		// same bounded retries — a rollback must survive the very faults
		// that triggered it). The old runtime was never unpublished, so the
		// datapath is intact either way; re-applying the config restores the
		// device context in case the failed apply half-programmed it.
		if rerr := apply(old.res.Config); rerr != nil {
			cause = fmt.Errorf("%w (rollback reapply also failed: %v)", cause, rerr)
		}
		e.rollbacks.Inc()
		e.fq.Record(flight.EvRollback, uint32(oldGen), uint64(next.Selected.Path.ID), oldGen)
		// A rolled-back switchover is a postmortem moment: the quiesce/drain/
		// apply events that led here are still in the ring.
		e.fr.Postmortem("switchover-rollback")
		return fmt.Errorf("evolve: switchover to path %d rolled back: %w",
			next.Selected.Path.ID, cause)
	}

	// ADMISSION: the PreSwitch hook may veto the new interface.
	if e.opts.PreSwitch != nil {
		if err := e.opts.PreSwitch(next); err != nil {
			return rollback(err)
		}
	}
	// APPLY: push the new context constraints over the control channel.
	e.fq.Record(flight.EvApply, uint32(oldGen+1), uint64(len(next.Config)), oldGen+1)
	if err := apply(next.Config); err != nil {
		return rollback(err)
	}
	// VERIFY: the device must now resolve exactly the selected path.
	ap, err := e.dev.ActivePath()
	if err != nil {
		return rollback(err)
	}
	if ap.ID != next.Selected.Path.ID {
		return rollback(fmt.Errorf("device resolved path %d, want %d", ap.ID, next.Selected.Path.ID))
	}
	e.fq.Record(flight.EvVerify, uint32(oldGen+1), uint64(ap.ID), oldGen+1)
	// SWAP: publish the new generation atomically (under e.mu) and record
	// the change report.
	e.active = &generation{
		seq: oldGen + 1,
		res: next,
		rt:  codegen.NewRuntime(next, softnic.InstrumentedFuncs(e.shims)),
	}
	e.gen.Store(oldGen + 1)
	if d, err := core.DiffResults(old.res, next); err == nil {
		e.lastDiff = d
	}
	e.switchovers.Inc()
	e.switchLatency.Observe(e.opts.Clock.Now() - start)
	e.fq.Record(flight.EvSwap, uint32(oldGen+1), uint64(next.Selected.Path.ID), oldGen+1)
	return nil
}

// Stats is a point-in-time snapshot of the control-plane counters.
type Stats struct {
	// Generation is the current switchover epoch.
	Generation uint64
	// Renegotiations counts re-solve evaluations; Switchovers completed
	// generation swaps; Rollbacks begun-then-reverted switchovers; Unsat
	// re-solves rejected as unsatisfiable under the live mix.
	Renegotiations uint64
	Switchovers    uint64
	Rollbacks      uint64
	Unsat          uint64
	// SwitchDrops counts packets lost across a switchover — zero by
	// construction; any other value is a bug.
	SwitchDrops uint64
	// PacketsDrained counts completions consumed under the old layout
	// during switchover drains.
	PacketsDrained uint64
	// SoftParked counts packets whose completion a faulty device lost
	// mid-switchover and that were re-delivered through the old generation's
	// software runtime instead of being dropped.
	SoftParked uint64
	// ApplyRetries counts NAKed register-write bursts that were retried
	// during switchover applies and rollbacks.
	ApplyRetries uint64
	// Delivered counts packets handed to Poll handlers over the engine's
	// lifetime (all generations).
	Delivered uint64
	// SwitchLatencyP50/P99 are nanosecond quantiles of the quiesce→swap
	// interval; zero until the first switchover.
	SwitchLatencyP50 uint64
	SwitchLatencyP99 uint64
	// Reads is the cumulative per-semantic application read mix.
	Reads map[semantics.Name]uint64
}

// Stats snapshots the control-plane counters. Safe to call concurrently
// with the datapath.
func (e *Engine) Stats() Stats {
	st := Stats{
		Generation:     e.gen.Load(),
		Renegotiations: e.renegotiations.Load(),
		Switchovers:    e.switchovers.Load(),
		Rollbacks:      e.rollbacks.Load(),
		Unsat:          e.unsat.Load(),
		SwitchDrops:    e.switchDrops.Load(),
		PacketsDrained: e.packetsDrained.Load(),
		SoftParked:     e.softParked.Load(),
		ApplyRetries:   e.applyRetries.Load(),
		Delivered:      e.delivered.Load(),
		Reads:          make(map[semantics.Name]uint64, len(e.reads)),
	}
	if e.switchLatency.Count() > 0 {
		st.SwitchLatencyP50 = e.switchLatency.Quantile(0.50)
		st.SwitchLatencyP99 = e.switchLatency.Quantile(0.99)
	}
	for s, c := range e.reads {
		if n := c.Load(); n > 0 {
			st.Reads[s] = n
		}
	}
	return st
}

// ShimStats exposes the instrumented shim cost attribution (the measured
// w(s) feeding the re-solves).
func (e *Engine) ShimStats() *softnic.ShimStats { return e.shims }

// RegisterMetrics exposes the control-plane counters, the switchover
// latency histogram, and the underlying device counters on an obs registry.
func (e *Engine) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	base := append([]obs.Label{obs.L("nic", e.model.Name)}, labels...)
	reg.AttachCounter("opendesc_evolve_renegotiations_total", "layout re-solve evaluations", &e.renegotiations, base...)
	reg.AttachCounter("opendesc_evolve_switchovers_total", "completed generation switchovers", &e.switchovers, base...)
	reg.AttachCounter("opendesc_evolve_rollbacks_total", "switchovers rolled back", &e.rollbacks, base...)
	reg.AttachCounter("opendesc_evolve_unsat_total", "re-solves rejected as unsatisfiable", &e.unsat, base...)
	reg.AttachCounter("opendesc_evolve_switch_drops_total", "packets lost across switchovers (must be 0)", &e.switchDrops, base...)
	reg.AttachCounter("opendesc_evolve_packets_drained_total", "completions drained under the old layout", &e.packetsDrained, base...)
	reg.AttachCounter("opendesc_evolve_soft_parked_total", "mid-switchover lost completions re-delivered in software", &e.softParked, base...)
	reg.AttachCounter("opendesc_evolve_apply_retries_total", "NAKed register-write bursts retried during switchover", &e.applyRetries, base...)
	reg.AttachCounter("opendesc_evolve_delivered_total", "packets delivered to Poll handlers", &e.delivered, base...)
	reg.AttachHistogram("opendesc_evolve_switch_latency_ns", "quiesce-to-swap switchover latency", e.switchLatency, base...)
	reg.AttachHistogram("opendesc_flight_dma_to_poll_ns", "DMA emit to Poll pickup latency (flight recorder)", e.dmaToPoll, base...)
	reg.AttachHistogram("opendesc_flight_poll_to_deliver_ns", "Poll pickup to handler return latency (flight recorder)", e.pollToDeliver, base...)
	reg.GaugeFunc("opendesc_evolve_generation", "current interface generation epoch", func() int64 { return int64(e.gen.Load()) }, base...)
	for s, c := range e.reads {
		l := append(append([]obs.Label{}, base...), obs.L("semantic", string(s)))
		reg.AttachCounter("opendesc_evolve_reads_total", "application metadata reads per semantic", c, l...)
	}
	e.dev.RegisterMetrics(reg, labels...)
}
