package evolve

import (
	"errors"
	"math"
	"strings"
	"testing"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/obs"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

// testIntent is the Fig. 6 tension: e1000e can carry the RSS hash or the
// ip_id+checksum pair, never both, so one of the two is always a shim and
// the right choice depends on which the application actually reads.
func testIntent(t *testing.T) *core.Intent {
	t.Helper()
	it, err := core.IntentFromSemantics("evolve_test", semantics.Default,
		semantics.RSS, semantics.IPChecksum, semantics.VLAN, semantics.PktLen)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

// staticOptions force the static registry costs (MinShimSamples too high to
// ever trust wall-clock shim measurements), making tests deterministic.
func staticOptions() Options {
	return Options{
		Interval:       1 << 30, // renegotiate only when the test says so
		MinWindow:      64,
		MinShimSamples: math.MaxUint64,
	}
}

func newTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := New(nic.MustLoad("e1000e"), testIntent(t), core.CompileOptions{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// drive pushes n packets through the engine, reading the given semantics on
// every packet (recording the mix), and returns how many were delivered.
func drive(t *testing.T, e *Engine, tr *workload.Trace, n int, read ...semantics.Name) int {
	t.Helper()
	delivered := 0
	for i := 0; i < n; i++ {
		p := tr.Packets[i%len(tr.Packets)]
		if !e.Rx(p) {
			t.Fatalf("rx stalled at packet %d", i)
		}
		delivered += e.Poll(func(pkt, cmpt []byte, rt *codegen.Runtime) {
			for _, s := range read {
				if _, err := rt.Read(s, cmpt, pkt); err != nil {
					t.Fatalf("read %s: %v", s, err)
				}
				e.NoteRead(s)
			}
		})
	}
	return delivered
}

func trace(t *testing.T) *workload.Trace {
	t.Helper()
	spec := workload.DefaultSpec()
	spec.Packets = 256
	tr, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestInitialGeneration pins the static compile: under registry costs the
// csum branch wins (w(rss)=18 < w(ip_checksum)=26) and no switchover has
// happened.
func TestInitialGeneration(t *testing.T) {
	e := newTestEngine(t, staticOptions())
	if got := e.Generation(); got != 0 {
		t.Fatalf("generation = %d, want 0", got)
	}
	res := e.Result()
	if res.HardwareSet().Has(semantics.RSS) {
		t.Fatalf("static compile should leave rss to software, got hardware set %s", res.HardwareSet())
	}
	if !res.HardwareSet().Has(semantics.IPChecksum) {
		t.Fatalf("static compile should carry ip_checksum in hardware, got %s", res.HardwareSet())
	}
}

// TestConvergesToReadMix is the core loop: a hash-heavy read mix must move
// the interface to the RSS-carrying path, and a later checksum-heavy mix
// must move it back — with zero loss and a change report each way.
func TestConvergesToReadMix(t *testing.T) {
	e := newTestEngine(t, staticOptions())
	tr := trace(t)

	// Phase A: the application reads rss on every packet; ip_checksum never.
	drive(t, e, tr, 256, semantics.RSS, semantics.VLAN, semantics.PktLen)
	switched, err := e.Renegotiate()
	if err != nil {
		t.Fatalf("renegotiate: %v", err)
	}
	if !switched {
		t.Fatal("hash-heavy mix should trigger a switchover to the rss path")
	}
	if got := e.Generation(); got != 1 {
		t.Fatalf("generation = %d, want 1", got)
	}
	if !e.Result().HardwareSet().Has(semantics.RSS) {
		t.Fatalf("after switchover rss should be hardware, got %s", e.Result().HardwareSet())
	}
	d := e.LastDiff()
	if d == nil {
		t.Fatal("switchover should record a diff")
	}
	var toHW, toSW bool
	for _, c := range d.Changes {
		if c.Semantic == semantics.RSS && c.Kind == core.ChangeToHardware {
			toHW = true
		}
		if c.Semantic == semantics.IPChecksum && c.Kind == core.ChangeToSoftware {
			toSW = true
		}
	}
	if !toHW || !toSW {
		t.Fatalf("diff should report rss software→hardware and ip_checksum hardware→software:\n%s", d)
	}

	// Phase B: the mix flips to checksum-heavy; the engine must flip back.
	drive(t, e, tr, 256, semantics.IPChecksum, semantics.VLAN, semantics.PktLen)
	switched, err = e.Renegotiate()
	if err != nil {
		t.Fatalf("renegotiate: %v", err)
	}
	if !switched {
		t.Fatal("csum-heavy mix should trigger a switchover back to the csum path")
	}
	st := e.Stats()
	if st.Generation != 2 || st.Switchovers != 2 {
		t.Fatalf("stats = %+v, want generation 2 with 2 switchovers", st)
	}
	if st.SwitchDrops != 0 {
		t.Fatalf("switch drops = %d, want exactly 0", st.SwitchDrops)
	}
	if st.Rollbacks != 0 || st.Unsat != 0 {
		t.Fatalf("unexpected failures in stats: %+v", st)
	}
	if rx, drops := e.Device().Stats().RxPackets, e.Device().Stats().Drops; rx != 512 || drops != 0 {
		t.Fatalf("device rx=%d drops=%d, want 512/0", rx, drops)
	}
}

// TestStableMixDoesNotFlap: when the active path already serves the mix, a
// renegotiation must be a no-op (hysteresis and plain dominance).
func TestStableMixDoesNotFlap(t *testing.T) {
	e := newTestEngine(t, staticOptions())
	tr := trace(t)
	drive(t, e, tr, 256, semantics.IPChecksum, semantics.VLAN, semantics.PktLen)
	switched, err := e.Renegotiate()
	if err != nil {
		t.Fatal(err)
	}
	if switched {
		t.Fatal("csum-heavy mix on the csum path must not switch")
	}
	if st := e.Stats(); st.Renegotiations != 1 || st.Switchovers != 0 {
		t.Fatalf("stats = %+v, want 1 evaluation and 0 switchovers", st)
	}
}

// TestMinWindowGuard: a renegotiation with too few observed packets must
// neither evaluate nor discard the accumulating window.
func TestMinWindowGuard(t *testing.T) {
	e := newTestEngine(t, staticOptions())
	tr := trace(t)
	drive(t, e, tr, 32, semantics.RSS) // below MinWindow=64
	if switched, err := e.Renegotiate(); switched || err != nil {
		t.Fatalf("short window: switched=%v err=%v", switched, err)
	}
	if st := e.Stats(); st.Renegotiations != 0 {
		t.Fatalf("short window must not count as an evaluation: %+v", st)
	}
	// The earlier observations still count once the window is big enough.
	drive(t, e, tr, 40, semantics.RSS)
	if switched, err := e.Renegotiate(); !switched || err != nil {
		t.Fatalf("accumulated window should switch: switched=%v err=%v", switched, err)
	}
}

// TestDrainUnderOldLayout exercises the switchover while the completion
// ring is non-empty: in-flight completions must be drained under the old
// generation's layout and delivered on the next Poll through the old
// runtime, with correct values on both sides of the epoch.
func TestDrainUnderOldLayout(t *testing.T) {
	e := newTestEngine(t, staticOptions())
	tr := trace(t)
	golden := softnic.Funcs()

	// Build a hash-heavy window, then park 10 packets in the ring without
	// polling them.
	drive(t, e, tr, 128, semantics.RSS, semantics.VLAN)
	const parked = 10
	for i := 0; i < parked; i++ {
		if !e.Rx(tr.Packets[i]) {
			t.Fatalf("rx stalled at parked packet %d", i)
		}
	}
	if occ := e.Device().CmptRing.Occupancy(); occ != parked {
		t.Fatalf("ring occupancy = %d, want %d", occ, parked)
	}
	switched, err := e.Renegotiate()
	if err != nil || !switched {
		t.Fatalf("renegotiate: switched=%v err=%v", switched, err)
	}
	st := e.Stats()
	if st.PacketsDrained != parked {
		t.Fatalf("packets drained = %d, want %d", st.PacketsDrained, parked)
	}
	if st.SwitchDrops != 0 {
		t.Fatalf("switch drops = %d, want 0", st.SwitchDrops)
	}

	// The parked completions were serialized under the OLD (csum) layout:
	// the old runtime must still read the hardware checksum out of them.
	oldDelivered := 0
	n := e.Poll(func(pkt, cmpt []byte, rt *codegen.Runtime) {
		r := rt.Reader(semantics.IPChecksum)
		if r == nil || !r.Hardware {
			t.Fatal("drained completion must resolve ip_checksum in hardware via the old runtime")
		}
		got, err := rt.Read(semantics.IPChecksum, cmpt, pkt)
		if err != nil {
			t.Fatal(err)
		}
		if want := golden[semantics.IPChecksum](pkt) & 0xFFFF; got != want {
			t.Fatalf("drained ip_checksum = %#x, want %#x", got, want)
		}
		oldDelivered++
	})
	if n != parked || oldDelivered != parked {
		t.Fatalf("poll delivered %d (checked %d), want %d", n, oldDelivered, parked)
	}

	// Fresh traffic lands on the NEW layout: rss is now a hardware read.
	if !e.Rx(tr.Packets[0]) {
		t.Fatal("rx after switchover failed")
	}
	e.Poll(func(pkt, cmpt []byte, rt *codegen.Runtime) {
		r := rt.Reader(semantics.RSS)
		if r == nil || !r.Hardware {
			t.Fatal("post-switchover completions must serve rss from hardware")
		}
		got, err := rt.Read(semantics.RSS, cmpt, pkt)
		if err != nil {
			t.Fatal(err)
		}
		if want := golden[semantics.RSS](pkt); got != want {
			t.Fatalf("post-switchover rss = %#x, want %#x", got, want)
		}
	})
}

// TestRollbackOnRejectedSwitch injects a PreSwitch failure: the begun
// switchover must be reverted, the old generation must stay active, and the
// datapath must keep working afterwards.
func TestRollbackOnRejectedSwitch(t *testing.T) {
	opts := staticOptions()
	veto := errors.New("admission veto")
	opts.PreSwitch = func(next *core.Result) error { return veto }
	e := newTestEngine(t, opts)
	tr := trace(t)

	drive(t, e, tr, 128, semantics.RSS)
	switched, err := e.Renegotiate()
	if switched {
		t.Fatal("vetoed switchover must not complete")
	}
	if !errors.Is(err, veto) {
		t.Fatalf("err = %v, want the injected veto", err)
	}
	st := e.Stats()
	if st.Rollbacks != 1 || st.Generation != 0 || st.Switchovers != 0 {
		t.Fatalf("stats = %+v, want 1 rollback at generation 0", st)
	}
	if st.SwitchDrops != 0 {
		t.Fatalf("switch drops = %d, want 0 across rollback", st.SwitchDrops)
	}
	// The device must still resolve the old path and serve traffic.
	ap, err := e.Device().ActivePath()
	if err != nil {
		t.Fatal(err)
	}
	if ap.ID != e.Result().Selected.Path.ID {
		t.Fatalf("device on path %d, active generation selects %d", ap.ID, e.Result().Selected.Path.ID)
	}
	if got := drive(t, e, tr, 64, semantics.IPChecksum); got != 64 {
		t.Fatalf("post-rollback delivery = %d, want 64", got)
	}
}

// TestUnsatRenegotiationKeepsRunning injects an unsatisfiable live cost
// model (every software fallback infinitely expensive): the re-solve must
// be rejected, counted, and the active interface left untouched.
func TestUnsatRenegotiationKeepsRunning(t *testing.T) {
	opts := staticOptions()
	opts.Costs = func(live semantics.CostModel) semantics.CostModel {
		return func(semantics.Name) float64 { return math.Inf(1) }
	}
	e := newTestEngine(t, opts)
	tr := trace(t)
	drive(t, e, tr, 128, semantics.RSS)
	switched, err := e.Renegotiate()
	if switched {
		t.Fatal("unsat re-solve must not switch")
	}
	var unsat *core.UnsatisfiableError
	if !errors.As(err, &unsat) {
		t.Fatalf("err = %v, want an UnsatisfiableError", err)
	}
	st := e.Stats()
	if st.Unsat != 1 || st.Generation != 0 || st.Rollbacks != 0 {
		t.Fatalf("stats = %+v, want 1 unsat rejection at generation 0", st)
	}
	if e.LastErr() == nil {
		t.Fatal("LastErr should surface the unsat rejection")
	}
	if got := drive(t, e, tr, 64, semantics.RSS); got != 64 {
		t.Fatalf("post-unsat delivery = %d, want 64", got)
	}
}

// TestAutoRenegotiateOnInterval: Poll itself must trigger the evaluation
// every Interval delivered packets.
func TestAutoRenegotiateOnInterval(t *testing.T) {
	opts := staticOptions()
	opts.Interval = 128
	e := newTestEngine(t, opts)
	tr := trace(t)
	drive(t, e, tr, 300, semantics.RSS, semantics.VLAN, semantics.PktLen)
	st := e.Stats()
	if st.Renegotiations == 0 {
		t.Fatal("Poll should have evaluated a renegotiation after Interval packets")
	}
	if st.Generation == 0 || st.Switchovers == 0 {
		t.Fatalf("hash-heavy interval traffic should have switched: %+v", st)
	}
	if st.SwitchDrops != 0 {
		t.Fatalf("switch drops = %d, want 0", st.SwitchDrops)
	}
}

// TestMeasuredCostsFeedResolve: with MinShimSamples low, the re-solve runs
// off wall-clock shim measurements; the engine must still converge to the
// path carrying the hot semantic (direction is measurement-independent:
// reading rss 100% of the time vs ip_checksum never).
func TestMeasuredCostsFeedResolve(t *testing.T) {
	opts := staticOptions()
	opts.MinShimSamples = 8
	e := newTestEngine(t, opts)
	tr := trace(t)
	drive(t, e, tr, 256, semantics.RSS, semantics.VLAN, semantics.PktLen)
	if cost := e.ShimStats().MeasuredCost(semantics.RSS); cost <= 0 {
		t.Fatalf("rss shim measured cost = %v, want > 0 after 256 soft reads", cost)
	}
	if _, err := e.Renegotiate(); err != nil {
		t.Fatal(err)
	}
	if !e.Result().HardwareSet().Has(semantics.RSS) {
		t.Fatalf("measured-cost re-solve should still move rss to hardware, got %s",
			e.Result().HardwareSet())
	}
}

// TestRegisterMetrics: the control-plane series must land on the registry.
func TestRegisterMetrics(t *testing.T) {
	e := newTestEngine(t, staticOptions())
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg, obs.L("queue", "0"))
	table := reg.Table()
	for _, want := range []string{
		"opendesc_evolve_renegotiations_total",
		"opendesc_evolve_switchovers_total",
		"opendesc_evolve_rollbacks_total",
		"opendesc_evolve_switch_drops_total",
		"opendesc_evolve_packets_drained_total",
		"opendesc_evolve_generation",
		"opendesc_evolve_reads_total",
		"opendesc_dev_rx_packets_total",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("registry table missing %s", want)
		}
	}
}
