package evolve

import (
	"math"
	"testing"

	"opendesc/internal/semantics"
)

func TestMixTrackerWindowAndWeights(t *testing.T) {
	mt := NewMixTracker([][]semantics.Name{
		{semantics.RSS, semantics.VLAN},
		{semantics.PktLen},
	})
	for i := 0; i < 100; i++ {
		mt.NoteDelivered(0, 1)
		mt.NoteRead(0, semantics.RSS)
		if i%2 == 0 {
			mt.NoteRead(0, semantics.VLAN)
		}
	}
	for i := 0; i < 300; i++ {
		mt.NoteDelivered(1, 1)
		mt.NoteRead(1, semantics.PktLen)
	}
	// Reads outside the tenant's intent must be ignored, not tracked.
	mt.NoteRead(0, semantics.KVKey)

	mix, n := mt.Window(0)
	if n != 100 {
		t.Fatalf("window packets = %d, want 100", n)
	}
	if mix[semantics.RSS] != 1.0 || mix[semantics.VLAN] != 0.5 {
		t.Errorf("mix = %v, want rss=1.0 vlan=0.5", mix)
	}
	if _, ok := mix[semantics.KVKey]; ok {
		t.Error("untracked semantic leaked into the window")
	}
	// The window resets: an immediate second close sees zero packets.
	if _, n = mt.Window(0); n != 0 {
		t.Errorf("second window saw %d packets, want 0", n)
	}

	w := mt.Weights()
	if math.Abs(w[0]-0.25) > 1e-9 || math.Abs(w[1]-0.75) > 1e-9 {
		t.Errorf("weights = %v, want [0.25 0.75]", w)
	}
	if mt.TotalDelivered() != 400 {
		t.Errorf("total delivered = %d, want 400", mt.TotalDelivered())
	}
}

func TestMixTrackerEqualWeightsBeforeTraffic(t *testing.T) {
	mt := NewMixTracker([][]semantics.Name{{semantics.RSS}, {semantics.VLAN}})
	w := mt.Weights()
	if w[0] != 1 || w[1] != 1 {
		t.Errorf("pre-traffic weights = %v, want all 1", w)
	}
}

func TestMixTrackerRetarget(t *testing.T) {
	mt := NewMixTracker([][]semantics.Name{{semantics.RSS}})
	mt.NoteDelivered(0, 10)
	mt.NoteRead(0, semantics.RSS)
	mt.Retarget(0, []semantics.Name{semantics.VLAN})
	if mt.Delivered(0) != 10 {
		t.Errorf("retarget lost the delivery count: %d", mt.Delivered(0))
	}
	mt.NoteRead(0, semantics.VLAN)
	mt.NoteDelivered(0, 2)
	mix, n := mt.Window(0)
	if n != 2 {
		t.Errorf("post-retarget window = %d packets, want 2", n)
	}
	if _, ok := mix[semantics.RSS]; ok {
		t.Error("old semantic survived the retarget")
	}
	if mix[semantics.VLAN] != 0.5 {
		t.Errorf("vlan freq = %v, want 0.5", mix[semantics.VLAN])
	}
}

func TestWeightedMixCosts(t *testing.T) {
	base := func(s semantics.Name) float64 {
		switch s {
		case semantics.RSS:
			return 18
		case semantics.Timestamp:
			return math.Inf(1)
		default:
			return 4
		}
	}
	costs := WeightedMixCosts(base, map[semantics.Name]float64{
		semantics.RSS:  0.5,
		semantics.VLAN: 0,
	})
	if got := costs(semantics.RSS); got != 9 {
		t.Errorf("rss cost = %v, want 9 (0.5 × 18)", got)
	}
	if got := costs(semantics.VLAN); got != 0 {
		t.Errorf("unread vlan cost = %v, want 0", got)
	}
	// Outside the window: static model.
	if got := costs(semantics.PktLen); got != 4 {
		t.Errorf("out-of-window cost = %v, want base 4", got)
	}
	// Infinite costs are never scaled down.
	if !math.IsInf(costs(semantics.Timestamp), 1) {
		t.Error("infinite cost was scaled")
	}
}

func TestJointPolicy(t *testing.T) {
	p := JointPolicy{}.WithDefaults()
	if p.Interval != 4096 || p.MinWindow != 256 || p.Hysteresis != 0.10 {
		t.Fatalf("defaults = %+v", p)
	}
	if p.Due(4095, 0) {
		t.Error("due before the interval elapsed")
	}
	if !p.Due(4096, 0) || !p.Due(9000, 4096) {
		t.Error("not due after the interval elapsed")
	}
	if p.Improves(100, 91) {
		t.Error("9% improvement must not clear a 10% hysteresis")
	}
	if !p.Improves(100, 89) {
		t.Error("11% improvement must clear a 10% hysteresis")
	}
	if q := (JointPolicy{Hysteresis: -1}).WithDefaults(); !q.Improves(100, 99.9) {
		t.Error("negative hysteresis should disable the margin")
	}
}
