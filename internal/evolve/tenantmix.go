package evolve

import (
	"math"

	"opendesc/internal/obs"
	"opendesc/internal/semantics"
)

// MixTracker observes per-tenant live read mixes for the multi-tenant
// serving plane — the N-tenant generalization of the Engine's single-intent
// window. Counters are pre-created per (tenant, semantic) at construction so
// NoteRead is lock-free on the delivery hot path; Window/Weights close
// observation windows from the control plane.
type MixTracker struct {
	tenants []*tenantMix
}

type tenantMix struct {
	reads     map[semantics.Name]*obs.Counter
	lastReads map[semantics.Name]uint64
	delivered obs.Counter
	lastDeliv uint64
}

// NewMixTracker builds a tracker for the given per-tenant intent semantics.
func NewMixTracker(intents [][]semantics.Name) *MixTracker {
	t := &MixTracker{tenants: make([]*tenantMix, len(intents))}
	for i, sems := range intents {
		tm := &tenantMix{
			reads:     make(map[semantics.Name]*obs.Counter, len(sems)),
			lastReads: make(map[semantics.Name]uint64, len(sems)),
		}
		for _, s := range sems {
			tm.reads[s] = &obs.Counter{}
		}
		t.tenants[i] = tm
	}
	return t
}

// Retarget replaces tenant i's observed semantic set after a renegotiation
// (new semantics start with a fresh counter; the window baseline resets).
func (t *MixTracker) Retarget(tenant int, sems []semantics.Name) {
	tm := &tenantMix{
		reads:     make(map[semantics.Name]*obs.Counter, len(sems)),
		lastReads: make(map[semantics.Name]uint64, len(sems)),
	}
	tm.delivered.Add(t.tenants[tenant].delivered.Load())
	tm.lastDeliv = tm.delivered.Load()
	for _, s := range sems {
		tm.reads[s] = &obs.Counter{}
	}
	t.tenants[tenant] = tm
}

// NoteRead records one application read of a semantic by a tenant. Reads of
// semantics outside the tenant's intent are ignored (no counter exists, by
// construction, so the hot path never mutates the map).
func (t *MixTracker) NoteRead(tenant int, s semantics.Name) {
	if c := t.tenants[tenant].reads[s]; c != nil {
		c.Inc()
	}
}

// NoteDelivered records n delivered packets for a tenant.
func (t *MixTracker) NoteDelivered(tenant, n int) {
	t.tenants[tenant].delivered.Add(uint64(n))
}

// Delivered returns a tenant's cumulative delivery count.
func (t *MixTracker) Delivered(tenant int) uint64 {
	return t.tenants[tenant].delivered.Load()
}

// TotalDelivered sums deliveries across tenants.
func (t *MixTracker) TotalDelivered() uint64 {
	var n uint64
	for i := range t.tenants {
		n += t.tenants[i].delivered.Load()
	}
	return n
}

// Window closes tenant i's observation window: it returns the per-packet
// read frequency of every intent semantic since the last Window call and
// the number of packets observed, then resets the baseline.
func (t *MixTracker) Window(tenant int) (map[semantics.Name]float64, int) {
	tm := t.tenants[tenant]
	deliv := tm.delivered.Load()
	dn := deliv - tm.lastDeliv
	mix := make(map[semantics.Name]float64, len(tm.reads))
	for s, c := range tm.reads {
		cur := c.Load()
		if dn > 0 {
			mix[s] = float64(cur-tm.lastReads[s]) / float64(dn)
		} else {
			mix[s] = 0
		}
		tm.lastReads[s] = cur
	}
	tm.lastDeliv = deliv
	return mix, int(dn)
}

// Weights returns each tenant's share of cumulative deliveries — the
// traffic weights of the joint Eq. 1 objective. With no deliveries yet all
// tenants weigh equally.
func (t *MixTracker) Weights() []float64 {
	w := make([]float64, len(t.tenants))
	var total uint64
	for i := range t.tenants {
		w[i] = float64(t.tenants[i].delivered.Load())
		total += t.tenants[i].delivered.Load()
	}
	if total == 0 {
		for i := range w {
			w[i] = 1
		}
		return w
	}
	for i := range w {
		w[i] /= float64(total)
	}
	return w
}

// WeightedMixCosts turns an observed read-frequency window into a tenant's
// Eq. 1 cost model: the per-packet expected software cost of leaving s to a
// shim is freq(s) × w(s). Mirrors Engine.liveCosts for the joint case.
// Infinite costs are never scaled — a semantic with no software fallback
// stays unsatisfiable no matter how rarely it is read — and semantics
// outside the window keep the static model.
func WeightedMixCosts(base semantics.CostModel, mix map[semantics.Name]float64) semantics.CostModel {
	return func(s semantics.Name) float64 {
		w := base(s)
		if math.IsInf(w, 1) {
			return w
		}
		f, ok := mix[s]
		if !ok {
			return w
		}
		return f * w
	}
}

// JointPolicy schedules measured-mix re-solves for a multi-tenant plane and
// applies the switchover hysteresis — the plane-level analogue of the
// Engine's Interval/MinWindow/Hysteresis options.
type JointPolicy struct {
	// Interval is how many aggregate deliveries between re-solve
	// evaluations (default 4096).
	Interval int
	// MinWindow is the minimum aggregate deliveries an observation window
	// needs before its mix is trusted (default 256).
	MinWindow int
	// Hysteresis is the fractional joint-objective improvement a candidate
	// layout must show before a switchover is worth its disruption
	// (default 0.10; negative disables the margin).
	Hysteresis float64
}

// WithDefaults normalizes the policy.
func (p JointPolicy) WithDefaults() JointPolicy {
	if p.Interval <= 0 {
		p.Interval = 4096
	}
	if p.MinWindow <= 0 {
		p.MinWindow = 256
	}
	switch {
	case p.Hysteresis == 0:
		p.Hysteresis = 0.10
	case p.Hysteresis < 0:
		p.Hysteresis = 0
	}
	return p
}

// Due reports whether an evaluation window has accumulated: delivered is
// the aggregate delivery count, lastEval the count at the previous
// evaluation.
func (p JointPolicy) Due(delivered, lastEval uint64) bool {
	return delivered >= lastEval+uint64(p.Interval)
}

// Improves reports whether a candidate joint objective beats the active one
// by more than the hysteresis margin.
func (p JointPolicy) Improves(active, candidate float64) bool {
	return candidate < active*(1-p.Hysteresis)
}
