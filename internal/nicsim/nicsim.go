// Package nicsim simulates a NIC whose descriptor interface is defined by an
// OpenDesc P4 description. The simulated device *executes the same
// declarative contract the compiler analyzes*: per received packet it walks
// the completion deparser's control-flow graph under the programmed context
// registers, computes the offload metadata with golden reference engines, and
// DMAs the serialized completion record into a completion ring — so the
// layouts the compiler derives and the bytes the device emits are validated
// against each other end-to-end.
package nicsim

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"errors"

	"opendesc/internal/bitfield"
	"opendesc/internal/core"
	"opendesc/internal/faults"
	"opendesc/internal/nic"
	"opendesc/internal/obs"
	"opendesc/internal/obs/flight"
	"opendesc/internal/p4/sema"
	"opendesc/internal/pkt"
	"opendesc/internal/ring"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/vclock"
)

// Config sizes a simulated device.
type Config struct {
	// RingEntries is the completion ring depth (default 1024).
	RingEntries int
	// BufSize is the RX packet buffer size (default 2048).
	BufSize int
	// QueueID is reported through the queue_id semantic.
	QueueID uint16
	// TimestampStep is the simulated clock advance per received packet in
	// nanoseconds (default 100).
	TimestampStep uint64
	// Mark is the value reported for the mark semantic (a match-action rule
	// tag); configurable like a flow rule.
	Mark uint64
	// CryptoCtx is the crypto context id the (simulated) inline-crypto engine
	// attaches to packets.
	CryptoCtx uint64
	// Clock, when non-nil, is the timeline the timestamp semantic reads (each
	// received packet is stamped Clock.Now()). Nil keeps the device's internal
	// free-running counter, which advances TimestampStep per packet. Chaos
	// runs inject the shared virtual clock here so device timestamps sit on
	// the same deterministic timeline as the rest of the stack.
	Clock vclock.Clock
}

// WithDefaults returns the configuration with unset fields defaulted — the
// concrete device state a zero Config produces (the hardened driver derives
// its device-state validation constants from it).
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.RingEntries == 0 {
		c.RingEntries = 1024
	}
	if c.BufSize == 0 {
		c.BufSize = 2048
	}
	if c.TimestampStep == 0 {
		c.TimestampStep = 100
	}
	return c
}

// Device is a simulated OpenDesc-described NIC.
type Device struct {
	Model *nic.Model
	cfg   Config

	graph *core.Graph
	paths []*core.Path

	// ctx holds the context registers (the implicit control channel of the
	// paper's Fig. 2), keyed by dotted path, e.g. "ctx.use_rss".
	ctx map[string]sema.Value

	// CmptRing receives the serialized completion records.
	CmptRing *ring.Ring
	// Buffers is the RX packet buffer area; completion i corresponds to
	// buffer slot i modulo pool size.
	Buffers *ring.BufferPool

	clock uint64

	// Ethtool-style device counters (atomic: the RX path runs on one
	// goroutine, but stats may be scraped from another at any time).
	rxPackets obs.Counter
	rxBytes   obs.Counter
	drops     obs.Counter
	cmptBytes obs.Counter
	// pathHits counts completions per enumerated path (index into paths).
	pathHits []obs.Counter
	// offloads counts per-semantic offload-engine invocations.
	offloads map[semantics.Name]*obs.Counter
	// curPath caches the index of the path the current context selects;
	// −1 means "recompute on next packet" (set by WriteReg).
	curPath atomic.Int32

	// faults, when non-nil, is the fault-injection layer consulted on every
	// DMA/completion and control-channel operation.
	faults *faults.Injector
	// fq, when attached, receives device-side flight-recorder events (DMA
	// emit, hang drops, resets). Nil by default.
	fq *flight.Queue
	// Fault-path counters (all zero on a healthy device).
	cfgNAKs    obs.Counter // ApplyConfig bursts refused (wedge or NAK)
	hangDrops  obs.Counter // packets refused while the device was wedged
	lostCmpts  obs.Counter // completions dropped by injection (host-visible desync)
	resets     obs.Counter // device resets that took effect
	resetFails obs.Counter // reset attempts refused while wedged

	// metaParams are the deparser parameters whose fields feed the emit
	// environment (context param excluded).
	metaParams []*sema.BoundParam
	ctxParam   string
	// envFields is the flattened field list of metaParams, precomputed once
	// so the per-packet emit path never rebuilds dotted field names.
	envFields []envField

	// scratch
	info    pkt.Info
	envBuf  sema.MapEnv
	valsBuf map[semantics.Name]uint64
	cmptBuf []byte
}

// envField is one leaf field of a deparser composite parameter.
type envField struct {
	name  string // dotted path, e.g. "cqe.rss_hash"
	sem   semantics.Name
	width int
}

// maxCompletionBytes bounds a single completion record in the simulator.
const maxCompletionBytes = 256

// ErrDeviceHang reports that the device is wedged: RX, TX and the control
// channel all refuse service until a reset succeeds.
var ErrDeviceHang = errors.New("device hang")

// ErrConfigNAK reports a NAKed control-channel register-write burst; the
// burst failed atomically and may be retried.
var ErrConfigNAK = errors.New("register write NAKed")

// New builds a simulated device for a NIC model.
func New(m *nic.Model, cfg Config) (*Device, error) {
	cfg = cfg.withDefaults()
	g, err := m.Graph()
	if err != nil {
		return nil, err
	}
	paths, err := m.Paths()
	if err != nil {
		return nil, err
	}
	d := &Device{
		Model:    m,
		cfg:      cfg,
		graph:    g,
		paths:    paths,
		ctx:      make(map[string]sema.Value),
		CmptRing: ring.MustNew(maxCompletionBytes, cfg.RingEntries),
		Buffers:  ring.MustNewBufferPool(cfg.BufSize, cfg.RingEntries),
		envBuf:   make(sema.MapEnv),
		valsBuf:  make(map[semantics.Name]uint64, 32),
		cmptBuf:  make([]byte, maxCompletionBytes),
		pathHits: make([]obs.Counter, len(paths)),
		offloads: make(map[semantics.Name]*obs.Counter, len(offloadSemantics)),
	}
	// Pre-create the per-semantic counters so the hot path never mutates
	// the map (a concurrent scraper may be iterating it).
	for _, s := range offloadSemantics {
		d.offloads[s] = &obs.Counter{}
	}
	d.curPath.Store(-1)
	inst := g.Instance()
	for _, p := range inst.Params {
		ct, ok := p.Type.(*sema.CompositeType)
		if !ok {
			continue
		}
		// The context parameter is the struct the branch conditions read; it
		// is identified by convention (ctx-ish name) or by carrying no
		// semantic-tagged fields while being named in constraints.
		if strings.Contains(p.Name, "ctx") {
			d.ctxParam = p.Name
			continue
		}
		_ = ct
		d.metaParams = append(d.metaParams, p)
	}
	for _, p := range d.metaParams {
		d.flattenFields(p.Name, p.Type.(*sema.CompositeType))
	}
	return d, nil
}

// flattenFields records every emit-relevant leaf field of a composite
// parameter under its dotted name (pads and oversized fields excluded, as in
// the emit path they feed).
func (d *Device) flattenFields(prefix string, ct *sema.CompositeType) {
	for _, f := range ct.Fields {
		name := prefix + "." + f.Name
		if nested, ok := f.Type.(*sema.CompositeType); ok {
			d.flattenFields(name, nested)
			continue
		}
		w := f.Type.BitWidth()
		if w <= 0 || w > 64 {
			continue
		}
		d.envFields = append(d.envFields, envField{name: name, sem: semantics.Name(f.Semantic), width: w})
	}
}

// Config returns the device's (defaulted) configuration — the concrete
// device state drivers derive their validation constants from.
func (d *Device) Config() Config { return d.cfg }

// MustNew panics on error.
func MustNew(m *nic.Model, cfg Config) *Device {
	d, err := New(m, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// WriteReg programs one context register (MMIO write on the control
// channel). The path is the dotted name used in the description, e.g.
// "ctx.use_rss".
func (d *Device) WriteReg(path string, v uint64) {
	d.ctx[path] = sema.UintValue(v, 64)
	d.curPath.Store(-1) // context changed: re-resolve the active path lazily
}

// ReadReg returns a context register value (0 when never written).
func (d *Device) ReadReg(path string) uint64 { return d.ctx[path].Uint }

// ApplyConfig programs the context registers so the device takes the
// completion path selected by a compilation result. The concrete values are
// resolved by core.ConfigAssignment (equality constraints pin the register,
// disequalities pick the smallest value not excluded). The register-write
// burst fails atomically when the device is wedged or the control channel
// NAKs it (fault injection): no register is written on error.
func (d *Device) ApplyConfig(cons []core.Constraint) error {
	if d.faults != nil {
		if d.faults.Tick() {
			d.cfgNAKs.Inc()
			return fmt.Errorf("nicsim %s: %w", d.Model.Name, ErrDeviceHang)
		}
		if d.faults.NAKConfig() {
			d.cfgNAKs.Inc()
			return fmt.Errorf("nicsim %s: %w", d.Model.Name, ErrConfigNAK)
		}
	}
	vals, err := core.ConfigAssignment(cons)
	if err != nil {
		return fmt.Errorf("nicsim: %w", err)
	}
	for v, val := range vals {
		d.WriteReg(v, val)
	}
	return nil
}

// ActivePath returns the completion path the current context registers
// select, by evaluating each enumerated path's constraints.
func (d *Device) ActivePath() (*core.Path, error) {
	for _, p := range d.paths {
		ok := true
		for _, c := range p.Constraints {
			got := d.ctx[c.Var]
			if c.Equal != got.Equal(c.Val) {
				ok = false
				break
			}
		}
		if ok {
			return p, nil
		}
	}
	return nil, fmt.Errorf("nicsim %s: no completion path matches context %v", d.Model.Name, d.ctx)
}

// ContextParam returns the name of the deparser's context parameter (the
// struct the control channel programs), e.g. "ctx".
func (d *Device) ContextParam() string { return d.ctxParam }

// offloadSemantics is every semantic the simulated offload engines can
// compute; the per-semantic invocation counters are pre-created from this
// list so RxPacket never mutates the counter map.
var offloadSemantics = []semantics.Name{
	semantics.PktLen, semantics.Timestamp, semantics.QueueID, semantics.Mark,
	semantics.CryptoCtx, semantics.LROSegs, semantics.SegCnt, semantics.RXDropHint,
	semantics.ErrorFlags, semantics.RSS, semantics.IPChecksum, semantics.L4Checksum,
	semantics.VLAN, semantics.PType, semantics.FlowID, semantics.IPID,
	semantics.KVKey, semantics.PayloadHash, semantics.TunnelID, semantics.L4Port,
	semantics.DecapFlag, semantics.ChecksumAny, semantics.ParserDepth,
}

// DeviceStats is a point-in-time snapshot of a device's ethtool-style
// counters.
type DeviceStats struct {
	// RxPackets counts packets accepted end-to-end (completion DMAed);
	// Drops counts packets rejected anywhere in the RX path.
	RxPackets uint64
	RxBytes   uint64
	Drops     uint64
	// Completions mirrors RxPackets (one completion per accepted packet);
	// CompletionBytes is the total completion-record DMA volume.
	Completions     uint64
	CompletionBytes uint64
	// CompletionsByPath counts completions per enumerated deparser path,
	// keyed by path ID.
	CompletionsByPath map[int]uint64
	// Offloads counts per-semantic offload-engine invocations.
	Offloads map[semantics.Name]uint64
	// Ring is the completion ring's counter snapshot.
	Ring ring.Stats
	// Fault-path counters (all zero on a healthy device): ConfigNAKs counts
	// refused ApplyConfig bursts, HangDrops packets refused while wedged,
	// LostCompletions injected completion losses, Resets successful device
	// resets, ResetFails reset attempts refused while wedged.
	ConfigNAKs      uint64
	HangDrops       uint64
	LostCompletions uint64
	Resets          uint64
	ResetFails      uint64
}

// Stats returns a snapshot of the device counters. Safe to call while
// another goroutine is receiving packets. Maps contain only non-zero
// entries.
func (d *Device) Stats() DeviceStats {
	st := DeviceStats{
		RxPackets:         d.rxPackets.Load(),
		RxBytes:           d.rxBytes.Load(),
		Drops:             d.drops.Load(),
		Completions:       d.rxPackets.Load(),
		CompletionBytes:   d.cmptBytes.Load(),
		CompletionsByPath: make(map[int]uint64),
		Offloads:          make(map[semantics.Name]uint64),
		Ring:              d.CmptRing.Stats(),
		ConfigNAKs:        d.cfgNAKs.Load(),
		HangDrops:         d.hangDrops.Load(),
		LostCompletions:   d.lostCmpts.Load(),
		Resets:            d.resets.Load(),
		ResetFails:        d.resetFails.Load(),
	}
	for i := range d.pathHits {
		if n := d.pathHits[i].Load(); n > 0 {
			st.CompletionsByPath[d.paths[i].ID] = n
		}
	}
	for name, c := range d.offloads {
		if n := c.Load(); n > 0 {
			st.Offloads[name] = n
		}
	}
	return st
}

// activePathIndex resolves (and caches) the index of the path the current
// context registers select; −1 when no path matches.
func (d *Device) activePathIndex() int {
	if idx := d.curPath.Load(); idx >= 0 {
		return int(idx)
	}
	p, err := d.ActivePath()
	if err != nil {
		return -1
	}
	for i := range d.paths {
		if d.paths[i] == p {
			d.curPath.Store(int32(i))
			return i
		}
	}
	return -1
}

// RegisterMetrics exposes the device counters (and its completion ring's)
// on an obs registry, labelled with the NIC model name plus any extra
// labels (e.g. the queue id). Idempotent per registry and label set.
func (d *Device) RegisterMetrics(reg *obs.Registry, extra ...obs.Label) {
	base := append([]obs.Label{obs.L("nic", d.Model.Name)}, extra...)
	reg.AttachCounter("opendesc_dev_rx_packets_total", "packets accepted by the simulated device", &d.rxPackets, base...)
	reg.AttachCounter("opendesc_dev_rx_bytes_total", "packet bytes accepted by the simulated device", &d.rxBytes, base...)
	reg.AttachCounter("opendesc_dev_drops_total", "packets dropped in the RX path", &d.drops, base...)
	reg.AttachCounter("opendesc_dev_completion_bytes_total", "completion-record bytes DMAed", &d.cmptBytes, base...)
	reg.AttachCounter("opendesc_dev_config_naks_total", "refused ApplyConfig register-write bursts", &d.cfgNAKs, base...)
	reg.AttachCounter("opendesc_dev_hang_drops_total", "packets refused while the device was wedged", &d.hangDrops, base...)
	reg.AttachCounter("opendesc_dev_lost_completions_total", "completions lost to fault injection", &d.lostCmpts, base...)
	reg.AttachCounter("opendesc_dev_resets_total", "device resets that took effect", &d.resets, base...)
	reg.AttachCounter("opendesc_dev_reset_fails_total", "reset attempts refused while wedged", &d.resetFails, base...)
	for i := range d.pathHits {
		labels := append(append([]obs.Label{}, base...), obs.L("path", strconv.Itoa(d.paths[i].ID)))
		reg.AttachCounter("opendesc_dev_path_completions_total", "completions emitted per deparser path", &d.pathHits[i], labels...)
	}
	for _, s := range offloadSemantics {
		labels := append(append([]obs.Label{}, base...), obs.L("semantic", string(s)))
		reg.AttachCounter("opendesc_dev_offload_invocations_total", "offload-engine invocations per semantic", d.offloads[s], labels...)
	}
	r := d.CmptRing
	rl := append(append([]obs.Label{}, base...), obs.L("ring", "cmpt"))
	reg.CounterFunc("opendesc_ring_produced_total", "entries published to the ring", func() uint64 { return r.Stats().Produced }, rl...)
	reg.CounterFunc("opendesc_ring_consumed_total", "entries released from the ring", func() uint64 { return r.Stats().Consumed }, rl...)
	reg.CounterFunc("opendesc_ring_full_stalls_total", "rejected produce attempts (ring full)", func() uint64 { return r.Stats().FullStalls }, rl...)
	reg.CounterFunc("opendesc_ring_empty_stalls_total", "failed consume attempts (ring empty)", func() uint64 { return r.Stats().EmptyStalls }, rl...)
	reg.GaugeFunc("opendesc_ring_occupancy", "instantaneous ring fill level (entries)", func() int64 { return int64(r.Occupancy()) }, rl...)
	reg.GaugeFunc("opendesc_ring_occupancy_highwater", "largest ring occupancy observed", func() int64 { return int64(r.Stats().HighWater) }, rl...)
	reg.GaugeFunc("opendesc_ring_capacity", "ring capacity (entries)", func() int64 { return int64(r.Capacity()) }, rl...)
}

// RxPacket makes the device receive one packet from the wire: it DMAs the
// packet into the next buffer slot, computes the offload metadata, walks the
// deparser CFG under the programmed context, and DMAs the completion record.
// It returns false when the completion ring is full (packet dropped, as
// hardware would).
func (d *Device) RxPacket(packet []byte) bool {
	if d.faults != nil && d.faults.Tick() {
		// Wedged: the device refuses the packet outright.
		d.hangDrops.Inc()
		d.drops.Inc()
		d.fq.Record(flight.EvHangDrop, uint32(d.rxPackets.Load()), 0, 0)
		return false
	}
	slot := int(d.rxPackets.Load()) % d.Buffers.Count()
	if err := d.Buffers.Write(slot, packet); err != nil {
		d.drops.Inc()
		return false
	}
	if d.cfg.Clock != nil {
		d.clock = d.cfg.Clock.Now()
	} else {
		d.clock += d.cfg.TimestampStep
	}

	vals := d.computeOffloads(packet)
	for name := range vals {
		if c := d.offloads[name]; c != nil {
			c.Inc()
		}
	}
	env := d.buildEnv(vals)
	n, err := d.serializeCompletion(env, d.cmptBuf)
	if err != nil {
		d.drops.Inc()
		return false
	}
	rec, extra := d.cmptBuf[:n], []byte(nil)
	if d.faults != nil {
		rec, extra = d.faults.Completion(rec)
	}
	if rec == nil {
		// Injected completion loss: the device believes the packet completed
		// (it was DMAed and counted), but no record reaches the host — the
		// pending/completion desync the driver must resynchronize from.
		d.lostCmpts.Inc()
		d.rxPackets.Inc()
		d.rxBytes.Add(uint64(len(packet)))
		d.fq.Record(flight.EvDMALost, uint32(d.rxPackets.Load()), uint64(n), 0)
		return true
	}
	if !d.CmptRing.Push(rec) {
		d.drops.Inc()
		return false
	}
	if extra != nil {
		// Injected duplicate: best-effort second publish (a full ring just
		// swallows the duplicate, as real hardware would).
		d.CmptRing.Push(extra)
	}
	d.rxPackets.Inc()
	d.rxBytes.Add(uint64(len(packet)))
	d.cmptBytes.Add(uint64(len(rec)))
	idx := d.activePathIndex()
	if idx >= 0 {
		d.pathHits[idx].Inc()
	}
	// seq is the 1-based packet count, matching the driver's Rx sequence.
	// Routine emits are sampled (flight.SamplePeriod) to stay inside the
	// recorder's hot-path budget; anomalies above are always recorded.
	if seq := uint32(d.rxPackets.Load()); flight.Sampled(seq) {
		d.fq.Record(flight.EvDMAEmit, seq, uint64(len(rec)), uint64(idx+1))
	}
	return true
}

// InjectFaults attaches a fault-injection layer; nil detaches it. The
// injector is consulted from the device datapath goroutine on every RX, TX,
// control-channel and reset operation. An already-attached flight queue is
// propagated so injected faults show up in the event stream.
func (d *Device) InjectFaults(inj *faults.Injector) {
	d.faults = inj
	if inj != nil && d.fq != nil {
		inj.AttachFlight(d.fq)
	}
}

// AttachFlight wires the device, its completion ring, and any attached fault
// injector to a flight-recorder queue. Attach before the datapath starts.
func (d *Device) AttachFlight(q *flight.Queue) {
	d.fq = q
	d.CmptRing.AttachFlight(q)
	if d.faults != nil {
		d.faults.AttachFlight(q)
	}
}

// Faults returns the attached injector (nil on a healthy device).
func (d *Device) Faults() *faults.Injector { return d.faults }

// Hung reports whether the device is currently wedged.
func (d *Device) Hung() bool { return d.faults.Hung() }

// TickClock advances the device's internal fault clock without submitting
// work — the discrete-time stand-in for wall time elapsing while a host
// backs off from a wedged device (a hang burst can only drain while the
// clock runs).
func (d *Device) TickClock() {
	if d.faults != nil {
		d.faults.Tick()
	}
}

// Reset models a full device reset: the completion ring is emptied and the
// context registers are cleared, so the host must re-ApplyConfig before the
// device resolves a completion path again. While a hang burst is still
// running the device stays unresponsive and the reset fails.
func (d *Device) Reset() error {
	if d.faults != nil && !d.faults.TryReset() {
		d.resetFails.Inc()
		return fmt.Errorf("nicsim %s: reset refused: %w", d.Model.Name, ErrDeviceHang)
	}
	d.CmptRing.Reset()
	d.ctx = make(map[string]sema.Value)
	d.curPath.Store(-1)
	d.resets.Inc()
	d.fq.Record(flight.EvDevReset, uint32(d.resets.Load()), 0, 0)
	return nil
}

// computeOffloads runs the golden reference engines over the packet. The
// returned map is the device's scratch buffer, valid until the next packet.
func (d *Device) computeOffloads(packet []byte) map[semantics.Name]uint64 {
	in := &d.info
	decodeOK := pkt.Decode(packet, in) == nil
	vals := d.valsBuf
	for k := range vals {
		delete(vals, k)
	}
	vals[semantics.PktLen] = uint64(len(packet))
	vals[semantics.Timestamp] = d.clock
	vals[semantics.QueueID] = uint64(d.cfg.QueueID)
	vals[semantics.Mark] = d.cfg.Mark
	vals[semantics.CryptoCtx] = d.cfg.CryptoCtx
	vals[semantics.LROSegs] = 1
	vals[semantics.SegCnt] = 1
	vals[semantics.RXDropHint] = 0
	if !decodeOK {
		vals[semantics.ErrorFlags] = 0x80 // parse error
		return vals
	}
	vals[semantics.RSS] = uint64(softnic.RSS(in))
	vals[semantics.IPChecksum] = uint64(softnic.IPChecksum(in))
	vals[semantics.L4Checksum] = uint64(softnic.L4Checksum(in))
	vals[semantics.VLAN] = uint64(softnic.VLANTCI(in))
	vals[semantics.PType] = uint64(softnic.PType(in))
	vals[semantics.FlowID] = uint64(softnic.FlowID(in))
	vals[semantics.IPID] = uint64(in.IPID)
	vals[semantics.KVKey] = softnic.KVKey(in)
	vals[semantics.PayloadHash] = uint64(softnic.PayloadHash(in))
	vals[semantics.TunnelID] = uint64(softnic.TunnelID(in))
	vals[semantics.L4Port] = uint64(in.DstPort)
	if vals[semantics.TunnelID] != 0 {
		vals[semantics.DecapFlag] = 1
	}
	var errFlags uint64
	if in.L3 == pkt.L3IPv4 && in.L3Off >= 0 {
		hdr := in.Data[in.L3Off:]
		ihl := int(hdr[0]&0x0F) * 4
		if ihl >= pkt.IPv4MinLen && in.L3Off+ihl <= len(in.Data) && !pkt.VerifyIPv4Header(hdr[:ihl]) {
			errFlags |= 1
		}
	}
	if (in.L4 == pkt.L4TCP || in.L4 == pkt.L4UDP) && !pkt.VerifyL4(in) {
		errFlags |= 2
	}
	vals[semantics.ErrorFlags] = errFlags
	lvl := uint64(0)
	if in.L3 == pkt.L3IPv4 {
		lvl = 1
	}
	if in.L4 == pkt.L4TCP || in.L4 == pkt.L4UDP {
		lvl = 2
	}
	vals[semantics.ChecksumAny] = lvl
	depth := uint64(1)
	if in.L3 != pkt.L3None {
		depth++
	}
	if in.L4 != pkt.L4None {
		depth++
	}
	vals[semantics.ParserDepth] = depth
	return vals
}

// buildEnv maps every semantic-tagged field of the deparser's composite
// parameters to its computed value, plus the context registers. It walks the
// field list flattened at construction — no per-packet name building.
func (d *Device) buildEnv(vals map[semantics.Name]uint64) sema.MapEnv {
	env := d.envBuf
	for k := range env {
		delete(env, k)
	}
	for k, v := range d.ctx {
		env[k] = v
	}
	for _, f := range d.envFields {
		var v uint64
		if f.sem != "" {
			v = vals[f.sem]
			if f.width < 64 {
				v &= (uint64(1) << f.width) - 1
			}
		}
		env[f.name] = sema.UintValue(v, f.width)
	}
	return env
}

// serializeCompletion walks the deparser CFG under env, writing emitted
// fields into dst, and returns the completion size in bytes.
func (d *Device) serializeCompletion(env sema.Env, dst []byte) (int, error) {
	for i := range dst {
		dst[i] = 0
	}
	info := d.graph.Info()
	node := d.graph.Entry
	offBits := 0
	steps := 0
	for node.Kind != core.NodeExit {
		if steps++; steps > 10000 {
			return 0, fmt.Errorf("nicsim: deparser walk did not terminate")
		}
		if node.Kind == core.NodeEmit {
			for _, f := range node.Emit.Fields {
				if offBits+f.WidthBits > len(dst)*8 {
					return 0, fmt.Errorf("nicsim: completion exceeds %d bytes", len(dst))
				}
				if f.WidthBits <= 64 {
					var v uint64
					if val, ok := env.Lookup(f.Name); ok {
						v = val.Uint
					}
					bitfield.Write(dst, offBits, f.WidthBits, v)
				}
				// >64-bit fields (pads) stay zero.
				offBits += f.WidthBits
			}
		}
		next, err := d.step(node, env, info)
		if err != nil {
			return 0, err
		}
		node = next
	}
	return (offBits + 7) / 8, nil
}

// step picks the successor edge of a node under the concrete env.
func (d *Device) step(node *core.Node, env sema.Env, info *sema.Info) (*core.Node, error) {
	if len(node.Succs) == 1 && node.Succs[0].Cond == nil && len(node.Succs[0].CaseVals) == 0 && !node.Succs[0].IsDefault {
		return node.Succs[0].To, nil
	}
	switch node.Kind {
	case core.NodeBranch:
		v, err := info.Eval(node.Cond, env)
		if err != nil {
			return nil, fmt.Errorf("nicsim: branch condition: %w", err)
		}
		for _, e := range node.Succs {
			if v.Truthy() != e.Negate {
				return e.To, nil
			}
		}
		return nil, fmt.Errorf("nicsim: no matching branch edge")
	case core.NodeSwitch:
		tag, err := info.Eval(node.Tag, env)
		if err != nil {
			return nil, fmt.Errorf("nicsim: switch tag: %w", err)
		}
		var def *core.Edge
		for _, e := range node.Succs {
			if e.IsDefault {
				def = e
				continue
			}
			for _, cv := range e.CaseVals {
				if cv.Equal(tag) {
					return e.To, nil
				}
			}
		}
		if def != nil {
			return def.To, nil
		}
		return nil, fmt.Errorf("nicsim: switch tag %v matches no case and no default", tag)
	default:
		if len(node.Succs) == 0 {
			return nil, fmt.Errorf("nicsim: dead-end node %d (%s)", node.ID, node.Kind)
		}
		return node.Succs[0].To, nil
	}
}

// RxBurst receives a batch of packets; returns how many were accepted.
func (d *Device) RxBurst(packets [][]byte) int {
	n := 0
	for _, p := range packets {
		if d.RxPacket(p) {
			n++
		}
	}
	return n
}
