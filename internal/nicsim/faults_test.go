package nicsim

import (
	"errors"
	"testing"

	"opendesc/internal/core"
	"opendesc/internal/faults"
	"opendesc/internal/nic"
	"opendesc/internal/semantics"
)

// TestInjectedDropDesync checks the host-visible desync case: the device
// accepts the packet (RxPacket true, rx counters advance) but the completion
// never reaches the ring.
func TestInjectedDropDesync(t *testing.T) {
	res := compileOn(t, "e1000e", semantics.RSS, semantics.VLAN, semantics.PktLen)
	dev := MustNew(nic.MustLoad("e1000e"), Config{})
	dev.InjectFaults(faults.New(faults.Plan{Seed: 7, DropP: 1}))
	if err := dev.ApplyConfig(res.Config); err != nil {
		t.Fatal(err)
	}
	p := testPacket()
	for i := 0; i < 5; i++ {
		if !dev.RxPacket(p) {
			t.Fatalf("rx %d: device must report success on a dropped completion", i)
		}
	}
	if n := dev.CmptRing.Len(); n != 0 {
		t.Errorf("ring has %d completions, want 0", n)
	}
	st := dev.Stats()
	if st.LostCompletions != 5 || st.RxPackets != 5 || st.Drops != 0 {
		t.Errorf("lost=%d rx=%d drops=%d, want 5/5/0", st.LostCompletions, st.RxPackets, st.Drops)
	}
}

// TestInjectedDuplicate checks that a duplicated completion publishes two
// identical records for one packet.
func TestInjectedDuplicate(t *testing.T) {
	res := compileOn(t, "e1000e", semantics.RSS, semantics.VLAN, semantics.PktLen)
	dev := MustNew(nic.MustLoad("e1000e"), Config{})
	dev.InjectFaults(faults.New(faults.Plan{Seed: 7, DuplicateP: 1}))
	if err := dev.ApplyConfig(res.Config); err != nil {
		t.Fatal(err)
	}
	if !dev.RxPacket(testPacket()) {
		t.Fatal("rx failed")
	}
	if n := dev.CmptRing.Len(); n != 2 {
		t.Fatalf("ring has %d completions, want 2 (original + duplicate)", n)
	}
	first := append([]byte(nil), dev.CmptRing.Peek()...)
	dev.CmptRing.Pop()
	second := dev.CmptRing.Peek()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("duplicate differs from original at byte %d", i)
		}
	}
}

// TestInjectedConfigNAK checks that a NAKed register-write burst fails
// atomically: the error wraps ErrConfigNAK and no register was written.
func TestInjectedConfigNAK(t *testing.T) {
	res := compileOn(t, "e1000e", semantics.RSS, semantics.VLAN, semantics.PktLen)
	dev := MustNew(nic.MustLoad("e1000e"), Config{})
	dev.InjectFaults(faults.New(faults.Plan{Seed: 7, NAKP: 1}))
	err := dev.ApplyConfig(res.Config)
	if !errors.Is(err, ErrConfigNAK) {
		t.Fatalf("ApplyConfig error = %v, want ErrConfigNAK", err)
	}
	if st := dev.Stats(); st.ConfigNAKs != 1 {
		t.Errorf("ConfigNAKs = %d, want 1", st.ConfigNAKs)
	}
}

// TestTxSubmitHang checks that a wedged device refuses TX descriptors with
// ErrDeviceHang.
func TestTxSubmitHang(t *testing.T) {
	dev := MustNew(nic.MustLoad("e1000e"), Config{})
	dev.InjectFaults(faults.New(faults.Plan{Seed: 7, HangCount: 1, HangMTBF: 1, HangBurst: 2}))
	if _, err := dev.TxSubmit(make([]byte, 16)); !errors.Is(err, ErrDeviceHang) {
		t.Fatalf("TxSubmit error = %v, want ErrDeviceHang", err)
	}
}

// TestHangRecoveryLifecycle drives the full hang → failed reset → burst
// elapses → successful reset → re-ApplyConfig → healthy sequence, checking
// every counter along the way.
func TestHangRecoveryLifecycle(t *testing.T) {
	res := compileOn(t, "e1000e", semantics.RSS, semantics.VLAN, semantics.PktLen)
	dev := MustNew(nic.MustLoad("e1000e"), Config{})
	dev.InjectFaults(faults.New(faults.Plan{Seed: 7, HangCount: 1, HangMTBF: 4, HangBurst: 3}))

	// Op 1: the config burst. Ops 2,3: healthy receives.
	if err := dev.ApplyConfig(res.Config); err != nil {
		t.Fatal(err)
	}
	p := testPacket()
	for i := 0; i < 2; i++ {
		if !dev.RxPacket(p) {
			t.Fatalf("healthy rx %d failed", i)
		}
	}

	// Op 4 hits the MTBF: the hang begins and the packet is refused.
	if dev.RxPacket(p) {
		t.Fatal("rx during hang must fail")
	}
	if !dev.Hung() {
		t.Fatal("device should report hung")
	}

	// A reset inside the burst is refused.
	if err := dev.Reset(); !errors.Is(err, ErrDeviceHang) {
		t.Fatalf("reset during burst = %v, want ErrDeviceHang", err)
	}

	// Three more refused operations let the burst elapse.
	for i := 0; i < 3; i++ {
		if dev.RxPacket(p) {
			t.Fatalf("rx %d during burst must fail", i)
		}
	}

	// Now the reset takes: ring emptied, context cleared.
	if err := dev.Reset(); err != nil {
		t.Fatalf("reset after burst: %v", err)
	}
	if dev.Hung() {
		t.Fatal("device still hung after successful reset")
	}
	if dev.CmptRing.Len() != 0 {
		t.Error("reset must empty the completion ring")
	}
	vals, err := core.ConfigAssignment(res.Config)
	if err != nil {
		t.Fatal(err)
	}
	for reg, v := range vals {
		if v != 0 && dev.ReadReg(reg) != 0 {
			t.Errorf("register %s survived reset (= %d)", reg, dev.ReadReg(reg))
		}
	}

	// Re-programming restores service.
	if err := dev.ApplyConfig(res.Config); err != nil {
		t.Fatalf("re-ApplyConfig after reset: %v", err)
	}
	if !dev.RxPacket(p) {
		t.Fatal("rx after recovery failed")
	}
	if dev.CmptRing.Len() != 1 {
		t.Fatal("recovered device must DMA completions again")
	}

	st := dev.Stats()
	if st.HangDrops != 4 {
		t.Errorf("HangDrops = %d, want 4", st.HangDrops)
	}
	if st.ResetFails != 1 || st.Resets != 1 {
		t.Errorf("ResetFails=%d Resets=%d, want 1/1", st.ResetFails, st.Resets)
	}
	fst := dev.Faults().Stats()
	if fst.Injected[faults.Hang] != 1 || fst.ResetNAKs != 1 || fst.Resets != 1 {
		t.Errorf("injector stats = %+v, want 1 hang, 1 reset NAK, 1 reset", fst)
	}
}
