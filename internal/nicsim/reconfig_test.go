package nicsim

import (
	"strings"
	"testing"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/p4/sema"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
)

func u64(v uint64) sema.Value { return sema.UintValue(v, 64) }

// compileForPath compiles the e1000e test intent with cost overrides chosen
// so path selection lands on the requested branch: hot == the semantic whose
// software fallback is made prohibitively expensive.
func compileForPath(t *testing.T, hot, cold semantics.Name) *core.Result {
	t.Helper()
	intent, err := core.IntentFromSemantics("reconfig", semantics.Default,
		semantics.RSS, semantics.IPChecksum, semantics.VLAN, semantics.PktLen)
	if err != nil {
		t.Fatal(err)
	}
	costs := semantics.RegistryCosts(semantics.Default).WithOverrides(map[semantics.Name]float64{
		hot: 1000, cold: 1,
	})
	res, err := nic.MustLoad("e1000e").Compile(intent, core.CompileOptions{
		Select: core.SelectOptions{Costs: costs},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HardwareSet().Has(hot) {
		t.Fatalf("cost override did not select the %s path: hardware = %s", hot, res.HardwareSet())
	}
	return res
}

func TestApplyConfigConflictingEquality(t *testing.T) {
	dev := MustNew(nic.MustLoad("e1000e"), Config{})
	err := dev.ApplyConfig([]core.Constraint{
		{Var: "ctx.use_rss", Val: u64(1), Equal: true},
		{Var: "ctx.use_rss", Val: u64(0), Equal: true},
	})
	if err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("err = %v, want conflicting-config error", err)
	}
	// Equal duplicates are not a conflict.
	if err := dev.ApplyConfig([]core.Constraint{
		{Var: "ctx.use_rss", Val: u64(1), Equal: true},
		{Var: "ctx.use_rss", Val: u64(1), Equal: true},
	}); err != nil {
		t.Fatalf("duplicate equality: %v", err)
	}
	if got := dev.ReadReg("ctx.use_rss"); got != 1 {
		t.Fatalf("ctx.use_rss = %d, want 1", got)
	}
}

func TestApplyConfigDisequalityPicksSmallestExcluded(t *testing.T) {
	dev := MustNew(nic.MustLoad("e1000e"), Config{})
	if err := dev.ApplyConfig([]core.Constraint{
		{Var: "ctx.a", Val: u64(0), Equal: false},
		{Var: "ctx.a", Val: u64(1), Equal: false},
		{Var: "ctx.a", Val: u64(2), Equal: false},
		{Var: "ctx.b", Val: u64(1), Equal: false},
	}); err != nil {
		t.Fatal(err)
	}
	if got := dev.ReadReg("ctx.a"); got != 3 {
		t.Errorf("ctx.a = %d, want 3 (smallest value not excluded)", got)
	}
	if got := dev.ReadReg("ctx.b"); got != 0 {
		t.Errorf("ctx.b = %d, want 0", got)
	}
	// An equality on the same variable wins over disequalities that don't
	// contradict it.
	if err := dev.ApplyConfig([]core.Constraint{
		{Var: "ctx.c", Val: u64(0), Equal: false},
		{Var: "ctx.c", Val: u64(7), Equal: true},
	}); err != nil {
		t.Fatal(err)
	}
	if got := dev.ReadReg("ctx.c"); got != 7 {
		t.Errorf("ctx.c = %d, want 7 (equality wins)", got)
	}
}

// TestReconfigureWithPendingCompletions reprograms the context while the
// completion ring still holds records serialized under the old layout: the
// pending records must stay readable through the old accessors, and records
// produced after the switch must follow the new layout.
func TestReconfigureWithPendingCompletions(t *testing.T) {
	oldRes := compileForPath(t, semantics.IPChecksum, semantics.RSS)
	newRes := compileForPath(t, semantics.RSS, semantics.IPChecksum)

	dev := MustNew(nic.MustLoad("e1000e"), Config{})
	if err := dev.ApplyConfig(oldRes.Config); err != nil {
		t.Fatal(err)
	}
	golden := softnic.Funcs()
	oldRT := codegen.NewRuntime(oldRes, golden)
	newRT := codegen.NewRuntime(newRes, golden)
	p := testPacket()

	const pending = 5
	for i := 0; i < pending; i++ {
		if !dev.RxPacket(p) {
			t.Fatalf("rx %d failed", i)
		}
	}

	// Reconfigure while the ring is non-empty (completions not consumed).
	if err := dev.ApplyConfig(newRes.Config); err != nil {
		t.Fatal(err)
	}
	if ap, err := dev.ActivePath(); err != nil || !ap.Prov().Has(semantics.RSS) {
		t.Fatalf("active path after reconfig = %v (err %v), want rss branch", ap, err)
	}
	for i := 0; i < pending; i++ {
		if !dev.RxPacket(p) {
			t.Fatalf("rx %d (new layout) failed", i)
		}
	}

	wantCsum := uint64(golden[semantics.IPChecksum](p)) & 0xFFFF
	wantRSS := uint64(golden[semantics.RSS](p)) & 0xFFFFFFFF
	drained := 0
	for dev.CmptRing.Consume(func(cmpt []byte) {
		if drained < pending {
			got, err := oldRT.Read(semantics.IPChecksum, cmpt, p)
			if err != nil {
				t.Fatalf("old completion %d: %v", drained, err)
			}
			if got != wantCsum {
				t.Errorf("old completion %d: ip_checksum = %#x, want %#x", drained, got, wantCsum)
			}
		} else {
			got, err := newRT.Read(semantics.RSS, cmpt, p)
			if err != nil {
				t.Fatalf("new completion %d: %v", drained, err)
			}
			if got != wantRSS {
				t.Errorf("new completion %d: rss = %#x, want %#x", drained, got, wantRSS)
			}
		}
		drained++
	}) {
	}
	if drained != 2*pending {
		t.Fatalf("drained %d completions, want %d", drained, 2*pending)
	}
	if st := dev.Stats(); st.Drops != 0 {
		t.Fatalf("drops = %d, want 0", st.Drops)
	}
}

// TestReconfigureAcrossRingWrap forces the drain to straddle the ring's
// wrap-around point: a small ring is cycled past its capacity, left partly
// full across a reconfiguration, and every surviving completion must still
// decode under the layout that produced it.
func TestReconfigureAcrossRingWrap(t *testing.T) {
	oldRes := compileForPath(t, semantics.IPChecksum, semantics.RSS)
	newRes := compileForPath(t, semantics.RSS, semantics.IPChecksum)

	const cap = 8
	dev := MustNew(nic.MustLoad("e1000e"), Config{RingEntries: cap})
	if err := dev.ApplyConfig(oldRes.Config); err != nil {
		t.Fatal(err)
	}
	golden := softnic.Funcs()
	oldRT := codegen.NewRuntime(oldRes, golden)
	newRT := codegen.NewRuntime(newRes, golden)
	p := testPacket()
	wantCsum := uint64(golden[semantics.IPChecksum](p)) & 0xFFFF
	wantRSS := uint64(golden[semantics.RSS](p)) & 0xFFFFFFFF

	// Advance the producer/consumer cursors most of the way around so the
	// next fill wraps: produce 6, consume 6, then fill the ring.
	for i := 0; i < 6; i++ {
		if !dev.RxPacket(p) {
			t.Fatalf("warmup rx %d failed", i)
		}
		if !dev.CmptRing.Pop() {
			t.Fatalf("warmup pop %d failed", i)
		}
	}
	for i := 0; i < cap; i++ {
		if !dev.RxPacket(p) {
			t.Fatalf("fill rx %d failed (occupancy %d)", i, dev.CmptRing.Occupancy())
		}
	}
	// Ring full: the device drops like hardware would.
	if dev.RxPacket(p) {
		t.Fatal("rx on a full ring should fail")
	}
	if st := dev.Stats(); st.Drops != 1 || st.Ring.FullStalls != 1 {
		t.Fatalf("drops = %d fullstalls = %d, want 1/1", st.Drops, st.Ring.FullStalls)
	}

	// Drain half under the old layout, reconfigure, refill past the wrap
	// point, then drain everything.
	for i := 0; i < cap/2; i++ {
		if !dev.CmptRing.Consume(func(cmpt []byte) {
			got, err := oldRT.Read(semantics.IPChecksum, cmpt, p)
			if err != nil || got != wantCsum {
				t.Fatalf("pre-switch drain %d: ip_checksum = %#x err %v, want %#x", i, got, err, wantCsum)
			}
		}) {
			t.Fatalf("pre-switch consume %d failed", i)
		}
	}
	if err := dev.ApplyConfig(newRes.Config); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cap/2; i++ {
		if !dev.RxPacket(p) {
			t.Fatalf("post-switch rx %d failed", i)
		}
	}
	if occ := dev.CmptRing.Occupancy(); occ != cap {
		t.Fatalf("occupancy = %d, want %d", occ, cap)
	}
	drained := 0
	for dev.CmptRing.Consume(func(cmpt []byte) {
		if drained < cap/2 {
			got, err := oldRT.Read(semantics.IPChecksum, cmpt, p)
			if err != nil || got != wantCsum {
				t.Errorf("old completion %d: ip_checksum = %#x err %v, want %#x", drained, got, err, wantCsum)
			}
		} else {
			got, err := newRT.Read(semantics.RSS, cmpt, p)
			if err != nil || got != wantRSS {
				t.Errorf("new completion %d: rss = %#x err %v, want %#x", drained, got, err, wantRSS)
			}
		}
		drained++
	}) {
	}
	if drained != cap {
		t.Fatalf("drained %d, want %d", drained, cap)
	}
	st := dev.CmptRing.Stats()
	if st.Produced != 6+cap+cap/2 || st.Consumed != st.Produced {
		t.Fatalf("ring produced/consumed = %d/%d, want %d/%d", st.Produced, st.Consumed, 6+cap+cap/2, 6+cap+cap/2)
	}
}
