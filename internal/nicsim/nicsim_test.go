package nicsim

import (
	"testing"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
)

func testPacket() []byte {
	return pkt.NewBuilder().
		WithVLAN(0x0123).
		WithIPv4([4]byte{192, 168, 1, 10}, [4]byte{10, 0, 0, 1}).
		WithTCP(443, 51000, 0x18).
		WithIPID(0xBEEF).
		WithPayload([]byte("hello world")).
		Build()
}

func compileOn(t *testing.T, nicName string, sems ...semantics.Name) *core.Result {
	t.Helper()
	intent, err := core.IntentFromSemantics("intent", semantics.Default, sems...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nic.MustLoad(nicName).Compile(intent, core.CompileOptions{})
	if err != nil {
		t.Fatalf("compile %s: %v", nicName, err)
	}
	return res
}

// TestEndToEndE1000e drives the full loop: compile intent → program device →
// receive packet → read metadata through generated accessors → compare with
// golden software values.
func TestEndToEndE1000e(t *testing.T) {
	res := compileOn(t, "e1000e", semantics.RSS, semantics.VLAN, semantics.PktLen)
	dev := MustNew(nic.MustLoad("e1000e"), Config{})
	if err := dev.ApplyConfig(res.Config); err != nil {
		t.Fatal(err)
	}
	p := testPacket()
	if !dev.RxPacket(p) {
		t.Fatal("rx failed")
	}
	cmpt := dev.CmptRing.Peek()
	if cmpt == nil {
		t.Fatal("no completion")
	}
	rt := codegen.NewRuntime(res, softnic.Funcs())

	var in pkt.Info
	if err := pkt.Decode(p, &in); err != nil {
		t.Fatal(err)
	}
	want := map[semantics.Name]uint64{
		semantics.RSS:    uint64(softnic.RSS(&in)),
		semantics.VLAN:   0x0123,
		semantics.PktLen: uint64(len(p)),
	}
	for s, w := range want {
		got, err := rt.Read(s, cmpt, p)
		if err != nil {
			t.Fatalf("read %s: %v", s, err)
		}
		if got != w {
			t.Errorf("%s = %#x, want %#x", s, got, w)
		}
	}
}

// TestInterpreterMatchesEnumeratedLayout cross-validates the two independent
// code paths: the CFG interpreter (device) must produce completions whose
// size equals the compiler-enumerated path layout, for every path of every
// NIC.
func TestInterpreterMatchesEnumeratedLayout(t *testing.T) {
	p := testPacket()
	for _, m := range nic.All() {
		paths, err := m.Paths()
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range paths {
			dev := MustNew(m, Config{})
			if err := dev.ApplyConfig(path.Constraints); err != nil {
				t.Fatalf("%s path %d: %v", m.Name, path.ID, err)
			}
			active, err := dev.ActivePath()
			if err != nil {
				t.Fatalf("%s path %d: %v", m.Name, path.ID, err)
			}
			if active.ID != path.ID {
				// Some configs legitimately match several paths (e.g. two
				// paths with identical constraints); require identical
				// layouts in that case.
				if active.SizeBits() != path.SizeBits() {
					t.Errorf("%s: config for path %d activates path %d with different layout", m.Name, path.ID, active.ID)
				}
			}
			if !dev.RxPacket(p) {
				t.Fatalf("%s path %d: rx failed", m.Name, path.ID)
			}
			var got []byte
			dev.CmptRing.Consume(func(e []byte) { got = append([]byte(nil), e...) })
			// The interpreter pads to whole bytes exactly like SizeBytes.
			wantLen := path.SizeBytes()
			// The ring stores fixed-size entries; compare the meaningful
			// prefix only.
			if len(got) < wantLen {
				t.Errorf("%s path %d: completion %dB < layout %dB", m.Name, path.ID, len(got), wantLen)
			}
			// Every hardware field must round-trip via its layout offsets.
			rtDesc := got[:wantLen]
			_ = rtDesc
		}
	}
}

// TestFieldValuesMatchGolden verifies, for the mlx5 full CQE (all 12
// fields), that every semantic value the device serialized equals the golden
// software computation.
func TestFieldValuesMatchGolden(t *testing.T) {
	m := nic.MustLoad("mlx5")
	paths, err := m.Paths()
	if err != nil {
		t.Fatal(err)
	}
	var full *core.Path
	for _, p := range paths {
		if p.SizeBytes() == 64 {
			full = p
		}
	}
	dev := MustNew(m, Config{Mark: 0xABCDE, QueueID: 7})
	if err := dev.ApplyConfig(full.Constraints); err != nil {
		t.Fatal(err)
	}
	p := testPacket()
	if !dev.RxPacket(p) {
		t.Fatal("rx failed")
	}
	cmpt := dev.CmptRing.Peek()

	var in pkt.Info
	if err := pkt.Decode(p, &in); err != nil {
		t.Fatal(err)
	}
	want := map[semantics.Name]uint64{
		semantics.RSS:        uint64(softnic.RSS(&in)),
		semantics.VLAN:       0x0123,
		semantics.Timestamp:  100, // first packet, one step
		semantics.PktLen:     uint64(len(p)),
		semantics.PType:      uint64(in.PTypeCode()),
		semantics.FlowID:     uint64(softnic.FlowID(&in)) & 0xFFFFFF, // 24-bit field
		semantics.Mark:       0xABCDE,
		semantics.LROSegs:    1,
		semantics.IPChecksum: uint64(softnic.IPChecksum(&in)),
		semantics.TunnelID:   0,
		semantics.ErrorFlags: 0,
	}
	for s, w := range want {
		f := full.Field(s)
		if f == nil {
			t.Errorf("full CQE missing %s", s)
			continue
		}
		got := readField(cmpt, f)
		if got != w {
			t.Errorf("%s = %#x, want %#x", s, got, w)
		}
	}
}

func readField(b []byte, f *core.LayoutField) uint64 {
	return bitfieldRead(b, f.OffsetBits, f.WidthBits)
}

func bitfieldRead(b []byte, off, w int) uint64 {
	var v uint64
	for i := 0; i < w; i++ {
		bit := (b[(off+i)/8] >> (7 - (off+i)%8)) & 1
		v = v<<1 | uint64(bit)
	}
	return v
}

func TestConfigSwitchesLayout(t *testing.T) {
	m := nic.MustLoad("mlx5")
	dev := MustNew(m, Config{})
	p := testPacket()

	// Compressed CQE (16B).
	dev.WriteReg("ctx.cqe_format", 1)
	if !dev.RxPacket(p) {
		t.Fatal("rx failed")
	}
	active, err := dev.ActivePath()
	if err != nil {
		t.Fatal(err)
	}
	if active.SizeBytes() != 16 {
		t.Errorf("compressed path size = %d", active.SizeBytes())
	}

	// Mini CQE with checksum content (8B).
	dev.WriteReg("ctx.cqe_format", 2)
	dev.WriteReg("ctx.mini_fmt", 1)
	active, err = dev.ActivePath()
	if err != nil {
		t.Fatal(err)
	}
	if active.SizeBytes() != 8 || !active.Prov().Has(semantics.IPChecksum) {
		t.Errorf("mini-csum path = %v", active)
	}
}

func TestRingBackpressureDrops(t *testing.T) {
	dev := MustNew(nic.MustLoad("e1000"), Config{RingEntries: 4})
	p := testPacket()
	accepted := 0
	for i := 0; i < 10; i++ {
		if dev.RxPacket(p) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Errorf("accepted = %d, want ring capacity 4", accepted)
	}
	if st := dev.Stats(); st.Drops != 6 {
		t.Errorf("drops = %d, want 6", st.Drops)
	}
	// Draining the ring restores acceptance.
	for dev.CmptRing.Pop() {
	}
	if !dev.RxPacket(p) {
		t.Error("rx after drain should succeed")
	}
}

func TestTimestampAdvances(t *testing.T) {
	m := nic.MustLoad("mlx5")
	dev := MustNew(m, Config{TimestampStep: 50})
	dev.WriteReg("ctx.cqe_format", 0) // full CQE carries the timestamp
	p := testPacket()
	paths, _ := m.Paths()
	var full *core.Path
	for _, pp := range paths {
		if pp.SizeBytes() == 64 {
			full = pp
		}
	}
	tsField := full.Field(semantics.Timestamp)
	var prev uint64
	for i := 1; i <= 3; i++ {
		if !dev.RxPacket(p) {
			t.Fatal("rx failed")
		}
		var ts uint64
		dev.CmptRing.Consume(func(e []byte) { ts = bitfieldRead(e, tsField.OffsetBits, tsField.WidthBits) })
		if ts != uint64(i)*50 {
			t.Errorf("packet %d ts = %d, want %d", i, ts, i*50)
		}
		if ts <= prev {
			t.Error("timestamps must be monotonic")
		}
		prev = ts
	}
}

func TestTxRoundTrip(t *testing.T) {
	dev := MustNew(nic.MustLoad("qdma"), Config{})
	dev.WriteReg("h2c_ctx.desc_size", 32)
	want := map[semantics.Name]uint64{
		semantics.PktLen:      1500,
		semantics.SegCnt:      3,
		semantics.VLAN:        0x0456,
		semantics.ChecksumAny: 2,
		semantics.CryptoCtx:   0xDEAD,
		semantics.TunnelID:    0x123456,
	}
	desc, err := dev.BuildTxDescriptor(want, map[string]uint64{"desc_hdr.base.addr": 0xFEEDFACE})
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 32 {
		t.Fatalf("descriptor size = %d, want 32", len(desc))
	}
	res, err := dev.TxSubmit(desc)
	if err != nil {
		t.Fatal(err)
	}
	for s, w := range want {
		if res.Values[s] != w {
			t.Errorf("%s = %#x, want %#x", s, res.Values[s], w)
		}
	}
	if res.Raw["desc_hdr.base.addr"] != 0xFEEDFACE {
		t.Errorf("addr = %#x", res.Raw["desc_hdr.base.addr"])
	}
}

func TestTxLayoutSelection(t *testing.T) {
	dev := MustNew(nic.MustLoad("qdma"), Config{})
	for _, size := range []int{8, 16, 32} {
		dev.WriteReg("h2c_ctx.desc_size", uint64(size))
		l, err := dev.ActiveTxLayout()
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if l.SizeBytes() != size {
			t.Errorf("desc_size %d selects %dB layout", size, l.SizeBytes())
		}
	}
	dev.WriteReg("h2c_ctx.desc_size", 64) // rejected by the description
	if _, err := dev.ActiveTxLayout(); err == nil {
		t.Error("desc_size 64 should match no accepted layout")
	}
}

func TestTxShortDescriptorRejected(t *testing.T) {
	dev := MustNew(nic.MustLoad("qdma"), Config{})
	dev.WriteReg("h2c_ctx.desc_size", 16)
	if _, err := dev.TxSubmit(make([]byte, 8)); err == nil {
		t.Error("short descriptor should be rejected")
	}
}

func TestKVKeyEndToEnd(t *testing.T) {
	// The paper's Fig. 1 scenario: a key-value-store request key delivered
	// through a programmable NIC's completion.
	res := compileOn(t, "qdma", semantics.KVKey, semantics.RSS)
	dev := MustNew(nic.MustLoad("qdma"), Config{})
	if err := dev.ApplyConfig(res.Config); err != nil {
		t.Fatal(err)
	}
	p := pkt.NewBuilder().
		WithUDP(4000, 11211).
		WithPayload([]byte("get user:4711\r\n")).
		Build()
	if !dev.RxPacket(p) {
		t.Fatal("rx failed")
	}
	cmpt := dev.CmptRing.Peek()
	rt := codegen.NewRuntime(res, softnic.Funcs())
	got, err := rt.Read(semantics.KVKey, cmpt, p)
	if err != nil {
		t.Fatal(err)
	}
	var in pkt.Info
	if err := pkt.Decode(p, &in); err != nil {
		t.Fatal(err)
	}
	if want := softnic.KVKey(&in); got != want {
		t.Errorf("kv_key = %#x, want %#x", got, want)
	}
	if got == 0 {
		t.Error("kv_key should be non-zero for a well-formed request")
	}
}

func TestBadChecksumSetsErrorFlags(t *testing.T) {
	m := nic.MustLoad("e1000")
	dev := MustNew(m, Config{})
	paths, _ := m.Paths()
	errField := paths[0].Field(semantics.ErrorFlags)
	if errField == nil {
		t.Fatal("e1000 layout has no error_flags")
	}
	good := pkt.NewBuilder().Build()
	bad := pkt.NewBuilder().WithBadL4Checksum().Build()
	dev.RxPacket(good)
	var flags uint64
	dev.CmptRing.Consume(func(e []byte) { flags = bitfieldRead(e, errField.OffsetBits, errField.WidthBits) })
	if flags != 0 {
		t.Errorf("good packet error flags = %#x", flags)
	}
	dev.RxPacket(bad)
	dev.CmptRing.Consume(func(e []byte) { flags = bitfieldRead(e, errField.OffsetBits, errField.WidthBits) })
	if flags&2 == 0 {
		t.Errorf("bad L4 checksum not flagged: %#x", flags)
	}
}

func TestRxBurst(t *testing.T) {
	dev := MustNew(nic.MustLoad("e1000"), Config{})
	batch := make([][]byte, 16)
	for i := range batch {
		batch[i] = testPacket()
	}
	if n := dev.RxBurst(batch); n != 16 {
		t.Errorf("burst accepted %d", n)
	}
	if dev.CmptRing.Len() != 16 {
		t.Errorf("ring len = %d", dev.CmptRing.Len())
	}
}
