package nicsim

import (
	"io"
	"strings"
	"sync"
	"testing"

	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/obs"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
)

func TestDeviceStatsContents(t *testing.T) {
	res := compileOn(t, "e1000e", semantics.RSS, semantics.VLAN)
	dev := MustNew(nic.MustLoad("e1000e"), Config{})
	if err := dev.ApplyConfig(res.Config); err != nil {
		t.Fatal(err)
	}
	p := testPacket()
	const n = 5
	for i := 0; i < n; i++ {
		if !dev.RxPacket(p) {
			t.Fatalf("rx %d failed", i)
		}
	}
	dev.CmptRing.Consume(func([]byte) {})
	dev.CmptRing.Consume(func([]byte) {})

	st := dev.Stats()
	if st.RxPackets != n || st.Completions != n {
		t.Errorf("rx=%d completions=%d, want %d", st.RxPackets, st.Completions, n)
	}
	if st.RxBytes != uint64(n*len(p)) {
		t.Errorf("rx bytes = %d, want %d", st.RxBytes, n*len(p))
	}
	if st.Drops != 0 {
		t.Errorf("drops = %d", st.Drops)
	}
	active, err := dev.ActivePath()
	if err != nil {
		t.Fatal(err)
	}
	if st.CompletionBytes != uint64(n*active.SizeBytes()) {
		t.Errorf("completion bytes = %d, want %d", st.CompletionBytes, n*active.SizeBytes())
	}
	if len(st.CompletionsByPath) != 1 || st.CompletionsByPath[active.ID] != n {
		t.Errorf("per-path completions = %v, want {%d: %d}", st.CompletionsByPath, active.ID, n)
	}
	// The offload engines run for every accepted packet regardless of which
	// semantics the active layout carries.
	for _, s := range []semantics.Name{semantics.RSS, semantics.VLAN, semantics.PktLen} {
		if st.Offloads[s] != n {
			t.Errorf("offload %s = %d, want %d", s, st.Offloads[s], n)
		}
	}
	want := st.Ring
	if want.Produced != n || want.Consumed != 2 || want.Occupancy != n-2 || want.HighWater != n {
		t.Errorf("ring stats = %+v", want)
	}
}

func TestDeviceMetricsExposition(t *testing.T) {
	res := compileOn(t, "e1000e", semantics.RSS)
	dev := MustNew(nic.MustLoad("e1000e"), Config{})
	if err := dev.ApplyConfig(res.Config); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	dev.RegisterMetrics(reg, obs.L("queue", "0"))
	for i := 0; i < 3; i++ {
		dev.RxPacket(testPacket())
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`opendesc_dev_rx_packets_total{nic="e1000e",queue="0"} 3`,
		`opendesc_dev_offload_invocations_total{nic="e1000e",queue="0",semantic="rss"} 3`,
		`opendesc_ring_produced_total{nic="e1000e",queue="0",ring="cmpt"} 3`,
		`opendesc_ring_occupancy{nic="e1000e",queue="0",ring="cmpt"} 3`,
		`opendesc_ring_capacity{nic="e1000e",queue="0",ring="cmpt"} 1024`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Registering twice must not duplicate series.
	dev.RegisterMetrics(reg, obs.L("queue", "0"))
	var sb2 strings.Builder
	reg.WritePrometheus(&sb2)
	if sb2.String() != out {
		t.Error("re-registration changed the exposition")
	}
}

func TestMultiQueueStatsAggregation(t *testing.T) {
	m := nic.MustLoad("e1000e")
	resA := compileOn(t, "e1000e", semantics.RSS)
	resB := compileOn(t, "e1000e", semantics.RSS, semantics.VLAN)
	steer := SteerByL4Port(map[uint16]int{80: 0, 443: 1}, -1)
	mq, err := NewMultiQueue(m, []*core.Result{resA, resB}, steer, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(port uint16) []byte {
		return pkt.NewBuilder().WithUDP(12345, port).WithPayload([]byte("x")).Build()
	}
	for i := 0; i < 3; i++ {
		if q := mq.RxPacket(mk(80)); q != 0 {
			t.Fatalf("port 80 steered to %d", q)
		}
	}
	for i := 0; i < 2; i++ {
		if q := mq.RxPacket(mk(443)); q != 1 {
			t.Fatalf("port 443 steered to %d", q)
		}
	}
	if q := mq.RxPacket(mk(9999)); q != -1 {
		t.Fatalf("unmatched port steered to %d", q)
	}

	st := mq.Stats()
	if len(st.PerQueue) != 2 {
		t.Fatalf("queues = %d", len(st.PerQueue))
	}
	if st.PerQueue[0].RxPackets != 3 || st.PerQueue[1].RxPackets != 2 {
		t.Errorf("per-queue rx = %d/%d", st.PerQueue[0].RxPackets, st.PerQueue[1].RxPackets)
	}
	if st.Aggregate.RxPackets != 5 {
		t.Errorf("aggregate rx = %d", st.Aggregate.RxPackets)
	}
	if st.SteerDrops != 1 || st.Aggregate.Drops != 1 {
		t.Errorf("steer drops = %d, aggregate drops = %d", st.SteerDrops, st.Aggregate.Drops)
	}
	if mq.Dropped() != 1 {
		t.Errorf("Dropped() = %d", mq.Dropped())
	}
	if st.Aggregate.Offloads[semantics.RSS] != 5 {
		t.Errorf("aggregate rss offloads = %d", st.Aggregate.Offloads[semantics.RSS])
	}
	if st.Aggregate.Ring.Produced != 5 || st.Aggregate.Ring.Occupancy != 5 {
		t.Errorf("aggregate ring = %+v", st.Aggregate.Ring)
	}

	reg := obs.NewRegistry()
	mq.RegisterMetrics(reg)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	for _, want := range []string{
		`opendesc_dev_rx_packets_total{nic="e1000e",queue="0"} 3`,
		`opendesc_dev_rx_packets_total{nic="e1000e",queue="1"} 2`,
		`opendesc_mq_steer_drops_total{nic="e1000e"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestStatsScrapeRace runs the device RX path (producer), the host
// completion loop (consumer), and a stats scraper concurrently. Run under
// -race this verifies the counters are safe to read while the datapath is
// live; afterwards the snapshot must be exactly consistent.
func TestStatsScrapeRace(t *testing.T) {
	res := compileOn(t, "e1000e", semantics.RSS, semantics.PktLen)
	dev := MustNew(nic.MustLoad("e1000e"), Config{RingEntries: 64})
	if err := dev.ApplyConfig(res.Config); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	dev.RegisterMetrics(reg, obs.L("queue", "0"))

	const packets = 2000
	p := testPacket()
	var wg sync.WaitGroup
	wg.Add(2)
	accepted := make(chan uint64, 1)
	stop := make(chan struct{})

	go func() { // device: producer
		defer wg.Done()
		var ok uint64
		for i := 0; i < packets; {
			if dev.RxPacket(p) {
				ok++
			}
			i++
		}
		accepted <- ok
	}()
	go func() { // host: consumer
		defer wg.Done()
		consumed := 0
		for consumed < packets {
			select {
			case <-stop:
				return
			default:
			}
			if dev.CmptRing.Consume(func([]byte) {}) {
				consumed++
			}
		}
	}()
	// Scraper: hammer both snapshot APIs while the datapath runs.
	for i := 0; i < 200; i++ {
		st := dev.Stats()
		if st.Ring.Produced < st.Ring.Consumed {
			t.Errorf("consumed %d > produced %d", st.Ring.Consumed, st.Ring.Produced)
		}
		reg.WritePrometheus(io.Discard)
	}

	got := <-accepted
	close(stop)
	wg.Wait()
	st := dev.Stats()
	if st.RxPackets+st.Drops != packets {
		t.Errorf("rx %d + drops %d != %d attempts", st.RxPackets, st.Drops, packets)
	}
	if st.RxPackets != got || st.Ring.Produced != got {
		t.Errorf("rx=%d produced=%d, want %d", st.RxPackets, st.Ring.Produced, got)
	}
	if st.Drops != st.Ring.FullStalls {
		t.Errorf("drops %d != full stalls %d", st.Drops, st.Ring.FullStalls)
	}
	if hw := st.Ring.HighWater; hw < 1 || hw > 64 {
		t.Errorf("high water = %d", hw)
	}
}
