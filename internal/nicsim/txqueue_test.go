package nicsim

import (
	"bytes"
	"testing"

	"opendesc/internal/nic"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
)

func TestTxQueueEndToEnd(t *testing.T) {
	dev := MustNew(nic.MustLoad("qdma"), Config{})
	dev.WriteReg("h2c_ctx.desc_size", 32) // full offload descriptor
	q, err := dev.NewTxQueue(64)
	if err != nil {
		t.Fatal(err)
	}
	p1 := pkt.NewBuilder().WithTCP(1000, 2000, 0x18).WithPayload([]byte("first")).Build()
	p2 := pkt.NewBuilder().WithUDP(3000, 4000).WithPayload([]byte("second")).Build()

	ok, err := q.Post(p1, map[semantics.Name]uint64{
		semantics.ChecksumAny: 2,
		semantics.VLAN:        0x0123,
	})
	if err != nil || !ok {
		t.Fatalf("post 1: %v %v", ok, err)
	}
	ok, err = q.Post(p2, nil)
	if err != nil || !ok {
		t.Fatalf("post 2: %v %v", ok, err)
	}
	if q.Pending() != 2 {
		t.Fatalf("pending = %d", q.Pending())
	}

	n, err := q.DeviceRun(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || q.Pending() != 0 {
		t.Fatalf("transmitted %d, pending %d", n, q.Pending())
	}
	caps := q.Captured()
	if len(caps) != 2 {
		t.Fatalf("captured = %d", len(caps))
	}
	if !bytes.Equal(caps[0].Frame, p1) || !bytes.Equal(caps[1].Frame, p2) {
		t.Error("transmitted frames differ from posted packets")
	}
	// The device decoded the host's offload intent from the descriptor.
	if caps[0].Intent[semantics.ChecksumAny] != 2 || caps[0].Intent[semantics.VLAN] != 0x0123 {
		t.Errorf("decoded intent = %v", caps[0].Intent)
	}
	if caps[0].Intent[semantics.PktLen] != uint64(len(p1)) {
		t.Errorf("pkt_len = %d, want %d", caps[0].Intent[semantics.PktLen], len(p1))
	}
	if tx, errs := q.Stats(); tx != 2 || errs != 0 {
		t.Errorf("stats = %d/%d", tx, errs)
	}
}

func TestTxQueueRingFull(t *testing.T) {
	dev := MustNew(nic.MustLoad("e1000"), Config{})
	q, err := dev.NewTxQueue(4)
	if err != nil {
		t.Fatal(err)
	}
	p := pkt.NewBuilder().Build()
	posted := 0
	for i := 0; i < 10; i++ {
		ok, err := q.Post(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			posted++
		}
	}
	if posted != 4 {
		t.Errorf("posted = %d, want ring capacity 4", posted)
	}
	if n, _ := q.DeviceRun(2); n != 2 {
		t.Errorf("bounded run transmitted %d", n)
	}
	ok, _ := q.Post(p, nil)
	if !ok {
		t.Error("post after device consumed should succeed")
	}
}

func TestTxQueueAcrossLayouts(t *testing.T) {
	// The same queue logic works for every bundled NIC's TX layout.
	for _, m := range nic.All() {
		dev := MustNew(m, Config{})
		if m.Name == "qdma" {
			dev.WriteReg("h2c_ctx.desc_size", 16)
		}
		q, err := dev.NewTxQueue(8)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		p := pkt.NewBuilder().WithUDP(5, 6).Build()
		ok, err := q.Post(p, nil)
		if err != nil || !ok {
			t.Fatalf("%s post: %v %v", m.Name, ok, err)
		}
		if n, err := q.DeviceRun(0); err != nil || n != 1 {
			t.Fatalf("%s run: %d %v", m.Name, n, err)
		}
		if got := q.Captured()[0].Frame; !bytes.Equal(got, p) {
			t.Errorf("%s: frame mangled", m.Name)
		}
	}
}

func TestTxQueueNoLayoutConfigured(t *testing.T) {
	dev := MustNew(nic.MustLoad("qdma"), Config{})
	dev.WriteReg("h2c_ctx.desc_size", 64) // rejected by the DescParser
	if _, err := dev.NewTxQueue(8); err == nil {
		t.Error("unconfigurable TX layout should fail queue creation")
	}
}
