package nicsim

import (
	"testing"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
)

// TestMultiQueueDifferentIntents runs the paper's multi-instance scenario:
// a KV queue (16B entries with the key digest) and a telemetry queue (32B
// entries with timestamps) on the same programmable NIC, with port steering.
func TestMultiQueueDifferentIntents(t *testing.T) {
	m := nic.MustLoad("qdma")
	kvRes := compileOn(t, "qdma", semantics.KVKey, semantics.RSS)
	tsRes := compileOn(t, "qdma", semantics.Timestamp, semantics.RSS, semantics.PktLen)

	mq, err := NewMultiQueue(m, []*core.Result{kvRes, tsRes},
		SteerByL4Port(map[uint16]int{11211: 0}, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}

	kvPkt := pkt.NewBuilder().WithUDP(9000, 11211).WithPayload([]byte("get k:1\r\n")).Build()
	webPkt := pkt.NewBuilder().WithTCP(443, 50000, 0x18).Build()

	if q := mq.RxPacket(kvPkt); q != 0 {
		t.Fatalf("kv packet steered to queue %d", q)
	}
	if q := mq.RxPacket(webPkt); q != 1 {
		t.Fatalf("web packet steered to queue %d", q)
	}
	if mq.Queues[0].CmptRing.Len() != 1 || mq.Queues[1].CmptRing.Len() != 1 {
		t.Fatal("completions not delivered per queue")
	}

	// Queue 0 serves kv_key in hardware from a 16B entry.
	kvRT := codegen.NewRuntime(kvRes, softnic.Funcs())
	if kvRes.CompletionBytes() != 16 {
		t.Errorf("kv queue entry = %dB", kvRes.CompletionBytes())
	}
	cmpt := mq.Queues[0].CmptRing.Peek()
	key, err := kvRT.Read(semantics.KVKey, cmpt, kvPkt)
	if err != nil {
		t.Fatal(err)
	}
	var in pkt.Info
	if err := pkt.Decode(kvPkt, &in); err != nil {
		t.Fatal(err)
	}
	if want := softnic.KVKey(&in); key != want {
		t.Errorf("kv key = %#x, want %#x", key, want)
	}

	// Queue 1 serves timestamps from a 32B entry.
	tsRT := codegen.NewRuntime(tsRes, softnic.Funcs())
	if tsRes.CompletionBytes() != 32 {
		t.Errorf("telemetry queue entry = %dB", tsRes.CompletionBytes())
	}
	cmpt = mq.Queues[1].CmptRing.Peek()
	ts, err := tsRT.Read(semantics.Timestamp, cmpt, webPkt)
	if err != nil {
		t.Fatal(err)
	}
	if ts == 0 {
		t.Error("timestamp should be non-zero")
	}
	// The queue id is reported per queue.
	if mq.Queues[1].cfg.QueueID != 1 {
		t.Errorf("queue id = %d", mq.Queues[1].cfg.QueueID)
	}
}

func TestMultiQueueDropsNegativeSteer(t *testing.T) {
	m := nic.MustLoad("mlx5")
	res := compileOn(t, "mlx5", semantics.RSS)
	mq, err := NewMultiQueue(m, []*core.Result{res},
		func(in *pkt.Info) int {
			if in.L4 == pkt.L4TCP {
				return -1 // filter out TCP
			}
			return 0
		}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tcp := pkt.NewBuilder().WithTCP(1, 2, 0).Build()
	udp := pkt.NewBuilder().WithUDP(3, 4).Build()
	if q := mq.RxPacket(tcp); q != -1 {
		t.Errorf("tcp steered to %d, want drop", q)
	}
	if q := mq.RxPacket(udp); q != 0 {
		t.Errorf("udp steered to %d", q)
	}
	if mq.Dropped() != 1 {
		t.Errorf("dropped = %d", mq.Dropped())
	}
}

func TestMultiQueueOutOfRangeSteer(t *testing.T) {
	m := nic.MustLoad("mlx5")
	res := compileOn(t, "mlx5", semantics.RSS)
	mq, err := NewMultiQueue(m, []*core.Result{res},
		func(*pkt.Info) int { return 7 }, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if q := mq.RxPacket(pkt.NewBuilder().Build()); q != -1 {
		t.Errorf("out-of-range steer delivered to %d", q)
	}
}

func TestMultiQueueValidation(t *testing.T) {
	m := nic.MustLoad("mlx5")
	if _, err := NewMultiQueue(m, nil, func(*pkt.Info) int { return 0 }, Config{}); err == nil {
		t.Error("zero queues accepted")
	}
	res := compileOn(t, "mlx5", semantics.RSS)
	if _, err := NewMultiQueue(m, []*core.Result{res}, nil, Config{}); err == nil {
		t.Error("nil steer accepted")
	}
}
