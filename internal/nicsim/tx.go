package nicsim

import (
	"fmt"

	"opendesc/internal/bitfield"
	"opendesc/internal/core"
	"opendesc/internal/semantics"
)

// TxResult is the device-side interpretation of one posted TX descriptor:
// the offload intent the host conveyed, as the NIC's DescParser decoded it.
type TxResult struct {
	Layout *core.TxLayout
	// Values maps each semantic-tagged descriptor field to its value.
	Values map[semantics.Name]uint64
	// Raw maps every field (by qualified name) to its value, semantic or not.
	Raw map[string]uint64
}

// ActiveTxLayout returns the TX descriptor format the current context
// registers select, mirroring ActivePath for the RX direction.
func (d *Device) ActiveTxLayout() (*core.TxLayout, error) {
	layouts, err := d.Model.TxLayouts()
	if err != nil {
		return nil, err
	}
	for _, l := range layouts {
		ok := true
		for _, c := range l.Constraints {
			got := d.ctx[c.Var]
			if c.Equal != got.Equal(c.Val) {
				ok = false
				break
			}
		}
		if ok {
			return l, nil
		}
	}
	return nil, fmt.Errorf("nicsim %s: no TX layout matches context %v", d.Model.Name, d.ctx)
}

// TxSubmit makes the device consume one host-posted TX descriptor: it runs
// the DescParser-derived layout over the raw bytes ("raw memory mapped
// through DMA and converted into structured fields") and returns the decoded
// intent.
func (d *Device) TxSubmit(desc []byte) (*TxResult, error) {
	if d.faults != nil && d.faults.Tick() {
		return nil, fmt.Errorf("nicsim %s: TX: %w", d.Model.Name, ErrDeviceHang)
	}
	layout, err := d.ActiveTxLayout()
	if err != nil {
		return nil, err
	}
	if need := layout.SizeBytes(); len(desc) < need {
		return nil, fmt.Errorf("nicsim %s: TX descriptor %dB shorter than layout %dB", d.Model.Name, len(desc), need)
	}
	res := &TxResult{
		Layout: layout,
		Values: make(map[semantics.Name]uint64),
		Raw:    make(map[string]uint64, len(layout.Fields)),
	}
	for _, f := range layout.Fields {
		if f.WidthBits > 64 {
			continue
		}
		v := bitfield.Read(desc, f.OffsetBits, f.WidthBits)
		res.Raw[f.Name] = v
		if f.Semantic != "" {
			res.Values[f.Semantic] = v
		}
	}
	return res, nil
}

// BuildTxDescriptor serializes host intent values into the active TX layout
// (the host-side mirror of TxSubmit, used by examples and tests).
func (d *Device) BuildTxDescriptor(values map[semantics.Name]uint64, raw map[string]uint64) ([]byte, error) {
	layout, err := d.ActiveTxLayout()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, layout.SizeBytes())
	for _, f := range layout.Fields {
		if f.WidthBits > 64 {
			continue
		}
		var v uint64
		var ok bool
		if raw != nil {
			v, ok = raw[f.Name]
		}
		if !ok && f.Semantic != "" && values != nil {
			v, ok = values[f.Semantic]
		}
		if !ok {
			continue
		}
		bitfield.Write(buf, f.OffsetBits, f.WidthBits, v)
	}
	return buf, nil
}
