package nicsim

import (
	"fmt"

	"opendesc/internal/ring"
	"opendesc/internal/semantics"
)

// TxQueue completes the Fig. 2 picture for the TX direction: the host posts
// descriptors into a ring (channel ① of the paper) referencing packet
// buffers (channel ②); the device consumes them, runs its DescParser-derived
// layout over the raw bytes, honours the offload intent, and "transmits".
// Transmitted frames are captured for inspection — the simulated wire.
type TxQueue struct {
	dev *Device

	descRing *ring.Ring
	buffers  *ring.BufferPool
	nextBuf  int

	// transmitted frames with the intents the device decoded for them.
	txCount  uint64
	txErrors uint64
	captured []TxCapture
	capacity int
}

// TxCapture is one transmitted frame with the device-decoded intent.
type TxCapture struct {
	Frame  []byte
	Intent map[semantics.Name]uint64
}

// NewTxQueue attaches a TX queue to a device. entries sizes the descriptor
// ring; the active TX layout (selected by the device's h2c context
// registers) fixes the descriptor size.
func (d *Device) NewTxQueue(entries int) (*TxQueue, error) {
	layout, err := d.ActiveTxLayout()
	if err != nil {
		return nil, err
	}
	if entries <= 0 {
		entries = 256
	}
	return &TxQueue{
		dev:      d,
		descRing: ring.MustNew(layout.SizeBytes(), entries),
		buffers:  ring.MustNewBufferPool(d.cfg.BufSize, entries),
		capacity: entries,
	}, nil
}

// Post enqueues one packet for transmission with the given offload intent:
// the host side writes the packet into a buffer slot and serializes a TX
// descriptor per the active layout. It returns false when the ring is full.
func (q *TxQueue) Post(packet []byte, intent map[semantics.Name]uint64) (bool, error) {
	if q.descRing.Free() == 0 {
		return false, nil
	}
	slot := q.nextBuf % q.buffers.Count()
	if err := q.buffers.Write(slot, packet); err != nil {
		return false, err
	}
	raw := map[string]uint64{}
	// The buffer address/length fields are not semantic-tagged; locate them
	// by conventional field names.
	layout, err := q.dev.ActiveTxLayout()
	if err != nil {
		return false, err
	}
	for _, f := range layout.Fields {
		switch {
		case hasSuffix(f.Name, ".addr") || hasSuffix(f.Name, ".address") || hasSuffix(f.Name, ".buffer_addr") || hasSuffix(f.Name, ".laddr"):
			raw[f.Name] = uint64(slot)
		case f.Semantic == semantics.PktLen:
			// Set via the intent map below if present; default to the
			// actual length.
			if intent == nil || intent[semantics.PktLen] == 0 {
				raw[f.Name] = uint64(len(packet))
			}
		}
	}
	desc, err := q.dev.BuildTxDescriptor(intent, raw)
	if err != nil {
		return false, err
	}
	if !q.descRing.Push(desc) {
		return false, nil
	}
	q.nextBuf++
	return true, nil
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// DeviceRun makes the device consume up to max posted descriptors: each is
// parsed through the DescParser layout, its buffer fetched, and the frame
// "transmitted" (captured). Returns how many were transmitted.
func (q *TxQueue) DeviceRun(max int) (int, error) {
	n := 0
	var firstErr error
	for (max <= 0 || n < max) && q.descRing.Len() > 0 {
		var desc []byte
		q.descRing.Consume(func(e []byte) {
			desc = append(desc[:0], e...)
		})
		res, err := q.dev.TxSubmit(desc)
		if err != nil {
			q.txErrors++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// Locate the buffer via the address field posted by the host.
		slot := -1
		for name, v := range res.Raw {
			if hasSuffix(name, ".addr") || hasSuffix(name, ".address") || hasSuffix(name, ".buffer_addr") || hasSuffix(name, ".laddr") {
				slot = int(v)
				break
			}
		}
		if slot < 0 || slot >= q.buffers.Count() {
			q.txErrors++
			if firstErr == nil {
				firstErr = fmt.Errorf("nicsim: TX descriptor without resolvable buffer address")
			}
			continue
		}
		frame := q.buffers.Bytes(slot)
		// Honour the pkt_len intent when it shortens the frame (partial
		// transmit / scatter-gather head).
		if l, ok := res.Values[semantics.PktLen]; ok && l > 0 && int(l) <= len(frame) {
			frame = frame[:l]
		}
		q.captured = append(q.captured, TxCapture{
			Frame:  append([]byte(nil), frame...),
			Intent: res.Values,
		})
		if len(q.captured) > q.capacity {
			q.captured = q.captured[1:]
		}
		q.txCount++
		n++
	}
	return n, firstErr
}

// Captured returns the transmitted frames (oldest first).
func (q *TxQueue) Captured() []TxCapture { return q.captured }

// Stats returns TX counters.
func (q *TxQueue) Stats() (tx, errs uint64) { return q.txCount, q.txErrors }

// Pending returns the number of posted, not-yet-consumed descriptors.
func (q *TxQueue) Pending() int { return q.descRing.Len() }
