package nicsim

import (
	"fmt"

	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/pkt"
)

// The paper notes that "applications might use multiple OpenDesc instances
// with different intents to obtain different queues tailored for different
// kind of traffic". MultiQueue models that: each queue carries its own
// context configuration (and therefore its own completion layout, selected
// by its own compiled intent), and a steering classifier assigns incoming
// packets to queues — like hardware flow-steering rules feeding RSS queues.

// Steer classifies a packet to a queue index. Returning a negative index
// drops the packet (an RX filter).
type Steer func(in *pkt.Info) int

// SteerByL4Port builds a classifier sending packets whose L4 destination
// port appears in the map to the mapped queue and everything else to def.
func SteerByL4Port(byPort map[uint16]int, def int) Steer {
	return func(in *pkt.Info) int {
		if q, ok := byPort[in.DstPort]; ok {
			return q
		}
		return def
	}
}

// MultiQueue is a simulated device with per-queue completion layouts.
type MultiQueue struct {
	Model  *nic.Model
	Queues []*Device
	steer  Steer

	info    pkt.Info
	dropped uint64
}

// NewMultiQueue builds a device with one queue per compilation result,
// programming each queue's context from its result's constraints.
func NewMultiQueue(m *nic.Model, results []*core.Result, steer Steer, cfg Config) (*MultiQueue, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("nicsim: multiqueue needs at least one queue")
	}
	if steer == nil {
		return nil, fmt.Errorf("nicsim: multiqueue needs a steering function")
	}
	mq := &MultiQueue{Model: m, steer: steer}
	for i, res := range results {
		qcfg := cfg
		qcfg.QueueID = uint16(i)
		dev, err := New(m, qcfg)
		if err != nil {
			return nil, err
		}
		if err := dev.ApplyConfig(res.Config); err != nil {
			return nil, fmt.Errorf("queue %d: %w", i, err)
		}
		mq.Queues = append(mq.Queues, dev)
	}
	return mq, nil
}

// RxPacket steers one packet to its queue and delivers it there. It returns
// the queue index, or -1 when the packet was dropped (filtered, unsteerable,
// or the queue ring was full).
func (mq *MultiQueue) RxPacket(packet []byte) int {
	q := 0
	if err := pkt.Decode(packet, &mq.info); err == nil {
		q = mq.steer(&mq.info)
	}
	if q < 0 || q >= len(mq.Queues) {
		mq.dropped++
		return -1
	}
	if !mq.Queues[q].RxPacket(packet) {
		mq.dropped++
		return -1
	}
	return q
}

// Dropped returns the number of filtered or overflowed packets.
func (mq *MultiQueue) Dropped() uint64 { return mq.dropped }
