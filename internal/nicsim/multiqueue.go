package nicsim

import (
	"fmt"
	"strconv"

	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/obs"
	"opendesc/internal/obs/flight"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
)

// The paper notes that "applications might use multiple OpenDesc instances
// with different intents to obtain different queues tailored for different
// kind of traffic". MultiQueue models that: each queue carries its own
// context configuration (and therefore its own completion layout, selected
// by its own compiled intent), and a steering classifier assigns incoming
// packets to queues — like hardware flow-steering rules feeding RSS queues.

// Steer classifies a packet to a queue index. Returning a negative index
// drops the packet (an RX filter).
type Steer func(in *pkt.Info) int

// SteerByL4Port builds a classifier sending packets whose L4 destination
// port appears in the map to the mapped queue and everything else to def.
func SteerByL4Port(byPort map[uint16]int, def int) Steer {
	return func(in *pkt.Info) int {
		if q, ok := byPort[in.DstPort]; ok {
			return q
		}
		return def
	}
}

// MultiQueue is a simulated device with per-queue completion layouts.
type MultiQueue struct {
	Model  *nic.Model
	Queues []*Device
	steer  Steer

	info       pkt.Info
	dropped    obs.Counter // all drops: filtered, unsteerable, or queue full
	steerDrops obs.Counter // drops by the steering stage alone
}

// NewMultiQueue builds a device with one queue per compilation result,
// programming each queue's context from its result's constraints.
func NewMultiQueue(m *nic.Model, results []*core.Result, steer Steer, cfg Config) (*MultiQueue, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("nicsim: multiqueue needs at least one queue")
	}
	if steer == nil {
		return nil, fmt.Errorf("nicsim: multiqueue needs a steering function")
	}
	mq := &MultiQueue{Model: m, steer: steer}
	for i, res := range results {
		qcfg := cfg
		qcfg.QueueID = uint16(i)
		dev, err := New(m, qcfg)
		if err != nil {
			return nil, err
		}
		if err := dev.ApplyConfig(res.Config); err != nil {
			return nil, fmt.Errorf("queue %d: %w", i, err)
		}
		mq.Queues = append(mq.Queues, dev)
	}
	return mq, nil
}

// RxPacket steers one packet to its queue and delivers it there. It returns
// the queue index, or -1 when the packet was dropped (filtered, unsteerable,
// or the queue ring was full).
func (mq *MultiQueue) RxPacket(packet []byte) int {
	q := 0
	if err := pkt.Decode(packet, &mq.info); err == nil {
		q = mq.steer(&mq.info)
	}
	if q < 0 || q >= len(mq.Queues) {
		mq.steerDrops.Inc()
		mq.dropped.Inc()
		return -1
	}
	if !mq.Queues[q].RxPacket(packet) {
		mq.dropped.Inc()
		return -1
	}
	return q
}

// AttachFlight gives every queue its own event ring ("q0", "q1", …) on rec,
// so a multi-queue trace renders one Perfetto track per hardware queue.
func (mq *MultiQueue) AttachFlight(rec *flight.Recorder) {
	for i, q := range mq.Queues {
		q.AttachFlight(rec.Queue("q" + strconv.Itoa(i)))
	}
}

// Dropped returns the number of filtered or overflowed packets.
func (mq *MultiQueue) Dropped() uint64 { return mq.dropped.Load() }

// MultiQueueStats aggregates the per-queue device counters.
type MultiQueueStats struct {
	// Aggregate sums every queue's counters (per-path and per-semantic
	// maps merged across queues).
	Aggregate DeviceStats
	// PerQueue holds each queue's own snapshot, indexed by queue id.
	PerQueue []DeviceStats
	// SteerDrops counts packets the steering stage filtered or could not
	// assign; queue-full drops appear in the per-queue Drops instead.
	SteerDrops uint64
}

// Stats snapshots and aggregates all queues. Safe to call concurrently
// with packet delivery.
func (mq *MultiQueue) Stats() MultiQueueStats {
	st := MultiQueueStats{
		SteerDrops: mq.steerDrops.Load(),
		PerQueue:   make([]DeviceStats, len(mq.Queues)),
	}
	agg := &st.Aggregate
	agg.CompletionsByPath = make(map[int]uint64)
	agg.Offloads = make(map[semantics.Name]uint64)
	for i, q := range mq.Queues {
		qs := q.Stats()
		st.PerQueue[i] = qs
		agg.RxPackets += qs.RxPackets
		agg.RxBytes += qs.RxBytes
		agg.Drops += qs.Drops
		agg.Completions += qs.Completions
		agg.CompletionBytes += qs.CompletionBytes
		for id, n := range qs.CompletionsByPath {
			agg.CompletionsByPath[id] += n
		}
		for name, n := range qs.Offloads {
			agg.Offloads[name] += n
		}
		agg.Ring.Produced += qs.Ring.Produced
		agg.Ring.Consumed += qs.Ring.Consumed
		agg.Ring.FullStalls += qs.Ring.FullStalls
		agg.Ring.EmptyStalls += qs.Ring.EmptyStalls
		agg.Ring.Occupancy += qs.Ring.Occupancy
		if qs.Ring.HighWater > agg.Ring.HighWater {
			agg.Ring.HighWater = qs.Ring.HighWater
		}
	}
	// Steering drops are device-level drops too.
	agg.Drops += st.SteerDrops
	return st
}

// RegisterMetrics exposes every queue's counters (labelled queue="N") plus
// the steering-stage drop counter on reg.
func (mq *MultiQueue) RegisterMetrics(reg *obs.Registry, extra ...obs.Label) {
	for i, q := range mq.Queues {
		labels := append(append([]obs.Label{}, extra...), obs.L("queue", strconv.Itoa(i)))
		q.RegisterMetrics(reg, labels...)
	}
	base := append([]obs.Label{obs.L("nic", mq.Model.Name)}, extra...)
	reg.AttachCounter("opendesc_mq_steer_drops_total", "packets filtered or unassignable by the steering stage", &mq.steerDrops, base...)
}
