// Package perf is the repository's performance observability plane: it
// turns benchmark runs into schema-versioned, machine-comparable artifacts
// (`BENCH_<name>.json` at the repo root), compares two artifacts under
// per-metric regression thresholds (the CI perf ratchet), and captures
// CPU/heap/mutex pprof profiles around any benchmark run.
//
// The paper's core claim is quantitative — compiled per-application
// descriptor layouts beat static skbuff/mbuf metadata on per-read cost and
// footprint — so every speedup must leave a versioned trace instead of a
// one-off table in a PR description. A Record is that trace: metric values
// with units and direction, p50/p99 latency distributions exported from
// internal/obs histograms, an environment fingerprint, and the min-of-N
// methodology that produced the numbers.
package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"opendesc/internal/obs"
)

// SchemaVersion identifies the artifact format. Bump the suffix on any
// incompatible change; Load and Compare refuse records from other versions
// with a clear error instead of silently mis-reading them.
const SchemaVersion = "opendesc-bench/v1"

// Metric direction: whether a larger value is a regression or an
// improvement, or neither (contextual information, never gated).
const (
	Lower  = "lower"  // smaller is better (latencies, allocations)
	Higher = "higher" // larger is better (speedup ratios, coverage)
	Info   = "info"   // context only — Compare reports but never gates it
)

// Units with exact (zero-tolerance) regression gating. These are
// deterministic given the methodology — allocations per operation, byte
// footprints, event counts — so any increase is a real regression, not
// timer noise.
var exactUnits = map[string]bool{
	"allocs/op": true,
	"B/op":      true,
	"count":     true,
	"bytes":     true,
}

// Units measured by the wall clock (gated with a percentage threshold).
var timingUnits = map[string]bool{
	"ns/op":  true,
	"ns/pkt": true,
	"ns":     true,
	"us/op":  true,
	"us":     true,
}

// Dist is a latency (or size) distribution exported from an
// internal/obs log2 histogram snapshot. Quantiles are bucket upper bounds,
// i.e. within one log2 bucket of the true value.
type Dist struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
}

// DistFromSnapshot exports an obs histogram snapshot into a Dist.
func DistFromSnapshot(s obs.HistogramSnapshot) *Dist {
	return &Dist{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
}

// Metric is one measured series in a record.
type Metric struct {
	// Name is the metric's stable identity within the record, e.g.
	// "datapath/vlan-app/opendesc". Compare matches old and new metrics
	// by this name.
	Name string `json:"name"`
	// Unit: "ns/pkt", "allocs/op", "B/op", "count", "ratio", ...
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
	// Better is one of Lower, Higher, Info.
	Better string `json:"better"`
	// Dist optionally carries the full per-round or per-stage latency
	// distribution behind Value.
	Dist *Dist `json:"dist,omitempty"`
}

// Env is the environment fingerprint of a benchmark run: enough to judge
// whether two artifacts are comparable at all.
type Env struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Commit     string `json:"commit,omitempty"`
}

// Methodology records how the numbers were produced, so a comparison
// against a baseline measured differently is flagged instead of trusted.
type Methodology struct {
	// Estimator names the aggregation across timed rounds; the repo
	// standard is "min-of-rounds" (the minimum is robust to scheduler
	// noise from concurrent work).
	Estimator string `json:"estimator"`
	// Warmup reports whether an untimed warm-up pass precedes measurement.
	Warmup bool `json:"warmup"`
	// MinDurationNs is the per-measurement floor: rounds repeat until the
	// timed region has run at least this long in total.
	MinDurationNs int64 `json:"min_duration_ns,omitempty"`
	// Packets is the trace length (deterministic count metrics depend on
	// it, so Compare checks it matches).
	Packets int `json:"packets,omitempty"`
}

// Record is one benchmark artifact — the unit serialized to
// BENCH_<name>.json.
type Record struct {
	Schema     string      `json:"schema"`
	Name       string      `json:"name"`       // artifact name: "e4_datapath"
	Experiment string      `json:"experiment"` // DESIGN.md index: "E4"
	Title      string      `json:"title"`
	Env        Env         `json:"env"`
	Method     Methodology `json:"methodology"`
	Metrics    []Metric    `json:"metrics"`
}

// nameRE constrains artifact names to safe file-name material.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_]*$`)

// New returns a record with the schema version and the current environment
// fingerprint filled in.
func New(name, experiment, title string, m Methodology) *Record {
	return &Record{
		Schema:     SchemaVersion,
		Name:       name,
		Experiment: experiment,
		Title:      title,
		Env:        Fingerprint(),
		Method:     m,
	}
}

// Add appends a metric.
func (r *Record) Add(m Metric) { r.Metrics = append(r.Metrics, m) }

// AddValue appends a plain metric.
func (r *Record) AddValue(name, unit string, value float64, better string) {
	r.Add(Metric{Name: name, Unit: unit, Value: value, Better: better})
}

// Lookup returns the metric with the given name, or nil.
func (r *Record) Lookup(name string) *Metric {
	for i := range r.Metrics {
		if r.Metrics[i].Name == name {
			return &r.Metrics[i]
		}
	}
	return nil
}

// Validate checks the record against the v1 schema invariants.
func (r *Record) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("perf: schema %q, want %q", r.Schema, SchemaVersion)
	}
	if !nameRE.MatchString(r.Name) {
		return fmt.Errorf("perf: invalid artifact name %q (want %s)", r.Name, nameRE)
	}
	if r.Experiment == "" || r.Title == "" {
		return fmt.Errorf("perf: %s: experiment and title are required", r.Name)
	}
	if r.Env.GOMAXPROCS <= 0 || r.Env.NumCPU <= 0 || r.Env.GoVersion == "" {
		return fmt.Errorf("perf: %s: incomplete environment fingerprint %+v", r.Name, r.Env)
	}
	if r.Method.Estimator == "" {
		return fmt.Errorf("perf: %s: methodology estimator is required", r.Name)
	}
	if len(r.Metrics) == 0 {
		return fmt.Errorf("perf: %s: record has no metrics", r.Name)
	}
	seen := make(map[string]bool, len(r.Metrics))
	for _, m := range r.Metrics {
		if m.Name == "" || m.Unit == "" {
			return fmt.Errorf("perf: %s: metric with empty name or unit: %+v", r.Name, m)
		}
		if seen[m.Name] {
			return fmt.Errorf("perf: %s: duplicate metric %q", r.Name, m.Name)
		}
		seen[m.Name] = true
		switch m.Better {
		case Lower, Higher, Info:
		default:
			return fmt.Errorf("perf: %s: metric %q direction %q, want lower|higher|info", r.Name, m.Name, m.Better)
		}
		if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
			return fmt.Errorf("perf: %s: metric %q value is %v", r.Name, m.Name, m.Value)
		}
	}
	return nil
}

// FileName is the canonical artifact file name for a record name.
func FileName(name string) string { return "BENCH_" + name + ".json" }

// Marshal renders the record as stable, indented JSON with a trailing
// newline (diff-friendly when committed).
func (r *Record) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile validates the record and writes BENCH_<name>.json under dir.
// It returns the written path.
func (r *Record) WriteFile(dir string) (string, error) {
	if err := r.Validate(); err != nil {
		return "", err
	}
	b, err := r.Marshal()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileName(r.Name))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads and validates one artifact. A record written by a different
// schema version is rejected with a clear error (never a panic): the
// version check runs before full validation so the message names the
// mismatch, not a downstream field error.
func Load(path string) (*Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, fmt.Errorf("perf: %s: not a benchmark artifact: %w", path, err)
	}
	if probe.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: %s: schema version %q is not %q — regenerate the artifact with this tree's descbench",
			path, probe.Schema, SchemaVersion)
	}
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return &r, nil
}

// BaselineFiles lists the BENCH_*.json artifacts under dir, sorted.
func BaselineFiles(dir string) ([]string, error) {
	glob := filepath.Join(dir, "BENCH_*.json")
	files, err := filepath.Glob(glob)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("perf: no artifacts match %s", glob)
	}
	return files, nil
}

// fmtValue renders a metric value compactly: integral values without a
// fraction, everything else with one decimal (switching to %.4g when the
// magnitude would overflow a readable column).
func fmtValue(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e15:
		return fmt.Sprintf("%.4g", v)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// Summary renders a short human-readable view of the record (the JSON is
// the artifact; this is the glanceable form for logs).
func (r *Record) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%s, %s): %d metrics, %s on %d cores\n",
		FileName(r.Name), r.Experiment, r.Schema, len(r.Metrics), r.Env.GoVersion, r.Env.NumCPU)
	for _, m := range r.Metrics {
		fmt.Fprintf(&sb, "  %-48s %12s %s", m.Name, fmtValue(m.Value), m.Unit)
		if m.Dist != nil {
			fmt.Fprintf(&sb, "  (p50=%d p99=%d n=%d)", m.Dist.P50, m.Dist.P99, m.Dist.Count)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
