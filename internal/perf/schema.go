package perf

// SchemaJSON is the machine-readable JSON Schema (draft-07) for the
// opendesc-bench/v1 artifact format. It is golden-tested against both the
// committed copy and the actual serialization of a Record, so the three
// views — Go structs, this schema, and the BENCH_*.json files — cannot
// drift apart silently. `descbench schema` prints it.
const SchemaJSON = `{
  "$schema": "http://json-schema.org/draft-07/schema#",
  "$id": "https://opendesc.invalid/schemas/opendesc-bench-v1.json",
  "title": "OpenDesc benchmark artifact (opendesc-bench/v1)",
  "type": "object",
  "required": ["schema", "name", "experiment", "title", "env", "methodology", "metrics"],
  "additionalProperties": false,
  "properties": {
    "schema": {"const": "opendesc-bench/v1"},
    "name": {"type": "string", "pattern": "^[a-z0-9][a-z0-9_]*$"},
    "experiment": {"type": "string", "minLength": 1},
    "title": {"type": "string", "minLength": 1},
    "env": {
      "type": "object",
      "required": ["goos", "goarch", "go_version", "gomaxprocs", "num_cpu"],
      "additionalProperties": false,
      "properties": {
        "goos": {"type": "string"},
        "goarch": {"type": "string"},
        "go_version": {"type": "string"},
        "gomaxprocs": {"type": "integer", "minimum": 1},
        "num_cpu": {"type": "integer", "minimum": 1},
        "cpu_model": {"type": "string"},
        "commit": {"type": "string"}
      }
    },
    "methodology": {
      "type": "object",
      "required": ["estimator", "warmup"],
      "additionalProperties": false,
      "properties": {
        "estimator": {"type": "string", "minLength": 1},
        "warmup": {"type": "boolean"},
        "min_duration_ns": {"type": "integer", "minimum": 0},
        "packets": {"type": "integer", "minimum": 0}
      }
    },
    "metrics": {
      "type": "array",
      "minItems": 1,
      "items": {
        "type": "object",
        "required": ["name", "unit", "value", "better"],
        "additionalProperties": false,
        "properties": {
          "name": {"type": "string", "minLength": 1},
          "unit": {"type": "string", "minLength": 1},
          "value": {"type": "number"},
          "better": {"enum": ["lower", "higher", "info"]},
          "dist": {
            "type": "object",
            "required": ["count", "mean", "p50", "p90", "p99"],
            "additionalProperties": false,
            "properties": {
              "count": {"type": "integer", "minimum": 0},
              "mean": {"type": "number"},
              "p50": {"type": "integer", "minimum": 0},
              "p90": {"type": "integer", "minimum": 0},
              "p99": {"type": "integer", "minimum": 0}
            }
          }
        }
      }
    }
  }
}
`
