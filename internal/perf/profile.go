package perf

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"testing"
)

// Profile captures pprof profiles around a benchmark run — the continuous
// profiling hook behind `descbench -profile dir`. Start begins a CPU
// profile and arms mutex profiling; Stop writes cpu.pprof, heap.pprof and
// mutex.pprof under the directory. The zero value is unusable; use
// StartProfile.
type Profile struct {
	Dir string

	cpu          *os.File
	prevMutexFrc int
}

// StartProfile creates dir (if needed), starts the CPU profile and arms
// mutex profiling at a 1-in-5 sampling fraction.
func StartProfile(dir string) (*Profile, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("perf: start cpu profile: %w", err)
	}
	return &Profile{Dir: dir, cpu: f, prevMutexFrc: runtime.SetMutexProfileFraction(5)}, nil
}

// Stop finishes the CPU profile and writes the heap and mutex profiles.
// It restores the previous mutex profile fraction. Safe to call once.
func (p *Profile) Stop() error {
	pprof.StopCPUProfile()
	err := p.cpu.Close()
	runtime.SetMutexProfileFraction(p.prevMutexFrc)

	// A GC before the heap profile makes the live-set numbers meaningful.
	runtime.GC()
	for _, prof := range []string{"heap", "mutex"} {
		f, ferr := os.Create(filepath.Join(p.Dir, prof+".pprof"))
		if ferr != nil {
			if err == nil {
				err = ferr
			}
			continue
		}
		if werr := pprof.Lookup(prof).WriteTo(f, 0); werr != nil && err == nil {
			err = werr
		}
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Allocs measures steady-state heap allocations per call of fn — the
// alloc-gate primitive for the poll→validate→read→deliver hot path. It is
// testing.AllocsPerRun, importable outside _test files so descbench can
// embed allocs/op in benchmark artifacts.
func Allocs(runs int, fn func()) float64 {
	return testing.AllocsPerRun(runs, fn)
}
