package perf

import (
	"strings"
	"testing"
)

// pair builds a fixed old/new record pair exercising every verdict class:
// improvement, within-threshold noise, timing regression, exact (allocs)
// regression, zero-baseline, info metric, new metric, missing metric.
func pair() (*Record, *Record) {
	old := sampleRecord()
	old.Metrics = nil
	old.AddValue("datapath/lb/opendesc", "ns/pkt", 20, Lower)  // improves
	old.AddValue("datapath/lb/skbuff", "ns/pkt", 60, Lower)    // +5% noise, ok
	old.AddValue("datapath/fw/opendesc", "ns/pkt", 30, Lower)  // +50%: regression
	old.AddValue("deliver/allocs", "allocs/op", 0, Lower)      // 0 → 1: exact regression
	old.AddValue("speedup/lb", "ratio", 3.0, Higher)           // drops >10%: regression
	old.AddValue("capture/full_stalls", "count", 0, Lower)     // stays 0: ok
	old.AddValue("ring/occupancy_highwater", "count", 7, Info) // info: never gated
	old.AddValue("flight/postmortems", "count", 1, Lower)      // vanishes: MISSING
	new_ := sampleRecord()
	new_.Env.Commit = "def5678"
	new_.Metrics = nil
	new_.AddValue("datapath/lb/opendesc", "ns/pkt", 15, Lower)
	new_.AddValue("datapath/lb/skbuff", "ns/pkt", 63, Lower)
	new_.AddValue("datapath/fw/opendesc", "ns/pkt", 45, Lower)
	new_.AddValue("deliver/allocs", "allocs/op", 1, Lower)
	new_.AddValue("speedup/lb", "ratio", 2.5, Higher)
	new_.AddValue("capture/full_stalls", "count", 0, Lower)
	new_.AddValue("ring/occupancy_highwater", "count", 64, Info)
	new_.AddValue("overhead/recorder", "ns/pkt", 2, Lower) // new metric
	return old, new_
}

func verdictOf(t *testing.T, rep *Report, metric string) string {
	t.Helper()
	for _, d := range rep.Deltas {
		if d.Metric == metric {
			return d.Verdict
		}
	}
	t.Fatalf("metric %q missing from report", metric)
	return ""
}

func TestCompareVerdicts(t *testing.T) {
	old, new_ := pair()
	rep, err := Compare(old, new_, DefaultThresholds)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"datapath/lb/opendesc":     VerdictImproved,
		"datapath/lb/skbuff":       VerdictOK,
		"datapath/fw/opendesc":     VerdictRegressed,
		"deliver/allocs":           VerdictRegressed,
		"speedup/lb":               VerdictRegressed,
		"capture/full_stalls":      VerdictOK,
		"ring/occupancy_highwater": VerdictInfo,
		"flight/postmortems":       VerdictMissing,
		"overhead/recorder":        VerdictNew,
	}
	for m, v := range want {
		if got := verdictOf(t, rep, m); got != v {
			t.Errorf("%s: verdict %s, want %s", m, got, v)
		}
	}
	if rep.OK() || rep.Regressions != 4 {
		t.Errorf("Regressions = %d (OK=%v), want 4 regressions", rep.Regressions, rep.OK())
	}
}

// TestCompareZeroBaseline: old value 0 must never divide-by-zero. An exact
// unit going 0→n fails; returning to 0 passes; a timing metric from a zero
// baseline is gated without a percentage.
func TestCompareZeroBaseline(t *testing.T) {
	old := sampleRecord()
	old.Metrics = nil
	old.AddValue("a/allocs", "allocs/op", 0, Lower)
	old.AddValue("b/ns", "ns/pkt", 0, Lower)
	old.AddValue("c/ns", "ns/pkt", 0, Lower)
	new_ := sampleRecord()
	new_.Metrics = nil
	new_.AddValue("a/allocs", "allocs/op", 2, Lower)
	new_.AddValue("b/ns", "ns/pkt", 5, Lower)
	new_.AddValue("c/ns", "ns/pkt", 0, Lower)
	rep, err := Compare(old, new_, DefaultThresholds)
	if err != nil {
		t.Fatal(err)
	}
	if v := verdictOf(t, rep, "a/allocs"); v != VerdictRegressed {
		t.Errorf("exact 0→2 = %s, want regression", v)
	}
	if v := verdictOf(t, rep, "b/ns"); v != VerdictRegressed {
		t.Errorf("timing 0→5 = %s, want regression (infinite relative growth)", v)
	}
	if v := verdictOf(t, rep, "c/ns"); v != VerdictOK {
		t.Errorf("0→0 = %s, want ok", v)
	}
	// The rendered report must show "n/a", not Inf or NaN.
	txt := rep.Text()
	if strings.Contains(txt, "NaN") || strings.Contains(txt, "Inf") {
		t.Errorf("report leaks NaN/Inf:\n%s", txt)
	}
}

// TestCompareMismatches: different artifacts and different schema versions
// are clear errors, not panics.
func TestCompareMismatches(t *testing.T) {
	old, new_ := pair()
	new_.Name = "e11_iface"
	if _, err := Compare(old, new_, DefaultThresholds); err == nil ||
		!strings.Contains(err.Error(), "different artifacts") {
		t.Errorf("cross-artifact compare: %v", err)
	}
	old2, new2 := pair()
	old2.Schema = "opendesc-bench/v0"
	if _, err := Compare(old2, new2, DefaultThresholds); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch: %v", err)
	}
}

// TestCompareMethodologyNote: differing packet counts are flagged so count
// metrics are not trusted blindly.
func TestCompareMethodologyNote(t *testing.T) {
	old, new_ := pair()
	new_.Method.Packets = old.Method.Packets * 2
	rep, err := Compare(old, new_, DefaultThresholds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MethodNotes) == 0 || !strings.Contains(rep.MethodNotes[0], "packets differ") {
		t.Errorf("MethodNotes = %v, want packets warning", rep.MethodNotes)
	}
	if !strings.Contains(rep.Text(), "warning: packets differ") {
		t.Error("text report omits the methodology warning")
	}
}

// TestCompareThresholdKnob: a widened timing threshold admits what the
// default rejects; exact units stay zero-tolerance regardless.
func TestCompareThresholdKnob(t *testing.T) {
	old, new_ := pair()
	rep, err := Compare(old, new_, Thresholds{TimingPct: 0.60})
	if err != nil {
		t.Fatal(err)
	}
	if v := verdictOf(t, rep, "datapath/fw/opendesc"); v != VerdictOK {
		t.Errorf("+50%% under a 60%% threshold = %s, want ok", v)
	}
	if v := verdictOf(t, rep, "deliver/allocs"); v != VerdictRegressed {
		t.Errorf("alloc regression admitted by a timing threshold: %s", v)
	}
}

// TestDeltaReportGolden pins the rendered text and markdown reports.
func TestDeltaReportGolden(t *testing.T) {
	old, new_ := pair()
	rep, err := Compare(old, new_, DefaultThresholds)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "delta.golden.txt", rep.Text())
	golden(t, "delta.golden.md", rep.Markdown())
}
