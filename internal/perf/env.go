package perf

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// Fingerprint captures the current process environment: the context a
// future reader needs to judge whether two artifacts are comparable
// (same machine class, same toolchain) or not.
func Fingerprint() Env {
	return Env{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		Commit:     gitCommit(),
	}
}

// cpuModel best-efforts the CPU model name; empty when unavailable
// (non-Linux, restricted /proc).
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok {
			switch strings.TrimSpace(k) {
			case "model name", "Processor", "cpu model":
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// gitCommit best-efforts the current commit hash (short), preferring an
// explicit OPENDESC_COMMIT (set by CI) over invoking git. Empty when
// neither is available — the fingerprint stays valid, just less precise.
func gitCommit() string {
	if c := os.Getenv("OPENDESC_COMMIT"); c != "" {
		return c
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
