package perf

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opendesc/internal/obs"
)

// -update regenerates the golden files in testdata/ from the current code.
var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<file>, rewriting it under -update.
func golden(t *testing.T, file, got string) {
	t.Helper()
	path := filepath.Join("testdata", file)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with go test -run %s -update): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("%s drifted:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// sampleRecord is a fully-populated fixed record (no live fingerprint) so
// its serialization is byte-stable for the golden test.
func sampleRecord() *Record {
	r := &Record{
		Schema:     SchemaVersion,
		Name:       "e4_datapath",
		Experiment: "E4",
		Title:      "Host datapath cost per stack",
		Env: Env{
			GOOS: "linux", GOARCH: "amd64", GoVersion: "go1.24.0",
			GOMAXPROCS: 8, NumCPU: 8, CPUModel: "Example CPU @ 3.0GHz", Commit: "abc1234",
		},
		Method: Methodology{
			Estimator: "min-of-rounds", Warmup: true,
			MinDurationNs: 50_000_000, Packets: 512,
		},
	}
	r.AddValue("datapath/lb/skbuff", "ns/pkt", 61.5, Lower)
	r.Add(Metric{
		Name: "datapath/lb/opendesc", Unit: "ns/pkt", Value: 18, Better: Lower,
		Dist: &Dist{Count: 240, Mean: 19.5, P50: 31, P90: 31, P99: 63},
	})
	r.AddValue("datapath/lb/opendesc_allocs", "allocs/op", 0, Lower)
	r.AddValue("speedup/lb", "ratio", 3.4, Higher)
	r.AddValue("ring/occupancy_highwater", "count", 1, Info)
	return r
}

// TestRecordGolden pins the exact v1 serialization: any field rename,
// reorder, or type change shows up as a golden diff (bump SchemaVersion
// when intended).
func TestRecordGolden(t *testing.T) {
	b, err := sampleRecord().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "record.golden.json", string(b))
}

// TestSchemaGolden pins the published JSON Schema document.
func TestSchemaGolden(t *testing.T) {
	golden(t, "schema.golden.json", SchemaJSON)
}

// TestRecordMatchesSchema structurally checks that a marshaled record uses
// only properties the JSON Schema declares (and covers every required
// one), so the schema document cannot rot while the structs evolve.
func TestRecordMatchesSchema(t *testing.T) {
	var schema map[string]any
	if err := json.Unmarshal([]byte(SchemaJSON), &schema); err != nil {
		t.Fatalf("SchemaJSON is not valid JSON: %v", err)
	}
	b, err := sampleRecord().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	checkObject(t, "$", doc, schema)
}

// checkObject recursively verifies doc's keys against an object schema
// node: every key must be declared, every required key present.
func checkObject(t *testing.T, path string, doc map[string]any, schema map[string]any) {
	t.Helper()
	props, _ := schema["properties"].(map[string]any)
	if props == nil {
		t.Fatalf("%s: schema node has no properties", path)
	}
	for k := range doc {
		if _, ok := props[k]; !ok {
			t.Errorf("%s.%s: serialized field not declared in SchemaJSON", path, k)
		}
	}
	if req, _ := schema["required"].([]any); req != nil {
		for _, r := range req {
			if _, ok := doc[r.(string)]; !ok {
				t.Errorf("%s: required field %v missing from sample record", path, r)
			}
		}
	}
	for k, v := range doc {
		sub, _ := props[k].(map[string]any)
		if sub == nil {
			continue
		}
		switch val := v.(type) {
		case map[string]any:
			checkObject(t, path+"."+k, val, sub)
		case []any:
			items, _ := sub["items"].(map[string]any)
			if items == nil {
				continue
			}
			for i, e := range val {
				if obj, ok := e.(map[string]any); ok {
					checkObject(t, path+"."+k+"[0]", obj, items)
					_ = i
				}
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Record)
		want string
	}{
		{"wrong schema", func(r *Record) { r.Schema = "opendesc-bench/v0" }, "schema"},
		{"bad name", func(r *Record) { r.Name = "E4 datapath!" }, "invalid artifact name"},
		{"no metrics", func(r *Record) { r.Metrics = nil }, "no metrics"},
		{"dup metric", func(r *Record) { r.Metrics = append(r.Metrics, r.Metrics[0]) }, "duplicate"},
		{"bad direction", func(r *Record) { r.Metrics[0].Better = "sideways" }, "direction"},
		{"NaN value", func(r *Record) { r.Metrics[0].Value = math.NaN() }, "NaN"},
		{"no estimator", func(r *Record) { r.Method.Estimator = "" }, "estimator"},
		{"no env", func(r *Record) { r.Env.GOMAXPROCS = 0 }, "fingerprint"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := sampleRecord()
			c.mut(r)
			err := r.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, c.want)
			}
		})
	}
	if err := sampleRecord().Validate(); err != nil {
		t.Errorf("unmutated sample invalid: %v", err)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := sampleRecord()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_e4_datapath.json" {
		t.Errorf("file name = %s", path)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := got.Marshal()
	rb, _ := r.Marshal()
	if string(gb) != string(rb) {
		t.Errorf("round trip drifted:\n%s\nvs\n%s", gb, rb)
	}
	files, err := BaselineFiles(dir)
	if err != nil || len(files) != 1 {
		t.Errorf("BaselineFiles = %v, %v", files, err)
	}
}

// TestLoadSchemaMismatch: a future (or past) schema version must produce a
// clear, named error — not a panic, not a field-level decode error.
func TestLoadSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_old.json")
	if err := os.WriteFile(path, []byte(`{"schema":"opendesc-bench/v0","name":"old"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil || !strings.Contains(err.Error(), `"opendesc-bench/v0"`) ||
		!strings.Contains(err.Error(), SchemaVersion) {
		t.Errorf("Load = %v, want schema-version mismatch naming both versions", err)
	}
	if err := os.WriteFile(path, []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted non-JSON")
	}
}

func TestFingerprintPopulated(t *testing.T) {
	e := Fingerprint()
	if e.GOMAXPROCS <= 0 || e.NumCPU <= 0 || e.GoVersion == "" || e.GOOS == "" {
		t.Errorf("incomplete fingerprint: %+v", e)
	}
}

// TestDistFromSnapshot: exported quantiles must match the obs snapshot's
// own estimates exactly.
func TestDistFromSnapshot(t *testing.T) {
	h := obs.NewHistogram()
	for _, v := range []uint64{1, 2, 4, 8, 1000} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	d := DistFromSnapshot(snap)
	if d.Count != 5 || d.P50 != snap.Quantile(0.5) || d.P99 != snap.Quantile(0.99) || d.Mean != snap.Mean() {
		t.Errorf("Dist %+v disagrees with snapshot", d)
	}
	empty := DistFromSnapshot(obs.NewHistogram().Snapshot())
	if empty.P99 != 0 || empty.Mean != 0 {
		t.Errorf("empty snapshot exported %+v, want zeros", empty)
	}
}

// TestProfileWritesAll: the continuous-profiling harness must leave
// cpu/heap/mutex profiles behind.
func TestProfileWritesAll(t *testing.T) {
	dir := t.TempDir()
	p, err := StartProfile(filepath.Join(dir, "pprof"))
	if err != nil {
		t.Fatal(err)
	}
	// Some mutex traffic so the profile is non-degenerate.
	var x int
	for i := 0; i < 1000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"cpu.pprof", "heap.pprof", "mutex.pprof"} {
		st, err := os.Stat(filepath.Join(dir, "pprof", f))
		if err != nil {
			t.Errorf("%s missing: %v", f, err)
		} else if st.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestAllocsHelper(t *testing.T) {
	var sink []byte
	n := Allocs(10, func() { sink = make([]byte, 1024) })
	_ = sink
	if n < 1 {
		t.Errorf("Allocs reported %v for an allocating loop", n)
	}
	if n := Allocs(10, func() {}); n != 0 {
		t.Errorf("Allocs reported %v for an empty loop", n)
	}
}
