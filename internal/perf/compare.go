package perf

import (
	"fmt"
	"math"
	"strings"
)

// Thresholds configures the regression gate per metric class.
type Thresholds struct {
	// TimingPct is the allowed fractional worsening for wall-clock units
	// (ns/op, ns/pkt, …). The CI default is 0.10: >10% slower fails.
	TimingPct float64
	// RatioPct is the allowed fractional worsening for derived ratios
	// (speedups). Defaults to TimingPct when zero — ratios of timings
	// carry the same noise.
	RatioPct float64
	// Exact units (allocs/op, B/op, count, bytes) always gate at zero
	// tolerance: they are deterministic under a fixed methodology, so any
	// worsening is a real regression.
}

// DefaultThresholds is the CI perf-gate policy: >10% timing regression or
// any exact-metric regression fails.
var DefaultThresholds = Thresholds{TimingPct: 0.10}

// Verdicts of one metric comparison.
const (
	VerdictOK        = "ok"
	VerdictImproved  = "improved"
	VerdictRegressed = "REGRESSED"
	VerdictNew       = "new"     // metric absent from the old record
	VerdictMissing   = "MISSING" // metric vanished from the new record
	VerdictInfo      = "info"    // contextual metric, never gated
)

// Delta is one metric's old→new comparison.
type Delta struct {
	Metric  string
	Unit    string
	Better  string
	Old     float64
	New     float64
	HasOld  bool
	HasNew  bool
	Pct     float64 // signed fractional change new vs old; NaN when old == 0
	Verdict string
}

// change renders the percentage column ("+12.3%", "n/a" on a zero base).
func (d *Delta) change() string {
	if !d.HasOld || !d.HasNew {
		return "n/a"
	}
	if math.IsNaN(d.Pct) {
		if d.New == d.Old {
			return "+0.0%"
		}
		return "n/a" // zero baseline: percentage undefined
	}
	return fmt.Sprintf("%+.1f%%", d.Pct*100)
}

// Report is a full record-vs-record comparison.
type Report struct {
	Name        string // artifact name (old and new agree after Compare)
	OldCommit   string
	NewCommit   string
	MethodNotes []string // methodology mismatches (compared anyway, flagged)
	Deltas      []Delta
	Regressions int
}

// Compare matches the two records' metrics by name and gates each delta
// under the thresholds. The records must be the same artifact (name) and
// schema version; methodology differences are reported in MethodNotes but
// do not abort the comparison.
func Compare(old, new_ *Record, th Thresholds) (*Report, error) {
	for _, r := range []*Record{old, new_} {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	if old.Name != new_.Name {
		return nil, fmt.Errorf("perf: comparing different artifacts: %q vs %q", old.Name, new_.Name)
	}
	if th.TimingPct == 0 {
		th.TimingPct = DefaultThresholds.TimingPct
	}
	if th.RatioPct == 0 {
		th.RatioPct = th.TimingPct
	}

	rep := &Report{Name: old.Name, OldCommit: old.Env.Commit, NewCommit: new_.Env.Commit}
	if old.Method.Packets != new_.Method.Packets {
		rep.MethodNotes = append(rep.MethodNotes, fmt.Sprintf(
			"packets differ (old %d, new %d): count metrics are not comparable",
			old.Method.Packets, new_.Method.Packets))
	}
	if old.Method.Estimator != new_.Method.Estimator {
		rep.MethodNotes = append(rep.MethodNotes, fmt.Sprintf(
			"estimator differs (old %q, new %q)", old.Method.Estimator, new_.Method.Estimator))
	}

	oldBy := make(map[string]*Metric, len(old.Metrics))
	for i := range old.Metrics {
		oldBy[old.Metrics[i].Name] = &old.Metrics[i]
	}
	newSeen := make(map[string]bool, len(new_.Metrics))

	for i := range new_.Metrics {
		nm := &new_.Metrics[i]
		newSeen[nm.Name] = true
		d := Delta{Metric: nm.Name, Unit: nm.Unit, Better: nm.Better, New: nm.Value, HasNew: true}
		om, ok := oldBy[nm.Name]
		if !ok {
			d.Verdict = VerdictNew
			rep.Deltas = append(rep.Deltas, d)
			continue
		}
		d.Old, d.HasOld = om.Value, true
		if om.Value != 0 {
			d.Pct = (nm.Value - om.Value) / math.Abs(om.Value)
		} else {
			d.Pct = math.NaN()
		}
		d.Verdict = verdict(om, nm, th)
		rep.Deltas = append(rep.Deltas, d)
	}
	// Metrics that vanished are ratchet violations: a gate you can delete
	// is not a gate.
	for i := range old.Metrics {
		om := &old.Metrics[i]
		if newSeen[om.Name] {
			continue
		}
		v := VerdictMissing
		if om.Better == Info {
			v = VerdictInfo
		}
		rep.Deltas = append(rep.Deltas, Delta{
			Metric: om.Name, Unit: om.Unit, Better: om.Better,
			Old: om.Value, HasOld: true, Pct: math.NaN(), Verdict: v,
		})
	}
	for _, d := range rep.Deltas {
		if d.Verdict == VerdictRegressed || d.Verdict == VerdictMissing {
			rep.Regressions++
		}
	}
	return rep, nil
}

// verdict gates one matched metric pair.
func verdict(om, nm *Metric, th Thresholds) string {
	if nm.Better == Info {
		return VerdictInfo
	}
	// worse is the signed worsening: positive when new is worse than old
	// in the metric's own direction.
	worse := nm.Value - om.Value
	if nm.Better == Higher {
		worse = -worse
	}
	switch {
	case worse <= 0:
		if worse < 0 {
			return VerdictImproved
		}
		return VerdictOK
	case exactUnits[nm.Unit]:
		return VerdictRegressed // deterministic metric: any worsening fails
	default:
		pct := th.TimingPct
		if !timingUnits[nm.Unit] {
			pct = th.RatioPct
		}
		if om.Value == 0 {
			// Zero baseline on a noisy unit: no percentage exists; any
			// nonzero worsening is infinite in relative terms, so gate it.
			return VerdictRegressed
		}
		if worse/math.Abs(om.Value) > pct {
			return VerdictRegressed
		}
		return VerdictOK
	}
}

// Text renders the delta report as an aligned text table.
func (r *Report) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== perf compare: %s (old %s → new %s) ==\n",
		r.Name, orDash(r.OldCommit), orDash(r.NewCommit))
	for _, n := range r.MethodNotes {
		fmt.Fprintf(&sb, "   warning: %s\n", n)
	}
	tw := newTextTable("metric", "unit", "old", "new", "change", "verdict")
	for _, d := range r.Deltas {
		tw.row(d.Metric, d.Unit, fmtOpt(d.Old, d.HasOld), fmtOpt(d.New, d.HasNew), d.change(), d.Verdict)
	}
	sb.WriteString(tw.render())
	fmt.Fprintf(&sb, "%s\n", r.verdictLine())
	return sb.String()
}

// Markdown renders the delta report as a GitHub-flavored markdown table
// (the PR-comment form).
func (r *Report) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### perf compare: `%s` (old `%s` → new `%s`)\n\n",
		r.Name, orDash(r.OldCommit), orDash(r.NewCommit))
	for _, n := range r.MethodNotes {
		fmt.Fprintf(&sb, "> **warning:** %s\n\n", n)
	}
	sb.WriteString("| metric | unit | old | new | change | verdict |\n")
	sb.WriteString("|---|---|---:|---:|---:|---|\n")
	for _, d := range r.Deltas {
		verdict := d.Verdict
		switch verdict {
		case VerdictRegressed, VerdictMissing:
			verdict = "❌ " + verdict
		case VerdictImproved:
			verdict = "✅ " + verdict
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s |\n",
			mdEscape(d.Metric), mdEscape(d.Unit),
			fmtOpt(d.Old, d.HasOld), fmtOpt(d.New, d.HasNew), d.change(), verdict)
	}
	fmt.Fprintf(&sb, "\n**%s**\n", r.verdictLine())
	return sb.String()
}

// OK reports whether the gate passes.
func (r *Report) OK() bool { return r.Regressions == 0 }

func (r *Report) verdictLine() string {
	if r.OK() {
		return fmt.Sprintf("PASS: %d metrics within thresholds", len(r.Deltas))
	}
	return fmt.Sprintf("FAIL: %d of %d metrics regressed", r.Regressions, len(r.Deltas))
}

func orDash(s string) string {
	if s == "" {
		return "?"
	}
	return s
}

func fmtOpt(v float64, has bool) string {
	if !has {
		return "-"
	}
	return fmtValue(v)
}

func mdEscape(s string) string { return strings.ReplaceAll(s, "|", `\|`) }

// textTable is a minimal aligned-column renderer for the text report.
type textTable struct {
	header []string
	rows   [][]string
}

func newTextTable(header ...string) *textTable { return &textTable{header: header} }

func (t *textTable) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *textTable) render() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}
