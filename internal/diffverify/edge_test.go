package diffverify

import "testing"

// edgeSource mirrors internal/codegen's extraction edge description: widths
// 1/63/64, a 64-bit-word straddle, a byte- but not word-aligned 64-bit
// field, a signed int<16>, a const width, and pads. Here the whole
// completion-path space goes through the four-way harness, so every edge
// the unit tables pin is also certified equivalent across static layout,
// CFG walk, interpreter, and generated accessors.
const edgeSource = `
const bit<8> PLEN_W = 16;
struct ctx_t { bit<1> wide; }
struct meta_t {
    @semantic("mark") bit<1> m1;
    bit<3> pad0;
    @semantic("flow_id") bit<63> fid;
    bit<5> pad1;
    @semantic("kv_key") bit<64> key;
    int<16> temp;
    @semantic("pkt_len") bit<PLEN_W> plen;
}
@bind("CTX","ctx_t") @bind("META","meta_t")
control CmptDeparser<CTX,META>(cmpt_out co, in CTX ctx, in META m) {
    apply {
        if (ctx.wide == 1) {
            co.emit(m);
        } else {
            co.emit(m.plen);
        }
    }
}`

// TestEdgeSourceVerifies: the edge-width description passes the exhaustive
// harness — both paths, all boundary patterns, zero disagreements.
func TestEdgeSourceVerifies(t *testing.T) {
	rep, err := VerifySource("edge", edgeSource, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("edge description failed:\n%s", rep)
	}
	if rep.Paths != 2 {
		t.Errorf("%d paths, want 2", rep.Paths)
	}
	if rep.Skipped != 0 {
		t.Errorf("%d underdetermined cases, want 0", rep.Skipped)
	}
}

// TestEdgeSourceAblationCaught: the injected accessor bug is caught on the
// edge widths too (a one-bit offset shift on a straddling field).
func TestEdgeSourceAblationCaught(t *testing.T) {
	rep, err := VerifySource("edge", edgeSource, Options{BreakAccessor: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("broken accessor not caught on edge widths")
	}
	if d := rep.Disagreements[0]; d.View != "accessor" {
		t.Errorf("first disagreement view %q, want accessor", d.View)
	}
}

// TestEdgeSourceCertifies: the certificate flow handles the synthetic
// description like any fleet-published one.
func TestEdgeSourceCertifies(t *testing.T) {
	cert := Certify("edge", edgeSource)
	if !cert.Passed {
		t.Fatalf("edge description failed certification: %s", cert.Reason)
	}
	if cert.Paths != 2 || cert.Checks == 0 {
		t.Errorf("degenerate certificate %+v", cert)
	}
}
