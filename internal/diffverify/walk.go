package diffverify

import (
	"fmt"

	"opendesc/internal/bitfield"
	"opendesc/internal/core"
	"opendesc/internal/p4/sema"
)

// walkStepBound bounds the CFG walk; descriptions are small DAGs, so the
// bound only catches a malformed graph.
const walkStepBound = 10000

// walkSerialize executes the deparser CFG under a concrete environment and
// serializes the record it emits: view B of the harness. It is deliberately
// an independent reimplementation of the device serializer's walk (entry to
// exit, evaluating each discriminant against the environment, appending each
// emit's fields at the running offset) — sharing no code with
// core.EnumeratePaths beyond the graph itself, so a bug in either side's
// offset or branch bookkeeping surfaces as a byte-level divergence.
func walkSerialize(g *core.Graph, env sema.Env) ([]core.LayoutField, []byte, error) {
	info := g.Info()
	var fields []core.LayoutField
	off := 0
	node := g.Entry
	for steps := 0; node.Kind != core.NodeExit; steps++ {
		if steps >= walkStepBound {
			return nil, nil, fmt.Errorf("walk exceeded %d steps in %s", walkStepBound, g.Control)
		}
		if node.Kind == core.NodeEmit {
			for _, f := range node.Emit.Fields {
				fields = append(fields, core.LayoutField{
					Name:       f.Name,
					Semantic:   f.Semantic,
					OffsetBits: off,
					WidthBits:  f.WidthBits,
				})
				off += f.WidthBits
			}
		}
		next, err := walkStep(node, info, env)
		if err != nil {
			return nil, nil, err
		}
		node = next
	}
	img := make([]byte, (off+7)/8)
	for _, f := range fields {
		if f.WidthBits > 64 {
			continue
		}
		if v, ok := env.Lookup(f.Name); ok {
			bitfield.Write(img, f.OffsetBits, f.WidthBits, v.Uint)
		}
	}
	return fields, img, nil
}

// walkStep picks the successor the environment selects.
func walkStep(n *core.Node, info *sema.Info, env sema.Env) (*core.Node, error) {
	if len(n.Succs) == 1 {
		e := n.Succs[0]
		if e.Cond == nil && len(e.CaseVals) == 0 && !e.IsDefault {
			return e.To, nil
		}
	}
	switch n.Kind {
	case core.NodeBranch:
		v, err := info.Eval(n.Cond, env)
		if err != nil {
			return nil, fmt.Errorf("branch condition: %v", err)
		}
		for _, e := range n.Succs {
			if v.Truthy() != e.Negate {
				return e.To, nil
			}
		}
		return nil, fmt.Errorf("branch node %d: no edge taken", n.ID)
	case core.NodeSwitch:
		tag, err := info.Eval(n.Tag, env)
		if err != nil {
			return nil, fmt.Errorf("switch tag: %v", err)
		}
		var def *core.Edge
		for _, e := range n.Succs {
			if e.IsDefault {
				def = e
				continue
			}
			for _, cv := range e.CaseVals {
				if cv.Equal(tag) {
					return e.To, nil
				}
			}
		}
		if def != nil {
			return def.To, nil
		}
		return nil, fmt.Errorf("switch node %d: no case matches %s and no default", n.ID, tag)
	}
	if len(n.Succs) > 0 {
		return n.Succs[0].To, nil
	}
	return nil, fmt.Errorf("node %d (%s): dead end", n.ID, n.Kind)
}
